# Build and verification entry points. `make ci` is the gate every PR
# must pass: vet plus the full test suite under the race detector, with
# shuffled test order so hidden inter-test dependencies (shared agents,
# leaked rate-limit state) surface instead of hiding behind file order.

GO ?= go

# The coverage floor `make cover` enforces over internal/... — CI fails
# below it.
COVER_FLOOR ?= 70

.PHONY: all build test vet race ci chaos chaos-matrix mega-smoke scale-smoke bench bench-parallel bench-rollout cover bench-ci bench-guard bench-nightly bench-mutex bench-heap svc-smoke svc-bench

# Scenario matrix for `make chaos`: every topology shape the scenario
# library knows, each run under the full chaos matrix.
CHAOS_SCENARIOS ?= campus isp datacenter iot
# Agents per scenario run in the matrix; small enough for the PR gate.
CHAOS_AGENTS ?= 200
# Agents for the mega smoke (the nightly CI job runs 1000 under -race;
# E-MEGA in EXPERIMENTS.md was recorded at 10000).
MEGA_AGENTS ?= 1000

# The perf-critical benchmarks bench-guard compares against the
# committed baseline: the 1k-domain worker-sweep endpoints, the warm-
# cache incremental re-check (bare, and with the change-contract
# pre-gate on top), the paper-scale 10k-domain cold check (serial and
# 1/8-worker parallel), and the mega-fleet agent path (one in-memory
# round-trip, and a 512-agent fleet install).
GUARDED_BENCH = ^(BenchmarkCheckParallel1|BenchmarkCheckParallel8|BenchmarkCheckWarmCache|BenchmarkChangeContractCheck|BenchmarkCheckDomains10000|BenchmarkCheckParallel10k1|BenchmarkCheckParallel10k8|BenchmarkMemAgentRoundTrip|BenchmarkMegaFleetInstall)$$

# The §1-scale tier: the 100k-domain cold check and warm single-change
# re-check, and the 25k-agent fleet install. Model construction alone
# takes ~30s and each iteration seconds, so these run at -benchtime=2x
# -count=2 (still four samples — enough for benchguard, which ignores
# single-iteration entries) instead of the fast tier's 20x/3.
GUARDED_SCALE_BENCH = ^(BenchmarkCheckDomains100k|BenchmarkCheckDomains100kWarmDelta|BenchmarkMegaFleetInstall25k)$$

# How many times the chaos crash-resume tests repeat; the nightly CI job
# raises this to 10.
CHAOS_COUNT ?= 5

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -shuffle=on ./...

ci: vet race chaos svc-smoke

# Chaos gate: the crash-resume tests re-run several times under the race
# detector, each run killing the journaled rollout at a different offset
# (see chaosRun in internal/configgen/chaos_test.go). NMSL_CHAOS_SEED
# pins a failing offset for replay. The scenario matrix then drives a
# chaos rollout over every topology shape end to end via nmslsim.
chaos: chaos-matrix
	$(GO) test -run 'TestRolloutResumesAfterCrash|TestChaosKillResume' -count=$(CHAOS_COUNT) -race ./internal/configgen

# One chaos rollout per scenario: $(CHAOS_AGENTS) in-memory agents,
# staged waves, the full fault matrix, exit non-zero unless the fleet
# converges. `make chaos-matrix CHAOS_AGENTS=2000` scales it up.
chaos-matrix:
	@for s in $(CHAOS_SCENARIOS); do \
		echo "== chaos $$s ($(CHAOS_AGENTS) agents) =="; \
		$(GO) run ./cmd/nmslsim -scenario $$s -agents $(CHAOS_AGENTS) -chaos -seed 1 || exit 1; \
	done

# The nightly mega-fleet smoke: a $(MEGA_AGENTS)-agent staged rollout
# under the chaos matrix, with the race detector watching the whole
# in-process stack (rollout workers, chaos engine, 1k agents).
mega-smoke:
	NMSL_MEGA=1 NMSL_MEGA_AGENTS=$(MEGA_AGENTS) $(GO) test -race -v -run TestMegaSmoke -timeout 20m ./internal/megafleet

# The §1-scale nightly smokes, time-boxed: the 100k-domain cold+warm
# checking pass (2.2GB heap — the NMSL_SCALE gate keeps it off small
# runners) and a 25k-agent clean fleet convergence without the race
# detector (the race-instrumented depth pass stays at $(MEGA_AGENTS);
# 25k under -race would blow the time box, not the assertion).
SCALE_AGENTS ?= 25000
scale-smoke:
	NMSL_SCALE=1 $(GO) test -v -run TestScaleCheck100kSmoke -timeout 30m .
	NMSL_MEGA=1 NMSL_MEGA_AGENTS=$(SCALE_AGENTS) $(GO) test -v -run TestMegaSmoke -timeout 30m ./internal/megafleet

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# The tentpole sweep: parallel sharded checking vs worker count on the
# 1k- and 10k-domain netsim workloads (meaningful on multi-core hosts).
bench-parallel:
	$(GO) test -bench='BenchmarkCheckParallel' -run='^$$' .

# Mutex-contention profile of the parallel check hot path: runs repeated
# 8-worker checks of the 1k-domain internet with the runtime mutex
# profiler at fraction 1, prints the most-contended call sites, and
# writes mutex.pb.gz for `go tool pprof`. A healthy run reports zero
# contended sites on the check path; cache-mutex or obs-registry frames
# reappearing here means the per-worker batching regressed.
bench-mutex:
	$(GO) run ./scripts/benchmutex -domains 1000 -workers 8 -iters 10 -out mutex.pb.gz

# Allocation profile (-alloc_space) of the checking hot path: one cold
# check plus repeated warm delta re-checks of the 1k-domain internet
# with the heap sampler at fine grain, printing the top allocating call
# sites and writing heap.pb.gz for `go tool pprof -alloc_space`. Any
# site inside the per-ref steady-state path appearing here means the
# arena/scratch reuse regressed (the hard gates are the zero-alloc
# tests and benchguard's allocs/op comparison; this names the culprit).
bench-heap:
	$(GO) run ./scripts/benchheap -domains 1000 -warm 50 -out heap.pb.gz

# Rollout sweep: wall-clock and attempts/target vs worker count and
# injected packet loss (E-ROLL in EXPERIMENTS.md).
bench-rollout:
	$(GO) test -bench='BenchmarkDistribute' -run='^$$' .

# Coverage gate over the library packages: fails when the total drops
# below $(COVER_FLOOR)%.
cover:
	$(GO) test -coverprofile=cover.out ./internal/...
	@$(GO) tool cover -func=cover.out | awk -v floor=$(COVER_FLOOR) \
		'/^total:/ { sub(/%/, "", $$3); printf "coverage: %.1f%% (floor %d%%)\n", $$3, floor; \
		 if ($$3 + 0 < floor) exit 1 }'

# Service smoke + latency SLO gate: drive an in-process nmsld with the
# synthetic many-tenant load generator (16 tenants, short burst), write
# BENCH_svc.json, then fail the build when the warm delta-check p99
# exceeds the budget or throughput collapses. The budgets in
# scripts/slogate default an order of magnitude above the measured
# numbers, so this catches accidental cold paths, not CI jitter.
svc-smoke:
	$(GO) run ./cmd/nmslload -tenants 16 -duration 2s -out BENCH_svc.json
	$(GO) run ./scripts/slogate -in BENCH_svc.json

# The full E-SVC-1 measurement: 64 tenants, longer sustained phase.
svc-bench:
	$(GO) run ./cmd/nmslload -tenants 64 -duration 10s -conc 8 -out BENCH_svc.json
	$(GO) run ./scripts/slogate -in BENCH_svc.json

# Bench smoke for CI: one iteration of every benchmark — a compile-and-
# run sanity pass, not a measurement — plus properly-sampled runs of the
# guarded benchmarks (bench-guard only trusts multi-iteration entries),
# archived as BENCH_ci.json.
bench-ci: bench-mutex bench-heap
	$(GO) test -bench=. -benchmem -benchtime=1x -timeout 30m -run='^$$' . | tee BENCH_ci.txt
	$(GO) test -bench='$(GUARDED_BENCH)' -benchmem \
		-benchtime=20x -count=3 -run='^$$' . | tee -a BENCH_ci.txt
	$(GO) test -bench='$(GUARDED_SCALE_BENCH)' -benchmem \
		-benchtime=2x -count=2 -timeout 30m -run='^$$' . | tee -a BENCH_ci.txt
	$(GO) run ./scripts/bench2json < BENCH_ci.txt > BENCH_ci.json

# Regression guard over the perf-critical benchmarks: measure the
# sharded check and the warm-cache incremental re-check (min of three
# short runs), then compare against the committed baseline BENCH_5.json
# with a +-20% tolerance. Skips cleanly when the baseline was recorded
# on different hardware (the guard compares CPU strings).
bench-guard:
	$(GO) test -bench='$(GUARDED_BENCH)' -benchmem \
		-benchtime=20x -count=3 -run='^$$' . | tee BENCH_guard.txt
	$(GO) test -bench='$(GUARDED_SCALE_BENCH)' -benchmem \
		-benchtime=2x -count=2 -timeout 30m -run='^$$' . | tee -a BENCH_guard.txt
	$(GO) run ./scripts/bench2json < BENCH_guard.txt > BENCH_guard.json
	$(GO) run ./scripts/benchguard -baseline BENCH_5.json -current BENCH_guard.json

# Nightly measurement of the guarded benchmarks (the scheduled CI job):
# same sampling as bench-guard, archived rather than compared, so a
# regression can be bisected to the night it appeared.
bench-nightly:
	$(GO) test -bench='$(GUARDED_BENCH)' -benchmem \
		-benchtime=20x -count=3 -run='^$$' . | tee BENCH_nightly.txt
	$(GO) test -bench='$(GUARDED_SCALE_BENCH)' -benchmem \
		-benchtime=2x -count=2 -timeout 30m -run='^$$' . | tee -a BENCH_nightly.txt
	$(GO) run ./scripts/bench2json < BENCH_nightly.txt > BENCH_nightly.json

# Build and verification entry points. `make ci` is the gate every PR
# must pass: vet plus the full test suite under the race detector, with
# shuffled test order so hidden inter-test dependencies (shared agents,
# leaked rate-limit state) surface instead of hiding behind file order.

GO ?= go

.PHONY: all build test vet race ci bench bench-parallel bench-rollout

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -shuffle=on ./...

ci: vet race

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# The tentpole sweep: parallel sharded checking vs worker count on the
# 1k-domain netsim workload (meaningful on multi-core hosts).
bench-parallel:
	$(GO) test -bench='BenchmarkCheckParallel' -run='^$$' .

# Rollout sweep: wall-clock and attempts/target vs worker count and
# injected packet loss (E-ROLL in EXPERIMENTS.md).
bench-rollout:
	$(GO) test -bench='BenchmarkDistribute' -run='^$$' .

# Build and verification entry points. `make ci` is the gate every PR
# must pass: vet plus the full test suite under the race detector, so
# the concurrent sharded checker is race-checked on every change.

GO ?= go

.PHONY: all build test vet race ci bench bench-parallel

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

ci: vet race

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# The tentpole sweep: parallel sharded checking vs worker count on the
# 1k-domain netsim workload (meaningful on multi-core hosts).
bench-parallel:
	$(GO) test -bench='BenchmarkCheckParallel' -run='^$$' .

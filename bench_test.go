package nmsl

// Benchmark harness for the experiments in EXPERIMENTS.md. The paper has
// no measured evaluation; its quantitative claims are the scale goals of
// section 1 (10,000 domains, 100k-1M hosts) and the "easy to evaluate"
// requirement of section 3.1. Each benchmark regenerates one experiment
// row; cmd/nmslsim prints the corresponding tables.
//
// Run with:
//
//	go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"nmsl/internal/changespec"
	"nmsl/internal/consistency"
	"nmsl/internal/lexer"
	"nmsl/internal/logic"
	"nmsl/internal/megafleet"
	"nmsl/internal/mib"
	"nmsl/internal/netsim"
	"nmsl/internal/obs"
	"nmsl/internal/paperspec"
	"nmsl/internal/parser"
	"nmsl/internal/simrun"
	"nmsl/internal/snmp"

	cfggen "nmsl/internal/configgen"
)

// ---- T-SCALE-1: consistency-check time vs number of domains ----

func benchCheckDomains(b *testing.B, domains int) {
	m, err := netsim.Model(netsim.Params{Domains: domains, SystemsPerDomain: 2, NestingDepth: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(m.Refs)), "refs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := consistency.Check(m)
		if !rep.Consistent() {
			b.Fatal("unexpected inconsistency")
		}
	}
}

func BenchmarkCheckDomains10(b *testing.B)    { benchCheckDomains(b, 10) }
func BenchmarkCheckDomains100(b *testing.B)   { benchCheckDomains(b, 100) }
func BenchmarkCheckDomains1000(b *testing.B)  { benchCheckDomains(b, 1000) }
func BenchmarkCheckDomains10000(b *testing.B) { benchCheckDomains(b, 10000) }

// ---- Tentpole: parallel sharded checking, worker sweep on the
// 1k-domain netsim workload (acceptance: >= 1.5x over 1 worker) ----

func benchCheckParallel(b *testing.B, workers int, metrics *obs.Registry) {
	m, err := netsim.Model(netsim.Params{Domains: 1000, SystemsPerDomain: 2, NestingDepth: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(m.Refs)), "refs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := consistency.CheckContext(context.Background(), m, consistency.Options{Workers: workers, Metrics: metrics})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Consistent() {
			b.Fatal("unexpected inconsistency")
		}
	}
}

func BenchmarkCheckParallel1(b *testing.B)  { benchCheckParallel(b, 1, nil) }
func BenchmarkCheckParallel2(b *testing.B)  { benchCheckParallel(b, 2, nil) }
func BenchmarkCheckParallel4(b *testing.B)  { benchCheckParallel(b, 4, nil) }
func BenchmarkCheckParallel8(b *testing.B)  { benchCheckParallel(b, 8, nil) }
func BenchmarkCheckParallel16(b *testing.B) { benchCheckParallel(b, 16, nil) }

// The paper-scale sweep: the section-1 goal of a 10,000-domain internet.
// The model is built once (sync.Once inside the helper would hide the
// build anyway — netsim.Model dominates a single cold iteration) and the
// check alone is timed; acceptance is a cold full check under 3 seconds
// and 8-worker scaling on multicore hardware.
var bench10kModel = struct {
	once sync.Once
	m    *consistency.Model
	err  error
}{}

func tenKModel(b *testing.B) *consistency.Model {
	bench10kModel.once.Do(func() {
		bench10kModel.m, bench10kModel.err = netsim.Model(netsim.Params{
			Domains: 10000, SystemsPerDomain: 2, NestingDepth: 1, Seed: 1,
		})
	})
	if bench10kModel.err != nil {
		b.Fatal(bench10kModel.err)
	}
	return bench10kModel.m
}

func benchCheckParallel10k(b *testing.B, workers int) {
	m := tenKModel(b)
	b.ReportMetric(float64(len(m.Refs)), "refs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := consistency.CheckContext(context.Background(), m, consistency.Options{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Consistent() {
			b.Fatal("unexpected inconsistency")
		}
	}
}

func BenchmarkCheckParallel10k1(b *testing.B) { benchCheckParallel10k(b, 1) }
func BenchmarkCheckParallel10k2(b *testing.B) { benchCheckParallel10k(b, 2) }
func BenchmarkCheckParallel10k4(b *testing.B) { benchCheckParallel10k(b, 4) }
func BenchmarkCheckParallel10k8(b *testing.B) { benchCheckParallel10k(b, 8) }

// ---- T-SCALE-4: the full §1 internet — 100,000 domains, ~200,000
// managed systems (≈1M spec lines, ≈300k instances, ≈200k references).
// The model builds once (~25s: spec generation plus compile dominate;
// Makefile gives this tier its own short -benchtime) and the benchmarks
// time the steady-state costs a resident manager pays: the cold full
// check, and the one-edit warm delta re-check that the daemon's check
// loop actually runs. These two are guarded (BENCH_5.json) at a lighter
// sampling tier than the fast benchmarks — see GUARDED_SCALE_BENCH. ----

var bench100kModel = struct {
	once sync.Once
	m    *consistency.Model
	err  error
}{}

func hundredKModel(b *testing.B) *consistency.Model {
	bench100kModel.once.Do(func() {
		bench100kModel.m, bench100kModel.err = netsim.Model(netsim.Params{
			Domains: 100000, SystemsPerDomain: 2, NestingDepth: 1, Seed: 1,
		})
	})
	if bench100kModel.err != nil {
		b.Fatal(bench100kModel.err)
	}
	return bench100kModel.m
}

// BenchmarkCheckDomains100k: one cold, uncached, serial full check of
// the 100k-domain internet (acceptance: a handful of seconds — §1's
// "large internets" checked interactively).
func BenchmarkCheckDomains100k(b *testing.B) {
	m := hundredKModel(b)
	b.ReportMetric(float64(len(m.Refs)), "refs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := consistency.Check(m)
		if !rep.Consistent() {
			b.Fatal("unexpected inconsistency")
		}
	}
}

// BenchmarkCheckDomains100kWarmDelta: the resident-manager steady
// state at full scale — one instance edited out of 100k domains, every
// untouched reference replayed through the dirty bitset and the
// violation cursor. The warm pass must stay microseconds-scale and
// O(refs) only in the replay scan, never in allocation.
func BenchmarkCheckDomains100kWarmDelta(b *testing.B) {
	m := hundredKModel(b)
	chk := consistency.NewChecker(m)
	chk.Cache = consistency.NewResultCache()
	prev := chk.Check()
	if !prev.Consistent() {
		b.Fatal("unexpected inconsistency")
	}
	delta := &consistency.ModelDelta{Instances: []string{m.Refs[0].Source.ID}}
	b.ReportMetric(float64(len(m.Refs)), "refs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := chk.CheckDelta(prev, delta)
		if !rep.Consistent() {
			b.Fatal("unexpected inconsistency")
		}
	}
}

// Observability overhead control (E-OBS): the same 8-worker check with
// the instrumentation compiled in but switched off. Acceptance: the
// instrumented default above regresses < 3% against this.
func BenchmarkCheckParallel8NoObs(b *testing.B) { benchCheckParallel(b, 8, obs.Disabled) }

// ---- Tentpole: incremental re-check with a warm result cache.
// One instance edited out of a 1000-domain internet; everything else
// replays from the dependency-fingerprinted cache (acceptance: >= 10x
// over the cold BenchmarkCheckDomains1000). ----

func BenchmarkCheckWarmCache(b *testing.B) {
	m, err := netsim.Model(netsim.Params{Domains: 1000, SystemsPerDomain: 2, NestingDepth: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	chk := consistency.NewChecker(m)
	chk.Cache = consistency.NewResultCache()
	prev := chk.Check()
	if !prev.Consistent() {
		b.Fatal("unexpected inconsistency")
	}
	delta := &consistency.ModelDelta{Instances: []string{m.Refs[0].Source.ID}}
	b.ReportMetric(float64(len(m.Refs)), "refs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := chk.CheckDelta(prev, delta)
		if !rep.Consistent() {
			b.Fatal("unexpected inconsistency")
		}
	}
}

// ---- E-RELA: change-contract evaluation on a warm delta.
// The rollout pre-gate's cost on top of an incremental re-check: the
// same one-instance edit as BenchmarkCheckWarmCache, plus a fully armed
// contract (scope + both forbids + all four churn bounds). The
// changespec.Checker is built once, as a resident daemon or a single
// rollout would; each iteration then pays CheckDelta plus the
// delta-scoped contract evaluation (acceptance: < 10% over the bare
// BenchmarkCheckWarmCache). ----

func BenchmarkChangeContractCheck(b *testing.B) {
	m, err := netsim.Model(netsim.Params{Domains: 1000, SystemsPerDomain: 2, NestingDepth: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	chk := consistency.NewChecker(m)
	chk.Cache = consistency.NewResultCache()
	prev := chk.Check()
	if !prev.Consistent() {
		b.Fatal("unexpected inconsistency")
	}
	delta := &consistency.ModelDelta{Instances: []string{m.Refs[0].Source.ID}}
	contracts, err := changespec.Parse("bench.ncs", `
contract bench-gate ::=
    scope public;
    forbid widen-access;
    forbid relax-frequency;
    max added instances 0;
    max removed instances 0;
    max added permissions 0;
    max removed permissions 0;
end contract bench-gate.
`)
	if err != nil {
		b.Fatal(err)
	}
	ck := changespec.NewChecker(m, m)
	b.ReportMetric(float64(len(m.Refs)), "refs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := chk.CheckDelta(prev, delta)
		if !rep.Consistent() {
			b.Fatal("unexpected inconsistency")
		}
		if r := ck.Check(delta, contracts[0]); !r.OK() {
			b.Fatalf("contract violated: %s", r.Summary())
		}
	}
}

// ---- T-SCALE-2: compile+check vs number of network elements ----

func benchCheckSystems(b *testing.B, systemsPerDomain int) {
	m, err := netsim.Model(netsim.Params{Domains: 100, SystemsPerDomain: systemsPerDomain, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(m.Instances)), "instances")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := consistency.Check(m)
		if !rep.Consistent() {
			b.Fatal("unexpected inconsistency")
		}
	}
}

func BenchmarkCheckSystems100(b *testing.B)   { benchCheckSystems(b, 1) }
func BenchmarkCheckSystems1000(b *testing.B)  { benchCheckSystems(b, 10) }
func BenchmarkCheckSystems10000(b *testing.B) { benchCheckSystems(b, 100) }

// ---- T-SCALE-3: compiler throughput (lexer, parser, full front end) ----

func BenchmarkLexer(b *testing.B) {
	src := netsim.Source(netsim.Params{Domains: 100, SystemsPerDomain: 2, Seed: 1})
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lx := lexer.New(src)
		for {
			if tok := lx.Next(); tok.Kind == 1 { // token.EOF
				break
			}
		}
	}
}

func BenchmarkParser(b *testing.B) {
	src := netsim.Source(netsim.Params{Domains: 100, SystemsPerDomain: 2, Seed: 1})
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parser.Parse("bench", src); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCompile(b *testing.B, domains int) {
	src := netsim.Source(netsim.Params{Domains: domains, SystemsPerDomain: 2, Seed: 1})
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCompiler()
		if err := c.CompileSource("bench", src); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileDomains10(b *testing.B)   { benchCompile(b, 10) }
func BenchmarkCompileDomains100(b *testing.B)  { benchCompile(b, 100) }
func BenchmarkCompileDomains1000(b *testing.B) { benchCompile(b, 1000) }

// BenchmarkCompilePaperSpec compiles the paper's own figures, the
// smallest realistic unit of work.
func BenchmarkCompilePaperSpec(b *testing.B) {
	b.SetBytes(int64(len(paperspec.Combined)))
	for i := 0; i < b.N; i++ {
		c := NewCompiler()
		if err := c.CompileSource("paper", paperspec.Combined); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablation: permission indexing vs full scans (DESIGN.md) ----

func benchIndexAblation(b *testing.B, disable bool) {
	m, err := netsim.Model(netsim.Params{Domains: 500, SystemsPerDomain: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := consistency.NewChecker(m)
		c.DisableIndex = disable
		if rep := c.Check(); !rep.Consistent() {
			b.Fatal("unexpected inconsistency")
		}
	}
}

func BenchmarkCheckIndexed(b *testing.B) { benchIndexAblation(b, false) }
func BenchmarkCheckScan(b *testing.B)    { benchIndexAblation(b, true) }

// ---- Ablation: logic-engine checker vs indexed Go checker ----

func benchCheckerKind(b *testing.B, useLogic bool) {
	m, err := netsim.Model(netsim.Params{Domains: 50, SystemsPerDomain: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var rep *consistency.Report
		if useLogic {
			rep = consistency.CheckLogic(m)
		} else {
			rep = consistency.Check(m)
		}
		if !rep.Consistent() {
			b.Fatal("unexpected inconsistency")
		}
	}
}

func BenchmarkCheckerIndexedGo(b *testing.B)   { benchCheckerKind(b, false) }
func BenchmarkCheckerLogicEngine(b *testing.B) { benchCheckerKind(b, true) }

// ---- Logic engine micro-benchmarks ----

func BenchmarkLogicResolution(b *testing.B) {
	db := logic.NewDB()
	for i := 0; i < 200; i++ {
		db.Assert(logic.Comp("edge", logic.Atom(fmt.Sprintf("n%d", i)), logic.Atom(fmt.Sprintf("n%d", i+1))))
	}
	X, Y := logic.NewVar("X"), logic.NewVar("Y")
	db.Assert(logic.Comp("path", X, Y), logic.Call(logic.Comp("edge", X, Y)))
	X2, Y2, Z2 := logic.NewVar("X"), logic.NewVar("Y"), logic.NewVar("Z")
	db.Assert(logic.Comp("path", X2, Z2),
		logic.Call(logic.Comp("edge", X2, Y2)), logic.Call(logic.Comp("path", Y2, Z2)))
	s := logic.NewSolver(db)
	s.MaxDepth = 1 << 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.Prove(logic.Call(logic.Comp("path", logic.Atom("n0"), logic.Atom("n200")))) {
			b.Fatal("path not found")
		}
	}
}

func BenchmarkLogicConstraints(b *testing.B) {
	s := logic.NewSolver(logic.NewDB())
	for i := 0; i < b.N; i++ {
		X, Y := logic.NewVar("X"), logic.NewVar("Y")
		ok := s.Prove(
			logic.Con(X, ">=", logic.Int(5)),
			logic.Con(Y, "<=", logic.Int(100)),
			logic.Con(X, "<", Y),
		)
		if !ok {
			b.Fatal("satisfiable system rejected")
		}
	}
}

// ---- E-SPEC-R: reverse solving ----

func BenchmarkReverseSolve(b *testing.B) {
	c := NewCompiler()
	if err := c.CompileSource("paper", paperspec.Combined); err != nil {
		b.Fatal(err)
	}
	spec, err := c.Finish()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ivs, err := spec.AdmissiblePeriods(
			"snmpaddr@wisc-cs#0", "snmpdReadOnly@romano.cs.wisc.edu#0",
			"mgmt.mib.ip.ipAddrTable.IpAddrEntry", AccessReadOnly)
		if err != nil || len(ivs) != 1 {
			b.Fatalf("ivs=%v err=%v", ivs, err)
		}
	}
}

// ---- T-GEN: configuration generation ----

func BenchmarkConfigGen(b *testing.B) {
	m, err := netsim.Model(netsim.Params{Domains: 200, SystemsPerDomain: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		configs := cfggen.Generate(m)
		if len(configs) == 0 {
			b.Fatal("no configs")
		}
	}
	b.ReportMetric(float64(len(cfggen.Generate(m))), "agents")
}

func BenchmarkConfigWriteSnmpdConf(b *testing.B) {
	m, err := netsim.Model(netsim.Params{Domains: 10, SystemsPerDomain: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	configs := cfggen.Generate(m)
	var one *snmp.Config
	for _, c := range configs {
		one = c
		break
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cfggen.WriteSnmpdConf(io.Discard, one); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E-PRESC: management protocol substrate ----

func BenchmarkBERMessageRoundTrip(b *testing.B) {
	msg := &snmp.Message{
		Version:   snmp.Version0,
		Community: "public",
		PDU: snmp.PDU{
			Type:      snmp.TagGetRequest,
			RequestID: 7,
			Bindings: []snmp.Binding{
				{OID: mib.OID{1, 3, 6, 1, 2, 1, 1, 1}, Value: snmp.Null()},
			},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := msg.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := snmp.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAgentHandle(b *testing.B) {
	store := snmp.NewStore()
	tree := mib.NewStandard()
	snmp.PopulateFromMIB(store, tree, "mgmt.mib")
	agent := snmp.NewAgent(store, &snmp.Config{
		Communities: map[string]*snmp.CommunityConfig{
			"public": {Access: mib.AccessReadOnly, View: []snmp.View{{Prefix: tree.Lookup("mgmt.mib").OID()}}},
		},
	})
	req := &snmp.Message{
		Version:   snmp.Version0,
		Community: "public",
		PDU: snmp.PDU{
			Type:      snmp.TagGetRequest,
			RequestID: 1,
			Bindings: []snmp.Binding{
				{OID: tree.Lookup("mgmt.mib.system.sysDescr").OID(), Value: snmp.Null()},
			},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// distinct request IDs: an identical repeat would be served from
		// the agent's retransmit cache rather than the handler path
		req.PDU.RequestID = int32(i + 1)
		resp := agent.Handle(req)
		if resp == nil || resp.PDU.ErrorStatus != snmp.NoError {
			b.Fatalf("resp %+v", resp)
		}
	}
}

// ---- E-ROLL: rollout wall-clock vs workers and injected loss ----

// benchDistribute measures a full fault-tolerant rollout to 8 live
// agents, each behind the given per-direction drop probability.
func benchDistribute(b *testing.B, workers int, loss float64) {
	m, err := netsim.Model(netsim.Params{Domains: 4, SystemsPerDomain: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	var targets []cfggen.Target
	i := 0
	for id := range cfggen.Generate(m) {
		store := snmp.NewStore()
		snmp.PopulateFromMIB(store, m.Spec.MIB, "mgmt.mib")
		agent := snmp.NewAgent(store, &snmp.Config{
			Communities:    map[string]*snmp.CommunityConfig{},
			AdminCommunity: "adm",
		})
		if loss > 0 {
			inj := snmp.NewFaultInjector(int64(1 + i))
			inj.In = snmp.Faults{Drop: loss}
			inj.Out = snmp.Faults{Drop: loss}
			agent.SetFaultInjector(inj)
		}
		addr, err := agent.ListenAndServe("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer agent.Close()
		targets = append(targets, cfggen.Target{InstanceID: id, Addr: addr.String(), AdminCommunity: "adm"})
		i++
	}
	attempts := 0
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		report, err := cfggen.DistributeContext(context.Background(), m, targets,
			cfggen.WithWorkers(workers),
			cfggen.WithRetries(12),
			cfggen.WithBackoff(time.Millisecond, 10*time.Millisecond),
			cfggen.WithAttemptTimeout(50*time.Millisecond),
		)
		if err != nil || !report.OK() {
			b.Fatalf("rollout: %v %s", err, report.Summary())
		}
		attempts += report.Attempts
	}
	b.ReportMetric(float64(attempts)/float64(b.N*len(targets)), "attempts/target")
}

func BenchmarkDistributeW1Loss1(b *testing.B)  { benchDistribute(b, 1, 0.01) }
func BenchmarkDistributeW8Loss1(b *testing.B)  { benchDistribute(b, 8, 0.01) }
func BenchmarkDistributeW1Loss5(b *testing.B)  { benchDistribute(b, 1, 0.05) }
func BenchmarkDistributeW8Loss5(b *testing.B)  { benchDistribute(b, 8, 0.05) }
func BenchmarkDistributeW1Loss20(b *testing.B) { benchDistribute(b, 1, 0.20) }
func BenchmarkDistributeW8Loss20(b *testing.B) { benchDistribute(b, 8, 0.20) }

// ---- model building (the reduction to Figure 4.9 relations) ----

func BenchmarkBuildModel(b *testing.B) {
	spec, err := netsim.Build(netsim.Params{Domains: 200, SystemsPerDomain: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := consistency.BuildModel(spec)
		if len(m.Refs) == 0 {
			b.Fatal("no refs")
		}
	}
}

// ---- star targets: the quadratic worst case, kept small ----

func BenchmarkCheckStarTargets(b *testing.B) {
	m, err := netsim.Model(netsim.Params{Domains: 50, SystemsPerDomain: 2, StarTargets: true, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(m.Refs)), "refs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := consistency.Check(m); !rep.Consistent() {
			b.Fatal("unexpected inconsistency")
		}
	}
}

// ---- T-GEN-DIST: central vs distributed installation (section 5) ----
// The loss-0 rows of the E-ROLL sweep above; kept under their original
// names so existing experiment tables keep regenerating.

func BenchmarkDistributeSerial(b *testing.B)    { benchDistribute(b, 1, 0) }
func BenchmarkDistributeParallel8(b *testing.B) { benchDistribute(b, 8, 0) }

// ---- E-SIM: virtual-time simulation throughput ----

func BenchmarkSimulate24h(b *testing.B) {
	m, err := netsim.Model(netsim.Params{Domains: 20, SystemsPerDomain: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var issued int64
	for i := 0; i < b.N; i++ {
		res, err := simrun.Run(m, simrun.Options{Duration: 24 * time.Hour, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if res.Violations != 0 {
			b.Fatalf("violations:\n%s", res)
		}
		issued = res.Issued
	}
	b.ReportMetric(float64(issued), "queries/day")
}

// ---- E-MEGA: mega-fleet agent throughput ----

// BenchmarkMemAgentRoundTrip times one request/response over the
// in-memory transport (client marshal → fault injector → agent handle →
// response marshal → unmarshal): the per-datagram unit cost every
// mega-fleet number is a multiple of.
func BenchmarkMemAgentRoundTrip(b *testing.B) {
	n, err := snmp.NewMemNet("bench-rt", 1)
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()
	store := snmp.NewStore()
	tree := mib.NewStandard()
	snmp.PopulateFromMIB(store, tree, "mgmt.mib")
	agent := snmp.NewAgent(store, &snmp.Config{
		AdminCommunity: "admin",
		Communities: map[string]*snmp.CommunityConfig{
			"public": {Access: mib.AccessReadOnly, View: []snmp.View{{Prefix: tree.Lookup("mgmt.mib").OID()}}},
		},
	})
	if _, err := n.AddHost("h1", agent); err != nil {
		b.Fatal(err)
	}
	c, err := snmp.Dial(n.Addr("h1"), "public")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(time.Second)
	oid := tree.Lookup("mgmt.mib.system.sysDescr").OID()
	// Batch 100 round-trips per op: a single ~20µs round-trip is
	// scheduler-noise-dominated at bench-guard's short sampling, the
	// batch is not.
	const batch = 100
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			if _, err := c.Get(oid); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(b.Elapsed().Seconds()/float64(b.N*batch)*1e9, "ns/roundtrip")
}

// BenchmarkMegaFleetInstall measures fleet install throughput: a full
// unstaged rollout (dial, prepared install, acknowledgment) over 512
// in-memory agents with 16 workers, reported as installs per second.
func BenchmarkMegaFleetInstall(b *testing.B) {
	params, err := netsim.ScenarioParams(netsim.ScenarioCampus, 512, 1)
	if err != nil {
		b.Fatal(err)
	}
	m, err := netsim.Model(params)
	if err != nil {
		b.Fatal(err)
	}
	targets := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fleet, err := megafleet.New(m, fmt.Sprintf("bench-fleet-%d", i), "admin", 1)
		if err != nil {
			b.Fatal(err)
		}
		targets = len(fleet.Targets)
		b.StartTimer()
		rep, err := cfggen.DistributeContext(context.Background(), m, fleet.Targets,
			cfggen.WithWorkers(16), cfggen.WithMetrics(obs.Disabled))
		if err != nil {
			b.Fatal(err)
		}
		if rep.Installed != targets {
			b.Fatalf("incomplete rollout: %s", rep.Summary())
		}
		b.StopTimer()
		fleet.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(b.N*targets)/b.Elapsed().Seconds(), "installs/s")
}

// BenchmarkMegaFleetInstall25k is the fleet-side §1-scale benchmark: a
// full unstaged rollout over 25,000 copy-on-write in-memory agents with
// 64 workers. Fleet construction (one shared base store, 25k forks) is
// excluded; the timed region is dial → prepared install → acknowledge
// across the whole fleet. Guarded at the GUARDED_SCALE_BENCH tier.
func BenchmarkMegaFleetInstall25k(b *testing.B) {
	params, err := netsim.ScenarioParams(netsim.ScenarioCampus, 25000, 1)
	if err != nil {
		b.Fatal(err)
	}
	m, err := netsim.Model(params)
	if err != nil {
		b.Fatal(err)
	}
	targets := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fleet, err := megafleet.New(m, fmt.Sprintf("bench-fleet25k-%d", i), "admin", 1)
		if err != nil {
			b.Fatal(err)
		}
		targets = len(fleet.Targets)
		b.StartTimer()
		// Generous attempt budget: on a loaded single-core runner a GC
		// pause over the 2GB rollout can starve an agent past the default
		// 500ms client timeout; the benchmark measures throughput, and a
		// handful of retransmits must not fail the run.
		rep, err := cfggen.DistributeContext(context.Background(), m, fleet.Targets,
			cfggen.WithWorkers(64), cfggen.WithMetrics(obs.Disabled),
			cfggen.WithRetries(8), cfggen.WithAttemptTimeout(2*time.Second),
			cfggen.WithBackoff(5*time.Millisecond, 50*time.Millisecond))
		if err != nil {
			b.Fatal(err)
		}
		if rep.Installed != targets {
			b.Fatalf("incomplete rollout: %s", rep.Summary())
		}
		b.StopTimer()
		fleet.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(b.N*targets)/b.Elapsed().Seconds(), "installs/s")
}

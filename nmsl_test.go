package nmsl

import (
	"os"
	"strings"
	"testing"

	"nmsl/internal/paperspec"
	"nmsl/internal/snmp"
)

// TestPipelineFigure31 exercises the full system of Figure 3.1:
// extension input + specifications -> compiler -> consistency check ->
// configuration output.
func TestPipelineFigure31(t *testing.T) {
	c := NewCompiler()
	err := c.AddExtensionSource("ext", `
extension proxyClause ::=
    clause proxies;
    decltype process;
    subkeywords via, frequency;
    semantics namelist;
    output consistency "proxy_for(@declname@,@name0@).";
end extension proxyClause.
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CompileSource("paper", paperspec.Combined); err != nil {
		t.Fatal(err)
	}
	if err := c.CompileSource("proxy", `
process bridgeProxy ::=
    supports mgmt.mib.interfaces;
    proxies bridge7 via lanpoll frequency >= 30 seconds;
    exports mgmt.mib.interfaces to "public" access ReadOnly;
end process bridgeProxy.
`); err != nil {
		t.Fatal(err)
	}
	spec, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}

	// Descriptive aspect: consistency.
	rep := spec.Check()
	if !rep.Consistent() {
		t.Fatalf("inconsistent:\n%s", rep)
	}
	rep2 := spec.CheckLogic()
	if !rep2.Consistent() {
		t.Fatalf("logic checker disagrees:\n%s", rep2)
	}

	// Compiler output: consistency facts including the extension's.
	var facts strings.Builder
	if err := spec.Generate(OutputConsistency, &facts); err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"proc_export(snmpdReadOnly,", "proxy_for(bridgeProxy,bridge7)."} {
		if !strings.Contains(facts.String(), w) {
			t.Errorf("consistency output missing %q", w)
		}
	}

	// Prescriptive aspect: agent configurations.
	configs := spec.AgentConfigs()
	if len(configs) != 2 {
		t.Fatalf("configs: %d", len(configs))
	}
	var barts strings.Builder
	if err := spec.Generate(OutputBartsSnmpd, &barts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(barts.String(), "community public ReadOnly 300") {
		t.Errorf("BartsSnmpd output:\n%s", barts.String())
	}

	// Speculative aspect: load and reverse solving.
	load := spec.EstimateLoad(LoadOptions{})
	if len(load.InstanceRate) == 0 {
		t.Error("no load estimated")
	}
	ivs, err := spec.AdmissiblePeriods(
		"snmpaddr@wisc-cs#0", "snmpdReadOnly@romano.cs.wisc.edu#0",
		"mgmt.mib.ip.ipAddrTable.IpAddrEntry", AccessReadOnly)
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatIntervals(ivs); got != "[300, +inf)" {
		t.Errorf("admissible periods %s", got)
	}

	// Full logic program rendering.
	var prog strings.Builder
	if err := spec.WriteConsistencyProgram(&prog); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.String(), "inconsistent(") {
		t.Error("program missing rules")
	}
}

func TestCheckSourceConvenience(t *testing.T) {
	rep, err := CheckSource("paper", paperspec.Combined)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consistent() {
		t.Fatalf("report:\n%s", rep)
	}
}

func TestCheckSourceSyntaxError(t *testing.T) {
	if _, err := CheckSource("bad", "domain d ::="); err == nil {
		t.Fatal("want syntax error")
	}
}

func TestCheckSourceSemanticError(t *testing.T) {
	if _, err := CheckSource("bad", "domain d ::= system ghost; end domain d."); err == nil {
		t.Fatal("want semantic error")
	}
}

func TestAdmissiblePeriodsErrors(t *testing.T) {
	c := NewCompiler()
	if err := c.CompileSource("paper", paperspec.Combined); err != nil {
		t.Fatal(err)
	}
	spec, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.AdmissiblePeriods("nope", "snmpdReadOnly@romano.cs.wisc.edu#0", "mgmt.mib", AccessReadOnly); err == nil {
		t.Error("unknown source accepted")
	}
	if _, err := spec.AdmissiblePeriods("snmpaddr@wisc-cs#0", "nope", "mgmt.mib", AccessReadOnly); err == nil {
		t.Error("unknown target accepted")
	}
	if _, err := spec.AdmissiblePeriods("snmpaddr@wisc-cs#0", "snmpdReadOnly@romano.cs.wisc.edu#0", "no.such.var", AccessReadOnly); err == nil {
		t.Error("unknown variable accepted")
	}
}

func TestCompileFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/spec.nmsl"
	if err := writeFile(path, paperspec.Combined); err != nil {
		t.Fatal(err)
	}
	c := NewCompiler()
	if err := c.CompileFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := c.CompileFile(dir + "/missing.nmsl"); err == nil {
		t.Error("missing file accepted")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// TestAuditAndInteropFacade drives the runtime-verification API: a live
// agent configured from the spec must pass the audit, and the fleet's
// references must interoperate.
func TestAuditAndInteropFacade(t *testing.T) {
	c := NewCompiler()
	if err := c.CompileSource("paper", paperspec.Combined); err != nil {
		t.Fatal(err)
	}
	spec, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	const inst = "snmpdReadOnly@romano.cs.wisc.edu#0"
	cfg := spec.AgentConfigs()[inst]
	store := snmp.NewStore()
	snmp.PopulateFromMIB(store, spec.AST().MIB, "mgmt.mib")
	agent := snmp.NewAgent(store, cfg)
	addr, err := agent.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	arep, err := spec.AuditAgent(inst, addr.String(), AuditOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !arep.Adheres() {
		t.Fatalf("audit:\n%s", arep)
	}

	irep, err := spec.Interop(map[string]string{inst: addr.String()}, AuditOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !irep.Interoperates() {
		t.Fatalf("interop:\n%s", irep)
	}
	if irep.Exercised != 1 || irep.Skipped != 1 {
		t.Fatalf("exercised %d skipped %d", irep.Exercised, irep.Skipped)
	}

	var buf strings.Builder
	if err := spec.Format(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "process snmpdReadOnly ::=") {
		t.Fatalf("format output:\n%s", buf.String())
	}
}

// Campus: a multi-department campus network whose departments were
// configured independently — the autonomy problem the paper opens with.
// The physics department's poller queries the CS department's agents
// every minute, but CS only exports its data at five-minute intervals,
// and the engineering domain restricts access to its members entirely.
//
// The example runs the Consistency Checker, shows the immediate causes it
// reports (a frequency violation and a domain restriction), applies the
// fixes a campus administrator would make, and re-checks.
//
// Run with:
//
//	go run ./examples/campus
package main

import (
	"fmt"
	"log"
	"strings"

	"nmsl"
)

// campusSpec is the broken campus specification.
const campusSpec = `
-- The CS department: agents export campus-wide, but only at >= 5 minutes.
process csAgent ::=
    supports mgmt.mib;
    exports mgmt.mib to "campus"
        access ReadOnly
        frequency >= 5 minutes;
end process csAgent.

-- The physics department polls CS hosts every minute: too fast.
process physicsPoller ::=
    queries csAgent
        requests mgmt.mib.system, mgmt.mib.interfaces
        frequency >= 1 minutes;
end process physicsPoller.

-- Engineering runs its own agent and exports only inside engineering.
process engAgent ::=
    supports mgmt.mib;
    exports mgmt.mib to "engineering"
        access ReadOnly
        frequency >= 1 minutes;
end process engAgent.

-- Physics also wants engineering data.
process physicsEngPoller ::=
    queries engAgent
        requests mgmt.mib.ip
        frequency infrequent;
end process physicsEngPoller.

system "cs-gw.campus.edu" ::=
    cpu sparc;
    interface ie0 net cs-backbone type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib;
    process csAgent;
end system "cs-gw.campus.edu".

system "eng-gw.campus.edu" ::=
    cpu mips;
    interface ie0 net eng-net type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib;
    process engAgent;
end system "eng-gw.campus.edu".

system "phys-ws.campus.edu" ::=
    cpu sparc;
    interface ie0 net phys-net type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib;
    process physicsPoller;
    process physicsEngPoller;
end system "phys-ws.campus.edu".

domain cs ::=
    system cs-gw.campus.edu;
end domain cs.

domain engineering ::=
    system eng-gw.campus.edu;
    exports mgmt.mib to "engineering" access ReadOnly;
end domain engineering.

domain physics ::=
    system phys-ws.campus.edu;
end domain physics.

domain campus ::=
    domain cs;
    domain engineering;
    domain physics;
end domain campus.
`

func check(label, src string) *nmsl.Report {
	rep, err := nmsl.CheckSource(label, src)
	if err != nil {
		log.Fatalf("%s: %v", label, err)
	}
	fmt.Printf("--- %s ---\n%s\n", label, rep)
	return rep
}

func main() {
	log.SetFlags(0)

	// The independently-configured campus is inconsistent.
	rep := check("campus as configured", campusSpec)
	if rep.Consistent() {
		log.Fatal("expected inconsistencies")
	}
	fmt.Printf("frequency violations: %d, domain restrictions: %d, no permission: %d\n\n",
		len(rep.ByKind(nmsl.KindFrequencyViolation)),
		len(rep.ByKind(nmsl.KindDomainRestriction)),
		len(rep.ByKind(nmsl.KindNoPermission)))

	// Fix 1: physics slows its CS poller to the permitted rate.
	fixed := strings.Replace(campusSpec,
		"requests mgmt.mib.system, mgmt.mib.interfaces\n        frequency >= 1 minutes",
		"requests mgmt.mib.system, mgmt.mib.interfaces\n        frequency >= 5 minutes", 1)
	// Fix 2: engineering opens read-only access to the whole campus.
	fixed = strings.Replace(fixed,
		`exports mgmt.mib to "engineering"
        access ReadOnly
        frequency >= 1 minutes;`,
		`exports mgmt.mib to "campus"
        access ReadOnly
        frequency >= 1 minutes;`, 1)
	fixed = strings.Replace(fixed,
		`exports mgmt.mib to "engineering" access ReadOnly;`,
		`exports mgmt.mib to "campus" access ReadOnly;`, 1)

	rep = check("campus after coordination", fixed)
	if !rep.Consistent() {
		log.Fatal("fixes did not converge")
	}
	fmt.Println("the campus specification is now globally consistent; " +
		"nmslgen would configure all three agents from it")
}

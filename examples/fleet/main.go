// Fleet: distributed configuration and adherence verification at fleet
// scale — the operational loop of the paper's sections 1 and 5.
//
//  1. Generate a synthetic internet (8 domains, 3 network elements each)
//     and prove it consistent.
//  2. Start one live UDP agent per specified agent instance, all
//     unconfigured.
//  3. Distribute: derive every agent's configuration and install all 24
//     concurrently over the management protocol (the paper's
//     "distributed manner" discussion — each configuration depends only
//     on its own specification, so the fan-out parallelizes).
//  4. Audit the whole fleet: probe each agent and verify it adheres to
//     the specification. One agent is then deliberately misconfigured by
//     hand, and the audit catches the divergence — "verifying that these
//     specifications are actually being adhered to in the network".
//
// Run with:
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"
	"time"

	"nmsl/internal/audit"
	"nmsl/internal/configgen"
	"nmsl/internal/consistency"
	"nmsl/internal/mib"
	"nmsl/internal/netsim"
	"nmsl/internal/snmp"
)

func main() {
	log.SetFlags(0)

	// 1. Synthesize and verify the internet.
	m, err := netsim.Model(netsim.Params{Domains: 8, SystemsPerDomain: 3, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	rep := consistency.Check(m)
	fmt.Print(rep.String())
	if !rep.Consistent() {
		log.Fatal("refusing to configure an inconsistent internet")
	}

	// 2. Start the fleet.
	configs := configgen.Generate(m)
	agents := map[string]*snmp.Agent{}
	var targets []configgen.Target
	for id := range configs {
		store := snmp.NewStore()
		snmp.PopulateFromMIB(store, m.Spec.MIB, "mgmt.mib")
		agent := snmp.NewAgent(store, &snmp.Config{
			Communities:    map[string]*snmp.CommunityConfig{},
			AdminCommunity: "nmsl-admin",
		})
		addr, err := agent.ListenAndServe("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer agent.Close()
		agents[id] = agent
		targets = append(targets, configgen.Target{
			InstanceID: id, Addr: addr.String(), AdminCommunity: "nmsl-admin",
		})
	}
	fmt.Printf("started %d unconfigured agents\n", len(agents))

	// 3. Distribute concurrently.
	start := time.Now()
	results := configgen.Distribute(m, targets, configgen.DistributeOptions{Workers: 8})
	if failed := configgen.Failed(results); len(failed) > 0 {
		log.Fatalf("%d installations failed, first: %v", len(failed), failed[0].Err)
	}
	fmt.Printf("distributed %d configurations in %s\n", len(results), time.Since(start).Round(time.Millisecond))

	// 4. Audit the fleet.
	adherent := 0
	for _, tgt := range targets {
		arep, err := audit.Agent(m, tgt.InstanceID, tgt.Addr, audit.Options{ProbeWrites: true})
		if err != nil {
			log.Fatal(err)
		}
		if arep.Adheres() {
			adherent++
		} else {
			fmt.Print(arep.String())
		}
	}
	fmt.Printf("audit: %d/%d agents adhere to the specification\n", adherent, len(targets))

	// Interoperation check: drive every specified reference (each
	// poller's query against each of its targets) over the wire — the
	// paper's opening question, "will the network managers of the
	// subnetworks interoperate correctly?", answered empirically.
	addrs := map[string]string{}
	for _, tgt := range targets {
		addrs[tgt.InstanceID] = tgt.Addr
	}
	irep, err := audit.Interop(m, addrs, audit.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(irep.String())
	if !irep.Interoperates() {
		log.Fatal("fleet does not interoperate")
	}

	// Sabotage one agent the way a local administrator might: remove its
	// rate limit and open write access. The audit catches it.
	victim := targets[0]
	cfg := agents[victim.InstanceID].ConfigSnapshot()
	loose := &snmp.Config{Communities: map[string]*snmp.CommunityConfig{}, AdminCommunity: cfg.AdminCommunity}
	for name, cc := range cfg.Communities {
		loose.Communities[name] = &snmp.CommunityConfig{
			Access: mib.AccessAny, View: cc.View, MinInterval: 0,
		}
	}
	agents[victim.InstanceID].ApplyConfig(loose)
	fmt.Printf("\nmisconfigured %s by hand; re-auditing:\n", victim.InstanceID)
	arep, err := audit.Agent(m, victim.InstanceID, victim.Addr, audit.Options{ProbeWrites: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(arep.String())
	if arep.Adheres() {
		log.Fatal("audit failed to catch the misconfiguration")
	}
}

// Fleet: distributed configuration and adherence verification at fleet
// scale — the operational loop of the paper's sections 1 and 5.
//
//  1. Generate a synthetic internet (8 domains, 3 network elements each)
//     and prove it consistent.
//  2. Start one live UDP agent per specified agent instance, all
//     unconfigured.
//  3. Distribute: derive every agent's configuration and install all 24
//     concurrently over the management protocol (the paper's
//     "distributed manner" discussion — each configuration depends only
//     on its own specification, so the fan-out parallelizes). The fleet's
//     network is made deliberately lossy with an injected fault schedule;
//     the rollout's retries absorb the loss.
//  4. Audit the whole fleet: probe each agent and verify it adheres to
//     the specification. One agent is then deliberately misconfigured by
//     hand, and the audit catches the divergence — "verifying that these
//     specifications are actually being adhered to in the network".
//
// Run with:
//
//	go run ./examples/fleet
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"nmsl/internal/audit"
	"nmsl/internal/configgen"
	"nmsl/internal/consistency"
	"nmsl/internal/mib"
	"nmsl/internal/netsim"
	"nmsl/internal/snmp"
)

func main() {
	log.SetFlags(0)

	// 1. Synthesize and verify the internet.
	m, err := netsim.Model(netsim.Params{Domains: 8, SystemsPerDomain: 3, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	rep := consistency.Check(m)
	fmt.Print(rep.String())
	if !rep.Consistent() {
		log.Fatal("refusing to configure an inconsistent internet")
	}

	// 2. Start the fleet. Every agent sits behind an injected fault
	// schedule dropping 10% of datagrams in each direction — the lossy
	// internet the rollout layer exists for.
	configs := configgen.Generate(m)
	agents := map[string]*snmp.Agent{}
	var targets []configgen.Target
	seed := int64(1)
	for id := range configs {
		store := snmp.NewStore()
		snmp.PopulateFromMIB(store, m.Spec.MIB, "mgmt.mib")
		agent := snmp.NewAgent(store, &snmp.Config{
			Communities:    map[string]*snmp.CommunityConfig{},
			AdminCommunity: "nmsl-admin",
		})
		inj := snmp.NewFaultInjector(seed)
		seed++
		inj.In = snmp.Faults{Drop: 0.1}
		inj.Out = snmp.Faults{Drop: 0.1}
		agent.SetFaultInjector(inj)
		addr, err := agent.ListenAndServe("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer agent.Close()
		agents[id] = agent
		targets = append(targets, configgen.Target{
			InstanceID: id, Addr: addr.String(), AdminCommunity: "nmsl-admin",
		})
	}
	fmt.Printf("started %d unconfigured agents behind 10%% packet loss\n", len(agents))

	// 3. Distribute concurrently, retrying through the loss.
	report, err := configgen.DistributeContext(context.Background(), m, targets,
		configgen.WithWorkers(8),
		configgen.WithRetries(8),
		configgen.WithBackoff(20*time.Millisecond, 500*time.Millisecond),
	)
	if err != nil || !report.OK() {
		log.Fatalf("rollout incomplete (%v): %s", err, report.Summary())
	}
	fmt.Println(report.Summary())

	// 4. Audit the fleet. The probes cross the same lossy network, so
	// they get a generous retransmit budget too.
	auditOpts := audit.Options{ProbeWrites: true, Retries: 8, Backoff: 10 * time.Millisecond}
	adherent := 0
	for _, tgt := range targets {
		arep, err := audit.Agent(m, tgt.InstanceID, tgt.Addr, auditOpts)
		if err != nil {
			log.Fatal(err)
		}
		if arep.Adheres() {
			adherent++
		} else {
			fmt.Print(arep.String())
		}
	}
	fmt.Printf("audit: %d/%d agents adhere to the specification\n", adherent, len(targets))

	// Interoperation check: drive every specified reference (each
	// poller's query against each of its targets) over the wire — the
	// paper's opening question, "will the network managers of the
	// subnetworks interoperate correctly?", answered empirically.
	addrs := map[string]string{}
	for _, tgt := range targets {
		addrs[tgt.InstanceID] = tgt.Addr
	}
	irep, err := audit.Interop(m, addrs, audit.Options{Retries: 8, Backoff: 10 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(irep.String())
	if !irep.Interoperates() {
		log.Fatal("fleet does not interoperate")
	}

	// Sabotage one agent the way a local administrator might: remove its
	// rate limit and open write access. The audit catches it.
	victim := targets[0]
	cfg := agents[victim.InstanceID].ConfigSnapshot()
	loose := &snmp.Config{Communities: map[string]*snmp.CommunityConfig{}, AdminCommunity: cfg.AdminCommunity}
	for name, cc := range cfg.Communities {
		views := make([]snmp.View, len(cc.View))
		for i, v := range cc.View {
			views[i] = snmp.View{Prefix: v.Prefix, Access: mib.AccessAny}
		}
		loose.Communities[name] = &snmp.CommunityConfig{
			Access: mib.AccessAny, View: views, MinInterval: 0,
		}
	}
	agents[victim.InstanceID].ApplyConfig(loose)
	fmt.Printf("\nmisconfigured %s by hand; re-auditing:\n", victim.InstanceID)
	arep, err := audit.Agent(m, victim.InstanceID, victim.Addr, auditOpts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(arep.String())
	if arep.Adheres() {
		log.Fatal("audit failed to catch the misconfiguration")
	}
}

// Quickstart: compile the paper's own example specification (Figures
// 4.2, 4.4, 4.6 and 4.8), prove it consistent, and print the derived
// agent configurations.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"nmsl"
	"nmsl/internal/configgen"
	"nmsl/internal/paperspec"
)

func main() {
	log.SetFlags(0)

	// 1. Compile the specification sources. paperspec.Combined is the
	// paper's four figures plus the implicit declarations they reference
	// (the public domain and the second network element).
	c := nmsl.NewCompiler()
	if err := c.CompileSource("paper-figures.nmsl", paperspec.Combined); err != nil {
		log.Fatalf("compile: %v", err)
	}
	spec, err := c.Finish()
	if err != nil {
		log.Fatalf("analyze: %v", err)
	}
	ast := spec.AST()
	fmt.Printf("compiled: %d types, %d processes, %d systems, %d domains\n",
		len(ast.Types), len(ast.Processes), len(ast.Systems), len(ast.Domains))

	// 2. Descriptive aspect: consistency check.
	report := spec.Check()
	fmt.Print(report.String())
	if !report.Consistent() {
		os.Exit(1)
	}

	// 3. Prescriptive aspect: per-agent configurations. Both
	// snmpdReadOnly instances (on romano.cs.wisc.edu and cs.wisc.edu)
	// receive a "public" community limited to read-only access on
	// mgmt.mib, at most once every 5 minutes — exactly Figure 4.4's
	// exports clause.
	configs := spec.AgentConfigs()
	for id, cfg := range configs {
		fmt.Printf("\n--- configuration for %s ---\n", id)
		if err := configgen.WriteSnmpdConf(os.Stdout, cfg); err != nil {
			log.Fatal(err)
		}
	}

	// 4. The compiler's consistency output (the CLP(R) facts of section
	// 4.2) is one Generate call away:
	fmt.Println("\n--- compiler consistency output (excerpt) ---")
	if err := spec.Generate(nmsl.OutputConsistency, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// SNMP agent: the full prescriptive loop of paper section 5, end to end
// over real UDP sockets.
//
//  1. Compile the paper's specification and prove it consistent.
//  2. Derive the agent configuration for snmpdReadOnly on
//     romano.cs.wisc.edu.
//  3. Start a management agent on loopback with an empty policy and a
//     populated MIB database.
//  4. Ship the configuration to it "via the normal network management
//     protocol" (an authenticated SET of the config object).
//  5. Demonstrate that the running agent now behaves exactly as the
//     specification prescribes: in-spec queries succeed, a second query
//     inside the 5-minute window is refused (the frequency clause), and
//     writes are refused (ReadOnly access).
//
// Run with:
//
//	go run ./examples/snmpagent
package main

import (
	"fmt"
	"log"

	"nmsl"
	"nmsl/internal/configgen"
	"nmsl/internal/paperspec"
	"nmsl/internal/snmp"
)

func main() {
	log.SetFlags(0)

	// 1. Compile and check.
	c := nmsl.NewCompiler()
	if err := c.CompileSource("paper.nmsl", paperspec.Combined); err != nil {
		log.Fatal(err)
	}
	spec, err := c.Finish()
	if err != nil {
		log.Fatal(err)
	}
	if rep := spec.Check(); !rep.Consistent() {
		log.Fatalf("refusing to configure from an inconsistent specification:\n%s", rep)
	}
	fmt.Println("specification is consistent")

	// 2. Generate the configuration for romano's agent.
	const instance = "snmpdReadOnly@romano.cs.wisc.edu#0"
	cfg := spec.AgentConfigs()[instance]
	if cfg == nil {
		log.Fatalf("no configuration for %s", instance)
	}
	cfg.AdminCommunity = "nmsl-admin"
	fmt.Printf("generated configuration for %s:\n", instance)
	if err := configgen.WriteSnmpdConf(logWriter{}, cfg); err != nil {
		log.Fatal(err)
	}

	// 3. Start the agent (simulating romano.cs.wisc.edu) with a database
	// populated from the IETF MIB subset and no access policy yet.
	store := snmp.NewStore()
	n := snmp.PopulateFromMIB(store, spec.AST().MIB, "mgmt.mib")
	agent := snmp.NewAgent(store, &snmp.Config{
		Communities:    map[string]*snmp.CommunityConfig{},
		AdminCommunity: "nmsl-admin",
	})
	addr, err := agent.ListenAndServe("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer agent.Close()
	fmt.Printf("agent listening on %s with %d variables\n", addr, n)

	// Before installation, even "public" gets nothing.
	sysDescr := spec.AST().MIB.Lookup("mgmt.mib.system.sysDescr").OID()
	probe, err := snmp.Dial(addr.String(), "public")
	if err != nil {
		log.Fatal(err)
	}
	defer probe.Close()
	if _, err := probe.Get(sysDescr); err == nil {
		log.Fatal("unconfigured agent answered a query")
	}
	fmt.Println("before install: public queries are dropped (no policy)")

	// 4. Install over the wire.
	if err := configgen.InstallLive(addr.String(), "nmsl-admin", cfg); err != nil {
		log.Fatal(err)
	}
	fmt.Println("configuration installed via the management protocol")

	// 5. The agent now enforces the specification.
	client, err := snmp.Dial(addr.String(), "public")
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	binds, err := client.Get(sysDescr)
	if err != nil {
		log.Fatalf("in-spec query failed: %v", err)
	}
	fmt.Printf("read sysDescr = %s\n", binds[0].Value)

	if _, err := client.Get(sysDescr); err == nil {
		log.Fatal("second query inside the 5-minute window should be refused")
	} else {
		fmt.Printf("second query refused (frequency >= 5 minutes enforced): %v\n", err)
	}

	// Demonstrate the ReadOnly access mode on the second specified
	// instance (cs.wisc.edu), whose rate window is still fresh: the
	// write is the first request and is rejected for access, not rate.
	cfg2 := spec.AgentConfigs()["snmpdReadOnly@cs.wisc.edu#0"]
	cfg2.AdminCommunity = "nmsl-admin"
	agent2 := snmp.NewAgent(store, &snmp.Config{
		Communities:    map[string]*snmp.CommunityConfig{},
		AdminCommunity: "nmsl-admin",
	})
	addr2, err := agent2.ListenAndServe("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer agent2.Close()
	if err := configgen.InstallLive(addr2.String(), "nmsl-admin", cfg2); err != nil {
		log.Fatal(err)
	}
	client2, err := snmp.Dial(addr2.String(), "public")
	if err != nil {
		log.Fatal(err)
	}
	defer client2.Close()
	if err := client2.Set(snmp.Binding{OID: sysDescr, Value: snmp.Str("defaced")}); err == nil {
		log.Fatal("write should be refused")
	} else {
		fmt.Printf("write refused (ReadOnly enforced): %v\n", err)
	}

	stats := agent.Stats()
	fmt.Printf("agent stats: %d requests, %d rate-limited, %d denied, %d config loads\n",
		stats.Requests, stats.RateLimited, stats.Denied, stats.ConfigLoads)
	fmt.Println("the running manager now interoperates exactly as specified")
}

// logWriter adapts fmt output to the example's stdout flow.
type logWriter struct{}

func (logWriter) Write(p []byte) (int, error) {
	fmt.Print(string(p))
	return len(p), nil
}

// Extension: the NMSL extension language (paper section 6.3).
//
// Proxy network management (section 3.1) motivates the example: LAN
// bridges cannot answer management queries themselves, so a proxy
// process answers on their behalf. The basic language has no clause for
// declaring proxy relationships — exactly the situation the extension
// mechanism exists for. The extension file:
//
//   - adds a "proxies" clause to process specifications (new keyword =
//     language extension);
//   - defines new consistency-output facts for it;
//   - overrides the BartsSnmpd output of the basic "exports" clause with
//     a site-specific rendering — without touching the basic generic
//     action, demonstrating the paper's override rule.
//
// Run with:
//
//	go run ./examples/extension
package main

import (
	"fmt"
	"log"
	"os"

	"nmsl"
)

const proxyExtension = `
-- NMSL/EXT input (Figure 3.1): extend the basic language.
extension proxyClause ::=
    clause proxies;
    decltype process;
    subkeywords via, frequency;
    semantics namelist;
    output consistency "proxy_for(@declname@,@name0@).";
    output BartsSnmpd "proxy @name0@ polled-by @declname@";
end extension proxyClause.

-- Override ONLY the BartsSnmpd output of the basic exports clause; its
-- generic processing (building the typed model) is untouched.
extension siteExports ::=
    clause exports;
    decltype process;
    semantics none;
    output BartsSnmpd "site-acl allow @names@";
end extension siteExports.
`

const bridgeSpec = `
process bridgeProxy ::=
    supports mgmt.mib.interfaces;
    proxies bridge7 via lanpoll
        frequency >= 30 seconds;
    exports mgmt.mib.interfaces to "machineRoom"
        access ReadOnly
        frequency >= 1 minutes;
end process bridgeProxy.

system "proxy-host.site.org" ::=
    cpu sparc;
    interface ie0 net machine-room-lan type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib.interfaces;
    process bridgeProxy;
end system "proxy-host.site.org".

domain machineRoom ::=
    system proxy-host.site.org;
end domain machineRoom.
`

func main() {
	log.SetFlags(0)

	c := nmsl.NewCompiler()
	if err := c.AddExtensionSource("proxy.nmslext", proxyExtension); err != nil {
		log.Fatalf("extension: %v", err)
	}
	if err := c.CompileSource("bridge.nmsl", bridgeSpec); err != nil {
		log.Fatalf("compile: %v", err)
	}
	spec, err := c.Finish()
	if err != nil {
		log.Fatalf("analyze: %v", err)
	}

	// The extended clause was captured without any grammar change.
	ext := spec.AST().Ext["process bridgeProxy"]
	for _, ec := range ext {
		fmt.Printf("extension clause %q: names=%v frequency=%s\n", ec.Keyword, ec.Names, ec.Freq)
	}

	// Consistency still holds (the proxy exports what its clients need).
	rep := spec.Check()
	fmt.Print(rep.String())

	// Consistency output now includes the extension's proxy_for facts.
	fmt.Println("\n--- consistency output ---")
	if err := spec.Generate(nmsl.OutputConsistency, os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The BartsSnmpd output shows both extension effects: the new clause
	// emits "proxy ..." lines, and the overridden exports action emits
	// "site-acl ..." lines instead of the basic "community ..." ones.
	fmt.Println("\n--- BartsSnmpd output (extension-overridden) ---")
	if err := spec.Generate(nmsl.OutputBartsSnmpd, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// Speculative: the Consistency Checker's what-if roles (paper section
// 4.2). A new organization ("newcorp") is about to connect to an existing
// consistent internet. Before plugging in, the administrator:
//
//  1. checks the combined specification for consistency (forward role);
//  2. estimates the management traffic the newcomer would generate, per
//     agent and per physical network;
//  3. runs the check in reverse — assuming the combined specification
//     must be consistent, solve for the query periods at which newcorp's
//     pollers may run ("ask CLP(R) to solve for the parameters to the
//     references and permissions of the new specification").
//
// Run with:
//
//	go run ./examples/speculative
package main

import (
	"fmt"
	"log"

	"nmsl"
)

// existing is the already-deployed internet: a backbone provider whose
// agents are exported to the whole world at >= 2 minutes.
const existing = `
process backboneAgent ::=
    supports mgmt.mib;
    exports mgmt.mib.system, mgmt.mib.interfaces, mgmt.mib.ip to "world"
        access ReadOnly
        frequency >= 2 minutes;
end process backboneAgent.

system "core1.backbone.net" ::=
    cpu c68020;
    interface ie0 net backbone-fddi type fddi speed 100000000 bps;
    supports mgmt.mib;
    process backboneAgent;
end system "core1.backbone.net".

system "core2.backbone.net" ::=
    cpu c68020;
    interface ie0 net backbone-fddi type fddi speed 100000000 bps;
    supports mgmt.mib;
    process backboneAgent;
end system "core2.backbone.net".

domain backbone ::=
    system core1.backbone.net;
    system core2.backbone.net;
    exports mgmt.mib.system, mgmt.mib.interfaces to "world"
        access ReadOnly
        frequency >= 5 minutes;
end domain backbone.
`

// newcomer is the organization about to connect: a monitoring station
// that wants to poll both backbone cores.
const newcomer = `
process newcorpMonitor ::=
    queries backboneAgent
        requests mgmt.mib.system, mgmt.mib.interfaces
        frequency >= 5 minutes;
end process newcorpMonitor.

system "mon.newcorp.com" ::=
    cpu vax;
    interface ie0 net newcorp-lan type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib;
    process newcorpMonitor;
end system "mon.newcorp.com".

domain newcorp ::=
    system mon.newcorp.com;
end domain newcorp.

domain world ::=
    domain backbone;
    domain newcorp;
end domain world.
`

func main() {
	log.SetFlags(0)

	// 1. Forward speculative check of the combined specification.
	c := nmsl.NewCompiler()
	if err := c.CompileSource("existing.nmsl", existing); err != nil {
		log.Fatal(err)
	}
	if err := c.CompileSource("newcorp.nmsl", newcomer); err != nil {
		log.Fatal(err)
	}
	spec, err := c.Finish()
	if err != nil {
		log.Fatal(err)
	}
	rep := spec.Check()
	fmt.Print("combined check: ", rep.String())
	if !rep.Consistent() {
		log.Fatal("the newcomer's specification conflicts; it must be revised before connecting")
	}

	// 2. Traffic estimate: what load will the newcomer place on the
	// backbone? (Section 4.2: "approximate values can be used to
	// determine the amount of traffic generated".)
	fmt.Println()
	fmt.Print(spec.EstimateLoad(nmsl.LoadOptions{}).String())

	// 3. Reverse solving: what polling periods would be admissible for a
	// newcorp reference to each core's system group? Both the agent's
	// own export (>= 2 minutes) and the backbone domain's restriction
	// (>= 5 minutes) apply; the answer is their intersection.
	fmt.Println()
	ivs, err := spec.AdmissiblePeriods(
		"newcorpMonitor@mon.newcorp.com#0",
		"backboneAgent@core1.backbone.net#0",
		"mgmt.mib.system", nmsl.AccessReadOnly)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("admissible periods for newcorp -> core1 (read mgmt.mib.system): %s seconds\n",
		nmsl.FormatIntervals(ivs))

	// Write access is not exported at all: the admissible set is empty.
	ivs, err = spec.AdmissiblePeriods(
		"newcorpMonitor@mon.newcorp.com#0",
		"backboneAgent@core1.backbone.net#0",
		"mgmt.mib.system", nmsl.AccessWriteOnly)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("admissible periods for write access: %s\n", nmsl.FormatIntervals(ivs))
}

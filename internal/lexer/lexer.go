// Package lexer tokenizes NMSL specification source.
//
// Tokens are separated by white space or special character sequences like
// "::=" or ";" (paper section 4.1.1). Comments run from "--" to end of
// line, following the ASN.1 convention used in the paper's examples
// (Figure 4.4: "-- entire MIB subtree").
package lexer

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"

	"nmsl/internal/token"
)

// Error is a lexical error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans an NMSL source buffer into tokens.
type Lexer struct {
	src  string
	off  int // current byte offset
	line int
	col  int
	errs []*Error
}

// New returns a Lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errs }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) pos() token.Pos {
	return token.Pos{Offset: l.off, Line: l.line, Column: l.col}
}

// peek returns the current rune without consuming it, or -1 at EOF.
func (l *Lexer) peek() rune {
	if l.off >= len(l.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off:])
	return r
}

// peekAt returns the rune at byte offset delta from the current position.
func (l *Lexer) peekAt(delta int) rune {
	if l.off+delta >= len(l.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off+delta:])
	return r
}

// next consumes and returns the current rune.
func (l *Lexer) next() rune {
	if l.off >= len(l.src) {
		return -1
	}
	r, w := utf8.DecodeRuneInString(l.src[l.off:])
	l.off += w
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) skipSpaceAndComments() {
	for {
		r := l.peek()
		switch {
		case r == -1:
			return
		case unicode.IsSpace(r):
			l.next()
		case r == '-' && l.peekAt(1) == '-':
			// comment to end of line
			for {
				r := l.next()
				if r == -1 || r == '\n' {
					break
				}
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

// isIdentPart accepts letters, digits, '_' and '-' inside identifiers:
// NMSL names such as "wisc-research" and "ethernet-csmacd" (Figure 4.6)
// contain hyphens, matching ASN.1 identifier syntax.
func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

// Next scans and returns the next token. At end of input it returns an EOF
// token; calling Next after EOF keeps returning EOF.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	start := l.pos()
	r := l.peek()
	switch {
	case r == -1:
		return token.Token{Kind: token.EOF, Pos: start}
	case isIdentStart(r):
		return l.scanIdent(start)
	case unicode.IsDigit(r):
		return l.scanNumber(start)
	case r == '"':
		return l.scanString(start)
	}
	l.next()
	switch r {
	case ';':
		return token.Token{Kind: token.SEMI, Text: ";", Pos: start}
	case '.':
		return token.Token{Kind: token.PERIOD, Text: ".", Pos: start}
	case ',':
		return token.Token{Kind: token.COMMA, Text: ",", Pos: start}
	case '(':
		return token.Token{Kind: token.LPAREN, Text: "(", Pos: start}
	case ')':
		return token.Token{Kind: token.RPAREN, Text: ")", Pos: start}
	case '{':
		return token.Token{Kind: token.LBRACE, Text: "{", Pos: start}
	case '}':
		return token.Token{Kind: token.RBRACE, Text: "}", Pos: start}
	case '*':
		return token.Token{Kind: token.STAR, Text: "*", Pos: start}
	case ':':
		if l.peek() == ':' && l.peekAt(1) == '=' {
			l.next()
			l.next()
			return token.Token{Kind: token.DEFINE, Text: "::=", Pos: start}
		}
		if l.peek() == '=' {
			l.next()
			return token.Token{Kind: token.ASSIGN, Text: ":=", Pos: start}
		}
		return token.Token{Kind: token.COLON, Text: ":", Pos: start}
	case '<':
		if l.peek() == '=' {
			l.next()
			return token.Token{Kind: token.LE, Text: "<=", Pos: start}
		}
		return token.Token{Kind: token.LT, Text: "<", Pos: start}
	case '>':
		if l.peek() == '=' {
			l.next()
			return token.Token{Kind: token.GE, Text: ">=", Pos: start}
		}
		return token.Token{Kind: token.GT, Text: ">", Pos: start}
	}
	l.errorf(start, "illegal character %q", r)
	return token.Token{Kind: token.ILLEGAL, Text: string(r), Pos: start}
}

// scanIdent and scanNumber slice the token text directly out of the
// source buffer: token text shares the input's backing array, which keeps
// lexing allocation-free (this dominates compile time on 100k-line
// specifications).

func (l *Lexer) scanIdent(start token.Pos) token.Token {
	for isIdentPart(l.peek()) {
		l.next()
	}
	return token.Token{Kind: token.IDENT, Text: l.src[start.Offset:l.off], Pos: start}
}

func (l *Lexer) scanNumber(start token.Pos) token.Token {
	for unicode.IsDigit(l.peek()) {
		l.next()
	}
	// A '.' following a number is only part of the number if a digit
	// follows; otherwise it is the declaration terminator PERIOD
	// ("speed 10000000 bps;" vs "end type ipAddrTable.").
	if l.peek() == '.' && unicode.IsDigit(l.peekAt(1)) {
		l.next()
		for unicode.IsDigit(l.peek()) {
			l.next()
		}
		// allow dotted version numbers like 4.0.1 to lex as a single
		// FLOAT-class token with full text ("opsys SunOS version 4.0.1").
		for l.peek() == '.' && unicode.IsDigit(l.peekAt(1)) {
			l.next()
			for unicode.IsDigit(l.peek()) {
				l.next()
			}
		}
		return token.Token{Kind: token.FLOAT, Text: l.src[start.Offset:l.off], Pos: start}
	}
	return token.Token{Kind: token.INT, Text: l.src[start.Offset:l.off], Pos: start}
}

func (l *Lexer) scanString(start token.Pos) token.Token {
	l.next() // opening quote
	var b strings.Builder
	for {
		r := l.next()
		switch r {
		case -1, '\n':
			l.errorf(start, "unterminated string literal")
			return token.Token{Kind: token.ILLEGAL, Text: b.String(), Pos: start}
		case '"':
			return token.Token{Kind: token.STRING, Text: b.String(), Pos: start}
		default:
			b.WriteRune(r)
		}
	}
}

// All scans the entire input and returns every token up to and including
// the terminating EOF token.
func (l *Lexer) All() []token.Token {
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}

package lexer

import (
	"strings"
	"testing"
	"testing/quick"

	"nmsl/internal/token"
)

func kinds(toks []token.Token) []token.Kind {
	ks := make([]token.Kind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func TestScanDefine(t *testing.T) {
	toks := New("type ipAddrTable ::=").All()
	want := []token.Kind{token.IDENT, token.IDENT, token.DEFINE, token.EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", toks, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestScanOperators(t *testing.T) {
	cases := []struct {
		src  string
		kind token.Kind
	}{
		{"<", token.LT},
		{"<=", token.LE},
		{">", token.GT},
		{">=", token.GE},
		{":=", token.ASSIGN},
		{"::=", token.DEFINE},
		{":", token.COLON},
		{";", token.SEMI},
		{".", token.PERIOD},
		{",", token.COMMA},
		{"(", token.LPAREN},
		{")", token.RPAREN},
		{"{", token.LBRACE},
		{"}", token.RBRACE},
		{"*", token.STAR},
	}
	for _, c := range cases {
		tok := New(c.src).Next()
		if tok.Kind != c.kind {
			t.Errorf("%q: got %v, want %v", c.src, tok.Kind, c.kind)
		}
	}
}

func TestScanString(t *testing.T) {
	tok := New(`"romano.cs.wisc.edu"`).Next()
	if tok.Kind != token.STRING || tok.Text != "romano.cs.wisc.edu" {
		t.Fatalf("got %v", tok)
	}
}

func TestUnterminatedString(t *testing.T) {
	l := New("\"abc\ndef")
	tok := l.Next()
	if tok.Kind != token.ILLEGAL {
		t.Fatalf("got %v, want ILLEGAL", tok)
	}
	if len(l.Errors()) != 1 {
		t.Fatalf("want 1 error, got %v", l.Errors())
	}
}

func TestComments(t *testing.T) {
	src := "supports mgmt -- entire MIB subtree\n;"
	toks := New(src).All()
	want := []token.Kind{token.IDENT, token.IDENT, token.SEMI, token.EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v", toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestHyphenatedIdent(t *testing.T) {
	toks := New("ethernet-csmacd wisc-research").All()
	if toks[0].Text != "ethernet-csmacd" || toks[1].Text != "wisc-research" {
		t.Fatalf("got %v", toks)
	}
}

// A "--" that begins a comment must not be confused with a hyphenated
// identifier continuation.
func TestCommentAfterIdent(t *testing.T) {
	toks := New("mib --comment\nnext").All()
	if len(toks) != 3 || toks[0].Text != "mib" || toks[1].Text != "next" {
		t.Fatalf("got %v", toks)
	}
}

func TestNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind token.Kind
		text string
	}{
		{"10000000", token.INT, "10000000"},
		{"5", token.INT, "5"},
		{"4.0.1", token.FLOAT, "4.0.1"},
		{"2.5", token.FLOAT, "2.5"},
	}
	for _, c := range cases {
		tok := New(c.src).Next()
		if tok.Kind != c.kind || tok.Text != c.text {
			t.Errorf("%q: got %v", c.src, tok)
		}
	}
}

// "end type ipAddrTable." — the trailing period terminates the declaration
// and must not attach to the identifier.
func TestPeriodAfterIdent(t *testing.T) {
	toks := New("end type ipAddrTable.").All()
	want := []token.Kind{token.IDENT, token.IDENT, token.IDENT, token.PERIOD, token.EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v", toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

// A number followed by a declaration-terminating period stays an INT.
func TestIntThenPeriod(t *testing.T) {
	toks := New("5.").All()
	if toks[0].Kind != token.INT || toks[1].Kind != token.PERIOD {
		t.Fatalf("got %v", toks)
	}
}

func TestDottedNameLexesAsIdentPeriodIdent(t *testing.T) {
	toks := New("mgmt.mib.ip").All()
	want := []token.Kind{token.IDENT, token.PERIOD, token.IDENT, token.PERIOD, token.IDENT, token.EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", toks)
		}
	}
}

func TestPositions(t *testing.T) {
	l := New("a\n  bb")
	a := l.Next()
	b := l.Next()
	if a.Pos.Line != 1 || a.Pos.Column != 1 {
		t.Errorf("a at %v", a.Pos)
	}
	if b.Pos.Line != 2 || b.Pos.Column != 3 {
		t.Errorf("bb at %v", b.Pos)
	}
}

func TestIllegalChar(t *testing.T) {
	l := New("@")
	tok := l.Next()
	if tok.Kind != token.ILLEGAL {
		t.Fatalf("got %v", tok)
	}
	if len(l.Errors()) == 0 {
		t.Fatal("expected a lexical error")
	}
}

func TestEOFIsSticky(t *testing.T) {
	l := New("")
	for i := 0; i < 3; i++ {
		if tok := l.Next(); tok.Kind != token.EOF {
			t.Fatalf("call %d: got %v", i, tok)
		}
	}
}

// Property: lexing never panics and always terminates with EOF, for
// arbitrary input strings.
func TestLexerTotal(t *testing.T) {
	f := func(src string) bool {
		toks := New(src).All()
		return len(toks) >= 1 && toks[len(toks)-1].Kind == token.EOF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the concatenated text of IDENT/INT/FLOAT tokens from a
// whitespace-separated word source round-trips.
func TestLexerWordsRoundTrip(t *testing.T) {
	f := func(words []string) bool {
		var clean []string
		for _, w := range words {
			ok := w != ""
			for i, r := range w {
				if i == 0 && !(r >= 'a' && r <= 'z') {
					ok = false
					break
				}
				if !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9') {
					ok = false
					break
				}
			}
			if ok {
				clean = append(clean, w)
			}
		}
		src := strings.Join(clean, " ")
		toks := New(src).All()
		var got []string
		for _, tok := range toks {
			if tok.Kind == token.IDENT {
				got = append(got, tok.Text)
			}
		}
		if len(got) != len(clean) {
			return false
		}
		for i := range got {
			if got[i] != clean[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package changespec

import "testing"

// FuzzParseChangeSpec exercises contract parsing on arbitrary input:
// pass 2 must never panic, and a nil error must come with at least one
// contract (FromFile rejects empty files). Run with
//
//	go test -fuzz=FuzzParseChangeSpec ./internal/changespec
//
// The seed corpus covers every clause kind plus the known tricky
// shapes (quoted scopes, dashes in names, duplicate and malformed
// clauses).
func FuzzParseChangeSpec(f *testing.F) {
	seeds := []string{
		fullContract,
		"contract c ::= end contract c.",
		"contract c ::= scope dom1; end contract c.",
		`contract c ::= scope "Computer Sciences", dom1; end contract c.`,
		"contract c ::= forbid widen-access; forbid relax-frequency; end contract c.",
		"contract c ::= max added instances 0; max removed permissions 10; end contract c.",
		"contract c ::= scope dom1,; end contract c.",
		"contract c ::= max added instances -1; end contract c.",
		"contract c ::= max added instances 99999999999999999999; end contract c.",
		"contract a ::= end contract a.\ncontract b ::= end contract b.",
		"domain d ::= end domain d.",
		"contract c(A: Process) ::= end contract c.",
		"-- just a comment",
		"contract c ::= scope; forbid; max; end contract c.",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		cs, err := Parse("fuzz.ncs", src)
		if err == nil && len(cs) == 0 {
			t.Fatal("nil error but no contracts")
		}
		for _, c := range cs {
			if c.Name == "" {
				t.Fatal("contract with empty name")
			}
		}
	})
}

// Package changespec implements NMSL change contracts: declarative
// bounds on what a specification edit may do, verified relationally
// against the delta between the pre- and post-edit models.
//
// The paper's checker proves properties of a specification snapshot.
// Operationally, the dangerous object is not a snapshot but a change:
// an operator edits a 10,000-domain specification intending to retune
// one poller, and wants a machine-checked guarantee that the edit's
// blast radius is what they declared — it touches only refs under
// domain X, widens no access mode, relaxes no frequency bound, and
// adds or removes at most N instances or permissions ("Relational
// Network Verification", SIGCOMM '24, makes the general case for
// verifying changes rather than snapshots).
//
// A contract is written in NMSL's declaration grammar (the generic
// parser of internal/parser does pass 1; this package is pass 2, the
// same two-pass structure as internal/sema):
//
//	contract safe-edit ::=
//	    scope dom3, dom5;
//	    forbid widen-access;
//	    forbid relax-frequency;
//	    max added instances 2;
//	    max removed instances 0;
//	    max added permissions 2;
//	    max removed permissions 0;
//	end contract safe-edit.
//
// Checking a contract (see Checker) consumes the same ModelDelta that
// drives incremental re-checking, so on a warm delta its cost is
// proportional to the edit, not the internet.
package changespec

import (
	"fmt"

	"nmsl/internal/parser"
	"nmsl/internal/token"
)

// Clause slugs, used both as Contract field discriminators in
// violations and as the keywords of the contract language.
const (
	ClauseScope             = "scope"
	ClauseWidenAccess       = "widen-access"
	ClauseRelaxFrequency    = "relax-frequency"
	ClauseMaxAddedInstances = "max-added-instances"
	ClauseMaxRemovedInsts   = "max-removed-instances"
	ClauseMaxAddedPerms     = "max-added-permissions"
	ClauseMaxRemovedPerms   = "max-removed-permissions"
)

// Contract is one parsed change contract. The zero limits mean
// "unbounded" is spelled -1; a freshly parsed contract has every Max*
// field it does not mention set to -1.
type Contract struct {
	Name string
	// Scope lists the domains the edit may touch: every instance the
	// delta dirties, and every changed domain, must be contained in at
	// least one of them. Empty means unscoped.
	Scope []string
	// ForbidWidenAccess rejects any grant whose (grantee, data, access)
	// shape is not covered by a pre-edit grant from the same
	// declaration site. Replicating an existing export onto a new
	// instance is not widening (the added-permissions bound governs it).
	ForbidWidenAccess bool
	// ForbidRelaxFrequency rejects lowering any matched permission's
	// minimum-period bound (or weakening ">" to ">=").
	ForbidRelaxFrequency bool
	// MaxAddedInstances / MaxRemovedInstances bound how many instances
	// the edit may create or destroy; -1 means unbounded.
	MaxAddedInstances   int
	MaxRemovedInstances int
	// MaxAddedPermissions / MaxRemovedPermissions bound how many grant
	// slots (declaring site, grantee, data subtree) the edit may create
	// or destroy; -1 means unbounded.
	MaxAddedPermissions   int
	MaxRemovedPermissions int
}

// errorf renders a pass-2 error with the conventional file:line:col
// prefix.
func errorf(file string, pos token.Pos, format string, args ...any) error {
	return fmt.Errorf("%s:%s: %s", file, pos, fmt.Sprintf(format, args...))
}

// Parse parses change-contract source text (conventionally a .ncs
// file): pass 1 is the generic NMSL declaration parser, pass 2 is
// FromFile.
func Parse(name, src string) ([]*Contract, error) {
	f, err := parser.Parse(name, src)
	if err != nil {
		return nil, err
	}
	return FromFile(f)
}

// FromFile interprets an already-parsed file as change contracts.
// Every declaration must be a contract; a file with none is an error
// (an empty contract file silently gating nothing is always a
// mistake).
func FromFile(f *parser.File) ([]*Contract, error) {
	var out []*Contract
	for _, d := range f.Decls {
		if d.Type != "contract" {
			return nil, errorf(f.Name, d.Pos, "%s %q: change-contract files hold only contract declarations", d.Type, d.Name)
		}
		c, err := fromDecl(f.Name, d)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no contract declarations", f.Name)
	}
	return out, nil
}

// fromDecl interprets one contract declaration's clauses.
func fromDecl(file string, d *parser.Decl) (*Contract, error) {
	if len(d.Params) > 0 {
		return nil, errorf(file, d.Pos, "contract %s: contracts take no parameters", d.Name)
	}
	c := &Contract{
		Name:                  d.Name,
		MaxAddedInstances:     -1,
		MaxRemovedInstances:   -1,
		MaxAddedPermissions:   -1,
		MaxRemovedPermissions: -1,
	}
	for _, cl := range d.Clauses {
		var err error
		switch cl.Keyword() {
		case "scope":
			err = c.parseScope(file, cl)
		case "forbid":
			err = c.parseForbid(file, cl)
		case "max":
			err = c.parseMax(file, cl)
		default:
			err = errorf(file, cl.Pos, "contract %s: unknown clause %q (want scope, forbid or max)", d.Name, cl.Keyword())
		}
		if err != nil {
			return nil, fmt.Errorf("contract %s: %w", d.Name, err)
		}
	}
	return c, nil
}

// parseScope handles "scope dom1, dom2;". Repeated scope clauses
// accumulate.
func (c *Contract) parseScope(file string, cl *parser.Clause) error {
	items := cl.Items[1:]
	if len(items) == 0 {
		return errorf(file, cl.Pos, "scope clause names no domains")
	}
	wantName := true
	for i := range items {
		it := &items[i]
		switch {
		case wantName && (it.Kind == parser.Word || it.Kind == parser.Str):
			c.Scope = append(c.Scope, it.Text)
			wantName = false
		case !wantName && it.Kind == parser.Op && it.Text == ",":
			wantName = true
		default:
			return errorf(file, it.Pos, "scope clause: unexpected %s %q (want a comma-separated domain list)", it.Kind, it.Text)
		}
	}
	if wantName {
		return errorf(file, cl.Pos, "scope clause ends with a comma")
	}
	return nil
}

// parseForbid handles "forbid widen-access;" and
// "forbid relax-frequency;".
func (c *Contract) parseForbid(file string, cl *parser.Clause) error {
	if len(cl.Items) != 2 || cl.Items[1].Kind != parser.Word {
		return errorf(file, cl.Pos, "forbid clause wants exactly one of widen-access, relax-frequency")
	}
	switch cl.Items[1].Text {
	case ClauseWidenAccess:
		c.ForbidWidenAccess = true
	case ClauseRelaxFrequency:
		c.ForbidRelaxFrequency = true
	default:
		return errorf(file, cl.Items[1].Pos, "forbid clause: unknown property %q (want widen-access or relax-frequency)", cl.Items[1].Text)
	}
	return nil
}

// parseMax handles "max added|removed instances|permissions N;".
func (c *Contract) parseMax(file string, cl *parser.Clause) error {
	if len(cl.Items) != 4 || cl.Items[1].Kind != parser.Word ||
		cl.Items[2].Kind != parser.Word || cl.Items[3].Kind != parser.Int {
		return errorf(file, cl.Pos, "max clause wants: max added|removed instances|permissions <n>")
	}
	dir, what := cl.Items[1].Text, cl.Items[2].Text
	n := cl.Items[3].IntVal
	if n < 0 { // the lexer produces unsigned ints; guard anyway
		return errorf(file, cl.Items[3].Pos, "max clause: negative bound %d", n)
	}
	var slot *int
	switch {
	case dir == "added" && what == "instances":
		slot = &c.MaxAddedInstances
	case dir == "removed" && what == "instances":
		slot = &c.MaxRemovedInstances
	case dir == "added" && what == "permissions":
		slot = &c.MaxAddedPermissions
	case dir == "removed" && what == "permissions":
		slot = &c.MaxRemovedPermissions
	default:
		return errorf(file, cl.Pos, "max clause: unknown subject %q %q (want added|removed instances|permissions)", dir, what)
	}
	if *slot >= 0 {
		return errorf(file, cl.Pos, "duplicate max %s %s clause", dir, what)
	}
	*slot = int(n)
	return nil
}

package changespec

import (
	"errors"
	"strings"
	"testing"

	"nmsl/internal/ast"
	"nmsl/internal/consistency"
	"nmsl/internal/parser"
	"nmsl/internal/sema"
)

// baseSrc is a two-domain internet: one agent type instantiated on a
// system in each domain, one poller in d1 querying the agents.
const baseSrc = `
process agent ::=
    supports mgmt.mib.system, mgmt.mib.ip;
    exports mgmt.mib.system to "public"
        access ReadOnly
        frequency >= 5 minutes;
end process agent.

process poller ::=
    queries agent
        requests mgmt.mib.system.sysDescr
        frequency >= 5 minutes;
end process poller.

system "h1" ::=
    cpu sparc;
    interface ie0 net lan1 type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib.system, mgmt.mib.ip;
    process agent;
end system "h1".

system "h2" ::=
    cpu sparc;
    interface ie0 net lan2 type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib.system, mgmt.mib.ip;
    process agent;
end system "h2".

domain d1 ::=
    system "h1";
    process poller;
end domain d1.

domain d2 ::=
    system "h2";
end domain d2.

domain public ::=
    domain d1;
    domain d2;
end domain public.
`

func compile(t testing.TB, src string) (*ast.Spec, *consistency.Model) {
	t.Helper()
	f, err := parser.Parse("test.nmsl", src)
	if err != nil {
		t.Fatal(err)
	}
	a := sema.NewAnalyzer()
	a.AnalyzeFile(f)
	spec, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return spec, consistency.BuildModel(spec)
}

// edit applies a required substitution to baseSrc.
func edit(t testing.TB, old, new string) string {
	t.Helper()
	if strings.Count(baseSrc, old) != 1 {
		t.Fatalf("edit anchor not unique: %q", old)
	}
	return strings.Replace(baseSrc, old, new, 1)
}

// check compiles base and edited sources, diffs them, and evaluates
// the contract over the resulting delta.
func check(t testing.TB, newSrc string, c *Contract) *Result {
	t.Helper()
	oldSpec, oldModel := compile(t, baseSrc)
	newSpec, newModel := compile(t, newSrc)
	delta := consistency.DeltaFromSpecs(oldSpec, newSpec)
	return NewChecker(oldModel, newModel).Check(delta, c)
}

// unbounded returns a contract with every clause disarmed.
func unbounded(name string) *Contract {
	return &Contract{
		Name:                  name,
		MaxAddedInstances:     -1,
		MaxRemovedInstances:   -1,
		MaxAddedPermissions:   -1,
		MaxRemovedPermissions: -1,
	}
}

func clauses(r *Result) []string {
	var out []string
	for _, v := range r.Violations {
		out = append(out, v.Clause)
	}
	return out
}

func TestCheckCleanEdit(t *testing.T) {
	c := unbounded("strict")
	c.Scope = []string{"d1"}
	c.ForbidWidenAccess = true
	c.ForbidRelaxFrequency = true
	c.MaxAddedInstances = 0
	c.MaxRemovedInstances = 0
	c.MaxAddedPermissions = 0
	c.MaxRemovedPermissions = 0
	src := edit(t, "requests mgmt.mib.system.sysDescr\n        frequency >= 5 minutes;",
		"requests mgmt.mib.system.sysDescr\n        frequency >= 10 minutes;")
	r := check(t, src, c)
	if !r.OK() {
		t.Fatalf("violations: %v", r.Violations)
	}
	if r.Err() != nil {
		t.Errorf("Err = %v, want nil", r.Err())
	}
	if r.DirtyInstances == 0 {
		t.Error("edit should dirty the poller instance")
	}
}

func TestCheckWidenAccess(t *testing.T) {
	c := unbounded("no-widen")
	c.ForbidWidenAccess = true
	r := check(t, edit(t, "access ReadOnly", "access Any"), c)
	got := clauses(r)
	// The agent runs on two systems: both replicas widen.
	if len(got) != 2 || got[0] != ClauseWidenAccess || got[1] != ClauseWidenAccess {
		t.Fatalf("clauses %v, want two widen-access", got)
	}
	var ce *ContractError
	if !errors.As(r.Err(), &ce) || ce.Contract != "no-widen" {
		t.Fatalf("Err = %v", r.Err())
	}
	if !strings.Contains(ce.Error(), "no-widen") {
		t.Errorf("error text %q", ce.Error())
	}
	if r.Violations[0].Entry == "" {
		t.Error("violation should carry the offending permission")
	}
}

func TestCheckNarrowAccessOK(t *testing.T) {
	c := unbounded("no-widen")
	c.ForbidWidenAccess = true
	r := check(t, edit(t, "access ReadOnly", "access None"), c)
	if !r.OK() {
		t.Fatalf("narrowing flagged as widening: %v", r.Violations)
	}
}

func TestCheckRelaxFrequency(t *testing.T) {
	c := unbounded("no-relax")
	c.ForbidRelaxFrequency = true
	r := check(t, edit(t, "access ReadOnly\n        frequency >= 5 minutes;",
		"access ReadOnly\n        frequency >= 1 minutes;"), c)
	got := clauses(r)
	if len(got) != 2 || got[0] != ClauseRelaxFrequency {
		t.Fatalf("clauses %v, want two relax-frequency", got)
	}
	// Tightening is fine.
	r = check(t, edit(t, "access ReadOnly\n        frequency >= 5 minutes;",
		"access ReadOnly\n        frequency >= 10 minutes;"), c)
	if !r.OK() {
		t.Fatalf("tightening flagged as relaxing: %v", r.Violations)
	}
}

func TestCheckScope(t *testing.T) {
	c := unbounded("scoped")
	c.Scope = []string{"d1"}
	// Editing d2's system is out of scope.
	src := edit(t, `interface ie0 net lan2 type ethernet-csmacd speed 10000000 bps;`,
		`interface ie0 net lan2 type ethernet-csmacd speed 20000000 bps;`)
	r := check(t, src, c)
	got := clauses(r)
	if len(got) == 0 || got[0] != ClauseScope {
		t.Fatalf("clauses %v, want scope", got)
	}
	// The same edit passes when d2 (or an ancestor) is in scope.
	c.Scope = []string{"d1", "d2"}
	if r := check(t, src, c); !r.OK() {
		t.Fatalf("in-scope edit flagged: %v", r.Violations)
	}
	c.Scope = []string{"public"}
	if r := check(t, src, c); !r.OK() {
		t.Fatalf("ancestor scope should cover the edit: %v", r.Violations)
	}
}

func TestCheckInstanceBounds(t *testing.T) {
	c := unbounded("bounded")
	c.MaxAddedInstances = 0
	src := edit(t, "domain d2 ::=\n    system \"h2\";",
		"domain d2 ::=\n    system \"h2\";\n    process poller;")
	r := check(t, src, c)
	if got := clauses(r); len(got) != 1 || got[0] != ClauseMaxAddedInstances {
		t.Fatalf("clauses %v, want max-added-instances", got)
	}
	if r.AddedInstances != 1 {
		t.Errorf("AddedInstances = %d, want 1", r.AddedInstances)
	}
	// The reverse edit (old and new swapped) counts as a removal.
	oldSpec, oldModel := compile(t, src)
	newSpec, newModel := compile(t, baseSrc)
	delta := consistency.DeltaFromSpecs(oldSpec, newSpec)
	c2 := unbounded("bounded")
	c2.MaxRemovedInstances = 0
	r = NewChecker(oldModel, newModel).Check(delta, c2)
	if got := clauses(r); len(got) != 1 || got[0] != ClauseMaxRemovedInsts {
		t.Fatalf("clauses %v, want max-removed-instances", got)
	}
}

func TestCheckPermissionReplicaNotWidening(t *testing.T) {
	// A third system running the existing agent adds a permission but
	// widens nothing: the grant shape is covered by the declaration's
	// pre-edit grants.
	src := edit(t, "domain d1 ::=",
		`system "h3" ::=
    cpu sparc;
    interface ie0 net lan1 type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib.system, mgmt.mib.ip;
    process agent;
end system "h3".

domain d1 ::=
    system "h3";`)
	c := unbounded("no-widen")
	c.ForbidWidenAccess = true
	r := check(t, src, c)
	if !r.OK() {
		t.Fatalf("replicated export flagged as widening: %v", r.Violations)
	}
	if r.AddedInstances != 1 || r.AddedPermissions != 1 {
		t.Errorf("added instances/permissions = %d/%d, want 1/1", r.AddedInstances, r.AddedPermissions)
	}
	// But the added-permissions bound still sees it.
	c2 := unbounded("no-new-perms")
	c2.MaxAddedPermissions = 0
	if got := clauses(check(t, src, c2)); len(got) != 1 || got[0] != ClauseMaxAddedPerms {
		t.Fatalf("clauses %v, want max-added-permissions", got)
	}
}

func TestCheckNewExportIsWidening(t *testing.T) {
	src := edit(t, "domain d2 ::=",
		"domain d2 ::=\n    exports mgmt.mib.ip to \"public\" access ReadOnly frequency >= 5 minutes;")
	c := unbounded("no-widen")
	c.ForbidWidenAccess = true
	r := check(t, src, c)
	if got := clauses(r); len(got) != 1 || got[0] != ClauseWidenAccess {
		t.Fatalf("clauses %v, want widen-access", got)
	}
	if r.AddedPermissions != 1 {
		t.Errorf("AddedPermissions = %d, want 1", r.AddedPermissions)
	}
}

func TestCheckFullDeltaExceedsScope(t *testing.T) {
	c := unbounded("scoped")
	c.Scope = []string{"d1"}
	_, m := compile(t, baseSrc)
	k := NewChecker(m, m)
	r := k.Check(&consistency.ModelDelta{MIBChanged: true}, c)
	if got := clauses(r); len(got) != 1 || got[0] != ClauseScope {
		t.Fatalf("clauses %v, want scope", got)
	}
	// Identical models under a full delta: nothing added or removed.
	if r.AddedInstances != 0 || r.RemovedInstances != 0 ||
		r.AddedPermissions != 0 || r.RemovedPermissions != 0 {
		t.Errorf("counts: %+v", r)
	}
	// An unscoped contract tolerates the full delta.
	if r := k.Check(&consistency.ModelDelta{MIBChanged: true}, unbounded("open")); !r.OK() {
		t.Fatalf("unscoped full delta flagged: %v", r.Violations)
	}
}

func TestCheckEmptyDelta(t *testing.T) {
	_, m := compile(t, baseSrc)
	k := NewChecker(m, m)
	c := unbounded("strict")
	c.Scope = []string{"d1"}
	c.ForbidWidenAccess = true
	c.ForbidRelaxFrequency = true
	c.MaxAddedInstances = 0
	r := k.Check(&consistency.ModelDelta{}, c)
	if !r.OK() || r.DirtyInstances != 0 {
		t.Fatalf("empty delta: dirty=%d violations=%v", r.DirtyInstances, r.Violations)
	}
}

func TestCheckNilBaseline(t *testing.T) {
	// No baseline: everything is new. The counts reflect that; widening
	// fires for every grant (nothing pre-edit covers them).
	_, m := compile(t, baseSrc)
	k := NewChecker(nil, m)
	c := unbounded("bounded")
	c.MaxAddedInstances = 1
	r := k.Check(nil, c)
	if r.AddedInstances != len(m.Instances) {
		t.Errorf("AddedInstances = %d, want %d", r.AddedInstances, len(m.Instances))
	}
	if got := clauses(r); len(got) != 1 || got[0] != ClauseMaxAddedInstances {
		t.Fatalf("clauses %v", got)
	}
}

func TestResultSummary(t *testing.T) {
	r := &Result{Contract: "c", DirtyInstances: 3, AddedInstances: 1}
	if s := r.Summary(); !strings.Contains(s, "OK") || !strings.Contains(s, "contract c") {
		t.Errorf("summary %q", s)
	}
	r.Violations = []ContractViolation{{Contract: "c", Clause: ClauseScope, Message: "m"}}
	if s := r.Summary(); !strings.Contains(s, "VIOLATED (1)") {
		t.Errorf("summary %q", s)
	}
}

package changespec

import (
	"fmt"
	"sort"
	"strings"

	"nmsl/internal/consistency"
)

// ContractViolation is one clause violation, carrying the offending
// delta entry (an instance ID, a domain name, or a rendered
// permission) so the operator sees exactly what escaped the contract.
type ContractViolation struct {
	// Contract is the violated contract's name.
	Contract string
	// Clause is the violated clause's slug (Clause* constants).
	Clause string
	// Entry is the offending delta entry.
	Entry string
	// Message is the rendered human-readable cause.
	Message string
}

// Error implements error, so single violations compose with %w.
func (v ContractViolation) Error() string { return v.Message }

// ContractError aggregates a contract's violations; it is what the
// rollout pre-gate and the CLIs surface.
type ContractError struct {
	// Contract is the violated contract's name.
	Contract string
	// Violations lists every clause violation, deterministically
	// ordered.
	Violations []ContractViolation
}

func (e *ContractError) Error() string {
	return fmt.Sprintf("changespec: edit violates contract %s: %d violation(s), first: %s",
		e.Contract, len(e.Violations), e.Violations[0].Message)
}

// Result is one contract evaluation over one edit. The counts are
// properties of the delta alone (computed whether or not the related
// clause is armed), so callers can report edit sizes uniformly.
type Result struct {
	// Contract is the evaluated contract's name.
	Contract string
	// DirtyInstances counts the instances the delta touches (in the
	// post-edit model).
	DirtyInstances int
	// AddedInstances / RemovedInstances count instances that exist in
	// exactly one of the two models.
	AddedInstances   int
	RemovedInstances int
	// AddedPermissions / RemovedPermissions count grant slots
	// (declaring site, grantee, data subtree) that exist in exactly one
	// of the two models.
	AddedPermissions   int
	RemovedPermissions int
	// Violations lists every clause violation, deterministically
	// ordered (grant and scope clauses sorted by clause then entry,
	// size-bound clauses last).
	Violations []ContractViolation
}

// OK reports whether the edit satisfied the contract.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

// Err returns nil for a satisfied contract, or the aggregate
// *ContractError.
func (r *Result) Err() error {
	if r.OK() {
		return nil
	}
	return &ContractError{Contract: r.Contract, Violations: r.Violations}
}

// Summary renders a one-line account of the evaluation.
func (r *Result) Summary() string {
	verdict := "OK"
	if !r.OK() {
		verdict = fmt.Sprintf("VIOLATED (%d)", len(r.Violations))
	}
	return fmt.Sprintf("contract %s: %s — %d dirty instance(s), +%d/-%d instance(s), +%d/-%d permission(s)",
		r.Contract, verdict, r.DirtyInstances,
		r.AddedInstances, r.RemovedInstances, r.AddedPermissions, r.RemovedPermissions)
}

// Checker evaluates contracts against the edit from old to new. The
// permission indexes are built once at construction (one pass over
// each model); every Check after that is delta-scoped — proportional
// to the edit's dirty set, not the internet — which is what keeps the
// rollout pre-gate within a few percent of a bare CheckDelta.
type Checker struct {
	old, new *consistency.Model
	// byGrantor indexes each model's permissions by granting party
	// (instance ID or domain), the unit the dirty set names.
	oldByGrantor map[string][]*consistency.Perm
	newByGrantor map[string][]*consistency.Perm
	// oldByDecl indexes the pre-edit permissions by declaring site
	// ("process p" / "domain d"): the widen-access coverage probe, so
	// replicating an existing export onto a new instance is not
	// mistaken for a new grant shape.
	oldByDecl map[string][]*consistency.Perm
}

// NewChecker builds a Checker over the pre-edit (old) and post-edit
// (new) models. old may be nil (no baseline): every instance and
// permission then counts as added.
func NewChecker(old, new *consistency.Model) *Checker {
	k := &Checker{
		old:          old,
		new:          new,
		oldByGrantor: map[string][]*consistency.Perm{},
		newByGrantor: map[string][]*consistency.Perm{},
		oldByDecl:    map[string][]*consistency.Perm{},
	}
	if old != nil {
		for i := range old.Perms {
			p := &old.Perms[i]
			gk := grantorKey(p)
			k.oldByGrantor[gk] = append(k.oldByGrantor[gk], p)
			k.oldByDecl[p.DeclaredBy] = append(k.oldByDecl[p.DeclaredBy], p)
		}
	}
	if new != nil {
		for i := range new.Perms {
			p := &new.Perms[i]
			gk := grantorKey(p)
			k.newByGrantor[gk] = append(k.newByGrantor[gk], p)
		}
	}
	return k
}

// grantorKey identifies a permission's granting party.
func grantorKey(p *consistency.Perm) string {
	if p.GrantorInst != "" {
		return "i|" + p.GrantorInst
	}
	return "d|" + p.GrantorDomain
}

// slotKey identifies a grant slot within one grantor: the grantee and
// the exported subtree. Access and frequency are the slot's mutable
// attributes (widen/relax territory), not its identity.
func slotKey(p *consistency.Perm) string {
	return p.Grantee + "\x00" + p.Var.Path()
}

// fullDelta reports whether the delta forces whole-model evaluation
// (mirroring CheckDelta's fallback-to-full conditions).
func fullDelta(d *consistency.ModelDelta) bool {
	return d == nil || d.Full || d.MIBChanged
}

// Check evaluates one contract against the edit described by delta.
// The dirty set is the same conservative one CheckDelta re-verifies
// (consulting both models' containment ancestry), so anything the
// incremental checker would re-prove is also what the contract
// constrains.
func (k *Checker) Check(delta *consistency.ModelDelta, c *Contract) *Result {
	r := &Result{Contract: c.Name}
	full := fullDelta(delta)

	dirtyNew := delta.DirtyInstances(k.new, k.old)
	dirtyOld := delta.DirtyInstances(k.old, k.new)
	r.DirtyInstances = len(dirtyNew)

	// Instance churn: an instance is added (removed) when it is dirty
	// and absent from the other model. On a warm delta both dirty sets
	// are edit-sized; on a full delta this degrades to a whole-model
	// set difference, which is still linear.
	var added, removed []string
	for _, in := range dirtyNew {
		if k.old == nil || k.old.InstanceByID(in.ID) == nil {
			added = append(added, in.ID)
		}
	}
	for _, in := range dirtyOld {
		if k.new == nil || k.new.InstanceByID(in.ID) == nil {
			removed = append(removed, in.ID)
		}
	}
	r.AddedInstances, r.RemovedInstances = len(added), len(removed)

	// Scope: every dirty instance (in whichever model it exists) and
	// every changed domain must sit under a scope domain.
	if len(c.Scope) > 0 {
		if full {
			r.violate(ClauseScope, "",
				"edit invalidates the whole model (full or MIB-level change), exceeding contract scope %v", c.Scope)
		} else {
			for _, in := range dirtyNew {
				if !inScope(k.new, in.ID, c.Scope) {
					r.violate(ClauseScope, in.ID,
						"edit touches instance %s outside contract scope %v", in.ID, c.Scope)
				}
			}
			for _, in := range dirtyOld {
				if k.new != nil && k.new.InstanceByID(in.ID) != nil {
					continue // already judged against the post-edit model
				}
				if !inScope(k.old, in.ID, c.Scope) {
					r.violate(ClauseScope, in.ID,
						"edit removes instance %s outside contract scope %v", in.ID, c.Scope)
				}
			}
			for _, d := range delta.Domains {
				if !domainInScope(k.new, d, c.Scope) && !domainInScope(k.old, d, c.Scope) {
					r.violate(ClauseScope, "domain "+d,
						"edit changes domain %s outside contract scope %v", d, c.Scope)
				}
			}
		}
	}

	// Permission churn over the dirty grantors: the granting parties
	// the delta touches in either model, plus every changed domain
	// (domain-level exports).
	for _, gk := range k.dirtyGrantors(delta, dirtyNew, dirtyOld, full) {
		k.diffGrantor(gk, c, r)
	}

	sortViolations(r.Violations)

	if c.MaxAddedInstances >= 0 && r.AddedInstances > c.MaxAddedInstances {
		r.violate(ClauseMaxAddedInstances, sample(added),
			"edit adds %d instance(s), contract allows %d", r.AddedInstances, c.MaxAddedInstances)
	}
	if c.MaxRemovedInstances >= 0 && r.RemovedInstances > c.MaxRemovedInstances {
		r.violate(ClauseMaxRemovedInsts, sample(removed),
			"edit removes %d instance(s), contract allows %d", r.RemovedInstances, c.MaxRemovedInstances)
	}
	if c.MaxAddedPermissions >= 0 && r.AddedPermissions > c.MaxAddedPermissions {
		r.violate(ClauseMaxAddedPerms, "",
			"edit adds %d permission(s), contract allows %d", r.AddedPermissions, c.MaxAddedPermissions)
	}
	if c.MaxRemovedPermissions >= 0 && r.RemovedPermissions > c.MaxRemovedPermissions {
		r.violate(ClauseMaxRemovedPerms, "",
			"edit removes %d permission(s), contract allows %d", r.RemovedPermissions, c.MaxRemovedPermissions)
	}
	return r
}

// dirtyGrantors collects the granting-party keys the delta touches,
// sorted for deterministic violation order. On a full delta it is
// every grantor of either model.
func (k *Checker) dirtyGrantors(delta *consistency.ModelDelta, dirtyNew, dirtyOld []*consistency.Instance, full bool) []string {
	set := map[string]bool{}
	if full {
		for gk := range k.oldByGrantor {
			set[gk] = true
		}
		for gk := range k.newByGrantor {
			set[gk] = true
		}
	} else {
		for _, in := range dirtyNew {
			set["i|"+in.ID] = true
		}
		for _, in := range dirtyOld {
			set["i|"+in.ID] = true
		}
		for _, d := range delta.Domains {
			set["d|"+d] = true
		}
	}
	out := make([]string, 0, len(set))
	for gk := range set {
		out = append(out, gk)
	}
	sort.Strings(out)
	return out
}

// diffGrantor compares one granting party's permissions across the
// edit: slots present on exactly one side count as added/removed;
// matched slots are checked for widened access and relaxed frequency.
func (k *Checker) diffGrantor(gk string, c *Contract, r *Result) {
	news := k.newByGrantor[gk]
	olds := k.oldByGrantor[gk]
	if len(news) == 0 && len(olds) == 0 {
		return
	}
	// Multiset of the old side's slots (duplicate slots are legal —
	// the same subtree exported twice — so counts, not booleans).
	remaining := make(map[string][]*consistency.Perm, len(olds))
	for _, p := range olds {
		sk := slotKey(p)
		remaining[sk] = append(remaining[sk], p)
	}
	for _, np := range news {
		sk := slotKey(np)
		if ops := remaining[sk]; len(ops) > 0 {
			op := ops[0]
			remaining[sk] = ops[1:]
			if c.ForbidWidenAccess && !op.Access.Covers(np.Access) {
				r.violate(ClauseWidenAccess, np.String(),
					"edit widens access of %s from %s to %s", np.String(), op.Access, np.Access)
			}
			if c.ForbidRelaxFrequency && relaxes(op, np) {
				r.violate(ClauseRelaxFrequency, np.String(),
					"edit relaxes frequency bound of %s (was period %s %gs)",
					np.String(), boundOp(op.Strict), op.MinPeriod)
			}
			continue
		}
		// A slot with no same-grantor predecessor: new surface. It is
		// widening only when no pre-edit grant from the same declaring
		// site covers it — a replica of an existing export (new
		// instance of an old process type) is growth, not widening,
		// and the added-permissions bound governs it.
		r.AddedPermissions++
		if c.ForbidWidenAccess && !k.declCovers(np) {
			r.violate(ClauseWidenAccess, np.String(),
				"edit grants new access %s not covered by any pre-edit grant of %s", np.String(), np.DeclaredBy)
		}
	}
	for _, ops := range remaining {
		r.RemovedPermissions += len(ops)
	}
}

// declCovers reports whether some pre-edit permission from the same
// declaring site covers np's grantee, data and access (and does not
// relax its frequency bound). Data containment compares MIB paths —
// the two models own distinct name trees, so node identity does not
// carry across the edit.
func (k *Checker) declCovers(np *consistency.Perm) bool {
	for _, op := range k.oldByDecl[np.DeclaredBy] {
		if op.Grantee == np.Grantee && pathContains(op.Var.Path(), np.Var.Path()) &&
			op.Access.Covers(np.Access) && !relaxes(op, np) {
			return true
		}
	}
	return false
}

// pathContains reports whether the dotted MIB path inner lies in the
// subtree rooted at outer (inclusive).
func pathContains(outer, inner string) bool {
	return outer == inner || strings.HasPrefix(inner, outer+".")
}

// relaxes reports whether the new permission's frequency bound is
// weaker than the old one's: a lower minimum period, or the same
// period with ">" weakened to ">=". A zero period means unconstrained,
// which the comparison handles naturally (0 < anything positive).
func relaxes(op, np *consistency.Perm) bool {
	if np.MinPeriod < op.MinPeriod {
		return true
	}
	return np.MinPeriod == op.MinPeriod && op.Strict && !np.Strict
}

func boundOp(strict bool) string {
	if strict {
		return ">"
	}
	return ">="
}

// inScope reports whether the instance sits under any scope domain.
func inScope(m *consistency.Model, instID string, scope []string) bool {
	if m == nil {
		return false
	}
	for _, d := range scope {
		if m.PartyInDomain(instID, d) {
			return true
		}
	}
	return false
}

// domainInScope reports whether any scope domain contains d.
func domainInScope(m *consistency.Model, d string, scope []string) bool {
	if m == nil {
		return false
	}
	for _, s := range scope {
		if m.DomainContains(s, d) {
			return true
		}
	}
	return false
}

// violate appends one violation.
func (r *Result) violate(clause, entry, format string, args ...any) {
	r.Violations = append(r.Violations, ContractViolation{
		Contract: r.Contract,
		Clause:   clause,
		Entry:    entry,
		Message:  fmt.Sprintf(format, args...),
	})
}

// sortViolations orders violations by clause then entry, so reports
// are deterministic regardless of map iteration.
func sortViolations(vs []ContractViolation) {
	sort.SliceStable(vs, func(i, j int) bool {
		if vs[i].Clause != vs[j].Clause {
			return vs[i].Clause < vs[j].Clause
		}
		return vs[i].Entry < vs[j].Entry
	})
}

// sample renders up to five entries for a count-clause violation.
func sample(ids []string) string {
	sort.Strings(ids)
	if len(ids) > 5 {
		return strings.Join(ids[:5], ", ") + fmt.Sprintf(", … (%d total)", len(ids))
	}
	return strings.Join(ids, ", ")
}

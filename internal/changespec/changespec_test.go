package changespec

import (
	"strings"
	"testing"
)

const fullContract = `
contract safe-edit ::=
    scope dom3, dom5;
    forbid widen-access;
    forbid relax-frequency;
    max added instances 2;
    max removed instances 0;
    max added permissions 4;
    max removed permissions 1;
end contract safe-edit.
`

func TestParseContract(t *testing.T) {
	cs, err := Parse("safe.ncs", fullContract)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 {
		t.Fatalf("got %d contracts, want 1", len(cs))
	}
	c := cs[0]
	if c.Name != "safe-edit" {
		t.Errorf("name %q", c.Name)
	}
	if got, want := strings.Join(c.Scope, ","), "dom3,dom5"; got != want {
		t.Errorf("scope %q, want %q", got, want)
	}
	if !c.ForbidWidenAccess || !c.ForbidRelaxFrequency {
		t.Errorf("forbid flags: widen=%v relax=%v", c.ForbidWidenAccess, c.ForbidRelaxFrequency)
	}
	if c.MaxAddedInstances != 2 || c.MaxRemovedInstances != 0 ||
		c.MaxAddedPermissions != 4 || c.MaxRemovedPermissions != 1 {
		t.Errorf("bounds: %+v", c)
	}
}

func TestParseContractDefaults(t *testing.T) {
	cs, err := Parse("min.ncs", "contract anything-goes ::= end contract anything-goes.")
	if err != nil {
		t.Fatal(err)
	}
	c := cs[0]
	if len(c.Scope) != 0 || c.ForbidWidenAccess || c.ForbidRelaxFrequency {
		t.Errorf("unexpected restrictions: %+v", c)
	}
	for _, n := range []int{c.MaxAddedInstances, c.MaxRemovedInstances, c.MaxAddedPermissions, c.MaxRemovedPermissions} {
		if n != -1 {
			t.Errorf("bound %d, want -1 (unbounded)", n)
		}
	}
}

func TestParseMultipleContracts(t *testing.T) {
	cs, err := Parse("two.ncs", `
contract a ::= scope dom1; end contract a.
contract b ::= forbid widen-access; end contract b.
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 || cs[0].Name != "a" || cs[1].Name != "b" {
		t.Fatalf("got %v", cs)
	}
}

func TestParseQuotedScope(t *testing.T) {
	cs, err := Parse("q.ncs", `contract q ::= scope "Computer Sciences", dom1; end contract q.`)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(cs[0].Scope, "|"); got != "Computer Sciences|dom1" {
		t.Errorf("scope %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"empty file", "-- nothing here", "no contract declarations"},
		{"wrong decl type", "domain d ::= end domain d.", "only contract declarations"},
		{"params", "contract c(A: Process) ::= end contract c.", "no parameters"},
		{"unknown clause", "contract c ::= widen everything; end contract c.", "unknown clause"},
		{"empty scope", "contract c ::= scope; end contract c.", "names no domains"},
		{"trailing comma", "contract c ::= scope dom1,; end contract c.", "ends with a comma"},
		{"bad forbid", "contract c ::= forbid bad-things; end contract c.", "unknown property"},
		{"forbid arity", "contract c ::= forbid; end contract c.", "exactly one"},
		{"bad max subject", "contract c ::= max added domains 3; end contract c.", "unknown subject"},
		{"max arity", "contract c ::= max added instances; end contract c.", "max clause wants"},
		{"max non-int", "contract c ::= max added instances lots; end contract c.", "max clause wants"},
		{"duplicate max", "contract c ::= max added instances 1; max added instances 2; end contract c.", "duplicate max"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("bad.ncs", tc.src)
			if err == nil {
				t.Fatalf("no error for %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// Errors must carry the conventional file:line:col prefix so editors
// can jump to them.
func TestParseErrorPosition(t *testing.T) {
	_, err := Parse("pos.ncs", "contract c ::=\n    forbid bad-things;\nend contract c.")
	if err == nil {
		t.Fatal("no error")
	}
	if !strings.Contains(err.Error(), "pos.ncs:2:") {
		t.Errorf("error %q lacks pos.ncs:2: prefix", err)
	}
}

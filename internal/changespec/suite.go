package changespec

import (
	"fmt"
	"strings"

	"nmsl/internal/netsim"
)

// Generated change suite: a corpus of specification edits over a
// netsim internet, each labelled with the contract clauses it must
// violate (empty = must pass) under the reference contract in
// testdata/contracts/suite-guard.ncs:
//
//	scope dom0, dom1; forbid widen-access; forbid relax-frequency;
//	max added instances 2;   max removed instances 0;
//	max added permissions 2; max removed permissions 0;
//
// The edits are produced by string surgery on the generator's exact
// output, and every substitution insists on a unique match — if the
// netsim templates drift, the suite fails loudly instead of silently
// testing nothing (see EXPERIMENTS.md E-RELA).

// Edit is one suite entry: a full post-edit source and the clause
// slugs the reference contract must flag it with.
type Edit struct {
	// Name identifies the edit in test output.
	Name string
	// Source is the complete post-edit specification text.
	Source string
	// MustViolate lists the clause slugs (Clause* constants) the
	// reference contract must report, sorted; empty means the edit must
	// satisfy the contract.
	MustViolate []string
}

// replace1 substitutes old with new, erroring unless old occurs
// exactly once — the drift tripwire for the whole suite.
func replace1(src, old, new string) (string, error) {
	switch n := strings.Count(src, old); n {
	case 1:
		return strings.Replace(src, old, new, 1), nil
	default:
		return "", fmt.Errorf("changespec: suite anchor occurs %d times (netsim templates drifted?): %q", n, old)
	}
}

// agentExport is the agent process block's head through its export
// clause — unique per domain because it embeds the process name.
func agentExport(d int) string {
	return fmt.Sprintf(`process agentT%d ::=
    supports mgmt.mib.system, mgmt.mib.ip;
    exports mgmt.mib.system to "public"
        access ReadOnly
        frequency >= 5 minutes;`, d)
}

// pollerQuery is the poller's query clause, unique per peer (every
// domain's poller targets a distinct agent type on the ring).
func pollerQuery(peer int) string {
	return fmt.Sprintf(`queries agentT%d
        requests mgmt.mib.system.sysDescr
        frequency >= 5 minutes;`, peer)
}

// systemBlock is one member system's declaration, with the surrounding
// blank line the generator emits.
func systemBlock(d, s int) string {
	return fmt.Sprintf(`
system "sys-%d-%d" ::=
    cpu sparc;
    interface ie0 net lan-%d type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib.system, mgmt.mib.ip;
    process agentT%d;
end system "sys-%d-%d".
`, d, s, d, d, d, s)
}

// addSystem declares a new system in domain d and adds it to the
// domain's membership.
func addSystem(src string, d, s int) (string, error) {
	src, err := replace1(src, fmt.Sprintf("\ndomain dom%d ::=\n", d),
		systemBlock(d, s)+fmt.Sprintf("\ndomain dom%d ::=\n    system \"sys-%d-%d\";\n", d, d, s))
	if err != nil {
		return "", err
	}
	return src, nil
}

// removeSystem deletes system s of domain d and its membership line.
func removeSystem(src string, d, s int) (string, error) {
	src, err := replace1(src, systemBlock(d, s), "\n")
	if err != nil {
		return "", err
	}
	return replace1(src, fmt.Sprintf("    system \"sys-%d-%d\";\n", d, s), "")
}

// Suite generates the change corpus over the internet sized by p
// (p.InconsistencyRate should be zero so poller frequencies are
// uniform). It returns the unedited base source and the labelled
// edits. p.Domains must be at least 3 so the out-of-scope edits have
// somewhere to land.
func Suite(p netsim.Params) (string, []Edit, error) {
	if p.Domains < 3 {
		return "", nil, fmt.Errorf("changespec: suite needs at least 3 domains, got %d", p.Domains)
	}
	base := netsim.Source(p)

	var edits []Edit
	add := func(name string, mustViolate []string, build func(string) (string, error)) error {
		src, err := build(base)
		if err != nil {
			return fmt.Errorf("edit %s: %w", name, err)
		}
		edits = append(edits, Edit{Name: name, Source: src, MustViolate: mustViolate})
		return nil
	}

	steps := []struct {
		name        string
		mustViolate []string
		build       func(string) (string, error)
	}{
		// A formatting-only change produces an empty delta: nothing to
		// gate.
		{"noop-comment", nil, func(s string) (string, error) {
			return s + "\n-- suite: formatting-only change\n", nil
		}},
		// Slowing a poller inside the scoped domains is the intended
		// kind of edit.
		{"retune-poller-in-scope", nil, func(s string) (string, error) {
			return replace1(s, pollerQuery(1),
				strings.Replace(pollerQuery(1), ">= 5 minutes", ">= 10 minutes", 1))
		}},
		// The same retune in the last ring domain escapes the scope.
		{"retune-poller-out-of-scope", []string{ClauseScope}, func(s string) (string, error) {
			peer := 0 // the last domain's poller targets agentT0
			return replace1(s, pollerQuery(peer),
				strings.Replace(pollerQuery(peer), ">= 5 minutes", ">= 10 minutes", 1))
		}},
		// ReadOnly -> Any on a matched grant slot is widening.
		{"widen-access", []string{ClauseWidenAccess}, func(s string) (string, error) {
			return replace1(s, agentExport(0),
				strings.Replace(agentExport(0), "access ReadOnly", "access Any", 1))
		}},
		// Lowering an export's minimum period relaxes its bound.
		{"relax-export-frequency", []string{ClauseRelaxFrequency}, func(s string) (string, error) {
			return replace1(s, agentExport(0),
				strings.Replace(agentExport(0), "frequency >= 5 minutes", "frequency >= 1 minutes", 1))
		}},
		// Raising the period tightens the grant: contract-clean even
		// though it makes the internet inconsistent (peers still poll at
		// 5 minutes) — contracts bound the edit, the checker judges the
		// result.
		{"tighten-export-frequency", nil, func(s string) (string, error) {
			return replace1(s, agentExport(1),
				strings.Replace(agentExport(1), "frequency >= 5 minutes", "frequency >= 10 minutes", 1))
		}},
		// One new system: one new agent instance, one replicated export
		// — inside every bound, and replication is not widening.
		{"add-system", nil, func(s string) (string, error) {
			return addSystem(s, 0, 9)
		}},
		// Three new systems blow both added-* budgets.
		{"add-many-systems", []string{ClauseMaxAddedInstances, ClauseMaxAddedPerms}, func(s string) (string, error) {
			var err error
			for _, n := range []int{9, 10, 11} {
				if s, err = addSystem(s, 0, n); err != nil {
					return "", err
				}
			}
			return s, nil
		}},
		// Removing a system destroys an instance and its grant; the
		// contract allows removing neither.
		{"remove-system", []string{ClauseMaxRemovedInsts, ClauseMaxRemovedPerms}, func(s string) (string, error) {
			return removeSystem(s, 0, 1)
		}},
		// A new domain-level export has no covering pre-edit grant from
		// that declaration site: widening, even though it is in scope and
		// within the added-permissions budget.
		{"widen-domain-export", []string{ClauseWidenAccess}, func(s string) (string, error) {
			return replace1(s, "\ndomain dom1 ::=\n",
				"\ndomain dom1 ::=\n    exports mgmt.mib.ip to \"public\" access ReadOnly frequency >= 5 minutes;\n")
		}},
		// A type declaration extends the MIB name tree: the delta goes
		// full, and no finite scope covers a whole-model edit.
		{"add-mib-type", []string{ClauseScope}, func(s string) (string, error) {
			return s + `
type suiteExtra ::=
    OCTET STRING;
    access ReadOnly;
end type suiteExtra.
`, nil
		}},
		// A new poller application in a scoped domain: one instance, no
		// new grants. Appended after the existing poller — instance IDs
		// are positional within a domain's process list, so prepending
		// would rename pollerT0's instance (a remove + add).
		{"add-poller-app", nil, func(s string) (string, error) {
			s += `
process suitePoller ::=
    queries agentT1
        requests mgmt.mib.system.sysDescr
        frequency >= 5 minutes;
end process suitePoller.
`
			return replace1(s, "end domain dom0.\n", "    process suitePoller;\nend domain dom0.\n")
		}},
	}
	for _, st := range steps {
		if err := add(st.name, st.mustViolate, st.build); err != nil {
			return "", nil, err
		}
	}
	return base, edits, nil
}

package obs

import (
	"fmt"
	"io"
)

// CLI is the observability bundle a command starts from its
// -metrics-addr and -trace-out flags: an HTTP endpoint over the
// Default registry and/or a span log file installed as the process
// span sink. A nil *CLI is valid and closes to nothing, so commands
// can unconditionally defer Close.
type CLI struct {
	// Server is the running endpoint, nil when no address was given.
	Server *Server
	sink   *FileSink
	prev   SpanSink
}

// StartCLI wires up the flag-selected observability: when metricsAddr
// is non-empty it serves /metrics, /debug/vars and /debug/pprof there
// (announcing the bound address on stderr, so ":0" is usable), and
// when traceOut is non-empty it appends completed spans to that file
// as JSON lines. Either may be empty; when both are, it returns a nil
// CLI.
func StartCLI(metricsAddr, traceOut string, stderr io.Writer) (*CLI, error) {
	if metricsAddr == "" && traceOut == "" {
		return nil, nil
	}
	cli := &CLI{}
	if traceOut != "" {
		sink, err := NewFileSink(traceOut)
		if err != nil {
			return nil, fmt.Errorf("trace-out: %w", err)
		}
		cli.sink = sink
		cli.prev = SetSpanSink(sink)
	}
	if metricsAddr != "" {
		srv, err := Serve(metricsAddr, Default)
		if err != nil {
			if cli.sink != nil {
				SetSpanSink(cli.prev)
				cli.sink.Close()
			}
			return nil, fmt.Errorf("metrics-addr: %w", err)
		}
		cli.Server = srv
		fmt.Fprintf(stderr, "metrics: serving http://%s/metrics (also /debug/vars, /debug/pprof)\n", srv.Addr())
	}
	return cli, nil
}

// Close stops the endpoint and detaches and flushes the span log.
func (c *CLI) Close() error {
	if c == nil {
		return nil
	}
	var err error
	if c.Server != nil {
		err = c.Server.Close()
	}
	if c.sink != nil {
		SetSpanSink(c.prev)
		if cerr := c.sink.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

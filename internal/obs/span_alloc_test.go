package obs

import "testing"

// TestStartSpanDisabledZeroAlloc pins the disabled-tracing contract the
// sharded checker's hot loop depends on: with no sink installed, a
// zero-label StartSpan/Label/End cycle performs zero allocations (the
// varargs slice must not materialize and the zero Span must stay on the
// stack). A regression here taxes every shard of every check.
func TestStartSpanDisabledZeroAlloc(t *testing.T) {
	prev := SetSpanSink(nil)
	defer SetSpanSink(prev)
	allocs := testing.AllocsPerRun(1000, func() {
		sp := StartSpan("check.shard")
		sp.Label("refs", "12")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled StartSpan/Label/End allocates %.1f objects per op, want 0", allocs)
	}
}

// TestSpanActive pins the Active gate callers use to skip building
// label values (strconv/fmt) when tracing is off.
func TestSpanActive(t *testing.T) {
	prev := SetSpanSink(nil)
	defer SetSpanSink(prev)
	sp := StartSpan("x")
	if sp.Active() {
		t.Fatal("span active with no sink installed")
	}
	col := &CollectorSink{}
	SetSpanSink(col)
	sp = StartSpan("x")
	if !sp.Active() {
		t.Fatal("span inactive with a sink installed")
	}
	sp.End()
	if sp.Active() {
		t.Fatal("span still active after End")
	}
}

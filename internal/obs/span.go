package obs

import (
	"bufio"
	"encoding/json"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Tracing spans. A span brackets one unit of work — a whole check, one
// shard, one rollout target, one served request — with a name, labels
// and wall-clock bounds. There is deliberately no context plumbing and
// no span tree: the subsystems here are shallow, and a flat stream of
// (name, labels, start, duration) records answers the operational
// questions ("where did that rollout's two seconds go?") without
// taxing the hot paths. When no sink is installed — the default —
// StartSpan costs one atomic load and End is a no-op.

// Label is one key/value annotation on a span.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanEvent is one completed span as delivered to a sink.
type SpanEvent struct {
	Name   string        `json:"name"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur_ns"`
	Labels []Label       `json:"labels,omitempty"`
}

// SpanSink receives completed spans. Emit may be called concurrently.
type SpanSink interface {
	Emit(SpanEvent)
}

// sinkBox wraps the sink so the atomic pointer always has a concrete
// type to point at.
type sinkBox struct{ sink SpanSink }

var spanSink atomic.Pointer[sinkBox]

// SetSpanSink installs the process-wide span sink; nil uninstalls it
// (the default, making all spans free). It returns the previous sink
// so tests can restore it.
func SetSpanSink(s SpanSink) SpanSink {
	var prev *sinkBox
	if s == nil {
		prev = spanSink.Swap(nil)
	} else {
		prev = spanSink.Swap(&sinkBox{sink: s})
	}
	if prev == nil {
		return nil
	}
	return prev.sink
}

// TracingEnabled reports whether a span sink is installed — one atomic
// load, the entire cost of an un-traced span.
func TracingEnabled() bool { return spanSink.Load() != nil }

// Span is an in-flight span. The zero Span (returned by StartSpan when
// tracing is off) makes every method a no-op.
type Span struct {
	name   string
	start  time.Time
	labels []Label
	active bool
}

// StartSpan begins a span when a sink is installed; otherwise it
// returns an inert Span.
func StartSpan(name string, labels ...Label) Span {
	if spanSink.Load() == nil {
		return Span{}
	}
	return Span{name: name, start: time.Now(), labels: labels, active: true}
}

// Active reports whether the span is live (a sink was installed when it
// started). Hot paths use it to skip building label values — the
// strconv/fmt work feeding Label — when tracing is off.
func (s *Span) Active() bool { return s.active }

// Label adds an annotation to an active span.
func (s *Span) Label(key, value string) {
	if s.active {
		s.labels = append(s.labels, Label{Key: key, Value: value})
	}
}

// End completes the span and delivers it to the sink installed at End
// time.
func (s *Span) End() {
	if !s.active {
		return
	}
	s.active = false
	box := spanSink.Load()
	if box == nil {
		return
	}
	box.sink.Emit(SpanEvent{
		Name:   s.name,
		Start:  s.start,
		Dur:    time.Since(s.start),
		Labels: s.labels,
	})
}

// FileSink writes spans as JSON lines, one object per span — the
// -trace-out format of the cmds. Safe for concurrent Emit.
type FileSink struct {
	mu  sync.Mutex
	f   *os.File
	buf *bufio.Writer
	enc *json.Encoder
}

// NewFileSink opens (appending) or creates the span log at path.
func NewFileSink(path string) (*FileSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	fs := &FileSink{f: f, buf: bufio.NewWriter(f)}
	fs.enc = json.NewEncoder(fs.buf)
	return fs, nil
}

// Emit writes one span record.
func (fs *FileSink) Emit(ev SpanEvent) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_ = fs.enc.Encode(ev)
}

// Close flushes and closes the log.
func (fs *FileSink) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.buf.Flush(); err != nil {
		fs.f.Close()
		return err
	}
	return fs.f.Close()
}

// CollectorSink buffers spans in memory; tests use it to assert on the
// span stream.
type CollectorSink struct {
	mu    sync.Mutex
	spans []SpanEvent
}

// Emit appends the span.
func (c *CollectorSink) Emit(ev SpanEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.spans = append(c.spans, ev)
}

// Spans returns a copy of everything collected so far.
func (c *CollectorSink) Spans() []SpanEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]SpanEvent(nil), c.spans...)
}

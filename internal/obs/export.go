package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// Exporters. Two formats cover the two consumers: the Prometheus text
// exposition format for scrapers, and a JSON document (served at the
// expvar-conventional /debug/vars path) for humans with curl and for
// tests.
//
// Metric names may carry a label suffix in Prometheus syntax —
// L("rollout_targets_total", "status", "installed") yields
// `rollout_targets_total{status="installed"}` — which the registry
// treats as an opaque name and the text exporter emits verbatim, so
// one logical metric can be split by label without a label system in
// the registry itself.

// L renders a metric name with labels: L("x", "k", "v", ...) returns
// `x{k="v",...}`. Odd trailing key is ignored.
func L(name string, kv ...string) string {
	if len(kv) < 2 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(kv[i+1])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// splitName separates a metric name from its label suffix:
// `x{k="v"}` -> ("x", `k="v"`).
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// withLabel rejoins a base name with labels plus one extra label.
func withLabel(base, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return base
	case labels == "":
		return base + "{" + extra + "}"
	case extra == "":
		return base + "{" + labels + "}"
	}
	return base + "{" + labels + "," + extra + "}"
}

// WritePrometheus writes the registry in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	var err error
	typed := map[string]bool{}
	r.each(func(m *metric) {
		if err != nil {
			return
		}
		base, labels := splitName(m.name)
		switch {
		case m.c != nil:
			if !typed[base] {
				typed[base] = true
				_, err = fmt.Fprintf(w, "# TYPE %s counter\n", base)
			}
			if err == nil {
				_, err = fmt.Fprintf(w, "%s %d\n", withLabel(base, labels, ""), m.c.Value())
			}
		case m.g != nil:
			if !typed[base] {
				typed[base] = true
				_, err = fmt.Fprintf(w, "# TYPE %s gauge\n", base)
			}
			if err == nil {
				_, err = fmt.Fprintf(w, "%s %d\n", withLabel(base, labels, ""), m.g.Value())
			}
		case m.h != nil:
			if !typed[base] {
				typed[base] = true
				_, err = fmt.Fprintf(w, "# TYPE %s histogram\n", base)
			}
			run := int64(0)
			for i := range m.h.counts {
				if err != nil {
					return
				}
				run += m.h.counts[i].Load()
				le := "+Inf"
				if i < len(m.h.bounds) {
					le = strconv.FormatInt(m.h.bounds[i], 10)
				}
				_, err = fmt.Fprintf(w, "%s %d\n", withLabel(base+"_bucket", labels, `le="`+le+`"`), run)
			}
			if err == nil {
				_, err = fmt.Fprintf(w, "%s %d\n", withLabel(base+"_sum", labels, ""), m.h.Sum())
			}
			if err == nil {
				_, err = fmt.Fprintf(w, "%s %d\n", withLabel(base+"_count", labels, ""), m.h.Count())
			}
		}
	})
	return err
}

// WriteJSON writes the registry snapshot as one indented JSON object
// keyed by metric name.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Handler returns the observability endpoint for the registry:
//
//	/metrics     Prometheus text format
//	/debug/vars  JSON snapshot (expvar convention)
//	/debug/pprof the runtime profiler index, plus profile/trace/symbol
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

// Serve binds addr and serves Handler(r) on it until Close. The cmds'
// -metrics-addr flag lands here with the Default registry.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(r)}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Package obs is the observability layer: a dependency-free metrics
// registry (counters, gauges, histograms), lightweight tracing spans
// with a pluggable sink, and exporters in Prometheus text and JSON
// form. The paper's managers are meant to run over "very large,
// multi-domain internets"; at that scale the management system needs
// its own management, and this package is the instrumented view of the
// checker, the rollout machinery and the protocol endpoints.
//
// Design constraints, in order:
//
//   - Hot paths pay atomics, not locks. Counter.Add and
//     Histogram.Observe are a handful of atomic adds; registry lookups
//     happen once per run (or per long-lived component), never per
//     reference or per datagram.
//   - Everything is optional. A disabled Registry (see Disabled) turns
//     the instrumented code paths into straight-line code that skips
//     even the clock reads, so benchmarks can price the layer honestly.
//   - No dependencies. The exporter emits the Prometheus text
//     exposition format and a JSON document by hand; nothing outside
//     the standard library is imported.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is ignored: counters only go
// up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous int64 that can move both ways.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultBuckets are the histogram bucket upper bounds used when none
// are given: exponential from 1µs to ~17s when observations are
// nanoseconds, which covers everything from a shard check to a rollout
// with backoff. Observations above the last bound land in the implicit
// +Inf bucket.
var DefaultBuckets = []int64{
	1_000, 4_000, 16_000, 65_000, 262_000, // 1µs .. 262µs
	1_048_000, 4_194_000, 16_777_000, 67_108_000, // 1ms .. 67ms
	268_435_000, 1_073_741_000, 4_294_967_000, 17_179_869_000, // 268ms .. 17s
}

// Histogram counts observations into fixed buckets with an exact sum.
// All methods are safe for concurrent use; Observe is lock-free.
type Histogram struct {
	bounds []int64 // sorted upper bounds; +Inf bucket is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
}

// NewHistogram returns a standalone histogram over the given bucket
// upper bounds (DefaultBuckets when none are given). Bounds must be
// sorted ascending.
func NewHistogram(bounds ...int64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultBuckets
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns how many values have been observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Merge adds src's observations into h. Both histograms must share the
// same bucket bounds (as all histograms with default buckets do);
// mismatched shapes merge only count and sum.
func (h *Histogram) Merge(src *Histogram) {
	if src == nil {
		return
	}
	if len(src.counts) == len(h.counts) {
		for i := range src.counts {
			h.counts[i].Add(src.counts[i].Load())
		}
	}
	h.count.Add(src.count.Load())
	h.sum.Add(src.sum.Load())
}

// metric is the registry's uniform view of one named instrument.
type metric struct {
	name string
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named metrics. Lookups (Counter, Gauge, Histogram)
// get-or-create under a mutex and are meant to run once per component
// or per run; the returned instruments are then updated lock-free.
// The zero Registry is ready to use. A nil *Registry is valid and
// discards everything (see Disabled).
type Registry struct {
	disabled bool
	mu       sync.Mutex
	metrics  map[string]*metric
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry { return &Registry{} }

// Default is the process-wide registry: library code records here
// unless given a registry of its own, and the cmds' -metrics-addr
// endpoint exports it.
var Default = NewRegistry()

// Disabled is the off switch: a sentinel registry on which every
// lookup returns a shared discard instrument and Enabled() is false,
// so instrumented code can skip clock reads entirely. It is distinct
// from nil, which option structs reserve for "use Default".
var Disabled = &Registry{disabled: true}

// discard instruments absorb updates from code that does not bother
// checking Enabled.
var (
	discardCounter   = &Counter{}
	discardGauge     = &Gauge{}
	discardHistogram = NewHistogram()
)

// Enabled reports whether the registry records anything. Instrumented
// hot paths use it to skip the surrounding time.Now calls when
// observability is off.
func (r *Registry) Enabled() bool { return r != nil && !r.disabled }

func (r *Registry) lookup(name string) *metric {
	if r.metrics == nil {
		r.metrics = map[string]*metric{}
	}
	m := r.metrics[name]
	if m == nil {
		m = &metric{name: name}
		r.metrics[name] = m
	}
	return m
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if !r.Enabled() {
		return discardCounter
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookup(name)
	if m.c == nil {
		m.c = &Counter{}
	}
	return m.c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if !r.Enabled() {
		return discardGauge
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookup(name)
	if m.g == nil {
		m.g = &Gauge{}
	}
	return m.g
}

// Histogram returns the named histogram, creating it with
// DefaultBuckets on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if !r.Enabled() {
		return discardHistogram
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookup(name)
	if m.h == nil {
		m.h = NewHistogram()
	}
	return m.h
}

// each calls fn for every metric in name order.
func (r *Registry) each(fn func(*metric)) {
	if !r.Enabled() {
		return
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	ms := make([]*metric, len(names))
	for i, name := range names {
		ms[i] = r.metrics[name]
	}
	r.mu.Unlock()
	for _, m := range ms {
		fn(m)
	}
}

// Merge folds every metric of src into r, get-or-creating instruments
// of the same kind and name. Run-scoped code instruments a private
// registry and merges it into the shared one at the end, so the
// per-run snapshot stays exact even when runs overlap.
func (r *Registry) Merge(src *Registry) {
	if !r.Enabled() || !src.Enabled() {
		return
	}
	src.each(func(m *metric) {
		if m.c != nil {
			r.Counter(m.name).Add(m.c.Value())
		}
		if m.g != nil {
			r.Gauge(m.name).Set(m.g.Value())
		}
		if m.h != nil {
			r.Histogram(m.name).Merge(m.h)
		}
	})
}

package obs

import "sort"

// BucketCount is one histogram bucket in a snapshot: the number of
// observations at or below the upper bound Le.
type BucketCount struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// MetricValue is the frozen state of one metric.
type MetricValue struct {
	// Kind is "counter", "gauge" or "histogram".
	Kind string `json:"kind"`
	// Value holds counters and gauges.
	Value int64 `json:"value,omitempty"`
	// Count and Sum hold histograms; Buckets carries the cumulative
	// per-bucket counts (the final implicit +Inf bucket is Count).
	Count   int64         `json:"count,omitempty"`
	Sum     int64         `json:"sum,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, the form reports
// embed so tests and operators can assert on counts without scraping
// an endpoint. A nil Snapshot behaves as empty.
type Snapshot map[string]MetricValue

// Snapshot freezes every metric currently in the registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	r.each(func(m *metric) {
		switch {
		case m.c != nil:
			s[m.name] = MetricValue{Kind: "counter", Value: m.c.Value()}
		case m.g != nil:
			s[m.name] = MetricValue{Kind: "gauge", Value: m.g.Value()}
		case m.h != nil:
			mv := MetricValue{Kind: "histogram", Count: m.h.Count(), Sum: m.h.Sum()}
			run := int64(0)
			for i := range m.h.counts {
				run += m.h.counts[i].Load()
				le := int64(0)
				if i < len(m.h.bounds) {
					le = m.h.bounds[i]
				} else {
					le = -1 // +Inf
				}
				mv.Buckets = append(mv.Buckets, BucketCount{Le: le, Count: run})
			}
			s[m.name] = mv
		}
	})
	return s
}

// Value returns the named counter's or gauge's value, zero when
// absent.
func (s Snapshot) Value(name string) int64 { return s[name].Value }

// Count returns the named histogram's observation count, zero when
// absent.
func (s Snapshot) Count(name string) int64 { return s[name].Count }

// Sum returns the named histogram's observation sum, zero when absent.
func (s Snapshot) Sum(name string) int64 { return s[name].Sum }

// Names returns the metric names in sorted order.
func (s Snapshot) Names() []string {
	out := make([]string, 0, len(s))
	for name := range s {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("c_total") != c {
		t.Error("Counter lookup did not return the same instrument")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

func TestHistogramZeroObservations(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("zero histogram: count=%d sum=%d", h.Count(), h.Sum())
	}
	// Export of an observation-free histogram must still be well formed.
	r := NewRegistry()
	r.Histogram("empty_ns")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"# TYPE empty_ns histogram", "empty_ns_count 0", "empty_ns_sum 0", `empty_ns_bucket{le="+Inf"} 0`} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	s := r.Snapshot()
	if s.Count("empty_ns") != 0 || s.Sum("empty_ns") != 0 {
		t.Errorf("snapshot of empty histogram: %+v", s["empty_ns"])
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram(10, 100)
	for _, v := range []int64{1, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 5122 {
		t.Errorf("sum = %d, want 5122", h.Sum())
	}
	// Cumulative buckets: le=10 -> 2, le=100 -> 4, +Inf -> 5.
	want := []int64{2, 4, 5}
	run := int64(0)
	for i := range h.counts {
		run += h.counts[i].Load()
		if run != want[i] {
			t.Errorf("bucket %d cumulative = %d, want %d", i, run, want[i])
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	// Exercised under -race by make ci: concurrent Observe on one
	// histogram must be safe and lose no observations.
	h := NewHistogram()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Errorf("count = %d, want %d", got, workers*per)
	}
	var inBuckets int64
	for i := range h.counts {
		inBuckets += h.counts[i].Load()
	}
	if inBuckets != workers*per {
		t.Errorf("bucket total = %d, want %d", inBuckets, workers*per)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(10), NewHistogram(10)
	a.Observe(5)
	b.Observe(50)
	b.Observe(7)
	a.Merge(b)
	if a.Count() != 3 || a.Sum() != 62 {
		t.Errorf("merged count=%d sum=%d", a.Count(), a.Sum())
	}
	a.Merge(nil) // no-op
	if a.Count() != 3 {
		t.Errorf("merge(nil) changed count to %d", a.Count())
	}
}

func TestDisabledRegistry(t *testing.T) {
	if Disabled.Enabled() {
		t.Error("Disabled.Enabled() = true")
	}
	var nilReg *Registry
	if nilReg.Enabled() {
		t.Error("nil registry Enabled() = true")
	}
	Disabled.Counter("x").Inc() // must not panic or register
	nilReg.Gauge("y").Set(3)
	Disabled.Histogram("z").Observe(1)
	if len(Disabled.Snapshot()) != 0 {
		t.Error("disabled registry accumulated metrics")
	}
	enabled := NewRegistry()
	enabled.Counter("c").Inc()
	Disabled.Merge(enabled) // no-op, must not panic
}

func TestRegistryMerge(t *testing.T) {
	shared, run := NewRegistry(), NewRegistry()
	shared.Counter("c_total").Add(10)
	run.Counter("c_total").Add(5)
	run.Gauge("g").Set(3)
	run.Histogram("h_ns").Observe(100)
	shared.Merge(run)
	s := shared.Snapshot()
	if s.Value("c_total") != 15 {
		t.Errorf("merged counter = %d, want 15", s.Value("c_total"))
	}
	if s.Value("g") != 3 {
		t.Errorf("merged gauge = %d, want 3", s.Value("g"))
	}
	if s.Count("h_ns") != 1 || s.Sum("h_ns") != 100 {
		t.Errorf("merged histogram = %+v", s["h_ns"])
	}
}

func TestLabelsAndPrometheusFormat(t *testing.T) {
	name := L("targets_total", "status", "installed")
	if name != `targets_total{status="installed"}` {
		t.Fatalf("L() = %q", name)
	}
	r := NewRegistry()
	r.Counter(name).Add(3)
	r.Counter(L("targets_total", "status", "failed")).Add(1)
	r.Histogram(L("lat_ns", "status", "installed")).Observe(42)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`targets_total{status="installed"} 3`,
		`targets_total{status="failed"} 1`,
		`lat_ns_bucket{status="installed",le="1000"} 1`,
		`lat_ns_sum{status="installed"} 42`,
		`lat_ns_count{status="installed"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE targets_total counter") != 1 {
		t.Errorf("TYPE line not deduplicated:\n%s", out)
	}
}

func TestSnapshotNamesAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Inc()
	s := r.Snapshot()
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names() = %v", names)
	}
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]MetricValue
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v", err)
	}
	if decoded["a"].Value != 1 || decoded["a"].Kind != "counter" {
		t.Errorf("decoded = %+v", decoded)
	}
}

func TestSpansNoSinkIsInert(t *testing.T) {
	prev := SetSpanSink(nil)
	defer SetSpanSink(prev)
	if TracingEnabled() {
		t.Fatal("tracing enabled with no sink")
	}
	sp := StartSpan("x")
	sp.Label("k", "v")
	sp.End() // must be a no-op, not a panic
}

func TestSpansDeliveredToSink(t *testing.T) {
	col := &CollectorSink{}
	prev := SetSpanSink(col)
	defer SetSpanSink(prev)
	if !TracingEnabled() {
		t.Fatal("tracing not enabled after SetSpanSink")
	}
	sp := StartSpan("work", Label{Key: "phase", Value: "1"})
	sp.Label("extra", "yes")
	time.Sleep(time.Millisecond)
	sp.End()
	sp.End() // double End delivers once
	spans := col.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	ev := spans[0]
	if ev.Name != "work" || ev.Dur <= 0 || len(ev.Labels) != 2 {
		t.Errorf("span = %+v", ev)
	}
}

func TestFileSink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	fs, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	fs.Emit(SpanEvent{Name: "a", Start: time.Now(), Dur: time.Millisecond})
	fs.Emit(SpanEvent{Name: "b", Start: time.Now(), Dur: time.Second})
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var ev SpanEvent
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if ev.Name != "a" {
		t.Errorf("first span name = %q", ev.Name)
	}
}

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total").Add(9)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get("http://" + srv.Addr().String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.Contains(body, "served_total 9") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type %q", ctype)
	}
	body, ctype = get("/debug/vars")
	if !strings.Contains(body, `"served_total"`) {
		t.Errorf("/debug/vars missing counter:\n%s", body)
	}
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/debug/vars content type %q", ctype)
	}
	if body, _ = get("/debug/pprof/"); !strings.Contains(body, "pprof") {
		t.Errorf("/debug/pprof/ unexpected body:\n%.200s", body)
	}
}

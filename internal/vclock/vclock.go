// Package vclock abstracts time for the chaos and simulation layers.
//
// Fault injection wants to delay datagrams, flap links on a schedule and
// skew agent clocks; tests and simulations want all of that to run
// deterministic and fast, with no real sleeping. Clock is the seam: the
// production paths run on Real (plain wall-clock time), tests and the
// mega-fleet scenario engine run on a Manual clock they advance
// explicitly — or an auto-advancing one that makes every sleep return
// immediately while still moving virtual time forward, the
// discrete-event trick that turns hours of injected delay into
// microseconds of wall time.
package vclock

import (
	"context"
	"sync"
	"time"
)

// Clock is a source of time and of cancellable sleeps. Implementations
// must be safe for concurrent use.
type Clock interface {
	// Now returns the clock's current time.
	Now() time.Time
	// Sleep pauses the caller for d of the clock's time, or until ctx is
	// done, whichever comes first (returning ctx.Err() in that case).
	// Non-positive d returns immediately with ctx.Err().
	Sleep(ctx context.Context, d time.Duration) error
}

// Real is the wall-clock implementation: time.Now and timer-based
// sleeps.
var Real Clock = realClock{}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Manual is a virtual clock driven by the test or simulation harness.
// Time only moves when Advance is called — or, in auto mode, when a
// sleeper would otherwise block, in which case the sleep returns
// immediately after moving the clock past its own deadline.
type Manual struct {
	mu       sync.Mutex
	now      time.Time
	auto     bool
	sleepers map[*sleeper]struct{}
}

type sleeper struct {
	deadline time.Time
	ch       chan struct{}
}

// NewManual returns a virtual clock starting at start. Sleeps block
// until Advance moves the clock past their deadline.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start, sleepers: map[*sleeper]struct{}{}}
}

// NewAuto returns an auto-advancing virtual clock starting at start:
// every Sleep advances the clock to its own deadline and returns
// immediately, so injected delays cost no wall time while virtual time
// still accumulates (and flap schedules still see it move).
func NewAuto(start time.Time) *Manual {
	m := NewManual(start)
	m.auto = true
	return m
}

// Now returns the virtual time.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Advance moves the virtual clock forward by d, waking every sleeper
// whose deadline has passed.
func (m *Manual) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	m.mu.Lock()
	m.now = m.now.Add(d)
	for s := range m.sleepers {
		if !s.deadline.After(m.now) {
			close(s.ch)
			delete(m.sleepers, s)
		}
	}
	m.mu.Unlock()
}

// Sleepers reports how many goroutines are currently blocked in Sleep,
// so tests can synchronize with the code under test before advancing.
func (m *Manual) Sleepers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sleepers)
}

// Sleep pauses for d of virtual time. In auto mode it advances the
// clock instead of blocking.
func (m *Manual) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	m.mu.Lock()
	if m.auto {
		// Auto mode: several goroutines may sleep concurrently; each
		// moves the clock at least to its own deadline, never backward.
		if deadline := m.now.Add(d); deadline.After(m.now) {
			m.now = deadline
		}
		m.mu.Unlock()
		return ctx.Err()
	}
	s := &sleeper{deadline: m.now.Add(d), ch: make(chan struct{})}
	m.sleepers[s] = struct{}{}
	m.mu.Unlock()
	select {
	case <-ctx.Done():
		m.mu.Lock()
		delete(m.sleepers, s)
		m.mu.Unlock()
		return ctx.Err()
	case <-s.ch:
		return nil
	}
}

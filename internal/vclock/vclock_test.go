package vclock

import (
	"context"
	"testing"
	"time"
)

func TestRealSleepHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := Real.Sleep(ctx, time.Hour); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("canceled sleep took %v", elapsed)
	}
}

func TestManualAdvanceWakesSleepers(t *testing.T) {
	epoch := time.Unix(1000, 0)
	m := NewManual(epoch)
	done := make(chan error, 1)
	go func() { done <- m.Sleep(context.Background(), 10*time.Second) }()

	for m.Sleepers() == 0 {
		time.Sleep(time.Millisecond)
	}
	m.Advance(5 * time.Second)
	select {
	case <-done:
		t.Fatal("sleeper woke before its deadline")
	case <-time.After(10 * time.Millisecond):
	}
	m.Advance(5 * time.Second)
	if err := <-done; err != nil {
		t.Fatalf("sleep returned %v", err)
	}
	if got := m.Now(); !got.Equal(epoch.Add(10 * time.Second)) {
		t.Fatalf("Now() = %v, want epoch+10s", got)
	}
}

func TestManualSleepHonorsContext(t *testing.T) {
	m := NewManual(time.Unix(1000, 0))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- m.Sleep(ctx, time.Hour) }()
	for m.Sleepers() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if m.Sleepers() != 0 {
		t.Fatal("canceled sleeper still registered")
	}
}

func TestAutoSleepNeverBlocks(t *testing.T) {
	epoch := time.Unix(1000, 0)
	m := NewAuto(epoch)
	start := time.Now()
	for i := 0; i < 100; i++ {
		if err := m.Sleep(context.Background(), time.Hour); err != nil {
			t.Fatalf("sleep %d: %v", i, err)
		}
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("100 virtual hours took %v of wall time", elapsed)
	}
	// Concurrent auto-sleeps each advance at least past their own
	// deadline, so 100 sequential one-hour sleeps reach exactly +100h.
	if got := m.Now(); !got.Equal(epoch.Add(100 * time.Hour)) {
		t.Fatalf("Now() = %v, want epoch+100h", got)
	}
}

package snmp

// smallRand is a 8-byte xorshift64* generator with a splitmix64-mixed
// seed. Fault injectors exist one per fleet host, and math/rand's Go1
// source carries ~4.9KB of state — at 100k in-memory agents that alone
// is half a gigabyte. Fault decisions only need cheap, well-mixed,
// per-seed-independent streams, which xorshift64* provides in a single
// word.
type smallRand struct{ s uint64 }

// seedSmallRand mixes the seed through splitmix64 so consecutive seeds
// (memnet derives per-host seeds by hashing) yield uncorrelated
// streams, and maps the forbidden all-zero state away.
func seedSmallRand(seed int64) smallRand {
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	return smallRand{s: z}
}

func (r *smallRand) next() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform number in [0, 1).
func (r *smallRand) Float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// Int63n returns a uniform number in [0, n). The modulo bias is
// negligible for the injector's delay spans (n ≪ 2^62).
func (r *smallRand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("smallRand: Int63n with non-positive n")
	}
	return int64(r.next()>>1) % n
}

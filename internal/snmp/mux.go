package snmp

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// ClientMux multiplexes many management clients over one UDP socket.
// It is the real-network fallback to MemNet: when the fleet is remote
// and mem:// is not an option, a manager process still cannot afford a
// socket per agent, so the mux owns a single socket, stamps outbound
// datagrams with the shared source port, and demultiplexes inbound
// datagrams to per-agent virtual connections by remote address.
type ClientMux struct {
	pc *net.UDPConn

	mu     sync.Mutex
	routes map[string]*muxConn
	closed bool
}

// NewClientMux opens the shared socket and starts its demux loop.
func NewClientMux() (*ClientMux, error) {
	pc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4zero, Port: 0})
	if err != nil {
		return nil, err
	}
	m := &ClientMux{pc: pc, routes: map[string]*muxConn{}}
	go m.readLoop()
	return m, nil
}

// Dial returns a client to the given agent address sharing the mux's
// socket. Closing the client detaches its route; the socket stays open
// for the other clients.
func (m *ClientMux) Dial(addr, community string) (*Client, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	key := udpAddr.String()
	mc := &muxConn{mux: m, raddr: udpAddr, key: key, q: newDatagramQueue()}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, net.ErrClosed
	}
	if _, dup := m.routes[key]; dup {
		return nil, fmt.Errorf("snmp: mux already has a client for %s", key)
	}
	m.routes[key] = mc
	return NewClientOn(mc, community), nil
}

// DialAny routes like the package-level Dial — mem:// addresses go
// over the in-memory network, anything else over UDP — except that the
// UDP leg shares the mux's one socket. It is the dial function a mixed
// fleet hands to the rollout: ten thousand in-memory agents and a rack
// of real ones converge through the same code path without the manager
// opening a socket per remote agent.
func (m *ClientMux) DialAny(addr, community string) (*Client, error) {
	if conn, isMem, err := dialMem(addr); isMem {
		if err != nil {
			return nil, err
		}
		return NewClientOn(conn, community), nil
	}
	return m.Dial(addr, community)
}

// Close shuts the shared socket and every client on it.
func (m *ClientMux) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	routes := make([]*muxConn, 0, len(m.routes))
	for _, mc := range m.routes {
		routes = append(routes, mc)
	}
	m.routes = map[string]*muxConn{}
	m.mu.Unlock()
	for _, mc := range routes {
		mc.q.close()
	}
	return m.pc.Close()
}

// readLoop demultiplexes inbound datagrams by source address. Datagrams
// from addresses with no live route are discarded, as a kernel would
// discard datagrams to a closed port.
func (m *ClientMux) readLoop() {
	buf := make([]byte, 64*1024)
	for {
		n, raddr, err := m.pc.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		m.mu.Lock()
		mc := m.routes[raddr.String()]
		m.mu.Unlock()
		if mc != nil {
			mc.q.push(buf[:n])
		}
	}
}

// drop detaches one route.
func (m *ClientMux) drop(key string) {
	m.mu.Lock()
	delete(m.routes, key)
	m.mu.Unlock()
}

// muxConn is one client's virtual connection over the shared socket.
type muxConn struct {
	mux   *ClientMux
	raddr *net.UDPAddr
	key   string
	q     *datagramQueue
}

func (mc *muxConn) Write(b []byte) (int, error) {
	if mc.q.isClosed() {
		return 0, net.ErrClosed
	}
	return mc.mux.pc.WriteToUDP(b, mc.raddr)
}

func (mc *muxConn) Read(b []byte) (int, error)        { return mc.q.read(b) }
func (mc *muxConn) SetReadDeadline(t time.Time) error { return mc.q.setDeadline(t) }

func (mc *muxConn) Close() error {
	mc.mux.drop(mc.key)
	mc.q.close()
	return nil
}

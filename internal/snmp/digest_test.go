package snmp

import (
	"testing"
	"time"

	"nmsl/internal/mib"
)

func digestTestConfig() *Config {
	return &Config{
		AdminCommunity: "adm",
		Communities: map[string]*CommunityConfig{
			"public": {
				Access:      mib.AccessReadOnly,
				MinInterval: 5 * time.Minute,
				View: []View{
					{Prefix: mib.OID{1, 3, 6, 1, 2, 1, 1}, Access: mib.AccessReadOnly},
				},
			},
		},
	}
}

func TestConfigDigestDeterministic(t *testing.T) {
	a, b := digestTestConfig(), digestTestConfig()
	if a.Digest() == "" {
		t.Fatal("digest empty")
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("equal configs digest differently: %s vs %s", a.Digest(), b.Digest())
	}
	if a.Digest() != a.Clone().Digest() {
		t.Fatal("clone digests differently")
	}
	b.Communities["public"].MinInterval = time.Minute
	if a.Digest() == b.Digest() {
		t.Fatal("different configs share a digest")
	}
	var nilCfg *Config
	if nilCfg.Digest() != "" {
		t.Fatalf("nil digest %q, want empty", nilCfg.Digest())
	}
}

// TestAdminFetchConfig pins the read half of the live install path: the
// admin community can round-trip the agent's configuration through the
// reserved config object, non-admin communities cannot.
func TestAdminFetchConfig(t *testing.T) {
	cfg := digestTestConfig()
	agent := NewAgent(NewStore(), cfg)
	addr, err := agent.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	client, err := Dial(addr.String(), "adm")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.SetTimeout(200 * time.Millisecond)
	got, err := client.FetchConfig()
	if err != nil {
		t.Fatalf("admin fetch: %v", err)
	}
	if got.Digest() != cfg.Digest() {
		t.Fatalf("fetched digest %s != live digest %s", got.Digest(), cfg.Digest())
	}

	// Install a replacement and fetch again: the digest must follow.
	next := digestTestConfig()
	next.Communities["public"].MinInterval = time.Minute
	if err := client.InstallConfig(next); err != nil {
		t.Fatalf("install: %v", err)
	}
	got2, err := client.FetchConfig()
	if err != nil {
		t.Fatalf("refetch: %v", err)
	}
	if got2.Digest() != next.Digest() {
		t.Fatalf("refetched digest %s != installed digest %s", got2.Digest(), next.Digest())
	}

	// A granted-but-not-admin community must not see the config object.
	pub, err := Dial(addr.String(), "public")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	pub.SetTimeout(200 * time.Millisecond)
	pub.SetRetries(0)
	if _, err := pub.FetchConfig(); err == nil {
		t.Fatal("non-admin community fetched the config object")
	}
}

// TestBackoffDelayOverflow is the regression for the uncapped-overflow
// bug: with backoffMax 0, base << k wrapped negative at large k and the
// guard never clamped, so retries tight-looped with zero delay.
func TestBackoffDelayOverflow(t *testing.T) {
	c := &Client{backoffBase: 50 * time.Millisecond, backoffMax: 0}
	for _, k := range []int{40, 62, 63, 64, 100, 1000} {
		d := c.backoffDelay(k)
		if d <= 0 {
			t.Errorf("k=%d: delay %v, want positive (overflow not clamped)", k, d)
		}
		if d > maxBackoff+maxBackoff/2 {
			t.Errorf("k=%d: delay %v exceeds jittered clamp %v", k, d, maxBackoff+maxBackoff/2)
		}
	}
	// With a cap configured the clamp must land at the cap, jitter aside.
	c.backoffMax = 2 * time.Second
	for _, k := range []int{40, 63, 100} {
		d := c.backoffDelay(k)
		if d <= 0 || d > 3*time.Second {
			t.Errorf("capped k=%d: delay %v outside (0, 3s]", k, d)
		}
	}
}

package snmp

import (
	"testing"

	"nmsl/internal/mib"
)

// TestStoreForkCOW pins the copy-on-write contract mega-fleets depend
// on: a fork reads the base's variables, its writes stay private, and
// the GetNext walk over a fork enumerates the merged OID space with
// overlay values shadowing the base at equal OIDs.
func TestStoreForkCOW(t *testing.T) {
	base := NewStore()
	base.Set(mib.OID{1, 1}, Int64(11))
	base.Set(mib.OID{1, 3}, Int64(13))
	base.Set(mib.OID{1, 5}, Int64(15))

	fork := base.Fork()

	// Reads fall through to the base.
	if v, ok := fork.Get(mib.OID{1, 3}); !ok || v.Int != 13 {
		t.Fatalf("fork.Get(1.3) = %v, %v; want 13 from base", v, ok)
	}
	if got := fork.Len(); got != 3 {
		t.Fatalf("fresh fork Len = %d, want 3", got)
	}

	// A shadowing write and a fresh write stay private to the fork.
	fork.Set(mib.OID{1, 3}, Int64(330)) // shadows base
	fork.Set(mib.OID{1, 4}, Int64(14))  // fresh key
	if v, _ := base.Get(mib.OID{1, 3}); v.Int != 13 {
		t.Fatalf("fork write leaked into base: base 1.3 = %v", v)
	}
	if _, ok := base.Get(mib.OID{1, 4}); ok {
		t.Fatal("fresh fork key leaked into base")
	}
	if v, _ := fork.Get(mib.OID{1, 3}); v.Int != 330 {
		t.Fatalf("fork does not see its own shadow: %v", v)
	}
	if got, want := fork.Len(), 4; got != want {
		t.Fatalf("fork Len = %d, want %d (3 base + 1 fresh, shadow not double-counted)", got, want)
	}
	if got := base.Len(); got != 3 {
		t.Fatalf("base Len = %d, want 3", got)
	}

	// The GetNext walk merges the two OID spaces in order, overlay
	// values winning at equal OIDs.
	var walked []int64
	oid := mib.OID{0}
	for {
		next, v, ok := fork.Next(oid)
		if !ok {
			break
		}
		walked = append(walked, v.Int)
		oid = next
	}
	want := []int64{11, 330, 14, 15}
	if len(walked) != len(want) {
		t.Fatalf("fork walk saw %v, want %v", walked, want)
	}
	for i := range want {
		if walked[i] != want[i] {
			t.Fatalf("fork walk saw %v, want %v", walked, want)
		}
	}

	// Forks of forks chain.
	grand := fork.Fork()
	if v, _ := grand.Get(mib.OID{1, 3}); v.Int != 330 {
		t.Fatalf("grandchild does not see fork's shadow: %v", v)
	}
	if got := grand.Len(); got != 4 {
		t.Fatalf("grandchild Len = %d, want 4", got)
	}
}

// TestStoreForkIndependence: sibling forks of one base never observe
// each other's writes — the fleet-wide sharing invariant.
func TestStoreForkIndependence(t *testing.T) {
	base := NewStore()
	base.Set(mib.OID{2, 1}, Int64(1))
	a, b := base.Fork(), base.Fork()
	a.Set(mib.OID{2, 1}, Int64(100))
	a.Set(mib.OID{2, 9}, Int64(900))
	if v, _ := b.Get(mib.OID{2, 1}); v.Int != 1 {
		t.Fatalf("sibling fork observed a's shadow: %v", v)
	}
	if _, ok := b.Get(mib.OID{2, 9}); ok {
		t.Fatal("sibling fork observed a's fresh key")
	}
	if b.Len() != 1 || a.Len() != 2 {
		t.Fatalf("sibling Lens = %d, %d; want 1, 2", b.Len(), a.Len())
	}
}

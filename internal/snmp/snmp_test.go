package snmp

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"nmsl/internal/mib"
)

func TestBERRoundTripScalars(t *testing.T) {
	vals := []Value{
		Int64(0), Int64(1), Int64(-1), Int64(127), Int64(128), Int64(-128),
		Int64(65536), Int64(1<<40 + 5), Int64(-(1 << 40)),
		Str(""), Str("public"), Octets([]byte{0, 1, 2, 255}),
		Null(),
		OIDValue(mib.OID{1, 3, 6, 1, 2, 1}),
		OIDValue(mib.OID{1, 3, 6, 1, 4, 1, 42424, 1}),
		{Tag: TagCounter, Int: 42}, {Tag: TagGauge, Int: 7}, {Tag: TagTimeTicks, Int: 123456},
		{Tag: TagIPAddress, Bytes: []byte{10, 0, 0, 1}},
		Opaque([]byte("blob")),
	}
	for _, v := range vals {
		enc, err := Encode(nil, v)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		dec, rest, err := Decode(enc)
		if err != nil {
			t.Fatalf("%v: decode: %v", v, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%v: %d trailing bytes", v, len(rest))
		}
		if !dec.Equal(v) {
			t.Fatalf("round trip: %v != %v", dec, v)
		}
	}
}

func TestBERRoundTripNested(t *testing.T) {
	v := Seq(Int64(0), Str("public"), Seq(OIDValue(mib.OID{1, 3, 6}), Null()))
	enc, err := Encode(nil, v)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Equal(v) {
		t.Fatalf("%v != %v", dec, v)
	}
}

func TestBERLongLength(t *testing.T) {
	big := make([]byte, 300) // forces long-form length
	for i := range big {
		big[i] = byte(i)
	}
	v := Octets(big)
	enc, err := Encode(nil, v)
	if err != nil {
		t.Fatal(err)
	}
	if enc[1] != 0x82 {
		t.Fatalf("expected 2-byte long form, header %x", enc[:4])
	}
	dec, _, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Equal(v) {
		t.Fatal("round trip failed")
	}
}

func TestBERDecodeErrors(t *testing.T) {
	bad := [][]byte{
		{},
		{0x02},
		{0x02, 0x05, 0x01},       // truncated body
		{0x02, 0x89},             // absurd length-of-length
		{0x05, 0x01, 0x00},       // NULL with content
		{0x06, 0x00},             // empty OID
		{0x06, 0x02, 0x2b, 0x80}, // OID ends mid-arc
		{0x02, 0x00},             // zero-length integer
		{0x8F, 0x01, 0x00},       // unknown primitive tag
	}
	for _, b := range bad {
		if _, _, err := Decode(b); err == nil {
			t.Errorf("Decode(%x) succeeded", b)
		}
	}
}

// Property: Int64 round trips for arbitrary values.
func TestBERIntProperty(t *testing.T) {
	f := func(v int64) bool {
		enc, err := Encode(nil, Int64(v))
		if err != nil {
			return false
		}
		dec, rest, err := Decode(enc)
		return err == nil && len(rest) == 0 && dec.Int == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: OIDs with valid arcs round trip.
func TestBEROIDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		oid := mib.OID{1, 3}
		n := rng.Intn(10)
		for i := 0; i < n; i++ {
			oid = append(oid, rng.Intn(1<<20))
		}
		enc, err := Encode(nil, OIDValue(oid))
		if err != nil {
			return false
		}
		dec, _, err := Decode(enc)
		return err == nil && dec.OID.Compare(oid) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{
		Version:   Version0,
		Community: "public",
		PDU: PDU{
			Type:      TagGetRequest,
			RequestID: 42,
			Bindings: []Binding{
				{OID: mib.OID{1, 3, 6, 1, 2, 1, 1, 1}, Value: Null()},
				{OID: mib.OID{1, 3, 6, 1, 2, 1, 1, 3}, Value: Null()},
			},
		},
	}
	data, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Community != "public" || got.PDU.RequestID != 42 || len(got.PDU.Bindings) != 2 {
		t.Fatalf("got %+v", got)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	// not a sequence
	enc, _ := Encode(nil, Int64(1))
	if _, err := Unmarshal(enc); err == nil {
		t.Error("accepted non-sequence")
	}
	// trailing bytes
	m := &Message{Version: 0, Community: "c", PDU: PDU{Type: TagGetRequest, RequestID: 1}}
	data, _ := m.Marshal()
	if _, err := Unmarshal(append(data, 0x00)); err == nil {
		t.Error("accepted trailing bytes")
	}
}

func TestStoreOrdering(t *testing.T) {
	s := NewStore()
	s.Set(mib.OID{1, 3, 6, 1, 2}, Int64(2))
	s.Set(mib.OID{1, 3, 6, 1, 1}, Int64(1))
	s.Set(mib.OID{1, 3, 6, 1, 10}, Int64(10))
	next, v, ok := s.Next(mib.OID{1, 3, 6, 1})
	if !ok || next.Compare(mib.OID{1, 3, 6, 1, 1}) != 0 || v.Int != 1 {
		t.Fatalf("next %v %v", next, v)
	}
	next, v, ok = s.Next(next)
	if !ok || next.Compare(mib.OID{1, 3, 6, 1, 2}) != 0 {
		t.Fatalf("next %v", next)
	}
	next, _, ok = s.Next(next)
	if !ok || next.Compare(mib.OID{1, 3, 6, 1, 10}) != 0 {
		t.Fatalf("next %v", next)
	}
	if _, _, ok := s.Next(next); ok {
		t.Fatal("next past end")
	}
	// overwrite does not duplicate
	s.Set(mib.OID{1, 3, 6, 1, 1}, Int64(99))
	if s.Len() != 3 {
		t.Fatalf("len %d", s.Len())
	}
}

// newTestAgent builds an agent with a populated store and one read-only
// community limited to the mgmt subtree.
func newTestAgent(t *testing.T, cfg *Config) (*Agent, *Client) {
	t.Helper()
	store := NewStore()
	tree := mib.NewStandard()
	if n := PopulateFromMIB(store, tree, "mgmt.mib"); n == 0 {
		t.Fatal("store empty")
	}
	a := NewAgent(store, cfg)
	addr, err := a.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	c, err := Dial(addr.String(), "public")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return a, c
}

func mibOID(t *testing.T, path string) mib.OID {
	t.Helper()
	n := mib.NewStandard().Lookup(path)
	if n == nil {
		t.Fatalf("no MIB node %s", path)
	}
	return n.OID()
}

func publicReadOnly(t *testing.T) *Config {
	t.Helper()
	return &Config{
		Communities: map[string]*CommunityConfig{
			"public": {
				Access: mib.AccessReadOnly,
				View:   []View{{Prefix: mibOID(t, "mgmt.mib")}},
			},
		},
	}
}

func TestAgentGet(t *testing.T) {
	_, c := newTestAgent(t, publicReadOnly(t))
	oid := mibOID(t, "mgmt.mib.system.sysDescr")
	binds, err := c.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	if len(binds) != 1 || string(binds[0].Value.Bytes) != "sysDescr-value" {
		t.Fatalf("binds %+v", binds)
	}
}

func TestAgentGetNextWalk(t *testing.T) {
	_, c := newTestAgent(t, publicReadOnly(t))
	prefix := mibOID(t, "mgmt.mib.udp")
	var got []string
	err := c.Walk(prefix, func(b Binding) error {
		got = append(got, b.OID.String())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("walked %v", got)
	}
}

func TestAgentViewRestriction(t *testing.T) {
	cfg := &Config{
		Communities: map[string]*CommunityConfig{
			"public": {
				Access: mib.AccessReadOnly,
				View:   []View{{Prefix: mibOID(t, "mgmt.mib.system")}},
			},
		},
	}
	_, c := newTestAgent(t, cfg)
	// inside the view: ok
	if _, err := c.Get(mibOID(t, "mgmt.mib.system.sysDescr")); err != nil {
		t.Fatalf("in-view get: %v", err)
	}
	// outside the view: noSuchName
	_, err := c.Get(mibOID(t, "mgmt.mib.udp.udpNoPorts"))
	var re *RequestError
	if !asRequestError(err, &re) || re.Status != NoSuchName {
		t.Fatalf("out-of-view get: %v", err)
	}
	// GetNext must skip hidden variables entirely: walking mgmt.mib sees
	// only the system group.
	var got []string
	if err := c.Walk(mibOID(t, "mgmt.mib"), func(b Binding) error {
		got = append(got, b.OID.String())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sysPrefix := mibOID(t, "mgmt.mib.system")
	for _, g := range got {
		if len(g) < len(sysPrefix.String()) {
			t.Fatalf("leaked OID %s", g)
		}
	}
	if len(got) != 6 {
		t.Fatalf("walk got %v", got)
	}
}

func TestAgentUnknownCommunityDropped(t *testing.T) {
	a, _ := newTestAgent(t, publicReadOnly(t))
	resp := a.Handle(&Message{Version: 0, Community: "wrong", PDU: PDU{Type: TagGetRequest, RequestID: 9}})
	if resp != nil {
		t.Fatalf("response %+v", resp)
	}
	if a.Stats().Denied != 1 {
		t.Fatalf("stats %+v", a.Stats())
	}
}

func TestAgentSetRequiresWriteAccess(t *testing.T) {
	_, c := newTestAgent(t, publicReadOnly(t))
	err := c.Set(Binding{OID: mibOID(t, "mgmt.mib.ip.ipDefaultTTL"), Value: Int64(63)})
	var re *RequestError
	if !asRequestError(err, &re) || re.Status != ReadOnly {
		t.Fatalf("set: %v", err)
	}
}

func TestAgentSetWithWriteAccess(t *testing.T) {
	cfg := publicReadOnly(t)
	cfg.Communities["public"].Access = mib.AccessAny
	a, c := newTestAgent(t, cfg)
	oid := mibOID(t, "mgmt.mib.ip.ipDefaultTTL")
	if err := c.Set(Binding{OID: oid, Value: Int64(63)}); err != nil {
		t.Fatal(err)
	}
	v, ok := a.Store().Get(oid)
	if !ok || v.Int != 63 {
		t.Fatalf("store %v %v", v, ok)
	}
}

func TestAgentRateLimiting(t *testing.T) {
	cfg := publicReadOnly(t)
	cfg.Communities["public"].MinInterval = time.Hour
	a, c := newTestAgent(t, cfg)
	oid := mibOID(t, "mgmt.mib.system.sysDescr")
	if _, err := c.Get(oid); err != nil {
		t.Fatalf("first query: %v", err)
	}
	_, err := c.Get(oid)
	var re *RequestError
	if !asRequestError(err, &re) || re.Status != GenErr {
		t.Fatalf("second query should be rate limited: %v", err)
	}
	if a.Stats().RateLimited != 1 {
		t.Fatalf("stats %+v", a.Stats())
	}
}

func TestAgentRateLimitWindowPasses(t *testing.T) {
	cfg := publicReadOnly(t)
	cfg.Communities["public"].MinInterval = 10 * time.Millisecond
	now := time.Unix(1000, 0)
	store := NewStore()
	PopulateFromMIB(store, mib.NewStandard(), "mgmt.mib")
	a := NewAgent(store, cfg)
	a.now = func() time.Time { return now }
	// Distinct request IDs: identical re-sent messages are retransmits and
	// are answered from the cache rather than re-metered.
	req := func(id int32) *Message {
		return &Message{Version: 0, Community: "public", PDU: PDU{
			Type: TagGetRequest, RequestID: id,
			Bindings: []Binding{{OID: mibOID(t, "mgmt.mib.system.sysDescr"), Value: Null()}},
		}}
	}
	if resp := a.Handle(req(1)); resp == nil || resp.PDU.ErrorStatus != NoError {
		t.Fatalf("first: %+v", resp)
	}
	if resp := a.Handle(req(2)); resp == nil || resp.PDU.ErrorStatus != GenErr {
		t.Fatalf("second: %+v", resp)
	}
	now = now.Add(11 * time.Millisecond)
	if resp := a.Handle(req(3)); resp == nil || resp.PDU.ErrorStatus != NoError {
		t.Fatalf("after window: %+v", resp)
	}
}

func TestLiveConfigInstall(t *testing.T) {
	// Start with only the admin community; install a public config over
	// the wire, then use it.
	cfg := &Config{
		Communities:    map[string]*CommunityConfig{},
		AdminCommunity: "nmsl-admin",
	}
	store := NewStore()
	PopulateFromMIB(store, mib.NewStandard(), "mgmt.mib")
	a := NewAgent(store, cfg)
	addr, err := a.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	admin, err := Dial(addr.String(), "nmsl-admin")
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	newCfg := publicReadOnly(t)
	newCfg.AdminCommunity = "nmsl-admin"
	if err := admin.InstallConfig(newCfg); err != nil {
		t.Fatalf("install: %v", err)
	}
	if a.Stats().ConfigLoads != 1 {
		t.Fatalf("stats %+v", a.Stats())
	}

	pub, err := Dial(addr.String(), "public")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if _, err := pub.Get(mibOID(t, "mgmt.mib.system.sysDescr")); err != nil {
		t.Fatalf("get after install: %v", err)
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := &Config{
		Communities: map[string]*CommunityConfig{
			"wisc-cs": {
				Access:      mib.AccessReadOnly,
				View:        []View{{Prefix: mib.OID{1, 3, 6, 1, 2, 1}, Access: mib.AccessReadOnly}},
				MinInterval: 5 * time.Minute,
			},
		},
		AdminCommunity: "adm",
	}
	blob, err := MarshalConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalConfig(blob)
	if err != nil {
		t.Fatal(err)
	}
	cc := got.Communities["wisc-cs"]
	if cc == nil || cc.Access != mib.AccessReadOnly || cc.MinInterval != 5*time.Minute || len(cc.View) != 1 {
		t.Fatalf("got %+v", got)
	}
}

func TestAgentCloseIdempotent(t *testing.T) {
	a, _ := newTestAgent(t, publicReadOnly(t))
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

// Package snmp implements a compact SNMPv1-like management protocol over
// UDP: a BER codec, the RFC 1067 message shapes (Get, GetNext, Set,
// Response), an agent with community-based access control, view subtrees
// and per-community minimum query intervals, and a client.
//
// It is the substrate for NMSL's prescriptive aspect (paper section 5):
// configuration generators produce agent configuration from a consistent
// specification and ship it to running agents — "initiating a connection
// to a network management process on each affected network element ...
// and sending, via the normal network management protocol, the
// configuration information". The agent enforces exactly the three things
// NMSL configures: which principal may query (community/domain), what
// data (view subtree and access mode), and how often (minimum interval —
// NMSL's frequency clauses).
package snmp

import (
	"errors"
	"fmt"

	"nmsl/internal/mib"
)

// BER/ASN.1 tags used by the protocol (RFC 1065/1067 subset).
const (
	TagInteger   = 0x02
	TagOctets    = 0x04
	TagNull      = 0x05
	TagOID       = 0x06
	TagSequence  = 0x30
	TagIPAddress = 0x40
	TagCounter   = 0x41
	TagGauge     = 0x42
	TagTimeTicks = 0x43
	TagOpaque    = 0x44

	// PDU tags (context class, constructed).
	TagGetRequest     = 0xA0
	TagGetNextRequest = 0xA1
	TagGetResponse    = 0xA2
	TagSetRequest     = 0xA3
)

// Value is a decoded BER value. Exactly one payload field is meaningful,
// selected by Tag.
type Value struct {
	Tag byte
	// Int carries INTEGER, Counter, Gauge and TimeTicks payloads.
	Int int64
	// Bytes carries OCTET STRING, Opaque and IpAddress payloads.
	Bytes []byte
	// OID carries OBJECT IDENTIFIER payloads.
	OID mib.OID
	// Seq carries constructed (SEQUENCE, PDU) payloads.
	Seq []Value
}

// Common constructors.

// Int64 returns an INTEGER value.
func Int64(v int64) Value { return Value{Tag: TagInteger, Int: v} }

// Octets returns an OCTET STRING value.
func Octets(b []byte) Value { return Value{Tag: TagOctets, Bytes: b} }

// Str returns an OCTET STRING value from a string.
func Str(s string) Value { return Value{Tag: TagOctets, Bytes: []byte(s)} }

// Null returns a NULL value.
func Null() Value { return Value{Tag: TagNull} }

// OIDValue returns an OBJECT IDENTIFIER value.
func OIDValue(o mib.OID) Value { return Value{Tag: TagOID, OID: o.Clone()} }

// Seq returns a SEQUENCE value.
func Seq(vals ...Value) Value { return Value{Tag: TagSequence, Seq: vals} }

// Opaque returns an Opaque value.
func Opaque(b []byte) Value { return Value{Tag: TagOpaque, Bytes: b} }

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool {
	if v.Tag != o.Tag {
		return false
	}
	switch v.Tag {
	case TagInteger, TagCounter, TagGauge, TagTimeTicks:
		return v.Int == o.Int
	case TagOctets, TagOpaque, TagIPAddress:
		return string(v.Bytes) == string(o.Bytes)
	case TagNull:
		return true
	case TagOID:
		return v.OID.Compare(o.OID) == 0
	default:
		if len(v.Seq) != len(o.Seq) {
			return false
		}
		for i := range v.Seq {
			if !v.Seq[i].Equal(o.Seq[i]) {
				return false
			}
		}
		return true
	}
}

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.Tag {
	case TagInteger:
		return fmt.Sprintf("INTEGER %d", v.Int)
	case TagCounter:
		return fmt.Sprintf("Counter %d", v.Int)
	case TagGauge:
		return fmt.Sprintf("Gauge %d", v.Int)
	case TagTimeTicks:
		return fmt.Sprintf("TimeTicks %d", v.Int)
	case TagOctets:
		return fmt.Sprintf("OCTETS %q", v.Bytes)
	case TagOpaque:
		return fmt.Sprintf("Opaque(%d bytes)", len(v.Bytes))
	case TagIPAddress:
		if len(v.Bytes) == 4 {
			return fmt.Sprintf("IpAddress %d.%d.%d.%d", v.Bytes[0], v.Bytes[1], v.Bytes[2], v.Bytes[3])
		}
		return fmt.Sprintf("IpAddress %x", v.Bytes)
	case TagNull:
		return "NULL"
	case TagOID:
		return "OID " + v.OID.String()
	default:
		return fmt.Sprintf("constructed(0x%02x, %d elems)", v.Tag, len(v.Seq))
	}
}

// isConstructed reports whether a tag carries nested values.
func isConstructed(tag byte) bool { return tag&0x20 != 0 }

// appendLength appends a BER definite length.
func appendLength(dst []byte, n int) []byte {
	if n < 0x80 {
		return append(dst, byte(n))
	}
	var tmp [8]byte
	i := len(tmp)
	for n > 0 {
		i--
		tmp[i] = byte(n)
		n >>= 8
	}
	dst = append(dst, 0x80|byte(len(tmp)-i))
	return append(dst, tmp[i:]...)
}

// appendInt appends a two's-complement big-endian integer body.
func appendInt(dst []byte, v int64) []byte {
	// minimal two's complement encoding
	n := 8
	for n > 1 {
		top := byte(v >> ((n - 1) * 8))
		next := byte(v >> ((n - 2) * 8))
		if (top == 0x00 && next&0x80 == 0) || (top == 0xFF && next&0x80 == 0x80) {
			n--
			continue
		}
		break
	}
	for i := n - 1; i >= 0; i-- {
		dst = append(dst, byte(v>>(i*8)))
	}
	return dst
}

// appendOID appends OID body bytes (X.690 packed form).
func appendOID(dst []byte, oid mib.OID) ([]byte, error) {
	if len(oid) < 2 {
		return nil, fmt.Errorf("snmp: OID %v too short to encode", oid)
	}
	if oid[0] > 2 || oid[1] >= 40 {
		return nil, fmt.Errorf("snmp: OID %v has invalid first arcs", oid)
	}
	dst = append(dst, byte(oid[0]*40+oid[1]))
	for _, arc := range oid[2:] {
		if arc < 0 {
			return nil, fmt.Errorf("snmp: negative OID arc %d", arc)
		}
		dst = appendBase128(dst, uint64(arc))
	}
	return dst, nil
}

func appendBase128(dst []byte, v uint64) []byte {
	var tmp [10]byte
	i := len(tmp)
	i--
	tmp[i] = byte(v & 0x7F)
	v >>= 7
	for v > 0 {
		i--
		tmp[i] = byte(v&0x7F) | 0x80
		v >>= 7
	}
	return append(dst, tmp[i:]...)
}

// Encode appends the BER encoding of v to dst.
func Encode(dst []byte, v Value) ([]byte, error) {
	var body []byte
	var err error
	switch {
	case isConstructed(v.Tag):
		for _, sub := range v.Seq {
			body, err = Encode(body, sub)
			if err != nil {
				return nil, err
			}
		}
	case v.Tag == TagInteger || v.Tag == TagCounter || v.Tag == TagGauge || v.Tag == TagTimeTicks:
		body = appendInt(nil, v.Int)
	case v.Tag == TagOctets || v.Tag == TagOpaque || v.Tag == TagIPAddress:
		body = append(body, v.Bytes...)
	case v.Tag == TagNull:
		// empty
	case v.Tag == TagOID:
		body, err = appendOID(nil, v.OID)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("snmp: cannot encode tag 0x%02x", v.Tag)
	}
	dst = append(dst, v.Tag)
	dst = appendLength(dst, len(body))
	return append(dst, body...), nil
}

// errTruncated reports malformed input.
var errTruncated = errors.New("snmp: truncated BER data")

// decodeHeader reads tag and length, returning the body slice and rest.
func decodeHeader(data []byte) (tag byte, body, rest []byte, err error) {
	if len(data) < 2 {
		return 0, nil, nil, errTruncated
	}
	tag = data[0]
	l := int(data[1])
	off := 2
	if l >= 0x80 {
		n := l & 0x7F
		if n == 0 || n > 4 || len(data) < 2+n {
			return 0, nil, nil, errTruncated
		}
		l = 0
		for i := 0; i < n; i++ {
			l = l<<8 | int(data[2+i])
		}
		off = 2 + n
	}
	if len(data) < off+l {
		return 0, nil, nil, errTruncated
	}
	return tag, data[off : off+l], data[off+l:], nil
}

// Decode reads one BER value from data, returning it and the remaining
// bytes.
func Decode(data []byte) (Value, []byte, error) {
	tag, body, rest, err := decodeHeader(data)
	if err != nil {
		return Value{}, nil, err
	}
	v := Value{Tag: tag}
	switch {
	case isConstructed(tag):
		for len(body) > 0 {
			var sub Value
			sub, body, err = Decode(body)
			if err != nil {
				return Value{}, nil, err
			}
			v.Seq = append(v.Seq, sub)
		}
	case tag == TagInteger || tag == TagCounter || tag == TagGauge || tag == TagTimeTicks:
		if len(body) == 0 || len(body) > 8 {
			return Value{}, nil, fmt.Errorf("snmp: bad integer length %d", len(body))
		}
		var n int64
		if body[0]&0x80 != 0 {
			n = -1
		}
		for _, b := range body {
			n = n<<8 | int64(b)
		}
		v.Int = n
	case tag == TagOctets || tag == TagOpaque || tag == TagIPAddress:
		v.Bytes = append([]byte(nil), body...)
	case tag == TagNull:
		if len(body) != 0 {
			return Value{}, nil, errors.New("snmp: NULL with content")
		}
	case tag == TagOID:
		oid, err := decodeOID(body)
		if err != nil {
			return Value{}, nil, err
		}
		v.OID = oid
	default:
		return Value{}, nil, fmt.Errorf("snmp: cannot decode tag 0x%02x", tag)
	}
	return v, rest, nil
}

func decodeOID(body []byte) (mib.OID, error) {
	if len(body) == 0 {
		return nil, errors.New("snmp: empty OID")
	}
	oid := mib.OID{int(body[0]) / 40, int(body[0]) % 40}
	var cur uint64
	inArc := false
	for _, b := range body[1:] {
		cur = cur<<7 | uint64(b&0x7F)
		if cur > 1<<31 {
			return nil, errors.New("snmp: OID arc overflow")
		}
		if b&0x80 == 0 {
			oid = append(oid, int(cur))
			cur = 0
			inArc = false
		} else {
			inArc = true
		}
	}
	if inArc {
		return nil, errTruncated
	}
	return oid, nil
}

package snmp

import (
	"net"
	"sync"
	"testing"

	"nmsl/internal/mib"
)

// TestAgentSurvivesGarbageDatagrams fires malformed wire data at a live
// agent and verifies it keeps serving valid clients.
func TestAgentSurvivesGarbageDatagrams(t *testing.T) {
	store := NewStore()
	tree := mib.NewStandard()
	PopulateFromMIB(store, tree, "mgmt.mib")
	agent := NewAgent(store, &Config{
		Communities: map[string]*CommunityConfig{
			"public": {Access: mib.AccessReadOnly, View: []View{{Prefix: tree.Lookup("mgmt.mib").OID()}}},
		},
	})
	addr, err := agent.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	raw, err := net.Dial("udp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	garbage := [][]byte{
		{},
		{0x00},
		{0x30},                   // truncated sequence
		{0x30, 0x02, 0x02, 0x01}, // truncated integer
		[]byte("not ber at all"),
		make([]byte, 2000), // zeros
	}
	for _, g := range garbage {
		if _, err := raw.Write(g); err != nil {
			t.Fatal(err)
		}
	}
	// a version-2 message and an unexpected PDU type are dropped too
	badVersion := Seq(Int64(1), Str("public"), Value{Tag: TagGetRequest, Seq: []Value{Int64(1), Int64(0), Int64(0), Seq()}})
	enc, err := Encode(nil, badVersion)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write(enc); err != nil {
		t.Fatal(err)
	}
	respPDU := Seq(Int64(0), Str("public"), Value{Tag: TagGetResponse, Seq: []Value{Int64(1), Int64(0), Int64(0), Seq()}})
	enc, err = Encode(nil, respPDU)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write(enc); err != nil {
		t.Fatal(err)
	}

	// the agent still answers a proper client
	c, err := Dial(addr.String(), "public")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Get(tree.Lookup("mgmt.mib.system.sysDescr").OID()); err != nil {
		t.Fatalf("agent died after garbage: %v", err)
	}
}

// TestAgentConcurrentClients hammers one agent from many goroutines.
func TestAgentConcurrentClients(t *testing.T) {
	store := NewStore()
	tree := mib.NewStandard()
	PopulateFromMIB(store, tree, "mgmt.mib")
	agent := NewAgent(store, &Config{
		Communities: map[string]*CommunityConfig{
			"public": {Access: mib.AccessAny, View: []View{{Prefix: tree.Lookup("mgmt.mib").OID()}}},
		},
	})
	addr, err := agent.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	oid := tree.Lookup("mgmt.mib.ip.ipDefaultTTL").OID()
	const workers = 16
	const perWorker = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr.String(), "public")
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < perWorker; i++ {
				if w%2 == 0 {
					if _, err := c.Get(oid); err != nil {
						errs <- err
						return
					}
				} else {
					if err := c.Set(Binding{OID: oid, Value: Int64(int64(i))}); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := agent.Stats().Requests; got != workers*perWorker {
		t.Fatalf("requests %d, want %d", got, workers*perWorker)
	}
}

// TestClientIgnoresStaleResponses: a response with the wrong request ID
// must not satisfy a pending call.
func TestClientIgnoresStaleResponses(t *testing.T) {
	// a fake "agent" that first answers with a wrong request id, then
	// with the right one
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	go func() {
		buf := make([]byte, 4096)
		n, raddr, err := pc.ReadFrom(buf)
		if err != nil {
			return
		}
		req, err := Unmarshal(buf[:n])
		if err != nil {
			return
		}
		stale := &Message{Version: 0, Community: req.Community, PDU: PDU{
			Type: TagGetResponse, RequestID: req.PDU.RequestID + 99,
			Bindings: []Binding{{OID: mib.OID{1, 3}, Value: Int64(666)}},
		}}
		out, _ := stale.Marshal()
		pc.WriteTo(out, raddr)
		good := &Message{Version: 0, Community: req.Community, PDU: PDU{
			Type: TagGetResponse, RequestID: req.PDU.RequestID,
			Bindings: []Binding{{OID: mib.OID{1, 3}, Value: Int64(7)}},
		}}
		out, _ = good.Marshal()
		pc.WriteTo(out, raddr)
	}()

	c, err := Dial(pc.LocalAddr().String(), "public")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	binds, err := c.Get(mib.OID{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if binds[0].Value.Int != 7 {
		t.Fatalf("client accepted stale response: %v", binds[0].Value)
	}
}

package snmp

import (
	"errors"
	"fmt"

	"nmsl/internal/mib"
)

// Version0 is the SNMPv1 version number on the wire (RFC 1067: version-1
// is encoded as 0).
const Version0 = 0

// ErrorStatus values (RFC 1067).
type ErrorStatus int

const (
	NoError ErrorStatus = iota
	TooBig
	NoSuchName
	BadValue
	ReadOnly
	GenErr
)

func (e ErrorStatus) String() string {
	switch e {
	case NoError:
		return "noError"
	case TooBig:
		return "tooBig"
	case NoSuchName:
		return "noSuchName"
	case BadValue:
		return "badValue"
	case ReadOnly:
		return "readOnly"
	case GenErr:
		return "genErr"
	}
	return fmt.Sprintf("errorStatus(%d)", int(e))
}

// Binding is one variable binding: an OID and its value (NULL in
// requests).
type Binding struct {
	OID   mib.OID
	Value Value
}

// PDU is a protocol data unit.
type PDU struct {
	// Type is one of the PDU tags (TagGetRequest, TagGetNextRequest,
	// TagGetResponse, TagSetRequest).
	Type        byte
	RequestID   int32
	ErrorStatus ErrorStatus
	ErrorIndex  int
	Bindings    []Binding
}

// Message is a community-authenticated message.
type Message struct {
	Version   int
	Community string
	PDU       PDU
}

// Marshal encodes the message to wire format.
func (m *Message) Marshal() ([]byte, error) {
	binds := make([]Value, 0, len(m.PDU.Bindings))
	for _, b := range m.PDU.Bindings {
		binds = append(binds, Seq(OIDValue(b.OID), b.Value))
	}
	pdu := Value{
		Tag: m.PDU.Type,
		Seq: []Value{
			Int64(int64(m.PDU.RequestID)),
			Int64(int64(m.PDU.ErrorStatus)),
			Int64(int64(m.PDU.ErrorIndex)),
			Seq(binds...),
		},
	}
	msg := Seq(Int64(int64(m.Version)), Str(m.Community), pdu)
	return Encode(nil, msg)
}

// Unmarshal decodes a wire-format message.
func Unmarshal(data []byte) (*Message, error) {
	v, rest, err := Decode(data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, errors.New("snmp: trailing bytes after message")
	}
	if v.Tag != TagSequence || len(v.Seq) != 3 {
		return nil, errors.New("snmp: message is not a 3-element SEQUENCE")
	}
	ver, comm, pdu := v.Seq[0], v.Seq[1], v.Seq[2]
	if ver.Tag != TagInteger || comm.Tag != TagOctets {
		return nil, errors.New("snmp: bad message header")
	}
	switch pdu.Tag {
	case TagGetRequest, TagGetNextRequest, TagGetResponse, TagSetRequest:
	default:
		return nil, fmt.Errorf("snmp: unknown PDU tag 0x%02x", pdu.Tag)
	}
	if len(pdu.Seq) != 4 {
		return nil, errors.New("snmp: PDU is not a 4-element sequence")
	}
	reqID, errSt, errIx, vbl := pdu.Seq[0], pdu.Seq[1], pdu.Seq[2], pdu.Seq[3]
	if reqID.Tag != TagInteger || errSt.Tag != TagInteger || errIx.Tag != TagInteger || vbl.Tag != TagSequence {
		return nil, errors.New("snmp: bad PDU fields")
	}
	out := &Message{
		Version:   int(ver.Int),
		Community: string(comm.Bytes),
		PDU: PDU{
			Type:        pdu.Tag,
			RequestID:   int32(reqID.Int),
			ErrorStatus: ErrorStatus(errSt.Int),
			ErrorIndex:  int(errIx.Int),
		},
	}
	for i, vb := range vbl.Seq {
		if vb.Tag != TagSequence || len(vb.Seq) != 2 || vb.Seq[0].Tag != TagOID {
			return nil, fmt.Errorf("snmp: bad variable binding %d", i)
		}
		out.PDU.Bindings = append(out.PDU.Bindings, Binding{
			OID:   vb.Seq[0].OID,
			Value: vb.Seq[1],
		})
	}
	return out, nil
}

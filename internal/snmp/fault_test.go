package snmp

import (
	"testing"
	"time"

	"nmsl/internal/mib"
	"nmsl/internal/vclock"
)

// faultAgent starts an agent serving the standard MIB with a single
// "public" community and an optional server-side fault injector.
func faultAgent(t *testing.T, cc *CommunityConfig, inj *FaultInjector) (string, *Agent, *mib.Tree) {
	t.Helper()
	store := NewStore()
	tree := mib.NewStandard()
	PopulateFromMIB(store, tree, "mgmt.mib")
	agent := NewAgent(store, &Config{Communities: map[string]*CommunityConfig{"public": cc}})
	if inj != nil {
		agent.SetFaultInjector(inj)
	}
	addr, err := agent.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { agent.Close() })
	return addr.String(), agent, tree
}

func publicAny(tree *mib.Tree) *CommunityConfig {
	return &CommunityConfig{
		Access: mib.AccessAny,
		View:   []View{{Prefix: tree.Lookup("mgmt.mib").OID()}},
	}
}

// TestClientRetriesThroughDroppedResponses: the first two responses are
// lost; the retransmit budget absorbs the loss.
func TestClientRetriesThroughDroppedResponses(t *testing.T) {
	tree := mib.NewStandard()
	addr, _, _ := faultAgent(t, publicAny(tree), nil)
	inj := NewFaultInjector(1)
	inj.In = Faults{DropFirst: 2}
	c, err := DialFaulty(addr, "public", inj)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(80 * time.Millisecond)
	c.SetRetries(3)
	c.SetBackoff(time.Millisecond, 5*time.Millisecond)

	binds, err := c.Get(tree.Lookup("mgmt.mib.system.sysDescr").OID())
	if err != nil {
		t.Fatalf("get through loss: %v", err)
	}
	if len(binds) != 1 {
		t.Fatalf("bindings: %v", binds)
	}
	if got := inj.Stats().Dropped; got != 2 {
		t.Errorf("dropped %d, want 2", got)
	}
}

// TestClientGivesUpWithoutRetries: with a zero retry budget, one lost
// response fails the call.
func TestClientGivesUpWithoutRetries(t *testing.T) {
	tree := mib.NewStandard()
	addr, _, _ := faultAgent(t, publicAny(tree), nil)
	inj := NewFaultInjector(1)
	inj.In = Faults{DropFirst: 1}
	c, err := DialFaulty(addr, "public", inj)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(50 * time.Millisecond)
	c.SetRetries(0)

	if _, err := c.Get(tree.Lookup("mgmt.mib.system.sysDescr").OID()); err == nil {
		t.Fatal("lossless result over a lossy link without retries")
	}
}

// TestClientSurvivesDuplicatedResponses: every response arrives twice;
// the stale duplicate (wrong request ID by then) must not satisfy the
// next call.
func TestClientSurvivesDuplicatedResponses(t *testing.T) {
	tree := mib.NewStandard()
	addr, _, _ := faultAgent(t, publicAny(tree), nil)
	inj := NewFaultInjector(1)
	inj.In = Faults{Duplicate: 1}
	c, err := DialFaulty(addr, "public", inj)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(100 * time.Millisecond)
	c.SetRetries(1)

	sysDescr := tree.Lookup("mgmt.mib.system.sysDescr").OID()
	ttl := tree.Lookup("mgmt.mib.ip.ipDefaultTTL").OID()
	b1, err := c.Get(sysDescr)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := c.Get(ttl)
	if err != nil {
		t.Fatal(err)
	}
	if b1[0].OID.Compare(sysDescr) != 0 || b2[0].OID.Compare(ttl) != 0 {
		t.Fatalf("answers crossed: %v / %v", b1, b2)
	}
	if got := inj.Stats().Duplicated; got == 0 {
		t.Error("no duplicates injected")
	}
}

// TestClientTreatsTruncationAsLoss: a truncated response cannot parse,
// so the client observes silence and recovers by retransmitting once the
// corruption clears.
func TestClientTreatsTruncationAsLoss(t *testing.T) {
	tree := mib.NewStandard()
	addr, _, _ := faultAgent(t, publicAny(tree), nil)
	inj := NewFaultInjector(1)
	inj.In = Faults{Truncate: 1}
	c, err := DialFaulty(addr, "public", inj)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(50 * time.Millisecond)
	c.SetRetries(0)

	oid := tree.Lookup("mgmt.mib.system.sysDescr").OID()
	if _, err := c.Get(oid); err == nil {
		t.Fatal("truncated response accepted")
	}
	if got := inj.Stats().Truncated; got == 0 {
		t.Error("no truncation injected")
	}
	// The client is synchronous, so between calls nobody reads the
	// injector: clearing the schedule is safe, and the retransmitted
	// request now round-trips.
	inj.In = Faults{}
	if _, err := c.Get(oid); err != nil {
		t.Fatalf("recovery after corruption cleared: %v", err)
	}
}

// TestWalkUnderInjectedLoss sweeps the whole subtree across a link
// losing 15% of datagrams each way; retransmits must deliver the same
// variables a clean walk sees.
func TestWalkUnderInjectedLoss(t *testing.T) {
	store := NewStore()
	tree := mib.NewStandard()
	want := PopulateFromMIB(store, tree, "mgmt.mib")
	agent := NewAgent(store, &Config{Communities: map[string]*CommunityConfig{
		"public": publicAny(tree),
	}})
	addr, err := agent.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	inj := NewFaultInjector(7)
	inj.In = Faults{Drop: 0.15}
	inj.Out = Faults{Drop: 0.15}
	c, err := DialFaulty(addr.String(), "public", inj)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(50 * time.Millisecond)
	c.SetRetries(8)
	c.SetBackoff(time.Millisecond, 10*time.Millisecond)

	got := 0
	if err := c.Walk(tree.Lookup("mgmt.mib").OID(), func(Binding) error {
		got++
		return nil
	}); err != nil {
		t.Fatalf("walk: %v", err)
	}
	if got != want {
		t.Fatalf("walked %d variables, store has %d", got, want)
	}
	st := inj.Stats()
	if st.Dropped == 0 {
		t.Error("walk saw no injected loss; the test is vacuous")
	}
}

// TestRetransmitNotRateLimited pins the starvation fix: with a long
// MinInterval and a lost response, the client's retransmit must be
// served from the agent's cache instead of being metered as a fresh
// request (which would reject it and starve the client forever).
func TestRetransmitNotRateLimited(t *testing.T) {
	tree := mib.NewStandard()
	inj := NewFaultInjector(1)
	inj.Out = Faults{DropFirst: 1} // lose exactly the first response
	cc := &CommunityConfig{
		Access:      mib.AccessReadOnly,
		View:        []View{{Prefix: tree.Lookup("mgmt.mib").OID()}},
		MinInterval: time.Hour,
	}
	addr, agent, _ := faultAgent(t, cc, inj)

	c, err := Dial(addr, "public")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(80 * time.Millisecond)
	c.SetRetries(2)
	c.SetBackoff(time.Millisecond, 5*time.Millisecond)

	if _, err := c.Get(tree.Lookup("mgmt.mib.system.sysDescr").OID()); err != nil {
		t.Fatalf("retransmit starved by the rate limiter: %v", err)
	}
	st := agent.Stats()
	if st.Retransmits == 0 {
		t.Error("retransmit not served from the cache")
	}
	if st.RateLimited != 0 {
		t.Errorf("rate-limited %d requests; retries must not be metered", st.RateLimited)
	}
}

// TestRejectedRequestDoesNotAdvanceRateWindow pins the metering
// decision: the rate budget meters served requests only, so a client
// that polls too early is delayed until the original window expires —
// not pushed further out by each rejection.
func TestRejectedRequestDoesNotAdvanceRateWindow(t *testing.T) {
	store := NewStore()
	tree := mib.NewStandard()
	PopulateFromMIB(store, tree, "mgmt.mib")
	agent := NewAgent(store, &Config{Communities: map[string]*CommunityConfig{
		"public": {
			Access:      mib.AccessReadOnly,
			View:        []View{{Prefix: tree.Lookup("mgmt.mib").OID()}},
			MinInterval: 100 * time.Millisecond,
		},
	}})
	now := time.Unix(1000, 0)
	agent.SetTimeSource(func() time.Time { return now })

	oid := tree.Lookup("mgmt.mib.system.sysDescr").OID()
	req := func(id int32) *Message {
		return &Message{Version: Version0, Community: "public", PDU: PDU{
			Type: TagGetRequest, RequestID: id,
			Bindings: []Binding{{OID: oid, Value: Null()}},
		}}
	}
	if resp := agent.Handle(req(1)); resp.PDU.ErrorStatus != NoError {
		t.Fatalf("first request: %v", resp.PDU.ErrorStatus)
	}
	now = now.Add(30 * time.Millisecond)
	if resp := agent.Handle(req(2)); resp.PDU.ErrorStatus != GenErr {
		t.Fatalf("early request not rejected: %v", resp.PDU.ErrorStatus)
	}
	// 110ms after the served request, 80ms after the rejected one. If
	// rejections advanced the window this would still be rejected.
	now = now.Add(80 * time.Millisecond)
	if resp := agent.Handle(req(3)); resp.PDU.ErrorStatus != NoError {
		t.Fatalf("window advanced by a rejected request: %v", resp.PDU.ErrorStatus)
	}
}

// TestRetransmitCacheClearedOnReconfigure: a cached response computed
// under the old policy must not answer a retransmit arriving after a
// configuration change.
func TestRetransmitCacheClearedOnReconfigure(t *testing.T) {
	store := NewStore()
	tree := mib.NewStandard()
	PopulateFromMIB(store, tree, "mgmt.mib")
	mibOID := tree.Lookup("mgmt.mib").OID()
	agent := NewAgent(store, &Config{Communities: map[string]*CommunityConfig{
		"public": {Access: mib.AccessReadOnly, View: []View{{Prefix: mibOID}}},
	}})

	oid := tree.Lookup("mgmt.mib.system.sysDescr").OID()
	req := &Message{Version: Version0, Community: "public", PDU: PDU{
		Type: TagGetRequest, RequestID: 42,
		Bindings: []Binding{{OID: oid, Value: Null()}},
	}}
	if resp := agent.Handle(req); resp.PDU.ErrorStatus != NoError {
		t.Fatalf("first: %v", resp.PDU.ErrorStatus)
	}
	// identical retransmit hits the cache
	if resp := agent.Handle(req); resp.PDU.ErrorStatus != NoError {
		t.Fatalf("retransmit: %v", resp.PDU.ErrorStatus)
	}
	if agent.Stats().Retransmits != 1 {
		t.Fatalf("retransmits %d", agent.Stats().Retransmits)
	}
	// revoke access; the same message must now be denied, not served
	// from the stale cache
	agent.ApplyConfig(&Config{Communities: map[string]*CommunityConfig{}})
	if resp := agent.Handle(req); resp != nil {
		t.Fatalf("revoked community still answered: %+v", resp)
	}
}

// TestFlapScheduleOnVirtualClock: a flapping link drops everything
// during the down phase of its cycle and nothing outside it, evaluated
// purely on the injector's virtual clock — no real time passes.
func TestFlapScheduleOnVirtualClock(t *testing.T) {
	inj := NewFaultInjector(7)
	clk := vclock.NewManual(time.Unix(5000, 0))
	inj.SetClock(clk)
	inj.In = Faults{Flap: &FlapSchedule{Period: 10 * time.Second, Down: 3 * time.Second}}

	// t=0: inside the leading down window.
	if fx := inj.decide(&inj.In); !fx.drop {
		t.Fatal("t=0s: expected drop during down phase")
	}
	clk.Advance(3 * time.Second) // t=3s: link back up
	if fx := inj.decide(&inj.In); fx.drop {
		t.Fatal("t=3s: dropped while link up")
	}
	clk.Advance(7 * time.Second) // t=10s: next cycle's down phase
	if fx := inj.decide(&inj.In); !fx.drop {
		t.Fatal("t=10s: expected drop at next cycle")
	}
	st := inj.Stats()
	if st.FlapDropped != 2 || st.Dropped != 2 {
		t.Fatalf("stats = %+v, want 2 flap drops", st)
	}

	// A phase offset staggers the cycle: the same instant is up for a
	// link whose down window has been shifted away.
	shifted := Faults{Flap: &FlapSchedule{Period: 10 * time.Second, Down: 3 * time.Second, Phase: 5 * time.Second}}
	if fx := inj.decide(&shifted); fx.drop {
		t.Fatal("phase-shifted link should be up at t=10s")
	}
}

// TestBurstLossIsCorrelated: a Gilbert–Elliott channel with lossless
// good state and lossy bad state produces drops only in bursts — runs of
// consecutive losses, not isolated ones.
func TestBurstLossIsCorrelated(t *testing.T) {
	inj := NewFaultInjector(11)
	inj.In = Faults{Burst: &BurstLoss{PEnterBad: 0.02, PExitBad: 0.2, DropGood: 0, DropBad: 1}}

	const n = 5000
	runs, cur, drops := 0, 0, 0
	for i := 0; i < n; i++ {
		if inj.decide(&inj.In).drop {
			drops++
			cur++
		} else if cur > 0 {
			runs++
			cur = 0
		}
	}
	if cur > 0 {
		runs++
	}
	st := inj.Stats()
	if drops == 0 || drops == n {
		t.Fatalf("burst drops = %d of %d, want some but not all", drops, n)
	}
	if st.BurstDropped != int64(drops) || st.Dropped != int64(drops) {
		t.Fatalf("stats = %+v, want all %d drops attributed to burst", st, drops)
	}
	// With PExitBad = 0.2 the expected burst length is 5; demand the
	// average run clears 2 to prove losses are correlated, which
	// independent drops at the same overall rate would fail.
	if avg := float64(drops) / float64(runs); avg < 2 {
		t.Fatalf("average burst length %.2f over %d runs, want >= 2", avg, runs)
	}
}

// TestInjectedDelaysOnAutoClockCostNoWallTime: hours of injected delay
// slept through an auto-advancing clock finish instantly, proving the
// delay path never calls time.Sleep.
func TestInjectedDelaysOnAutoClockCostNoWallTime(t *testing.T) {
	inj := NewFaultInjector(3)
	epoch := time.Unix(9000, 0)
	clk := vclock.NewAuto(epoch)
	inj.SetClock(clk)
	inj.In = Faults{Delay: 1, MaxDelay: time.Hour}

	start := time.Now()
	delays := 0
	for i := 0; i < 200; i++ {
		fx := inj.decide(&inj.In)
		if fx.delay > 0 {
			delays++
		}
		inj.sleep(fx.delay)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("200 injected delays took %v of wall time", elapsed)
	}
	if delays == 0 {
		t.Fatal("no delays injected at probability 1")
	}
	if got := inj.Stats().Delayed; got != int64(delays) {
		t.Fatalf("Delayed = %d, want %d", got, delays)
	}
	if !clk.Now().After(epoch) {
		t.Fatal("virtual clock did not advance through the sleeps")
	}
}

// TestSetFaultsMidRun: swapping the fault schedule while traffic flows
// takes effect immediately and restarts the burst channel clean.
func TestSetFaultsMidRun(t *testing.T) {
	inj := NewFaultInjector(5)
	inj.SetFaults(Faults{Drop: 1}, Faults{})
	if fx := inj.decide(&inj.In); !fx.drop {
		t.Fatal("full-loss direction delivered")
	}
	inj.SetFaults(Faults{}, Faults{})
	if fx := inj.decide(&inj.In); fx.drop {
		t.Fatal("cleared direction still dropping")
	}
	in, out := inj.Snapshot()
	if in.Drop != 0 || out.Drop != 0 {
		t.Fatalf("snapshot = %+v / %+v after clear", in, out)
	}
}

package snmp

import (
	"crypto/sha256"
	"encoding/hex"
)

// Digest returns a deterministic content hash of the configuration: the
// hex SHA-256 of its canonical JSON wire form (encoding/json emits map
// keys sorted, and view lists are kept ordered by the generator, so two
// semantically identical configurations digest identically).
//
// Digests are the identity the transactional rollout machinery reasons
// with: the journal records the digest planned for each target, resume
// skips targets whose installed digest already matches, and the drift
// reconciler compares a live agent's digest against the model's. A nil
// configuration digests to "".
func (c *Config) Digest() string {
	if c == nil {
		return ""
	}
	blob, err := MarshalConfig(c)
	if err != nil {
		// A Config is plain data; Marshal cannot fail in practice. An
		// empty digest never matches a real one, which fails safe (the
		// rollout re-installs rather than skips).
		return ""
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

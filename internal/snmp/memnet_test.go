package snmp

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"nmsl/internal/mib"
)

// memAgent builds an agent with an admin community and a public
// read-only community, ready to host on a MemNet.
func memAgent() *Agent {
	store := NewStore()
	tree := mib.NewStandard()
	PopulateFromMIB(store, tree, "mgmt.mib")
	return NewAgent(store, &Config{
		AdminCommunity: "admin",
		Communities: map[string]*CommunityConfig{
			"public": {Access: mib.AccessReadOnly, View: []View{{Prefix: tree.Lookup("mgmt.mib").OID()}}},
		},
	})
}

func TestMemNetRoundTrip(t *testing.T) {
	n, err := NewMemNet("rt", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if _, err := n.AddHost("h1", memAgent()); err != nil {
		t.Fatal(err)
	}

	c, err := Dial(n.Addr("h1"), "public")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(100 * time.Millisecond)

	tree := mib.NewStandard()
	binds, err := c.Get(tree.Lookup("mgmt.mib.system.sysDescr").OID())
	if err != nil {
		t.Fatalf("get over mem://: %v", err)
	}
	if len(binds) != 1 {
		t.Fatalf("bindings: %v", binds)
	}

	// Config install + fetch exercise the Set path and the opaque blob
	// round trip through the in-memory wire.
	admin, err := Dial(n.Addr("h1"), "admin")
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	admin.SetTimeout(100 * time.Millisecond)
	cfg := &Config{AdminCommunity: "admin", Communities: map[string]*CommunityConfig{
		"ops": {Access: mib.AccessAny, View: []View{{Prefix: tree.Lookup("mgmt.mib").OID()}}},
	}}
	if err := admin.InstallConfig(cfg); err != nil {
		t.Fatalf("install over mem://: %v", err)
	}
	got, err := admin.FetchConfig()
	if err != nil {
		t.Fatalf("fetch over mem://: %v", err)
	}
	if got.Digest() != cfg.Digest() {
		t.Fatal("fetched config digest differs from installed")
	}
}

func TestMemNetDialErrors(t *testing.T) {
	if _, err := Dial("mem://nosuch/h", "public"); err == nil {
		t.Fatal("dial of unregistered memnet succeeded")
	}
	n, err := NewMemNet("errs", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if _, err := Dial("mem://errs/ghost", "public"); err == nil {
		t.Fatal("dial of unknown host succeeded")
	}
	if _, err := Dial("mem://errs", "public"); err == nil {
		t.Fatal("malformed mem address accepted")
	}
}

// TestMemNetDownAndRestart: a down host is silence; after Restart the
// same address answers again and the agent's config survived.
func TestMemNetDownAndRestart(t *testing.T) {
	n, err := NewMemNet("dr", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if _, err := n.AddHost("h1", memAgent()); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(n.Addr("h1"), "public")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(40 * time.Millisecond)
	c.SetRetries(0)

	tree := mib.NewStandard()
	oid := tree.Lookup("mgmt.mib.system.sysDescr").OID()

	n.SetDown("h1", true)
	if _, err := c.Get(oid); err == nil {
		t.Fatal("get to a down host succeeded")
	}
	n.Restart("h1")
	if _, err := c.Get(oid); err != nil {
		t.Fatalf("get after restart: %v", err)
	}
}

// TestPreparedInstallIdempotentAcrossAckLoss: the agent applies the
// config, the ack is lost, and a later re-send of the *prepared*
// request is absorbed by the retransmit cache — ConfigLoads stays 1.
// This is the property that keeps staged-rollout retries exactly-once.
func TestPreparedInstallIdempotentAcrossAckLoss(t *testing.T) {
	n, err := NewMemNet("prep", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	agent := memAgent()
	inj, err := n.AddHost("h1", agent)
	if err != nil {
		t.Fatal(err)
	}

	c, err := Dial(n.Addr("h1"), "admin")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(40 * time.Millisecond)
	c.SetRetries(0) // retries happen at the caller, as in a rollout attempt loop
	c.SetBackoff(0, 0)

	tree := mib.NewStandard()
	cfg := &Config{AdminCommunity: "admin", Communities: map[string]*CommunityConfig{
		"ops": {Access: mib.AccessAny, View: []View{{Prefix: tree.Lookup("mgmt.mib").OID()}}},
	}}
	prep, err := c.PrepareInstall(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// First send: request delivered, response eaten by the network.
	inj.SetFaults(Faults{}, Faults{DropFirst: 1})
	if err := prep.Send(context.Background()); err == nil {
		t.Fatal("send with dropped ack should time out")
	}
	if got := agent.Stats().ConfigLoads; got != 1 {
		t.Fatalf("ConfigLoads after lost ack = %d, want 1 (applied once)", got)
	}

	// Caller-level retry of the same prepared request: the agent's
	// retransmit cache answers it without re-applying.
	if err := prep.Send(context.Background()); err != nil {
		t.Fatalf("re-send of prepared install: %v", err)
	}
	if got := agent.Stats().ConfigLoads; got != 1 {
		t.Fatalf("ConfigLoads after re-send = %d, want 1 (duplicate apply)", got)
	}
	if agent.Stats().Retransmits != 1 {
		t.Fatalf("agent retransmit cache hits = %d, want 1", agent.Stats().Retransmits)
	}
}

// TestMemNetClientCancelInterruptsBlockedRead: canceling the context
// mid-attempt must unblock the client promptly, not after the full
// attempt timeout — the regression test for context-prompt cancellation
// in the retry loop.
func TestMemNetClientCancelInterruptsBlockedRead(t *testing.T) {
	n, err := NewMemNet("cancel", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if _, err := n.AddHost("h1", memAgent()); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(n.Addr("h1"), "public")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A long per-attempt timeout and a long backoff: only prompt
	// cancellation can finish this test quickly.
	c.SetTimeout(30 * time.Second)
	c.SetRetries(2)
	c.SetBackoff(10*time.Second, 30*time.Second)
	n.SetDown("h1", true) // no response will ever come

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	var gotErr error
	start := time.Now()
	go func() {
		defer wg.Done()
		tree := mib.NewStandard()
		_, gotErr = c.GetContext(ctx, tree.Lookup("mgmt.mib.system.sysDescr").OID())
	}()
	time.Sleep(50 * time.Millisecond) // let the read block
	cancel()
	wg.Wait()
	if !errors.Is(gotErr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", gotErr)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancel took %v to unblock the client", elapsed)
	}
}

// TestClientMuxSharesOneSocket: several clients over one mux socket
// against real UDP agents, interleaved, each getting its own responses.
func TestClientMuxSharesOneSocket(t *testing.T) {
	tree := mib.NewStandard()
	mux, err := NewClientMux()
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()

	const agents = 4
	oid := tree.Lookup("mgmt.mib.system.sysDescr").OID()
	var clients []*Client
	for i := 0; i < agents; i++ {
		a := memAgent()
		addr, err := a.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { a.Close() })
		c, err := mux.Dial(addr.String(), "public")
		if err != nil {
			t.Fatal(err)
		}
		c.SetTimeout(200 * time.Millisecond)
		clients = append(clients, c)
	}

	var wg sync.WaitGroup
	errs := make([]error, agents)
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if _, err := c.Get(oid); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d over mux: %v", i, err)
		}
	}

	// Closing one client detaches only its route.
	if err := clients[0].Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := clients[1].Get(oid); err != nil {
		t.Fatalf("surviving client after sibling close: %v", err)
	}
}

package snmp

import (
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"nmsl/internal/mib"
	"nmsl/internal/obs"
)

// View is one grant in a community's access policy: the subtree at
// Prefix may be referenced at mode Access. AccessUnspecified inherits the
// community-wide Access (Figure 4.2's inheritance rule, applied to
// grants). Keeping the mode per subtree rather than per community is what
// lets a grantee hold ReadOnly on one export and Any on another without
// either widening the first or narrowing the second.
type View struct {
	Prefix mib.OID    `json:"prefix"`
	Access mib.Access `json:"access,omitempty"`
}

// viewJSON is the object wire form of a View.
type viewJSON struct {
	Prefix mib.OID    `json:"prefix"`
	Access mib.Access `json:"access,omitempty"`
}

// UnmarshalJSON accepts both the object form {"prefix":[...],"access":n}
// and the pre-per-view bare OID form [...] (which inherits the community
// access), so configurations serialized by older generators still load.
func (v *View) UnmarshalJSON(data []byte) error {
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "[") {
		var oid mib.OID
		if err := json.Unmarshal(data, &oid); err != nil {
			return err
		}
		*v = View{Prefix: oid, Access: mib.AccessUnspecified}
		return nil
	}
	var vj viewJSON
	if err := json.Unmarshal(data, &vj); err != nil {
		return err
	}
	*v = View(vj)
	return nil
}

// CommunityConfig is the per-principal policy an NMSL configuration
// generator installs: what data the community may see (View), with which
// access mode, no more often than MinInterval. These are exactly NMSL's
// exports: the community plays the role of the importing domain, the view
// the exported MIB subtree, and MinInterval the "frequency >=" clause.
type CommunityConfig struct {
	// Access is the community-wide default access mode: views whose own
	// Access is AccessUnspecified inherit it. Generators keep it at the
	// join of the per-view modes so pre-per-view consumers still see a
	// sound (if coarse) summary.
	Access mib.Access `json:"access"`
	// View lists the granted subtrees. Empty means no access at all.
	View []View `json:"view"`
	// MinInterval is the minimum time between requests from this
	// community; zero disables rate enforcement.
	MinInterval time.Duration `json:"min_interval"`
}

// Clone returns a deep copy sharing no mutable state with cc.
func (cc *CommunityConfig) Clone() *CommunityConfig {
	if cc == nil {
		return nil
	}
	cp := *cc
	cp.View = make([]View, len(cc.View))
	for i, v := range cc.View {
		cp.View[i] = View{Prefix: v.Prefix.Clone(), Access: v.Access}
	}
	return &cp
}

// effectiveAccess resolves a view's inherited mode against the community
// default.
func (cc *CommunityConfig) effectiveAccess(v View) mib.Access {
	if v.Access == mib.AccessUnspecified {
		return cc.Access
	}
	return v.Access
}

// InView reports whether oid falls under any granted subtree, at any mode.
func (cc *CommunityConfig) InView(oid mib.OID) bool {
	for _, v := range cc.View {
		if oid.HasPrefix(v.Prefix) {
			return true
		}
	}
	return false
}

// Allows reports whether the community may reference oid at mode need.
// Grants are a union: any covering view whose mode allows the need
// suffices, matching the checker's exists-a-permission rule.
func (cc *CommunityConfig) Allows(oid mib.OID, need mib.Access) bool {
	for _, v := range cc.View {
		if oid.HasPrefix(v.Prefix) && cc.effectiveAccess(v).Allows(need) {
			return true
		}
	}
	return false
}

// AccessFor returns the total mode granted on oid: the join over every
// covering view, AccessNone if none covers it.
func (cc *CommunityConfig) AccessFor(oid mib.OID) mib.Access {
	out := mib.AccessNone
	for _, v := range cc.View {
		if oid.HasPrefix(v.Prefix) {
			out = out.Join(cc.effectiveAccess(v))
		}
	}
	return out
}

// Config is a full agent configuration.
type Config struct {
	// Communities maps community strings to their policies.
	Communities map[string]*CommunityConfig `json:"communities"`
	// AdminCommunity, when non-empty, names a community that may replace
	// the agent's configuration by writing an Opaque JSON blob to
	// ConfigOID (the live install path of NMSL's prescriptive aspect).
	AdminCommunity string `json:"admin_community,omitempty"`
}

// Clone returns a deep copy sharing no mutable state with c: safe to hand
// to concurrent installers that each mutate their own copy.
func (c *Config) Clone() *Config {
	if c == nil {
		return nil
	}
	cp := &Config{
		Communities:    make(map[string]*CommunityConfig, len(c.Communities)),
		AdminCommunity: c.AdminCommunity,
	}
	for name, cc := range c.Communities {
		cp.Communities[name] = cc.Clone()
	}
	return cp
}

// ConfigOID is the reserved objet where a serialized Config can be
// installed by the admin community (an enterprise arc, RFC 1065
// private.enterprises).
var ConfigOID = mib.OID{1, 3, 6, 1, 4, 1, 42424, 1}

// MarshalConfig serializes a Config for the live install path.
func MarshalConfig(c *Config) ([]byte, error) { return json.Marshal(c) }

// UnmarshalConfig parses a serialized Config.
func UnmarshalConfig(data []byte) (*Config, error) {
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, err
	}
	return &c, nil
}

// Store is the agent's management database: OID-ordered variables.
//
// A store may be a copy-on-write overlay over a shared base (Fork): reads
// fall through to the base, writes land in the overlay. That is what lets
// a 100k-agent fleet share one populated MIB database — each agent's
// store holds only the variables that agent has actually written.
type Store struct {
	mu   sync.RWMutex
	vals map[string]Value
	oids []mib.OID // sorted overlay keys
	// base is the shared parent of a forked store (nil for a root store).
	// It is read-only by convention: once forked from, the base must not
	// be mutated, or forks would observe the change. Forks never write to
	// the base, so a fork chain only ever locks child-then-parent and
	// cannot deadlock.
	base *Store
	// fresh counts overlay keys absent from the base, so Len stays O(1).
	fresh int
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{vals: map[string]Value{}} }

// Fork returns a copy-on-write overlay of s: reads see s's current
// variables, writes stay private to the fork. The receiver must not be
// mutated after forking (the fleet populates a base store once, freezes
// it, and forks it per agent).
func (s *Store) Fork() *Store {
	return &Store{vals: map[string]Value{}, base: s}
}

// Set inserts or replaces a variable.
func (s *Store) Set(oid mib.OID, v Value) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := oid.String()
	if _, exists := s.vals[key]; !exists {
		i := sort.Search(len(s.oids), func(i int) bool { return s.oids[i].Compare(oid) >= 0 })
		s.oids = append(s.oids, nil)
		copy(s.oids[i+1:], s.oids[i:])
		s.oids[i] = oid.Clone()
		if s.base == nil {
			s.fresh++
		} else if _, shadowed := s.base.Get(oid); !shadowed {
			s.fresh++
		}
	}
	s.vals[key] = v
}

// Get returns the variable's value.
func (s *Store) Get(oid mib.OID) (Value, bool) {
	s.mu.RLock()
	v, ok := s.vals[oid.String()]
	base := s.base
	s.mu.RUnlock()
	if ok || base == nil {
		return v, ok
	}
	return base.Get(oid)
}

// Next returns the first variable strictly after oid in lexicographic
// order (the GetNext traversal). For a forked store this merges the
// overlay walk with the base walk; an overlay entry shadows a base entry
// at the same OID (stores have no deletes, so shadowing is the only
// conflict).
func (s *Store) Next(oid mib.OID) (mib.OID, Value, bool) {
	s.mu.RLock()
	i := sort.Search(len(s.oids), func(i int) bool { return s.oids[i].Compare(oid) > 0 })
	var ooid mib.OID
	var oval Value
	ook := i < len(s.oids)
	if ook {
		ooid = s.oids[i]
		oval = s.vals[ooid.String()]
	}
	base := s.base
	s.mu.RUnlock()
	if base == nil {
		if !ook {
			return nil, Value{}, false
		}
		return ooid.Clone(), oval, true
	}
	boid, bval, bok := base.Next(oid)
	switch {
	case !ook && !bok:
		return nil, Value{}, false
	case !ook:
		return boid, bval, true
	case !bok:
		return ooid.Clone(), oval, true
	}
	if ooid.Compare(boid) <= 0 { // ties: the overlay shadows the base
		return ooid.Clone(), oval, true
	}
	return boid, bval, true
}

// Len returns the number of variables.
func (s *Store) Len() int {
	s.mu.RLock()
	fresh, base := s.fresh, s.base
	s.mu.RUnlock()
	if base == nil {
		return fresh
	}
	return base.Len() + fresh
}

// Agent is a UDP management agent.
type Agent struct {
	store *Store

	mu       sync.Mutex
	cfg      *Config
	lastSeen map[string]time.Time // community -> last accepted request
	lastReq  map[string]*Message  // community -> last answered request
	lastResp map[string]*Message  // community -> response to lastReq
	stats    Stats

	conn   *net.UDPConn
	faults *FaultInjector
	done   chan struct{}
	wg     sync.WaitGroup
	// now is replaceable for tests.
	now func() time.Time
	om  agentMetrics
}

// Stats counts agent activity.
type Stats struct {
	Requests     int64
	Denied       int64
	RateLimited  int64
	Retransmits  int64
	ConfigLoads  int64
	NoSuchName   int64
	SetsAccepted int64
}

// Metric names recorded by the agent, the client and the fault
// injector. The agent counters mirror Stats one for one, so a metrics
// scrape and Stats() never disagree; MetricAgentHandle prices request
// handling in nanoseconds.
const (
	MetricAgentRequests     = "nmsl_snmp_agent_requests_total"
	MetricAgentDenied       = "nmsl_snmp_agent_denied_total"
	MetricAgentRateLimited  = "nmsl_snmp_agent_rate_limited_total"
	MetricAgentRetransmits  = "nmsl_snmp_agent_retransmits_total"
	MetricAgentConfigLoads  = "nmsl_snmp_agent_config_loads_total"
	MetricAgentNoSuchName   = "nmsl_snmp_agent_no_such_name_total"
	MetricAgentSetsAccepted = "nmsl_snmp_agent_sets_accepted_total"
	MetricAgentHandle       = "nmsl_snmp_agent_handle_ns"

	MetricClientRequests    = "nmsl_snmp_client_requests_total"
	MetricClientRetransmits = "nmsl_snmp_client_retransmits_total"
	MetricClientTimeouts    = "nmsl_snmp_client_timeouts_total"

	// MetricFaults carries a kind label: drop, dup, truncate, delay.
	MetricFaults = "nmsl_snmp_faults_total"
)

// agentMetrics holds the agent's pre-resolved instruments so the serve
// loop never takes the registry lock.
type agentMetrics struct {
	on           bool
	requests     *obs.Counter
	denied       *obs.Counter
	rateLimited  *obs.Counter
	retransmits  *obs.Counter
	configLoads  *obs.Counter
	noSuchName   *obs.Counter
	setsAccepted *obs.Counter
	handle       *obs.Histogram
}

func newAgentMetrics(reg *obs.Registry) agentMetrics {
	return agentMetrics{
		on:           reg.Enabled(),
		requests:     reg.Counter(MetricAgentRequests),
		denied:       reg.Counter(MetricAgentDenied),
		rateLimited:  reg.Counter(MetricAgentRateLimited),
		retransmits:  reg.Counter(MetricAgentRetransmits),
		configLoads:  reg.Counter(MetricAgentConfigLoads),
		noSuchName:   reg.Counter(MetricAgentNoSuchName),
		setsAccepted: reg.Counter(MetricAgentSetsAccepted),
		handle:       reg.Histogram(MetricAgentHandle),
	}
}

// NewAgent returns an agent serving the store with the given initial
// configuration.
func NewAgent(store *Store, cfg *Config) *Agent {
	if cfg == nil {
		cfg = &Config{Communities: map[string]*CommunityConfig{}}
	}
	return &Agent{
		store:    store,
		cfg:      cfg,
		lastSeen: map[string]time.Time{},
		lastReq:  map[string]*Message{},
		lastResp: map[string]*Message{},
		done:     make(chan struct{}),
		now:      time.Now,
		om:       newAgentMetrics(obs.Default),
	}
}

// SetMetrics redirects the agent's counters to reg (obs.Default is the
// initial destination; obs.Disabled turns them off). Call before
// serving traffic. Tests that assert on counts give each agent its own
// registry.
func (a *Agent) SetMetrics(reg *obs.Registry) { a.om = newAgentMetrics(reg) }

// SetFaultInjector makes the agent's UDP loop pass traffic through inj
// (inbound faults on received datagrams, outbound faults on responses).
// Call before ListenAndServe; nil disables injection.
func (a *Agent) SetFaultInjector(inj *FaultInjector) { a.faults = inj }

// Store returns the agent's management database.
func (a *Agent) Store() *Store { return a.store }

// SetTimeSource replaces the agent's clock. Rate enforcement reads the
// time through it, which lets simulations (internal/simrun) and tests
// drive the agent on a virtual clock — and the chaos matrix skew an
// agent's clock mid-run, so the replacement is serialized against
// request handling.
func (a *Agent) SetTimeSource(now func() time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.now = now
}

// Reset models an agent process restart that kept its installed
// configuration (agents persist their config) but lost all volatile
// state: the retransmit cache and the rate-limit bookkeeping. A client
// whose acknowledgment was lost across the restart is no longer
// answered from cache, so its retry re-applies — exactly the window the
// rollout's digest pre-compare has to close.
func (a *Agent) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.lastSeen = map[string]time.Time{}
	a.lastReq = map[string]*Message{}
	a.lastResp = map[string]*Message{}
}

// Stats returns a snapshot of the counters.
func (a *Agent) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// ApplyConfig atomically replaces the agent's configuration (the file
// transport of section 5, or the live path via the admin community).
func (a *Agent) ApplyConfig(cfg *Config) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.cfg = cfg
	a.stats.ConfigLoads++
	a.om.configLoads.Inc()
	// Cached responses were computed under the old policy; drop them so a
	// retransmit cannot be answered with pre-reconfiguration data.
	a.lastReq = map[string]*Message{}
	a.lastResp = map[string]*Message{}
}

// ConfigSnapshot returns the current configuration.
func (a *Agent) ConfigSnapshot() *Config {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cfg
}

// ListenAndServe binds a UDP socket on addr (e.g. "127.0.0.1:0") and
// serves until Close. It returns the bound address.
func (a *Agent) ListenAndServe(addr string) (*net.UDPAddr, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, err
	}
	a.conn = conn
	a.wg.Add(1)
	go a.serve()
	return conn.LocalAddr().(*net.UDPAddr), nil
}

// Close stops the agent.
func (a *Agent) Close() error {
	select {
	case <-a.done:
		return nil
	default:
	}
	close(a.done)
	var err error
	if a.conn != nil {
		err = a.conn.Close()
	}
	a.wg.Wait()
	return err
}

func (a *Agent) serve() {
	defer a.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, raddr, err := a.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-a.done:
				return
			default:
				continue
			}
		}
		if a.faults != nil {
			fx := a.faults.decide(&a.faults.In)
			if fx.drop {
				continue
			}
			if fx.truncate {
				n = truncateLen(n)
			}
			a.faults.sleep(fx.delay)
		}
		req, err := Unmarshal(buf[:n])
		if err != nil {
			continue // silently drop malformed datagrams, as agents do
		}
		resp := a.Handle(req)
		if resp == nil {
			continue
		}
		out, err := resp.Marshal()
		if err != nil {
			continue
		}
		a.send(out, raddr)
	}
}

// send writes a response datagram, applying outbound faults when an
// injector is installed.
func (a *Agent) send(out []byte, raddr *net.UDPAddr) {
	if a.faults == nil {
		_, _ = a.conn.WriteToUDP(out, raddr)
		return
	}
	fx := a.faults.decide(&a.faults.Out)
	if fx.drop {
		return
	}
	if fx.truncate {
		out = out[:truncateLen(len(out))]
	}
	writes := 1
	if fx.dup {
		writes = 2
	}
	if fx.delay > 0 {
		// Deliver late without stalling the serve loop.
		cp := append([]byte(nil), out...)
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			a.faults.sleep(fx.delay)
			for i := 0; i < writes; i++ {
				_, _ = a.conn.WriteToUDP(cp, raddr)
			}
		}()
		return
	}
	for i := 0; i < writes; i++ {
		_, _ = a.conn.WriteToUDP(out, raddr)
	}
}

// Handle processes one request message and returns the response (nil to
// drop). Exposed for in-process tests and simulations.
func (a *Agent) Handle(req *Message) *Message {
	if req.Version != Version0 {
		return nil
	}
	switch req.PDU.Type {
	case TagGetRequest, TagGetNextRequest, TagSetRequest:
	default:
		return nil
	}
	if a.om.on {
		t0 := time.Now()
		defer func() { a.om.handle.Observe(int64(time.Since(t0))) }()
	}
	// Tracing off (the default) must cost nothing on the datagram path:
	// the Sprintf and the label slice only exist when a sink is installed.
	var sp obs.Span
	if obs.TracingEnabled() {
		sp = obs.StartSpan("snmp.handle", obs.Label{Key: "type", Value: fmt.Sprintf("0x%02x", req.PDU.Type)})
	}
	defer sp.End()
	a.mu.Lock()
	a.stats.Requests++
	a.om.requests.Inc()
	cfg := a.cfg
	cc := cfg.Communities[req.Community]
	isAdmin := cfg.AdminCommunity != "" && req.Community == cfg.AdminCommunity
	if cc == nil && !isAdmin {
		a.stats.Denied++
		a.om.denied.Inc()
		a.mu.Unlock()
		return nil // unknown community: drop, per SNMPv1 practice
	}
	// Retransmit detection: a client whose response was lost resends the
	// identical request. Answering from the cache keeps the retry from
	// being charged against the community's rate budget (and keeps Sets
	// idempotent), which is what prevents the starvation spiral where
	// MinInterval ~ client timeout turns every recovery attempt into a
	// fresh rate-limit rejection.
	if cached := a.lastReq[req.Community]; cached != nil && messagesEqual(cached, req) {
		resp := a.lastResp[req.Community]
		a.stats.Retransmits++
		a.om.retransmits.Inc()
		a.mu.Unlock()
		sp.Label("outcome", "retransmit-cache")
		return resp
	}
	// Rate enforcement: NMSL's frequency clause. Admin traffic is not
	// rate limited. Rejected requests deliberately do NOT advance
	// lastSeen: the budget meters requests the agent serves, so a too-
	// eager client is delayed, not starved — advancing it on rejects
	// would let a client that always polls early lock itself out forever.
	if cc != nil && cc.MinInterval > 0 && !isAdmin {
		now := a.now()
		if last, ok := a.lastSeen[req.Community]; ok && now.Sub(last) < cc.MinInterval {
			a.stats.RateLimited++
			a.om.rateLimited.Inc()
			a.mu.Unlock()
			sp.Label("outcome", "rate-limited")
			return errorResponse(req, GenErr, 0)
		}
		a.lastSeen[req.Community] = now
	}
	a.mu.Unlock()

	var resp *Message
	switch req.PDU.Type {
	case TagGetRequest:
		resp = a.handleGet(req, cc, isAdmin)
	case TagGetNextRequest:
		resp = a.handleGetNext(req, cc)
	case TagSetRequest:
		resp = a.handleSet(req, cc, isAdmin)
	}
	if resp != nil {
		// Cache only served requests; rate-limit rejections above are not
		// cached, so a client retrying a rejected poll is re-metered.
		a.mu.Lock()
		a.lastReq[req.Community] = req
		a.lastResp[req.Community] = resp
		a.mu.Unlock()
	}
	return resp
}

// messagesEqual reports whether two messages are byte-for-byte the same
// request: same version, community, PDU type, request ID and bindings.
// Request IDs repeat across client restarts, so the full comparison is
// what keeps the retransmit cache from answering a new request with a
// stale response.
func messagesEqual(a, b *Message) bool {
	if a.Version != b.Version || a.Community != b.Community {
		return false
	}
	if a.PDU.Type != b.PDU.Type || a.PDU.RequestID != b.PDU.RequestID {
		return false
	}
	if len(a.PDU.Bindings) != len(b.PDU.Bindings) {
		return false
	}
	for i := range a.PDU.Bindings {
		ab, bb := a.PDU.Bindings[i], b.PDU.Bindings[i]
		if ab.OID.Compare(bb.OID) != 0 || !ab.Value.Equal(bb.Value) {
			return false
		}
	}
	return true
}

func errorResponse(req *Message, status ErrorStatus, index int) *Message {
	return &Message{
		Version:   req.Version,
		Community: req.Community,
		PDU: PDU{
			Type:        TagGetResponse,
			RequestID:   req.PDU.RequestID,
			ErrorStatus: status,
			ErrorIndex:  index,
			Bindings:    req.PDU.Bindings,
		},
	}
}

func (a *Agent) handleGet(req *Message, cc *CommunityConfig, isAdmin bool) *Message {
	out := errorResponse(req, NoError, 0)
	out.PDU.Bindings = nil
	for i, b := range req.PDU.Bindings {
		// The admin community may read the reserved config object back:
		// the inverse of the live install path, used by transactional
		// rollouts to capture a pre-image before replacing a
		// configuration (and by the drift reconciler to compare digests).
		if isAdmin && b.OID.Compare(ConfigOID) == 0 {
			blob, err := MarshalConfig(a.ConfigSnapshot())
			if err != nil {
				return errorResponse(req, GenErr, i+1)
			}
			out.PDU.Bindings = append(out.PDU.Bindings, Binding{OID: b.OID, Value: Opaque(blob)})
			continue
		}
		if cc == nil {
			a.bumpDenied()
			return errorResponse(req, NoSuchName, i+1)
		}
		if !cc.Allows(b.OID, mib.AccessReadOnly) {
			a.bumpDenied()
			return errorResponse(req, NoSuchName, i+1)
		}
		v, ok := a.store.Get(b.OID)
		if !ok {
			a.bumpNoSuch()
			return errorResponse(req, NoSuchName, i+1)
		}
		out.PDU.Bindings = append(out.PDU.Bindings, Binding{OID: b.OID, Value: v})
	}
	return out
}

func (a *Agent) handleGetNext(req *Message, cc *CommunityConfig) *Message {
	if cc == nil {
		a.bumpDenied()
		return errorResponse(req, NoSuchName, 1)
	}
	out := errorResponse(req, NoError, 0)
	out.PDU.Bindings = nil
	for i, b := range req.PDU.Bindings {
		oid := b.OID
		for {
			next, v, ok := a.store.Next(oid)
			if !ok {
				a.bumpNoSuch()
				return errorResponse(req, NoSuchName, i+1)
			}
			oid = next
			if cc.Allows(next, mib.AccessReadOnly) {
				out.PDU.Bindings = append(out.PDU.Bindings, Binding{OID: next, Value: v})
				break
			}
			// skip variables outside the view, continuing the sweep
		}
	}
	return out
}

func (a *Agent) handleSet(req *Message, cc *CommunityConfig, isAdmin bool) *Message {
	for i, b := range req.PDU.Bindings {
		if isAdmin && b.OID.Compare(ConfigOID) == 0 {
			if b.Value.Tag != TagOpaque && b.Value.Tag != TagOctets {
				return errorResponse(req, BadValue, i+1)
			}
			cfg, err := UnmarshalConfig(b.Value.Bytes)
			if err != nil {
				return errorResponse(req, BadValue, i+1)
			}
			a.ApplyConfig(cfg)
			continue
		}
		if cc == nil {
			a.bumpDenied()
			return errorResponse(req, ReadOnly, i+1)
		}
		if !cc.InView(b.OID) {
			a.bumpDenied()
			return errorResponse(req, NoSuchName, i+1)
		}
		// In view but no covering grant allows writes: the variable is
		// visible yet read-only to this community.
		if !cc.Allows(b.OID, mib.AccessWriteOnly) {
			a.bumpDenied()
			return errorResponse(req, ReadOnly, i+1)
		}
	}
	// first pass validated; second pass commits (RFC 1067 "as if
	// simultaneous" semantics)
	for _, b := range req.PDU.Bindings {
		if isAdmin && b.OID.Compare(ConfigOID) == 0 {
			continue // applied above
		}
		a.store.Set(b.OID, b.Value)
		a.mu.Lock()
		a.stats.SetsAccepted++
		a.om.setsAccepted.Inc()
		a.mu.Unlock()
	}
	return errorResponse(req, NoError, 0)
}

func (a *Agent) bumpDenied() {
	a.mu.Lock()
	a.stats.Denied++
	a.om.denied.Inc()
	a.mu.Unlock()
}

func (a *Agent) bumpNoSuch() {
	a.mu.Lock()
	a.stats.NoSuchName++
	a.om.noSuchName.Inc()
	a.mu.Unlock()
}

// PopulateFromMIB seeds the store with one variable per leaf of the MIB
// subtree at path, using deterministic placeholder values. Simulations
// and examples use it to give agents plausible databases.
func PopulateFromMIB(store *Store, tree *mib.Tree, path string) int {
	n := 0
	tree.Walk(path, func(node *mib.Node) {
		if len(node.Children()) > 0 {
			return
		}
		oid := node.OID()
		var v Value
		switch {
		case strings.Contains(node.Name, "Addr") || strings.Contains(node.Name, "Address"):
			v = Value{Tag: TagIPAddress, Bytes: []byte{10, 0, byte(n >> 8), byte(n)}}
		case strings.HasPrefix(node.Name, "sys"):
			v = Str(fmt.Sprintf("%s-value", node.Name))
		default:
			v = Int64(int64(len(oid) * 7))
		}
		store.Set(oid, v)
		n++
	})
	return n
}

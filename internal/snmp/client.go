package snmp

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"nmsl/internal/mib"
)

// Client is a simple synchronous management client.
type Client struct {
	conn      *net.UDPConn
	community string
	timeout   time.Duration
	retries   int
	reqID     atomic.Int32
}

// Dial connects a client to an agent address with the given community.
func Dial(addr, community string) (*Client, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn:      conn,
		community: community,
		timeout:   500 * time.Millisecond,
		retries:   2,
	}, nil
}

// SetTimeout adjusts the per-attempt timeout.
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// Close releases the client socket.
func (c *Client) Close() error { return c.conn.Close() }

// RequestError is a non-zero error-status response.
type RequestError struct {
	Status ErrorStatus
	Index  int
}

func (e *RequestError) Error() string {
	return fmt.Sprintf("snmp: agent returned %s (index %d)", e.Status, e.Index)
}

// roundTrip sends the PDU and waits for the matching response.
func (c *Client) roundTrip(pduType byte, bindings []Binding) (*Message, error) {
	id := c.reqID.Add(1)
	req := &Message{
		Version:   Version0,
		Community: c.community,
		PDU:       PDU{Type: pduType, RequestID: id, Bindings: bindings},
	}
	out, err := req.Marshal()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 64*1024)
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if _, err := c.conn.Write(out); err != nil {
			return nil, err
		}
		deadline := time.Now().Add(c.timeout)
		for {
			if err := c.conn.SetReadDeadline(deadline); err != nil {
				return nil, err
			}
			n, err := c.conn.Read(buf)
			if err != nil {
				lastErr = fmt.Errorf("snmp: timeout waiting for response: %w", err)
				break
			}
			resp, err := Unmarshal(buf[:n])
			if err != nil || resp.PDU.Type != TagGetResponse || resp.PDU.RequestID != id {
				continue // stale or malformed; keep waiting
			}
			if resp.PDU.ErrorStatus != NoError {
				return resp, &RequestError{Status: resp.PDU.ErrorStatus, Index: resp.PDU.ErrorIndex}
			}
			return resp, nil
		}
	}
	return nil, lastErr
}

// Get fetches the values of the given OIDs.
func (c *Client) Get(oids ...mib.OID) ([]Binding, error) {
	binds := make([]Binding, len(oids))
	for i, o := range oids {
		binds[i] = Binding{OID: o, Value: Null()}
	}
	resp, err := c.roundTrip(TagGetRequest, binds)
	if err != nil {
		return nil, err
	}
	return resp.PDU.Bindings, nil
}

// GetNext fetches the lexicographic successors of the given OIDs.
func (c *Client) GetNext(oids ...mib.OID) ([]Binding, error) {
	binds := make([]Binding, len(oids))
	for i, o := range oids {
		binds[i] = Binding{OID: o, Value: Null()}
	}
	resp, err := c.roundTrip(TagGetNextRequest, binds)
	if err != nil {
		return nil, err
	}
	return resp.PDU.Bindings, nil
}

// Set writes the given bindings.
func (c *Client) Set(bindings ...Binding) error {
	_, err := c.roundTrip(TagSetRequest, bindings)
	return err
}

// Walk performs a GetNext sweep under the prefix, invoking fn per
// variable found, until the sweep leaves the subtree.
func (c *Client) Walk(prefix mib.OID, fn func(Binding) error) error {
	cur := prefix.Clone()
	for {
		binds, err := c.GetNext(cur)
		if err != nil {
			var re *RequestError
			if asRequestError(err, &re) && re.Status == NoSuchName {
				return nil // end of the database
			}
			return err
		}
		if len(binds) != 1 {
			return fmt.Errorf("snmp: walk got %d bindings", len(binds))
		}
		b := binds[0]
		if !b.OID.HasPrefix(prefix) {
			return nil
		}
		if err := fn(b); err != nil {
			return err
		}
		cur = b.OID
	}
}

// InstallConfig ships a configuration to an agent over the wire via the
// admin community's reserved config object — the live transport of the
// paper's prescriptive aspect (section 5).
func (c *Client) InstallConfig(cfg *Config) error {
	blob, err := MarshalConfig(cfg)
	if err != nil {
		return err
	}
	return c.Set(Binding{OID: ConfigOID, Value: Opaque(blob)})
}

// asRequestError unwraps a *RequestError.
func asRequestError(err error, target **RequestError) bool {
	re, ok := err.(*RequestError)
	if ok {
		*target = re
	}
	return ok
}

package snmp

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync/atomic"
	"time"

	"nmsl/internal/mib"
	"nmsl/internal/obs"
)

// clientConn is the transport a Client speaks over: the subset of
// *net.UDPConn the client uses, so tests can substitute a FaultyConn (or
// any in-memory pipe) for the real socket.
type clientConn interface {
	Read(b []byte) (int, error)
	Write(b []byte) (int, error)
	SetReadDeadline(t time.Time) error
	Close() error
}

// clientMetrics holds the client's pre-resolved instruments.
type clientMetrics struct {
	requests    *obs.Counter
	retransmits *obs.Counter
	timeouts    *obs.Counter
}

func newClientMetrics(reg *obs.Registry) clientMetrics {
	return clientMetrics{
		requests:    reg.Counter(MetricClientRequests),
		retransmits: reg.Counter(MetricClientRetransmits),
		timeouts:    reg.Counter(MetricClientTimeouts),
	}
}

// Client is a simple synchronous management client.
type Client struct {
	conn        clientConn
	community   string
	timeout     time.Duration
	retries     int
	backoffBase time.Duration
	backoffMax  time.Duration
	reqID       atomic.Int32
	om          clientMetrics
}

// NewClientOn returns a client speaking over an already-connected
// transport. The transport must be datagram-oriented (one Write per
// request, one Read per response).
func NewClientOn(conn clientConn, community string) *Client {
	c := &Client{
		conn:        conn,
		community:   community,
		timeout:     500 * time.Millisecond,
		retries:     2,
		backoffBase: 50 * time.Millisecond,
		backoffMax:  2 * time.Second,
		om:          newClientMetrics(obs.Default),
	}
	// Start request IDs at a random point: successive short-lived clients
	// to the same agent must not reuse IDs, or the agent's retransmit
	// cache would answer a new client's request with a stale response.
	c.reqID.Store(rand.Int31n(1 << 30))
	return c
}

// Dial connects a client to an agent address with the given community.
// Addresses of the form "mem://net/host" are routed over the in-memory
// network registered under that name (see MemNet); anything else is
// dialed as UDP. Routing here — at the single dial point — is what lets
// rollouts, reconciliation and audits run unchanged against ten
// thousand in-process agents.
func Dial(addr, community string) (*Client, error) {
	if conn, isMem, err := dialMem(addr); isMem {
		if err != nil {
			return nil, err
		}
		return NewClientOn(conn, community), nil
	}
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return nil, err
	}
	return NewClientOn(conn, community), nil
}

// SetTimeout adjusts the per-attempt timeout.
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// SetMetrics redirects the client's counters to reg (obs.Default is
// the initial destination; obs.Disabled turns them off).
func (c *Client) SetMetrics(reg *obs.Registry) { c.om = newClientMetrics(reg) }

// SetRetries adjusts how many times a request is retransmitted after the
// first attempt times out. Negative counts mean zero.
func (c *Client) SetRetries(n int) {
	if n < 0 {
		n = 0
	}
	c.retries = n
}

// SetBackoff adjusts the delay between retransmits: the k-th retry waits
// base·2^k, jittered ±50%, capped at max. A zero base disables backoff
// (retransmit immediately on timeout).
func (c *Client) SetBackoff(base, max time.Duration) {
	c.backoffBase = base
	c.backoffMax = max
}

// Close releases the client socket.
func (c *Client) Close() error { return c.conn.Close() }

// RequestError is a non-zero error-status response.
type RequestError struct {
	Status ErrorStatus
	Index  int
}

func (e *RequestError) Error() string {
	return fmt.Sprintf("snmp: agent returned %s (index %d)", e.Status, e.Index)
}

// maxBackoff clamps an overflowed exponential delay when no explicit cap
// is configured: without it, base << k wraps negative at large k and the
// delay collapses to an immediate, tight-looping retry.
const maxBackoff = time.Hour

// backoffDelay computes the jittered exponential delay before retry
// attempt k (k = 0 for the first retransmit).
func (c *Client) backoffDelay(k int) time.Duration {
	if c.backoffBase <= 0 {
		return 0
	}
	d := c.backoffBase << uint(k)
	// Detect shift overflow regardless of whether a cap was configured
	// (shifting back must recover the base exactly); the old guard only
	// clamped under a positive backoffMax, so an uncapped client
	// retransmitted with no delay at all once k grew past 62.
	if d <= 0 || d>>uint(k) != c.backoffBase {
		d = maxBackoff
	}
	if c.backoffMax > 0 && d > c.backoffMax {
		d = c.backoffMax
	}
	// Jitter uniformly in [d/2, 3d/2) so a fleet of retrying installers
	// does not retransmit in lockstep.
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	return time.Duration(half + rand.Int63n(2*half))
}

// roundTrip sends the PDU and waits for the matching response,
// retransmitting with exponential backoff until the retry budget or the
// context runs out.
func (c *Client) roundTrip(ctx context.Context, pduType byte, bindings []Binding) (*Message, error) {
	return c.roundTripID(ctx, c.reqID.Add(1), pduType, bindings)
}

// roundTripID is roundTrip with a caller-chosen request ID. Reusing an
// ID across calls makes the retransmit idempotent end to end: if the
// agent applied the write but the ack was lost, a later resend with the
// same ID and bindings hits the agent's retransmit cache and is answered
// without re-applying.
func (c *Client) roundTripID(ctx context.Context, id int32, pduType byte, bindings []Binding) (*Message, error) {
	req := &Message{
		Version:   Version0,
		Community: c.community,
		PDU:       PDU{Type: pduType, RequestID: id, Bindings: bindings},
	}
	out, err := req.Marshal()
	if err != nil {
		return nil, err
	}
	c.om.requests.Inc()
	// Only build the label (a Sprintf) when a sink will see it.
	var sp obs.Span
	if obs.TracingEnabled() {
		sp = obs.StartSpan("snmp.roundtrip", obs.Label{Key: "type", Value: fmt.Sprintf("0x%02x", pduType)})
	}
	defer sp.End()
	// A canceled context must interrupt a blocked Read immediately: a
	// read deadline only encodes the context's *deadline*, so without
	// this a rollout canceling mid-attempt still waited out the full
	// attempt timeout. Forcing the deadline into the past wakes the
	// reader; the ctx.Err() checks below turn that wake into the
	// context's error.
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() {
			_ = c.conn.SetReadDeadline(time.Unix(1, 0))
		})
		defer stop()
	}
	buf := make([]byte, 64*1024)
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, c.backoffDelay(attempt-1)); err != nil {
				return nil, err
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt > 0 {
			c.om.retransmits.Inc()
		}
		if _, err := c.conn.Write(out); err != nil {
			return nil, err
		}
		deadline := time.Now().Add(c.timeout)
		if ctxDeadline, ok := ctx.Deadline(); ok && ctxDeadline.Before(deadline) {
			deadline = ctxDeadline
		}
		for {
			if err := c.conn.SetReadDeadline(deadline); err != nil {
				return nil, err
			}
			// Close the race where the AfterFunc fired between the
			// SetReadDeadline above and the Read below (which would
			// re-arm the future deadline and block anyway).
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			n, err := c.conn.Read(buf)
			if err != nil {
				if ctxErr := ctx.Err(); ctxErr != nil {
					return nil, ctxErr
				}
				c.om.timeouts.Inc()
				lastErr = fmt.Errorf("snmp: timeout waiting for response: %w", err)
				break
			}
			resp, err := Unmarshal(buf[:n])
			if err != nil || resp.PDU.Type != TagGetResponse || resp.PDU.RequestID != id {
				continue // stale or malformed; keep waiting
			}
			if resp.PDU.ErrorStatus != NoError {
				return resp, &RequestError{Status: resp.PDU.ErrorStatus, Index: resp.PDU.ErrorIndex}
			}
			return resp, nil
		}
	}
	return nil, lastErr
}

// sleepCtx sleeps for d or until the context is done, whichever first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// GetContext fetches the values of the given OIDs, honoring ctx across
// retransmits.
func (c *Client) GetContext(ctx context.Context, oids ...mib.OID) ([]Binding, error) {
	binds := make([]Binding, len(oids))
	for i, o := range oids {
		binds[i] = Binding{OID: o, Value: Null()}
	}
	resp, err := c.roundTrip(ctx, TagGetRequest, binds)
	if err != nil {
		return nil, err
	}
	return resp.PDU.Bindings, nil
}

// Get fetches the values of the given OIDs.
func (c *Client) Get(oids ...mib.OID) ([]Binding, error) {
	return c.GetContext(context.Background(), oids...)
}

// GetNextContext fetches the lexicographic successors of the given OIDs,
// honoring ctx across retransmits.
func (c *Client) GetNextContext(ctx context.Context, oids ...mib.OID) ([]Binding, error) {
	binds := make([]Binding, len(oids))
	for i, o := range oids {
		binds[i] = Binding{OID: o, Value: Null()}
	}
	resp, err := c.roundTrip(ctx, TagGetNextRequest, binds)
	if err != nil {
		return nil, err
	}
	return resp.PDU.Bindings, nil
}

// GetNext fetches the lexicographic successors of the given OIDs.
func (c *Client) GetNext(oids ...mib.OID) ([]Binding, error) {
	return c.GetNextContext(context.Background(), oids...)
}

// SetContext writes the given bindings, honoring ctx across retransmits.
func (c *Client) SetContext(ctx context.Context, bindings ...Binding) error {
	_, err := c.roundTrip(ctx, TagSetRequest, bindings)
	return err
}

// Set writes the given bindings.
func (c *Client) Set(bindings ...Binding) error {
	return c.SetContext(context.Background(), bindings...)
}

// WalkContext performs a GetNext sweep under the prefix, invoking fn per
// variable found, until the sweep leaves the subtree or ctx is done.
func (c *Client) WalkContext(ctx context.Context, prefix mib.OID, fn func(Binding) error) error {
	cur := prefix.Clone()
	for {
		binds, err := c.GetNextContext(ctx, cur)
		if err != nil {
			var re *RequestError
			if asRequestError(err, &re) && re.Status == NoSuchName {
				return nil // end of the database
			}
			return err
		}
		if len(binds) != 1 {
			return fmt.Errorf("snmp: walk got %d bindings", len(binds))
		}
		b := binds[0]
		if !b.OID.HasPrefix(prefix) {
			return nil
		}
		if err := fn(b); err != nil {
			return err
		}
		cur = b.OID
	}
}

// Walk performs a GetNext sweep under the prefix, invoking fn per
// variable found, until the sweep leaves the subtree.
func (c *Client) Walk(prefix mib.OID, fn func(Binding) error) error {
	return c.WalkContext(context.Background(), prefix, fn)
}

// InstallConfigContext ships a configuration to an agent over the wire
// via the admin community's reserved config object — the live transport
// of the paper's prescriptive aspect (section 5).
func (c *Client) InstallConfigContext(ctx context.Context, cfg *Config) error {
	blob, err := MarshalConfig(cfg)
	if err != nil {
		return err
	}
	return c.SetContext(ctx, Binding{OID: ConfigOID, Value: Opaque(blob)})
}

// InstallConfig ships a configuration to an agent over the wire via the
// admin community's reserved config object.
func (c *Client) InstallConfig(cfg *Config) error {
	return c.InstallConfigContext(context.Background(), cfg)
}

// PreparedSet is a SetRequest frozen with a single request ID, so the
// same logical write can be re-sent across attempt boundaries without
// minting a new ID each time. A rollout's retry loop needs this: a fresh
// ID per attempt defeats the agent's retransmit cache, and an attempt
// whose SetRequest was applied but whose ack was lost would be applied a
// second time on retry. Send may be called any number of times; the
// agent treats every send as the same request.
type PreparedSet struct {
	c        *Client
	id       int32
	bindings []Binding
}

// PrepareSet freezes a SetRequest for idempotent resending.
func (c *Client) PrepareSet(bindings ...Binding) *PreparedSet {
	return &PreparedSet{c: c, id: c.reqID.Add(1), bindings: bindings}
}

// PrepareInstall freezes a config install for idempotent resending.
func (c *Client) PrepareInstall(cfg *Config) (*PreparedSet, error) {
	blob, err := MarshalConfig(cfg)
	if err != nil {
		return nil, err
	}
	return c.PrepareSet(Binding{OID: ConfigOID, Value: Opaque(blob)}), nil
}

// Send transmits the prepared request (again), waiting for its response.
func (p *PreparedSet) Send(ctx context.Context) error {
	_, err := p.c.roundTripID(ctx, p.id, TagSetRequest, p.bindings)
	return err
}

// FetchConfigContext retrieves the agent's current configuration via the
// admin community's reserved config object — the read half of the live
// install path. Transactional rollouts use it to capture a pre-image
// before replacing a configuration; the drift reconciler uses it to
// compare a live agent's digest against the model's.
func (c *Client) FetchConfigContext(ctx context.Context) (*Config, error) {
	binds, err := c.GetContext(ctx, ConfigOID)
	if err != nil {
		return nil, err
	}
	if len(binds) != 1 {
		return nil, fmt.Errorf("snmp: config fetch returned %d bindings, want 1", len(binds))
	}
	v := binds[0].Value
	if v.Tag != TagOpaque && v.Tag != TagOctets {
		return nil, fmt.Errorf("snmp: config fetch returned tag 0x%02x, not an opaque blob", v.Tag)
	}
	return UnmarshalConfig(v.Bytes)
}

// FetchConfig retrieves the agent's current configuration via the admin
// community's reserved config object.
func (c *Client) FetchConfig() (*Config, error) {
	return c.FetchConfigContext(context.Background())
}

// asRequestError unwraps a *RequestError.
func asRequestError(err error, target **RequestError) bool {
	re, ok := err.(*RequestError)
	if ok {
		*target = re
	}
	return ok
}

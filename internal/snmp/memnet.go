package snmp

import (
	"fmt"
	"hash/fnv"
	"net"
	"strings"
	"sync"
	"time"

	"nmsl/internal/vclock"
)

// MemNet is an in-memory network of agents. Ten thousand concurrent
// agents cannot each own a UDP socket (file-descriptor limits end that
// ambition around a few hundred), so the mega-fleet scenarios host
// agents as plain structs behind mem:// addresses: Dial recognizes
// "mem://<net>/<host>", and the returned client's datagrams travel
// through Marshal → per-host fault injector → Agent.Handle → Marshal,
// preserving full wire fidelity (retransmit caches, truncation,
// duplication) with zero sockets.
//
// Every host carries its own FaultInjector link, so a chaos driver can
// partition, flap or burst-degrade hosts individually while a rollout
// is running against them.
type MemNet struct {
	name string
	seed int64

	mu    sync.Mutex
	hosts map[string]*memHost
	clock vclock.Clock
}

type memHost struct {
	agent *Agent
	inj   *FaultInjector
	down  bool
}

// memNets is the process-global registry Dial consults for mem://
// addresses.
var memNets sync.Map // name -> *MemNet

// NewMemNet creates and registers an in-memory network. The seed
// derives each host's fault-injector seed, so a whole network's fault
// schedule is reproducible from one number. Close unregisters it.
func NewMemNet(name string, seed int64) (*MemNet, error) {
	if name == "" || strings.ContainsAny(name, "/ ") {
		return nil, fmt.Errorf("snmp: invalid memnet name %q", name)
	}
	n := &MemNet{name: name, seed: seed, hosts: map[string]*memHost{}, clock: vclock.Real}
	if _, loaded := memNets.LoadOrStore(name, n); loaded {
		return nil, fmt.Errorf("snmp: memnet %q already registered", name)
	}
	return n, nil
}

// Close unregisters the network; later Dials to its hosts fail.
func (n *MemNet) Close() { memNets.Delete(n.name) }

// SetClock installs a virtual clock on every current and future host's
// fault injector, so injected delays and flap schedules run on
// simulated time.
func (n *MemNet) SetClock(c vclock.Clock) {
	if c == nil {
		c = vclock.Real
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.clock = c
	for _, h := range n.hosts {
		h.inj.SetClock(c)
	}
}

// AddHost registers an agent under the given host name and returns the
// fault injector guarding its link. The injector's seed is derived from
// the network seed and the host name, so schedules are stable across
// runs regardless of registration order.
func (n *MemNet) AddHost(host string, agent *Agent) (*FaultInjector, error) {
	if host == "" || strings.ContainsAny(host, "/ ") {
		return nil, fmt.Errorf("snmp: invalid memnet host %q", host)
	}
	h := fnv.New64a()
	h.Write([]byte(host))
	inj := NewFaultInjector(n.seed ^ int64(h.Sum64()))
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.hosts[host]; dup {
		return nil, fmt.Errorf("snmp: memnet host %q already registered", host)
	}
	inj.SetClock(n.clock)
	n.hosts[host] = &memHost{agent: agent, inj: inj}
	return inj, nil
}

// Addr returns the dialable address of a host on this network.
func (n *MemNet) Addr(host string) string {
	return "mem://" + n.name + "/" + host
}

// Agent returns the agent behind a host name, or nil.
func (n *MemNet) Agent(host string) *Agent {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h := n.hosts[host]; h != nil {
		return h.agent
	}
	return nil
}

// Injector returns the fault injector guarding a host's link, or nil.
func (n *MemNet) Injector(host string) *FaultInjector {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h := n.hosts[host]; h != nil {
		return h.inj
	}
	return nil
}

// Hosts returns the registered host names (unordered).
func (n *MemNet) Hosts() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.hosts))
	for host := range n.hosts {
		out = append(out, host)
	}
	return out
}

// SetDown marks a host unreachable (down) or reachable again. Datagrams
// to a down host vanish silently, exactly as UDP to a dead machine.
func (n *MemNet) SetDown(host string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h := n.hosts[host]; h != nil {
		h.down = down
	}
}

// Restart models an agent crash-and-restart that persisted its
// configuration: volatile state (retransmit cache, rate-limit windows)
// is cleared and the host marked reachable.
func (n *MemNet) Restart(host string) {
	n.mu.Lock()
	h := n.hosts[host]
	n.mu.Unlock()
	if h == nil {
		return
	}
	h.agent.Reset()
	n.mu.Lock()
	h.down = false
	n.mu.Unlock()
}

// lookup resolves a host under the network lock.
func (n *MemNet) lookup(host string) *memHost {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hosts[host]
}

// dialMem resolves a mem:// address to a connected transport. The bool
// reports whether addr is a mem:// address at all (false means the
// caller should treat it as a real network address).
func dialMem(addr string) (clientConn, bool, error) {
	rest, ok := strings.CutPrefix(addr, "mem://")
	if !ok {
		return nil, false, nil
	}
	netName, host, ok := strings.Cut(rest, "/")
	if !ok || netName == "" || host == "" {
		return nil, true, fmt.Errorf("snmp: malformed mem address %q (want mem://net/host)", addr)
	}
	v, found := memNets.Load(netName)
	if !found {
		return nil, true, fmt.Errorf("snmp: memnet %q not registered", netName)
	}
	n := v.(*MemNet)
	if n.lookup(host) == nil {
		return nil, true, fmt.Errorf("snmp: no host %q on memnet %q", host, netName)
	}
	return &memConn{net: n, host: host, q: newDatagramQueue()}, true, nil
}

// deliver carries one client datagram to a host and its response back,
// applying the host's fault schedule on both directions. It runs on its
// own goroutine per datagram (spawned by memConn.Write), so injected
// delays stall the datagram, not the sender — the same asynchrony a
// real network gives.
func (n *MemNet) deliver(host string, req []byte, back *datagramQueue) {
	h := n.lookup(host)
	if h == nil {
		return
	}
	n.mu.Lock()
	down := h.down
	n.mu.Unlock()
	if down {
		return
	}
	inj := h.inj
	fx := inj.decide(&inj.In)
	if fx.drop {
		return
	}
	inj.sleep(fx.delay)
	if fx.truncate {
		req = req[:truncateLen(len(req))]
	}
	copies := 1
	if fx.dup {
		copies = 2
	}
	for i := 0; i < copies; i++ {
		msg, err := Unmarshal(req)
		if err != nil {
			return // malformed on the wire: the agent would discard it
		}
		resp := h.agent.Handle(msg)
		if resp == nil {
			continue // rate-limited or denied: silence, like the real serve loop
		}
		out, err := resp.Marshal()
		if err != nil {
			continue
		}
		ofx := inj.decide(&inj.Out)
		if ofx.drop {
			continue
		}
		inj.sleep(ofx.delay)
		if ofx.truncate {
			out = out[:truncateLen(len(out))]
		}
		back.push(out)
		if ofx.dup {
			back.push(out)
		}
	}
}

// memConn is the client's end of a mem:// link: Writes fan out as
// delivery goroutines, Reads drain the response queue under the
// client's read deadline.
type memConn struct {
	net  *MemNet
	host string
	q    *datagramQueue
}

func (mc *memConn) Write(b []byte) (int, error) {
	if mc.q.isClosed() {
		return 0, net.ErrClosed
	}
	data := append([]byte(nil), b...)
	go mc.net.deliver(mc.host, data, mc.q)
	return len(b), nil
}

func (mc *memConn) Read(b []byte) (int, error)        { return mc.q.read(b) }
func (mc *memConn) SetReadDeadline(t time.Time) error { return mc.q.setDeadline(t) }
func (mc *memConn) Close() error                      { mc.q.close(); return nil }

// datagramQueue is a bounded inbox with net.Conn-style read deadlines,
// shared by memConn and the UDP client mux. The deadline is a swappable
// closed-channel: SetReadDeadline re-arms it, a past deadline trips it
// immediately — which is exactly the hook the client's context
// cancellation uses to interrupt a blocked Read.
type datagramQueue struct {
	inbox chan []byte

	mu     sync.Mutex
	timer  *time.Timer
	dlCh   chan struct{} // closed when the deadline passes; nil = no deadline
	rearm  chan struct{} // closed and replaced whenever the deadline changes
	closed chan struct{}
	once   sync.Once
}

// inboxDepth bounds queued responses per connection, standing in for
// the kernel's socket buffer: overflow is silently dropped.
const inboxDepth = 64

func newDatagramQueue() *datagramQueue {
	return &datagramQueue{
		inbox:  make(chan []byte, inboxDepth),
		rearm:  make(chan struct{}),
		closed: make(chan struct{}),
	}
}

// push enqueues one datagram, dropping it if the inbox is full or the
// queue closed.
func (q *datagramQueue) push(p []byte) {
	cp := append([]byte(nil), p...)
	select {
	case <-q.closed:
	case q.inbox <- cp:
	default:
	}
}

func (q *datagramQueue) read(b []byte) (int, error) {
	for {
		q.mu.Lock()
		dl, rearm := q.dlCh, q.rearm
		q.mu.Unlock()
		// A nil deadline channel blocks forever in the select, which is
		// the no-deadline behavior. The rearm channel wakes readers that
		// were already blocked when SetReadDeadline replaced the
		// deadline — a net.Conn interrupts in-flight reads the same way,
		// and the client's context-cancel hook depends on it.
		select {
		case p := <-q.inbox:
			return copy(b, p), nil
		case <-dl:
			return 0, errReadTimeout
		case <-rearm:
			continue
		case <-q.closed:
			return 0, net.ErrClosed
		}
	}
}

func (q *datagramQueue) setDeadline(t time.Time) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.timer != nil {
		q.timer.Stop()
		q.timer = nil
	}
	close(q.rearm)
	q.rearm = make(chan struct{})
	if t.IsZero() {
		q.dlCh = nil
		return nil
	}
	ch := make(chan struct{})
	q.dlCh = ch
	if d := time.Until(t); d <= 0 {
		close(ch)
	} else {
		q.timer = time.AfterFunc(d, func() { close(ch) })
	}
	return nil
}

func (q *datagramQueue) close() {
	q.once.Do(func() {
		q.mu.Lock()
		if q.timer != nil {
			q.timer.Stop()
			q.timer = nil
		}
		q.mu.Unlock()
		close(q.closed)
	})
}

func (q *datagramQueue) isClosed() bool {
	select {
	case <-q.closed:
		return true
	default:
		return false
	}
}

// timeoutError mirrors the net package's deadline error: Timeout()
// reports true so callers treating timeouts specially keep working.
type timeoutError struct{}

func (timeoutError) Error() string   { return "snmp: read deadline exceeded" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

var errReadTimeout error = timeoutError{}

package snmp

import (
	"context"
	"net"
	"sync"
	"time"

	"nmsl/internal/obs"
	"nmsl/internal/vclock"
)

// Faults describes the misbehavior injected on one traffic direction.
// Probabilities are independent per datagram, in [0, 1].
type Faults struct {
	// Drop is the probability of losing the datagram outright.
	Drop float64
	// Duplicate is the probability of delivering the datagram twice.
	Duplicate float64
	// Truncate is the probability of delivering only a prefix of the
	// datagram (which the receiver then discards as malformed).
	Truncate float64
	// Delay is the probability of delaying delivery by a uniform random
	// duration up to MaxDelay.
	Delay float64
	// MaxDelay bounds injected delays.
	MaxDelay time.Duration
	// DropFirst deterministically drops the first N datagrams on this
	// direction, independent of the probabilities above. Tests use it to
	// force an exact loss pattern (e.g. "lose exactly the first
	// response").
	DropFirst int
	// Burst, when non-nil, adds correlated (Gilbert–Elliott) loss on top
	// of the independent Drop probability: the direction carries a
	// two-state good/bad channel whose per-state loss rates produce the
	// bursty outages real networks exhibit, which independent drops never
	// reproduce.
	Burst *BurstLoss
	// Flap, when non-nil, drives a deterministic up/down link cycle on
	// the injector's clock: every datagram seen while the link is in the
	// down phase of its cycle is dropped. Flap storms are a fleet of
	// links flapping with staggered phases.
	Flap *FlapSchedule
}

// BurstLoss is a Gilbert–Elliott loss channel: per-datagram transitions
// between a good and a bad state, with a loss probability in each.
// Typical storms use a small PEnterBad, a moderate PExitBad, DropGood
// near zero and DropBad near one — long clean stretches punctuated by
// bursts that swallow whole retry budgets.
type BurstLoss struct {
	// PEnterBad is the per-datagram probability of a good→bad
	// transition; PExitBad of bad→good.
	PEnterBad, PExitBad float64
	// DropGood and DropBad are the per-datagram loss probabilities
	// within each state.
	DropGood, DropBad float64
}

// FlapSchedule is a periodic link up/down cycle evaluated against the
// injector's clock: within each Period, the leading Down duration is
// spent down. Phase offsets the cycle so a fleet of flapping links does
// not blink in lockstep.
type FlapSchedule struct {
	Period time.Duration
	Down   time.Duration
	Phase  time.Duration
}

// downAt reports whether the link is in the down phase at time t since
// the injector's epoch.
func (fs *FlapSchedule) downAt(since time.Duration) bool {
	if fs == nil || fs.Period <= 0 || fs.Down <= 0 {
		return false
	}
	pos := (since + fs.Phase) % fs.Period
	if pos < 0 {
		pos += fs.Period
	}
	return pos < fs.Down
}

// FaultStats counts injected faults. BurstDropped and FlapDropped are
// also included in Dropped, so Dropped remains the total loss count.
type FaultStats struct {
	Dropped      int64
	Duplicated   int64
	Truncated    int64
	Delayed      int64
	BurstDropped int64
	FlapDropped  int64
}

// FaultInjector decides, from a seeded stream, which fault (if any) each
// datagram suffers. One injector may be shared by a FaultyConn (client
// side) and an Agent (server side); decisions are serialized, so a fixed
// seed gives a reproducible fault schedule.
type FaultInjector struct {
	// In applies to datagrams arriving at the faulted endpoint, Out to
	// datagrams it sends.
	In  Faults
	Out Faults

	mu       sync.Mutex
	rng      smallRand
	seen     map[*Faults]int
	burstBad map[*Faults]bool
	stats    FaultStats
	om       faultMetrics
	// clock drives flap schedules and delay sleeps; vclock.Real unless
	// SetClock installed a virtual one, so chaos tests never sleep for
	// real. epoch anchors flap phase arithmetic.
	clock vclock.Clock
	epoch time.Time
}

// faultMetrics holds the injector's pre-resolved counters, one per
// fault kind (the MetricFaults family, split by label).
type faultMetrics struct {
	dropped, duplicated, truncated, delayed, burst, flap *obs.Counter
}

func newFaultMetrics(reg *obs.Registry) faultMetrics {
	return faultMetrics{
		dropped:    reg.Counter(obs.L(MetricFaults, "kind", "drop")),
		duplicated: reg.Counter(obs.L(MetricFaults, "kind", "dup")),
		truncated:  reg.Counter(obs.L(MetricFaults, "kind", "truncate")),
		delayed:    reg.Counter(obs.L(MetricFaults, "kind", "delay")),
		burst:      reg.Counter(obs.L(MetricFaults, "kind", "burst")),
		flap:       reg.Counter(obs.L(MetricFaults, "kind", "flap")),
	}
}

// NewFaultInjector returns an injector drawing from the given seed.
func NewFaultInjector(seed int64) *FaultInjector {
	return &FaultInjector{
		rng:      seedSmallRand(seed),
		seen:     map[*Faults]int{},
		burstBad: map[*Faults]bool{},
		om:       newFaultMetrics(obs.Default),
		clock:    vclock.Real,
		epoch:    vclock.Real.Now(),
	}
}

// SetClock replaces the injector's time source (default vclock.Real)
// and re-anchors the flap epoch. Flap schedules are evaluated and delay
// faults slept on this clock, so a Manual or auto-advancing clock makes
// chaos runs deterministic with no real sleeping. Call before traffic
// flows.
func (f *FaultInjector) SetClock(c vclock.Clock) {
	if c == nil {
		c = vclock.Real
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.clock = c
	f.epoch = c.Now()
}

// sleep pauses for an injected delay on the injector's clock. The
// endpoints (FaultyConn, Agent, MemNet) route every delay through here
// instead of time.Sleep, which is what lets a virtual clock strip the
// real waiting out of chaos tests.
func (f *FaultInjector) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	f.mu.Lock()
	c := f.clock
	f.mu.Unlock()
	_ = c.Sleep(context.Background(), d)
}

// SetMetrics redirects the injector's counters to reg (obs.Default is
// the initial destination; obs.Disabled turns them off).
func (f *FaultInjector) SetMetrics(reg *obs.Registry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.om = newFaultMetrics(reg)
}

// Stats returns a snapshot of the injected-fault counters.
func (f *FaultInjector) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// SetFaults replaces both directions' fault descriptions under the
// injector's lock, so a chaos driver can repartition, start a flap
// storm or clear a burst while traffic is flowing. (Writing the In/Out
// fields directly is only safe before traffic starts.)
func (f *FaultInjector) SetFaults(in, out Faults) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.In = in
	f.Out = out
	// A replaced direction restarts its burst channel in the good state.
	delete(f.burstBad, &f.In)
	delete(f.burstBad, &f.Out)
}

// Snapshot returns the current fault descriptions under the lock, the
// read half of SetFaults.
func (f *FaultInjector) Snapshot() (in, out Faults) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.In, f.Out
}

// effects is the outcome of one per-datagram decision.
type effects struct {
	drop     bool
	dup      bool
	truncate bool
	delay    time.Duration
}

// decide rolls the dice for one datagram on the given direction.
func (f *FaultInjector) decide(dir *Faults) effects {
	f.mu.Lock()
	defer f.mu.Unlock()
	var fx effects
	f.seen[dir]++
	if f.seen[dir] <= dir.DropFirst {
		fx.drop = true
		f.stats.Dropped++
		f.om.dropped.Inc()
		return fx
	}
	// Flap: a link in the down phase of its cycle loses everything,
	// before any probabilistic fault is considered.
	if dir.Flap != nil && dir.Flap.downAt(f.clock.Now().Sub(f.epoch)) {
		fx.drop = true
		f.stats.Dropped++
		f.stats.FlapDropped++
		f.om.flap.Inc()
		return fx
	}
	// Burst: advance the Gilbert–Elliott channel one step, then roll
	// against the current state's loss rate.
	if b := dir.Burst; b != nil {
		if f.burstBad[dir] {
			if f.rng.Float64() < b.PExitBad {
				f.burstBad[dir] = false
			}
		} else if f.rng.Float64() < b.PEnterBad {
			f.burstBad[dir] = true
		}
		loss := b.DropGood
		if f.burstBad[dir] {
			loss = b.DropBad
		}
		if loss > 0 && f.rng.Float64() < loss {
			fx.drop = true
			f.stats.Dropped++
			f.stats.BurstDropped++
			f.om.burst.Inc()
			return fx
		}
	}
	if dir.Drop > 0 && f.rng.Float64() < dir.Drop {
		fx.drop = true
		f.stats.Dropped++
		f.om.dropped.Inc()
		return fx
	}
	if dir.Duplicate > 0 && f.rng.Float64() < dir.Duplicate {
		fx.dup = true
		f.stats.Duplicated++
		f.om.duplicated.Inc()
	}
	if dir.Truncate > 0 && f.rng.Float64() < dir.Truncate {
		fx.truncate = true
		f.stats.Truncated++
		f.om.truncated.Inc()
	}
	if dir.Delay > 0 && dir.MaxDelay > 0 && f.rng.Float64() < dir.Delay {
		fx.delay = time.Duration(f.rng.Int63n(int64(dir.MaxDelay)))
		f.stats.Delayed++
		f.om.delayed.Inc()
	}
	return fx
}

// truncateLen is how much of a datagram survives truncation: enough to
// look like BER, never enough to parse.
func truncateLen(n int) int {
	if n <= 1 {
		return n
	}
	return n / 2
}

// FaultyConn wraps a client transport and injects faults on both
// directions: Out faults on Write (requests), In faults on Read
// (responses). It implements the client's transport interface, so
// NewClientOn(NewFaultyConn(...)) yields a client whose network loses,
// duplicates, truncates and delays packets on a reproducible schedule.
type FaultyConn struct {
	inner clientConn
	inj   *FaultInjector

	mu      sync.Mutex
	pending [][]byte // duplicated inbound datagrams awaiting re-read
}

// NewFaultyConn wraps conn with the injector's fault schedule.
func NewFaultyConn(conn clientConn, inj *FaultInjector) *FaultyConn {
	return &FaultyConn{inner: conn, inj: inj}
}

// Write sends the datagram, subject to Out faults. A dropped datagram
// still reports success — the sender of a lost UDP packet never knows.
func (fc *FaultyConn) Write(b []byte) (int, error) {
	fx := fc.inj.decide(&fc.inj.Out)
	if fx.drop {
		return len(b), nil
	}
	fc.inj.sleep(fx.delay)
	out := b
	if fx.truncate {
		out = b[:truncateLen(len(b))]
	}
	if _, err := fc.inner.Write(out); err != nil {
		return 0, err
	}
	if fx.dup {
		_, _ = fc.inner.Write(out)
	}
	return len(b), nil
}

// Read delivers the next inbound datagram, subject to In faults. Dropped
// datagrams are consumed and the read retried, so the caller observes
// loss as silence (then a deadline error), exactly like a real socket.
func (fc *FaultyConn) Read(b []byte) (int, error) {
	fc.mu.Lock()
	if len(fc.pending) > 0 {
		p := fc.pending[0]
		fc.pending = fc.pending[1:]
		fc.mu.Unlock()
		return copy(b, p), nil
	}
	fc.mu.Unlock()
	for {
		n, err := fc.inner.Read(b)
		if err != nil {
			return n, err
		}
		fx := fc.inj.decide(&fc.inj.In)
		if fx.drop {
			continue
		}
		fc.inj.sleep(fx.delay)
		if fx.truncate {
			n = truncateLen(n)
		}
		if fx.dup {
			cp := append([]byte(nil), b[:n]...)
			fc.mu.Lock()
			fc.pending = append(fc.pending, cp)
			fc.mu.Unlock()
		}
		return n, nil
	}
}

// SetReadDeadline forwards to the wrapped transport.
func (fc *FaultyConn) SetReadDeadline(t time.Time) error { return fc.inner.SetReadDeadline(t) }

// Close forwards to the wrapped transport.
func (fc *FaultyConn) Close() error { return fc.inner.Close() }

// DialFaulty connects a client whose transport passes through inj — the
// lossy-network counterpart of Dial, used by tests and the fleet example.
func DialFaulty(addr, community string, inj *FaultInjector) (*Client, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return nil, err
	}
	return NewClientOn(NewFaultyConn(conn, inj), community), nil
}

package snmp

import (
	"math/rand"
	"net"
	"sync"
	"time"

	"nmsl/internal/obs"
)

// Faults describes the misbehavior injected on one traffic direction.
// Probabilities are independent per datagram, in [0, 1].
type Faults struct {
	// Drop is the probability of losing the datagram outright.
	Drop float64
	// Duplicate is the probability of delivering the datagram twice.
	Duplicate float64
	// Truncate is the probability of delivering only a prefix of the
	// datagram (which the receiver then discards as malformed).
	Truncate float64
	// Delay is the probability of delaying delivery by a uniform random
	// duration up to MaxDelay.
	Delay float64
	// MaxDelay bounds injected delays.
	MaxDelay time.Duration
	// DropFirst deterministically drops the first N datagrams on this
	// direction, independent of the probabilities above. Tests use it to
	// force an exact loss pattern (e.g. "lose exactly the first
	// response").
	DropFirst int
}

// FaultStats counts injected faults.
type FaultStats struct {
	Dropped    int64
	Duplicated int64
	Truncated  int64
	Delayed    int64
}

// FaultInjector decides, from a seeded stream, which fault (if any) each
// datagram suffers. One injector may be shared by a FaultyConn (client
// side) and an Agent (server side); decisions are serialized, so a fixed
// seed gives a reproducible fault schedule.
type FaultInjector struct {
	// In applies to datagrams arriving at the faulted endpoint, Out to
	// datagrams it sends.
	In  Faults
	Out Faults

	mu    sync.Mutex
	rng   *rand.Rand
	seen  map[*Faults]int
	stats FaultStats
	om    faultMetrics
}

// faultMetrics holds the injector's pre-resolved counters, one per
// fault kind (the MetricFaults family, split by label).
type faultMetrics struct {
	dropped, duplicated, truncated, delayed *obs.Counter
}

func newFaultMetrics(reg *obs.Registry) faultMetrics {
	return faultMetrics{
		dropped:    reg.Counter(obs.L(MetricFaults, "kind", "drop")),
		duplicated: reg.Counter(obs.L(MetricFaults, "kind", "dup")),
		truncated:  reg.Counter(obs.L(MetricFaults, "kind", "truncate")),
		delayed:    reg.Counter(obs.L(MetricFaults, "kind", "delay")),
	}
}

// NewFaultInjector returns an injector drawing from the given seed.
func NewFaultInjector(seed int64) *FaultInjector {
	return &FaultInjector{
		rng:  rand.New(rand.NewSource(seed)),
		seen: map[*Faults]int{},
		om:   newFaultMetrics(obs.Default),
	}
}

// SetMetrics redirects the injector's counters to reg (obs.Default is
// the initial destination; obs.Disabled turns them off).
func (f *FaultInjector) SetMetrics(reg *obs.Registry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.om = newFaultMetrics(reg)
}

// Stats returns a snapshot of the injected-fault counters.
func (f *FaultInjector) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// effects is the outcome of one per-datagram decision.
type effects struct {
	drop     bool
	dup      bool
	truncate bool
	delay    time.Duration
}

// decide rolls the dice for one datagram on the given direction.
func (f *FaultInjector) decide(dir *Faults) effects {
	f.mu.Lock()
	defer f.mu.Unlock()
	var fx effects
	f.seen[dir]++
	if f.seen[dir] <= dir.DropFirst {
		fx.drop = true
		f.stats.Dropped++
		f.om.dropped.Inc()
		return fx
	}
	if dir.Drop > 0 && f.rng.Float64() < dir.Drop {
		fx.drop = true
		f.stats.Dropped++
		f.om.dropped.Inc()
		return fx
	}
	if dir.Duplicate > 0 && f.rng.Float64() < dir.Duplicate {
		fx.dup = true
		f.stats.Duplicated++
		f.om.duplicated.Inc()
	}
	if dir.Truncate > 0 && f.rng.Float64() < dir.Truncate {
		fx.truncate = true
		f.stats.Truncated++
		f.om.truncated.Inc()
	}
	if dir.Delay > 0 && dir.MaxDelay > 0 && f.rng.Float64() < dir.Delay {
		fx.delay = time.Duration(f.rng.Int63n(int64(dir.MaxDelay)))
		f.stats.Delayed++
		f.om.delayed.Inc()
	}
	return fx
}

// truncateLen is how much of a datagram survives truncation: enough to
// look like BER, never enough to parse.
func truncateLen(n int) int {
	if n <= 1 {
		return n
	}
	return n / 2
}

// FaultyConn wraps a client transport and injects faults on both
// directions: Out faults on Write (requests), In faults on Read
// (responses). It implements the client's transport interface, so
// NewClientOn(NewFaultyConn(...)) yields a client whose network loses,
// duplicates, truncates and delays packets on a reproducible schedule.
type FaultyConn struct {
	inner clientConn
	inj   *FaultInjector

	mu      sync.Mutex
	pending [][]byte // duplicated inbound datagrams awaiting re-read
}

// NewFaultyConn wraps conn with the injector's fault schedule.
func NewFaultyConn(conn clientConn, inj *FaultInjector) *FaultyConn {
	return &FaultyConn{inner: conn, inj: inj}
}

// Write sends the datagram, subject to Out faults. A dropped datagram
// still reports success — the sender of a lost UDP packet never knows.
func (fc *FaultyConn) Write(b []byte) (int, error) {
	fx := fc.inj.decide(&fc.inj.Out)
	if fx.drop {
		return len(b), nil
	}
	if fx.delay > 0 {
		time.Sleep(fx.delay)
	}
	out := b
	if fx.truncate {
		out = b[:truncateLen(len(b))]
	}
	if _, err := fc.inner.Write(out); err != nil {
		return 0, err
	}
	if fx.dup {
		_, _ = fc.inner.Write(out)
	}
	return len(b), nil
}

// Read delivers the next inbound datagram, subject to In faults. Dropped
// datagrams are consumed and the read retried, so the caller observes
// loss as silence (then a deadline error), exactly like a real socket.
func (fc *FaultyConn) Read(b []byte) (int, error) {
	fc.mu.Lock()
	if len(fc.pending) > 0 {
		p := fc.pending[0]
		fc.pending = fc.pending[1:]
		fc.mu.Unlock()
		return copy(b, p), nil
	}
	fc.mu.Unlock()
	for {
		n, err := fc.inner.Read(b)
		if err != nil {
			return n, err
		}
		fx := fc.inj.decide(&fc.inj.In)
		if fx.drop {
			continue
		}
		if fx.delay > 0 {
			time.Sleep(fx.delay)
		}
		if fx.truncate {
			n = truncateLen(n)
		}
		if fx.dup {
			cp := append([]byte(nil), b[:n]...)
			fc.mu.Lock()
			fc.pending = append(fc.pending, cp)
			fc.mu.Unlock()
		}
		return n, nil
	}
}

// SetReadDeadline forwards to the wrapped transport.
func (fc *FaultyConn) SetReadDeadline(t time.Time) error { return fc.inner.SetReadDeadline(t) }

// Close forwards to the wrapped transport.
func (fc *FaultyConn) Close() error { return fc.inner.Close() }

// DialFaulty connects a client whose transport passes through inj — the
// lossy-network counterpart of Dial, used by tests and the fleet example.
func DialFaulty(addr, community string, inj *FaultInjector) (*Client, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return nil, err
	}
	return NewClientOn(NewFaultyConn(conn, inj), community), nil
}

package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	apiv1 "nmsl/api/v1"
)

// Crash-safe tenant persistence, borrowing the configgen journal's
// durability discipline: nothing is considered saved until it is
// fsync'd, and files are replaced by write-temp → fsync → rename →
// fsync(dir), so a kill at any instant leaves either the complete old
// file or the complete new one, never a torn mix. Two files per
// tenant:
//
//	tenants/<id>/spec.json   the accepted wire sources (SpecRequest)
//	                         plus the generation — enough to recompile
//	                         the exact acknowledged specification
//	tenants/<id>/cache.json  the result cache (ResultCache SaveFile
//	                         format), LRU-trimmed to the configured cap
//
// The last check report is deliberately NOT persisted: after a restart
// the first check re-proves every reference, but through the reloaded
// cache — fingerprint hits replay verdicts without re-solving, which
// is what keeps the post-restart check warm (TestRestartKeepsWarm).

// specFileVersion guards the on-disk spec envelope.
const specFileVersion = 1

// specFile is the persisted per-tenant spec document.
type specFile struct {
	Version    int            `json:"version"`
	Generation int64          `json:"generation"`
	Sources    []apiv1.Source `json:"sources"`
	Extensions []apiv1.Source `json:"extensions,omitempty"`
}

// syncedRename fsyncs tmp, renames it over dst and fsyncs the parent
// directory, making the replacement durable.
func syncedRename(tmp, dst string) error {
	f, err := os.OpenFile(tmp, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, dst); err != nil {
		return err
	}
	dir, err := os.Open(filepath.Dir(dst))
	if err != nil {
		return err
	}
	defer dir.Close()
	return dir.Sync()
}

// writeFileDurable atomically replaces path with data.
func writeFileDurable(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := syncedRename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// persistSpec makes a tenant's accepted sources durable.
func (s *Service) persistSpec(t *Tenant, gen int64, req *apiv1.SpecRequest) error {
	dir := s.tenantDir(t.id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	doc := specFile{Version: specFileVersion, Generation: gen, Sources: req.Sources, Extensions: req.Extensions}
	data, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	return writeFileDurable(filepath.Join(dir, "spec.json"), data)
}

// flush persists the tenant's result cache when dirty. The cache is
// snapshotted to a temp file by SaveFile (which also enforces the LRU
// cap) and then durably renamed into place.
func (t *Tenant) flush(s *Service) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.cacheDirty || t.cache == nil {
		return nil
	}
	dir := s.tenantDir(t.id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	dst := filepath.Join(dir, "cache.json")
	tmp := dst + ".tmp"
	if err := t.cache.SaveFile(tmp); err != nil {
		return err
	}
	if err := syncedRename(tmp, dst); err != nil {
		os.Remove(tmp)
		return err
	}
	t.cacheDirty = false
	if s.reg.Enabled() {
		s.reg.Counter(MetricCacheFlushes).Inc()
	}
	return nil
}

// loadState reloads every persisted tenant: recompile the accepted
// sources, reload the result cache. A tenant whose spec no longer
// compiles (or whose files are torn beyond the atomic-replace
// guarantee) fails loudly — silently dropping a tenant's state would
// masquerade as an empty daemon.
func (s *Service) loadState() error {
	root := filepath.Join(s.opt.stateDir, "tenants")
	entries, err := os.ReadDir(root)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("service: state dir: %w", err)
	}
	for _, ent := range entries {
		if !ent.IsDir() || !tenantIDPat.MatchString(ent.Name()) {
			continue
		}
		if err := s.loadTenant(ent.Name()); err != nil {
			return fmt.Errorf("service: reloading tenant %q: %w", ent.Name(), err)
		}
	}
	return nil
}

// loadTenant restores one tenant from its state directory.
func (s *Service) loadTenant(id string) error {
	dir := s.tenantDir(id)
	data, err := os.ReadFile(filepath.Join(dir, "spec.json"))
	if os.IsNotExist(err) {
		return nil // directory without an accepted spec: nothing to restore
	}
	if err != nil {
		return err
	}
	var doc specFile
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("spec.json: %w", err)
	}
	if doc.Version != specFileVersion {
		return fmt.Errorf("spec.json: unsupported version %d", doc.Version)
	}
	spec, err := compile(&apiv1.SpecRequest{Sources: doc.Sources, Extensions: doc.Extensions})
	if err != nil {
		return err
	}
	t := newTenant(id, &s.opt)
	t.spec = spec
	t.gen = doc.Generation
	t.sources = doc.Sources
	t.exts = doc.Extensions
	cachePath := filepath.Join(dir, "cache.json")
	if err := t.cache.LoadFile(cachePath); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("cache.json: %w", err)
	}
	s.mu.Lock()
	s.tenants[id] = t
	s.mu.Unlock()
	return nil
}

package service

import (
	"context"
	"fmt"
	"time"

	"nmsl"
	apiv1 "nmsl/api/v1"
)

// VerifyChange evaluates a proposed specification revision against
// change contracts, relative to the tenant's resident generation —
// the service face of the Rela-style pre-gate. It is a dry run:
// whatever the verdict, the tenant's spec, generation, cache and
// delta-replay state are untouched. A client gates its rollout by
// requiring ok before PUT /spec.
//
// Compilation of the proposal runs outside the tenant lock (like
// UpdateSpec); only the delta diff and contract evaluation — both
// delta-scoped and cheap — hold it.
func (s *Service) VerifyChange(ctx context.Context, id string, req *apiv1.VerifyChangeRequest) (*apiv1.VerifyChangeResponse, error) {
	t, err := s.tenant(id)
	if err != nil {
		return nil, err
	}
	if err := s.allow(t); err != nil {
		return nil, err
	}
	if len(req.Sources) == 0 {
		return nil, fmt.Errorf("%w: no sources", ErrCompile)
	}
	contracts, err := nmsl.ParseChangeContracts("contract.ncs", req.Contract)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadContract, err)
	}
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()

	proposed, err := compile(&apiv1.SpecRequest{Sources: req.Sources, Extensions: req.Extensions})
	if err != nil {
		return nil, err
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.spec == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoSpec, t.id)
	}
	start := time.Now()
	delta, results := proposed.VerifyChange(t.spec, contracts...)
	dur := time.Since(start)

	resp := &apiv1.VerifyChangeResponse{
		APIVersion: apiv1.Version,
		Tenant:     t.id,
		Generation: t.gen,
		OK:         true,
		Delta:      apiv1.FromDelta(delta),
		DurationNS: int64(dur),
	}
	for i, r := range results {
		if i == 0 {
			// The churn counters describe the edit, not the contract:
			// every result reports the same numbers.
			resp.DirtyInstances = r.DirtyInstances
			resp.AddedInstances = r.AddedInstances
			resp.RemovedInstances = r.RemovedInstances
			resp.AddedPermissions = r.AddedPermissions
			resp.RemovedPermissions = r.RemovedPermissions
		}
		if !r.OK() {
			resp.OK = false
			resp.Violations = append(resp.Violations, apiv1.FromContractViolations(r.Violations)...)
		}
	}
	return resp, nil
}

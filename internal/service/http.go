package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"

	apiv1 "nmsl/api/v1"
	"nmsl/internal/obs"
)

// The versioned HTTP surface. Every route is /v1/-prefixed and every
// body — request and response, success and failure — is an api/v1
// type; nothing else crosses the wire. The observability routes
// (/metrics, /debug/vars, /debug/pprof/) from internal/obs mount on
// the same mux.

// maxBodyBytes bounds request bodies; specs for tens of thousands of
// systems fit comfortably, a runaway client does not.
const maxBodyBytes = 64 << 20

// Handler returns the daemon's full HTTP surface:
//
//	GET    /healthz                        liveness
//	GET    /v1/tenants                     list resident tenants
//	GET    /v1/tenants/{id}                one tenant's summary
//	PUT    /v1/tenants/{id}/spec           install/replace a specification
//	DELETE /v1/tenants/{id}                evict a tenant and its state
//	POST   /v1/tenants/{id}/check          full consistency check
//	POST   /v1/tenants/{id}/delta-check    incremental re-check
//	POST   /v1/tenants/{id}/generate       derive per-agent configurations
//	POST   /v1/tenants/{id}/rollout        install configs at a fleet
//	POST   /v1/tenants/{id}/verify-change  check a proposed revision against change contracts
//	GET    /metrics, /debug/vars, /debug/pprof/...  (internal/obs)
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})

	mux.HandleFunc("GET /v1/tenants", s.route("tenants", func(w http.ResponseWriter, r *http.Request) int {
		return s.writeJSON(w, http.StatusOK, s.Tenants())
	}))

	mux.HandleFunc("GET /v1/tenants/{id}", s.route("tenant", func(w http.ResponseWriter, r *http.Request) int {
		t, err := s.tenant(r.PathValue("id"))
		if err != nil {
			return s.writeErr(w, err)
		}
		return s.writeJSON(w, http.StatusOK, t.info())
	}))

	mux.HandleFunc("DELETE /v1/tenants/{id}", s.route("remove", func(w http.ResponseWriter, r *http.Request) int {
		if err := s.RemoveTenant(r.PathValue("id")); err != nil {
			return s.writeErr(w, err)
		}
		w.WriteHeader(http.StatusNoContent)
		return http.StatusNoContent
	}))

	mux.HandleFunc("PUT /v1/tenants/{id}/spec", s.route("spec", func(w http.ResponseWriter, r *http.Request) int {
		var req apiv1.SpecRequest
		if code := s.readJSON(w, r, &req); code != 0 {
			return code
		}
		resp, err := s.UpdateSpec(r.Context(), r.PathValue("id"), &req)
		if err != nil {
			return s.writeErr(w, err)
		}
		return s.writeJSON(w, http.StatusOK, resp)
	}))

	mux.HandleFunc("POST /v1/tenants/{id}/check", s.route("check", s.checkHandler((*Service).Check)))
	mux.HandleFunc("POST /v1/tenants/{id}/delta-check", s.route("delta-check", s.checkHandler((*Service).DeltaCheck)))

	mux.HandleFunc("POST /v1/tenants/{id}/generate", s.route("generate", func(w http.ResponseWriter, r *http.Request) int {
		resp, err := s.Generate(r.Context(), r.PathValue("id"))
		if err != nil {
			return s.writeErr(w, err)
		}
		return s.writeJSON(w, http.StatusOK, resp)
	}))

	mux.HandleFunc("POST /v1/tenants/{id}/rollout", s.route("rollout", func(w http.ResponseWriter, r *http.Request) int {
		var req apiv1.RolloutRequest
		if code := s.readJSON(w, r, &req); code != 0 {
			return code
		}
		resp, err := s.Rollout(r.Context(), r.PathValue("id"), &req)
		if resp == nil && err != nil {
			return s.writeErr(w, err)
		}
		// A partial rollout (cancellation mid-fleet) still carries a
		// report; the status code tells the client it was cut short.
		code := http.StatusOK
		if err != nil {
			code = apiv1.StatusFromErr(err)
		}
		return s.writeJSON(w, code, resp)
	}))

	mux.HandleFunc("POST /v1/tenants/{id}/verify-change", s.route("verify-change", func(w http.ResponseWriter, r *http.Request) int {
		var req apiv1.VerifyChangeRequest
		if code := s.readJSON(w, r, &req); code != 0 {
			return code
		}
		resp, err := s.VerifyChange(r.Context(), r.PathValue("id"), &req)
		if err != nil {
			return s.writeErr(w, err)
		}
		return s.writeJSON(w, http.StatusOK, resp)
	}))

	obsHandler := obs.Handler(s.reg)
	mux.Handle("/metrics", obsHandler)
	mux.Handle("/debug/", obsHandler)

	return mux
}

// checkHandler adapts Check/DeltaCheck (same shape) into a handler.
// The request body is optional: empty means default options.
func (s *Service) checkHandler(fn func(*Service, context.Context, string, *apiv1.CheckRequest) (*apiv1.CheckResponse, error)) func(http.ResponseWriter, *http.Request) int {
	return func(w http.ResponseWriter, r *http.Request) int {
		var req apiv1.CheckRequest
		body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
		if err != nil {
			return s.writeCode(w, http.StatusBadRequest, "reading body: "+err.Error())
		}
		if len(body) > 0 {
			if err := json.Unmarshal(body, &req); err != nil {
				return s.writeCode(w, http.StatusBadRequest, "decoding request: "+err.Error())
			}
		}
		resp, err := fn(s, r.Context(), r.PathValue("id"), &req)
		if err != nil {
			return s.writeErr(w, err)
		}
		return s.writeJSON(w, http.StatusOK, resp)
	}
}

// route wraps a handler with the per-route request counter, labeled by
// route and response code class.
func (s *Service) route(name string, fn func(http.ResponseWriter, *http.Request) int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		code := fn(w, r)
		if s.reg.Enabled() {
			s.reg.Counter(obs.L(MetricRequests, "route", name, "code", codeClass(code))).Inc()
		}
	}
}

// codeClass buckets an HTTP status for the metric label (2xx/4xx/...),
// keeping label cardinality constant.
func codeClass(code int) string {
	switch {
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// readJSON decodes a required JSON request body; returns 0 on success
// or the status code it already wrote.
func (s *Service) readJSON(w http.ResponseWriter, r *http.Request, dst any) int {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	if err := dec.Decode(dst); err != nil {
		return s.writeCode(w, http.StatusBadRequest, "decoding request: "+err.Error())
	}
	return 0
}

// writeJSON writes a success body; returns the code for the metric.
func (s *Service) writeJSON(w http.ResponseWriter, code int, v any) int {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
	return code
}

// writeErr maps a service error onto the uniform error envelope.
func (s *Service) writeErr(w http.ResponseWriter, err error) int {
	return s.writeCode(w, statusFromServiceErr(err), err.Error())
}

func (s *Service) writeCode(w http.ResponseWriter, code int, msg string) int {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(apiv1.NewError(code, msg))
	return code
}

// statusFromServiceErr maps the service's typed errors onto status
// codes, falling through to the shared context-error mapping
// (apiv1.StatusFromErr) for cancellation and deadlines.
func statusFromServiceErr(err error) int {
	switch {
	case errors.Is(err, ErrNoTenant):
		return http.StatusNotFound
	case errors.Is(err, ErrBadTenantID), errors.Is(err, ErrCompile), errors.Is(err, ErrBadContract):
		return http.StatusBadRequest
	case errors.Is(err, ErrNoSpec), errors.Is(err, ErrInconsistent):
		return http.StatusConflict
	case errors.Is(err, ErrRateLimited):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrBusy), errors.Is(err, ErrTenantLimit):
		return http.StatusServiceUnavailable
	default:
		return apiv1.StatusFromErr(err)
	}
}

package service

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Request admission and per-tenant rate limiting.
//
// The rate limiter is a token bucket with the SNMP agent's rate-window
// discipline (internal/snmp agent.go): a rejected request consumes no
// budget — the bucket only pays for requests it admits — so a tenant
// that always polls too early is delayed, never locked out. The
// admission gate bounds how many checks execute at once (a check is
// CPU-bound; unbounded concurrency just thrashes) plus how many may
// wait, rejecting the rest immediately so overload degrades into fast
// 503s instead of unbounded queueing.

// bucket is a token bucket refilled continuously at rps up to burst.
type bucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// allow admits one request when a full token is available, spending
// it; a rejected request spends nothing.
func (b *bucket) allow(now time.Time, rps float64, burst int) bool {
	if rps <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.last.IsZero() {
		b.tokens = float64(burst)
	} else if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * rps
		if max := float64(burst); b.tokens > max {
			b.tokens = max
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// admission is the global concurrency gate: slots checks may run,
// queue more may wait, the rest bounce with ErrBusy.
type admission struct {
	slots   chan struct{}
	waiters atomic.Int64
	queue   int64
}

func newAdmission(slots, queue int) *admission {
	if queue < 0 {
		queue = 0
	}
	return &admission{slots: make(chan struct{}, slots), queue: int64(queue)}
}

// acquire takes a slot, waiting in the bounded queue; it returns
// ErrBusy when the queue is full and ctx.Err() when the caller gave up
// first. release with the returned func.
func (a *admission) acquire(ctx context.Context) (func(), error) {
	select {
	case a.slots <- struct{}{}:
		return func() { <-a.slots }, nil
	default:
	}
	if a.waiters.Add(1) > a.queue {
		a.waiters.Add(-1)
		return nil, ErrBusy
	}
	defer a.waiters.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return func() { <-a.slots }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

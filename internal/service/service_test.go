package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	apiv1 "nmsl/api/v1"
	"nmsl/internal/netsim"
	"nmsl/internal/obs"
)

func newTestService(t *testing.T, opts ...Option) *Service {
	t.Helper()
	opts = append([]Option{WithMetrics(obs.Disabled)}, opts...)
	s, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// specReqFor renders tenant i's synthetic internet as a wire request.
func specReqFor(p netsim.Params) *apiv1.SpecRequest {
	return &apiv1.SpecRequest{Sources: []apiv1.Source{{Name: "net.nmsl", Text: netsim.Source(p)}}}
}

// TestManyTenantsConcurrent is the isolation proof: 64 tenants, each a
// different synthetic internet with a known violation count, all
// checking concurrently (full and delta interleaved). Any cross-tenant
// state bleed shows up as a wrong violation count; any data race shows
// up under -race (make ci runs this package with -race).
func TestManyTenantsConcurrent(t *testing.T) {
	const tenants = 64
	s := newTestService(t, WithAdmission(8, tenants*4))

	type tc struct {
		id   string
		p    netsim.Params
		want int
	}
	cases := make([]tc, tenants)
	for i := range cases {
		p := netsim.Params{
			Domains:           1 + i%3,
			SystemsPerDomain:  1 + i%4,
			InconsistencyRate: 0.5,
			Seed:              int64(i),
		}
		cases[i] = tc{id: fmt.Sprintf("t%02d", i), p: p, want: netsim.ExpectedViolations(p)}
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	errc := make(chan error, tenants)
	for i := range cases {
		wg.Add(1)
		go func(c tc) {
			defer wg.Done()
			if _, err := s.UpdateSpec(ctx, c.id, specReqFor(c.p)); err != nil {
				errc <- fmt.Errorf("%s: update: %w", c.id, err)
				return
			}
			for round := 0; round < 4; round++ {
				var rep *apiv1.CheckResponse
				var err error
				if round%2 == 0 {
					rep, err = s.Check(ctx, c.id, nil)
				} else {
					rep, err = s.DeltaCheck(ctx, c.id, nil)
				}
				if err != nil {
					errc <- fmt.Errorf("%s round %d: %w", c.id, round, err)
					return
				}
				if got := len(rep.Report.Violations); got != c.want {
					errc <- fmt.Errorf("%s round %d: %d violations, want %d — cross-tenant interference",
						c.id, round, got, c.want)
					return
				}
				if rep.Tenant != c.id {
					errc <- fmt.Errorf("response for %s labeled %s", c.id, rep.Tenant)
					return
				}
			}
		}(cases[i])
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if got := len(s.TenantIDs()); got != tenants {
		t.Errorf("resident tenants = %d, want %d", got, tenants)
	}
}

// TestDeltaCheckAfterEdit proves the daemon's delta path: after a spec
// update the accumulated delta drives an incremental re-check whose
// verdict matches a from-scratch check.
func TestDeltaCheckAfterEdit(t *testing.T) {
	s := newTestService(t)
	ctx := context.Background()
	p := netsim.Params{Domains: 3, SystemsPerDomain: 3, InconsistencyRate: 0.5, Seed: 7}
	if _, err := s.UpdateSpec(ctx, "acme", specReqFor(p)); err != nil {
		t.Fatal(err)
	}
	first, err := s.Check(ctx, "acme", nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Delta {
		t.Fatal("first check cannot be a delta run")
	}
	if got, want := len(first.Report.Violations), netsim.ExpectedViolations(p); got != want {
		t.Fatalf("cold check: %d violations, want %d", got, want)
	}

	// Same topology, new seed: different pollers misbehave.
	p2 := p
	p2.Seed = 8
	up, err := s.UpdateSpec(ctx, "acme", specReqFor(p2))
	if err != nil {
		t.Fatal(err)
	}
	if up.Generation != 2 {
		t.Fatalf("generation = %d, want 2", up.Generation)
	}
	warm, err := s.DeltaCheck(ctx, "acme", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Delta {
		t.Fatal("second check should take the delta path")
	}
	if got, want := len(warm.Report.Violations), netsim.ExpectedViolations(p2); got != want {
		t.Fatalf("delta check: %d violations, want %d", got, want)
	}
	// And an untouched re-check replays everything.
	again, err := s.DeltaCheck(ctx, "acme", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Delta || len(again.Report.Violations) != len(warm.Report.Violations) {
		t.Fatalf("no-op delta check changed the verdict: %+v", again.Report.Summary)
	}
}

// TestRestartKeepsWarm is the kill-and-restart proof: a new Service
// over the same state directory recompiles the tenants and reloads
// their caches, so the first post-restart check hits the cache instead
// of re-proving every reference.
func TestRestartKeepsWarm(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	p := netsim.Params{Domains: 4, SystemsPerDomain: 4, InconsistencyRate: 0.25, Seed: 42}
	want := netsim.ExpectedViolations(p)

	s1 := newTestService(t, WithStateDir(dir), WithFlushInterval(0))
	if _, err := s1.UpdateSpec(ctx, "acme", specReqFor(p)); err != nil {
		t.Fatal(err)
	}
	cold, err := s1.Check(ctx, "acme", nil)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cache.Hits != 0 {
		t.Fatalf("cold check had %d cache hits", cold.Cache.Hits)
	}
	if err := s1.Close(); err != nil { // flushes the dirty cache
		t.Fatal(err)
	}

	// "Restart": a fresh Service over the same state directory. The
	// old one is abandoned, as after a crash (Close already flushed —
	// crash-safety of the file itself is the atomic-rename discipline).
	s2 := newTestService(t, WithStateDir(dir), WithFlushInterval(0))
	if got := s2.TenantIDs(); len(got) != 1 || got[0] != "acme" {
		t.Fatalf("restart lost tenants: %v", got)
	}
	warm, err := s2.Check(ctx, "acme", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(warm.Report.Violations); got != want {
		t.Fatalf("post-restart check: %d violations, want %d", got, want)
	}
	if warm.Cache.Hits == 0 {
		t.Fatalf("post-restart check was cold: %+v", warm.Cache)
	}
	if warm.Cache.Misses != 0 {
		t.Errorf("post-restart check missed %d entries (fingerprints drifted?)", warm.Cache.Misses)
	}
}

// TestRateLimit drives a tenant's token bucket through a fake clock:
// burst admits, the next request bounces, a refill admits again —
// and the rejected request must not consume budget.
func TestRateLimit(t *testing.T) {
	now := time.Unix(1000, 0)
	s := newTestService(t,
		WithRateLimit(1, 2),
		WithClock(func() time.Time { return now }))
	ctx := context.Background()
	p := netsim.Params{Domains: 1, SystemsPerDomain: 1, Seed: 1}

	// The burst pays for the spec upload + one check.
	if _, err := s.UpdateSpec(ctx, "acme", specReqFor(p)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Check(ctx, "acme", nil); err != nil {
		t.Fatal(err)
	}
	// Bucket empty: rejected, repeatedly (no budget consumed by rejects).
	for i := 0; i < 3; i++ {
		if _, err := s.Check(ctx, "acme", nil); !errors.Is(err, ErrRateLimited) {
			t.Fatalf("want ErrRateLimited, got %v", err)
		}
	}
	// Half a second refills half a token: still rejected.
	now = now.Add(500 * time.Millisecond)
	if _, err := s.Check(ctx, "acme", nil); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("want ErrRateLimited after partial refill, got %v", err)
	}
	// A full second's refill admits exactly one.
	now = now.Add(600 * time.Millisecond)
	if _, err := s.Check(ctx, "acme", nil); err != nil {
		t.Fatalf("refilled bucket rejected: %v", err)
	}
	if _, err := s.Check(ctx, "acme", nil); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("want ErrRateLimited, got %v", err)
	}
}

// TestRateLimitPerTenant proves one tenant exhausting its bucket does
// not touch another's.
func TestRateLimitPerTenant(t *testing.T) {
	now := time.Unix(1000, 0)
	s := newTestService(t,
		WithRateLimit(0.001, 2), // effectively no refill within the test
		WithClock(func() time.Time { return now }))
	ctx := context.Background()
	p := netsim.Params{Domains: 1, SystemsPerDomain: 1, Seed: 1}
	for _, id := range []string{"a", "b"} {
		if _, err := s.UpdateSpec(ctx, id, specReqFor(p)); err != nil {
			t.Fatal(err)
		}
	}
	// Drain tenant a.
	if _, err := s.Check(ctx, "a", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Check(ctx, "a", nil); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("tenant a should be limited, got %v", err)
	}
	// Tenant b still has its own budget.
	if _, err := s.Check(ctx, "b", nil); err != nil {
		t.Fatalf("tenant b was starved by tenant a: %v", err)
	}
}

// TestAdmissionQueueFull fills every slot and the whole wait queue with
// blocked acquirers, then asserts the next request bounces with
// ErrBusy instead of queueing unboundedly.
func TestAdmissionQueueFull(t *testing.T) {
	adm := newAdmission(1, 1)
	ctx := context.Background()

	release, err := adm.acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// One waiter fits in the queue.
	waiterDone := make(chan struct{})
	waiterCtx, cancelWaiter := context.WithCancel(ctx)
	defer cancelWaiter()
	go func() {
		defer close(waiterDone)
		if rel, err := adm.acquire(waiterCtx); err == nil {
			rel()
		}
	}()
	// Wait until the waiter is counted.
	for i := 0; adm.waiters.Load() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	// Queue full: immediate ErrBusy.
	if _, err := adm.acquire(ctx); !errors.Is(err, ErrBusy) {
		t.Fatalf("want ErrBusy, got %v", err)
	}
	// A canceled waiter returns its context error.
	shortCtx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := adm.acquire(shortCtx); !errors.Is(err, context.Canceled) && !errors.Is(err, ErrBusy) {
		t.Fatalf("want Canceled or Busy, got %v", err)
	}
	release()
	<-waiterDone
}

// TestTenantLifecycle exercises the management surface: ID validation,
// the tenant cap, removal, and the no-spec error.
func TestTenantLifecycle(t *testing.T) {
	s := newTestService(t, WithMaxTenants(2))
	ctx := context.Background()
	p := netsim.Params{Domains: 1, SystemsPerDomain: 1, Seed: 1}

	if _, err := s.UpdateSpec(ctx, "../evil", specReqFor(p)); !errors.Is(err, ErrBadTenantID) {
		t.Fatalf("path-escaping ID accepted: %v", err)
	}
	if _, err := s.UpdateSpec(ctx, "", specReqFor(p)); !errors.Is(err, ErrBadTenantID) {
		t.Fatalf("empty ID accepted: %v", err)
	}
	if _, err := s.Check(ctx, "ghost", nil); !errors.Is(err, ErrNoTenant) {
		t.Fatalf("want ErrNoTenant, got %v", err)
	}
	if _, err := s.UpdateSpec(ctx, "a", specReqFor(p)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.UpdateSpec(ctx, "b", specReqFor(p)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.UpdateSpec(ctx, "c", specReqFor(p)); !errors.Is(err, ErrTenantLimit) {
		t.Fatalf("want ErrTenantLimit, got %v", err)
	}
	if err := s.RemoveTenant("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.UpdateSpec(ctx, "c", specReqFor(p)); err != nil {
		t.Fatalf("slot freed by removal not reusable: %v", err)
	}
	if err := s.RemoveTenant("ghost"); !errors.Is(err, ErrNoTenant) {
		t.Fatalf("want ErrNoTenant, got %v", err)
	}
	if _, err := s.UpdateSpec(ctx, "c", &apiv1.SpecRequest{}); !errors.Is(err, ErrCompile) {
		t.Fatalf("empty spec accepted: %v", err)
	}
	bad := &apiv1.SpecRequest{Sources: []apiv1.Source{{Name: "x.nmsl", Text: "domain {"}}}
	if _, err := s.UpdateSpec(ctx, "c", bad); !errors.Is(err, ErrCompile) {
		t.Fatalf("want ErrCompile, got %v", err)
	}
}

// TestGenerateRefusesInconsistent pins the paper's execution rule: only
// a consistent specification may be executed (generate/rollout).
func TestGenerateRefusesInconsistent(t *testing.T) {
	s := newTestService(t)
	ctx := context.Background()
	p := netsim.Params{Domains: 2, SystemsPerDomain: 2, InconsistencyRate: 1.0, Seed: 3}
	if netsim.ExpectedViolations(p) == 0 {
		t.Fatal("test wants an inconsistent spec")
	}
	if _, err := s.UpdateSpec(ctx, "acme", specReqFor(p)); err != nil {
		t.Fatal(err)
	}
	// Generate triggers the implicit check and must refuse.
	if _, err := s.Generate(ctx, "acme"); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("want ErrInconsistent, got %v", err)
	}
	if _, err := s.Rollout(ctx, "acme", &apiv1.RolloutRequest{
		Targets: []apiv1.RolloutRequestTarget{{Instance: "x", Addr: "127.0.0.1:1"}},
	}); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("rollout of inconsistent spec: %v", err)
	}

	// A consistent revision unblocks generation...
	good := p
	good.InconsistencyRate = 0
	if _, err := s.UpdateSpec(ctx, "acme", specReqFor(good)); err != nil {
		t.Fatal(err)
	}
	out, err := s.Generate(ctx, "acme")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Configs) == 0 {
		t.Fatal("no configs generated")
	}
	// ...and the verdict tracks the generation: a bad re-upload refuses
	// again even though the last completed check said consistent.
	if _, err := s.UpdateSpec(ctx, "acme", specReqFor(p)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Generate(ctx, "acme"); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("stale consistency verdict honored: %v", err)
	}
}

// TestCacheCapAppliesToTenants proves the service plumbs the LRU cap
// into tenant caches.
func TestCacheCapAppliesToTenants(t *testing.T) {
	s := newTestService(t, WithCacheMaxEntries(2))
	ctx := context.Background()
	p := netsim.Params{Domains: 3, SystemsPerDomain: 3, Seed: 5}
	if _, err := s.UpdateSpec(ctx, "acme", specReqFor(p)); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Check(ctx, "acme", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Report.RefsChecked <= 2 {
		t.Fatalf("model too small to exercise the cap: %d refs", rep.Report.RefsChecked)
	}
	if rep.Cache.Entries > 2 {
		t.Fatalf("cache grew past the cap: %d entries", rep.Cache.Entries)
	}
	if rep.Cache.Evictions == 0 {
		t.Fatal("cap produced no evictions")
	}
}

package service

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"nmsl"
	apiv1 "nmsl/api/v1"
	"nmsl/internal/configgen"
	"nmsl/internal/obs"
)

// Tenant is one resident specification: the compiled model, the last
// complete check report (the delta-replay substrate), the accumulated
// edit delta since that report, and the tenant's private result cache.
// All fields behind mu are owned exclusively by this tenant — the
// isolation invariant the whole service rests on.
type Tenant struct {
	id  string
	opt *options
	bkt bucket

	mu         sync.Mutex
	gen        int64
	sources    []apiv1.Source
	exts       []apiv1.Source
	spec       *nmsl.Specification
	lastReport *nmsl.Report
	consistent *bool
	// checkedGen is the generation the last check ran against;
	// consistency verdicts for older generations are stale.
	checkedGen int64
	// pending accumulates the model delta of every spec update since
	// lastReport. nil means "no usable delta" (never checked, or the
	// report went stale) and forces the next delta-check to run full; a
	// non-nil empty delta is the warm no-op path.
	pending    *nmsl.ModelDelta
	cache      *nmsl.CheckCache
	cacheDirty bool
}

func newTenant(id string, opt *options) *Tenant {
	cache := nmsl.NewCheckCache()
	if opt.cacheMaxEntries > 0 {
		cache.SetMaxEntries(opt.cacheMaxEntries)
	}
	return &Tenant{id: id, opt: opt, cache: cache}
}

// info snapshots the tenant for the list endpoints.
func (t *Tenant) info() apiv1.TenantInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := apiv1.TenantInfo{ID: t.id, Generation: t.gen}
	if t.consistent != nil {
		c := *t.consistent
		out.Consistent = &c
	}
	if t.cache != nil {
		cs := apiv1.FromCacheStats(t.cache.Stats())
		out.Cache = &cs
	}
	return out
}

// allow spends one rate-limit token, recording a rejection metric when
// the bucket is empty.
func (s *Service) allow(t *Tenant) error {
	if t.bkt.allow(s.opt.now(), s.opt.ratePerSec, s.opt.rateBurst) {
		return nil
	}
	if s.reg.Enabled() {
		s.reg.Counter(MetricRateLimited).Inc()
	}
	return fmt.Errorf("%w: tenant %q", ErrRateLimited, t.id)
}

// admit acquires a global admission slot, recording a rejection metric
// when the queue is full.
func (s *Service) admit(ctx context.Context) (func(), error) {
	release, err := s.adm.acquire(ctx)
	if err != nil && s.reg.Enabled() {
		s.reg.Counter(MetricAdmissionRejected).Inc()
	}
	return release, err
}

// compile builds a fresh Specification from wire sources. Each call
// uses its own Compiler, so nothing is shared with any resident model.
func compile(req *apiv1.SpecRequest) (*nmsl.Specification, error) {
	c := nmsl.NewCompiler()
	for _, ext := range req.Extensions {
		if err := c.AddExtensionSource(ext.Name, ext.Text); err != nil {
			return nil, fmt.Errorf("%w: extension %s: %v", ErrCompile, ext.Name, err)
		}
	}
	for _, src := range req.Sources {
		if err := c.CompileSource(src.Name, src.Text); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCompile, err)
		}
	}
	spec, err := c.Finish()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCompile, err)
	}
	return spec, nil
}

// mergeDelta folds b into a (set union per dimension; Full/MIBChanged
// are sticky).
func mergeDelta(a, b *nmsl.ModelDelta) *nmsl.ModelDelta {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &nmsl.ModelDelta{
		Full:       a.Full || b.Full,
		MIBChanged: a.MIBChanged || b.MIBChanged,
		Domains:    unionStrings(a.Domains, b.Domains),
		Systems:    unionStrings(a.Systems, b.Systems),
		Processes:  unionStrings(a.Processes, b.Processes),
		Instances:  unionStrings(a.Instances, b.Instances),
	}
}

func unionStrings(a, b []string) []string {
	if len(b) == 0 {
		return a
	}
	seen := make(map[string]bool, len(a)+len(b))
	out := make([]string, 0, len(a)+len(b))
	for _, lists := range [2][]string{a, b} {
		for _, s := range lists {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	return out
}

// UpdateSpec replaces (or creates) a tenant's specification from wire
// sources. Compilation runs outside the tenant lock; the swap — and
// the diff against the generation being replaced — happens under it.
// The accepted sources are persisted before the call returns, so a
// restart recompiles exactly what was acknowledged.
func (s *Service) UpdateSpec(ctx context.Context, id string, req *apiv1.SpecRequest) (*apiv1.SpecResponse, error) {
	if len(req.Sources) == 0 {
		return nil, fmt.Errorf("%w: no sources", ErrCompile)
	}
	t, err := s.tenantOrCreate(id)
	if err != nil {
		return nil, err
	}
	if err := s.allow(t); err != nil {
		return nil, err
	}
	spec, err := compile(req)
	if err != nil {
		// A failed upload must not leave an empty tenant occupying a
		// slot (or reachable as 409s over HTTP).
		s.dropIfEmpty(t)
		return nil, err
	}

	t.mu.Lock()
	var delta *nmsl.ModelDelta
	if t.spec != nil {
		delta = nmsl.DiffSpecs(t.spec, spec)
		t.pending = mergeDelta(t.pending, delta)
	}
	t.spec = spec
	t.gen++
	t.sources = append([]apiv1.Source(nil), req.Sources...)
	t.exts = append([]apiv1.Source(nil), req.Extensions...)
	gen := t.gen
	model := spec.Model()
	resp := &apiv1.SpecResponse{
		APIVersion: apiv1.Version,
		Tenant:     t.id,
		Generation: gen,
		Delta:      apiv1.FromDelta(delta),
		Instances:  len(model.Instances),
		Refs:       len(model.Refs),
		Perms:      len(model.Perms),
	}
	t.mu.Unlock()

	if s.reg.Enabled() {
		s.reg.Counter(MetricSpecUpdates).Inc()
	}
	if s.opt.stateDir != "" {
		if err := s.persistSpec(t, gen, req); err != nil {
			return nil, fmt.Errorf("service: persisting tenant %q: %w", t.id, err)
		}
	}
	return resp, nil
}

// checkOptions resolves a wire CheckRequest into checker options.
func (s *Service) checkOptions(t *Tenant, req *apiv1.CheckRequest) []nmsl.CheckOption {
	workers := s.opt.checkWorkers
	if req != nil && req.Workers > 0 {
		workers = req.Workers
	}
	opts := []nmsl.CheckOption{
		nmsl.WithWorkers(workers),
		nmsl.WithCache(t.cache),
		nmsl.WithMetrics(s.reg),
	}
	if req != nil && req.FailFast {
		opts = append(opts, nmsl.WithFailFast())
	}
	return opts
}

// Check runs a full consistency check for the tenant.
func (s *Service) Check(ctx context.Context, id string, req *apiv1.CheckRequest) (*apiv1.CheckResponse, error) {
	return s.check(ctx, id, req, false)
}

// DeltaCheck re-checks the tenant incrementally: references untouched
// by the spec updates since the last complete check replay their
// previous verdicts; only the dirty ones re-prove. Without a usable
// previous report it degrades to a full check (still warmed by the
// result cache).
func (s *Service) DeltaCheck(ctx context.Context, id string, req *apiv1.CheckRequest) (*apiv1.CheckResponse, error) {
	return s.check(ctx, id, req, true)
}

func (s *Service) check(ctx context.Context, id string, req *apiv1.CheckRequest, delta bool) (*apiv1.CheckResponse, error) {
	t, err := s.tenant(id)
	if err != nil {
		return nil, err
	}
	if err := s.allow(t); err != nil {
		return nil, err
	}
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.spec == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoSpec, t.id)
	}
	start := time.Now()
	var rep *nmsl.Report
	ranDelta := false
	if delta && t.lastReport != nil && t.pending != nil && !(req != nil && req.FailFast) {
		rep = t.spec.CheckDelta(t.lastReport, t.pending, t.cache)
		ranDelta = true
	} else {
		rep, err = t.spec.CheckContext(ctx, s.checkOptions(t, req)...)
		if err != nil {
			// A cancelled or timed-out check is partial: report the
			// context error, keep the previous replay substrate.
			return nil, err
		}
	}
	dur := time.Since(start)

	// A complete run becomes the new replay substrate; FailFast runs
	// are partial and must not (CheckDelta would fall back anyway, but
	// the stale-report guard belongs here).
	if !(req != nil && req.FailFast) {
		t.lastReport = rep
		t.pending = &nmsl.ModelDelta{}
	}
	c := rep.Consistent()
	t.consistent = &c
	t.checkedGen = t.gen
	t.cacheDirty = true

	if s.reg.Enabled() {
		kind := "full"
		if ranDelta {
			kind = "delta"
		}
		s.reg.Histogram(obs.L(MetricCheckDuration, "kind", kind)).Observe(int64(dur))
	}
	cs := apiv1.FromCacheStats(t.cache.Stats())
	return &apiv1.CheckResponse{
		APIVersion: apiv1.Version,
		Tenant:     t.id,
		Generation: t.gen,
		Report:     apiv1.FromReport(rep),
		Delta:      ranDelta,
		Cache:      &cs,
		DurationNS: int64(dur),
	}, nil
}

// Generate derives the tenant's per-agent configurations (running a
// check first when none has completed; only a consistent specification
// may be executed, per the paper).
func (s *Service) Generate(ctx context.Context, id string) (*apiv1.GenerateResponse, error) {
	t, err := s.tenant(id)
	if err != nil {
		return nil, err
	}
	if err := s.allow(t); err != nil {
		return nil, err
	}
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.spec == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoSpec, t.id)
	}
	if err := t.ensureConsistentLocked(ctx, s); err != nil {
		return nil, err
	}
	configs := t.spec.AgentConfigs()
	out := &apiv1.GenerateResponse{
		APIVersion: apiv1.Version,
		Tenant:     t.id,
		Generation: t.gen,
		Configs:    make(map[string]json.RawMessage, len(configs)),
	}
	for inst, cfg := range configs {
		blob, err := json.Marshal(cfg)
		if err != nil {
			return nil, fmt.Errorf("service: marshal config for %s: %w", inst, err)
		}
		out.Configs[inst] = blob
	}
	return out, nil
}

// Rollout installs the tenant's generated configuration at the
// requested fleet through the fault-tolerant rollout engine.
func (s *Service) Rollout(ctx context.Context, id string, req *apiv1.RolloutRequest) (*apiv1.RolloutResponse, error) {
	t, err := s.tenant(id)
	if err != nil {
		return nil, err
	}
	if err := s.allow(t); err != nil {
		return nil, err
	}
	if len(req.Targets) == 0 {
		return nil, fmt.Errorf("%w: rollout has no targets", ErrCompile)
	}
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.spec == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoSpec, t.id)
	}
	if err := t.ensureConsistentLocked(ctx, s); err != nil {
		return nil, err
	}
	targets := make([]configgen.Target, len(req.Targets))
	for i, rt := range req.Targets {
		targets[i] = configgen.Target{InstanceID: rt.Instance, Addr: rt.Addr, AdminCommunity: rt.Admin}
	}
	ropts := []configgen.RolloutOption{configgen.WithMetrics(s.reg)}
	if req.Workers > 0 {
		ropts = append(ropts, configgen.WithWorkers(req.Workers))
	}
	if req.Retries > 0 {
		ropts = append(ropts, configgen.WithRetries(req.Retries))
	}
	if req.FailFast {
		ropts = append(ropts, configgen.WithFailFast())
	}
	report, rerr := configgen.DistributeContext(ctx, t.spec.Model(), targets, ropts...)
	if rerr != nil && report == nil {
		return nil, rerr
	}
	return &apiv1.RolloutResponse{
		APIVersion: apiv1.Version,
		Tenant:     t.id,
		Generation: t.gen,
		Report:     apiv1.FromRolloutReport(report),
	}, rerr
}

// ensureConsistentLocked runs a check when none has completed for the
// current spec, then refuses inconsistent specifications. Caller holds
// t.mu.
func (t *Tenant) ensureConsistentLocked(ctx context.Context, s *Service) error {
	if t.consistent == nil || t.lastReport == nil || t.checkedGen != t.gen {
		rep, err := t.spec.CheckContext(ctx, s.checkOptions(t, nil)...)
		if err != nil {
			return err
		}
		t.lastReport = rep
		t.pending = &nmsl.ModelDelta{}
		c := rep.Consistent()
		t.consistent = &c
		t.checkedGen = t.gen
		t.cacheDirty = true
	}
	if !*t.consistent {
		return fmt.Errorf("%w: tenant %q (re-check for causes)", ErrInconsistent, t.id)
	}
	return nil
}

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	apiv1 "nmsl/api/v1"
	"nmsl/internal/netsim"
)

// Synthetic many-tenant load generation (cmd/nmslload, make svc-smoke,
// experiment E-SVC-1). The generator is a real HTTP client: it
// exercises the daemon exactly the way external callers do — JSON
// bodies over the versioned routes — so the measured numbers include
// the wire, not just the library.

// LoadConfig sizes a load run.
type LoadConfig struct {
	// BaseURL of a running daemon, e.g. "http://127.0.0.1:9380".
	BaseURL string
	// Tenants is how many distinct tenants to install and drive.
	Tenants int
	// DomainsPerTenant and SystemsPerDomain size each tenant's
	// synthetic internet (distinct seeds per tenant).
	DomainsPerTenant int
	SystemsPerDomain int
	// Duration bounds the sustained delta-check phase.
	Duration time.Duration
	// Conc is the number of concurrent client workers.
	Conc int
	// Client overrides the HTTP client (tests inject httptest's).
	Client *http.Client
}

func (c *LoadConfig) fill() {
	if c.Tenants <= 0 {
		c.Tenants = 8
	}
	if c.DomainsPerTenant <= 0 {
		c.DomainsPerTenant = 4
	}
	if c.SystemsPerDomain <= 0 {
		c.SystemsPerDomain = 4
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Conc <= 0 {
		c.Conc = 4
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
}

// LoadResult is what a run measured; its JSON shape is the
// BENCH_svc.json contract consumed by scripts/slogate.
type LoadResult struct {
	Tenants      int     `json:"tenants"`
	DurationSec  float64 `json:"duration_s"`
	ColdChecks   int64   `json:"cold_checks"`
	DeltaChecks  int64   `json:"delta_checks"`
	ChecksPerSec float64 `json:"checks_per_sec"`
	WarmP50NS    int64   `json:"warm_p50_ns"`
	WarmP90NS    int64   `json:"warm_p90_ns"`
	WarmP99NS    int64   `json:"warm_p99_ns"`
	RateLimited  int64   `json:"rate_limited"`
	Busy         int64   `json:"busy"`
	Errors       int64   `json:"errors"`
	ViolationsOK bool    `json:"violations_ok"`
	CheckedTotal int64   `json:"refs_checked_total"`
	CacheHitsEnd int64   `json:"cache_hits_end"`
	CacheMissEnd int64   `json:"cache_misses_end"`
}

// tenantParams gives tenant i its own deterministic synthetic
// internet; distinct seeds make cross-tenant result bleed detectable
// (each tenant's violation count is predicted by its own params).
func tenantParams(cfg *LoadConfig, i int) netsim.Params {
	return netsim.Params{
		Domains:           cfg.DomainsPerTenant,
		SystemsPerDomain:  cfg.SystemsPerDomain,
		InconsistencyRate: 0.25,
		Seed:              int64(1000 + i),
	}
}

// RunLoad installs cfg.Tenants synthetic tenants, cold-checks each
// once, then drives sustained delta-checks from cfg.Conc workers until
// cfg.Duration elapses, verifying every report against the tenant's
// expected violation count.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadResult, error) {
	cfg.fill()
	res := &LoadResult{Tenants: cfg.Tenants, ViolationsOK: true}

	type tstate struct {
		id   string
		want int
	}
	tenants := make([]tstate, cfg.Tenants)
	for i := range tenants {
		p := tenantParams(&cfg, i)
		id := fmt.Sprintf("load-%03d", i)
		tenants[i] = tstate{id: id, want: netsim.ExpectedViolations(p)}
		req := apiv1.SpecRequest{Sources: []apiv1.Source{{Name: id + ".nmsl", Text: netsim.Source(p)}}}
		if _, err := doJSON[apiv1.SpecResponse](ctx, cfg.Client, http.MethodPut,
			cfg.BaseURL+"/v1/tenants/"+id+"/spec", req); err != nil {
			return nil, fmt.Errorf("loadgen: installing %s: %w", id, err)
		}
	}

	// Cold pass: every tenant proves its full reference set once,
	// populating the result cache and the delta substrate.
	for i := range tenants {
		rep, err := doJSON[apiv1.CheckResponse](ctx, cfg.Client, http.MethodPost,
			cfg.BaseURL+"/v1/tenants/"+tenants[i].id+"/check", apiv1.CheckRequest{})
		if err != nil {
			return nil, fmt.Errorf("loadgen: cold check %s: %w", tenants[i].id, err)
		}
		res.ColdChecks++
		res.CheckedTotal += int64(rep.Report.RefsChecked)
		if len(rep.Report.Violations) != tenants[i].want {
			res.ViolationsOK = false
		}
	}

	// Sustained warm phase: workers round-robin tenants with
	// delta-checks; each latency sample is one wire round trip.
	var (
		mu        sync.Mutex
		lat       []time.Duration
		next      atomic.Int64
		deltaN    atomic.Int64
		refsN     atomic.Int64
		limited   atomic.Int64
		busy      atomic.Int64
		errsN     atomic.Int64
		badCounts atomic.Int64
	)
	deadline := time.Now().Add(cfg.Duration)
	runCtx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()

	var wg sync.WaitGroup
	for w := 0; w < cfg.Conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) && runCtx.Err() == nil {
				t := &tenants[int(next.Add(1))%len(tenants)]
				start := time.Now()
				rep, err := doJSON[apiv1.CheckResponse](runCtx, cfg.Client, http.MethodPost,
					cfg.BaseURL+"/v1/tenants/"+t.id+"/delta-check", apiv1.CheckRequest{})
				if err != nil {
					switch {
					case errCode(err) == http.StatusTooManyRequests:
						limited.Add(1)
					case errCode(err) == http.StatusServiceUnavailable:
						busy.Add(1)
					case runCtx.Err() != nil:
						// deadline tripped mid-request: not an error
					default:
						errsN.Add(1)
					}
					continue
				}
				el := time.Since(start)
				deltaN.Add(1)
				refsN.Add(int64(rep.Report.RefsChecked))
				if len(rep.Report.Violations) != t.want {
					badCounts.Add(1)
				}
				mu.Lock()
				lat = append(lat, el)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	res.DeltaChecks = deltaN.Load()
	res.CheckedTotal += refsN.Load()
	res.RateLimited = limited.Load()
	res.Busy = busy.Load()
	res.Errors = errsN.Load()
	if badCounts.Load() > 0 {
		res.ViolationsOK = false
	}
	res.DurationSec = cfg.Duration.Seconds()
	if res.DurationSec > 0 {
		res.ChecksPerSec = float64(res.DeltaChecks) / res.DurationSec
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	res.WarmP50NS = int64(percentile(lat, 0.50))
	res.WarmP90NS = int64(percentile(lat, 0.90))
	res.WarmP99NS = int64(percentile(lat, 0.99))

	// Final cache stats from an arbitrary tenant round out the record.
	if info, err := doJSON[apiv1.TenantInfo](ctx, cfg.Client, http.MethodGet,
		cfg.BaseURL+"/v1/tenants/"+tenants[0].id, nil); err == nil && info.Cache != nil {
		res.CacheHitsEnd = info.Cache.Hits
		res.CacheMissEnd = info.Cache.Misses
	}
	return res, nil
}

// percentile reads the p-quantile from sorted samples (nearest-rank).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// httpError carries a non-2xx response's code and decoded envelope.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return fmt.Sprintf("http %d: %s", e.code, e.msg) }

// errCode extracts the status code of an httpError, 0 otherwise.
func errCode(err error) int {
	if he, ok := err.(*httpError); ok {
		return he.code
	}
	return 0
}

// doJSON performs one JSON round trip against the daemon.
func doJSON[T any](ctx context.Context, client *http.Client, method, url string, body any) (*T, error) {
	var rd *bytes.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		rd = bytes.NewReader(blob)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var envelope apiv1.Error
		_ = json.NewDecoder(resp.Body).Decode(&envelope)
		return nil, &httpError{code: resp.StatusCode, msg: envelope.Message}
	}
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

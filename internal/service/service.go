// Package service is the multi-tenant check/rollout daemon behind
// cmd/nmsld: a long-running process that keeps each tenant's compiled
// *nmsl.Specification and warm result cache resident, so the delta
// machinery's ~50× warm re-check speedup (PR 5) pays off under
// sustained traffic instead of being rebuilt per CLI invocation.
//
// The design has four load-bearing properties:
//
//   - Session isolation. Every tenant owns its compiler output, model
//     and result cache outright; no mutable model state is ever shared
//     between tenants, so tenants check concurrently without
//     interference (verified under -race by TestManyTenantsConcurrent).
//     Within one tenant, operations serialize on the tenant's mutex —
//     a tenant is a consistency domain, not a parallelism domain.
//
//   - Admission + rate limits. A global admission gate bounds the
//     number of concurrently executing checks (plus a bounded wait
//     queue); per-tenant token buckets bound each tenant's request
//     rate. Following the SNMP agent's rate-window discipline,
//     rejected requests do not consume budget — an over-eager tenant
//     is delayed, never starved.
//
//   - Crash-safe persistence. Tenant state (spec sources and the
//     result cache) is persisted under the state directory with the
//     fsync'd write-then-rename discipline of the configgen journal:
//     a kill at any point leaves either the old or the new file, never
//     a torn one. On restart the tenants recompile and their caches
//     reload, so the first post-restart check is already warm.
//
//   - A frozen wire surface. Everything the HTTP layer reads or
//     writes is an api/v1 type; the service returns wire-ready
//     responses so the daemon and the CLIs cannot drift apart.
package service

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"

	apiv1 "nmsl/api/v1"
	"nmsl/internal/obs"
)

// Typed errors the HTTP layer maps onto status codes (see
// statusFromServiceErr in http.go).
var (
	// ErrNoTenant: the tenant ID names no resident tenant.
	ErrNoTenant = errors.New("service: unknown tenant")
	// ErrBadTenantID: the tenant ID is not [A-Za-z0-9][A-Za-z0-9_.-]*
	// (64 chars max) — the constraint that makes IDs safe as state
	// subdirectory names.
	ErrBadTenantID = errors.New("service: invalid tenant id")
	// ErrNoSpec: the tenant exists but has no compiled specification.
	ErrNoSpec = errors.New("service: tenant has no specification")
	// ErrRateLimited: the tenant's token bucket is empty.
	ErrRateLimited = errors.New("service: tenant rate limit exceeded")
	// ErrBusy: the admission queue is full.
	ErrBusy = errors.New("service: admission queue full")
	// ErrTenantLimit: the resident-tenant cap is reached.
	ErrTenantLimit = errors.New("service: tenant limit reached")
	// ErrCompile wraps compilation failures (syntax or semantic).
	ErrCompile = errors.New("service: specification does not compile")
	// ErrBadContract wraps change-contract parse failures
	// (verify-change requests with malformed .ncs text).
	ErrBadContract = errors.New("service: change contract does not parse")
	// ErrInconsistent: the operation requires a consistent
	// specification (generate/rollout refuse on a failing check).
	ErrInconsistent = errors.New("service: specification is inconsistent")
)

// Metric names recorded by the service into its registry.
const (
	MetricRequests          = "nmsl_svc_requests_total"
	MetricRateLimited       = "nmsl_svc_rate_limited_total"
	MetricAdmissionRejected = "nmsl_svc_admission_rejected_total"
	MetricCheckDuration     = "nmsl_svc_check_duration_ns"
	MetricTenants           = "nmsl_svc_tenants"
	MetricCacheFlushes      = "nmsl_svc_cache_flush_total"
	MetricSpecUpdates       = "nmsl_svc_spec_updates_total"
)

// tenantIDPat is the shape of an acceptable tenant ID. IDs become
// state-directory names, so the alphabet excludes path separators and
// anything needing escaping.
var tenantIDPat = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$`)

// options is the resolved configuration.
type options struct {
	stateDir        string
	maxTenants      int
	ratePerSec      float64
	rateBurst       int
	admissionSlots  int
	admissionQueue  int
	checkWorkers    int
	cacheMaxEntries int
	flushInterval   time.Duration
	metrics         *obs.Registry
	now             func() time.Time
}

// Option configures New, following the checker's and the rollout's
// functional-option convention.
type Option func(*options)

// WithStateDir persists tenant state (spec sources + result caches)
// under dir, and reloads it on startup. Empty (the default) keeps
// everything in memory only.
func WithStateDir(dir string) Option { return func(o *options) { o.stateDir = dir } }

// WithMaxTenants caps the number of resident tenants; n <= 0 means
// unlimited.
func WithMaxTenants(n int) Option { return func(o *options) { o.maxTenants = n } }

// WithRateLimit arms each tenant's token bucket: sustained rps
// requests per second with bursts up to burst. rps <= 0 disables rate
// limiting; burst < 1 is raised to 1.
func WithRateLimit(rps float64, burst int) Option {
	return func(o *options) { o.ratePerSec, o.rateBurst = rps, burst }
}

// WithAdmission bounds concurrently executing checks to slots, with at
// most queue requests waiting; requests beyond that are rejected with
// ErrBusy instead of piling up. slots <= 0 selects GOMAXPROCS-shaped
// default (8); queue < 0 means no waiting at all.
func WithAdmission(slots, queue int) Option {
	return func(o *options) { o.admissionSlots, o.admissionQueue = slots, queue }
}

// WithCheckWorkers sets the per-check worker pool default (the value a
// request's workers=0 resolves to); n <= 0 selects 1, the right shape
// for a daemon that parallelizes across tenants rather than within
// one check.
func WithCheckWorkers(n int) Option { return func(o *options) { o.checkWorkers = n } }

// WithCacheMaxEntries caps each tenant's result cache (LRU-trimmed);
// n <= 0 means unbounded.
func WithCacheMaxEntries(n int) Option { return func(o *options) { o.cacheMaxEntries = n } }

// WithFlushInterval sets how often dirty tenant caches are persisted
// in the background (state dir only). d <= 0 disables the background
// flusher; Flush and Close still persist on demand.
func WithFlushInterval(d time.Duration) Option { return func(o *options) { o.flushInterval = d } }

// WithMetrics selects where service counters land: nil (the default)
// records into obs.Default, obs.Disabled turns them off — the same
// convention as the checker and the rollout.
func WithMetrics(reg *obs.Registry) Option { return func(o *options) { o.metrics = reg } }

// WithClock replaces the service clock (rate-limit windows); tests
// drive buckets deterministically through it.
func WithClock(now func() time.Time) Option { return func(o *options) { o.now = now } }

// Service is the resident multi-tenant checker.
type Service struct {
	opt options
	reg *obs.Registry

	mu      sync.RWMutex
	tenants map[string]*Tenant

	adm *admission

	flushWG   sync.WaitGroup
	flushStop chan struct{}
	closeOnce sync.Once
}

// New builds a Service and, when a state directory is configured,
// reloads every persisted tenant (recompiling specs and loading their
// result caches) before returning.
func New(opts ...Option) (*Service, error) {
	o := options{
		ratePerSec:     0,
		rateBurst:      1,
		admissionSlots: 8,
		admissionQueue: 64,
		checkWorkers:   1,
		flushInterval:  2 * time.Second,
		now:            time.Now,
	}
	for _, fn := range opts {
		fn(&o)
	}
	if o.admissionSlots <= 0 {
		o.admissionSlots = 8
	}
	if o.rateBurst < 1 {
		o.rateBurst = 1
	}
	if o.checkWorkers <= 0 {
		o.checkWorkers = 1
	}
	reg := o.metrics
	if reg == nil {
		reg = obs.Default
	}
	s := &Service{
		opt:       o,
		reg:       reg,
		tenants:   map[string]*Tenant{},
		adm:       newAdmission(o.admissionSlots, o.admissionQueue),
		flushStop: make(chan struct{}),
	}
	if o.stateDir != "" {
		if err := s.loadState(); err != nil {
			return nil, err
		}
		if o.flushInterval > 0 {
			s.flushWG.Add(1)
			go s.flushLoop()
		}
	}
	s.gaugeTenants()
	return s, nil
}

// Close stops the background flusher and persists every dirty cache.
func (s *Service) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.flushStop)
		s.flushWG.Wait()
		err = s.Flush()
	})
	return err
}

// Flush persists every dirty tenant cache now (no-op without a state
// directory).
func (s *Service) Flush() error {
	if s.opt.stateDir == "" {
		return nil
	}
	var firstErr error
	for _, t := range s.snapshotTenants() {
		if err := t.flush(s); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// flushLoop persists dirty caches every flush interval until Close.
func (s *Service) flushLoop() {
	defer s.flushWG.Done()
	tick := time.NewTicker(s.opt.flushInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.flushStop:
			return
		case <-tick.C:
			_ = s.Flush() // Close's final Flush reports errors; periodic ones only count
		}
	}
}

// snapshotTenants returns the current tenants in ID order.
func (s *Service) snapshotTenants() []*Tenant {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// TenantIDs lists the resident tenants in order.
func (s *Service) TenantIDs() []string {
	ts := s.snapshotTenants()
	ids := make([]string, len(ts))
	for i, t := range ts {
		ids[i] = t.id
	}
	return ids
}

// Tenants summarizes the resident tenants for the list endpoint.
func (s *Service) Tenants() apiv1.TenantsResponse {
	ts := s.snapshotTenants()
	out := apiv1.TenantsResponse{APIVersion: apiv1.Version, Tenants: make([]apiv1.TenantInfo, len(ts))}
	for i, t := range ts {
		out.Tenants[i] = t.info()
	}
	return out
}

// tenant returns the resident tenant, or ErrNoTenant.
func (s *Service) tenant(id string) (*Tenant, error) {
	s.mu.RLock()
	t := s.tenants[id]
	s.mu.RUnlock()
	if t == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoTenant, id)
	}
	return t, nil
}

// tenantOrCreate returns the resident tenant, creating it when new —
// subject to the ID shape and the tenant cap.
func (s *Service) tenantOrCreate(id string) (*Tenant, error) {
	if !tenantIDPat.MatchString(id) {
		return nil, fmt.Errorf("%w: %q", ErrBadTenantID, id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t := s.tenants[id]; t != nil {
		return t, nil
	}
	if s.opt.maxTenants > 0 && len(s.tenants) >= s.opt.maxTenants {
		return nil, fmt.Errorf("%w (%d resident)", ErrTenantLimit, len(s.tenants))
	}
	t := newTenant(id, &s.opt)
	s.tenants[id] = t
	s.gaugeTenantsLocked()
	return t, nil
}

// dropIfEmpty evicts a tenant that never received a specification
// (a creation rolled back after its first upload failed to compile).
func (s *Service) dropIfEmpty(t *Tenant) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t.mu.Lock()
	empty := t.spec == nil
	t.mu.Unlock()
	// Only drop while still empty and still the resident object — a
	// concurrent upload may have installed a spec in the meantime.
	if empty && s.tenants[t.id] == t {
		delete(s.tenants, t.id)
		s.gaugeTenantsLocked()
	}
}

// RemoveTenant evicts a tenant and deletes its persisted state.
func (s *Service) RemoveTenant(id string) error {
	s.mu.Lock()
	t := s.tenants[id]
	delete(s.tenants, id)
	s.gaugeTenantsLocked()
	s.mu.Unlock()
	if t == nil {
		return fmt.Errorf("%w: %q", ErrNoTenant, id)
	}
	if s.opt.stateDir != "" {
		return os.RemoveAll(s.tenantDir(id))
	}
	return nil
}

// tenantDir is where one tenant's state persists.
func (s *Service) tenantDir(id string) string {
	return filepath.Join(s.opt.stateDir, "tenants", id)
}

// gaugeTenants updates the resident-tenant gauge.
func (s *Service) gaugeTenants() {
	s.mu.RLock()
	n := len(s.tenants)
	s.mu.RUnlock()
	if s.reg.Enabled() {
		s.reg.Gauge(MetricTenants).Set(int64(n))
	}
}

func (s *Service) gaugeTenantsLocked() {
	if s.reg.Enabled() {
		s.reg.Gauge(MetricTenants).Set(int64(len(s.tenants)))
	}
}

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	apiv1 "nmsl/api/v1"
	"nmsl/internal/netsim"
)

func newTestServer(t *testing.T, opts ...Option) (*Service, *httptest.Server) {
	t.Helper()
	s := newTestService(t, opts...)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// do performs one request and decodes the response into out (skipped
// when out is nil), asserting the status code.
func do(t *testing.T, ts *httptest.Server, method, path string, body, out any, wantCode int) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(blob)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		var e apiv1.Error
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("%s %s = %d (%s), want %d", method, path, resp.StatusCode, e.Message, wantCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// TestHTTPEndToEnd walks the whole versioned surface: install a spec,
// check, delta-check, generate, list, delete.
func TestHTTPEndToEnd(t *testing.T) {
	_, ts := newTestServer(t)
	p := netsim.Params{Domains: 2, SystemsPerDomain: 2, Seed: 9}

	var up apiv1.SpecResponse
	do(t, ts, http.MethodPut, "/v1/tenants/acme/spec", specReqFor(p), &up, http.StatusOK)
	if up.APIVersion != apiv1.Version || up.Generation != 1 || up.Refs == 0 {
		t.Fatalf("bad spec response: %+v", up)
	}

	var chk apiv1.CheckResponse
	do(t, ts, http.MethodPost, "/v1/tenants/acme/check", nil, &chk, http.StatusOK)
	if !chk.Report.Consistent || chk.Report.RefsChecked == 0 {
		t.Fatalf("bad check response: %+v", chk.Report)
	}

	var dchk apiv1.CheckResponse
	do(t, ts, http.MethodPost, "/v1/tenants/acme/delta-check", nil, &dchk, http.StatusOK)
	if !dchk.Delta {
		t.Fatal("delta-check did not take the delta path")
	}

	var gen apiv1.GenerateResponse
	do(t, ts, http.MethodPost, "/v1/tenants/acme/generate", nil, &gen, http.StatusOK)
	if len(gen.Configs) == 0 {
		t.Fatal("no configs on the wire")
	}

	var list apiv1.TenantsResponse
	do(t, ts, http.MethodGet, "/v1/tenants", nil, &list, http.StatusOK)
	if len(list.Tenants) != 1 || list.Tenants[0].ID != "acme" {
		t.Fatalf("bad tenant list: %+v", list)
	}
	if list.Tenants[0].Consistent == nil || !*list.Tenants[0].Consistent {
		t.Fatalf("tenant not marked consistent: %+v", list.Tenants[0])
	}

	var info apiv1.TenantInfo
	do(t, ts, http.MethodGet, "/v1/tenants/acme", nil, &info, http.StatusOK)
	if info.ID != "acme" || info.Generation != 1 {
		t.Fatalf("bad tenant info: %+v", info)
	}

	do(t, ts, http.MethodDelete, "/v1/tenants/acme", nil, nil, http.StatusNoContent)
	do(t, ts, http.MethodGet, "/v1/tenants/acme", nil, nil, http.StatusNotFound)
}

// TestHTTPErrorMapping pins every typed error's status code and the
// uniform envelope shape.
func TestHTTPErrorMapping(t *testing.T) {
	_, ts := newTestServer(t, WithMaxTenants(1))
	p := netsim.Params{Domains: 1, SystemsPerDomain: 1, Seed: 1}

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		want   int
	}{
		{"unknown tenant", http.MethodPost, "/v1/tenants/ghost/check", nil, http.StatusNotFound},
		{"bad id", http.MethodPut, "/v1/tenants/bad%2Fid/spec", specReqFor(p), http.StatusBadRequest},
		{"bad body", http.MethodPut, "/v1/tenants/ok/spec", "not a spec", http.StatusBadRequest},
		{"compile error", http.MethodPut, "/v1/tenants/ok/spec",
			&apiv1.SpecRequest{Sources: []apiv1.Source{{Name: "x", Text: "domain {"}}}, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var e apiv1.Error
			do(t, ts, c.method, c.path, c.body, &e, c.want)
			if e.APIVersion != apiv1.Version || e.Code != c.want || e.Message == "" {
				t.Fatalf("bad error envelope: %+v", e)
			}
		})
	}

	// Tenant cap → 503 with the envelope.
	do(t, ts, http.MethodPut, "/v1/tenants/one/spec", specReqFor(p), nil, http.StatusOK)
	var e apiv1.Error
	do(t, ts, http.MethodPut, "/v1/tenants/two/spec", specReqFor(p), &e, http.StatusServiceUnavailable)
	if !strings.Contains(e.Message, "tenant limit") {
		t.Fatalf("wrong 503 cause: %q", e.Message)
	}

	// No spec yet (resident tenant without one is unreachable over HTTP,
	// so exercise inconsistent → 409 instead).
	bad := netsim.Params{Domains: 2, SystemsPerDomain: 2, InconsistencyRate: 1, Seed: 3}
	do(t, ts, http.MethodDelete, "/v1/tenants/one", nil, nil, http.StatusNoContent)
	do(t, ts, http.MethodPut, "/v1/tenants/one/spec", specReqFor(bad), nil, http.StatusOK)
	do(t, ts, http.MethodPost, "/v1/tenants/one/generate", nil, &e, http.StatusConflict)
}

// TestHTTPRateLimited maps ErrRateLimited to 429 over the wire.
func TestHTTPRateLimited(t *testing.T) {
	now := time.Unix(0, 0)
	_, ts := newTestServer(t,
		WithRateLimit(0.001, 1),
		WithClock(func() time.Time { return now }))
	p := netsim.Params{Domains: 1, SystemsPerDomain: 1, Seed: 1}
	do(t, ts, http.MethodPut, "/v1/tenants/acme/spec", specReqFor(p), nil, http.StatusOK)
	var e apiv1.Error
	do(t, ts, http.MethodPost, "/v1/tenants/acme/check", nil, &e, http.StatusTooManyRequests)
	if e.Code != http.StatusTooManyRequests {
		t.Fatalf("bad envelope: %+v", e)
	}
}

// TestHTTPObservabilityMounted asserts /metrics and /healthz live on
// the same mux as the API.
func TestHTTPObservabilityMounted(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/healthz", "/metrics", "/debug/vars"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
	}
}

// TestHTTPVerifyChange walks the change-contract pre-gate endpoint: a
// proposed edit outside the contract's scope is refused with typed
// violations, the same edit under a ring-wide contract passes, and
// neither verdict touches the resident generation (a verify is a dry
// run).
func TestHTTPVerifyChange(t *testing.T) {
	_, ts := newTestServer(t)
	p := netsim.Params{Domains: 3, SystemsPerDomain: 1, Seed: 5}
	do(t, ts, http.MethodPut, "/v1/tenants/acme/spec", specReqFor(p), nil, http.StatusOK)

	// The edit retunes the last domain's poller (the one querying
	// agentT0) — an instance well outside dom0.
	base := netsim.Source(p)
	anchor := "queries agentT0\n        requests mgmt.mib.system.sysDescr\n        frequency >= 5 minutes;"
	if strings.Count(base, anchor) != 1 {
		t.Fatalf("edit anchor not unique in netsim source")
	}
	edited := strings.Replace(base, anchor,
		strings.Replace(anchor, ">= 5 minutes", ">= 10 minutes", 1), 1)
	verifyReq := func(contract string) *apiv1.VerifyChangeRequest {
		return &apiv1.VerifyChangeRequest{
			Contract: contract,
			Sources:  []apiv1.Source{{Name: "net.nmsl", Text: edited}},
		}
	}
	scoped := "contract only-dom0 ::=\n    scope dom0;\nend contract only-dom0.\n"
	ringWide := "contract ring-wide ::=\n    scope public;\n    forbid widen-access;\nend contract ring-wide.\n"

	var vr apiv1.VerifyChangeResponse
	do(t, ts, http.MethodPost, "/v1/tenants/acme/verify-change", verifyReq(scoped), &vr, http.StatusOK)
	if vr.OK || len(vr.Violations) == 0 {
		t.Fatalf("out-of-scope edit passed: %+v", vr)
	}
	if v := vr.Violations[0]; v.Contract != "only-dom0" || v.Clause != "scope" || v.Entry == "" {
		t.Fatalf("bad violation: %+v", v)
	}
	if vr.Generation != 1 || vr.DirtyInstances == 0 {
		t.Fatalf("bad verdict envelope: %+v", vr)
	}

	var ok apiv1.VerifyChangeResponse
	do(t, ts, http.MethodPost, "/v1/tenants/acme/verify-change", verifyReq(ringWide), &ok, http.StatusOK)
	if !ok.OK || len(ok.Violations) != 0 {
		t.Fatalf("ring-wide contract refused a clean retune: %+v", ok)
	}

	// Error surface: malformed contract text → 400, a proposal that
	// does not compile → 400, an unknown tenant → 404. None of it may
	// advance the generation.
	var e apiv1.Error
	do(t, ts, http.MethodPost, "/v1/tenants/acme/verify-change", verifyReq("contract broken"), &e, http.StatusBadRequest)
	if !strings.Contains(e.Message, "contract") {
		t.Fatalf("wrong 400 cause: %q", e.Message)
	}
	do(t, ts, http.MethodPost, "/v1/tenants/acme/verify-change",
		&apiv1.VerifyChangeRequest{Contract: scoped, Sources: []apiv1.Source{{Name: "x", Text: "domain {"}}},
		nil, http.StatusBadRequest)
	do(t, ts, http.MethodPost, "/v1/tenants/ghost/verify-change", verifyReq(scoped), nil, http.StatusNotFound)

	var info apiv1.TenantInfo
	do(t, ts, http.MethodGet, "/v1/tenants/acme", nil, &info, http.StatusOK)
	if info.Generation != 1 {
		t.Fatalf("verify-change moved the generation to %d", info.Generation)
	}
}

// TestRunLoadSmoke drives the load generator against an in-process
// server — the same path make svc-smoke takes, shrunk for test time.
func TestRunLoadSmoke(t *testing.T) {
	_, ts := newTestServer(t)
	res, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:          ts.URL,
		Client:           ts.Client(),
		Tenants:          6,
		DomainsPerTenant: 2,
		SystemsPerDomain: 2,
		Duration:         300 * time.Millisecond,
		Conc:             3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ViolationsOK {
		t.Fatal("load run saw wrong violation counts")
	}
	if res.ColdChecks != 6 || res.DeltaChecks == 0 || res.Errors != 0 {
		t.Fatalf("bad load result: %+v", res)
	}
	if res.WarmP99NS <= 0 || res.WarmP50NS > res.WarmP99NS {
		t.Fatalf("bad percentiles: p50=%d p99=%d", res.WarmP50NS, res.WarmP99NS)
	}
}

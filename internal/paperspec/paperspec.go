// Package paperspec holds the verbatim example specifications from the
// paper's figures (4.2, 4.4, 4.6, 4.8), lightly normalized where the
// camera-ready copy has obvious typesetting artifacts. They are shared by
// tests across the repository so that every figure is locked down in one
// place.
package paperspec

// Figure42 is the IP address table type specification of Figure 4.2,
// derived from the TCP/IP MIB (RFC 1066). The access mode of IpAddrEntry
// is deliberately unspecified: it is inherited from the containing
// ipAddrTable (ReadOnly), as the paper explains.
const Figure42 = `
type ipAddrTable ::=
    SEQUENCE of IpAddrEntry;
    access ReadOnly;
end type ipAddrTable.

type IpAddrEntry ::=
    SEQUENCE {
        ipAdEntAddr       IpAddress,
        ipAdEntIfIndex    INTEGER,
        ipAdEntNetMask    IpAddress,
        ipAdEntBcastAddr  INTEGER
    };
end type IpAddrEntry.
`

// Figure44 holds the SNMP agent and application process specifications of
// Figure 4.4. snmpdReadOnly supports the entire IETF MIB subtree and
// exports it read-only to the "public" domain at no more than one query
// every 5 minutes; snmpaddr queries an agent for an IpAddrEntry selected
// by address.
const Figure44 = `
process snmpdReadOnly ::=
    supports mgmt.mib;  -- entire MIB subtree
    exports mgmt.mib to "public"
        access ReadOnly
        frequency >= 5 minutes;
end process snmpdReadOnly.

process snmpaddr(
    SysAddr: Process; Dest: IpAddress) ::=
    queries SysAddr
        requests
            mgmt.mib.ip.ipAddrTable.IpAddrEntry
        using
            mgmt.mib.ip.ipAddrTable.IpAddrEntry.ipAdEntAddr := Dest
        frequency infrequent;
end process snmpaddr.
`

// Figure46 is the network element specification of Figure 4.6:
// romano.cs.wisc.edu, a SPARC running SunOS 4.0.1 with one 10 Mbps
// ethernet interface, supporting most of the IETF MIB (no EGP group) and
// running the read-only SNMP agent of Figure 4.4.
const Figure46 = `
system "romano.cs.wisc.edu" ::=
    cpu sparc;
    interface ie0 net wisc-research
        type ethernet-csmacd
        speed 10000000 bps;
    opsys SunOS version 4.0.1;
    supports
        mgmt.mib.system, mgmt.mib.at,
        mgmt.mib.interfaces,
        mgmt.mib.ip, mgmt.mib.icmp,
        mgmt.mib.tcp, mgmt.mib.udp;
    process snmpdReadOnly;
end system "romano.cs.wisc.edu".
`

// Figure48 is the domain specification of Figure 4.8: the wisc-cs domain
// containing two network elements and an instance of the snmpaddr
// application with late-bound ("*") parameters, exporting the full IETF
// MIB to "public" read-only at >= 5 minute intervals.
const Figure48 = `
domain wisc-cs ::=
    system romano.cs.wisc.edu;
    system cs.wisc.edu;
    process snmpaddr(*, *);
    exports mgmt.mib to "public"
        access ReadOnly
        frequency >= 5 minutes;
end domain wisc-cs.
`

// PublicDomain declares the "public" administrative domain referenced by
// the exports in Figures 4.4 and 4.8. The paper leaves it implicit: in
// SNMP practice "public" is the community everyone belongs to, so a
// complete specification declares it as a domain containing the other
// domains. Exporting "to public" then covers references from wisc-cs
// members through the containment-distribution rule of section 4.2.
const PublicDomain = `
domain public ::=
    domain wisc-cs;
end domain public.
`

// CSWisc declares the second network element referenced by Figure 4.8.
// The paper leaves its specification implicit.
const CSWisc = `
system "cs.wisc.edu" ::=
    cpu sparc;
    interface ie0 net wisc-research
        type ethernet-csmacd
        speed 10000000 bps;
    opsys SunOS version 4.0.1;
    supports
        mgmt.mib.system, mgmt.mib.interfaces, mgmt.mib.ip;
    process snmpdReadOnly;
end system "cs.wisc.edu".
`

// Combined is the full, self-contained specification assembled from the
// paper's figures: types, processes, both network elements, the wisc-cs
// domain and the public domain. It is the canonical "consistent
// specification" used by integration tests and the quickstart example.
const Combined = Figure42 + Figure44 + Figure46 + CSWisc + Figure48 + PublicDomain

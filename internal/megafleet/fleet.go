// Package megafleet hosts very large simulated agent fleets and the
// chaos matrix that batters them. The paper's scale goals — 10,000
// administrative domains, on the order of 100,000 elements — are far
// past what socket-per-agent simulation reaches, so the fleet hosts
// every agent in-process on an snmp.MemNet (mem:// transport) and
// drives rollouts, chaos and reconciliation against it: the full
// management stack, zero sockets, deterministic seeds.
package megafleet

import (
	"fmt"
	"sort"

	"nmsl/internal/configgen"
	"nmsl/internal/consistency"
	"nmsl/internal/snmp"
)

// Fleet is a model's worth of agents hosted on an in-memory network.
//
// The fleet is built for §1 scale (100k agents in one process): every
// agent's store is a copy-on-write fork of one shared MIB database, the
// pre-rollout configuration is a single shared immutable Config, and the
// desired digests are computed once at construction instead of
// regenerating the model's configurations on every convergence probe.
type Fleet struct {
	Model   *consistency.Model
	Net     *snmp.MemNet
	Admin   string
	Targets []configgen.Target
	Agents  map[string]*snmp.Agent

	// desired maps instance ID → the digest of the exact configuration a
	// rollout installs there (configgen.DesiredConfig under this fleet's
	// admin community). Computed once in New; Unconverged compares live
	// digests against it instead of re-running configgen.Generate.
	desired map[string]string
}

// New builds one agent per generated configuration and hosts them all
// on a fresh MemNet registered under netName. Agents start with an
// empty configuration that honors the admin community (the pre-rollout
// state: reachable, unconfigured). seed derives every host's fault
// schedule.
func New(m *consistency.Model, netName, admin string, seed int64) (*Fleet, error) {
	configs := configgen.Generate(m)
	if len(configs) == 0 {
		return nil, fmt.Errorf("megafleet: model generates no agent configurations")
	}
	n, err := snmp.NewMemNet(netName, seed)
	if err != nil {
		return nil, err
	}
	f := &Fleet{
		Model:   m,
		Net:     n,
		Admin:   admin,
		Agents:  make(map[string]*snmp.Agent, len(configs)),
		desired: make(map[string]string, len(configs)),
	}
	ids := make([]string, 0, len(configs))
	for id := range configs {
		ids = append(ids, id)
	}
	sort.Strings(ids) // stable target order → stable wave membership

	// One populated MIB database for the whole fleet; each agent gets a
	// copy-on-write fork whose overlay holds only that agent's own
	// writes. The base is never mutated after this point (Store.Fork's
	// contract). Likewise one shared pre-rollout Config: agents treat
	// their configuration as immutable (ApplyConfig swaps the pointer),
	// so a single instance serves every agent.
	base := snmp.NewStore()
	snmp.PopulateFromMIB(base, m.Spec.MIB, "mgmt.mib")
	initial := &snmp.Config{
		Communities:    map[string]*snmp.CommunityConfig{},
		AdminCommunity: admin,
	}
	// Structurally identical generated configurations (every agent of the
	// same process shape) intern to one payload, so the digest pass below
	// hashes each distinct configuration once and caches by pointer.
	pool := configgen.InternPool{}
	digests := map[*snmp.Config]string{}
	for _, id := range ids {
		agent := snmp.NewAgent(base.Fork(), initial)
		if _, err := n.AddHost(id, agent); err != nil {
			n.Close()
			return nil, err
		}
		f.Agents[id] = agent
		tgt := configgen.Target{
			InstanceID:     id,
			Addr:           n.Addr(id),
			AdminCommunity: admin,
		}
		f.Targets = append(f.Targets, tgt)
		cfg := pool.Intern(configs[id])
		d, ok := digests[cfg]
		if !ok {
			d = configgen.DesiredConfig(cfg, tgt).Digest()
			digests[cfg] = d
		}
		f.desired[id] = d
	}
	return f, nil
}

// Close unregisters the fleet's network.
func (f *Fleet) Close() { f.Net.Close() }

// Converged reports ground truth: whether every agent's live
// configuration digest equals the model's desired one. It reads the
// agents directly, bypassing the (possibly chaos-degraded) network, so
// it is the arbiter the run report trusts.
func (f *Fleet) Converged() bool {
	return f.Unconverged() == 0
}

// Unconverged counts agents whose live digest differs from desired.
// The desired digests were computed once at construction — a
// convergence probe costs one live digest per agent, not a full
// configuration regeneration.
func (f *Fleet) Unconverged() int {
	n := 0
	for _, tgt := range f.Targets {
		if f.Agents[tgt.InstanceID].ConfigSnapshot().Digest() != f.desired[tgt.InstanceID] {
			n++
		}
	}
	return n
}

// DuplicateLoads counts agents that applied a configuration more than
// once — the exactly-once property's violation counter. Restart chaos
// legitimately forces re-applies (a restarted agent's retransmit cache
// is gone), so runs report this number instead of asserting zero;
// controlled resume tests do assert zero.
func (f *Fleet) DuplicateLoads() int {
	n := 0
	for _, a := range f.Agents {
		if a.Stats().ConfigLoads > 1 {
			n++
		}
	}
	return n
}

// Package megafleet hosts very large simulated agent fleets and the
// chaos matrix that batters them. The paper's scale goals — 10,000
// administrative domains, on the order of 100,000 elements — are far
// past what socket-per-agent simulation reaches, so the fleet hosts
// every agent in-process on an snmp.MemNet (mem:// transport) and
// drives rollouts, chaos and reconciliation against it: the full
// management stack, zero sockets, deterministic seeds.
package megafleet

import (
	"fmt"
	"sort"

	"nmsl/internal/configgen"
	"nmsl/internal/consistency"
	"nmsl/internal/snmp"
)

// Fleet is a model's worth of agents hosted on an in-memory network.
type Fleet struct {
	Model   *consistency.Model
	Net     *snmp.MemNet
	Admin   string
	Targets []configgen.Target
	Agents  map[string]*snmp.Agent
}

// New builds one agent per generated configuration and hosts them all
// on a fresh MemNet registered under netName. Agents start with an
// empty configuration that honors the admin community (the pre-rollout
// state: reachable, unconfigured). seed derives every host's fault
// schedule.
func New(m *consistency.Model, netName, admin string, seed int64) (*Fleet, error) {
	configs := configgen.Generate(m)
	if len(configs) == 0 {
		return nil, fmt.Errorf("megafleet: model generates no agent configurations")
	}
	n, err := snmp.NewMemNet(netName, seed)
	if err != nil {
		return nil, err
	}
	f := &Fleet{
		Model:  m,
		Net:    n,
		Admin:  admin,
		Agents: make(map[string]*snmp.Agent, len(configs)),
	}
	ids := make([]string, 0, len(configs))
	for id := range configs {
		ids = append(ids, id)
	}
	sort.Strings(ids) // stable target order → stable wave membership
	for _, id := range ids {
		store := snmp.NewStore()
		snmp.PopulateFromMIB(store, m.Spec.MIB, "mgmt.mib")
		agent := snmp.NewAgent(store, &snmp.Config{
			Communities:    map[string]*snmp.CommunityConfig{},
			AdminCommunity: admin,
		})
		if _, err := n.AddHost(id, agent); err != nil {
			n.Close()
			return nil, err
		}
		f.Agents[id] = agent
		f.Targets = append(f.Targets, configgen.Target{
			InstanceID:     id,
			Addr:           n.Addr(id),
			AdminCommunity: admin,
		})
	}
	return f, nil
}

// Close unregisters the fleet's network.
func (f *Fleet) Close() { f.Net.Close() }

// Converged reports ground truth: whether every agent's live
// configuration digest equals the model's desired one. It reads the
// agents directly, bypassing the (possibly chaos-degraded) network, so
// it is the arbiter the run report trusts.
func (f *Fleet) Converged() bool {
	return f.Unconverged() == 0
}

// Unconverged counts agents whose live digest differs from desired.
func (f *Fleet) Unconverged() int {
	configs := configgen.Generate(f.Model)
	n := 0
	for _, tgt := range f.Targets {
		want := configgen.DesiredConfig(configs[tgt.InstanceID], tgt).Digest()
		if f.Agents[tgt.InstanceID].ConfigSnapshot().Digest() != want {
			n++
		}
	}
	return n
}

// DuplicateLoads counts agents that applied a configuration more than
// once — the exactly-once property's violation counter. Restart chaos
// legitimately forces re-applies (a restarted agent's retransmit cache
// is gone), so runs report this number instead of asserting zero;
// controlled resume tests do assert zero.
func (f *Fleet) DuplicateLoads() int {
	n := 0
	for _, a := range f.Agents {
		if a.Stats().ConfigLoads > 1 {
			n++
		}
	}
	return n
}

package megafleet

import (
	"runtime"
	"testing"

	"nmsl/internal/configgen"
	"nmsl/internal/consistency"
	"nmsl/internal/netsim"
	"nmsl/internal/snmp"
)

// heapInUse forces a GC and returns the live heap, so two measurements
// bracket exactly the allocations kept alive between them.
func heapInUse() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// buildDuplicated replicates the pre-COW fleet construction — one fully
// populated store and one private Config per agent — as the baseline
// the shared fleet's footprint is budgeted against.
func buildDuplicated(m *consistency.Model, ids []string, admin string) map[string]*snmp.Agent {
	agents := make(map[string]*snmp.Agent, len(ids))
	for _, id := range ids {
		store := snmp.NewStore()
		snmp.PopulateFromMIB(store, m.Spec.MIB, "mgmt.mib")
		agents[id] = snmp.NewAgent(store, &snmp.Config{
			Communities:    map[string]*snmp.CommunityConfig{},
			AdminCommunity: admin,
		})
	}
	return agents
}

// TestFleetFootprintBudget is the §1-scale acceptance gate on the fleet
// side: with one shared copy-on-write MIB database and one shared
// initial Config, a fleet member must cost at least 4× less memory than
// the duplicated-per-agent construction it replaced. The test measures
// live heap per agent for both builds over the same model.
func TestFleetFootprintBudget(t *testing.T) {
	params, err := netsim.ScenarioParams(netsim.ScenarioCampus, 2000, 17)
	if err != nil {
		t.Fatal(err)
	}
	model, err := netsim.Model(params)
	if err != nil {
		t.Fatal(err)
	}
	configs := configgen.Generate(model)
	ids := make([]string, 0, len(configs))
	for id := range configs {
		ids = append(ids, id)
	}
	n := len(ids)
	if n < 1000 {
		t.Fatalf("fixture too small for a stable heap measurement: %d agents", n)
	}

	before := heapInUse()
	dup := buildDuplicated(model, ids, "chaos-admin")
	perAgentDup := float64(heapInUse()-before) / float64(n)
	runtime.KeepAlive(dup)
	dup = nil

	before = heapInUse()
	fleet, err := New(model, "t-footprint", "chaos-admin", 17)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	perAgentShared := float64(heapInUse()-before) / float64(len(fleet.Targets))

	t.Logf("per-agent footprint: duplicated %.0f B, shared %.0f B (%.1fx)",
		perAgentDup, perAgentShared, perAgentDup/perAgentShared)
	if perAgentShared*4 > perAgentDup {
		t.Errorf("shared fleet per-agent footprint %.0f B is not >=4x smaller than the duplicated baseline %.0f B",
			perAgentShared, perAgentDup)
	}
	// The ratio must come from sharing, not from dropping function: spot
	// check that a fork-backed agent still serves its MIB.
	a := fleet.Agents[fleet.Targets[0].InstanceID]
	if a.Store().Len() == 0 {
		t.Fatal("fork-backed agent store is empty")
	}
}

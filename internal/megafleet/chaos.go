package megafleet

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"nmsl/internal/configgen"
	"nmsl/internal/snmp"
)

// Matrix is the chaos configuration applied to a fleet: every axis of
// misbehavior the rollout and reconciler must survive, each scaled by a
// fraction of the fleet it afflicts. The zero Matrix injects nothing.
type Matrix struct {
	// Loss is a baseline independent drop probability applied to every
	// host, both directions.
	Loss float64

	// PartitionFrac of the fleet is fully partitioned per Repartition
	// roll: nothing in, nothing out. AsymFrac is the crueler variant —
	// requests deliver but every response is lost, so installs land
	// while their acknowledgments vanish (the exactly-once gauntlet).
	PartitionFrac float64
	AsymFrac      float64

	// FlapFrac of hosts flap on a FlapPeriod cycle, down for FlapDown of
	// it, with per-host staggered phases (a storm, not a metronome).
	FlapFrac   float64
	FlapPeriod time.Duration
	FlapDown   time.Duration

	// BurstFrac of hosts carry a Gilbert–Elliott burst-loss channel.
	BurstFrac float64
	Burst     snmp.BurstLoss

	// RestartEveryResults restarts RestartFrac of the fleet each time
	// that many install results have landed — agent crashes in the
	// middle of a wave, retransmit caches lost.
	RestartEveryResults int
	RestartFrac         float64

	// SkewFrac of agents run their clocks offset by up to ±SkewMax,
	// exercising every time-window the agent keeps (rate limits,
	// retransmit-cache expiry).
	SkewFrac float64
	SkewMax  time.Duration
}

// DefaultMatrix is the standard storm: mild baseline loss, moving
// partitions (symmetric and asymmetric), a flap storm across 5% of the
// fleet, bursty links, mid-wave restarts and skewed clocks — every
// failure class at once, none so severe the fleet cannot converge.
func DefaultMatrix() Matrix {
	return Matrix{
		Loss:                0.01,
		PartitionFrac:       0.01,
		AsymFrac:            0.01,
		FlapFrac:            0.05,
		FlapPeriod:          400 * time.Millisecond,
		FlapDown:            120 * time.Millisecond,
		BurstFrac:           0.05,
		Burst:               snmp.BurstLoss{PEnterBad: 0.05, PExitBad: 0.3, DropGood: 0, DropBad: 0.9},
		RestartEveryResults: 500,
		RestartFrac:         0.002,
		SkewFrac:            0.1,
		SkewMax:             2 * time.Hour,
	}
}

// EngineStats counts what the engine has done to the fleet.
type EngineStats struct {
	Repartitions   int
	Restarts       int
	Flapping       int
	Bursty         int
	Skewed         int
	PartitionedNow int
	AsymNow        int
}

// Engine applies a Matrix to a Fleet. Static afflictions (flap, burst,
// skew, baseline loss) are assigned once; partitions are re-rolled on
// demand — typically at every wave boundary and convergence sweep — so
// no host is unreachable forever, merely unreachable now. All methods
// are safe to call while a rollout is running against the fleet: fault
// swaps go through FaultInjector.SetFaults and restarts through
// MemNet.Restart, both designed for mid-flight use.
type Engine struct {
	fleet *Fleet
	mx    Matrix

	mu     sync.Mutex
	rng    *rand.Rand
	hosts  []string
	static map[string]snmp.Faults // per-host baseline (flap/burst/loss)
	re     int                    // results seen since the last restart volley
	stats  EngineStats
}

// NewEngine builds an engine over the fleet. The seed drives every roll
// the engine makes (who flaps, who partitions, who restarts), so a
// chaos run is reproducible from (scenario, agents, seed).
func NewEngine(f *Fleet, mx Matrix, seed int64) *Engine {
	hosts := f.Net.Hosts()
	sort.Strings(hosts)
	return &Engine{
		fleet:  f,
		mx:     mx,
		rng:    rand.New(rand.NewSource(seed)),
		hosts:  hosts,
		static: make(map[string]snmp.Faults, len(hosts)),
	}
}

// ApplyStatic assigns the per-host standing afflictions: baseline loss
// everywhere, flap schedules with staggered phases on FlapFrac of the
// fleet, burst channels on BurstFrac, clock skew on SkewFrac. Call once
// before traffic starts; Repartition composes partitions on top.
func (e *Engine) ApplyStatic() {
	e.mu.Lock()
	defer e.mu.Unlock()
	flapping := e.pick(e.mx.FlapFrac)
	bursty := e.pick(e.mx.BurstFrac)
	skewed := e.pick(e.mx.SkewFrac)
	for _, host := range e.hosts {
		f := snmp.Faults{Drop: e.mx.Loss}
		if flapping[host] && e.mx.FlapPeriod > 0 {
			f.Flap = &snmp.FlapSchedule{
				Period: e.mx.FlapPeriod,
				Down:   e.mx.FlapDown,
				Phase:  time.Duration(e.rng.Int63n(int64(e.mx.FlapPeriod))),
			}
			e.stats.Flapping++
		}
		if bursty[host] {
			b := e.mx.Burst
			f.Burst = &b
			e.stats.Bursty++
		}
		e.static[host] = f
		e.fleet.Net.Injector(host).SetFaults(e.inFaults(f, false, false), e.outFaults(f, false, false))
	}
	for host := range skewed {
		offset := time.Duration(e.rng.Int63n(int64(2*e.mx.SkewMax))) - e.mx.SkewMax
		agent := e.fleet.Agents[host]
		agent.SetTimeSource(func() time.Time { return time.Now().Add(offset) })
		e.stats.Skewed++
	}
}

// Repartition rolls a fresh partition set: PartitionFrac of hosts fully
// cut off, AsymFrac answering nothing (requests deliver, responses
// drop). Hosts partitioned last roll and not this one heal back to
// their static faults — partitions move rather than accumulate.
func (e *Engine) Repartition() {
	e.mu.Lock()
	defer e.mu.Unlock()
	full := e.pick(e.mx.PartitionFrac)
	asym := e.pick(e.mx.AsymFrac)
	for _, host := range e.hosts {
		f := e.static[host]
		e.fleet.Net.Injector(host).SetFaults(
			e.inFaults(f, full[host], false),
			e.outFaults(f, full[host], asym[host]),
		)
	}
	e.stats.Repartitions++
	e.stats.PartitionedNow = len(full)
	e.stats.AsymNow = len(asym)
}

// inFaults composes a host's request-direction faults: a full partition
// drops everything inbound.
func (e *Engine) inFaults(static snmp.Faults, full, _ bool) snmp.Faults {
	if full {
		static.Drop = 1
	}
	return static
}

// outFaults composes a host's response-direction faults: a full or
// asymmetric partition drops everything outbound. Flap and burst apply
// only inbound so a host's two directions do not double-roll the same
// schedule; loss applies both ways.
func (e *Engine) outFaults(static snmp.Faults, full, asym bool) snmp.Faults {
	out := snmp.Faults{Drop: static.Drop}
	if full || asym {
		out.Drop = 1
	}
	return out
}

// RestartSome crash-restarts RestartFrac of the fleet right now:
// volatile state (retransmit caches, rate-limit windows) gone,
// configuration kept. Returns how many restarted.
func (e *Engine) RestartSome() int {
	e.mu.Lock()
	victims := e.pick(e.mx.RestartFrac)
	e.stats.Restarts += len(victims)
	e.mu.Unlock()
	for host := range victims {
		e.fleet.Net.Restart(host)
	}
	return len(victims)
}

// OnResult is wired into the rollout's result stream: every
// RestartEveryResults results, a restart volley fires — agents crash
// mid-wave, not conveniently between waves.
func (e *Engine) OnResult(configgen.TargetResult) {
	e.mu.Lock()
	e.re++
	fire := e.mx.RestartEveryResults > 0 && e.re >= e.mx.RestartEveryResults
	if fire {
		e.re = 0
	}
	e.mu.Unlock()
	if fire {
		e.RestartSome()
	}
}

// OnWave is wired into the rollout's wave stream: every wave boundary
// re-rolls the partitions, so each wave faces a different cut of the
// network.
func (e *Engine) OnWave(configgen.WaveResult) {
	if e.mx.PartitionFrac > 0 || e.mx.AsymFrac > 0 {
		e.Repartition()
	}
}

// Heal lifts every affliction: all faults cleared, all hosts up. The
// fleet keeps its configurations and stats.
func (e *Engine) Heal() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, host := range e.hosts {
		e.fleet.Net.Injector(host).SetFaults(snmp.Faults{}, snmp.Faults{})
		e.fleet.Net.SetDown(host, false)
	}
	e.stats.PartitionedNow = 0
	e.stats.AsymNow = 0
}

// Stats snapshots the engine's counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// pick selects ⌈frac·fleet⌉ distinct hosts (at least one when frac > 0)
// from the engine's rng. Callers hold e.mu.
func (e *Engine) pick(frac float64) map[string]bool {
	out := map[string]bool{}
	if frac <= 0 || len(e.hosts) == 0 {
		return out
	}
	n := int(frac * float64(len(e.hosts)))
	if n < 1 {
		n = 1
	}
	if n > len(e.hosts) {
		n = len(e.hosts)
	}
	for _, i := range e.rng.Perm(len(e.hosts))[:n] {
		out[e.hosts[i]] = true
	}
	return out
}

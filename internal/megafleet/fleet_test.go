package megafleet

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"nmsl/internal/configgen"
	"nmsl/internal/netsim"
	"nmsl/internal/obs"
)

// chaosOpts is the rollout option set the in-package tests share:
// aggressive timeouts sized for the in-memory transport.
func chaosOpts(journal string, onResult func(configgen.TargetResult)) []configgen.RolloutOption {
	opts := []configgen.RolloutOption{
		configgen.WithWorkers(16),
		configgen.WithRetries(3),
		configgen.WithBackoff(2*time.Millisecond, 20*time.Millisecond),
		configgen.WithAttemptTimeout(100 * time.Millisecond),
		configgen.WithMetrics(obs.Disabled),
	}
	if onResult != nil {
		opts = append(opts, configgen.WithOnResult(onResult))
	}
	if journal != "" {
		opts = append(opts, configgen.WithJournal(journal), configgen.WithJournalNoSync())
	}
	return opts
}

// A clean (no-chaos) run over a small campus must converge in the
// rollout itself: zero sweeps needed, every agent loaded exactly once.
func TestRunCleanConverges(t *testing.T) {
	rep, err := Run(context.Background(), RunConfig{
		Scenario: netsim.ScenarioCampus,
		Agents:   40,
		Seed:     1,
		NetName:  "t-clean",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("clean run did not converge: %+v", rep)
	}
	if rep.Sweeps != 0 {
		t.Errorf("clean run needed %d reconcile sweeps", rep.Sweeps)
	}
	if rep.RolloutInstalled != rep.Agents {
		t.Errorf("installed %d of %d", rep.RolloutInstalled, rep.Agents)
	}
	if rep.DuplicateLoads != 0 {
		t.Errorf("%d agents loaded config more than once on a clean network", rep.DuplicateLoads)
	}
	if rep.Agents < 40 {
		t.Errorf("scenario under-provisioned: %d agents", rep.Agents)
	}
}

// The same seed must yield the same fleet shape and wave structure.
func TestRunDeterministicFleetFromSeed(t *testing.T) {
	run := func(netName string) *RunReport {
		rep, err := Run(context.Background(), RunConfig{
			Scenario: netsim.ScenarioIoT,
			Agents:   30,
			Seed:     99,
			Stages:   []float64{0.5},
			NetName:  netName,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run("t-det-a"), run("t-det-b")
	if a.Agents != b.Agents || a.Waves != b.Waves {
		t.Fatalf("same seed, different shape: %+v vs %+v", a, b)
	}
	for i := range a.WaveDetail {
		if a.WaveDetail[i].Targets != b.WaveDetail[i].Targets {
			t.Errorf("wave %d sized %d vs %d", i, a.WaveDetail[i].Targets, b.WaveDetail[i].Targets)
		}
	}
}

// The flagship property: a staged rollout over an actively hostile
// network — moving partitions, asymmetric ack loss, flap storm, burst
// loss, mid-wave restarts, skewed clocks — still converges to ground
// truth, and the report says how hard it had to work.
func TestRunChaosConverges(t *testing.T) {
	mx := DefaultMatrix()
	// Densify chaos for a small fleet so every axis provably fires.
	mx.PartitionFrac = 0.05
	mx.AsymFrac = 0.05
	mx.FlapFrac = 0.1
	mx.BurstFrac = 0.1
	mx.RestartEveryResults = 40
	mx.RestartFrac = 0.02
	rep, err := Run(context.Background(), RunConfig{
		Scenario: netsim.ScenarioCampus,
		Agents:   120,
		Seed:     7,
		Chaos:    true,
		Matrix:   mx,
		Stages:   []float64{0.1, 0.5},
		NetName:  "t-chaos",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("chaos run did not converge: %d unconverged after %d sweeps\n%+v", rep.Unconverged, rep.Sweeps, rep)
	}
	if rep.Waves != 3 {
		t.Errorf("expected 3 waves, got %d", rep.Waves)
	}
	if rep.FaultsInjected == 0 {
		t.Error("chaos run injected no faults — matrix not wired")
	}
	if rep.Repartitions == 0 {
		t.Error("partitions never re-rolled")
	}
	if rep.RolloutAttempts <= rep.Agents {
		t.Errorf("chaos cost no retries? %d attempts for %d agents", rep.RolloutAttempts, rep.Agents)
	}
}

// Exactly-once across a crash: kill a journaled chaos rollout mid-run,
// resume it, and require zero duplicate ConfigLoads — the journal plus
// the prepared-request retransmit cache must make the resume absorb
// every already-installed target. Restart chaos is off (a restarted
// agent legitimately re-applies) and partitions stay asymmetric-only,
// so installs land while acknowledgments vanish — the exact window a
// naive resume would double-install in.
func TestRunJournaledResumeZeroDuplicates(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "rollout.journal")

	params, err := netsim.ScenarioParams(netsim.ScenarioCampus, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	model, err := netsim.Model(params)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := New(model, "t-resume", "chaos-admin", 5)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	mx := DefaultMatrix()
	mx.RestartEveryResults = 0 // restarts void exactly-once by design
	mx.PartitionFrac = 0       // no black holes: every install eventually lands
	mx.AsymFrac = 0.05         // but ack loss stays
	engine := NewEngine(fleet, mx, 5)
	engine.ApplyStatic()
	engine.Repartition()

	// Phase 1: journaled rollout, canceled partway through.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	_, err = configgen.DistributeContext(ctx, model, fleet.Targets,
		chaosOpts(journal, func(configgen.TargetResult) {
			if seen++; seen == 20 {
				cancel()
			}
		})...)
	if err != nil && ctx.Err() == nil {
		t.Fatal(err)
	}

	// Phase 2: resume against the same fleet, chaos still active.
	engine.Repartition()
	rep, err := configgen.ResumeRollout(context.Background(), model, journal, chaosOpts("", nil)...)
	if err != nil {
		t.Fatal(err)
	}
	resumed := 0
	for _, r := range rep.Results {
		if r.Resumed {
			resumed++
		}
	}
	if resumed == 0 {
		t.Error("resume re-installed everything — journal not consulted")
	}
	// Resumed targets carry Installed status (satisfied without a send).
	if rep.Installed+rep.Failed != len(fleet.Targets) {
		t.Errorf("resume accounting off: %d installed (%d resumed) + %d failed != %d targets",
			rep.Installed, resumed, rep.Failed, len(fleet.Targets))
	}
	if d := fleet.DuplicateLoads(); d != 0 {
		t.Fatalf("%d agents loaded config more than once across crash+resume", d)
	}
}

// The engine's partitions move: a host cut off by one roll must be
// reachable again after enough re-rolls (no permanent black holes).
func TestEnginePartitionsMove(t *testing.T) {
	params, err := netsim.ScenarioParams(netsim.ScenarioIoT, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	model, err := netsim.Model(params)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := New(model, "t-moving", "chaos-admin", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	engine := NewEngine(fleet, Matrix{PartitionFrac: 0.25}, 3)
	engine.ApplyStatic()

	everCut := map[string]bool{}
	cutNow := func() map[string]bool {
		out := map[string]bool{}
		for _, h := range fleet.Net.Hosts() {
			in, _ := fleet.Net.Injector(h).Snapshot()
			if in.Drop >= 1 {
				out[h] = true
			}
		}
		return out
	}
	for i := 0; i < 20; i++ {
		engine.Repartition()
		now := cutNow()
		if len(now) != 5 {
			t.Fatalf("roll %d partitioned %d hosts, want 5", i, len(now))
		}
		for h := range now {
			everCut[h] = true
		}
	}
	if len(everCut) < 15 {
		t.Errorf("after 20 rolls only %d/20 hosts were ever partitioned — partitions not moving", len(everCut))
	}
	engine.Heal()
	if len(cutNow()) != 0 {
		t.Error("Heal left partitions standing")
	}
}

// The mid-wave restart hook clears agent volatile state while
// preserving installed configuration.
func TestEngineRestartKeepsConfig(t *testing.T) {
	params, err := netsim.ScenarioParams(netsim.ScenarioIoT, 10, 11)
	if err != nil {
		t.Fatal(err)
	}
	model, err := netsim.Model(params)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := New(model, "t-restart", "chaos-admin", 11)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	rep, err := configgen.DistributeContext(context.Background(), model, fleet.Targets, chaosOpts("", nil)...)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Installed != len(fleet.Targets) {
		t.Fatalf("seed rollout incomplete: %s", rep.Summary())
	}
	engine := NewEngine(fleet, Matrix{RestartFrac: 1}, 11)
	if n := engine.RestartSome(); n != len(fleet.Targets) {
		t.Fatalf("restarted %d of %d", n, len(fleet.Targets))
	}
	if !fleet.Converged() {
		t.Error("restart lost installed configuration")
	}
}

// A RunReport round-trips through JSON with stable field names — it is
// the machine-readable contract nmslsim -report emits.
func TestRunReportJSONShape(t *testing.T) {
	rep, err := Run(context.Background(), RunConfig{
		Scenario: netsim.ScenarioDatacenter,
		Agents:   24,
		Seed:     2,
		NetName:  "t-json",
	})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"scenario", "agents", "seed", "chaos", "waves", "time_to_converge_ms", "converged", "duplicate_loads"} {
		if _, ok := m[k]; !ok {
			t.Errorf("report JSON missing %q", k)
		}
	}
}

// TestMegaSmoke is the nightly 1k-agent chaos smoke (10k locally via
// NMSL_MEGA_AGENTS). Gated behind NMSL_MEGA so ordinary test runs stay
// fast; CI's scheduled job exports it and runs this under -race.
func TestMegaSmoke(t *testing.T) {
	if os.Getenv("NMSL_MEGA") == "" {
		t.Skip("set NMSL_MEGA=1 to run the mega-fleet chaos smoke")
	}
	agents := 1000
	if s := os.Getenv("NMSL_MEGA_AGENTS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad NMSL_MEGA_AGENTS %q: %v", s, err)
		}
		agents = v
	}
	start := time.Now()
	rep, err := Run(context.Background(), RunConfig{
		Scenario: netsim.ScenarioCampus,
		Agents:   agents,
		Seed:     2026,
		Chaos:    true,
		Matrix:   DefaultMatrix(),
		Stages:   []float64{0.01, 0.1, 0.5},
		NetName:  "t-mega",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("mega smoke did not converge: %d unconverged after %d sweeps", rep.Unconverged, rep.Sweeps)
	}
	blob, _ := json.MarshalIndent(rep, "", "  ")
	t.Logf("mega smoke (%d agents in %v):\n%s", rep.Agents, time.Since(start).Round(time.Millisecond), blob)
}

package megafleet

import (
	"context"
	"fmt"
	"time"

	"nmsl/internal/configgen"
	"nmsl/internal/netsim"
	"nmsl/internal/obs"
	"nmsl/internal/reconcile"
)

// RunConfig parameterizes one mega-fleet run. Zero values select
// defaults sized for in-memory fleets (many workers, short timeouts).
type RunConfig struct {
	Scenario netsim.Scenario
	Agents   int
	Seed     int64

	// Chaos arms the Matrix; a false Chaos runs the same fleet on a
	// clean network (the baseline the chaos numbers are compared to).
	Chaos  bool
	Matrix Matrix

	// Rollout shape.
	Stages         []float64
	Workers        int
	Retries        int
	BackoffBase    time.Duration
	BackoffMax     time.Duration
	AttemptTimeout time.Duration
	Journal        string // optional write-ahead journal path (nosync)

	// Convergence loop: reconciler sweeps (repartitioning between each,
	// when chaos is on) until ground truth converges or MaxSweeps is
	// exhausted. Zero means 50.
	MaxSweeps int

	// SweepWorkers shards each reconciler sweep across this many
	// parallel workers (reconcile.WithSweepWorkers). Zero means 8 — at
	// mega-fleet scale a serial sweep serializes every partitioned
	// host's attempt timeout and becomes the convergence bottleneck.
	SweepWorkers int

	// NetName must be unique among live MemNets; empty derives one from
	// scenario and seed.
	NetName string

	// Progress callbacks (optional; called from the run's goroutines).
	OnWave  func(configgen.WaveResult)
	OnSweep func(*reconcile.Sweep)
}

// WaveSummary is one wave's numbers in the machine-readable report.
type WaveSummary struct {
	Wave       int   `json:"wave"`
	Targets    int   `json:"targets"`
	Installed  int   `json:"installed"`
	Failed     int   `json:"failed"`
	RolledBack int   `json:"rolled_back,omitempty"`
	Resumed    int   `json:"resumed,omitempty"`
	Attempts   int   `json:"attempts"`
	DurationMS int64 `json:"duration_ms"`
}

// RunReport is the machine-readable outcome of a mega-fleet run: the
// numbers EXPERIMENTS.md records and CI asserts on.
type RunReport struct {
	Scenario string `json:"scenario"`
	Agents   int    `json:"agents"`
	Seed     int64  `json:"seed"`
	Chaos    bool   `json:"chaos"`

	Waves            int           `json:"waves"`
	WavesPerSec      float64       `json:"waves_per_sec"`
	TargetsPerSec    float64       `json:"targets_per_sec"`
	RolloutInstalled int           `json:"rollout_installed"`
	RolloutFailed    int           `json:"rollout_failed"`
	RolloutAttempts  int           `json:"rollout_attempts"`
	RolloutMS        int64         `json:"rollout_ms"`
	WaveDetail       []WaveSummary `json:"wave_detail,omitempty"`

	Sweeps         int   `json:"sweeps"`
	TimeToConverge int64 `json:"time_to_converge_ms"`
	Converged      bool  `json:"converged"`
	Unconverged    int   `json:"unconverged"`

	DuplicateLoads int   `json:"duplicate_loads"`
	FaultsInjected int64 `json:"faults_injected"`
	Restarts       int   `json:"restarts"`
	Repartitions   int   `json:"repartitions"`
}

// Run executes one full mega-fleet scenario: build the topology from
// (scenario, agents, seed), host the fleet in memory, arm the chaos
// matrix, roll the configuration out in waves, then reconcile until
// ground truth converges — chaos stays active throughout; only the
// partitions move. It returns the report even on convergence failure
// (Converged=false) so callers can see how far the fleet got; the error
// is reserved for setup problems and context cancellation.
func Run(ctx context.Context, rc RunConfig) (*RunReport, error) {
	if rc.Agents <= 0 {
		rc.Agents = 1000
	}
	if rc.Scenario == "" {
		rc.Scenario = netsim.ScenarioCampus
	}
	if rc.Workers <= 0 {
		rc.Workers = 64
	}
	if rc.Retries <= 0 {
		rc.Retries = 3
	}
	if rc.BackoffBase <= 0 {
		rc.BackoffBase = 5 * time.Millisecond
	}
	if rc.BackoffMax <= 0 {
		rc.BackoffMax = 50 * time.Millisecond
	}
	if rc.AttemptTimeout <= 0 {
		rc.AttemptTimeout = 150 * time.Millisecond
	}
	if rc.MaxSweeps <= 0 {
		rc.MaxSweeps = 50
	}
	if rc.SweepWorkers <= 0 {
		rc.SweepWorkers = 8
	}
	if rc.NetName == "" {
		rc.NetName = fmt.Sprintf("%s-%d-%d", rc.Scenario, rc.Agents, rc.Seed)
	}

	params, err := netsim.ScenarioParams(rc.Scenario, rc.Agents, rc.Seed)
	if err != nil {
		return nil, err
	}
	model, err := netsim.Model(params)
	if err != nil {
		return nil, err
	}
	fleet, err := New(model, rc.NetName, "chaos-admin", rc.Seed)
	if err != nil {
		return nil, err
	}
	defer fleet.Close()

	engine := NewEngine(fleet, rc.Matrix, rc.Seed)
	if rc.Chaos {
		engine.ApplyStatic()
		engine.Repartition()
	}

	report := &RunReport{
		Scenario: string(rc.Scenario),
		Agents:   len(fleet.Targets),
		Seed:     rc.Seed,
		Chaos:    rc.Chaos,
	}

	opts := []configgen.RolloutOption{
		configgen.WithWorkers(rc.Workers),
		configgen.WithRetries(rc.Retries),
		configgen.WithBackoff(rc.BackoffBase, rc.BackoffMax),
		configgen.WithAttemptTimeout(rc.AttemptTimeout),
		configgen.WithMetrics(obs.Disabled),
		configgen.WithOnWave(func(w configgen.WaveResult) {
			if rc.Chaos {
				engine.OnWave(w)
			}
			if rc.OnWave != nil {
				rc.OnWave(w)
			}
		}),
	}
	if rc.Chaos {
		opts = append(opts, configgen.WithOnResult(engine.OnResult))
	}
	if len(rc.Stages) > 0 {
		opts = append(opts, configgen.WithStages(rc.Stages...))
	}
	if rc.Journal != "" {
		opts = append(opts, configgen.WithJournal(rc.Journal), configgen.WithJournalNoSync())
	}

	start := time.Now()
	roll, err := configgen.DistributeContext(ctx, model, fleet.Targets, opts...)
	if err != nil {
		return nil, err
	}
	report.Waves = len(roll.Waves)
	report.RolloutInstalled = roll.Installed
	report.RolloutFailed = roll.Failed + roll.Skipped + roll.Canceled + roll.RolledBack
	report.RolloutAttempts = roll.Attempts
	report.RolloutMS = roll.Duration.Milliseconds()
	if secs := roll.Duration.Seconds(); secs > 0 {
		report.WavesPerSec = float64(len(roll.Waves)) / secs
		report.TargetsPerSec = float64(len(roll.Results)) / secs
	}
	for _, w := range roll.Waves {
		report.WaveDetail = append(report.WaveDetail, WaveSummary{
			Wave:       w.Wave,
			Targets:    w.End - w.Start,
			Installed:  w.Installed,
			Failed:     w.Failed + w.Skipped + w.Canceled,
			RolledBack: w.RolledBack,
			Resumed:    w.Resumed,
			Attempts:   w.Attempts,
			DurationMS: w.Duration.Milliseconds(),
		})
	}

	// Convergence: sweep until every agent's live digest matches desired
	// (ground truth, read off-network). Chaos stays active; each sweep
	// re-rolls the partitions so no host is cut off forever.
	rec, err := reconcile.New(model, fleet.Targets,
		reconcile.WithRetries(1),
		reconcile.WithAttemptTimeout(rc.AttemptTimeout),
		reconcile.WithBreaker(2, 50*time.Millisecond),
		reconcile.WithSeed(rc.Seed),
		reconcile.WithSweepWorkers(rc.SweepWorkers),
		reconcile.WithMetrics(obs.Disabled),
	)
	if err != nil {
		return nil, err
	}
	for report.Sweeps < rc.MaxSweeps && !fleet.Converged() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if rc.Chaos {
			engine.Repartition()
		}
		sweep, err := rec.RunOnce(ctx)
		if err != nil {
			return nil, err
		}
		report.Sweeps++
		if rc.OnSweep != nil {
			rc.OnSweep(sweep)
		}
	}
	report.Converged = fleet.Converged()
	report.Unconverged = fleet.Unconverged()
	report.TimeToConverge = time.Since(start).Milliseconds()
	report.DuplicateLoads = fleet.DuplicateLoads()
	for _, host := range fleet.Net.Hosts() {
		report.FaultsInjected += fleet.Net.Injector(host).Stats().Dropped
	}
	st := engine.Stats()
	report.Restarts = st.Restarts
	report.Repartitions = st.Repartitions
	return report, nil
}

package printer

import (
	"strings"
	"testing"

	"nmsl/internal/ast"
	"nmsl/internal/consistency"
	"nmsl/internal/netsim"
	"nmsl/internal/paperspec"
	"nmsl/internal/parser"
	"nmsl/internal/sema"
)

func analyze(t *testing.T, src string) *ast.Spec {
	t.Helper()
	f, err := parser.Parse("test", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	a := sema.NewAnalyzer()
	a.AnalyzeFile(f)
	spec, err := a.Finish()
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return spec
}

// TestRoundTripPaperSpec: printing the paper spec and re-analyzing the
// output must reach a fixed point (print ∘ analyze is idempotent) and
// preserve the consistency verdict.
func TestRoundTripPaperSpec(t *testing.T) {
	spec1 := analyze(t, paperspec.Combined)
	out1 := String(spec1)
	spec2 := analyze(t, out1)
	out2 := String(spec2)
	if out1 != out2 {
		t.Fatalf("printing is not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
	}
	rep1 := consistency.Check(consistency.BuildModel(spec1))
	rep2 := consistency.Check(consistency.BuildModel(spec2))
	if rep1.Consistent() != rep2.Consistent() || rep1.RefsChecked != rep2.RefsChecked {
		t.Fatalf("round trip changed semantics:\n%s\nvs\n%s", rep1, rep2)
	}
}

func TestRoundTripPreservesModelCounts(t *testing.T) {
	spec1 := analyze(t, paperspec.Combined)
	spec2 := analyze(t, String(spec1))
	if len(spec1.Types) != len(spec2.Types) ||
		len(spec1.Processes) != len(spec2.Processes) ||
		len(spec1.Systems) != len(spec2.Systems) ||
		len(spec1.Domains) != len(spec2.Domains) {
		t.Fatal("declaration counts changed")
	}
	m1 := consistency.BuildModel(spec1)
	m2 := consistency.BuildModel(spec2)
	if len(m1.Instances) != len(m2.Instances) || len(m1.Refs) != len(m2.Refs) || len(m1.Perms) != len(m2.Perms) {
		t.Fatalf("model counts changed: %d/%d/%d vs %d/%d/%d",
			len(m1.Instances), len(m1.Refs), len(m1.Perms),
			len(m2.Instances), len(m2.Refs), len(m2.Perms))
	}
}

// Property-style: round-trip generated internets of several shapes.
func TestRoundTripGenerated(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		p := netsim.Params{
			Domains:           3 + int(seed),
			SystemsPerDomain:  1 + int(seed%3),
			InconsistencyRate: 0.3,
			NestingDepth:      int(seed % 2),
			Seed:              seed,
		}
		spec1, err := netsim.Build(p)
		if err != nil {
			t.Fatal(err)
		}
		out1 := String(spec1)
		spec2 := analyze(t, out1)
		if out2 := String(spec2); out1 != out2 {
			t.Fatalf("seed %d: not a fixed point", seed)
		}
		rep1 := consistency.Check(consistency.BuildModel(spec1))
		rep2 := consistency.Check(consistency.BuildModel(spec2))
		if len(rep1.Violations) != len(rep2.Violations) {
			t.Fatalf("seed %d: verdicts changed: %d vs %d violations",
				seed, len(rep1.Violations), len(rep2.Violations))
		}
	}
}

func TestPrintTypeForms(t *testing.T) {
	src := `
type a ::= OCTET STRING; access Any; end type a.
type b ::= OBJECT IDENTIFIER; end type b.
type c ::= SEQUENCE of b; end type c.
type d ::= SEQUENCE { x INTEGER, y IpAddress }; access ReadOnly; end type d.
`
	spec := analyze(t, src)
	out := String(spec)
	for _, want := range []string{
		"type a ::=\n    OCTET STRING;\n    access Any;",
		"type b ::=\n    OBJECT IDENTIFIER;",
		"SEQUENCE of b;",
		"SEQUENCE { x INTEGER, y IpAddress };",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// and the printed source is valid
	analyze(t, out)
}

func TestPrintQuotesDottedNames(t *testing.T) {
	spec := analyze(t, paperspec.Combined)
	out := String(spec)
	if !strings.Contains(out, `system "romano.cs.wisc.edu" ::=`) {
		t.Errorf("dotted system name not quoted:\n%s", out)
	}
	if !strings.Contains(out, "domain wisc-cs ::=") {
		t.Errorf("hyphenated name needlessly quoted")
	}
}

func TestPrintQueryWithUsingAndAccess(t *testing.T) {
	src := `
process srv ::= supports mgmt.mib; end process srv.
process p(Dest: IpAddress) ::=
    queries srv
        requests mgmt.mib.ip
        using mgmt.mib.ip.ipAddrTable.IpAddrEntry.ipAdEntAddr := Dest
        access WriteOnly
        frequency > 10 seconds;
end process p.
`
	spec := analyze(t, src)
	out := String(spec)
	want := "queries srv requests mgmt.mib.ip using mgmt.mib.ip.ipAddrTable.IpAddrEntry.ipAdEntAddr := Dest access WriteOnly frequency > 10 seconds;"
	if !strings.Contains(out, want) {
		t.Fatalf("query rendering:\n%s", out)
	}
	analyze(t, out)
}

// Package printer renders a typed NMSL specification back to canonical
// NMSL source text.
//
// The canonical form is stable (declarations sorted by kind, then name;
// one clause per line; normalized spacing), which makes it useful for
// formatting hand-written specifications, diffing generated ones, and —
// through the round-trip property parse(print(x)) ≡ x — as a strong
// correctness check on the whole front end.
package printer

import (
	"fmt"
	"io"
	"strings"

	"nmsl/internal/asn1"
	"nmsl/internal/ast"
	"nmsl/internal/mib"
)

// name renders a declaration or member name, quoting when the name
// contains characters outside the identifier alphabet (dots require
// quoting in declaration headers to round-trip unambiguously).
func name(s string) string {
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '-' || r == '_' {
			continue
		}
		return fmt.Sprintf("%q", s)
	}
	if s == "" {
		return `""`
	}
	return s
}

// asn1Body renders an ASN.1 type in NMSL source syntax.
func asn1Body(t *asn1.Type) string {
	switch t.Kind {
	case asn1.KindPrimitive:
		switch t.Name {
		case "OCTETSTRING":
			return "OCTET STRING"
		case "OBJECTIDENTIFIER":
			return "OBJECT IDENTIFIER"
		}
		return t.Name
	case asn1.KindRef:
		return t.Name
	case asn1.KindSequenceOf:
		return "SEQUENCE of " + asn1Body(t.Elem)
	case asn1.KindSequence:
		parts := make([]string, len(t.Fields))
		for i, f := range t.Fields {
			parts[i] = f.Name + " " + asn1Body(f.Type)
		}
		return "SEQUENCE { " + strings.Join(parts, ", ") + " }"
	}
	return "NULL"
}

func freqSuffix(f ast.Freq) string {
	if f.Unspecified() {
		return ""
	}
	return " frequency " + f.String()
}

func accessSuffix(a mib.Access) string {
	if a == mib.AccessUnspecified {
		return ""
	}
	return " access " + a.String()
}

// Fprint writes the whole specification in canonical order: types,
// processes, systems, domains, each alphabetical.
func Fprint(w io.Writer, spec *ast.Spec) error {
	var b strings.Builder
	for _, n := range spec.TypeNames() {
		printType(&b, spec.Types[n])
	}
	for _, n := range spec.ProcessNames() {
		printProcess(&b, spec.Processes[n])
	}
	for _, n := range spec.SystemNames() {
		printSystem(&b, spec.Systems[n])
	}
	for _, n := range spec.DomainNames() {
		printDomain(&b, spec.Domains[n])
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the specification to a string.
func String(spec *ast.Spec) string {
	var b strings.Builder
	_ = Fprint(&b, spec)
	return b.String()
}

func printType(b *strings.Builder, ts *ast.TypeSpec) {
	fmt.Fprintf(b, "type %s ::=\n", ts.Name)
	fmt.Fprintf(b, "    %s;\n", asn1Body(ts.Body))
	if ts.Access != mib.AccessUnspecified {
		fmt.Fprintf(b, "    access %s;\n", ts.Access)
	}
	fmt.Fprintf(b, "end type %s.\n\n", ts.Name)
}

func printExport(b *strings.Builder, ex ast.Export) {
	fmt.Fprintf(b, "    exports %s to %q%s%s;\n",
		strings.Join(ex.Vars, ", "), ex.To, accessSuffix(ex.Access), freqSuffix(ex.Freq))
}

func printProcess(b *strings.Builder, ps *ast.ProcessSpec) {
	fmt.Fprintf(b, "process %s", ps.Name)
	if len(ps.Params) > 0 {
		parts := make([]string, len(ps.Params))
		for i, p := range ps.Params {
			parts[i] = p.Name + ": " + p.Type
		}
		fmt.Fprintf(b, "(%s)", strings.Join(parts, "; "))
	}
	b.WriteString(" ::=\n")
	if len(ps.Supports) > 0 {
		fmt.Fprintf(b, "    supports %s;\n", strings.Join(ps.Supports, ", "))
	}
	for _, ex := range ps.Exports {
		printExport(b, ex)
	}
	for _, q := range ps.Queries {
		fmt.Fprintf(b, "    queries %s requests %s", q.Target, strings.Join(q.Requests, ", "))
		for _, sel := range q.Using {
			fmt.Fprintf(b, " using %s := %s", sel.Var, sel.Value.String())
		}
		if q.Access != mib.AccessReadOnly {
			b.WriteString(accessSuffix(q.Access))
		}
		b.WriteString(freqSuffix(q.Freq))
		b.WriteString(";\n")
	}
	fmt.Fprintf(b, "end process %s.\n\n", ps.Name)
}

func printInstance(b *strings.Builder, pi ast.ProcInstance) {
	fmt.Fprintf(b, "    process %s;\n", pi.String())
}

func printSystem(b *strings.Builder, ss *ast.SystemSpec) {
	fmt.Fprintf(b, "system %s ::=\n", name(ss.Name))
	fmt.Fprintf(b, "    cpu %s;\n", ss.CPU)
	for _, ifc := range ss.Interfaces {
		fmt.Fprintf(b, "    interface %s net %s", ifc.Name, ifc.Net)
		if len(ifc.Protocols) > 0 {
			fmt.Fprintf(b, " protocols %s", strings.Join(ifc.Protocols, ", "))
		}
		if ifc.Type != "" {
			fmt.Fprintf(b, " type %s", ifc.Type)
		}
		if ifc.SpeedBPS > 0 {
			fmt.Fprintf(b, " speed %d bps", ifc.SpeedBPS)
		}
		b.WriteString(";\n")
	}
	if ss.OpSys != "" {
		fmt.Fprintf(b, "    opsys %s", ss.OpSys)
		if ss.OpSysVersion != "" {
			fmt.Fprintf(b, " version %s", ss.OpSysVersion)
		}
		b.WriteString(";\n")
	}
	if len(ss.Supports) > 0 {
		fmt.Fprintf(b, "    supports %s;\n", strings.Join(ss.Supports, ", "))
	}
	for _, pi := range ss.Processes {
		printInstance(b, pi)
	}
	fmt.Fprintf(b, "end system %s.\n\n", name(ss.Name))
}

func printDomain(b *strings.Builder, ds *ast.DomainSpec) {
	fmt.Fprintf(b, "domain %s ::=\n", name(ds.Name))
	for _, sys := range ds.Systems {
		fmt.Fprintf(b, "    system %s;\n", name(sys))
	}
	for _, sub := range ds.Subdomains {
		fmt.Fprintf(b, "    domain %s;\n", name(sub))
	}
	for _, pi := range ds.Processes {
		printInstance(b, pi)
	}
	for _, ex := range ds.Exports {
		printExport(b, ex)
	}
	fmt.Fprintf(b, "end domain %s.\n\n", name(ds.Name))
}

package consistency

import (
	"context"
	"testing"

	"nmsl/internal/obs"
	"nmsl/internal/paperspec"
)

// TestCheckContextMetricsSnapshot asserts the metrics embedded in the
// Report agree with the Report itself, and that the run also lands in
// the caller-supplied registry.
func TestCheckContextMetricsSnapshot(t *testing.T) {
	m := buildModel(t, paperspec.Combined)
	reg := obs.NewRegistry()
	rep := checkParallel(t, m, Options{Workers: 4, Metrics: reg})

	s := rep.Metrics
	if s == nil {
		t.Fatal("Report.Metrics is nil with metrics enabled")
	}
	if got := s.Value(MetricCheckRefs); got != int64(rep.RefsChecked) {
		t.Errorf("snapshot refs %d != report refs %d", got, rep.RefsChecked)
	}
	if got := s.Value(MetricCheckViolations); got != int64(len(rep.Violations)) {
		t.Errorf("snapshot violations %d != report violations %d", got, len(rep.Violations))
	}
	if s.Value(MetricCheckRuns) != 1 {
		t.Errorf("runs = %d, want 1", s.Value(MetricCheckRuns))
	}
	if s.Value(MetricCheckShards) < 1 {
		t.Error("no shards recorded")
	}
	if got := s.Count(MetricCheckShardDuration); got != s.Value(MetricCheckShards) {
		t.Errorf("shard duration observations %d != shard count %d", got, s.Value(MetricCheckShards))
	}
	if s.Count(MetricCheckWorkerBusy) < 1 {
		t.Error("no worker busy time recorded")
	}
	if s.Count(MetricCheckDuration) != 1 {
		t.Errorf("check duration observations = %d, want 1", s.Count(MetricCheckDuration))
	}
	if s.Value(MetricCheckWorkers) < 1 {
		t.Errorf("workers gauge = %d", s.Value(MetricCheckWorkers))
	}

	// The run was merged into the caller's registry too.
	if got := reg.Snapshot().Value(MetricCheckRefs); got != int64(rep.RefsChecked) {
		t.Errorf("shared registry refs %d != report refs %d", got, rep.RefsChecked)
	}

	// Two runs into the same registry accumulate; each report still
	// carries only its own run.
	rep2 := checkParallel(t, m, Options{Workers: 2, Metrics: reg})
	if got := rep2.Metrics.Value(MetricCheckRefs); got != int64(rep2.RefsChecked) {
		t.Errorf("second run snapshot refs %d != report refs %d", got, rep2.RefsChecked)
	}
	if got := reg.Snapshot().Value(MetricCheckRuns); got != 2 {
		t.Errorf("shared registry runs = %d, want 2", got)
	}
}

// TestCheckContextMetricsDisabled asserts obs.Disabled turns the
// instrumentation off without changing the check's result.
func TestCheckContextMetricsDisabled(t *testing.T) {
	m := buildModel(t, paperspec.Combined)
	rep := checkParallel(t, m, Options{Workers: 4, Metrics: obs.Disabled})
	if rep.Metrics != nil {
		t.Errorf("Report.Metrics = %v with metrics disabled, want nil", rep.Metrics)
	}
	base := checkParallel(t, m, Options{Workers: 4})
	if rep.String() != base.String() {
		t.Error("disabling metrics changed the report")
	}
}

// TestCheckContextSpans asserts check and shard spans reach an
// installed sink with the advertised labels.
func TestCheckContextSpans(t *testing.T) {
	m := buildModel(t, paperspec.Combined)
	col := &obs.CollectorSink{}
	prev := obs.SetSpanSink(col)
	defer obs.SetSpanSink(prev)

	_, err := CheckContext(context.Background(), m, Options{Workers: 2, Metrics: obs.Disabled})
	if err != nil {
		t.Fatal(err)
	}
	var check, shards int
	for _, ev := range col.Spans() {
		switch ev.Name {
		case "check":
			check++
			labels := map[string]string{}
			for _, l := range ev.Labels {
				labels[l.Key] = l.Value
			}
			if labels["engine"] != "indexed" || labels["workers"] == "" {
				t.Errorf("check span labels = %v", ev.Labels)
			}
		case "check.shard":
			shards++
		}
	}
	if check != 1 {
		t.Errorf("got %d check spans, want 1", check)
	}
	if shards < 1 {
		t.Error("no shard spans emitted")
	}
}

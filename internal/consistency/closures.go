package consistency

import "sort"

// Materialized closures (the incremental-checking tentpole, layer 2).
// The paper's Consistency Checker reduces the Figure 4.9 relations with
// recursive transitivity rules; evaluating those rules top-down re-derives
// the same containment chains for every reference. Here the two closures
// the rules range over — administrative containment (contains_tr/covers)
// and MIB data covering (data_covers) — are materialized once per model by
// semi-naive bottom-up iteration, in O(edges + closure) time, and asserted
// into the logic DB as indexed fact tables. The tables are immutable after
// construction, so the sharded checker's workers share them read-only.
// BuildDBRecursive keeps the original recursive rule base as a parity
// oracle (Engine EngineLogicRecursive, property tests in closures_test.go).

// transitiveClosure computes the reachability closure of a directed edge
// relation by semi-naive iteration: each round joins the base edges with
// only the pairs discovered in the previous round, so every derivable
// pair is produced exactly once. Cycles (including self-edges) are safe:
// the fixpoint simply stops growing.
func transitiveClosure(edges map[string][]string) map[string]map[string]bool {
	reach := map[string]map[string]bool{}
	delta := map[string]map[string]bool{}
	add := func(m map[string]map[string]bool, x, y string) bool {
		s := m[x]
		if s == nil {
			s = map[string]bool{}
			m[x] = s
		}
		if s[y] {
			return false
		}
		s[y] = true
		return true
	}
	for x, ys := range edges {
		for _, y := range ys {
			if add(reach, x, y) {
				add(delta, x, y)
			}
		}
	}
	for len(delta) > 0 {
		next := map[string]map[string]bool{}
		// contains_tr(X, Z) :- contains(X, Y), Δcontains_tr(Y, Z).
		for x, ys := range edges {
			for _, y := range ys {
				for z := range delta[y] {
					if add(reach, x, z) {
						add(next, x, z)
					}
				}
			}
		}
		delta = next
	}
	return reach
}

// closures is the per-model materialized containment state, built once
// and shared read-only (the checker, the logic DB compiler and the
// fingerprint encoder all consult it).
type closures struct {
	// down is the contains_tr relation: down[x] holds every party
	// transitively contained in x.
	down map[string]map[string]bool
	// order is the sorted key set of down, and downSorted the sorted
	// members, for deterministic fact assertion.
	order      []string
	downSorted map[string][]string
	// universe is every constant that may appear as an argument of the
	// covers relation: domains, systems, instance ids, grantees and
	// grantors. covers is reflexive over it.
	universe []string
	// partySorted caches Model.partyDomains as sorted slices, the
	// deterministic form the fingerprint encoder hashes.
	partySorted map[string][]string
}

// containmentEdges collects the direct contains/2 edges of the model:
// domain→subdomain, domain→system, host→instance — exactly the facts
// BuildDB asserts.
func (m *Model) containmentEdges() map[string][]string {
	edges := map[string][]string{}
	for _, name := range m.Spec.DomainNames() {
		d := m.Spec.Domains[name]
		edges[name] = append(edges[name], d.Subdomains...)
		edges[name] = append(edges[name], d.Systems...)
	}
	for _, in := range m.Instances {
		host := in.System
		if host == "" {
			host = in.Domain
		}
		edges[host] = append(edges[host], in.ID)
	}
	return edges
}

// closures returns the materialized containment closure for the model,
// computing it on first use. The result is immutable.
func (m *Model) closures() *closures {
	m.closOnce.Do(func() {
		cl := &closures{
			downSorted:  map[string][]string{},
			partySorted: map[string][]string{},
		}
		edges := m.containmentEdges()
		cl.down = transitiveClosure(edges)
		for x, ys := range cl.down {
			cl.order = append(cl.order, x)
			members := make([]string, 0, len(ys))
			for y := range ys {
				members = append(members, y)
			}
			sort.Strings(members)
			cl.downSorted[x] = members
		}
		sort.Strings(cl.order)

		// The covers universe: every edge endpoint plus every party a
		// permission can name.
		uni := map[string]bool{}
		for x, ys := range edges {
			uni[x] = true
			for _, y := range ys {
				uni[y] = true
			}
		}
		for i := range m.Perms {
			p := &m.Perms[i]
			uni[p.Grantee] = true
			if p.GrantorInst != "" {
				uni[p.GrantorInst] = true
			}
			if p.GrantorDomain != "" {
				uni[p.GrantorDomain] = true
			}
		}
		cl.universe = make([]string, 0, len(uni))
		for x := range uni {
			cl.universe = append(cl.universe, x)
		}
		sort.Strings(cl.universe)

		for id, set := range m.partyDomains {
			doms := make([]string, 0, len(set))
			for d := range set {
				doms = append(doms, d)
			}
			sort.Strings(doms)
			cl.partySorted[id] = doms
		}
		m.clos = cl
	})
	return m.clos
}

// sortedPartyDomains returns the cached, sorted list of domains
// transitively containing the party.
func (m *Model) sortedPartyDomains(id string) []string {
	return m.closures().partySorted[id]
}

package consistency

import (
	"fmt"

	"nmsl/internal/ast"
)

// Proxy network management (paper section 3.1): "some network elements
// cannot respond to management queries directly", e.g. LAN bridges
// without high-level protocol support, so a proxy process answers on
// their behalf. "Specifying proxies requires NMSL to model the
// interactions between the proxy and the managed network element, as
// well as any data transformations made between the proxy protocol and
// the normal protocol. Once again, the specification of interactions
// must include the frequency of interaction."
//
// The basic language carries no proxies clause; it arrives through the
// extension mechanism (the canonical NMSL/EXT example in this
// repository). The model reads the captured extension clauses — keyword
// "proxies", one proxied element name, an optional protocol ("via") and
// a polling frequency — and folds them into checking and load
// estimation.

// Proxy is one proxy relationship: an instance that answers management
// queries on behalf of a network element, polling it over a proxy
// protocol.
type Proxy struct {
	// Inst is the proxy process instance.
	Inst *Instance
	// Element names the managed network element.
	Element string
	// Protocol is the proxy-side protocol ("via" subclause), if given.
	Protocol string
	// Freq bounds how often the proxy polls the element.
	Freq ast.Freq
}

// String renders the relationship.
func (p Proxy) String() string {
	s := fmt.Sprintf("proxy(%s for %s", p.Inst.ID, p.Element)
	if p.Protocol != "" {
		s += " via " + p.Protocol
	}
	return s + ", polling " + p.Freq.String() + ")"
}

// proxyClauses returns the proxies extension clauses of a process type.
func proxyClauses(spec *ast.Spec, procName string) []ast.ExtClause {
	var out []ast.ExtClause
	for _, ec := range spec.Ext[ast.ExtKey("process", procName)] {
		if ec.Keyword == "proxies" {
			out = append(out, ec)
		}
	}
	return out
}

// buildProxies expands proxy declarations over instances.
func (m *Model) buildProxies() {
	for _, in := range m.Instances {
		for _, ec := range proxyClauses(m.Spec, in.Proc.Name) {
			if len(ec.Names) == 0 {
				continue
			}
			p := Proxy{Inst: in, Element: ec.Names[0], Freq: ec.Freq}
			if len(ec.Raw) > 0 {
				p.Protocol = ec.Raw[0].Text
			}
			m.Proxies = append(m.Proxies, p)
		}
	}
}

// Proxy violation kinds.
const (
	// KindProxyUnknownElement: the proxied element is not a declared
	// system, so its capabilities cannot be verified.
	KindProxyUnknownElement Kind = "proxy-unknown-element"
	// KindProxyView: the proxy supports (relays) data the proxied
	// element does not itself support — there is nothing to transform it
	// from.
	KindProxyView Kind = "proxy-view"
	// KindProxyFrequency: the proxy answers clients more often than it
	// is allowed to poll the element, so it would serve stale data or
	// overload the element.
	KindProxyFrequency Kind = "proxy-frequency"
)

// checkProxies validates every proxy relationship.
func (c *Checker) checkProxies(out *[]Violation) {
	for _, p := range c.m.Proxies {
		elem := c.m.Spec.Systems[p.Element]
		if elem == nil {
			*out = append(*out, Violation{
				Kind: KindProxyUnknownElement,
				Message: fmt.Sprintf("%s: proxied element %q is not a declared system",
					p, p.Element),
			})
			continue
		}
		// The proxy's supported view must be transformable from the
		// element's: every subtree the proxy relays must lie under data
		// the element supports.
		for _, v := range p.Inst.Proc.Supports {
			node := c.m.resolveVar(v)
			if node == nil {
				continue
			}
			if !c.m.viewCovers(elem.Supports, node) {
				*out = append(*out, Violation{
					Kind: KindProxyView,
					Message: fmt.Sprintf("%s: proxy relays %s which element %s does not support",
						p, node.Path(), p.Element),
				})
			}
		}
		// Exports answered from proxied data must not promise clients a
		// faster rate than the proxy may poll: an export permitting
		// queries every Te seconds with a poll every Tp > Te seconds
		// would answer from stale data.
		pollPeriod := p.Freq.MinPeriodSeconds()
		if p.Freq.Infrequent || pollPeriod == 0 {
			continue
		}
		for _, ex := range p.Inst.Proc.Exports {
			expPeriod := ex.Freq.MinPeriodSeconds()
			if !ex.Freq.Infrequent && expPeriod < pollPeriod {
				*out = append(*out, Violation{
					Kind: KindProxyFrequency,
					Message: fmt.Sprintf("%s: exports to %q permit queries every %gs but the element is polled only every %gs",
						p, ex.To, expPeriod, pollPeriod),
				})
			}
		}
	}
}

package consistency

import (
	"slices"
	"sort"

	"nmsl/internal/mib"
)

// Columnar interned model (the contention tentpole). The checker's hot
// loop used to resolve every relation through string-keyed maps —
// partyDomains[instanceID][domainName], byGrantorInst[instanceID] — so
// each of the ~100k references on a large internet paid string hashing
// and map-bucket chasing, and every worker dragged the same map buckets
// through its cache. Here the check-relevant relations are re-expressed
// once per model as struct-of-arrays tables over dense integer ids:
// instances are numbered by model position, domains by sorted name, and
// the containment, grantor-index and support-view relations become flat
// int32/pointer slices indexed by those ids. The tables are immutable
// after construction, carry no per-reference pointers for the GC to
// trace, and are shared read-only by every worker — the per-reference
// hot path touches no map, takes no lock, and allocates nothing.
type columns struct {
	// domName maps a dense domain id back to its name (ids are assigned
	// in sorted-name order, so iterating ids is iterating names sorted).
	domName []string
	// domOf is the inverse, for cold-path lookups.
	domOf map[string]int32

	// instDomOff/instDomFlat encode, per instance index, the ascending
	// run of domain ids transitively containing it:
	// instDomFlat[instDomOff[i]:instDomOff[i+1]].
	instDomOff  []int32
	instDomFlat []int32

	// Permission columns, aligned with Model.Perms. -1 marks an absent
	// or undeclared party (an undeclared grantee domain can never cover
	// a source, exactly like the map miss it replaces).
	permGrantee     []int32 // grantee domain id
	permGrantorInst []int32 // granting instance index
	permGrantorDom  []int32 // granting domain id

	// Grantor indexes: ascending permission indexes per instance index /
	// domain id. permsByDom doubles as the restriction rule's export
	// lists (a domain restricts iff it declares exports, and its exports
	// are exactly its domain-level permissions).
	permsByInst [][]int32
	permsByDom  [][]int32

	// Effective support views, resolved once per instance: the process
	// view nodes, and — for system-hosted instances whose system is
	// declared — the element view. sysView[i] == nil means "no element
	// check applies"; a non-nil empty slice is a declared view that
	// covers nothing.
	procView [][]*mib.Node
	sysView  [][]*mib.Node
}

// columns returns the model's columnar tables, building them on first
// use. The result is immutable and safe to share across workers.
func (m *Model) columns() *columns {
	m.colsOnce.Do(func() { m.cols = buildColumnsFrom(m, nil, nil, nil) })
	return m.cols
}

// SeedColumnsFrom pre-builds m's columnar tables on the growth path: a
// DiffSpecs edit rebuilt the model, and the parts of the old model's
// tables the delta provably left unchanged are adopted instead of
// re-interned — the sorted domain-name→id table is shared outright when
// the domain name set is identical, and per-instance containment runs
// are copied id-for-id (no map iteration, no sort) for instances whose
// hosting survives the edit when no domain declaration changed. Must be
// called before the model's first check (the tables build lazily on
// first use and are immutable after); a nil old or a delta that forces
// a full re-check (Full, MIBChanged) seeds nothing and the first check
// builds fresh. Equivalence with a fresh build is pinned by
// TestSeedColumnsEquivalence.
func (m *Model) SeedColumnsFrom(old *Model, delta *ModelDelta) {
	if old == nil || old == m || delta == nil || delta.Full || delta.MIBChanged {
		return
	}
	m.colsOnce.Do(func() { m.cols = buildColumnsFrom(m, old, old.columns(), delta) })
}

// buildColumnsFrom builds the tables, adopting from oldCo where the
// delta proves reuse sound (all three of old/oldCo/delta nil means a
// cold build — the m.columns path).
func buildColumnsFrom(m *Model, old *Model, oldCo *columns, delta *ModelDelta) *columns {
	co := &columns{}

	// Domain ids in sorted-name order (DomainNames is sorted), so id
	// order and lexicographic name order coincide and every id-ordered
	// iteration below is deterministic. An unchanged name set means the
	// old table assigns exactly these ids — share it; any difference
	// shifts ids, so every adopted structure below requires this reuse.
	names := m.Spec.DomainNames()
	if oldCo != nil && !slices.Equal(names, oldCo.domName) {
		old, oldCo = nil, nil
	}
	if oldCo != nil {
		co.domName = oldCo.domName
		co.domOf = oldCo.domOf
	} else {
		co.domName = names
		co.domOf = make(map[string]int32, len(names))
		for i, n := range names {
			co.domOf[n] = int32(i)
		}
	}

	// Containment ancestry per instance, as ascending domain-id runs.
	// Containment depends only on the domain declarations (membership
	// lists and subdomain edges), so when the delta names no domain the
	// old run for an identically-hosted instance is already correct —
	// copy the ids straight across instead of iterating and sorting the
	// party-domain set.
	adoptRuns := oldCo != nil && len(delta.Domains) == 0
	co.instDomOff = make([]int32, len(m.Instances)+1)
	for i, in := range m.Instances {
		co.instDomOff[i] = int32(len(co.instDomFlat))
		if adoptRuns {
			if oldIn := old.byID[in.ID]; oldIn != nil && oldIn.System == in.System && oldIn.Domain == in.Domain {
				co.instDomFlat = append(co.instDomFlat, oldCo.instDoms(oldIn.idx)...)
				continue
			}
		}
		start := len(co.instDomFlat)
		for d := range m.partyDomains[in.ID] {
			if id, ok := co.domOf[d]; ok {
				co.instDomFlat = append(co.instDomFlat, id)
			}
		}
		run := co.instDomFlat[start:]
		sort.Slice(run, func(a, b int) bool { return run[a] < run[b] })
	}
	co.instDomOff[len(m.Instances)] = int32(len(co.instDomFlat))

	// Permission columns and the grantor indexes. Appending in perm
	// order keeps every index list ascending, which candidatePerms and
	// the fingerprint encoder rely on.
	co.permGrantee = make([]int32, len(m.Perms))
	co.permGrantorInst = make([]int32, len(m.Perms))
	co.permGrantorDom = make([]int32, len(m.Perms))
	co.permsByInst = make([][]int32, len(m.Instances))
	co.permsByDom = make([][]int32, len(names))
	for pi := range m.Perms {
		p := &m.Perms[pi]
		co.permGrantee[pi] = -1
		if id, ok := co.domOf[p.Grantee]; ok {
			co.permGrantee[pi] = id
		}
		co.permGrantorInst[pi] = -1
		if p.GrantorInst != "" {
			if in := m.byID[p.GrantorInst]; in != nil {
				co.permGrantorInst[pi] = in.idx
				co.permsByInst[in.idx] = append(co.permsByInst[in.idx], int32(pi))
			}
		}
		co.permGrantorDom[pi] = -1
		if p.GrantorDomain != "" {
			if id, ok := co.domOf[p.GrantorDomain]; ok {
				co.permGrantorDom[pi] = id
				co.permsByDom[id] = append(co.permsByDom[id], int32(pi))
			}
		}
	}

	// Support views, resolved once. Unresolvable patterns drop out here
	// exactly as viewCovers skipped them per reference.
	co.procView = make([][]*mib.Node, len(m.Instances))
	co.sysView = make([][]*mib.Node, len(m.Instances))
	procNodes := map[string][]*mib.Node{}
	sysNodes := map[string][]*mib.Node{}
	resolveView := func(view []string) []*mib.Node {
		nodes := make([]*mib.Node, 0, len(view))
		for _, v := range view {
			if n := m.resolveVar(v); n != nil {
				nodes = append(nodes, n)
			}
		}
		return nodes
	}
	for i, in := range m.Instances {
		pv, ok := procNodes[in.Proc.Name]
		if !ok {
			pv = resolveView(in.Proc.Supports)
			procNodes[in.Proc.Name] = pv
		}
		co.procView[i] = pv
		if in.System != "" {
			sv, ok := sysNodes[in.System]
			if !ok {
				if ss := m.Spec.Systems[in.System]; ss != nil {
					sv = resolveView(ss.Supports)
				}
				sysNodes[in.System] = sv
			}
			co.sysView[i] = sv
		}
	}
	return co
}

// instDoms returns the ascending domain-id run transitively containing
// the instance.
func (co *columns) instDoms(i int32) []int32 {
	return co.instDomFlat[co.instDomOff[i]:co.instDomOff[i+1]]
}

// instHasDom reports whether domain d transitively contains instance i.
// Ancestry runs are a handful of entries deep, so a linear scan beats a
// binary search's branch misses.
func (co *columns) instHasDom(i, d int32) bool {
	if d < 0 {
		return false
	}
	for _, x := range co.instDoms(i) {
		if x == d {
			return true
		}
		if x > d {
			return false
		}
	}
	return false
}

// nodesCover reports whether any view node contains the referenced node.
func nodesCover(view []*mib.Node, node *mib.Node) bool {
	for _, vn := range view {
		if vn.Contains(node) {
			return true
		}
	}
	return false
}

// supports is effectiveSupports over the columnar tables: the process
// view must cover the node, and a declared hosting element's view must
// cover it too.
func (co *columns) supports(i int32, node *mib.Node) bool {
	if !nodesCover(co.procView[i], node) {
		return false
	}
	if sv := co.sysView[i]; sv != nil && !nodesCover(sv, node) {
		return false
	}
	return true
}

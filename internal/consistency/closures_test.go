package consistency

import (
	"fmt"
	"math/rand"
	"testing"

	"nmsl/internal/logic"
	"nmsl/internal/mib"
)

// randomEdges draws a directed graph over n nodes with roughly density
// edges per node, including self-loops and cycles (the closures must be
// robust to both even though well-formed specifications are acyclic).
func randomEdges(rng *rand.Rand, n int, density float64) map[string][]string {
	edges := map[string][]string{}
	nodeName := func(i int) string { return fmt.Sprintf("n%d", i) }
	total := int(float64(n) * density)
	for e := 0; e < total; e++ {
		x, y := nodeName(rng.Intn(n)), nodeName(rng.Intn(n))
		edges[x] = append(edges[x], y)
	}
	return edges
}

// reachDFS is the independent oracle for transitiveClosure: plain
// depth-first reachability.
func reachDFS(edges map[string][]string) map[string]map[string]bool {
	reach := map[string]map[string]bool{}
	for x := range edges {
		seen := map[string]bool{}
		stack := append([]string(nil), edges[x]...)
		for len(stack) > 0 {
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[y] {
				continue
			}
			seen[y] = true
			stack = append(stack, edges[y]...)
		}
		if len(seen) > 0 {
			reach[x] = seen
		}
	}
	return reach
}

func TestTransitiveClosureRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		edges := randomEdges(rng, n, 1.5)
		got := transitiveClosure(edges)
		want := reachDFS(edges)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d sources reachable, want %d", trial, len(got), len(want))
		}
		for x, ys := range want {
			for y := range ys {
				if !got[x][y] {
					t.Fatalf("trial %d: missing %s -> %s", trial, x, y)
				}
			}
			if len(got[x]) != len(ys) {
				t.Fatalf("trial %d: %s reaches %d nodes, want %d", trial, x, len(got[x]), len(ys))
			}
		}
	}
}

// TestMaterializedContainmentMatchesRecursiveEngine is the property test
// of the tentpole: on random graphs (cycles and self-containment
// included), the materialized contains_tr/covers fact tables prove
// exactly what the recursive prolog rules prove.
func TestMaterializedContainmentMatchesRecursiveEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(10)
		edges := randomEdges(rng, n, 1.2)

		// Recursive rule base, as BuildDBRecursive asserts it.
		rec := logic.NewDB()
		for x, ys := range edges {
			for _, y := range ys {
				rec.Assert(logic.Comp("contains", logic.Atom(x), logic.Atom(y)))
			}
		}
		X, Y := logic.NewVar("X"), logic.NewVar("Y")
		rec.Assert(logic.Comp("contains_tr", X, Y), logic.Call(logic.Comp("contains", X, Y)))
		X2, Y2, Z2 := logic.NewVar("X"), logic.NewVar("Y"), logic.NewVar("Z")
		rec.Assert(logic.Comp("contains_tr", X2, Z2),
			logic.Call(logic.Comp("contains", X2, Y2)),
			logic.Call(logic.Comp("contains_tr", Y2, Z2)))
		A := logic.NewVar("A")
		rec.Assert(logic.Comp("covers", A, A))
		B, C := logic.NewVar("B"), logic.NewVar("C")
		rec.Assert(logic.Comp("covers", B, C), logic.Call(logic.Comp("contains_tr", B, C)))

		// Materialized fact tables, as BuildDB asserts them.
		mat := logic.NewDB()
		cl := transitiveClosure(edges)
		uni := map[string]bool{}
		for x, ys := range edges {
			uni[x] = true
			for _, y := range ys {
				uni[y] = true
			}
		}
		for x := range uni {
			mat.Assert(logic.Comp("covers", logic.Atom(x), logic.Atom(x)))
		}
		for x, ys := range cl {
			for y := range ys {
				mat.Assert(logic.Comp("contains_tr", logic.Atom(x), logic.Atom(y)))
				mat.Assert(logic.Comp("covers", logic.Atom(x), logic.Atom(y)))
			}
		}

		// On cyclic graphs the recursive rules enumerate paths, which
		// explodes under the default depth bound; a simple path needs at
		// most n calls, so 2n+4 suffices for every positive proof.
		rs := logic.NewSolver(rec)
		rs.MaxDepth = 2*n + 4
		ms := logic.NewSolver(mat)
		for x := range uni {
			for y := range uni {
				ct := logic.Call(logic.Comp("contains_tr", logic.Atom(x), logic.Atom(y)))
				if rg, mg := rs.Prove(ct), ms.Prove(ct); rg != mg {
					t.Fatalf("trial %d: contains_tr(%s, %s): recursive %v, materialized %v", trial, x, y, rg, mg)
				}
				cv := logic.Call(logic.Comp("covers", logic.Atom(x), logic.Atom(y)))
				if rg, mg := rs.Prove(cv), ms.Prove(cv); rg != mg {
					t.Fatalf("trial %d: covers(%s, %s): recursive %v, materialized %v", trial, x, y, rg, mg)
				}
			}
		}
	}
}

// TestMaterializedDataCoversMatchesRecursiveEngine checks the MIB
// covering closure on random trees: the materialized (ancestor-or-self,
// node) facts prove exactly what the recursive mib_contains walk proves.
func TestMaterializedDataCoversMatchesRecursiveEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		tree := mib.NewEmpty()
		root, err := tree.RegisterRoot("root", mib.OID{1})
		if err != nil {
			t.Fatal(err)
		}
		nodes := []*mib.Node{root}
		for i := 0; i < 5+rng.Intn(20); i++ {
			parent := nodes[rng.Intn(len(nodes))]
			n, err := tree.Register(fmt.Sprintf("%s.v%d", parent.Path(), i))
			if err != nil {
				t.Fatal(err)
			}
			nodes = append(nodes, n)
		}

		rec := logic.NewDB()
		mat := logic.NewDB()
		for _, db := range []*logic.DB{rec, mat} {
			for _, r := range tree.Roots() {
				var walk func(n *mib.Node)
				walk = func(n *mib.Node) {
					for _, c := range n.Children() {
						db.Assert(logic.Comp("mib_contains", logic.Atom(n.Path()), logic.Atom(c.Path())))
						walk(c)
					}
				}
				walk(r)
			}
		}
		V := logic.NewVar("V")
		rec.Assert(logic.Comp("data_covers", V, V))
		X, Y, Z := logic.NewVar("X"), logic.NewVar("Y"), logic.NewVar("Z")
		rec.Assert(logic.Comp("data_covers", X, Y),
			logic.Call(logic.Comp("mib_contains", X, Z)),
			logic.Call(logic.Comp("data_covers", Z, Y)))
		for _, r := range tree.Roots() {
			var walk func(n *mib.Node, anc []logic.Term)
			walk = func(n *mib.Node, anc []logic.Term) {
				self := logic.Atom(n.Path())
				anc = append(anc, self)
				for _, a := range anc {
					mat.Assert(logic.Comp("data_covers", a, self))
				}
				for _, c := range n.Children() {
					walk(c, anc)
				}
			}
			walk(r, nil)
		}

		rs, ms := logic.NewSolver(rec), logic.NewSolver(mat)
		for _, a := range nodes {
			for _, b := range nodes {
				g := logic.Call(logic.Comp("data_covers", logic.Atom(a.Path()), logic.Atom(b.Path())))
				rg, mg := rs.Prove(g), ms.Prove(g)
				if rg != mg {
					t.Fatalf("trial %d: data_covers(%s, %s): recursive %v, materialized %v",
						trial, a.Path(), b.Path(), rg, mg)
				}
				if rg != a.Contains(b) {
					t.Fatalf("trial %d: data_covers(%s, %s) = %v disagrees with Node.Contains",
						trial, a.Path(), b.Path(), rg)
				}
			}
		}
	}
}

package consistency

import (
	"strings"
	"testing"

	"nmsl/internal/paperspec"
	"nmsl/internal/parser"
	"nmsl/internal/sema"
)

func TestConsistencyOutput(t *testing.T) {
	f, err := parser.Parse("paper", paperspec.Combined)
	if err != nil {
		t.Fatal(err)
	}
	a := sema.NewAnalyzer()
	RegisterOutput(a.Tables())
	a.AnalyzeFile(f)
	if _, err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := a.Generate(OutputTag, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := []string{
		"type_spec(ipAddrTable).",
		"type_access(ipAddrTable,readonly).",
		"type_ref(ipAddrTable,'IpAddrEntry').",
		"proc_supports(snmpdReadOnly,'mgmt.mib').",
		"proc_export(snmpdReadOnly,public,'mgmt.mib',readonly,300,ge).",
		"proc_query(snmpaddr,'SysAddr','mgmt.mib.ip.ipAddrTable.IpAddrEntry',readonly,infrequent,ge).",
		"system_spec('romano.cs.wisc.edu',sparc).",
		"sys_interface('romano.cs.wisc.edu',ie0,'wisc-research','ethernet-csmacd',10000000).",
		"sys_runs('romano.cs.wisc.edu',snmpdReadOnly,0).",
		"domain_spec('wisc-cs').",
		"dom_member_system('wisc-cs','romano.cs.wisc.edu').",
		"dom_instance('wisc-cs',snmpaddr,0).",
		"dom_export('wisc-cs',public,'mgmt.mib',readonly,300,ge).",
		"dom_member_domain(public,'wisc-cs').",
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("missing fact %q in output:\n%s", w, out)
		}
	}
}

func TestWriteRulesAndFacts(t *testing.T) {
	var rules strings.Builder
	if err := WriteRules(&rules); err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"contains_tr", "data_covers", "freq_ok", "permitted", "inconsistent", "violates_restriction"} {
		if !strings.Contains(rules.String(), w) {
			t.Errorf("rules missing %q", w)
		}
	}

	m := buildModel(t, paperspec.Combined)
	var facts strings.Builder
	if err := WriteFacts(&facts, m); err != nil {
		t.Fatal(err)
	}
	out := facts.String()
	for _, w := range []string{
		"instan('romano.cs.wisc.edu',snmpdReadOnly,'snmpdReadOnly@romano.cs.wisc.edu#0').",
		"contains('wisc-cs','romano.cs.wisc.edu').",
		"perm(public,'snmpdReadOnly@romano.cs.wisc.edu#0','mgmt.mib',readonly,300,ge).",
		"ref('snmpaddr@wisc-cs#0','snmpdReadOnly@romano.cs.wisc.edu#0','mgmt.mib.ip.ipAddrTable.IpAddrEntry',readonly,infrequent,ge).",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("missing derived fact %q in:\n%s", w, out)
		}
	}
}

func TestEstimateLoad(t *testing.T) {
	m := buildModel(t, freqSpec)
	rep := EstimateLoad(m, LoadOptions{})
	// poller queries agent every 60s -> 1/60 q/s at the agent
	rate := rep.InstanceRate["agent@host-a#0"]
	if rate < 0.016 || rate > 0.017 {
		t.Fatalf("rate %v", rate)
	}
	if got := rep.SystemRate["host-a"]; got != rate {
		t.Errorf("system rate %v", got)
	}
	if bits := rep.NetworkBits["lab"]; bits != rate*2048 {
		t.Errorf("network bits %v", bits)
	}
	if len(rep.Warnings) != 0 {
		t.Errorf("warnings: %v", rep.Warnings)
	}
	if !strings.Contains(rep.String(), "agent") {
		t.Error("report rendering")
	}
}

func TestEstimateLoadWarnings(t *testing.T) {
	// A 9600 bps serial line saturates immediately at one query per
	// second of 2048 bits.
	src := strings.Replace(freqSpec, "speed 10000000 bps", "speed 9600 bps", -1)
	src = strings.Replace(src, "frequency >= 1 minutes", "frequency >= 1 seconds", 1)
	src = strings.Replace(src, "frequency >= 5 minutes", "frequency >= 1 seconds", 1)
	m := buildModel(t, src)
	rep := EstimateLoad(m, LoadOptions{})
	found := false
	for _, w := range rep.Warnings {
		if strings.Contains(w, "management traffic") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected utilization warning, got %v", rep.Warnings)
	}
}

func TestEstimateLoadInfrequentAndDefault(t *testing.T) {
	src := strings.Replace(freqSpec, "frequency >= 1 minutes", "frequency infrequent", 1)
	m := buildModel(t, src)
	rep := EstimateLoad(m, LoadOptions{InfrequentPeriod: 100})
	if got := rep.InstanceRate["agent@host-a#0"]; got != 0.01 {
		t.Fatalf("infrequent rate %v", got)
	}
	src2 := strings.Replace(freqSpec, "\n        frequency >= 1 minutes", "", 1)
	m2 := buildModel(t, src2)
	rep2 := EstimateLoad(m2, LoadOptions{DefaultPeriod: 10})
	if got := rep2.InstanceRate["agent@host-a#0"]; got != 0.1 {
		t.Fatalf("default rate %v", got)
	}
}

package consistency

import (
	"path/filepath"
	"strings"
	"testing"
)

// twoClusterSpec holds two independent clusters (east and west), each
// with its own agent, poller and domain. Mutating one cluster's
// declarations must invalidate that cluster's reference fingerprints and
// leave the other's untouched.
const twoClusterSpec = `
process agentE ::=
    supports mgmt.mib;
    exports mgmt.mib to "east"
        access ReadOnly
        frequency >= 5 minutes;
end process agentE.

process pollerE ::=
    queries agentE
        requests mgmt.mib.system
        frequency >= 10 minutes;
end process pollerE.

system "host-e" ::=
    cpu sparc;
    interface ie0 net lab type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib;
    process agentE;
    process pollerE;
end system "host-e".

domain east ::=
    system host-e;
end domain east.

process agentW ::=
    supports mgmt.mib;
    exports mgmt.mib to "west"
        access ReadOnly
        frequency >= 5 minutes;
end process agentW.

process pollerW ::=
    queries agentW
        requests mgmt.mib.system
        frequency >= 10 minutes;
end process pollerW.

system "host-w" ::=
    cpu sparc;
    interface ie0 net lab type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib;
    process agentW;
    process pollerW;
end system "host-w".

domain west ::=
    system host-w;
end domain west.

domain public ::=
    domain east;
    domain west;
end domain public.
`

// fingerprints computes every reference's fingerprint, keyed by Ref.Key.
func fingerprints(m *Model) map[string][32]byte {
	c := NewChecker(m)
	var sc scratch
	out := map[string][32]byte{}
	for i := range m.Refs {
		r := &m.Refs[i]
		out[r.Key()] = c.fingerprint(r, &sc)
	}
	return out
}

// eastWestKeys splits the model's reference keys by cluster.
func eastWestKeys(m *Model) (east, west []string) {
	for i := range m.Refs {
		r := &m.Refs[i]
		if strings.Contains(r.Source.ID, "host-e") {
			east = append(east, r.Key())
		} else {
			west = append(west, r.Key())
		}
	}
	return
}

// TestFingerprintInvalidation mutates each model dimension the verdict
// depends on and asserts the fingerprint changes for exactly the
// affected cluster's references — no stale verdicts, no
// over-invalidation.
func TestFingerprintInvalidation(t *testing.T) {
	base := buildModel(t, twoClusterSpec)
	baseFP := fingerprints(base)
	east, west := eastWestKeys(base)
	if len(east) != 1 || len(west) != 1 {
		t.Fatalf("fixture refs: east %d, west %d", len(east), len(west))
	}

	cases := []struct {
		name string
		edit func(string) string
		// dirtyEast reports whether the east reference's fingerprint must
		// change; the west reference's must never change.
		dirtyEast bool
	}{
		{
			name: "perm access mode",
			edit: func(s string) string {
				return strings.Replace(s, "exports mgmt.mib to \"east\"\n        access ReadOnly",
					"exports mgmt.mib to \"east\"\n        access Any", 1)
			},
			dirtyEast: true,
		},
		{
			name: "perm frequency guarantee",
			edit: func(s string) string {
				return strings.Replace(s, "access ReadOnly\n        frequency >= 5 minutes;\nend process agentE",
					"access ReadOnly\n        frequency >= 30 minutes;\nend process agentE", 1)
			},
			dirtyEast: true,
		},
		{
			name: "domain membership",
			edit: func(s string) string {
				return strings.Replace(s, "domain east ::=\n    system host-e;",
					"domain east ::=", 1)
			},
			dirtyEast: true,
		},
		{
			name: "support view narrowed",
			edit: func(s string) string {
				return strings.Replace(s, "process agentE ::=\n    supports mgmt.mib;",
					"process agentE ::=\n    supports mgmt.mib.ip;", 1)
			},
			dirtyEast: true,
		},
		{
			name: "empty subdomain added",
			edit: func(s string) string {
				return s + "\ndomain spare ::=\nend domain spare.\n" +
					"\ndomain public2 ::=\n    domain spare;\nend domain public2.\n"
			},
			dirtyEast: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := tc.edit(twoClusterSpec)
			if src == twoClusterSpec {
				t.Fatal("edit did not apply")
			}
			m2 := buildModel(t, src)
			fp2 := fingerprints(m2)
			eastChanged := fp2[east[0]] != baseFP[east[0]]
			if eastChanged != tc.dirtyEast {
				t.Errorf("east fingerprint changed = %v, want %v", eastChanged, tc.dirtyEast)
			}
			if fp2[west[0]] != baseFP[west[0]] {
				t.Error("west fingerprint changed (over-invalidation)")
			}
			// The cached re-check must match a fresh check verbatim.
			cache := NewResultCache()
			c1 := NewChecker(base)
			c1.Cache = cache
			c1.Check()
			c2 := NewChecker(m2)
			c2.Cache = cache
			got := c2.Check()
			want := Check(m2)
			if got.String() != want.String() {
				t.Errorf("cached re-check diverges:\n got: %s\nwant: %s", got, want)
			}
			st := cache.Stats()
			wantInval := int64(0)
			if tc.dirtyEast {
				wantInval = 1
			}
			if st.Invalidations != wantInval {
				t.Errorf("invalidations = %d, want %d (stats %+v)", st.Invalidations, wantInval, st)
			}
			if wantHits := int64(len(base.Refs)) - wantInval; st.Hits != wantHits {
				t.Errorf("hits = %d, want %d (stats %+v)", st.Hits, wantHits, st)
			}
		})
	}
}

// TestCacheUnusedTypeNoInvalidation: a new type declaration extends the
// MIB elsewhere; every existing path is untouched, so a warm cache stays
// fully valid even though the delta layer conservatively forces a full
// re-check.
func TestCacheUnusedTypeNoInvalidation(t *testing.T) {
	src2 := twoClusterSpec + `
type SpareCounter ::=
    INTEGER;
    access ReadOnly;
end type SpareCounter.
`
	base := buildModel(t, twoClusterSpec)
	m2 := buildModel(t, src2)
	cache := NewResultCache()
	c1 := NewChecker(base)
	c1.Cache = cache
	c1.Check()
	c2 := NewChecker(m2)
	c2.Cache = cache
	if got, want := c2.Check().String(), Check(m2).String(); got != want {
		t.Fatalf("cached check diverges:\n got: %s\nwant: %s", got, want)
	}
	if st := cache.Stats(); st.Invalidations != 0 || st.Hits != int64(len(base.Refs)) {
		t.Errorf("stats %+v, want all hits and no invalidations", st)
	}
}

// TestCacheVerdictReplay: cached violations replay with identical kinds
// and messages.
func TestCacheVerdictReplay(t *testing.T) {
	m := buildModel(t, freqSpec)
	cache := NewResultCache()
	c1 := NewChecker(m)
	c1.Cache = cache
	first := c1.Check()
	if first.Consistent() {
		t.Fatal("fixture should be inconsistent")
	}
	c2 := NewChecker(m)
	c2.Cache = cache
	second := c2.Check()
	if first.String() != second.String() {
		t.Fatalf("replayed report diverges:\n got: %s\nwant: %s", second, first)
	}
	if st := cache.Stats(); st.Hits != int64(len(m.Refs)) {
		t.Errorf("stats %+v, want %d hits", st, len(m.Refs))
	}
}

// TestCacheSaveLoadRoundTrip persists a warm cache and reloads it.
func TestCacheSaveLoadRoundTrip(t *testing.T) {
	m := buildModel(t, freqSpec)
	cache := NewResultCache()
	c := NewChecker(m)
	c.Cache = cache
	want := c.Check().String()

	path := filepath.Join(t.TempDir(), "cache.json")
	if err := cache.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded := NewResultCache()
	if err := loaded.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != cache.Len() {
		t.Fatalf("loaded %d entries, want %d", loaded.Len(), cache.Len())
	}
	c2 := NewChecker(m)
	c2.Cache = loaded
	if got := c2.Check().String(); got != want {
		t.Fatalf("warm-start report diverges:\n got: %s\nwant: %s", got, want)
	}
	if st := loaded.Stats(); st.Hits != int64(len(m.Refs)) {
		t.Errorf("stats %+v, want all hits", st)
	}
	if err := loaded.LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading a missing file should error")
	}
}

// TestIndexHitCounter: every reference answered through the grantor
// indexes is counted; the DisableIndex ablation counts nothing.
func TestIndexHitCounter(t *testing.T) {
	m := buildModel(t, twoClusterSpec)
	c := NewChecker(m)
	c.Check()
	if got := c.IndexHits(); got != int64(len(m.Refs)) {
		t.Errorf("IndexHits = %d, want %d", got, len(m.Refs))
	}
	d := NewChecker(m)
	d.DisableIndex = true
	d.Check()
	if got := d.IndexHits(); got != 0 {
		t.Errorf("IndexHits under DisableIndex = %d, want 0", got)
	}
}

// TestCheckRefScratchNoAllocs: steady-state candidate lookups reuse the
// scratch buffer — zero allocations per reference on a consistent model.
func TestCheckRefScratchNoAllocs(t *testing.T) {
	m := buildModel(t, twoClusterSpec)
	c := NewChecker(m)
	var sc scratch
	var out []Violation
	ref := &m.Refs[0]
	allocs := testing.AllocsPerRun(100, func() {
		out = out[:0]
		c.checkRef(ref, &out, &sc)
	})
	if len(out) != 0 {
		t.Fatalf("fixture reference should be consistent: %v", out)
	}
	if allocs != 0 {
		t.Errorf("checkRef allocates %v per run, want 0", allocs)
	}
}

package consistency

import (
	"fmt"
	"path/filepath"
	"testing"
)

// fpOf builds a distinct fingerprint per index for direct cache tests.
func fpOf(i int) (fp [32]byte) {
	fp[0], fp[1] = byte(i), byte(i>>8)
	return
}

// TestLRUCapEvictsOldest fills a capped cache past its hysteresis
// threshold and asserts the least-recently-used entries go first.
func TestLRUCapEvictsOldest(t *testing.T) {
	rc := NewResultCache()
	rc.SetMaxEntries(8)
	for i := 0; i < 8; i++ {
		rc.store(fmt.Sprintf("k%02d", i), fpOf(i), nil)
	}
	// Touch the first four so the untouched k04..k07 become the LRU end.
	for i := 0; i < 4; i++ {
		if _, ok := rc.lookup(fmt.Sprintf("k%02d", i), fpOf(i)); !ok {
			t.Fatalf("k%02d should hit", i)
		}
	}
	// Two more stores stay within the 25%% hysteresis (10 <= 8+2)...
	rc.store("k08", fpOf(8), nil)
	rc.store("k09", fpOf(9), nil)
	if rc.Len() != 10 {
		t.Fatalf("hysteresis should defer the trim: len=%d", rc.Len())
	}
	// ...and the next one crosses it, trimming back to the cap.
	rc.store("k10", fpOf(10), nil)
	if rc.Len() != 8 {
		t.Fatalf("store past hysteresis should trim to cap: len=%d", rc.Len())
	}
	// The recently-touched entries survived; the untouched ones did not.
	for i := 0; i < 4; i++ {
		if _, ok := rc.lookup(fmt.Sprintf("k%02d", i), fpOf(i)); !ok {
			t.Errorf("recently-used k%02d was evicted", i)
		}
	}
	for i := 4; i < 7; i++ {
		if _, ok := rc.lookup(fmt.Sprintf("k%02d", i), fpOf(i)); ok {
			t.Errorf("LRU k%02d should have been evicted", i)
		}
	}
	if st := rc.Stats(); st.Evictions != 3 {
		t.Errorf("evictions = %d, want 3", st.Evictions)
	}
}

// TestSetMaxEntriesTrimsImmediately caps an already-overfull cache.
func TestSetMaxEntriesTrimsImmediately(t *testing.T) {
	rc := NewResultCache()
	for i := 0; i < 20; i++ {
		rc.store(fmt.Sprintf("k%02d", i), fpOf(i), nil)
	}
	rc.SetMaxEntries(5)
	if rc.Len() != 5 {
		t.Fatalf("len=%d after capping at 5", rc.Len())
	}
	// The five most recent stores are the survivors.
	for i := 15; i < 20; i++ {
		if _, ok := rc.lookup(fmt.Sprintf("k%02d", i), fpOf(i)); !ok {
			t.Errorf("most-recent k%02d was evicted", i)
		}
	}
}

// TestSaveFileEnforcesCap proves the persisted file never exceeds the
// cap and that a capped load trims an oversized file.
func TestSaveFileEnforcesCap(t *testing.T) {
	rc := NewResultCache()
	for i := 0; i < 12; i++ {
		rc.store(fmt.Sprintf("k%02d", i), fpOf(i), []cachedViolation{{Kind: KindFrequencyViolation, Message: "x"}})
	}
	path := filepath.Join(t.TempDir(), "cache.json")
	// Uncapped save keeps everything.
	if err := rc.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	big := NewResultCache()
	if err := big.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if big.Len() != 12 {
		t.Fatalf("uncapped round trip lost entries: len=%d", big.Len())
	}
	// Capped save trims first.
	rc.SetMaxEntries(4)
	if err := rc.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	small := NewResultCache()
	if err := small.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if small.Len() != 4 {
		t.Fatalf("capped save persisted %d entries, want 4", small.Len())
	}
	// A capped cache loading an oversized file trims on load.
	capped := NewResultCache()
	capped.SetMaxEntries(3)
	big2 := NewResultCache()
	for i := 0; i < 9; i++ {
		big2.store(fmt.Sprintf("b%02d", i), fpOf(i), nil)
	}
	if err := big2.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := capped.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if capped.Len() != 3 {
		t.Fatalf("capped load kept %d entries, want 3", capped.Len())
	}
}

// TestUncappedCacheNeverEvicts pins the default: no cap, no eviction.
func TestUncappedCacheNeverEvicts(t *testing.T) {
	rc := NewResultCache()
	for i := 0; i < 1000; i++ {
		rc.store(fmt.Sprintf("k%04d", i), fpOf(i), nil)
	}
	if rc.Len() != 1000 || rc.Trim() != 0 {
		t.Fatalf("uncapped cache evicted: len=%d", rc.Len())
	}
	if st := rc.Stats(); st.Evictions != 0 {
		t.Fatalf("evictions = %d, want 0", st.Evictions)
	}
}

package consistency

import (
	"fmt"
	"strings"
	"testing"
)

// clustersSpec generates n independent agent/poller clusters (the
// twoClusterSpec shape scaled), so the arena tests run over enough
// references that a per-reference allocation would dominate the
// measurement instead of hiding in fixed overhead.
func clustersSpec(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `
process agentC%[1]d ::=
    supports mgmt.mib;
    exports mgmt.mib to "c%[1]d"
        access ReadOnly
        frequency >= 5 minutes;
end process agentC%[1]d.

process pollerC%[1]d ::=
    queries agentC%[1]d
        requests mgmt.mib.system
        frequency >= 10 minutes;
end process pollerC%[1]d.

system "host-c%[1]d" ::=
    cpu sparc;
    interface ie0 net lab type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib;
    process agentC%[1]d;
    process pollerC%[1]d;
end system "host-c%[1]d".

domain c%[1]d ::=
    system host-c%[1]d;
end domain c%[1]d.
`, i)
	}
	b.WriteString("\ndomain publicroot ::=\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "    domain c%d;\n", i)
	}
	b.WriteString("end domain publicroot.\n")
	return b.String()
}

// testSteadyStateZeroAlloc drives the warm cached per-reference path
// exactly as CheckContext's workers do — per-worker scratch, per-worker
// staging buffer, contiguous ref shards — and asserts the steady state
// allocates nothing. The workers are pre-spawned and signalled over
// channels, so the measured region contains only the per-reference work.
func testSteadyStateZeroAlloc(t *testing.T, workers int) {
	t.Helper()
	m := buildModel(t, clustersSpec(24))
	if len(m.Refs) < workers {
		t.Fatalf("fixture too small: %d refs", len(m.Refs))
	}
	chk := NewChecker(m)
	chk.Cache = NewResultCache()
	if rep := chk.Check(); !rep.Consistent() {
		t.Fatalf("fixture should be consistent: %s", rep.Summary())
	}

	shards := shardRefs(m.Refs, workers)
	start := make([]chan struct{}, len(shards))
	done := make(chan struct{}, len(shards))
	stop := make(chan struct{})
	defer close(stop)
	for w := range shards {
		start[w] = make(chan struct{})
		go func(w int) {
			sc := &scratch{}
			var stage []Violation
			lo, hi := shards[w][0], shards[w][1]
			for {
				select {
				case <-stop:
					return
				case <-start[w]:
				}
				stage = stage[:0]
				for i := lo; i < hi; i++ {
					chk.checkRefWith(&m.Refs[i], &stage, sc)
				}
				if len(stage) != 0 {
					panic("consistent fixture produced violations")
				}
				done <- struct{}{}
			}
		}(w)
	}
	pass := func() {
		for w := range start {
			start[w] <- struct{}{}
		}
		for range start {
			<-done
		}
	}
	pass() // size every worker's scratch buffers
	allocs := testing.AllocsPerRun(20, pass)
	if allocs != 0 {
		t.Errorf("workers=%d: warm per-ref path allocates %v per pass, want 0", workers, allocs)
	}
}

// TestCheckSteadyStateZeroAlloc: the warm cached per-reference hot path
// is allocation-free at any worker count — the zero-alloc acceptance
// gate of the §1-scale work.
func TestCheckSteadyStateZeroAlloc(t *testing.T) {
	t.Run("workers=1", func(t *testing.T) { testSteadyStateZeroAlloc(t, 1) })
	t.Run("workers=8", func(t *testing.T) { testSteadyStateZeroAlloc(t, 8) })
}

// TestCheckDeltaWarmAllocsBounded: a clean-delta re-check allocates O(1)
// — the report, the delta sets and the scratch — never O(refs). The old
// implementation built a map entry per violating reference and a
// map-backed dirty set per call; the cursor replay and the reusable
// dirty bitset make the per-reference replay free.
func TestCheckDeltaWarmAllocsBounded(t *testing.T) {
	m := buildModel(t, clustersSpec(24))
	chk := NewChecker(m)
	prev := chk.Check()
	if !prev.Consistent() {
		t.Fatalf("fixture should be consistent: %s", prev.Summary())
	}
	delta := &ModelDelta{Instances: []string{m.Instances[0].ID}}
	rep := chk.CheckDelta(prev, delta) // size deltaBits, warm any cache
	if !rep.Consistent() {
		t.Fatalf("delta re-check should be consistent: %s", rep.Summary())
	}
	allocs := testing.AllocsPerRun(20, func() {
		prev = chk.CheckDelta(prev, delta)
	})
	// The budget is a fixed handful (report + delta sets + re-checked
	// ref's messages are cached as hits after the first pass); what
	// matters is that it does not scale with the model's 48 references.
	if allocs > 16 {
		t.Errorf("warm CheckDelta allocates %v per run, want O(1) (<= 16)", allocs)
	}
}

// TestSeedColumnsEquivalence: adopting the previous model's columnar
// tables on the DiffSpecs growth path yields byte-identical check
// results, for both an edit that keeps the containment relation (adopted
// ancestry runs) and one that touches a domain (fresh runs, shared
// domain-id table).
func TestSeedColumnsEquivalence(t *testing.T) {
	base := clustersSpec(8)
	edits := map[string]string{
		// Process-level change: containment untouched, ancestry adopted.
		"process": strings.Replace(base, `frequency >= 10 minutes;
end process pollerC3.`, `frequency >= 20 minutes;
end process pollerC3.`, 1),
		// Domain-level change: ancestry rebuilt, id table still shared.
		"domain": strings.Replace(base, `domain c5 ::=
    system host-c5;
end domain c5.`, `domain c5 ::=
    system host-c5;
    exports mgmt.mib to "publicroot"
        access ReadOnly
        frequency >= 1 minutes;
end domain c5.`, 1),
	}
	for name, edited := range edits {
		t.Run(name, func(t *testing.T) {
			if edited == base {
				t.Fatal("edit did not apply")
			}
			oldSpec, newSpec := buildSpec(t, base), buildSpec(t, edited)
			oldModel := BuildModel(oldSpec)
			NewChecker(oldModel).Check() // build old columns
			delta := DeltaFromSpecs(oldSpec, newSpec)

			seeded := BuildModel(newSpec)
			seeded.SeedColumnsFrom(oldModel, delta)
			if &seeded.columns().domName[0] != &oldModel.columns().domName[0] {
				t.Error("seeded columns did not adopt the domain-id table")
			}
			fresh := BuildModel(buildSpec(t, edited))

			got := NewChecker(seeded).Check()
			want := NewChecker(fresh).Check()
			if got.String() != want.String() {
				t.Errorf("seeded and fresh reports differ:\nseeded: %swant:   %s", got, want)
			}
			gotDelta := NewChecker(seeded).CheckDelta(NewChecker(oldModel).Check(), delta)
			if gotDelta.String() != want.String() {
				t.Errorf("seeded delta report differs:\ngot:  %swant: %s", gotDelta, want)
			}
		})
	}
}

package consistency

import "errors"

// Sentinel errors, wrapped (with %w) by the entry points that take
// caller-supplied names — AdmissiblePeriods, audit.Agent, audit.Interop
// and the nmsl facade — so callers can classify failures with
// errors.Is/errors.As instead of matching message strings.
var (
	// ErrUnknownInstance reports an instance ID that names no instance
	// of the specification.
	ErrUnknownInstance = errors.New("unknown instance")
	// ErrUnresolvedName reports a dotted MIB name (or other identifier)
	// that does not resolve in the specification.
	ErrUnresolvedName = errors.New("name does not resolve")
	// ErrNotAgent reports an instance that exists but is not an agent
	// (it exports nothing, so it has no prescriptive configuration).
	ErrNotAgent = errors.New("instance is not an agent")
)

package consistency

import (
	"context"
	"runtime"
	"strconv"
	"sync"
	"time"

	"nmsl/internal/logic"
	"nmsl/internal/obs"
)

// Parallel sharded checking. The paper's scale goals (section 1: 10,000
// domains, 100k-1M hosts) make the consistency check the dominant cost
// on large specifications. Every reference is verified independently —
// the check reads the model but never writes it — so the reference
// relation partitions cleanly: the refs are split into contiguous
// shards whose boundaries are aligned to target-instance runs (the
// references against one target share permission-index lookups), and a
// bounded worker pool checks shards concurrently. Shard results are
// merged in shard order, which by construction reproduces the serial
// checker's violation order byte for byte.

// Engine selects which evaluator CheckContext runs.
type Engine int

const (
	// EngineIndexed is the Go-side indexed checker (the fast path that
	// scales to the paper's 10,000-domain goal).
	EngineIndexed Engine = iota
	// EngineLogic proves each reference through the CLP(R)-style logic
	// engine (the paper's reference semantics; slower but independent).
	// Workers share the compiled fact/rule base — with the containment
	// and MIB closures materialized as fact tables — each with its own
	// solver.
	EngineLogic
	// EngineLogicRecursive is EngineLogic over the original recursive
	// transitivity rules (no materialized closures). It exists as the
	// parity oracle for the materialization; expect it to be much slower
	// on deep containment hierarchies.
	EngineLogicRecursive
)

// Options configure CheckContext. The zero value runs the indexed
// engine over a worker per CPU.
type Options struct {
	// Workers bounds the worker pool; <= 0 selects GOMAXPROCS.
	Workers int
	// Engine selects the evaluator.
	Engine Engine
	// OnViolation, when non-nil, is invoked for every violation as it
	// is found, before the Report is assembled. Invocations are
	// serialized, but their order across shards is scheduling-dependent;
	// only the returned Report's ordering is deterministic.
	OnViolation func(Violation)
	// FailFast stops scheduling further work once any violation has
	// been recorded. The Report then holds at least one violation but
	// is partial, and RefsChecked reflects the truncated scan.
	FailFast bool
	// DisableIndex forces full permission scans in the indexed engine
	// (the DESIGN.md ablation).
	DisableIndex bool
	// Cache, when non-nil, memoizes per-reference verdicts across runs
	// keyed by dependency fingerprints (indexed engine only; the logic
	// engines ignore it). Safe to share across concurrent checks.
	Cache *ResultCache
	// Metrics selects where the run's observability counters land: nil
	// records into obs.Default, obs.Disabled turns instrumentation off
	// (including its clock reads). The run's own numbers are embedded
	// in Report.Metrics either way, unless disabled.
	Metrics *obs.Registry
}

// engineName names the engine for span labels.
func engineName(e Engine) string {
	switch e {
	case EngineLogic:
		return "logic"
	case EngineLogicRecursive:
		return "logic-recursive"
	}
	return "indexed"
}

// shardsPerWorker oversubscribes shards so uneven shard costs (star
// targets, restriction-heavy domains) still balance across the pool.
const shardsPerWorker = 4

// cancelStride is how many references a worker checks between context
// polls.
const cancelStride = 32

// shardRefs partitions the ref index space [0, len(refs)) into at most
// nshards contiguous ranges. Boundaries are advanced to the end of the
// current target-instance run, so all references against one target
// stay in one shard (its permission neighborhood is checked together).
func shardRefs(refs []Ref, nshards int) [][2]int {
	n := len(refs)
	if n == 0 {
		return nil
	}
	if nshards < 1 {
		nshards = 1
	}
	if nshards > n {
		nshards = n
	}
	shards := make([][2]int, 0, nshards)
	start := 0
	for s := 1; s <= nshards && start < n; s++ {
		end := s * n / nshards
		if end <= start {
			continue
		}
		for end < n && refs[end].Target == refs[end-1].Target {
			end++
		}
		shards = append(shards, [2]int{start, end})
		start = end
	}
	return shards
}

// refChecker evaluates one reference, appending violations in rule
// order. Implementations must be safe for concurrent use by the worker
// that owns them over a read-only Model. The accompanying flush (from
// newWorker) folds the worker's batched counters into shared state and
// must be called once when the worker exits.
type refChecker func(ref *Ref, out *[]Violation)

// Metric names recorded by CheckContext. Durations are nanoseconds.
// Shard-granularity instrumentation keeps the per-reference hot loop
// free of clock reads and atomics; the observability tax is a handful
// of operations per shard (see the E-OBS row of EXPERIMENTS.md).
const (
	MetricCheckRuns          = "nmsl_check_runs_total"
	MetricCheckRefs          = "nmsl_check_refs_total"
	MetricCheckViolations    = "nmsl_check_violations_total"
	MetricCheckShards        = "nmsl_check_shards_total"
	MetricCheckWorkers       = "nmsl_check_workers"
	MetricCheckDuration      = "nmsl_check_duration_ns"
	MetricCheckShardDuration = "nmsl_check_shard_duration_ns"
	MetricCheckWorkerBusy    = "nmsl_check_worker_busy_ns"
)

// CheckContext runs the consistency check over a bounded worker pool,
// honoring ctx for cancellation and deadline. A completed run returns a
// Report byte-identical to the serial Check (or CheckLogic, under
// EngineLogic) regardless of worker count. When ctx is cancelled
// mid-check the partial Report accumulated so far is returned together
// with ctx.Err().
func CheckContext(ctx context.Context, m *Model, opts Options) (*Report, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep := &Report{Model: m}

	// Observability. Run-scoped metrics accumulate in a private
	// registry that is merged into the shared one (and snapshotted into
	// the Report) at the end, so overlapping checks never bleed into
	// each other's embedded numbers. When disabled, mon gates every
	// clock read below.
	reg := opts.Metrics
	if reg == nil {
		reg = obs.Default
	}
	mon := reg.Enabled()
	var run *obs.Registry
	var shardDur, workerBusy *obs.Histogram
	var shardsDone *obs.Counter
	var start time.Time
	// The label structs are only built when a sink is installed: on the
	// disabled path StartSpan with no varargs is a true no-op (no slice,
	// no allocation — guarded by TestStartSpanDisabledZeroAlloc).
	var sp obs.Span
	if obs.TracingEnabled() {
		sp = obs.StartSpan("check",
			obs.Label{Key: "engine", Value: engineName(opts.Engine)},
			obs.Label{Key: "workers", Value: strconv.Itoa(workers)})
	}
	var cs0 CacheStats
	if mon {
		start = time.Now()
		run = obs.NewRegistry()
		shardDur = run.Histogram(MetricCheckShardDuration)
		workerBusy = run.Histogram(MetricCheckWorkerBusy)
		shardsDone = run.Counter(MetricCheckShards)
		if opts.Cache != nil {
			cs0 = opts.Cache.Stats()
		}
	}
	defer func() {
		if !mon {
			sp.End()
			return
		}
		if opts.Cache != nil {
			cs1 := opts.Cache.Stats()
			run.Counter(MetricCheckCacheHits).Add(cs1.Hits - cs0.Hits)
			run.Counter(MetricCheckCacheMisses).Add(cs1.Misses - cs0.Misses)
			run.Counter(MetricCheckCacheInvalidations).Add(cs1.Invalidations - cs0.Invalidations)
		}
		run.Counter(MetricCheckRuns).Inc()
		run.Counter(MetricCheckRefs).Add(int64(rep.RefsChecked))
		run.Counter(MetricCheckViolations).Add(int64(len(rep.Violations)))
		run.Gauge(MetricCheckWorkers).Set(int64(workers))
		run.Histogram(MetricCheckDuration).Observe(int64(time.Since(start)))
		reg.Merge(run)
		rep.Metrics = run.Snapshot()
		if sp.Active() {
			sp.Label("refs", strconv.Itoa(rep.RefsChecked))
			sp.Label("violations", strconv.Itoa(len(rep.Violations)))
		}
		sp.End()
	}()

	// Per-engine worker construction. The indexed Checker is built once
	// and shared (read-only after construction); the logic engine
	// shares the fact/rule base and gives each worker a private solver.
	var chk *Checker
	var newWorker func() (refChecker, func())
	noFlush := func() {}
	switch opts.Engine {
	case EngineLogic, EngineLogicRecursive:
		var db *logic.DB
		if opts.Engine == EngineLogic {
			db = BuildDB(m)
		} else {
			db = BuildDBRecursive(m)
		}
		newWorker = func() (refChecker, func()) {
			s := logic.NewSolver(db)
			return func(ref *Ref, out *[]Violation) { logicCheckRef(m, s, ref, out) }, noFlush
		}
	default:
		chk = NewChecker(m)
		chk.DisableIndex = opts.DisableIndex
		chk.Cache = opts.Cache
		newWorker = func() (refChecker, func()) {
			sc := &scratch{}
			return func(ref *Ref, out *[]Violation) { chk.checkRefWith(ref, out, sc) },
				func() { chk.flush(sc) }
		}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// emit streams violations to the caller as they are found.
	var emitMu sync.Mutex
	emit := func(vs []Violation) {
		if opts.OnViolation == nil {
			return
		}
		emitMu.Lock()
		defer emitMu.Unlock()
		for _, v := range vs {
			opts.OnViolation(v)
		}
	}

	// Shards are cut from the requested worker count (so shard geometry —
	// and with it the merged report — is a pure function of the options),
	// but the pool itself never exceeds GOMAXPROCS: the check is CPU
	// bound, and goroutines beyond the core count only add scheduler
	// churn and cross-worker cache traffic.
	shards := shardRefs(m.Refs, workers*shardsPerWorker)
	results := make([][]Violation, len(shards))
	checked := make([]int, len(shards))
	pool := workers
	if mp := runtime.GOMAXPROCS(0); pool > mp {
		pool = mp
	}
	if pool > len(shards) {
		pool = len(shards)
	}

	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			checkRef, flush := newWorker()
			defer flush()
			// Shard-level observations accumulate in worker-local
			// instruments and merge into the run registry once when the
			// worker exits, so the shard loop shares no counter lines
			// with the other workers.
			var busy time.Duration
			var localShards int64
			var localDur *obs.Histogram
			if mon {
				localDur = obs.NewHistogram()
			}
			// stage is the worker's violation staging buffer, reused
			// across its shards (part of the per-worker arena): a clean
			// shard stages and retains nothing, and a violating shard
			// pays one exact-size copy instead of append regrowth into a
			// retained slice.
			var stage []Violation
			// Workers drain the channel even after cancellation (each
			// shard is then skipped immediately), so the feeder below
			// never blocks on an exited pool.
			for si := range work {
				lo, hi := shards[si][0], shards[si][1]
				var t0 time.Time
				if mon {
					t0 = time.Now()
				}
				ssp := obs.StartSpan("check.shard")
				stage = stage[:0]
				n := 0
				for i := lo; i < hi; i++ {
					if (i-lo)%cancelStride == 0 && runCtx.Err() != nil {
						break
					}
					before := len(stage)
					checkRef(&m.Refs[i], &stage)
					n++
					if len(stage) > before {
						emit(stage[before:])
						if opts.FailFast {
							cancel()
						}
					}
				}
				if len(stage) > 0 {
					vs := make([]Violation, len(stage))
					copy(vs, stage)
					results[si] = vs
				}
				checked[si] = n
				if mon {
					d := time.Since(t0)
					busy += d
					localDur.Observe(int64(d))
					localShards++
				}
				if ssp.Active() {
					ssp.Label("refs", strconv.Itoa(n))
				}
				ssp.End()
			}
			if mon {
				shardDur.Merge(localDur)
				shardsDone.Add(localShards)
				workerBusy.Observe(int64(busy))
			}
		}()
	}
	for si := range shards {
		work <- si
	}
	close(work)
	wg.Wait()

	// Merge in shard order: contiguous shards concatenated in order are
	// exactly the serial scan order.
	for si, vs := range results {
		rep.Violations = append(rep.Violations, vs...)
		rep.RefsChecked += checked[si]
	}
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	if opts.FailFast && len(rep.Violations) > 0 {
		return rep, nil
	}

	// Tail phase, serial and cheap: proxy relationships (indexed engine
	// only, matching the serial checkers) and unresolved targets.
	before := len(rep.Violations)
	if chk != nil {
		chk.checkProxies(&rep.Violations)
	}
	for i := range m.Unresolved {
		u := &m.Unresolved[i]
		rep.Violations = append(rep.Violations, unresolvedViolation(u))
	}
	emit(rep.Violations[before:])
	return rep, nil
}

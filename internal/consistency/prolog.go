package consistency

import (
	"fmt"
	"io"
	"strconv"

	"nmsl/internal/ast"
	"nmsl/internal/logic"
	"nmsl/internal/sema"
)

// This file implements the compiler side of the descriptive aspect: the
// output-specific actions tagged "consistency" (paper section 6.2,
// "requesting consistency output causes the actions tagged consistency to
// be executed, and Prolog rules to be generated"). The emitted statements
// are the per-declaration base facts; the Consistency Checker "adds some
// overall consistency requirements" — the rules WriteRules produces —
// before handing everything to the logic interpreter.

// OutputTag is the compiler output tag for consistency facts.
const OutputTag = "consistency"

func freqFact(f ast.Freq) (logic.Term, logic.Term) {
	if f.Infrequent {
		return logic.Atom("infrequent"), logic.Atom("ge")
	}
	op := logic.Atom("ge")
	if f.Op == ">" {
		op = logic.Atom("gt")
	}
	return logic.Float(f.MinPeriodSeconds()), op
}

func emitFact(e *sema.Emitter, functor string, args ...logic.Term) {
	e.Println(logic.Comp(functor, args...).String() + ".")
}

// RegisterOutput registers the "consistency" output actions for the basic
// declaration types into the compiler tables.
func RegisterOutput(t *sema.Tables) {
	t.AppendDecl(&sema.DeclEntry{
		Type: "type",
		Outputs: map[string]sema.OutputAction{
			OutputTag: func(ctx *sema.DeclContext, e *sema.Emitter) error {
				ts := ctx.Spec.Types[ctx.Decl.Name]
				if ts == nil {
					return nil
				}
				emitFact(e, "type_spec", logic.Atom(ts.Name))
				emitFact(e, "type_access", logic.Atom(ts.Name), accessAtom(ts.Access))
				for _, ref := range ts.Body.Refs(nil) {
					emitFact(e, "type_ref", logic.Atom(ts.Name), logic.Atom(ref))
				}
				return nil
			},
		},
	})
	t.AppendDecl(&sema.DeclEntry{
		Type: "process",
		Outputs: map[string]sema.OutputAction{
			OutputTag: func(ctx *sema.DeclContext, e *sema.Emitter) error {
				ps := ctx.Spec.Processes[ctx.Decl.Name]
				if ps == nil {
					return nil
				}
				name := logic.Atom(ps.Name)
				emitFact(e, "process_spec", name, logic.Int(int64(len(ps.Params))))
				for _, v := range ps.Supports {
					emitFact(e, "proc_supports", name, logic.Atom(v))
				}
				for _, ex := range ps.Exports {
					pt, op := freqFact(ex.Freq)
					for _, v := range ex.Vars {
						emitFact(e, "proc_export", name, logic.Atom(ex.To), logic.Atom(v), accessAtom(ex.Access), pt, op)
					}
				}
				for _, q := range ps.Queries {
					tfr, op := freqFact(q.Freq)
					for _, v := range q.Requests {
						emitFact(e, "proc_query", name, logic.Atom(q.Target), logic.Atom(v), accessAtom(q.Access), tfr, op)
					}
				}
				return nil
			},
		},
	})
	t.AppendDecl(&sema.DeclEntry{
		Type: "system",
		Outputs: map[string]sema.OutputAction{
			OutputTag: func(ctx *sema.DeclContext, e *sema.Emitter) error {
				ss := ctx.Spec.Systems[ctx.Decl.Name]
				if ss == nil {
					return nil
				}
				name := logic.Atom(ss.Name)
				emitFact(e, "system_spec", name, logic.Atom(ss.CPU))
				for _, ifc := range ss.Interfaces {
					emitFact(e, "sys_interface", name, logic.Atom(ifc.Name), logic.Atom(ifc.Net),
						logic.Atom(ifc.Type), logic.Int(ifc.SpeedBPS))
				}
				for _, v := range ss.Supports {
					emitFact(e, "sys_supports", name, logic.Atom(v))
				}
				for i, pi := range ss.Processes {
					emitFact(e, "sys_runs", name, logic.Atom(pi.Name), logic.Int(int64(i)))
				}
				return nil
			},
		},
	})
	t.AppendDecl(&sema.DeclEntry{
		Type: "domain",
		Outputs: map[string]sema.OutputAction{
			OutputTag: func(ctx *sema.DeclContext, e *sema.Emitter) error {
				ds := ctx.Spec.Domains[ctx.Decl.Name]
				if ds == nil {
					return nil
				}
				name := logic.Atom(ds.Name)
				emitFact(e, "domain_spec", name)
				for _, sys := range ds.Systems {
					emitFact(e, "dom_member_system", name, logic.Atom(sys))
				}
				for _, sub := range ds.Subdomains {
					emitFact(e, "dom_member_domain", name, logic.Atom(sub))
				}
				for i, pi := range ds.Processes {
					emitFact(e, "dom_instance", name, logic.Atom(pi.Name), logic.Int(int64(i)))
				}
				for _, ex := range ds.Exports {
					pt, op := freqFact(ex.Freq)
					for _, v := range ex.Vars {
						emitFact(e, "dom_export", name, logic.Atom(ex.To), logic.Atom(v), accessAtom(ex.Access), pt, op)
					}
				}
				return nil
			},
		},
	})
}

// WriteRules writes the "overall consistency requirements" the checker
// adds to the compiler's fact output: the derived relations of Figure 4.9
// and the transitivity/distribution/reduction rules, in executable
// Prolog/CLP(R) notation. Together with the compiler's consistency output
// this is a complete, human-readable rendering of what the checker
// evaluates.
func WriteRules(w io.Writer) error {
	_, err := io.WriteString(w, consistencyRules)
	return err
}

// consistencyRules is the rule text. The in-process checker evaluates the
// same relations through internal/logic (see BuildDB); this rendering
// exists so the compiler's output is complete and auditable, as in the
// paper's CLP(R) workflow.
const consistencyRules = `% --- NMSL consistency requirements (paper section 4.2, Figure 4.9) ---
% containment closure (transitivity rule)
contains_tr(X, Y) :- contains(X, Y).
contains_tr(X, Z) :- contains(X, Y), contains_tr(Y, Z).
covers(X, X).
covers(X, Y) :- contains_tr(X, Y).

% data containment over the MIB tree
data_covers(V, V).
data_covers(X, Y) :- mib_contains(X, Z), data_covers(Z, Y).

% access lattice
allows(any, _).
allows(readonly, readonly).  allows(readonly, none).
allows(writeonly, writeonly). allows(writeonly, none).
allows(none, none).

% frequency implication: a reference guaranteeing period >=(>) T
% satisfies a permission requiring period >=(>) PT
freq_ok(infrequent, _, _, _).
freq_ok(T, gt, PT, _)  :- T >= PT.
freq_ok(T, ge, PT, ge) :- T >= PT.
freq_ok(T, ge, PT, gt) :- T > PT.

% reduction rule: every reference must have a corresponding permission
permitted(Src, Tgt, Var, Acc, T, ROp) :-
    perm(G, Gr, PVar, PAcc, PT, POp),
    covers(Gr, Tgt), covers(G, Src),
    data_covers(PVar, Var), allows(PAcc, Acc),
    freq_ok(T, ROp, PT, POp).

% domain restriction: a domain containing the target but not the source
% that declares exports must itself grant a covering export
violates_restriction(Src, Tgt, Var, Acc, T, ROp) :-
    restricts(D), contains_tr(D, Tgt), \+ covers(D, Src),
    \+ ( dom_perm(D, G, PVar, PAcc, PT, POp),
         covers(G, Src), data_covers(PVar, Var),
         allows(PAcc, Acc), freq_ok(T, ROp, PT, POp) ).

% the proof performed is a proof of inconsistency (closed world)
inconsistent(Src, Tgt, Var, Acc, T, ROp) :-
    ref(Src, Tgt, Var, Acc, T, ROp),
    \+ permitted(Src, Tgt, Var, Acc, T, ROp).
inconsistent(Src, Tgt, Var, Acc, T, ROp) :-
    ref(Src, Tgt, Var, Acc, T, ROp),
    violates_restriction(Src, Tgt, Var, Acc, T, ROp).
`

// WriteFacts dumps the checker's derived fact base (the reduction of the
// specification to Figure 4.9 relations) as Prolog text. Unlike the
// compiler's per-declaration output this includes instance expansion.
func WriteFacts(w io.Writer, m *Model) error {
	write := func(functor string, args ...logic.Term) error {
		_, err := fmt.Fprintln(w, logic.Comp(functor, args...).String()+".")
		return err
	}
	for _, in := range m.Instances {
		host := in.System
		if host == "" {
			host = in.Domain
		}
		if err := write("instan", logic.Atom(host), logic.Atom(in.Proc.Name), logic.Atom(in.ID)); err != nil {
			return err
		}
		if err := write("contains", logic.Atom(host), logic.Atom(in.ID)); err != nil {
			return err
		}
	}
	for _, name := range m.Spec.DomainNames() {
		d := m.Spec.Domains[name]
		for _, sub := range d.Subdomains {
			if err := write("contains", logic.Atom(name), logic.Atom(sub)); err != nil {
				return err
			}
		}
		for _, sys := range d.Systems {
			if err := write("contains", logic.Atom(name), logic.Atom(sys)); err != nil {
				return err
			}
		}
	}
	for i := range m.Perms {
		p := &m.Perms[i]
		grantor := p.GrantorInst
		if grantor == "" {
			grantor = p.GrantorDomain
		}
		op := logic.Atom("ge")
		if p.Strict {
			op = logic.Atom("gt")
		}
		if err := write("perm", logic.Atom(p.Grantee), logic.Atom(grantor),
			logic.Atom(p.Var.Path()), accessAtom(p.Access),
			logic.Float(p.MinPeriod), op); err != nil {
			return err
		}
	}
	for i := range m.Refs {
		r := &m.Refs[i]
		tfr, op := freqTerms(r.guarantee())
		if err := write("ref", logic.Atom(r.Source.ID), logic.Atom(r.Target.ID),
			logic.Atom(r.Var.Path()), accessAtom(r.Access), tfr, op); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%% %s derived facts\n", strconv.Itoa(len(m.Refs)+len(m.Perms)))
	return err
}

// Package consistency implements the NMSL Consistency Checker (paper
// section 4.2).
//
// The checker decides whether a specification is consistent: "for every
// data reference in the specification, there is a corresponding
// permission. Resource and timing requirements are included in the
// specification of references and permissions." It works over the six
// relationships of Figure 4.9 — containment, instantiation, two reference
// relations and two permission relations — reduced by transitivity,
// distribution and reduction rules.
//
// Two equivalent evaluators are provided:
//
//   - CheckLogic proves each reference through the CLP(R)-style engine
//     (internal/logic) against a fact/rule base compiled from the
//     specification, exactly as the paper's front-end-to-CLP(R) design
//     describes;
//   - Check evaluates the same relations with Go-side indexes (permissions
//     indexed by grantor), which is what lets the checker scale to the
//     paper's 10,000-domain goal.
//
// Tests cross-validate the two on generated specifications.
//
// Consistency semantics (documented in DESIGN.md):
//
//  1. Permission: a reference is permitted iff some permission's grantee
//     contains (or is) the referencing party, its grantor contains (or
//     is) the target, its data subtree contains the referenced data, its
//     access mode allows the reference's mode, and the reference's
//     guaranteed period implies the permission's required period.
//  2. Restriction: the paper notes domain exports "can also further
//     restrict how other domains may access the members" — every domain
//     that contains the target but not the source and declares exports
//     must itself grant a covering permission.
//  3. Support: the target instance must actually support the referenced
//     data (the intersection of its process view and, when instantiated
//     on a network element, that element's view).
package consistency

import (
	"fmt"
	"sort"
	"sync"

	"nmsl/internal/ast"
	"nmsl/internal/mib"
)

// Instance is one instantiation of a process type on a network element or
// in a domain (the paper's instan relation, Figure 4.9: "X instantiates Y
// with unique ID Z").
type Instance struct {
	// ID is the unique instance identifier, e.g.
	// "snmpdReadOnly@romano.cs.wisc.edu#0".
	ID string
	// Proc is the instantiated process type.
	Proc *ast.ProcessSpec
	// System is the hosting network element, or "" when the instance is
	// declared directly in a domain.
	System string
	// Domain is the hosting domain for domain-declared instances.
	Domain string
	// Args are the instantiation arguments ("*" entries are late-bound).
	Args []ast.Arg

	// idx is the instance's dense index into Model.Instances, assigned
	// by addInstance; the columnar tables (columns.go) are keyed by it.
	idx int32
}

// Hosted returns where the instance runs, for diagnostics.
func (in *Instance) Hosted() string {
	if in.System != "" {
		return "system " + in.System
	}
	return "domain " + in.Domain
}

// Perm is one permission (perm_eq/perm_gt of Figure 4.9): the grantee
// party may reference the grantor's data.
type Perm struct {
	// Grantee is the domain the permission is granted to.
	Grantee string
	// GrantorInst is the granting instance's ID (process-level exports),
	// or "".
	GrantorInst string
	// GrantorDomain is the granting domain (domain-level exports), or "".
	GrantorDomain string
	// DeclaredBy describes the declaration for diagnostics.
	DeclaredBy string
	// Var is the exported MIB subtree.
	Var *mib.Node
	// Access is the granted access mode.
	Access mib.Access
	// MinPeriod is the required minimum seconds between queries; Strict
	// marks a ">" (rather than ">=") bound. Zero means unconstrained.
	MinPeriod float64
	Strict    bool
}

// String renders the permission for diagnostics.
func (p Perm) String() string {
	grantor := p.GrantorDomain
	if grantor == "" {
		grantor = p.GrantorInst
	}
	op := ">="
	if p.Strict {
		op = ">"
	}
	return fmt.Sprintf("perm(%s -> %s, %s, %s, period %s %gs)",
		p.Grantee, grantor, p.Var.Path(), p.Access, op, p.MinPeriod)
}

// TargetResolution records how a reference's target was found.
type TargetResolution string

// Target resolution modes.
const (
	// TargetNamed means the query names a process type directly.
	TargetNamed TargetResolution = "named"
	// TargetArg means a Process parameter was bound at instantiation.
	TargetArg TargetResolution = "argument"
	// TargetStar means the parameter is late-bound ("*"): the reference
	// is possible against any capable agent, so every candidate is
	// checked (the paper's ref_eq: "it is possible that X references Y").
	TargetStar TargetResolution = "late-bound"
)

// Ref is one reference (ref_eq/ref_gt of Figure 4.9): a possible
// interaction from a source instance to data on a target instance.
type Ref struct {
	Source *Instance
	Target *Instance
	// Var is the referenced MIB node.
	Var *mib.Node
	// Access is the access mode the reference needs.
	Access mib.Access
	// Freq is the reference's declared frequency.
	Freq ast.Freq
	// Resolution records how Target was chosen.
	Resolution TargetResolution
}

// String renders the reference for diagnostics.
func (r Ref) String() string {
	return fmt.Sprintf("ref(%s -> %s, %s, %s, frequency %s)",
		r.Source.ID, r.Target.ID, r.Var.Path(), r.Access, r.Freq)
}

// guarantee returns the reference's guaranteed minimum period and
// strictness; infrequent references guarantee "rare" and satisfy any
// permission period.
func (r Ref) guarantee() (minPeriod float64, strict, infrequent bool) {
	if r.Freq.Infrequent {
		return 0, false, true
	}
	return r.Freq.MinPeriodSeconds(), r.Freq.Op == ">", false
}

// freqImplies reports whether a reference guarantee (period ⊵ t) implies
// a permission requirement (period ⊵ pt).
func freqImplies(t float64, strict bool, infrequent bool, pt float64, pstrict bool) bool {
	if infrequent {
		return true
	}
	if t > pt {
		return true
	}
	if t == pt {
		return strict || !pstrict
	}
	return false
}

// Model is the checkable view of a specification: every instance,
// reference and permission, plus containment closures.
type Model struct {
	Spec      *ast.Spec
	Instances []*Instance
	Perms     []Perm
	Refs      []Ref
	// Unresolved records query targets that could not be resolved to any
	// instance (e.g. an argument naming nothing, or a late-bound target
	// with no capable agent).
	Unresolved []UnresolvedTarget
	// Proxies are the proxy relationships declared through the proxies
	// extension clause (section 3.1).
	Proxies []Proxy

	// domainUp maps a domain to every domain containing it (transitive,
	// exclusive).
	domainUp map[string][]string
	// systemDomains maps a system name to the domains that list it
	// directly as a member.
	systemDomains map[string][]string
	// partyDomains maps an instance ID (and each system name) to the set
	// of domains containing it, transitively.
	partyDomains map[string]map[string]bool
	byProc       map[string][]*Instance
	bySystem     map[string][]*Instance
	byID         map[string]*Instance

	// closOnce/clos lazily materialize the containment closures shared by
	// the logic DB compiler and the result-cache fingerprints
	// (closures.go); the model itself is read-only after BuildModel.
	closOnce sync.Once
	clos     *closures
	// colsOnce/cols lazily build the columnar interned tables the hot
	// check path runs over (columns.go); immutable once built.
	colsOnce sync.Once
	cols     *columns
	// varCache memoizes MIB name resolution (Tree.LookupSuffix splits the
	// path on every call); the same few view patterns resolve on every
	// reference, so the check's steady state stays allocation-free.
	varCache sync.Map
}

// UnresolvedTarget describes a query whose target resolved to nothing.
type UnresolvedTarget struct {
	Source *Instance
	Query  *ast.Query
	Reason string
}

// BuildModel extracts the consistency model from a linked specification.
func BuildModel(spec *ast.Spec) *Model {
	m := &Model{
		Spec:          spec,
		domainUp:      map[string][]string{},
		systemDomains: map[string][]string{},
		partyDomains:  map[string]map[string]bool{},
		byProc:        map[string][]*Instance{},
		bySystem:      map[string][]*Instance{},
		byID:          map[string]*Instance{},
	}
	m.buildDomainClosure()
	m.buildInstances()
	m.buildPerms()
	m.buildRefs()
	m.buildProxies()
	return m
}

// buildDomainClosure computes, for every domain, the set of domains that
// contain it (the contains transitive closure of Figure 4.9, restricted
// to domains).
func (m *Model) buildDomainClosure() {
	parents := map[string][]string{}
	for _, name := range m.Spec.DomainNames() {
		for _, sub := range m.Spec.Domains[name].Subdomains {
			parents[sub] = append(parents[sub], name)
		}
	}
	var up func(name string, seen map[string]bool)
	up = func(name string, seen map[string]bool) {
		for _, p := range parents[name] {
			if !seen[p] {
				seen[p] = true
				up(p, seen)
			}
		}
	}
	for _, name := range m.Spec.DomainNames() {
		seen := map[string]bool{}
		up(name, seen)
		var list []string
		for d := range seen {
			list = append(list, d)
		}
		sort.Strings(list)
		m.domainUp[name] = list
		for _, sys := range m.Spec.Domains[name].Systems {
			m.systemDomains[sys] = append(m.systemDomains[sys], name)
		}
	}
}

// domainsOfParty returns the up-closed set of domains containing a party
// (an instance hosted on a system or in a domain).
func (m *Model) domainsOfParty(hostSystem, hostDomain string) map[string]bool {
	set := map[string]bool{}
	addDomain := func(d string) {
		if set[d] {
			return
		}
		set[d] = true
		for _, upd := range m.domainUp[d] {
			set[upd] = true
		}
	}
	if hostDomain != "" {
		addDomain(hostDomain)
	}
	if hostSystem != "" {
		for _, name := range m.systemDomains[hostSystem] {
			addDomain(name)
		}
	}
	return set
}

func (m *Model) addInstance(in *Instance) {
	in.idx = int32(len(m.Instances))
	m.Instances = append(m.Instances, in)
	m.byProc[in.Proc.Name] = append(m.byProc[in.Proc.Name], in)
	if in.System != "" {
		m.bySystem[in.System] = append(m.bySystem[in.System], in)
	}
	m.byID[in.ID] = in
	m.partyDomains[in.ID] = m.domainsOfParty(in.System, in.Domain)
}

func (m *Model) buildInstances() {
	for _, sysName := range m.Spec.SystemNames() {
		ss := m.Spec.Systems[sysName]
		for i, pi := range ss.Processes {
			proc := m.Spec.Processes[pi.Name]
			if proc == nil {
				continue // linker already reported
			}
			m.addInstance(&Instance{
				ID:     fmt.Sprintf("%s@%s#%d", pi.Name, sysName, i),
				Proc:   proc,
				System: sysName,
				Args:   pi.Args,
			})
		}
	}
	for _, domName := range m.Spec.DomainNames() {
		ds := m.Spec.Domains[domName]
		for i, pi := range ds.Processes {
			proc := m.Spec.Processes[pi.Name]
			if proc == nil {
				continue
			}
			m.addInstance(&Instance{
				ID:     fmt.Sprintf("%s@%s#%d", pi.Name, domName, i),
				Proc:   proc,
				Domain: domName,
				Args:   pi.Args,
			})
		}
	}
}

// resolveVar resolves a dotted MIB name, which linking already validated.
// Resolutions are memoized (the MIB is immutable after linking).
func (m *Model) resolveVar(path string) *mib.Node {
	if v, ok := m.varCache.Load(path); ok {
		return v.(*mib.Node)
	}
	n := m.Spec.MIB.LookupSuffix(path)
	m.varCache.Store(path, n)
	return n
}

func permFromExport(ex ast.Export, node *mib.Node) (minPeriod float64, strict bool) {
	return ex.Freq.MinPeriodSeconds(), ex.Freq.Op == ">"
}

func (m *Model) buildPerms() {
	// Process-level exports: every instance of the type grants them.
	for _, procName := range m.Spec.ProcessNames() {
		ps := m.Spec.Processes[procName]
		for _, ex := range ps.Exports {
			for _, v := range ex.Vars {
				node := m.resolveVar(v)
				if node == nil {
					continue
				}
				minP, strict := permFromExport(ex, node)
				for _, in := range m.byProc[procName] {
					m.Perms = append(m.Perms, Perm{
						Grantee:     ex.To,
						GrantorInst: in.ID,
						DeclaredBy:  "process " + procName,
						Var:         node,
						Access:      ex.Access,
						MinPeriod:   minP,
						Strict:      strict,
					})
				}
			}
		}
	}
	// Domain-level exports.
	for _, domName := range m.Spec.DomainNames() {
		ds := m.Spec.Domains[domName]
		for _, ex := range ds.Exports {
			for _, v := range ex.Vars {
				node := m.resolveVar(v)
				if node == nil {
					continue
				}
				minP, strict := permFromExport(ex, node)
				m.Perms = append(m.Perms, Perm{
					Grantee:       ex.To,
					GrantorDomain: domName,
					DeclaredBy:    "domain " + domName,
					Var:           node,
					Access:        ex.Access,
					MinPeriod:     minP,
					Strict:        strict,
				})
			}
		}
	}
}

// effectiveSupports reports whether instance in supports data at node:
// the process view must cover it, and for system-hosted instances the
// element's view must cover it too (section 4.1.4: the element lists the
// MIB portion its hardware and OS support).
func (m *Model) effectiveSupports(in *Instance, node *mib.Node) bool {
	if !m.viewCovers(in.Proc.Supports, node) {
		return false
	}
	if in.System != "" {
		ss := m.Spec.Systems[in.System]
		if ss != nil && !m.viewCovers(ss.Supports, node) {
			return false
		}
	}
	return true
}

func (m *Model) viewCovers(view []string, node *mib.Node) bool {
	for _, v := range view {
		if vn := m.resolveVar(v); vn != nil && vn.Contains(node) {
			return true
		}
	}
	return false
}

// resolveTargets returns the candidate target instances of a query made
// by instance in.
func (m *Model) resolveTargets(in *Instance, q *ast.Query) ([]*Instance, TargetResolution, string) {
	// Direct process-type name.
	if _, ok := m.Spec.Processes[q.Target]; ok {
		if insts := m.byProc[q.Target]; len(insts) > 0 {
			return insts, TargetNamed, ""
		}
		return nil, TargetNamed, fmt.Sprintf("process %s is never instantiated", q.Target)
	}
	// Formal parameter.
	pidx := -1
	for i := range in.Proc.Params {
		if in.Proc.Params[i].Name == q.Target {
			pidx = i
		}
	}
	if pidx < 0 {
		return nil, TargetNamed, fmt.Sprintf("query target %q is neither a process nor a parameter", q.Target)
	}
	var arg ast.Arg
	if pidx < len(in.Args) {
		arg = in.Args[pidx]
	} else {
		arg = ast.Arg{Kind: ast.ArgStar}
	}
	switch arg.Kind {
	case ast.ArgStar:
		// Late-bound: any agent able to serve every requested variable.
		var cands []*Instance
		for _, cand := range m.Instances {
			if cand == in || !cand.Proc.IsAgent() {
				continue
			}
			all := true
			for _, rv := range q.Requests {
				node := m.resolveVar(rv)
				if node == nil || !m.effectiveSupports(cand, node) {
					all = false
					break
				}
			}
			if all {
				cands = append(cands, cand)
			}
		}
		if len(cands) == 0 {
			return nil, TargetStar, "no agent instance supports the requested data"
		}
		return cands, TargetStar, ""
	case ast.ArgString, ast.ArgWord:
		// A system name: agents on that system. A process name: its
		// instances.
		if insts := m.bySystem[arg.Text]; len(insts) > 0 {
			var agents []*Instance
			for _, cand := range insts {
				if cand.Proc.IsAgent() {
					agents = append(agents, cand)
				}
			}
			if len(agents) > 0 {
				return agents, TargetArg, ""
			}
			return nil, TargetArg, fmt.Sprintf("system %s runs no agent process", arg.Text)
		}
		if insts := m.byProc[arg.Text]; len(insts) > 0 {
			return insts, TargetArg, ""
		}
		return nil, TargetArg, fmt.Sprintf("argument %q names no system or process", arg.Text)
	default:
		return nil, TargetArg, fmt.Sprintf("argument %s cannot identify a query target", arg)
	}
}

func (m *Model) buildRefs() {
	for _, in := range m.Instances {
		for qi := range in.Proc.Queries {
			q := &in.Proc.Queries[qi]
			targets, res, failure := m.resolveTargets(in, q)
			if failure != "" {
				m.Unresolved = append(m.Unresolved, UnresolvedTarget{Source: in, Query: q, Reason: failure})
				continue
			}
			for _, tgt := range targets {
				for _, rv := range q.Requests {
					node := m.resolveVar(rv)
					if node == nil {
						continue
					}
					m.Refs = append(m.Refs, Ref{
						Source:     in,
						Target:     tgt,
						Var:        node,
						Access:     q.Access,
						Freq:       q.Freq,
						Resolution: res,
					})
				}
			}
		}
	}
}

// InstanceByID returns the instance with the given ID, or nil.
func (m *Model) InstanceByID(id string) *Instance { return m.byID[id] }

// PartyDomains returns the sorted set of domains containing the party
// (instance ID), transitively.
func (m *Model) PartyDomains(instID string) []string {
	set := m.partyDomains[instID]
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// PartyInDomain reports whether the party (instance ID) is contained in
// the domain, transitively.
func (m *Model) PartyInDomain(instID, domain string) bool {
	return m.partyInDomain(instID, domain)
}

// GrantedCommunity returns the identity (grantee domain) a reference's
// source should present to its target: a domain containing the source
// whose permission covers the target, data and access mode. It returns ""
// when no permission applies — which the consistency check rules out for
// consistent specifications. When several grantees qualify the
// lexicographically first is returned, so callers are deterministic.
func (m *Model) GrantedCommunity(ref *Ref) string {
	best := ""
	for i := range m.Perms {
		p := &m.Perms[i]
		if p.GrantorInst != "" && p.GrantorInst != ref.Target.ID {
			continue
		}
		if p.GrantorDomain != "" && !m.partyInDomain(ref.Target.ID, p.GrantorDomain) {
			continue
		}
		if !m.partyInDomain(ref.Source.ID, p.Grantee) {
			continue
		}
		if !p.Var.Contains(ref.Var) || !p.Access.Allows(ref.Access) {
			continue
		}
		if best == "" || p.Grantee < best {
			best = p.Grantee
		}
	}
	return best
}

// DomainContains reports whether outer contains inner (or equals it).
func (m *Model) DomainContains(outer, inner string) bool {
	return m.domainContainsDomain(outer, inner)
}

// Restricts reports whether the domain declares exports (and therefore
// restricts outside access to its members).
func (m *Model) Restricts(dom string) bool { return m.restrictingDomain(dom) }

// partyInDomain reports whether the party (instance ID) is contained in
// the domain, transitively.
func (m *Model) partyInDomain(instID, domain string) bool {
	return m.partyDomains[instID][domain]
}

// domainContainsDomain reports whether outer contains inner (strictly or
// equal).
func (m *Model) domainContainsDomain(outer, inner string) bool {
	if outer == inner {
		return true
	}
	for _, d := range m.domainUp[inner] {
		if d == outer {
			return true
		}
	}
	return false
}

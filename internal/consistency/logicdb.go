package consistency

import (
	"fmt"

	"nmsl/internal/logic"
	"nmsl/internal/mib"
)

// accessAtom maps access modes to logic atoms.
func accessAtom(a mib.Access) logic.Term {
	switch a {
	case mib.AccessAny:
		return logic.Atom("any")
	case mib.AccessReadOnly:
		return logic.Atom("readonly")
	case mib.AccessWriteOnly:
		return logic.Atom("writeonly")
	case mib.AccessNone:
		return logic.Atom("none")
	}
	return logic.Atom("unspecified")
}

// freqTerms encodes a reference guarantee as (T, ROp) terms.
func freqTerms(minPeriod float64, strict, infrequent bool) (logic.Term, logic.Term) {
	if infrequent {
		return logic.Atom("infrequent"), logic.Atom("ge")
	}
	op := logic.Atom("ge")
	if strict {
		op = logic.Atom("gt")
	}
	return logic.Float(minPeriod), op
}

// BuildDB compiles the model into the logic fact/rule base the paper's
// Consistency Checker hands to CLP(R): the Figure 4.9 relations as facts,
// plus the distribution and reduction rules of section 4.2. The recursive
// transitivity rules are pre-evaluated: the containment and MIB-covering
// closures are materialized bottom-up (closures.go) and asserted as
// indexed fact tables, so covers/contains_tr/data_covers goals resolve by
// hash lookup instead of recursive search. BuildDBRecursive keeps the
// original recursive rule base as the parity oracle.
func BuildDB(m *Model) *logic.DB { return buildDB(m, true) }

// BuildDBRecursive compiles the model with the paper's recursive
// transitivity rules instead of materialized closure tables. It proves
// exactly the same relations as BuildDB (property-tested on random
// graphs) and exists as the independent oracle behind
// EngineLogicRecursive.
func BuildDBRecursive(m *Model) *logic.DB { return buildDB(m, false) }

func buildDB(m *Model, materialize bool) *logic.DB {
	db := logic.NewDB()

	// contains/2 facts: administrative containment.
	for _, name := range m.Spec.DomainNames() {
		d := m.Spec.Domains[name]
		for _, sub := range d.Subdomains {
			db.Assert(logic.Comp("contains", logic.Atom(name), logic.Atom(sub)))
		}
		for _, sys := range d.Systems {
			db.Assert(logic.Comp("contains", logic.Atom(name), logic.Atom(sys)))
		}
	}
	for _, in := range m.Instances {
		host := in.System
		if host == "" {
			host = in.Domain
		}
		db.Assert(logic.Comp("contains", logic.Atom(host), logic.Atom(in.ID)))
		// instan(Host, ProcType, InstanceID) — Figure 4.9.
		db.Assert(logic.Comp("instan", logic.Atom(host), logic.Atom(in.Proc.Name), logic.Atom(in.ID)))
	}

	// contains_tr and covers: the transitive (and, for covers, reflexive)
	// containment closure. Materialized: asserted as ground fact tables
	// from the semi-naive closure; recursive: the paper's transitivity
	// rules, evaluated top-down per query.
	if materialize {
		cl := m.closures()
		// covers is reflexive over every party a permission or containment
		// edge can name — the recursive covers(A, A) clause restricted to
		// the constants that can actually reach it.
		for _, x := range cl.universe {
			db.Assert(logic.Comp("covers", logic.Atom(x), logic.Atom(x)))
		}
		for _, x := range cl.order {
			for _, y := range cl.downSorted[x] {
				db.Assert(logic.Comp("contains_tr", logic.Atom(x), logic.Atom(y)))
				db.Assert(logic.Comp("covers", logic.Atom(x), logic.Atom(y)))
			}
		}
	} else {
		X, Y := logic.NewVar("X"), logic.NewVar("Y")
		db.Assert(logic.Comp("contains_tr", X, Y), logic.Call(logic.Comp("contains", X, Y)))
		X2, Y2, Z2 := logic.NewVar("X"), logic.NewVar("Y"), logic.NewVar("Z")
		db.Assert(logic.Comp("contains_tr", X2, Z2),
			logic.Call(logic.Comp("contains", X2, Y2)),
			logic.Call(logic.Comp("contains_tr", Y2, Z2)))
		// covers: reflexive containment, used by the distribution rules
		// (a permission to a domain distributes to everything it
		// contains).
		A := logic.NewVar("A")
		db.Assert(logic.Comp("covers", A, A))
		B, C := logic.NewVar("B"), logic.NewVar("C")
		db.Assert(logic.Comp("covers", B, C), logic.Call(logic.Comp("contains_tr", B, C)))
	}

	// MIB tree edges and the data-covering closure. A MIB path names its
	// whole ancestor chain, so the closure of the tree is every
	// (ancestor-or-self, node) pair — O(nodes × depth) facts.
	for _, root := range m.Spec.MIB.Roots() {
		var walk func(n *mib.Node)
		walk = func(n *mib.Node) {
			for _, c := range n.Children() {
				db.Assert(logic.Comp("mib_contains", logic.Atom(n.Path()), logic.Atom(c.Path())))
				walk(c)
			}
		}
		walk(root)
	}
	if materialize {
		for _, root := range m.Spec.MIB.Roots() {
			var walk func(n *mib.Node, anc []logic.Term)
			walk = func(n *mib.Node, anc []logic.Term) {
				self := logic.Atom(n.Path())
				anc = append(anc, self)
				for _, a := range anc {
					db.Assert(logic.Comp("data_covers", a, self))
				}
				for _, c := range n.Children() {
					walk(c, anc)
				}
			}
			walk(root, nil)
		}
	} else {
		V := logic.NewVar("V")
		db.Assert(logic.Comp("data_covers", V, V))
		X, Y, Z := logic.NewVar("X"), logic.NewVar("Y"), logic.NewVar("Z")
		db.Assert(logic.Comp("data_covers", X, Y),
			logic.Call(logic.Comp("mib_contains", X, Z)),
			logic.Call(logic.Comp("data_covers", Z, Y)))
	}

	// Access lattice.
	for _, pair := range [][2]string{
		{"any", "any"}, {"any", "readonly"}, {"any", "writeonly"}, {"any", "none"},
		{"readonly", "readonly"}, {"readonly", "none"},
		{"writeonly", "writeonly"}, {"writeonly", "none"},
		{"none", "none"},
	} {
		db.Assert(logic.Comp("allows", logic.Atom(pair[0]), logic.Atom(pair[1])))
	}

	// Frequency implication rules: a reference guaranteeing period ⊵ T
	// satisfies a permission requiring period ⊵ PT.
	{
		a1, a2, a3 := logic.NewVar("A"), logic.NewVar("B"), logic.NewVar("C")
		db.Assert(logic.Comp("freq_ok", logic.Atom("infrequent"), a1, a2, a3))
		T, PT, POp := logic.NewVar("T"), logic.NewVar("PT"), logic.NewVar("POp")
		db.Assert(logic.Comp("freq_ok", T, logic.Atom("gt"), PT, POp), logic.Con(T, ">=", PT))
		T2, PT2 := logic.NewVar("T"), logic.NewVar("PT")
		db.Assert(logic.Comp("freq_ok", T2, logic.Atom("ge"), PT2, logic.Atom("ge")), logic.Con(T2, ">=", PT2))
		T3, PT3 := logic.NewVar("T"), logic.NewVar("PT")
		db.Assert(logic.Comp("freq_ok", T3, logic.Atom("ge"), PT3, logic.Atom("gt")), logic.Con(T3, ">", PT3))
	}

	// perm/6 and dom_perm/6 facts.
	for i := range m.Perms {
		p := &m.Perms[i]
		grantor := p.GrantorInst
		if grantor == "" {
			grantor = p.GrantorDomain
		}
		pop := logic.Atom("ge")
		if p.Strict {
			pop = logic.Atom("gt")
		}
		args := []logic.Term{
			logic.Atom(p.Grantee), logic.Atom(grantor), logic.Atom(p.Var.Path()),
			accessAtom(p.Access), logic.Float(p.MinPeriod), pop,
		}
		db.Assert(logic.Comp("perm", args...))
		if p.GrantorDomain != "" {
			// dom_perm is keyed by the declaring domain so restriction
			// checks index on it: dom_perm(D, Grantee, Var, Acc, PT, POp).
			db.Assert(logic.Comp("dom_perm",
				logic.Atom(p.GrantorDomain), logic.Atom(p.Grantee), logic.Atom(p.Var.Path()),
				accessAtom(p.Access), logic.Float(p.MinPeriod), pop))
			db.Assert(logic.Comp("restricts", logic.Atom(p.GrantorDomain)))
		}
	}

	// ref/6 facts (for completeness of the emitted base; the Go driver
	// also iterates them directly).
	for i := range m.Refs {
		r := &m.Refs[i]
		t, rop := freqTerms(r.guarantee())
		db.Assert(logic.Comp("ref",
			logic.Atom(r.Source.ID), logic.Atom(r.Target.ID), logic.Atom(r.Var.Path()),
			accessAtom(r.Access), t, rop))
	}

	// Support facts.
	for _, in := range m.Instances {
		for _, v := range in.Proc.Supports {
			if n := m.resolveVar(v); n != nil {
				db.Assert(logic.Comp("inst_supports", logic.Atom(in.ID), logic.Atom(n.Path())))
			}
		}
		if in.System != "" {
			db.Assert(logic.Comp("inst_system", logic.Atom(in.ID), logic.Atom(in.System)))
		} else {
			db.Assert(logic.Comp("inst_in_domain", logic.Atom(in.ID)))
		}
	}
	for _, name := range m.Spec.SystemNames() {
		ss := m.Spec.Systems[name]
		for _, v := range ss.Supports {
			if n := m.resolveVar(v); n != nil {
				db.Assert(logic.Comp("sys_supports", logic.Atom(name), logic.Atom(n.Path())))
			}
		}
	}
	{
		Tgt, Var, V1, V2, S := logic.NewVar("Tgt"), logic.NewVar("Var"), logic.NewVar("V1"), logic.NewVar("V2"), logic.NewVar("S")
		db.Assert(logic.Comp("support_ok", Tgt, Var),
			logic.Call(logic.Comp("inst_supports", Tgt, V1)),
			logic.Call(logic.Comp("data_covers", V1, Var)),
			logic.Call(logic.Comp("inst_system", Tgt, S)),
			logic.Call(logic.Comp("sys_supports", S, V2)),
			logic.Call(logic.Comp("data_covers", V2, Var)))
		Tgt2, Var2, V12 := logic.NewVar("Tgt"), logic.NewVar("Var"), logic.NewVar("V1")
		db.Assert(logic.Comp("support_ok", Tgt2, Var2),
			logic.Call(logic.Comp("inst_supports", Tgt2, V12)),
			logic.Call(logic.Comp("data_covers", V12, Var2)),
			logic.Call(logic.Comp("inst_in_domain", Tgt2)))
	}

	// The reduction rules: permitted at three levels (full; ignoring
	// frequency; ignoring access and frequency) so the checker can report
	// the immediate cause of a failure.
	assertPermitted := func(name string, withAccess, withFreq bool) {
		Src, Tgt, Var, Acc := logic.NewVar("Src"), logic.NewVar("Tgt"), logic.NewVar("Var"), logic.NewVar("Acc")
		T, ROp := logic.NewVar("T"), logic.NewVar("ROp")
		G, Gr, PVar, PAcc, PT, POp := logic.NewVar("G"), logic.NewVar("Gr"), logic.NewVar("PVar"), logic.NewVar("PAcc"), logic.NewVar("PT"), logic.NewVar("POp")
		body := []logic.Goal{
			logic.Call(logic.Comp("perm", G, Gr, PVar, PAcc, PT, POp)),
			logic.Call(logic.Comp("covers", Gr, Tgt)),
			logic.Call(logic.Comp("covers", G, Src)),
			logic.Call(logic.Comp("data_covers", PVar, Var)),
		}
		if withAccess {
			body = append(body, logic.Call(logic.Comp("allows", PAcc, Acc)))
		}
		if withFreq {
			body = append(body, logic.Call(logic.Comp("freq_ok", T, ROp, PT, POp)))
		}
		db.Assert(logic.Comp(name, Src, Tgt, Var, Acc, T, ROp), body...)
	}
	assertPermitted("permitted", true, true)
	assertPermitted("permitted_nofreq", true, false)
	assertPermitted("permitted_parties", false, false)

	// Restriction rule: a domain that declares exports and contains the
	// target but not the source must grant a covering export.
	{
		Src, Tgt, Var, Acc := logic.NewVar("Src"), logic.NewVar("Tgt"), logic.NewVar("Var"), logic.NewVar("Acc")
		T, ROp, D := logic.NewVar("T"), logic.NewVar("ROp"), logic.NewVar("D")
		G, PVar, PAcc, PT, POp := logic.NewVar("G"), logic.NewVar("PVar"), logic.NewVar("PAcc"), logic.NewVar("PT"), logic.NewVar("POp")
		db.Assert(logic.Comp("violates_restriction", Src, Tgt, Var, Acc, T, ROp),
			logic.Call(logic.Comp("restricts", D)),
			logic.Call(logic.Comp("contains_tr", D, Tgt)),
			logic.Not(logic.Call(logic.Comp("covers", D, Src))),
			logic.Not(
				logic.Call(logic.Comp("dom_perm", D, G, PVar, PAcc, PT, POp)),
				logic.Call(logic.Comp("covers", G, Src)),
				logic.Call(logic.Comp("data_covers", PVar, Var)),
				logic.Call(logic.Comp("allows", PAcc, Acc)),
				logic.Call(logic.Comp("freq_ok", T, ROp, PT, POp)),
			))
	}

	// Everything the solvers will intern is now in the table; publish
	// the read-only snapshot so checking never touches the alloc mutex.
	logic.FreezeAtoms()
	return db
}

// logicCheckRef proves one reference against the compiled rule base
// through solver s, appending violations in rule order (support,
// permission, restriction). The DB behind s is read-only during
// solving, so concurrent workers may share it, each with a private
// solver.
func logicCheckRef(m *Model, s *logic.Solver, r *Ref, out *[]Violation) {
	src, tgt := logic.Atom(r.Source.ID), logic.Atom(r.Target.ID)
	v := logic.Atom(r.Var.Path())
	acc := accessAtom(r.Access)
	t, rop := freqTerms(r.guarantee())
	args := []logic.Term{src, tgt, v, acc, t, rop}

	if !s.Prove(logic.Call(logic.Comp("support_ok", tgt, v))) {
		*out = append(*out, Violation{
			Kind: KindNoSupport, Ref: r,
			Message: fmt.Sprintf("%s: target %s (%s) does not support %s",
				r, r.Target.ID, r.Target.Hosted(), r.Var.Path()),
		})
	}
	switch {
	case s.Prove(logic.Call(logic.Comp("permitted", args...))):
		// permitted
	case s.Prove(logic.Call(logic.Comp("permitted_nofreq", args...))):
		*out = append(*out, Violation{
			Kind: KindFrequencyViolation, Ref: r,
			Message: fmt.Sprintf("%s: a permission covers the parties and data but not this frequency", r),
		})
	case s.Prove(logic.Call(logic.Comp("permitted_parties", args...))):
		*out = append(*out, Violation{
			Kind: KindAccessViolation, Ref: r,
			Message: fmt.Sprintf("%s: a permission covers the parties and data but not this access mode", r),
		})
	default:
		*out = append(*out, Violation{
			Kind: KindNoPermission, Ref: r,
			Message: fmt.Sprintf("%s: no permission covers this reference", r),
		})
	}
	if s.Prove(logic.Call(logic.Comp("violates_restriction", args...))) {
		*out = append(*out, Violation{
			Kind: KindDomainRestriction, Ref: r,
			Message: fmt.Sprintf("%s: a domain containing the target restricts access and grants no covering export", r),
		})
	}
}

// CheckLogic runs the consistency check through the logic engine: for
// every reference it proves (or fails to prove) the reduction rules and
// classifies the failure. Its verdicts must agree with the indexed Check;
// tests cross-validate the two. It is equivalent to CheckContext with
// EngineLogic, a background context and one worker.
func CheckLogic(m *Model) *Report {
	db := BuildDB(m)
	s := logic.NewSolver(db)
	rep := &Report{Model: m}
	for i := range m.Refs {
		logicCheckRef(m, s, &m.Refs[i], &rep.Violations)
	}
	rep.RefsChecked = len(m.Refs)
	for i := range m.Unresolved {
		rep.Violations = append(rep.Violations, unresolvedViolation(&m.Unresolved[i]))
	}
	return rep
}

// CheckLogicRecursive is CheckLogic over the recursive rule base
// (BuildDBRecursive) — the paper's transitivity rules evaluated top-down
// per query instead of the materialized closure tables. It is the parity
// oracle: its Report must be byte-identical to CheckLogic's.
func CheckLogicRecursive(m *Model) *Report {
	db := BuildDBRecursive(m)
	s := logic.NewSolver(db)
	rep := &Report{Model: m}
	for i := range m.Refs {
		logicCheckRef(m, s, &m.Refs[i], &rep.Violations)
	}
	rep.RefsChecked = len(m.Refs)
	for i := range m.Unresolved {
		rep.Violations = append(rep.Violations, unresolvedViolation(&m.Unresolved[i]))
	}
	return rep
}

// AdmissiblePeriods solves the consistency check in reverse (the paper's
// speculative use of CLP(R), section 4.2): given a prospective reference
// from srcID to data var on tgtID at the given access mode, it returns
// the admissible query-period intervals — the values of T for which the
// combined specification would be consistent. An empty result means no
// period makes the reference consistent.
func AdmissiblePeriods(m *Model, srcID, tgtID string, varNode *mib.Node, access mib.Access) []logic.Interval {
	db := BuildDB(m)
	s := logic.NewSolver(db)
	src, tgt := logic.Atom(srcID), logic.Atom(tgtID)
	v := logic.Atom(varNode.Path())
	acc := accessAtom(access)

	collect := func(pred string, extra ...logic.Term) []logic.Interval {
		T := logic.NewVar("T")
		args := append([]logic.Term{}, extra...)
		args = append(args, v, acc, T, logic.Atom("ge"))
		var ivs []logic.Interval
		s.Solve([]logic.Goal{logic.Call(logic.Comp(pred, args...))}, func(sol *logic.Solution) bool {
			iv := sol.Interval(T)
			if !iv.Empty {
				ivs = append(ivs, iv)
			}
			return true
		})
		return ivs
	}

	// Base permission intervals.
	result := unionIntervals(collect("permitted", src, tgt))
	if len(result) == 0 {
		return nil
	}
	// Intersect with each restricting domain's own grants.
	for dom := range m.partyDomains[tgtID] {
		if !m.restrictingDomain(dom) {
			continue
		}
		if m.partyInDomain(srcID, dom) {
			continue
		}
		T := logic.NewVar("T")
		G, PVar, PAcc, PT, POp := logic.NewVar("G"), logic.NewVar("PVar"), logic.NewVar("PAcc"), logic.NewVar("PT"), logic.NewVar("POp")
		var ivs []logic.Interval
		s.Solve([]logic.Goal{
			logic.Call(logic.Comp("dom_perm", logic.Atom(dom), G, PVar, PAcc, PT, POp)),
			logic.Call(logic.Comp("covers", G, src)),
			logic.Call(logic.Comp("data_covers", PVar, v)),
			logic.Call(logic.Comp("allows", PAcc, acc)),
			logic.Call(logic.Comp("freq_ok", T, logic.Atom("ge"), PT, POp)),
		}, func(sol *logic.Solution) bool {
			iv := sol.Interval(T)
			if !iv.Empty {
				ivs = append(ivs, iv)
			}
			return true
		})
		result = intersectSets(result, unionIntervals(ivs))
		if len(result) == 0 {
			return nil
		}
	}
	return result
}

// restrictingDomain reports whether the domain declares exports.
func (m *Model) restrictingDomain(dom string) bool {
	d := m.Spec.Domains[dom]
	return d != nil && len(d.Exports) > 0
}

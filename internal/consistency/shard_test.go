package consistency

import (
	"context"
	"strings"
	"testing"

	"nmsl/internal/paperspec"
)

// checkParallel runs CheckContext with the given options and fails the
// test on error.
func checkParallel(t *testing.T, m *Model, opts Options) *Report {
	t.Helper()
	rep, err := CheckContext(context.Background(), m, opts)
	if err != nil {
		t.Fatalf("CheckContext: %v", err)
	}
	return rep
}

func TestShardRefsCoverAndAlign(t *testing.T) {
	// Refs with target runs A A B B B C: boundaries must not split runs.
	a := &Instance{ID: "a"}
	b := &Instance{ID: "b"}
	c := &Instance{ID: "c"}
	var refs []Ref
	for _, tgt := range []*Instance{a, a, b, b, b, c} {
		refs = append(refs, Ref{Target: tgt})
	}
	for nshards := 1; nshards <= 8; nshards++ {
		shards := shardRefs(refs, nshards)
		next := 0
		for _, sh := range shards {
			if sh[0] != next || sh[1] <= sh[0] {
				t.Fatalf("nshards=%d: non-contiguous shards %v", nshards, shards)
			}
			if sh[0] > 0 && refs[sh[0]].Target == refs[sh[0]-1].Target {
				t.Fatalf("nshards=%d: shard boundary splits a target run: %v", nshards, shards)
			}
			next = sh[1]
		}
		if next != len(refs) {
			t.Fatalf("nshards=%d: shards %v do not cover %d refs", nshards, shards, len(refs))
		}
	}
	if got := shardRefs(nil, 4); got != nil {
		t.Fatalf("empty refs: %v", got)
	}
}

// TestParallelParity asserts the sharded checker reproduces the serial
// Report byte for byte at every worker count, for both engines, on
// consistent and inconsistent specifications.
func TestParallelParity(t *testing.T) {
	for name, src := range map[string]string{
		"paper":          paperspec.Combined,
		"withoutExports": withoutExports,
		"freq":           freqSpec,
	} {
		t.Run(name, func(t *testing.T) {
			m := buildModel(t, src)
			serial := Check(m).String()
			serialLogic := CheckLogic(m).String()
			for _, w := range []int{1, 2, 4, 8} {
				if got := checkParallel(t, m, Options{Workers: w}).String(); got != serial {
					t.Errorf("workers=%d diverges from serial:\n%s\nvs\n%s", w, got, serial)
				}
				if got := checkParallel(t, m, Options{Workers: w, Engine: EngineLogic}).String(); got != serialLogic {
					t.Errorf("workers=%d logic engine diverges:\n%s\nvs\n%s", w, got, serialLogic)
				}
			}
		})
	}
}

func TestParallelParityDisableIndex(t *testing.T) {
	m := buildModel(t, freqSpec)
	serial := Check(m).String()
	got := checkParallel(t, m, Options{Workers: 4, DisableIndex: true}).String()
	if got != serial {
		t.Fatalf("index ablation under parallelism diverges:\n%s\nvs\n%s", got, serial)
	}
}

func TestCheckContextCancelled(t *testing.T) {
	m := buildModel(t, freqSpec)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := CheckContext(ctx, m, Options{Workers: 2})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("cancelled check must still return the partial report")
	}
	if rep.RefsChecked != 0 {
		t.Errorf("pre-cancelled context checked %d refs", rep.RefsChecked)
	}
}

func TestOnViolationStreams(t *testing.T) {
	m := buildModel(t, withoutExports)
	var streamed []Violation
	rep := checkParallel(t, m, Options{Workers: 1, OnViolation: func(v Violation) {
		streamed = append(streamed, v)
	}})
	if len(streamed) != len(rep.Violations) {
		t.Fatalf("streamed %d violations, report has %d", len(streamed), len(rep.Violations))
	}
	// Single worker: streaming order equals report order.
	for i := range streamed {
		if streamed[i].String() != rep.Violations[i].String() {
			t.Errorf("streamed[%d] = %s, want %s", i, streamed[i], rep.Violations[i])
		}
	}
}

func TestFailFast(t *testing.T) {
	m := buildModel(t, withoutExports)
	rep := checkParallel(t, m, Options{Workers: 2, FailFast: true})
	if rep.Consistent() {
		t.Fatal("fail-fast check missed the violations entirely")
	}
}

func TestViolationIsError(t *testing.T) {
	var err error = Violation{Kind: KindNoPermission, Message: "x"}
	if !strings.Contains(err.Error(), "no-permission") {
		t.Errorf("Error() = %q", err.Error())
	}
}

func TestReportSummary(t *testing.T) {
	m := buildModel(t, paperspec.Combined)
	if s := Check(m).Summary(); !strings.HasPrefix(s, "consistent:") {
		t.Errorf("summary: %q", s)
	}
	m2 := buildModel(t, withoutExports)
	s2 := Check(m2).Summary()
	if !strings.Contains(s2, "INCONSISTENT: 2 violations") || !strings.Contains(s2, "2 no-permission") {
		t.Errorf("summary: %q", s2)
	}
}

package consistency

import (
	"math/big"
	"sort"
	"strings"
	"testing"

	"nmsl/internal/ast"
	"nmsl/internal/logic"
	"nmsl/internal/mib"
	"nmsl/internal/paperspec"
	"nmsl/internal/parser"
	"nmsl/internal/sema"
)

// buildSpec compiles src through the full front end.
func buildSpec(t *testing.T, src string) *ast.Spec {
	t.Helper()
	f, err := parser.Parse("test", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	a := sema.NewAnalyzer()
	a.AnalyzeFile(f)
	spec, err := a.Finish()
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return spec
}

func buildModel(t *testing.T, src string) *Model {
	t.Helper()
	return BuildModel(buildSpec(t, src))
}

func TestPaperSpecModel(t *testing.T) {
	m := buildModel(t, paperspec.Combined)
	// Instances: snmpdReadOnly on romano + cs.wisc.edu, snmpaddr in wisc-cs.
	if len(m.Instances) != 3 {
		t.Fatalf("instances: %v", m.Instances)
	}
	// Perms: process-level export x 2 instances + domain-level export.
	if len(m.Perms) != 3 {
		t.Fatalf("perms: %v", m.Perms)
	}
	// Refs: star target resolves to both agents, one requested var each.
	if len(m.Refs) != 2 {
		t.Fatalf("refs: %v", m.Refs)
	}
	for _, r := range m.Refs {
		if r.Resolution != TargetStar {
			t.Errorf("resolution %v", r.Resolution)
		}
		if r.Var.Path() != "mgmt.mib.ip.ipAddrTable.IpAddrEntry" {
			t.Errorf("var %s", r.Var.Path())
		}
	}
	if len(m.Unresolved) != 0 {
		t.Errorf("unresolved: %+v", m.Unresolved)
	}
}

func TestPaperSpecConsistent(t *testing.T) {
	m := buildModel(t, paperspec.Combined)
	rep := Check(m)
	if !rep.Consistent() {
		t.Fatalf("paper specification inconsistent:\n%s", rep)
	}
	if rep.RefsChecked != 2 {
		t.Errorf("refs checked %d", rep.RefsChecked)
	}
	rep2 := CheckLogic(m)
	if !rep2.Consistent() {
		t.Fatalf("logic checker disagrees:\n%s", rep2)
	}
}

// withoutExports is the paper spec with the agent's exports removed and
// the domain-level export removed: the snmpaddr references then have no
// permission.
const withoutExports = paperspec.Figure42 + `
process snmpdReadOnly ::=
    supports mgmt.mib;
end process snmpdReadOnly.
` + `
process snmpaddr(
    SysAddr: Process; Dest: IpAddress) ::=
    queries SysAddr
        requests mgmt.mib.ip.ipAddrTable.IpAddrEntry
        using mgmt.mib.ip.ipAddrTable.IpAddrEntry.ipAdEntAddr := Dest
        frequency infrequent;
end process snmpaddr.
` + paperspec.Figure46 + paperspec.CSWisc + `
domain wisc-cs ::=
    system romano.cs.wisc.edu;
    system cs.wisc.edu;
    process snmpaddr(*, *);
end domain wisc-cs.
` + paperspec.PublicDomain

func TestNoPermission(t *testing.T) {
	m := buildModel(t, withoutExports)
	rep := Check(m)
	if rep.Consistent() {
		t.Fatal("expected inconsistency")
	}
	if got := rep.ByKind(KindNoPermission); len(got) != 2 {
		t.Fatalf("violations: %s", rep)
	}
}

// freqSpec builds a spec where the application queries every minute but
// the agent only permits every 5 minutes.
const freqSpec = `
process agent ::=
    supports mgmt.mib;
    exports mgmt.mib to "public"
        access ReadOnly
        frequency >= 5 minutes;
end process agent.

process poller ::=
    queries agent
        requests mgmt.mib.system
        frequency >= 1 minutes;
end process poller.

system "host-a" ::=
    cpu sparc;
    interface ie0 net lab type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib;
    process agent;
    process poller;
end system "host-a".

domain lab ::=
    system host-a;
end domain lab.

domain public ::=
    domain lab;
end domain public.
`

func TestFrequencyViolation(t *testing.T) {
	m := buildModel(t, freqSpec)
	rep := Check(m)
	if rep.Consistent() {
		t.Fatal("expected frequency violation")
	}
	vs := rep.ByKind(KindFrequencyViolation)
	if len(vs) != 1 {
		t.Fatalf("violations: %s", rep)
	}
	if vs[0].NearMiss == nil || vs[0].NearMiss.MinPeriod != 300 {
		t.Errorf("near miss: %+v", vs[0].NearMiss)
	}
}

func TestFrequencyBoundaryExact(t *testing.T) {
	// Querying exactly every 5 minutes against a >= 5 minutes export is
	// consistent (the exact-rational boundary case).
	src := strings.Replace(freqSpec, "frequency >= 1 minutes", "frequency >= 5 minutes", 1)
	m := buildModel(t, src)
	if rep := Check(m); !rep.Consistent() {
		t.Fatalf("boundary case inconsistent:\n%s", rep)
	}
	// Strict export "> 5 minutes" with a ">= 5 minutes" reference fails...
	src2 := strings.Replace(src, "frequency >= 5 minutes;\nend process agent",
		"frequency > 5 minutes;\nend process agent", 1)
	m2 := buildModel(t, src2)
	if rep := Check(m2); rep.Consistent() {
		t.Fatal("strict boundary should be inconsistent")
	}
	// ...but a "> 5 minutes" reference satisfies it.
	src3 := strings.Replace(src2, "requests mgmt.mib.system\n        frequency >= 5 minutes",
		"requests mgmt.mib.system\n        frequency > 5 minutes", 1)
	m3 := buildModel(t, src3)
	if rep := Check(m3); !rep.Consistent() {
		t.Fatalf("strict-vs-strict should be consistent:\n%s", rep)
	}
}

func TestAccessViolation(t *testing.T) {
	src := strings.Replace(freqSpec,
		"requests mgmt.mib.system\n        frequency >= 1 minutes",
		"requests mgmt.mib.system\n        access WriteOnly\n        frequency >= 5 minutes", 1)
	m := buildModel(t, src)
	rep := Check(m)
	vs := rep.ByKind(KindAccessViolation)
	if len(vs) != 1 {
		t.Fatalf("violations: %s", rep)
	}
}

func TestInfrequentSatisfiesAnyPeriod(t *testing.T) {
	src := strings.Replace(freqSpec, "frequency >= 1 minutes", "frequency infrequent", 1)
	m := buildModel(t, src)
	if rep := Check(m); !rep.Consistent() {
		t.Fatalf("infrequent should satisfy any export period:\n%s", rep)
	}
}

func TestUnspecifiedRefFrequencyViolatesRateLimit(t *testing.T) {
	src := strings.Replace(freqSpec, "\n        frequency >= 1 minutes", "", 1)
	m := buildModel(t, src)
	rep := Check(m)
	if len(rep.ByKind(KindFrequencyViolation)) != 1 {
		t.Fatalf("unspecified ref frequency against a rate limit: %s", rep)
	}
}

func TestDomainRestriction(t *testing.T) {
	// The lab domain exports only to a third domain, not to public; the
	// agent itself exports to public. The reference comes from outside
	// lab, so lab's restriction applies.
	src := `
process agent ::=
    supports mgmt.mib;
    exports mgmt.mib to "public" access ReadOnly;
end process agent.

process poller ::=
    queries agent requests mgmt.mib.system frequency infrequent;
end process poller.

system "inside" ::=
    cpu sparc;
    interface ie0 net lab type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib;
    process agent;
end system "inside".

system "outside" ::=
    cpu sparc;
    interface ie0 net wan type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib;
    process poller;
end system "outside".

domain lab ::=
    system inside;
    exports mgmt.mib to "others" access ReadOnly;
end domain lab.

domain elsewhere ::=
    system outside;
end domain elsewhere.

domain others ::=
end domain others.

domain public ::=
    domain lab;
    domain elsewhere;
end domain public.
`
	m := buildModel(t, src)
	rep := Check(m)
	vs := rep.ByKind(KindDomainRestriction)
	if len(vs) != 1 {
		t.Fatalf("violations: %s", rep)
	}
	// Granting to public fixes it.
	fixed := strings.Replace(src, `exports mgmt.mib to "others" access ReadOnly;`,
		`exports mgmt.mib to "public" access ReadOnly;`, 1)
	m2 := buildModel(t, fixed)
	if rep2 := Check(m2); !rep2.Consistent() {
		t.Fatalf("fixed spec still inconsistent:\n%s", rep2)
	}
}

func TestRestrictionDoesNotApplyInsideDomain(t *testing.T) {
	// Source and target share the restricting domain: no restriction.
	m := buildModel(t, paperspec.Combined)
	rep := Check(m)
	if len(rep.ByKind(KindDomainRestriction)) != 0 {
		t.Fatalf("restriction misapplied: %s", rep)
	}
}

func TestNoSupport(t *testing.T) {
	// poller asks the agent for egp data, but host-a does not support egp.
	src := strings.Replace(freqSpec, "supports mgmt.mib;\n    process agent", "supports mgmt.mib.system, mgmt.mib.ip;\n    process agent", 1)
	src = strings.Replace(src, "requests mgmt.mib.system\n        frequency >= 1 minutes",
		"requests mgmt.mib.egp\n        frequency >= 5 minutes", 1)
	m := buildModel(t, src)
	rep := Check(m)
	if len(rep.ByKind(KindNoSupport)) != 1 {
		t.Fatalf("violations: %s", rep)
	}
}

func TestUnresolvedTarget(t *testing.T) {
	src := `
process poller(Tgt: Process) ::=
    queries Tgt requests mgmt.mib.system frequency infrequent;
end process poller.

system "host-a" ::=
    cpu sparc;
    interface ie0 net lab type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib;
    process poller(*);
end system "host-a".

domain lab ::= system host-a; end domain lab.
`
	m := buildModel(t, src)
	if len(m.Unresolved) != 1 {
		t.Fatalf("unresolved: %+v", m.Unresolved)
	}
	rep := Check(m)
	if len(rep.ByKind(KindUnresolvedTarget)) != 1 {
		t.Fatalf("violations: %s", rep)
	}
	if rep.Consistent() {
		t.Fatal("unresolved target must be reported")
	}
}

func TestTargetByArgumentSystemName(t *testing.T) {
	src := `
process agent ::=
    supports mgmt.mib;
    exports mgmt.mib to "public" access ReadOnly;
end process agent.
process poller(Tgt: Process) ::=
    queries Tgt requests mgmt.mib.system frequency infrequent;
end process poller.
system "host-a" ::=
    cpu sparc;
    interface ie0 net lab type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib;
    process agent;
end system "host-a".
system "host-b" ::=
    cpu sparc;
    interface ie0 net lab type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib;
    process poller("host-a");
end system "host-b".
domain lab ::= system host-a; system host-b; end domain lab.
domain public ::= domain lab; end domain public.
`
	m := buildModel(t, src)
	if len(m.Refs) != 1 {
		t.Fatalf("refs: %+v", m.Refs)
	}
	if m.Refs[0].Resolution != TargetArg || m.Refs[0].Target.System != "host-a" {
		t.Fatalf("target: %+v", m.Refs[0])
	}
	if rep := Check(m); !rep.Consistent() {
		t.Fatalf("inconsistent: %s", rep)
	}
}

// crossValidate asserts that the indexed checker and the logic checker
// agree on the multiset of (kind, ref) verdicts.
func crossValidate(t *testing.T, src string) {
	t.Helper()
	m := buildModel(t, src)
	a := Check(m)
	b := CheckLogic(m)
	key := func(v Violation) string {
		refStr := ""
		if v.Ref != nil {
			refStr = v.Ref.String()
		} else if v.Unresolved != nil {
			refStr = v.Unresolved.Source.ID + "/" + v.Unresolved.Query.Target
		}
		return string(v.Kind) + "|" + refStr
	}
	ka := make([]string, 0, len(a.Violations))
	for _, v := range a.Violations {
		ka = append(ka, key(v))
	}
	kb := make([]string, 0, len(b.Violations))
	for _, v := range b.Violations {
		kb = append(kb, key(v))
	}
	sort.Strings(ka)
	sort.Strings(kb)
	if strings.Join(ka, "\n") != strings.Join(kb, "\n") {
		t.Fatalf("checkers disagree:\nindexed:\n%s\nlogic:\n%s", a, b)
	}
}

func TestCrossValidation(t *testing.T) {
	for name, src := range map[string]string{
		"paper":          paperspec.Combined,
		"withoutExports": withoutExports,
		"freq":           freqSpec,
		"freqBad":        strings.Replace(freqSpec, ">= 5 minutes;\nend process agent", "> 9 minutes;\nend process agent", 1),
	} {
		t.Run(name, func(t *testing.T) { crossValidate(t, src) })
	}
}

func TestIndexedMatchesScan(t *testing.T) {
	m := buildModel(t, freqSpec)
	idx := NewChecker(m).Check()
	sc := NewChecker(m)
	sc.DisableIndex = true
	scan := sc.Check()
	if idx.String() != scan.String() {
		t.Fatalf("index ablation changed the result:\n%s\nvs\n%s", idx, scan)
	}
}

func TestAdmissiblePeriods(t *testing.T) {
	m := buildModel(t, paperspec.Combined)
	src := "snmpaddr@wisc-cs#0"
	tgt := "snmpdReadOnly@romano.cs.wisc.edu#0"
	node := m.Spec.MIB.Lookup("mgmt.mib.ip.ipAddrTable.IpAddrEntry")
	ivs := AdmissiblePeriods(m, src, tgt, node, mib.AccessReadOnly)
	if len(ivs) != 1 {
		t.Fatalf("intervals: %s", FormatIntervals(ivs))
	}
	want := big.NewRat(300, 1)
	if ivs[0].Lo == nil || ivs[0].Lo.Cmp(want) != 0 || ivs[0].LoStrict || ivs[0].Hi != nil {
		t.Fatalf("interval %v, want [300, +inf)", ivs[0])
	}
	// Write access is never admissible.
	if got := AdmissiblePeriods(m, src, tgt, node, mib.AccessWriteOnly); len(got) != 0 {
		t.Fatalf("write intervals: %s", FormatIntervals(got))
	}
}

func TestAdmissiblePeriodsWithRestriction(t *testing.T) {
	// Agent permits >= 60s; the target's domain restricts to >= 300s for
	// outsiders: admissible periods must be [300, inf).
	src := `
process agent ::=
    supports mgmt.mib;
    exports mgmt.mib to "public" access ReadOnly frequency >= 1 minutes;
end process agent.
process poller ::=
    queries agent requests mgmt.mib.system frequency infrequent;
end process poller.
system "inside" ::=
    cpu sparc;
    interface ie0 net lab type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib;
    process agent;
end system "inside".
system "outside" ::=
    cpu sparc;
    interface ie0 net wan type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib;
    process poller;
end system "outside".
domain lab ::=
    system inside;
    exports mgmt.mib to "public" access ReadOnly frequency >= 5 minutes;
end domain lab.
domain elsewhere ::= system outside; end domain elsewhere.
domain public ::= domain lab; domain elsewhere; end domain public.
`
	m := buildModel(t, src)
	node := m.Spec.MIB.Lookup("mgmt.mib.system")
	ivs := AdmissiblePeriods(m, "poller@outside#0", "agent@inside#0", node, mib.AccessReadOnly)
	if len(ivs) != 1 || ivs[0].Lo == nil || ivs[0].Lo.Cmp(big.NewRat(300, 1)) != 0 {
		t.Fatalf("intervals: %s, want [300, +inf)", FormatIntervals(ivs))
	}
}

func TestIntervalSetOps(t *testing.T) {
	mk := func(lo, hi int64, los, his bool) logic.Interval {
		var l, h *big.Rat
		if lo >= 0 {
			l = big.NewRat(lo, 1)
		}
		if hi >= 0 {
			h = big.NewRat(hi, 1)
		}
		return logic.Interval{Lo: l, Hi: h, LoStrict: los, HiStrict: his}
	}
	// union merges overlapping
	u := unionIntervals([]logic.Interval{mk(1, 5, false, false), mk(3, 8, false, false)})
	if len(u) != 1 || u[0].Lo.Cmp(big.NewRat(1, 1)) != 0 || u[0].Hi.Cmp(big.NewRat(8, 1)) != 0 {
		t.Fatalf("union: %s", FormatIntervals(u))
	}
	// union keeps disjoint
	u2 := unionIntervals([]logic.Interval{mk(1, 2, false, false), mk(4, 5, false, false)})
	if len(u2) != 2 {
		t.Fatalf("union2: %s", FormatIntervals(u2))
	}
	// touching open+open stays disjoint
	u3 := unionIntervals([]logic.Interval{mk(1, 2, false, true), mk(2, 3, true, false)})
	if len(u3) != 2 {
		t.Fatalf("union3: %s", FormatIntervals(u3))
	}
	// touching closed merges
	u4 := unionIntervals([]logic.Interval{mk(1, 2, false, false), mk(2, 3, true, false)})
	if len(u4) != 1 {
		t.Fatalf("union4: %s", FormatIntervals(u4))
	}
	// intersect
	i1 := intersectSets([]logic.Interval{mk(1, 5, false, false)}, []logic.Interval{mk(3, 8, false, false)})
	if len(i1) != 1 || i1[0].Lo.Cmp(big.NewRat(3, 1)) != 0 || i1[0].Hi.Cmp(big.NewRat(5, 1)) != 0 {
		t.Fatalf("intersect: %s", FormatIntervals(i1))
	}
	// disjoint intersect is empty
	i2 := intersectSets([]logic.Interval{mk(1, 2, false, false)}, []logic.Interval{mk(3, 4, false, false)})
	if len(i2) != 0 {
		t.Fatalf("intersect2: %s", FormatIntervals(i2))
	}
	// unbounded
	i3 := intersectSets([]logic.Interval{mk(3, -1, false, false)}, []logic.Interval{mk(5, -1, true, false)})
	if len(i3) != 1 || i3[0].Lo.Cmp(big.NewRat(5, 1)) != 0 || !i3[0].LoStrict || i3[0].Hi != nil {
		t.Fatalf("intersect3: %s", FormatIntervals(i3))
	}
	if FormatIntervals(nil) != "∅" {
		t.Error("empty set format")
	}
}

func TestReportString(t *testing.T) {
	m := buildModel(t, paperspec.Combined)
	rep := Check(m)
	if !strings.Contains(rep.String(), "consistent") {
		t.Errorf("report: %s", rep)
	}
	m2 := buildModel(t, withoutExports)
	rep2 := Check(m2)
	if !strings.Contains(rep2.String(), "INCONSISTENT") || !strings.Contains(rep2.String(), "no-permission") {
		t.Errorf("report: %s", rep2)
	}
}

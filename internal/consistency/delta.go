package consistency

import (
	"sort"

	"nmsl/internal/ast"
	"nmsl/internal/obs"
	"nmsl/internal/sema"
)

// Incremental re-checking (the tentpole, layer 3). An edit to a large
// specification touches a handful of declarations; CheckDelta re-verifies
// only the references those declarations can influence and replays the
// previous report's verdicts for the rest. The dirtiness test is
// conservative: it consults the containment ancestry of both the old and
// the new model, so removed edges invalidate as reliably as added ones.

// ModelDelta names the model-level entities an edit touched. The zero
// value means "nothing changed"; Full or MIBChanged force a full
// re-check (every fingerprint depends on MIB paths, so a MIB edit
// invalidates globally).
type ModelDelta struct {
	// Full forces a complete re-check.
	Full bool
	// MIBChanged reports a change to the MIB name tree (type decls).
	MIBChanged bool
	// Domains, Systems, Processes name changed declarations; Instances
	// names changed instance IDs directly (e.g. from rollout plans).
	Domains   []string
	Systems   []string
	Processes []string
	Instances []string
}

// DeltaFromSpecs diffs two linked specifications into a ModelDelta. Type
// declaration changes mark the MIB changed (types extend the name tree),
// forcing a full re-check.
func DeltaFromSpecs(old, new *ast.Spec) *ModelDelta {
	sd := sema.DiffSpecs(old, new)
	return &ModelDelta{
		MIBChanged: len(sd.Types) > 0,
		Domains:    sd.Domains,
		Systems:    sd.Systems,
		Processes:  sd.Processes,
	}
}

// deltaSets is the delta in set form, plus the old model for ancestry
// lookups on removed containment edges.
type deltaSets struct {
	domains, systems, processes, instances map[string]bool
	oldModel                               *Model
}

func toSet(names []string) map[string]bool {
	if len(names) == 0 {
		return nil
	}
	s := make(map[string]bool, len(names))
	for _, n := range names {
		s[n] = true
	}
	return s
}

// partyTouched reports whether the party (an instance) is influenced by
// the delta: its own declaration site changed, or a changed domain
// contains it in either the old or the new model.
func (ds *deltaSets) partyTouched(m *Model, in *Instance) bool {
	if ds.instances[in.ID] || ds.processes[in.Proc.Name] {
		return true
	}
	if in.System != "" && ds.systems[in.System] {
		return true
	}
	if in.Domain != "" && ds.domains[in.Domain] {
		return true
	}
	for d := range ds.domains {
		if m.partyDomains[in.ID][d] {
			return true
		}
		if ds.oldModel != nil && ds.oldModel.partyDomains[in.ID][d] {
			return true
		}
	}
	return false
}

// dirtyBits materializes the set of touched parties as a bitset over
// the model's dense instance indexes, reusing buf across calls. Deltas
// are tiny relative to the model, so directly-named instances resolve
// through the ID index; only name-level changes (processes, systems,
// domains) require a sweep over the instance table. Per-reference
// dirtiness then costs two bit probes — no map hashing, and no per-call
// allocation once the buffer is sized (the delta dirty-set leg of the
// per-worker arena).
func (ds *deltaSets) dirtyBits(m *Model, buf []uint64) []uint64 {
	n := (len(m.Instances) + 63) / 64
	if cap(buf) < n {
		buf = make([]uint64, n)
	} else {
		buf = buf[:n]
		clear(buf)
	}
	for id := range ds.instances {
		if in := m.byID[id]; in != nil {
			buf[in.idx>>6] |= 1 << (uint(in.idx) & 63)
		}
	}
	if len(ds.processes) == 0 && len(ds.systems) == 0 && len(ds.domains) == 0 {
		return buf
	}
	for _, in := range m.Instances {
		if buf[in.idx>>6]&(1<<(uint(in.idx)&63)) == 0 && ds.partyTouched(m, in) {
			buf[in.idx>>6] |= 1 << (uint(in.idx) & 63)
		}
	}
	return buf
}

// dirtyBit probes one instance index.
func dirtyBit(bits []uint64, idx int32) bool {
	return bits[idx>>6]&(1<<(uint(idx)&63)) != 0
}

// DirtyInstances materializes the instances of m the delta touches,
// sorted by ID — the same conservative dirty set CheckDelta re-checks
// (old, when non-nil and distinct from m, supplies the pre-edit
// containment ancestry so removed edges dirty as reliably as added
// ones). A nil delta, Full, or MIBChanged returns every instance,
// mirroring CheckDelta's fallback to a full re-check.
func (d *ModelDelta) DirtyInstances(m, old *Model) []*Instance {
	if m == nil {
		return nil
	}
	if d == nil || d.Full || d.MIBChanged {
		out := make([]*Instance, len(m.Instances))
		copy(out, m.Instances)
		sortInstancesByID(out)
		return out
	}
	ds := &deltaSets{
		domains:   toSet(d.Domains),
		systems:   toSet(d.Systems),
		processes: toSet(d.Processes),
		instances: toSet(d.Instances),
	}
	if old != nil && old != m {
		ds.oldModel = old
	}
	bits := ds.dirtyBits(m, nil)
	var out []*Instance
	for _, in := range m.Instances {
		if dirtyBit(bits, in.idx) {
			out = append(out, in)
		}
	}
	sortInstancesByID(out)
	return out
}

func sortInstancesByID(ins []*Instance) {
	sort.Slice(ins, func(i, j int) bool { return ins[i].ID < ins[j].ID })
}

// CheckDelta re-checks the model after an edit described by delta,
// reusing prev (the previous full report) for references the edit cannot
// have influenced. Dirty references — and references that did not exist
// before — are evaluated afresh (through the result cache when one is
// attached); clean references replay their previous verdicts with the Ref
// pointer rebound to the current model. Proxy and unresolved-target
// violations are always recomputed (they are cheap and global). The
// returned report is identical to a full Check of the current model.
//
// CheckDelta falls back to a full Check when prev is unusable (nil,
// truncated, from a cancelled or FailFast run) or the delta forces it
// (Full, or a MIB change, which shifts fingerprints globally).
func (c *Checker) CheckDelta(prev *Report, delta *ModelDelta) *Report {
	if prev == nil || delta == nil || delta.Full || delta.MIBChanged ||
		prev.Model == nil || prev.RefsChecked != len(prev.Model.Refs) {
		return c.Check()
	}
	ds := &deltaSets{
		domains:   toSet(delta.Domains),
		systems:   toSet(delta.Systems),
		processes: toSet(delta.Processes),
		instances: toSet(delta.Instances),
	}
	if prev.Model != c.m {
		ds.oldModel = prev.Model
	}

	// When the previous report is for another model (a rebuild), group
	// its reference-level violations by reference key up front; groups
	// queue up FIFO per key (duplicate references share a key and, by
	// construction, a verdict). The same-model warm path — the steady
	// state of a long-lived checker — needs no grouping structure at
	// all: violations are appended per reference in a contiguous run in
	// exactly the order the replay loop below scans, so a single cursor
	// over prev.Violations reconstructs each reference's previous
	// verdict without hashing anything.
	sameModel := prev.Model == c.m
	var prevByKey map[string][][]Violation
	var prevKeys map[string]bool
	if !sameModel {
		prevByKey = map[string][][]Violation{}
		prevKeys = make(map[string]bool, len(prev.Model.Refs))
		for i := range prev.Model.Refs {
			prevKeys[prev.Model.Refs[i].Key()] = true
		}
		for i := 0; i < len(prev.Violations); {
			v := prev.Violations[i]
			if v.Ref == nil {
				i++ // proxy/unresolved tail, recomputed below
				continue
			}
			j := i
			for j < len(prev.Violations) && prev.Violations[j].Ref == v.Ref {
				j++
			}
			k := v.Ref.Key()
			prevByKey[k] = append(prevByKey[k], prev.Violations[i:j])
			i = j
		}
	}

	rep := &Report{Model: c.m}
	var sc scratch
	var dirty, replayed int64
	c.deltaBits = ds.dirtyBits(c.m, c.deltaBits)
	bits := c.deltaBits
	pv := prev.Violations
	cur := 0
	for i := range c.m.Refs {
		ref := &c.m.Refs[i]
		var group []Violation
		if sameModel && cur < len(pv) && pv[cur].Ref == ref {
			j := cur + 1
			for j < len(pv) && pv[j].Ref == ref {
				j++
			}
			group, cur = pv[cur:j], j
		}
		clean := !dirtyBit(bits, ref.Source.idx) && !dirtyBit(bits, ref.Target.idx)
		if clean && !sameModel {
			if key := ref.Key(); prevKeys[key] {
				if gs := prevByKey[key]; len(gs) > 0 {
					group = gs[0]
					prevByKey[key] = gs[1:]
				}
			} else {
				clean = false // reference did not exist before
			}
		}
		if !clean {
			dirty++
			c.checkRefWith(ref, &rep.Violations, &sc)
			continue
		}
		replayed++
		for _, v := range group {
			v.Ref = ref
			rep.Violations = append(rep.Violations, v)
		}
	}
	c.flush(&sc)
	rep.RefsChecked = len(c.m.Refs)
	c.checkProxies(&rep.Violations)
	for i := range c.m.Unresolved {
		rep.Violations = append(rep.Violations, unresolvedViolation(&c.m.Unresolved[i]))
	}
	if obs.Default.Enabled() {
		obs.Default.Counter(MetricCheckDeltaDirty).Add(dirty)
		obs.Default.Counter(MetricCheckDeltaReplayed).Add(replayed)
	}
	return rep
}

package consistency

import (
	"sort"
	"strings"

	"nmsl/internal/logic"
)

// Interval-set algebra used by the speculative reverse check: unions of
// admissible-period intervals from alternative permissions, intersected
// across restricting domains.

// cmpLo orders intervals by lower bound (nil = -inf first; at equal
// bounds, closed before open).
func cmpLo(a, b logic.Interval) int {
	switch {
	case a.Lo == nil && b.Lo == nil:
		return 0
	case a.Lo == nil:
		return -1
	case b.Lo == nil:
		return 1
	}
	if c := a.Lo.Cmp(b.Lo); c != 0 {
		return c
	}
	switch {
	case a.LoStrict == b.LoStrict:
		return 0
	case a.LoStrict:
		return 1
	default:
		return -1
	}
}

// overlapsOrTouches reports whether a and b can merge into one interval,
// assuming cmpLo(a,b) <= 0.
func overlapsOrTouches(a, b logic.Interval) bool {
	if a.Hi == nil || b.Lo == nil {
		return true
	}
	c := b.Lo.Cmp(a.Hi)
	if c < 0 {
		return true
	}
	if c > 0 {
		return false
	}
	// touching at a point: mergeable unless both ends are open
	return !(a.HiStrict && b.LoStrict)
}

// unionIntervals normalizes a set of intervals into a minimal sorted,
// disjoint list.
func unionIntervals(ivs []logic.Interval) []logic.Interval {
	var in []logic.Interval
	for _, iv := range ivs {
		if !iv.Empty {
			in = append(in, iv)
		}
	}
	if len(in) == 0 {
		return nil
	}
	sort.Slice(in, func(i, j int) bool { return cmpLo(in[i], in[j]) < 0 })
	out := []logic.Interval{in[0]}
	for _, iv := range in[1:] {
		last := &out[len(out)-1]
		if overlapsOrTouches(*last, iv) {
			// extend the upper end if iv reaches further
			if last.Hi != nil {
				if iv.Hi == nil {
					last.Hi, last.HiStrict = nil, false
				} else if c := iv.Hi.Cmp(last.Hi); c > 0 {
					last.Hi, last.HiStrict = iv.Hi, iv.HiStrict
				} else if c == 0 && !iv.HiStrict {
					last.HiStrict = false
				}
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// intersect2 intersects two intervals.
func intersect2(a, b logic.Interval) logic.Interval {
	if a.Empty || b.Empty {
		return logic.Interval{Empty: true}
	}
	out := logic.Interval{}
	// lower bound: take the larger
	switch {
	case a.Lo == nil:
		out.Lo, out.LoStrict = b.Lo, b.LoStrict
	case b.Lo == nil:
		out.Lo, out.LoStrict = a.Lo, a.LoStrict
	default:
		if c := a.Lo.Cmp(b.Lo); c > 0 {
			out.Lo, out.LoStrict = a.Lo, a.LoStrict
		} else if c < 0 {
			out.Lo, out.LoStrict = b.Lo, b.LoStrict
		} else {
			out.Lo, out.LoStrict = a.Lo, a.LoStrict || b.LoStrict
		}
	}
	// upper bound: take the smaller
	switch {
	case a.Hi == nil:
		out.Hi, out.HiStrict = b.Hi, b.HiStrict
	case b.Hi == nil:
		out.Hi, out.HiStrict = a.Hi, a.HiStrict
	default:
		if c := a.Hi.Cmp(b.Hi); c < 0 {
			out.Hi, out.HiStrict = a.Hi, a.HiStrict
		} else if c > 0 {
			out.Hi, out.HiStrict = b.Hi, b.HiStrict
		} else {
			out.Hi, out.HiStrict = a.Hi, a.HiStrict || b.HiStrict
		}
	}
	if out.Lo != nil && out.Hi != nil {
		c := out.Lo.Cmp(out.Hi)
		if c > 0 || (c == 0 && (out.LoStrict || out.HiStrict)) {
			return logic.Interval{Empty: true}
		}
	}
	return out
}

// intersectSets intersects two normalized interval sets.
func intersectSets(a, b []logic.Interval) []logic.Interval {
	var out []logic.Interval
	for _, x := range a {
		for _, y := range b {
			if iv := intersect2(x, y); !iv.Empty {
				out = append(out, iv)
			}
		}
	}
	return unionIntervals(out)
}

// FormatIntervals renders an interval set for reports, e.g.
// "[300, +inf)". An empty set renders as "∅".
func FormatIntervals(ivs []logic.Interval) string {
	if len(ivs) == 0 {
		return "∅"
	}
	parts := make([]string, len(ivs))
	for i, iv := range ivs {
		parts[i] = iv.String()
	}
	return strings.Join(parts, " ∪ ")
}

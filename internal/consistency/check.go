package consistency

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"nmsl/internal/obs"
)

// Kind classifies a consistency violation.
type Kind string

// Violation kinds. The checker reports "the immediate causes for
// inconsistency" (section 4.2), so each failed reference is classified by
// the nearest-miss condition.
const (
	// KindNoPermission: no permission's grantee/grantor/data covers the
	// reference at all.
	KindNoPermission Kind = "no-permission"
	// KindAccessViolation: a permission covers the parties and data but
	// its access mode does not allow the reference's mode.
	KindAccessViolation Kind = "access-violation"
	// KindFrequencyViolation: a permission covers parties, data and
	// access, but the reference may query more often than permitted.
	KindFrequencyViolation Kind = "frequency-violation"
	// KindDomainRestriction: a domain containing the target (but not the
	// source) declares exports and none of them covers the reference.
	KindDomainRestriction Kind = "domain-restriction"
	// KindNoSupport: the target instance does not support the referenced
	// data (process view or hosting element's view).
	KindNoSupport Kind = "no-support"
	// KindUnresolvedTarget: a query target resolved to no instance.
	KindUnresolvedTarget Kind = "unresolved-target"
)

// Violation is one immediate cause of inconsistency.
type Violation struct {
	Kind Kind
	// Ref is the failing reference (nil for unresolved targets).
	Ref *Ref
	// Unresolved is set for KindUnresolvedTarget.
	Unresolved *UnresolvedTarget
	// NearMiss is the closest permission considered, when one exists.
	NearMiss *Perm
	// Message is the human-readable cause.
	Message string
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("[%s] %s", v.Kind, v.Message)
}

// Error makes Violation usable as an error value (and with errors.As),
// so callers can surface individual causes through error-handling paths.
func (v Violation) Error() string { return v.String() }

// Report is the checker's result.
type Report struct {
	Model *Model
	// Violations holds every immediate cause found, in a deterministic,
	// documented order — the sort key is (reference order, rule order):
	// references in model order (system-hosted instances in system
	// declaration order, then domain-hosted instances in domain order,
	// queries and requested variables in declaration order), each
	// reference's causes in rule order (support, permission, domain
	// restriction); then proxy violations in declaration order; then
	// unresolved targets in discovery order. Serial and parallel checks
	// produce identical ordering.
	Violations []Violation
	// RefsChecked counts the references examined. Equal to the model's
	// reference count except when the check was cancelled or stopped by
	// FailFast.
	RefsChecked int
	// Metrics is this run's observability snapshot — shard timings,
	// worker occupancy, refs and violation counts (the MetricCheck*
	// names in shard.go). Set by CheckContext; nil from the serial
	// Check/CheckLogic paths and when Options.Metrics is obs.Disabled.
	Metrics obs.Snapshot
}

// Consistent reports whether the specification passed.
func (r *Report) Consistent() bool { return len(r.Violations) == 0 }

// String renders the report the way the paper describes: either a clean
// bill or the list of immediate causes.
func (r *Report) String() string {
	var b strings.Builder
	if r.Consistent() {
		fmt.Fprintf(&b, "consistent: %d references, %d permissions, %d instances\n",
			r.RefsChecked, len(r.Model.Perms), len(r.Model.Instances))
		return b.String()
	}
	fmt.Fprintf(&b, "INCONSISTENT: %d violations (%d references checked)\n",
		len(r.Violations), r.RefsChecked)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	return b.String()
}

// Summary returns a one-line digest of the report: the verdict, plus
// violation counts broken down by kind for inconsistent specifications.
func (r *Report) Summary() string {
	if r.Consistent() {
		return fmt.Sprintf("consistent: %d references, %d permissions, %d instances",
			r.RefsChecked, len(r.Model.Perms), len(r.Model.Instances))
	}
	counts := map[Kind]int{}
	kinds := make([]string, 0, 4)
	for _, v := range r.Violations {
		if counts[v.Kind] == 0 {
			kinds = append(kinds, string(v.Kind))
		}
		counts[v.Kind]++
	}
	sort.Strings(kinds)
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%d %s", counts[Kind(k)], k))
	}
	return fmt.Sprintf("INCONSISTENT: %d violations (%s), %d references checked",
		len(r.Violations), strings.Join(parts, ", "), r.RefsChecked)
}

// ByKind returns the violations of one kind.
func (r *Report) ByKind(k Kind) []Violation {
	var out []Violation
	for _, v := range r.Violations {
		if v.Kind == k {
			out = append(out, v)
		}
	}
	return out
}

// Checker evaluates consistency over a Model with Go-side indexes.
type Checker struct {
	m *Model
	// byGrantorInst/byGrantorDomain index permissions by grantor, the key
	// lookup on the reference's target side.
	byGrantorInst   map[string][]int
	byGrantorDomain map[string][]int
	// restricters are domains that declare exports, with their
	// domain-level permission indexes.
	restricters map[string][]int
	// DisableIndex forces full permission scans (the DESIGN.md ablation).
	DisableIndex bool
	// Cache, when non-nil, memoizes per-reference verdicts keyed by a
	// dependency fingerprint (cache.go). Concurrent-safe.
	Cache *ResultCache
	// indexHits counts candidate lookups answered through the grantor
	// indexes. Workers batch into per-scratch counters and flush once, so
	// the hot loop stays atomic-free.
	indexHits atomic.Int64
}

// IndexHits reports how many candidate-permission lookups were served by
// the grantor indexes (0 under DisableIndex).
func (c *Checker) IndexHits() int64 { return c.indexHits.Load() }

// scratch is per-worker reusable state: the candidate-permission buffer,
// the fingerprint encoding buffer, and the batched index-hit count. One
// scratch is owned by exactly one worker (or the serial loop) at a time.
type scratch struct {
	perms []int
	enc   []byte
	hits  int
}

// flush folds the scratch's batched counters into the checker.
func (c *Checker) flush(sc *scratch) {
	if sc.hits != 0 {
		c.indexHits.Add(int64(sc.hits))
		sc.hits = 0
	}
}

// NewChecker builds a Checker (and its indexes) for the model.
func NewChecker(m *Model) *Checker {
	c := &Checker{
		m:               m,
		byGrantorInst:   map[string][]int{},
		byGrantorDomain: map[string][]int{},
		restricters:     map[string][]int{},
	}
	for i := range m.Perms {
		p := &m.Perms[i]
		if p.GrantorInst != "" {
			c.byGrantorInst[p.GrantorInst] = append(c.byGrantorInst[p.GrantorInst], i)
		}
		if p.GrantorDomain != "" {
			c.byGrantorDomain[p.GrantorDomain] = append(c.byGrantorDomain[p.GrantorDomain], i)
			c.restricters[p.GrantorDomain] = append(c.restricters[p.GrantorDomain], i)
		}
	}
	return c
}

// permCovers checks the non-frequency conditions of the permission rule.
// It returns how far the permission got: 0 = wrong parties/data,
// 1 = parties+data ok but access denied, 2 = access ok but frequency
// fails, 3 = full cover.
func (c *Checker) permCovers(p *Perm, ref *Ref) int {
	// grantee must contain the source party
	if !c.m.partyInDomain(ref.Source.ID, p.Grantee) {
		return 0
	}
	// data subtree
	if !p.Var.Contains(ref.Var) {
		return 0
	}
	if !p.Access.Allows(ref.Access) {
		return 1
	}
	t, strict, infreq := ref.guarantee()
	if !freqImplies(t, strict, infreq, p.MinPeriod, p.Strict) {
		return 2
	}
	return 3
}

// candidatePerms returns the permission indexes whose grantor covers the
// reference's target. The result is written into (and aliases) the
// scratch buffer, valid until the next call on the same scratch.
func (c *Checker) candidatePerms(ref *Ref, sc *scratch) []int {
	out := sc.perms[:0]
	if c.DisableIndex {
		for i := range c.m.Perms {
			p := &c.m.Perms[i]
			if p.GrantorInst == ref.Target.ID ||
				(p.GrantorDomain != "" && c.m.partyInDomain(ref.Target.ID, p.GrantorDomain)) {
				out = append(out, i)
			}
		}
		sc.perms = out
		return out
	}
	sc.hits++
	out = append(out, c.byGrantorInst[ref.Target.ID]...)
	for dom := range c.m.partyDomains[ref.Target.ID] {
		out = append(out, c.byGrantorDomain[dom]...)
	}
	sort.Ints(out)
	sc.perms = out
	return out
}

// checkRef evaluates one reference and appends violations.
func (c *Checker) checkRef(ref *Ref, out *[]Violation, sc *scratch) {
	// Rule 3: support.
	if !c.m.effectiveSupports(ref.Target, ref.Var) {
		*out = append(*out, Violation{
			Kind: KindNoSupport,
			Ref:  ref,
			Message: fmt.Sprintf("%s: target %s (%s) does not support %s",
				ref, ref.Target.ID, ref.Target.Hosted(), ref.Var.Path()),
		})
	}
	// Rule 1: permission.
	best := 0
	var bestPerm *Perm
	for _, pi := range c.candidatePerms(ref, sc) {
		p := &c.m.Perms[pi]
		level := c.permCovers(p, ref)
		if level > best {
			best = level
			bestPerm = p
		}
		if best == 3 {
			break
		}
	}
	switch best {
	case 3:
		// permitted
	case 2:
		*out = append(*out, Violation{
			Kind: KindFrequencyViolation, Ref: ref, NearMiss: bestPerm,
			Message: fmt.Sprintf("%s: permitted at most every %gs by %s, but the reference only guarantees %s",
				ref, bestPerm.MinPeriod, bestPerm.DeclaredBy, ref.Freq),
		})
	case 1:
		*out = append(*out, Violation{
			Kind: KindAccessViolation, Ref: ref, NearMiss: bestPerm,
			Message: fmt.Sprintf("%s: %s grants only %s access",
				ref, bestPerm.DeclaredBy, bestPerm.Access),
		})
	default:
		*out = append(*out, Violation{
			Kind: KindNoPermission, Ref: ref,
			Message: fmt.Sprintf("%s: no permission covers this reference", ref),
		})
	}
	// Rule 2: domain restrictions.
	for dom := range c.m.partyDomains[ref.Target.ID] {
		permIdxs, declares := c.restricters[dom]
		if !declares {
			continue
		}
		if c.m.partyInDomain(ref.Source.ID, dom) {
			continue // source inside the restricting domain
		}
		ok := false
		var near *Perm
		for _, pi := range permIdxs {
			p := &c.m.Perms[pi]
			level := c.permCovers(p, ref)
			if level == 3 {
				ok = true
				break
			}
			if level > 0 {
				near = p
			}
		}
		if !ok {
			*out = append(*out, Violation{
				Kind: KindDomainRestriction, Ref: ref, NearMiss: near,
				Message: fmt.Sprintf("%s: domain %s restricts access to its members and grants no covering export",
					ref, dom),
			})
		}
	}
}

// unresolvedViolation renders one unresolved query target as a
// violation; shared by the serial and sharded checkers of both engines.
func unresolvedViolation(u *UnresolvedTarget) Violation {
	return Violation{
		Kind:       KindUnresolvedTarget,
		Unresolved: u,
		Message: fmt.Sprintf("%s query of %q cannot be resolved: %s",
			u.Source.ID, u.Query.Target, u.Reason),
	}
}

// Check runs the full consistency check.
func (c *Checker) Check() *Report {
	rep := &Report{Model: c.m}
	var sc scratch
	for i := range c.m.Refs {
		c.checkRefWith(&c.m.Refs[i], &rep.Violations, &sc)
	}
	c.flush(&sc)
	rep.RefsChecked = len(c.m.Refs)
	c.checkProxies(&rep.Violations)
	for i := range c.m.Unresolved {
		rep.Violations = append(rep.Violations, unresolvedViolation(&c.m.Unresolved[i]))
	}
	return rep
}

// Check is the convenience entry point: build the model and run the
// indexed checker serially. It is equivalent to CheckContext with a
// background context and one worker.
func Check(m *Model) *Report { return NewChecker(m).Check() }

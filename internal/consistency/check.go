package consistency

import (
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync/atomic"

	"nmsl/internal/obs"
)

// Kind classifies a consistency violation.
type Kind string

// Violation kinds. The checker reports "the immediate causes for
// inconsistency" (section 4.2), so each failed reference is classified by
// the nearest-miss condition.
const (
	// KindNoPermission: no permission's grantee/grantor/data covers the
	// reference at all.
	KindNoPermission Kind = "no-permission"
	// KindAccessViolation: a permission covers the parties and data but
	// its access mode does not allow the reference's mode.
	KindAccessViolation Kind = "access-violation"
	// KindFrequencyViolation: a permission covers parties, data and
	// access, but the reference may query more often than permitted.
	KindFrequencyViolation Kind = "frequency-violation"
	// KindDomainRestriction: a domain containing the target (but not the
	// source) declares exports and none of them covers the reference.
	KindDomainRestriction Kind = "domain-restriction"
	// KindNoSupport: the target instance does not support the referenced
	// data (process view or hosting element's view).
	KindNoSupport Kind = "no-support"
	// KindUnresolvedTarget: a query target resolved to no instance.
	KindUnresolvedTarget Kind = "unresolved-target"
)

// Violation is one immediate cause of inconsistency.
type Violation struct {
	Kind Kind
	// Ref is the failing reference (nil for unresolved targets).
	Ref *Ref
	// Unresolved is set for KindUnresolvedTarget.
	Unresolved *UnresolvedTarget
	// NearMiss is the closest permission considered, when one exists.
	NearMiss *Perm
	// Message is the human-readable cause.
	Message string
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("[%s] %s", v.Kind, v.Message)
}

// Error makes Violation usable as an error value (and with errors.As),
// so callers can surface individual causes through error-handling paths.
func (v Violation) Error() string { return v.String() }

// Report is the checker's result.
type Report struct {
	Model *Model
	// Violations holds every immediate cause found, in a deterministic,
	// documented order — the sort key is (reference order, rule order):
	// references in model order (system-hosted instances in system
	// declaration order, then domain-hosted instances in domain order,
	// queries and requested variables in declaration order), each
	// reference's causes in rule order (support, permission, domain
	// restriction); then proxy violations in declaration order; then
	// unresolved targets in discovery order. Serial and parallel checks
	// produce identical ordering.
	Violations []Violation
	// RefsChecked counts the references examined. Equal to the model's
	// reference count except when the check was cancelled or stopped by
	// FailFast.
	RefsChecked int
	// Metrics is this run's observability snapshot — shard timings,
	// worker occupancy, refs and violation counts (the MetricCheck*
	// names in shard.go). Set by CheckContext; nil from the serial
	// Check/CheckLogic paths and when Options.Metrics is obs.Disabled.
	Metrics obs.Snapshot
}

// Consistent reports whether the specification passed.
func (r *Report) Consistent() bool { return len(r.Violations) == 0 }

// String renders the report the way the paper describes: either a clean
// bill or the list of immediate causes.
func (r *Report) String() string {
	var b strings.Builder
	if r.Consistent() {
		fmt.Fprintf(&b, "consistent: %d references, %d permissions, %d instances\n",
			r.RefsChecked, len(r.Model.Perms), len(r.Model.Instances))
		return b.String()
	}
	fmt.Fprintf(&b, "INCONSISTENT: %d violations (%d references checked)\n",
		len(r.Violations), r.RefsChecked)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	return b.String()
}

// Summary returns a one-line digest of the report: the verdict, plus
// violation counts broken down by kind for inconsistent specifications.
func (r *Report) Summary() string {
	if r.Consistent() {
		return fmt.Sprintf("consistent: %d references, %d permissions, %d instances",
			r.RefsChecked, len(r.Model.Perms), len(r.Model.Instances))
	}
	counts := map[Kind]int{}
	kinds := make([]string, 0, 4)
	for _, v := range r.Violations {
		if counts[v.Kind] == 0 {
			kinds = append(kinds, string(v.Kind))
		}
		counts[v.Kind]++
	}
	sort.Strings(kinds)
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%d %s", counts[Kind(k)], k))
	}
	return fmt.Sprintf("INCONSISTENT: %d violations (%s), %d references checked",
		len(r.Violations), strings.Join(parts, ", "), r.RefsChecked)
}

// ByKind returns the violations of one kind.
func (r *Report) ByKind(k Kind) []Violation {
	var out []Violation
	for _, v := range r.Violations {
		if v.Kind == k {
			out = append(out, v)
		}
	}
	return out
}

// Checker evaluates consistency over a Model through its columnar
// tables (columns.go): dense instance/domain/permission ids instead of
// string-keyed maps, so the per-reference hot path is map-free,
// lock-free and allocation-free. The tables are built once per Model
// and shared, which also makes NewChecker itself cheap — callers may
// construct a Checker per run without rebuilding any index.
type Checker struct {
	m  *Model
	co *columns
	// DisableIndex forces full permission scans (the DESIGN.md ablation).
	DisableIndex bool
	// Cache, when non-nil, memoizes per-reference verdicts keyed by a
	// dependency fingerprint (cache.go). Concurrent-safe.
	Cache *ResultCache
	// indexHits counts candidate lookups answered through the grantor
	// indexes. Workers batch into per-scratch counters and flush once, so
	// the hot loop stays atomic-free.
	indexHits atomic.Int64
	// deltaBits is CheckDelta's reusable dirty-instance bitset, sized to
	// the model on first use. Only the serial CheckDelta entry point
	// touches it — concurrent CheckDelta calls on one Checker were never
	// supported (each allocates its own Checker via NewChecker cheaply).
	deltaBits []uint64
}

// IndexHits reports how many candidate-permission lookups were served by
// the grantor indexes (0 under DisableIndex).
func (c *Checker) IndexHits() int64 { return c.indexHits.Load() }

// scratch is the per-worker arena: the candidate-permission buffer, the
// fingerprint encoding buffer, the cache-key buffer, and the batched
// index-hit and cache counters. Every buffer is bump-reused across the
// worker's references — after the first few references size the slabs,
// the steady-state per-reference path allocates nothing at any worker
// count (pinned by TestCheckSteadyStateZeroAlloc). It carries no
// pointers into the model, and one scratch is owned by exactly one
// worker (or the serial loop) at a time.
type scratch struct {
	perms []int32
	enc   []byte
	key   []byte
	hits  int
	cache cacheBatch
}

// flush folds the scratch's batched counters into the checker (and the
// attached result cache). Called once per worker, not per reference, so
// workers never contend on the shared counters mid-check.
func (c *Checker) flush(sc *scratch) {
	if sc.hits != 0 {
		c.indexHits.Add(int64(sc.hits))
		sc.hits = 0
	}
	if c.Cache != nil {
		c.Cache.merge(&sc.cache)
	}
}

// NewChecker builds a Checker for the model. The columnar tables it
// checks over are memoized on the Model, so repeated construction (one
// Checker per CheckContext run, per delta re-check, per service
// request) costs nothing after the first.
func NewChecker(m *Model) *Checker {
	return &Checker{m: m, co: m.columns()}
}

// permLevel checks permission pi against the reference, whose guarantee
// (t, strict, infreq) the caller hoisted. It returns how far the
// permission got: 0 = wrong parties/data, 1 = parties+data ok but
// access denied, 2 = access ok but frequency fails, 3 = full cover.
func (c *Checker) permLevel(pi int32, srcIdx int32, ref *Ref, t float64, strict, infreq bool) int {
	// grantee must contain the source party
	if !c.co.instHasDom(srcIdx, c.co.permGrantee[pi]) {
		return 0
	}
	p := &c.m.Perms[pi]
	// data subtree
	if !p.Var.Contains(ref.Var) {
		return 0
	}
	if !p.Access.Allows(ref.Access) {
		return 1
	}
	if !freqImplies(t, strict, infreq, p.MinPeriod, p.Strict) {
		return 2
	}
	return 3
}

// candidatePerms returns the permission indexes whose grantor covers the
// reference's target, in ascending index order (the order the
// fingerprint encoder hashes). The result is written into (and aliases)
// the scratch buffer, valid until the next call on the same scratch.
func (c *Checker) candidatePerms(ref *Ref, sc *scratch) []int32 {
	out := sc.perms[:0]
	co := c.co
	ti := ref.Target.idx
	if c.DisableIndex {
		for pi := range c.m.Perms {
			if co.permGrantorInst[pi] == ti || co.instHasDom(ti, co.permGrantorDom[pi]) {
				out = append(out, int32(pi))
			}
		}
		sc.perms = out
		return out
	}
	sc.hits++
	out = append(out, co.permsByInst[ti]...)
	for _, d := range co.instDoms(ti) {
		out = append(out, co.permsByDom[d]...)
	}
	slices.Sort(out)
	sc.perms = out
	return out
}

// checkRef evaluates one reference and appends violations.
func (c *Checker) checkRef(ref *Ref, out *[]Violation, sc *scratch) {
	co := c.co
	si, ti := ref.Source.idx, ref.Target.idx
	// Rule 3: support.
	if !co.supports(ti, ref.Var) {
		*out = append(*out, Violation{
			Kind: KindNoSupport,
			Ref:  ref,
			Message: fmt.Sprintf("%s: target %s (%s) does not support %s",
				ref, ref.Target.ID, ref.Target.Hosted(), ref.Var.Path()),
		})
	}
	// Rule 1: permission. The guarantee is constant across every
	// permission probe for the reference, so hoist it.
	t, strict, infreq := ref.guarantee()
	best := 0
	var bestPerm *Perm
	for _, pi := range c.candidatePerms(ref, sc) {
		level := c.permLevel(pi, si, ref, t, strict, infreq)
		if level > best {
			best = level
			bestPerm = &c.m.Perms[pi]
		}
		if best == 3 {
			break
		}
	}
	switch best {
	case 3:
		// permitted
	case 2:
		*out = append(*out, Violation{
			Kind: KindFrequencyViolation, Ref: ref, NearMiss: bestPerm,
			Message: fmt.Sprintf("%s: permitted at most every %gs by %s, but the reference only guarantees %s",
				ref, bestPerm.MinPeriod, bestPerm.DeclaredBy, ref.Freq),
		})
	case 1:
		*out = append(*out, Violation{
			Kind: KindAccessViolation, Ref: ref, NearMiss: bestPerm,
			Message: fmt.Sprintf("%s: %s grants only %s access",
				ref, bestPerm.DeclaredBy, bestPerm.Access),
		})
	default:
		*out = append(*out, Violation{
			Kind: KindNoPermission, Ref: ref,
			Message: fmt.Sprintf("%s: no permission covers this reference", ref),
		})
	}
	// Rule 2: domain restrictions. Domain ids ascend in sorted-name
	// order, so multiple restriction violations on one reference emit
	// deterministically (the map iteration this replaces did not
	// guarantee that).
	for _, d := range co.instDoms(ti) {
		permIdxs := co.permsByDom[d]
		if len(permIdxs) == 0 {
			continue // domain declares no exports, restricts nothing
		}
		if co.instHasDom(si, d) {
			continue // source inside the restricting domain
		}
		ok := false
		var near *Perm
		for _, pi := range permIdxs {
			level := c.permLevel(pi, si, ref, t, strict, infreq)
			if level == 3 {
				ok = true
				break
			}
			if level > 0 {
				near = &c.m.Perms[pi]
			}
		}
		if !ok {
			*out = append(*out, Violation{
				Kind: KindDomainRestriction, Ref: ref, NearMiss: near,
				Message: fmt.Sprintf("%s: domain %s restricts access to its members and grants no covering export",
					ref, co.domName[d]),
			})
		}
	}
}

// unresolvedViolation renders one unresolved query target as a
// violation; shared by the serial and sharded checkers of both engines.
func unresolvedViolation(u *UnresolvedTarget) Violation {
	return Violation{
		Kind:       KindUnresolvedTarget,
		Unresolved: u,
		Message: fmt.Sprintf("%s query of %q cannot be resolved: %s",
			u.Source.ID, u.Query.Target, u.Reason),
	}
}

// Check runs the full consistency check.
func (c *Checker) Check() *Report {
	rep := &Report{Model: c.m}
	var sc scratch
	for i := range c.m.Refs {
		c.checkRefWith(&c.m.Refs[i], &rep.Violations, &sc)
	}
	c.flush(&sc)
	rep.RefsChecked = len(c.m.Refs)
	c.checkProxies(&rep.Violations)
	for i := range c.m.Unresolved {
		rep.Violations = append(rep.Violations, unresolvedViolation(&c.m.Unresolved[i]))
	}
	return rep
}

// Check is the convenience entry point: build the model and run the
// indexed checker serially. It is equivalent to CheckContext with a
// background context and one worker.
func Check(m *Model) *Report { return NewChecker(m).Check() }

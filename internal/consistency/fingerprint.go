package consistency

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"strconv"

	"nmsl/internal/mib"
)

// Dependency fingerprints (the incremental-checking tentpole, layer 3).
// A reference's verdict depends on a small, enumerable slice of the model:
// the reference tuple itself, the target's support views, the containment
// ancestry of both parties, and the candidate permissions reachable
// through the grantor indexes (which subsume the restriction rule's
// export lists). The fingerprint hashes a canonical encoding of exactly
// that slice, so a cached verdict may be replayed iff the fingerprint is
// unchanged. MIB nodes are encoded by their full dotted path — a path
// names the node's entire ancestor chain, so any re-parenting or rename
// in the touched subtree changes the encoding.

// Key returns a stable identity for the reference across model rebuilds:
// the reference tuple, without any of the model state the verdict depends
// on. Duplicate references (identical queries) share a key — and, by
// construction, a fingerprint and a verdict — so sharing a cache entry is
// sound.
func (r *Ref) Key() string { return string(r.appendKey(nil)) }

// appendKey appends the Key encoding to b and returns the extended
// slice. The hot cached path builds keys into a per-worker scratch
// buffer this way and looks them up without materializing a string
// (cache.go), so a warm steady-state check allocates nothing per
// reference. The byte encoding is identical to Key's — persisted cache
// files from either path interoperate.
func (r *Ref) appendKey(b []byte) []byte {
	t, strict, infreq := r.guarantee()
	b = append(b, r.Source.ID...)
	b = append(b, 0)
	b = append(b, r.Target.ID...)
	b = append(b, 0)
	b = append(b, r.Var.Path()...)
	b = append(b, 0)
	b = strconv.AppendInt(b, int64(r.Access), 10)
	b = append(b, 0)
	b = strconv.AppendUint(b, math.Float64bits(t), 16)
	b = append(b, 0)
	b = append(b, boolByteRaw(strict), boolByteRaw(infreq), 0)
	b = append(b, r.Resolution...)
	return b
}

func boolByteRaw(v bool) byte {
	if v {
		return '1'
	}
	return '0'
}

// encoder appends NUL-separated fields into a reusable scratch buffer.
type encoder struct{ b []byte }

func (e *encoder) str(s string) {
	e.b = append(e.b, s...)
	e.b = append(e.b, 0)
}

func (e *encoder) f64(f float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
	e.b = append(e.b, buf[:]...)
	e.b = append(e.b, 0)
}

func (e *encoder) bool(v bool) {
	if v {
		e.b = append(e.b, 1, 0)
	} else {
		e.b = append(e.b, 0, 0)
	}
}

func (e *encoder) access(a mib.Access) { e.b = append(e.b, byte(a), 0) }

// view encodes a support view: each declared pattern together with the
// full path of the node it currently resolves to (or a miss marker), so
// both view edits and MIB restructurings under an unchanged pattern are
// visible.
func (e *encoder) view(m *Model, view []string) {
	for _, v := range view {
		e.str(v)
		if n := m.resolveVar(v); n != nil {
			e.str(n.Path())
		} else {
			e.str("\x01unresolved")
		}
	}
	e.str("\x02end-view")
}

// fingerprint hashes everything checkRef consults for the reference. The
// scratch's encoding buffer is reused across calls.
func (c *Checker) fingerprint(ref *Ref, sc *scratch) [32]byte {
	e := encoder{b: sc.enc[:0]}
	m := c.m

	// The reference tuple (guarantee covers Freq's verdict-relevant
	// content; Freq.String appears in messages, so encode its parts too).
	e.str(ref.Source.ID)
	e.str(ref.Target.ID)
	e.str(ref.Var.Path())
	e.access(ref.Access)
	e.str(ref.Freq.Op)
	e.f64(ref.Freq.Seconds)
	e.bool(ref.Freq.Infrequent)
	e.str(string(ref.Resolution))

	// Rule 3: the target's effective support — its process view and, for
	// system-hosted instances, the element view.
	e.str(ref.Target.Proc.Name)
	e.view(m, ref.Target.Proc.Supports)
	e.str(ref.Target.System)
	if ref.Target.System != "" {
		if ss := m.Spec.Systems[ref.Target.System]; ss != nil {
			e.view(m, ss.Supports)
		}
	}

	// Containment ancestry of both parties (sorted, cached): grantee
	// cover checks for the source, grantor/restriction domains for the
	// target.
	for _, d := range m.sortedPartyDomains(ref.Source.ID) {
		e.str(d)
	}
	e.str("\x02end-src")
	for _, d := range m.sortedPartyDomains(ref.Target.ID) {
		e.str(d)
	}
	e.str("\x02end-tgt")

	// The candidate permissions, in index order. These subsume the
	// restriction rule: a restricting domain's export list is exactly its
	// grantor-domain permissions, all of which are candidates for any
	// target the domain contains.
	for _, pi := range c.candidatePerms(ref, sc) {
		p := &m.Perms[pi]
		e.str(p.Grantee)
		e.str(p.GrantorInst)
		e.str(p.GrantorDomain)
		e.str(p.DeclaredBy)
		e.str(p.Var.Path())
		e.access(p.Access)
		e.f64(p.MinPeriod)
		e.bool(p.Strict)
	}

	sc.enc = e.b
	return sha256.Sum256(e.b)
}

package consistency

import (
	"strings"
	"testing"

	"nmsl/internal/sema"
)

// checkDeltaPair runs the full pipeline for an edit: compile both
// revisions, diff them, CheckDelta against the previous report, and
// compare with a fresh full check of the new revision.
func checkDeltaPair(t *testing.T, oldSrc, newSrc string, cache *ResultCache) (*Report, *Report) {
	t.Helper()
	oldSpec, newSpec := buildSpec(t, oldSrc), buildSpec(t, newSrc)
	m1, m2 := BuildModel(oldSpec), BuildModel(newSpec)
	prev := Check(m1)
	delta := DeltaFromSpecs(oldSpec, newSpec)
	chk := NewChecker(m2)
	chk.Cache = cache
	got := chk.CheckDelta(prev, delta)
	want := Check(m2)
	return got, want
}

// TestCheckDeltaParity: for every mutation class, the incremental
// re-check must render byte-identically to a full check of the edited
// specification.
func TestCheckDeltaParity(t *testing.T) {
	edits := map[string]func(string) string{
		"no-op reformat": func(s string) string {
			return strings.Replace(s, "domain public ::=\n    domain east;",
				"domain public ::=\n\n    domain east;", 1)
		},
		"perm access widened": func(s string) string {
			return strings.Replace(s, "exports mgmt.mib to \"east\"\n        access ReadOnly",
				"exports mgmt.mib to \"east\"\n        access Any", 1)
		},
		"perm frequency tightened": func(s string) string {
			return strings.Replace(s, "access ReadOnly\n        frequency >= 5 minutes;\nend process agentE",
				"access ReadOnly\n        frequency >= 30 minutes;\nend process agentE", 1)
		},
		"system removed from domain": func(s string) string {
			return strings.Replace(s, "domain east ::=\n    system host-e;",
				"domain east ::=", 1)
		},
		"support view narrowed": func(s string) string {
			return strings.Replace(s, "process agentE ::=\n    supports mgmt.mib;",
				"process agentE ::=\n    supports mgmt.mib.ip;", 1)
		},
		"instance added": func(s string) string {
			return strings.Replace(s, "    process agentE;\n    process pollerE;",
				"    process agentE;\n    process agentE;\n    process pollerE;", 1)
		},
		"type added (MIB changed, full fallback)": func(s string) string {
			return s + "\ntype SpareCounter ::=\n    INTEGER;\nend type SpareCounter.\n"
		},
	}
	for name, edit := range edits {
		t.Run(name, func(t *testing.T) {
			newSrc := edit(twoClusterSpec)
			if newSrc == twoClusterSpec {
				t.Fatal("edit did not apply")
			}
			got, want := checkDeltaPair(t, twoClusterSpec, newSrc, NewResultCache())
			if got.String() != want.String() {
				t.Errorf("delta re-check diverges:\n got: %s\nwant: %s", got, want)
			}
			if got.RefsChecked != want.RefsChecked {
				t.Errorf("RefsChecked = %d, want %d", got.RefsChecked, want.RefsChecked)
			}
		})
	}
}

// TestCheckDeltaReplaysViolations: verdicts of untouched references —
// including their violations — replay without re-evaluation, rebound to
// the new model's references.
func TestCheckDeltaReplaysViolations(t *testing.T) {
	// Make the west cluster inconsistent (poller too fast), then edit
	// only the east cluster.
	broken := strings.Replace(twoClusterSpec,
		"queries agentW\n        requests mgmt.mib.system\n        frequency >= 10 minutes;",
		"queries agentW\n        requests mgmt.mib.system\n        frequency >= 1 minutes;", 1)
	if broken == twoClusterSpec {
		t.Fatal("edit did not apply")
	}
	edited := strings.Replace(broken, "exports mgmt.mib to \"east\"\n        access ReadOnly",
		"exports mgmt.mib to \"east\"\n        access Any", 1)
	got, want := checkDeltaPair(t, broken, edited, nil)
	if got.String() != want.String() {
		t.Fatalf("replayed violations diverge:\n got: %s\nwant: %s", got, want)
	}
	if vs := got.ByKind(KindFrequencyViolation); len(vs) != 1 {
		t.Fatalf("expected the west frequency violation to survive: %s", got)
	} else if vs[0].Ref == nil || !strings.Contains(vs[0].Ref.Source.ID, "host-w") {
		t.Errorf("replayed violation not rebound to the new model's ref: %+v", vs[0])
	}
}

// TestCheckDeltaSameModel: a delta against the same model replays clean
// references directly by pointer.
func TestCheckDeltaSameModel(t *testing.T) {
	m := buildModel(t, twoClusterSpec)
	chk := NewChecker(m)
	prev := chk.Check()
	got := chk.CheckDelta(prev, &ModelDelta{})
	if got.String() != prev.String() {
		t.Fatalf("same-model delta diverges:\n got: %s\nwant: %s", got, prev)
	}
	inst := m.Refs[0].Source.ID
	got2 := chk.CheckDelta(prev, &ModelDelta{Instances: []string{inst}})
	if got2.String() != prev.String() {
		t.Fatalf("dirty-instance delta diverges:\n got: %s\nwant: %s", got2, prev)
	}
}

// TestCheckDeltaFallbacks: unusable inputs degrade to a full check.
func TestCheckDeltaFallbacks(t *testing.T) {
	m := buildModel(t, twoClusterSpec)
	chk := NewChecker(m)
	want := Check(m).String()
	prev := chk.Check()
	cases := map[string]func() *Report{
		"nil prev":    func() *Report { return chk.CheckDelta(nil, &ModelDelta{}) },
		"nil delta":   func() *Report { return chk.CheckDelta(prev, nil) },
		"full delta":  func() *Report { return chk.CheckDelta(prev, &ModelDelta{Full: true}) },
		"mib changed": func() *Report { return chk.CheckDelta(prev, &ModelDelta{MIBChanged: true}) },
		"truncated prev": func() *Report {
			trunc := &Report{Model: m, RefsChecked: len(m.Refs) - 1}
			return chk.CheckDelta(trunc, &ModelDelta{})
		},
	}
	for name, run := range cases {
		if got := run().String(); got != want {
			t.Errorf("%s: fallback diverges:\n got: %s\nwant: %s", name, got, want)
		}
	}
}

// TestDiffSpecs: position-only edits yield an empty delta; semantic
// edits name exactly the touched declarations.
func TestDiffSpecs(t *testing.T) {
	base := buildSpec(t, twoClusterSpec)
	reformatted := buildSpec(t, strings.Replace(twoClusterSpec,
		"domain public ::=", "\n\n\ndomain public ::=", 1))
	if d := sema.DiffSpecs(base, reformatted); !d.Empty() {
		t.Errorf("reformat produced a delta: %+v", d)
	}
	edited := buildSpec(t, strings.Replace(twoClusterSpec,
		"exports mgmt.mib to \"east\"", "exports mgmt.mib.ip to \"east\"", 1))
	d := sema.DiffSpecs(base, edited)
	if len(d.Processes) != 1 || d.Processes[0] != "agentE" {
		t.Errorf("processes delta = %v, want [agentE]", d.Processes)
	}
	if len(d.Domains) != 0 || len(d.Systems) != 0 || len(d.Types) != 0 {
		t.Errorf("unexpected delta: %+v", d)
	}
	dn := sema.DiffSpecs(nil, base)
	if len(dn.Domains) != 3 || len(dn.Processes) != 4 || len(dn.Systems) != 2 {
		t.Errorf("nil-old delta = %+v", dn)
	}
}

package consistency

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// ResultCache memoizes per-reference verdicts across checker runs, keyed
// by Ref.Key and guarded by the dependency fingerprint (fingerprint.go):
// a hit replays the cached violations only when the fingerprint of
// everything the verdict depends on is unchanged. Safe for concurrent use
// by the sharded checker's workers. Caches survive process restarts
// through SaveFile/LoadFile (the nmslcheck -cache flag).
type ResultCache struct {
	mu      sync.RWMutex
	entries map[string]*cacheEntry
	// maxEntries caps the cache size; 0 means unbounded. When set, the
	// least-recently-used entries beyond the cap are evicted — eagerly
	// (with hysteresis) as entries are stored, and always before the
	// cache is persisted, so a long-lived daemon's cache file cannot
	// grow without bound.
	maxEntries int

	hits          atomic.Int64
	misses        atomic.Int64
	invalidations atomic.Int64
	evictions     atomic.Int64
	// tick is the recency clock: every hit or store stamps the entry,
	// and eviction drops the lowest stamps first.
	tick atomic.Int64
}

// cachedViolation is the persisted slice of a Violation: the kind and
// rendered message. Ref/NearMiss pointers are rebound on replay (the
// in-memory path) or dropped (the persisted path only feeds warm starts,
// where a fingerprint match guarantees the re-rendered message would be
// identical).
type cachedViolation struct {
	Kind    Kind   `json:"kind"`
	Message string `json:"message"`
}

type cacheEntry struct {
	fp [32]byte
	vs []cachedViolation
	// used is the entry's last-touched recency stamp (see ResultCache.tick).
	used atomic.Int64
}

// NewResultCache returns an empty cache.
func NewResultCache() *ResultCache {
	return &ResultCache{entries: map[string]*cacheEntry{}}
}

// lookup returns the cached violations for the key when the fingerprint
// matches, counting hit/miss/invalidation.
func (rc *ResultCache) lookup(key string, fp [32]byte) ([]cachedViolation, bool) {
	rc.mu.RLock()
	ent := rc.entries[key]
	rc.mu.RUnlock()
	if ent == nil {
		rc.misses.Add(1)
		return nil, false
	}
	if ent.fp != fp {
		rc.invalidations.Add(1)
		return nil, false
	}
	ent.used.Store(rc.tick.Add(1))
	rc.hits.Add(1)
	return ent.vs, true
}

// store records the verdict for the key under the fingerprint. When a
// max-entries cap is set and the cache has outgrown it by 25%, the
// least-recently-used overflow is trimmed in the same critical section
// (the hysteresis amortizes the O(n log n) sort across many stores).
func (rc *ResultCache) store(key string, fp [32]byte, vs []cachedViolation) {
	ent := &cacheEntry{fp: fp, vs: vs}
	ent.used.Store(rc.tick.Add(1))
	rc.mu.Lock()
	rc.entries[key] = ent
	if rc.maxEntries > 0 && len(rc.entries) > rc.maxEntries+rc.maxEntries/4 {
		rc.trimLocked(rc.maxEntries)
	}
	rc.mu.Unlock()
}

// SetMaxEntries caps the cache at n entries (0 restores unbounded
// growth) and immediately trims any existing overflow, LRU first.
func (rc *ResultCache) SetMaxEntries(n int) {
	if n < 0 {
		n = 0
	}
	rc.mu.Lock()
	rc.maxEntries = n
	if n > 0 {
		rc.trimLocked(n)
	}
	rc.mu.Unlock()
}

// Trim evicts the least-recently-used entries beyond the configured
// cap and returns how many were dropped (always 0 when no cap is set).
func (rc *ResultCache) Trim() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.maxEntries <= 0 {
		return 0
	}
	return rc.trimLocked(rc.maxEntries)
}

// trimLocked drops all but the keep most-recently-used entries. Caller
// holds the write lock.
func (rc *ResultCache) trimLocked(keep int) int {
	over := len(rc.entries) - keep
	if over <= 0 {
		return 0
	}
	type aged struct {
		key  string
		used int64
	}
	all := make([]aged, 0, len(rc.entries))
	for k, ent := range rc.entries {
		all = append(all, aged{k, ent.used.Load()})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].used < all[j].used })
	for _, a := range all[:over] {
		delete(rc.entries, a.key)
	}
	rc.evictions.Add(int64(over))
	return over
}

// Len returns the number of cached verdicts.
func (rc *ResultCache) Len() int {
	rc.mu.RLock()
	defer rc.mu.RUnlock()
	return len(rc.entries)
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Hits, Misses, Invalidations int64
	// Evictions counts entries dropped by the LRU cap.
	Evictions int64
	Entries   int
}

// Stats snapshots the counters.
func (rc *ResultCache) Stats() CacheStats {
	return CacheStats{
		Hits:          rc.hits.Load(),
		Misses:        rc.misses.Load(),
		Invalidations: rc.invalidations.Load(),
		Evictions:     rc.evictions.Load(),
		Entries:       rc.Len(),
	}
}

// cacheFile is the persisted JSON form.
type cacheFile struct {
	Version int                       `json:"version"`
	Entries map[string]cacheFileEntry `json:"entries"`
}

type cacheFileEntry struct {
	FP         string            `json:"fp"`
	Violations []cachedViolation `json:"violations,omitempty"`
}

// SaveFile persists the cache as JSON. A configured max-entries cap is
// enforced first (LRU trim), so the file on disk never exceeds it.
func (rc *ResultCache) SaveFile(path string) error {
	rc.Trim()
	rc.mu.RLock()
	out := cacheFile{Version: 1, Entries: make(map[string]cacheFileEntry, len(rc.entries))}
	for k, ent := range rc.entries {
		out.Entries[k] = cacheFileEntry{
			FP:         hex.EncodeToString(ent.fp[:]),
			Violations: ent.vs,
		}
	}
	rc.mu.RUnlock()
	data, err := json.Marshal(out)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadFile reads a cache persisted by SaveFile, replacing the current
// entries. A malformed file or unknown version is an error; the cache is
// left empty in that case (callers degrade to a cold start).
func (rc *ResultCache) LoadFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var in cacheFile
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("cache %s: %w", path, err)
	}
	if in.Version != 1 {
		return fmt.Errorf("cache %s: unsupported version %d", path, in.Version)
	}
	entries := make(map[string]*cacheEntry, len(in.Entries))
	for k, fe := range in.Entries {
		fp, err := hex.DecodeString(fe.FP)
		if err != nil || len(fp) != 32 {
			return fmt.Errorf("cache %s: bad fingerprint for %q", path, k)
		}
		ent := &cacheEntry{vs: fe.Violations}
		copy(ent.fp[:], fp)
		ent.used.Store(rc.tick.Add(1))
		entries[k] = ent
	}
	rc.mu.Lock()
	rc.entries = entries
	if rc.maxEntries > 0 {
		rc.trimLocked(rc.maxEntries)
	}
	rc.mu.Unlock()
	return nil
}

// checkRefWith dispatches one reference through the cache when one is
// attached, and plain checkRef otherwise.
func (c *Checker) checkRefWith(ref *Ref, out *[]Violation, sc *scratch) {
	if c.Cache == nil {
		c.checkRef(ref, out, sc)
		return
	}
	c.checkRefCached(ref, out, sc)
}

// checkRefCached consults the result cache before evaluating. Replayed
// violations carry the cached message with the Ref pointer rebound to
// this model's reference; NearMiss is not recoverable from a persisted
// entry and is left nil on replay (the rendered message already embeds
// the near-miss description).
func (c *Checker) checkRefCached(ref *Ref, out *[]Violation, sc *scratch) {
	key := ref.Key()
	fp := c.fingerprint(ref, sc)
	if vs, ok := c.Cache.lookup(key, fp); ok {
		for _, v := range vs {
			*out = append(*out, Violation{Kind: v.Kind, Ref: ref, Message: v.Message})
		}
		return
	}
	before := len(*out)
	c.checkRef(ref, out, sc)
	fresh := (*out)[before:]
	var vs []cachedViolation
	if len(fresh) > 0 {
		vs = make([]cachedViolation, len(fresh))
		for i, v := range fresh {
			vs[i] = cachedViolation{Kind: v.Kind, Message: v.Message}
		}
	}
	c.Cache.store(key, fp, vs)
}

// Cache metric names, recorded into the run registry by CheckContext and
// CheckDelta when a cache is attached.
const (
	MetricCheckCacheHits          = "nmsl_check_cache_hits_total"
	MetricCheckCacheMisses        = "nmsl_check_cache_misses_total"
	MetricCheckCacheInvalidations = "nmsl_check_cache_invalidations_total"
	MetricCheckDeltaDirty         = "nmsl_check_delta_dirty_total"
	MetricCheckDeltaReplayed      = "nmsl_check_delta_replayed_total"
)

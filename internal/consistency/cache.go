package consistency

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// cacheStripes is the stripe count of the ResultCache map. Keys spread
// across stripes by hash, so concurrent workers contend on a stripe's
// lock with probability ~1/64 instead of always (the single-mutex map
// this replaces serialized every worker of the sharded checker).
const cacheStripes = 64

// cacheStripe is one lock-plus-map shard of the cache, padded out so
// two stripes' locks never share a cache line.
type cacheStripe struct {
	mu      sync.RWMutex
	entries map[string]*cacheEntry
	_       [32]byte
}

// ResultCache memoizes per-reference verdicts across checker runs, keyed
// by Ref.Key and guarded by the dependency fingerprint (fingerprint.go):
// a hit replays the cached violations only when the fingerprint of
// everything the verdict depends on is unchanged. Safe for concurrent use
// by the sharded checker's workers: the entry map is striped, the
// counters are atomics, and the checker batches its hit/miss counts
// per worker (cacheBatch) so the hot path touches no shared line per
// lookup beyond the recency clock. Caches survive process restarts
// through SaveFile/LoadFile (the nmslcheck -cache flag).
type ResultCache struct {
	stripes [cacheStripes]cacheStripe
	// count tracks the total entries across stripes (Len without taking
	// 64 locks).
	count atomic.Int64
	// maxEntries caps the cache size; 0 means unbounded. When set, the
	// least-recently-used entries beyond the cap are evicted — eagerly
	// (with hysteresis) as entries are stored, and always before the
	// cache is persisted, so a long-lived daemon's cache file cannot
	// grow without bound.
	maxEntries atomic.Int64
	// confMu serializes whole-cache operations: trims, cap changes, and
	// bulk load. Per-key lookups and stores never take it.
	confMu sync.Mutex

	hits          atomic.Int64
	misses        atomic.Int64
	invalidations atomic.Int64
	evictions     atomic.Int64
	// tick is the recency clock: every hit or store stamps the entry,
	// and eviction drops the lowest stamps first.
	tick atomic.Int64
}

// cacheBatch accumulates a worker's hit/miss/invalidation counts
// locally; Checker.flush folds it into the cache's shared counters once
// per worker instead of once per reference.
type cacheBatch struct {
	hits, misses, invalidations int64
}

// merge folds a worker's batched counters in and resets the batch.
func (rc *ResultCache) merge(b *cacheBatch) {
	if b.hits != 0 {
		rc.hits.Add(b.hits)
		b.hits = 0
	}
	if b.misses != 0 {
		rc.misses.Add(b.misses)
		b.misses = 0
	}
	if b.invalidations != 0 {
		rc.invalidations.Add(b.invalidations)
		b.invalidations = 0
	}
}

// cachedViolation is the persisted slice of a Violation: the kind and
// rendered message. Ref/NearMiss pointers are rebound on replay (the
// in-memory path) or dropped (the persisted path only feeds warm starts,
// where a fingerprint match guarantees the re-rendered message would be
// identical).
type cachedViolation struct {
	Kind    Kind   `json:"kind"`
	Message string `json:"message"`
}

type cacheEntry struct {
	fp [32]byte
	vs []cachedViolation
	// used is the entry's last-touched recency stamp (see ResultCache.tick).
	used atomic.Int64
}

// NewResultCache returns an empty cache.
func NewResultCache() *ResultCache {
	rc := &ResultCache{}
	for i := range rc.stripes {
		rc.stripes[i].entries = map[string]*cacheEntry{}
	}
	return rc
}

// stripe picks the stripe for a key.
func (rc *ResultCache) stripe(key string) *cacheStripe {
	return &rc.stripes[rc.stripeIndex(key)]
}

// get returns the live entry for the key, or nil.
func (rc *ResultCache) get(key string) *cacheEntry {
	s := rc.stripe(key)
	s.mu.RLock()
	ent := s.entries[key]
	s.mu.RUnlock()
	return ent
}

// probe resolves a key/fingerprint pair against the entry map and
// stamps the recency clock on a hit; the caller accounts the outcome
// (+1 = hit, 0 = miss, -1 = stale fingerprint).
func (rc *ResultCache) probe(key string, fp [32]byte) ([]cachedViolation, int) {
	ent := rc.get(key)
	if ent == nil {
		return nil, 0
	}
	if ent.fp != fp {
		return nil, -1
	}
	ent.used.Store(rc.tick.Add(1))
	return ent.vs, 1
}

// lookup returns the cached violations for the key when the fingerprint
// matches, counting hit/miss/invalidation on the shared counters. The
// sharded checker uses lookupBatched instead.
func (rc *ResultCache) lookup(key string, fp [32]byte) ([]cachedViolation, bool) {
	vs, outcome := rc.probe(key, fp)
	switch outcome {
	case 1:
		rc.hits.Add(1)
		return vs, true
	case -1:
		rc.invalidations.Add(1)
	default:
		rc.misses.Add(1)
	}
	return nil, false
}

// lookupBatched is lookup with the counter updates deferred to the
// worker-local batch (folded in by Checker.flush).
func (rc *ResultCache) lookupBatched(key string, fp [32]byte, b *cacheBatch) ([]cachedViolation, bool) {
	vs, outcome := rc.probe(key, fp)
	switch outcome {
	case 1:
		b.hits++
		return vs, true
	case -1:
		b.invalidations++
	default:
		b.misses++
	}
	return nil, false
}

// lookupBatchedBytes is lookupBatched over a key still in its scratch
// byte buffer. The map probe goes through the compiler's zero-copy
// string(key) lookup form, so a warm hit materializes no key string —
// this is what keeps the steady-state cached check allocation-free per
// reference (checkRefCached builds the key with Ref.appendKey and only
// the cold store path pays for a real string).
func (rc *ResultCache) lookupBatchedBytes(key []byte, fp [32]byte, b *cacheBatch) ([]cachedViolation, bool) {
	s := &rc.stripes[rc.stripeIndexBytes(key)]
	s.mu.RLock()
	ent := s.entries[string(key)]
	s.mu.RUnlock()
	if ent == nil {
		b.misses++
		return nil, false
	}
	if ent.fp != fp {
		b.invalidations++
		return nil, false
	}
	ent.used.Store(rc.tick.Add(1))
	b.hits++
	return ent.vs, true
}

// store records the verdict for the key under the fingerprint. When a
// max-entries cap is set and the cache has outgrown it by 25%, the
// least-recently-used overflow across all stripes is trimmed (the
// hysteresis amortizes the O(n log n) sort across many stores).
func (rc *ResultCache) store(key string, fp [32]byte, vs []cachedViolation) {
	ent := &cacheEntry{fp: fp, vs: vs}
	ent.used.Store(rc.tick.Add(1))
	s := rc.stripe(key)
	s.mu.Lock()
	_, existed := s.entries[key]
	s.entries[key] = ent
	s.mu.Unlock()
	if !existed {
		n := rc.count.Add(1)
		if max := rc.maxEntries.Load(); max > 0 && n > max+max/4 {
			rc.confMu.Lock()
			rc.trimTo(int(max))
			rc.confMu.Unlock()
		}
	}
}

// SetMaxEntries caps the cache at n entries (0 restores unbounded
// growth) and immediately trims any existing overflow, LRU first.
func (rc *ResultCache) SetMaxEntries(n int) {
	if n < 0 {
		n = 0
	}
	rc.maxEntries.Store(int64(n))
	if n > 0 {
		rc.confMu.Lock()
		rc.trimTo(n)
		rc.confMu.Unlock()
	}
}

// Trim evicts the least-recently-used entries beyond the configured
// cap and returns how many were dropped (always 0 when no cap is set).
func (rc *ResultCache) Trim() int {
	max := rc.maxEntries.Load()
	if max <= 0 {
		return 0
	}
	rc.confMu.Lock()
	defer rc.confMu.Unlock()
	return rc.trimTo(int(max))
}

// trimTo drops all but the keep most-recently-used entries across every
// stripe. Caller holds confMu; stripe locks are taken briefly per
// stripe. An entry touched between the snapshot and the delete (its
// recency stamp moved) is spared — it is recent by definition.
func (rc *ResultCache) trimTo(keep int) int {
	type aged struct {
		stripe int
		key    string
		used   int64
	}
	all := make([]aged, 0, rc.count.Load())
	for i := range rc.stripes {
		s := &rc.stripes[i]
		s.mu.RLock()
		for k, ent := range s.entries {
			all = append(all, aged{i, k, ent.used.Load()})
		}
		s.mu.RUnlock()
	}
	over := len(all) - keep
	if over <= 0 {
		return 0
	}
	sort.Slice(all, func(i, j int) bool { return all[i].used < all[j].used })
	dropped := 0
	for _, a := range all[:over] {
		s := &rc.stripes[a.stripe]
		s.mu.Lock()
		if ent := s.entries[a.key]; ent != nil && ent.used.Load() == a.used {
			delete(s.entries, a.key)
			dropped++
		}
		s.mu.Unlock()
	}
	rc.count.Add(int64(-dropped))
	rc.evictions.Add(int64(dropped))
	return dropped
}

// Len returns the number of cached verdicts.
func (rc *ResultCache) Len() int { return int(rc.count.Load()) }

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Hits, Misses, Invalidations int64
	// Evictions counts entries dropped by the LRU cap.
	Evictions int64
	Entries   int
}

// Stats snapshots the counters.
func (rc *ResultCache) Stats() CacheStats {
	return CacheStats{
		Hits:          rc.hits.Load(),
		Misses:        rc.misses.Load(),
		Invalidations: rc.invalidations.Load(),
		Evictions:     rc.evictions.Load(),
		Entries:       rc.Len(),
	}
}

// cacheFile is the persisted JSON form.
type cacheFile struct {
	Version int                       `json:"version"`
	Entries map[string]cacheFileEntry `json:"entries"`
}

type cacheFileEntry struct {
	FP         string            `json:"fp"`
	Violations []cachedViolation `json:"violations,omitempty"`
}

// SaveFile persists the cache as JSON. A configured max-entries cap is
// enforced first (LRU trim), so the file on disk never exceeds it.
func (rc *ResultCache) SaveFile(path string) error {
	rc.Trim()
	out := cacheFile{Version: 1, Entries: make(map[string]cacheFileEntry, rc.Len())}
	for i := range rc.stripes {
		s := &rc.stripes[i]
		s.mu.RLock()
		for k, ent := range s.entries {
			out.Entries[k] = cacheFileEntry{
				FP:         hex.EncodeToString(ent.fp[:]),
				Violations: ent.vs,
			}
		}
		s.mu.RUnlock()
	}
	data, err := json.Marshal(out)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadFile reads a cache persisted by SaveFile, replacing the current
// entries. A malformed file or unknown version is an error; the cache is
// left unchanged in that case (callers degrade to a cold start).
func (rc *ResultCache) LoadFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var in cacheFile
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("cache %s: %w", path, err)
	}
	if in.Version != 1 {
		return fmt.Errorf("cache %s: unsupported version %d", path, in.Version)
	}
	fresh := make([]map[string]*cacheEntry, cacheStripes)
	for i := range fresh {
		fresh[i] = map[string]*cacheEntry{}
	}
	for k, fe := range in.Entries {
		fp, err := hex.DecodeString(fe.FP)
		if err != nil || len(fp) != 32 {
			return fmt.Errorf("cache %s: bad fingerprint for %q", path, k)
		}
		ent := &cacheEntry{vs: fe.Violations}
		copy(ent.fp[:], fp)
		ent.used.Store(rc.tick.Add(1))
		fresh[rc.stripeIndex(k)][k] = ent
	}
	rc.confMu.Lock()
	total := 0
	for i := range rc.stripes {
		s := &rc.stripes[i]
		s.mu.Lock()
		s.entries = fresh[i]
		total += len(fresh[i])
		s.mu.Unlock()
	}
	rc.count.Store(int64(total))
	if max := rc.maxEntries.Load(); max > 0 {
		rc.trimTo(int(max))
	}
	rc.confMu.Unlock()
	return nil
}

// stripeIndex hashes the key (FNV-1a) onto a stripe index.
func (rc *ResultCache) stripeIndex(key string) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return int(h % cacheStripes)
}

// stripeIndexBytes is stripeIndex for a key that is still a byte slice
// (same hash, so the two lookup paths always agree on the stripe).
func (rc *ResultCache) stripeIndexBytes(key []byte) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return int(h % cacheStripes)
}

// checkRefWith dispatches one reference through the cache when one is
// attached, and plain checkRef otherwise.
func (c *Checker) checkRefWith(ref *Ref, out *[]Violation, sc *scratch) {
	if c.Cache == nil {
		c.checkRef(ref, out, sc)
		return
	}
	c.checkRefCached(ref, out, sc)
}

// checkRefCached consults the result cache before evaluating. Replayed
// violations carry the cached message with the Ref pointer rebound to
// this model's reference; NearMiss is not recoverable from a persisted
// entry and is left nil on replay (the rendered message already embeds
// the near-miss description). Counter updates batch into the scratch
// and reach the cache at the owner's flush. The key is built into the
// scratch's reusable buffer and only becomes a string on the cold store
// path, so a warm hit allocates nothing.
func (c *Checker) checkRefCached(ref *Ref, out *[]Violation, sc *scratch) {
	sc.key = ref.appendKey(sc.key[:0])
	fp := c.fingerprint(ref, sc)
	if vs, ok := c.Cache.lookupBatchedBytes(sc.key, fp, &sc.cache); ok {
		for _, v := range vs {
			*out = append(*out, Violation{Kind: v.Kind, Ref: ref, Message: v.Message})
		}
		return
	}
	before := len(*out)
	c.checkRef(ref, out, sc)
	fresh := (*out)[before:]
	var vs []cachedViolation
	if len(fresh) > 0 {
		vs = make([]cachedViolation, len(fresh))
		for i, v := range fresh {
			vs[i] = cachedViolation{Kind: v.Kind, Message: v.Message}
		}
	}
	c.Cache.store(string(sc.key), fp, vs)
}

// Cache metric names, recorded into the run registry by CheckContext and
// CheckDelta when a cache is attached.
const (
	MetricCheckCacheHits          = "nmsl_check_cache_hits_total"
	MetricCheckCacheMisses        = "nmsl_check_cache_misses_total"
	MetricCheckCacheInvalidations = "nmsl_check_cache_invalidations_total"
	MetricCheckDeltaDirty         = "nmsl_check_delta_dirty_total"
	MetricCheckDeltaReplayed      = "nmsl_check_delta_replayed_total"
)

package consistency

import (
	"strings"
	"testing"

	"nmsl/internal/extension"
	"nmsl/internal/parser"
	"nmsl/internal/sema"
)

const proxyExt = `
extension proxyClause ::=
    clause proxies;
    decltype process;
    subkeywords via, frequency;
    semantics namelist;
end extension proxyClause.
`

// proxySpecSrc declares a bridge that cannot answer queries itself and a
// proxy that answers for it.
const proxySpecSrc = `
process bridgeProxy ::=
    supports mgmt.mib.interfaces;
    proxies bridge7.site.org via lanpoll
        frequency >= 30 seconds;
    exports mgmt.mib.interfaces to "machineRoom"
        access ReadOnly
        frequency >= 1 minutes;
end process bridgeProxy.

system "bridge7.site.org" ::=
    cpu z80;
    interface p0 net machine-room-lan type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib.interfaces;
end system "bridge7.site.org".

system "proxy-host.site.org" ::=
    cpu sparc;
    interface ie0 net machine-room-lan type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib;
    process bridgeProxy;
end system "proxy-host.site.org".

domain machineRoom ::=
    system proxy-host.site.org;
    system bridge7.site.org;
end domain machineRoom.
`

func buildWithProxy(t *testing.T, src string) *Model {
	t.Helper()
	exts, err := extension.ParseFile("ext", proxyExt)
	if err != nil {
		t.Fatal(err)
	}
	a := sema.NewAnalyzer()
	extension.InstallAll(a.Tables(), exts)
	f, err := parser.Parse("test", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	a.AnalyzeFile(f)
	spec, err := a.Finish()
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return BuildModel(spec)
}

func TestProxyModel(t *testing.T) {
	m := buildWithProxy(t, proxySpecSrc)
	if len(m.Proxies) != 1 {
		t.Fatalf("proxies: %+v", m.Proxies)
	}
	p := m.Proxies[0]
	if p.Element != "bridge7.site.org" || p.Protocol != "lanpoll" {
		t.Fatalf("proxy: %+v", p)
	}
	if p.Freq.Seconds != 30 {
		t.Fatalf("poll freq: %+v", p.Freq)
	}
	if !strings.Contains(p.String(), "via lanpoll") {
		t.Errorf("String: %s", p)
	}
}

func TestProxyConsistent(t *testing.T) {
	m := buildWithProxy(t, proxySpecSrc)
	rep := Check(m)
	if !rep.Consistent() {
		t.Fatalf("proxy spec inconsistent:\n%s", rep)
	}
}

func TestProxyUnknownElement(t *testing.T) {
	src := strings.Replace(proxySpecSrc, "proxies bridge7.site.org via lanpoll",
		"proxies ghost.site.org via lanpoll", 1)
	m := buildWithProxy(t, src)
	rep := Check(m)
	if len(rep.ByKind(KindProxyUnknownElement)) != 1 {
		t.Fatalf("violations: %s", rep)
	}
}

func TestProxyViewExceedsElement(t *testing.T) {
	// The bridge only supports interfaces, but the proxy claims to relay
	// the full MIB.
	src := strings.Replace(proxySpecSrc, "supports mgmt.mib.interfaces;\n    proxies",
		"supports mgmt.mib.interfaces, mgmt.mib.tcp;\n    proxies", 1)
	m := buildWithProxy(t, src)
	rep := Check(m)
	if len(rep.ByKind(KindProxyView)) != 1 {
		t.Fatalf("violations: %s", rep)
	}
}

func TestProxyFrequencyStaleness(t *testing.T) {
	// The proxy polls at most every 5 minutes but lets clients query
	// every 1 minute: stale answers.
	src := strings.Replace(proxySpecSrc, "frequency >= 30 seconds", "frequency >= 5 minutes", 1)
	m := buildWithProxy(t, src)
	rep := Check(m)
	if len(rep.ByKind(KindProxyFrequency)) != 1 {
		t.Fatalf("violations: %s", rep)
	}
}

func TestProxyLoadCounted(t *testing.T) {
	m := buildWithProxy(t, proxySpecSrc)
	load := EstimateLoad(m, LoadOptions{})
	// the proxy polls the bridge every 30s -> 1/30 q/s on the element
	got := load.SystemRate["bridge7.site.org"]
	if got < 0.033 || got > 0.034 {
		t.Fatalf("element poll rate %v", got)
	}
	if load.NetworkBits["machine-room-lan"] == 0 {
		t.Fatal("proxy traffic not attributed to the network")
	}
}

func TestProxyAbsentWithoutExtension(t *testing.T) {
	// Without the extension clause there are no proxies in the model (the
	// clause would be a semantic error anyway); an empty Ext map must not
	// break model building.
	m := buildModel(t, freqSpec)
	if len(m.Proxies) != 0 {
		t.Fatalf("proxies: %+v", m.Proxies)
	}
}

package consistency

import (
	"fmt"
	"sort"
	"strings"
)

// Load estimation supports the Consistency Checker's speculative role
// (paper section 4.2): before connecting a new organization, "the
// administrator can make a specification of the new organization's
// expected interactions ... approximate values can be used to determine
// the amount of traffic generated". It also covers the section 4.1.4
// remark that interface speed matters for "determining if the processes
// on this network element will be able to respond to queries in a timely
// manner, or if this network element will be swamped with management
// requests".

// LoadOptions tune the estimate.
type LoadOptions struct {
	// AvgQueryBits is the assumed size of one query/response exchange on
	// the wire, in bits. Zero selects 2048 (a 256-byte SNMP exchange).
	AvgQueryBits float64
	// InfrequentPeriod is the period assumed for "infrequent" references.
	// Zero selects 3600 seconds.
	InfrequentPeriod float64
	// DefaultPeriod is assumed for references with no frequency clause.
	// Zero selects 60 seconds.
	DefaultPeriod float64
	// UtilizationWarn is the fraction of an interface's nominal speed
	// above which management traffic triggers a warning. Zero selects
	// 0.05 (5%).
	UtilizationWarn float64
	// AgentRateWarn is the per-agent query arrival rate (queries/second)
	// above which a warning is issued. Zero selects 10.
	AgentRateWarn float64
}

func (o *LoadOptions) fill() {
	if o.AvgQueryBits == 0 {
		o.AvgQueryBits = 2048
	}
	if o.InfrequentPeriod == 0 {
		o.InfrequentPeriod = 3600
	}
	if o.DefaultPeriod == 0 {
		o.DefaultPeriod = 60
	}
	if o.UtilizationWarn == 0 {
		o.UtilizationWarn = 0.05
	}
	if o.AgentRateWarn == 0 {
		o.AgentRateWarn = 10
	}
}

// LoadReport is the estimated steady-state management load.
type LoadReport struct {
	// InstanceRate is queries/second arriving at each agent instance.
	InstanceRate map[string]float64
	// SystemRate is queries/second arriving at each network element.
	SystemRate map[string]float64
	// NetworkBits is management traffic in bits/second per physical
	// network.
	NetworkBits map[string]float64
	// Warnings flag elements or networks at risk of being swamped.
	Warnings []string
}

// String renders the report, sorted for stable output.
func (r *LoadReport) String() string {
	var b strings.Builder
	b.WriteString("estimated management load:\n")
	for _, id := range sortedFloatKeys(r.InstanceRate) {
		fmt.Fprintf(&b, "  agent %-48s %8.4f queries/s\n", id, r.InstanceRate[id])
	}
	for _, id := range sortedFloatKeys(r.NetworkBits) {
		fmt.Fprintf(&b, "  net   %-48s %8.1f bits/s\n", id, r.NetworkBits[id])
	}
	for _, w := range r.Warnings {
		fmt.Fprintf(&b, "  WARNING: %s\n", w)
	}
	return b.String()
}

func sortedFloatKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// refRate estimates the query rate (1/period) a reference contributes.
func refRate(r *Ref, opts *LoadOptions) float64 {
	t, _, infreq := r.guarantee()
	switch {
	case infreq:
		return 1 / opts.InfrequentPeriod
	case t <= 0:
		return 1 / opts.DefaultPeriod
	default:
		return 1 / t
	}
}

// EstimateLoad computes the steady-state load implied by the model's
// references, assuming every possible reference happens at its maximum
// declared rate (the conservative reading of ref_eq: "it is possible that
// X references Y ... every T seconds").
func EstimateLoad(m *Model, opts LoadOptions) *LoadReport {
	opts.fill()
	rep := &LoadReport{
		InstanceRate: map[string]float64{},
		SystemRate:   map[string]float64{},
		NetworkBits:  map[string]float64{},
	}
	for i := range m.Refs {
		r := &m.Refs[i]
		rate := refRate(r, &opts)
		rep.InstanceRate[r.Target.ID] += rate
		if r.Target.System != "" {
			rep.SystemRate[r.Target.System] += rate
			if ss := m.Spec.Systems[r.Target.System]; ss != nil && len(ss.Interfaces) > 0 {
				// management traffic arrives over the element's first
				// interface (a simplification documented in DESIGN.md)
				rep.NetworkBits[ss.Interfaces[0].Net] += rate * opts.AvgQueryBits
			}
		}
	}
	// Proxy polling (section 3.1): the proxy's queries to the managed
	// element travel the element's network like any management traffic.
	for _, p := range m.Proxies {
		var rate float64
		switch {
		case p.Freq.Infrequent:
			rate = 1 / opts.InfrequentPeriod
		case p.Freq.MinPeriodSeconds() > 0:
			rate = 1 / p.Freq.MinPeriodSeconds()
		default:
			rate = 1 / opts.DefaultPeriod
		}
		rep.SystemRate[p.Element] += rate
		if ss := m.Spec.Systems[p.Element]; ss != nil && len(ss.Interfaces) > 0 {
			rep.NetworkBits[ss.Interfaces[0].Net] += rate * opts.AvgQueryBits
		}
	}
	for id, rate := range rep.InstanceRate {
		if rate > opts.AgentRateWarn {
			rep.Warnings = append(rep.Warnings,
				fmt.Sprintf("agent %s may be swamped: %.2f queries/s (threshold %.2f)", id, rate, opts.AgentRateWarn))
		}
	}
	for _, sysName := range sortedFloatKeys(rep.SystemRate) {
		ss := m.Spec.Systems[sysName]
		if ss == nil || len(ss.Interfaces) == 0 {
			continue
		}
		ifc := ss.Interfaces[0]
		bits := rep.SystemRate[sysName] * opts.AvgQueryBits
		if ifc.SpeedBPS > 0 && bits > opts.UtilizationWarn*float64(ifc.SpeedBPS) {
			rep.Warnings = append(rep.Warnings,
				fmt.Sprintf("system %s interface %s (%d bps) would carry %.0f bits/s of management traffic (> %.0f%% of capacity)",
					sysName, ifc.Name, ifc.SpeedBPS, bits, opts.UtilizationWarn*100))
		}
	}
	sort.Strings(rep.Warnings)
	return rep
}

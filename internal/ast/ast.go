// Package ast defines the typed specification model that the NMSL
// compiler's second pass builds from the generic parse tree: type,
// process, network element (system) and domain specifications (paper
// sections 4.1.2 through 4.1.5).
//
// The model deliberately mirrors the paper's split between abstractions
// (types and processes) and instantiations (systems and domains): "This
// allows the management information to be specified independent of its
// use … many network elements will store the same types of management
// data, and run network management software derived from the same
// source."
package ast

import (
	"fmt"
	"sort"
	"strings"

	"nmsl/internal/asn1"
	"nmsl/internal/mib"
	"nmsl/internal/parser"
	"nmsl/internal/token"
)

// Freq is a query-frequency constraint (Figure 4.3: Freq ::= BoundSpec
// Float TimeSpec | "infrequent"). Frequencies in NMSL are expressed as
// periods: "frequency >= 5 minutes" constrains interactions to at most
// one per 5 minutes.
type Freq struct {
	// Infrequent marks the paper's "infrequent" keyword: the interaction
	// happens rarely, with no specific period.
	Infrequent bool
	// Op is one of "<", "<=", ">", ">=" or "" for an exact period.
	Op string
	// Seconds is the period bound in seconds.
	Seconds float64
	Pos     token.Pos
}

// Unspecified reports whether no frequency clause was given.
func (f Freq) Unspecified() bool { return !f.Infrequent && f.Op == "" && f.Seconds == 0 }

// MinPeriodSeconds returns the smallest period the constraint admits
// between interactions, i.e. a lower bound on spacing. "infrequent" and
// unspecified return 0 (no guarantee expressed as a bound by ">" forms);
// "< T"/"<= T" promise nothing about spacing and also return 0.
func (f Freq) MinPeriodSeconds() float64 {
	switch f.Op {
	case ">", ">=", "":
		if f.Infrequent {
			return 0
		}
		return f.Seconds
	}
	return 0
}

// String renders the constraint in NMSL syntax.
func (f Freq) String() string {
	if f.Infrequent {
		return "infrequent"
	}
	if f.Unspecified() {
		return "unspecified"
	}
	unit, val := "seconds", f.Seconds
	switch {
	case f.Seconds >= 3600 && f.Seconds == float64(int64(f.Seconds/3600))*3600:
		unit, val = "hours", f.Seconds/3600
	case f.Seconds >= 60 && f.Seconds == float64(int64(f.Seconds/60))*60:
		unit, val = "minutes", f.Seconds/60
	}
	op := f.Op
	if op != "" {
		op += " "
	}
	return fmt.Sprintf("%s%g %s", op, val, unit)
}

// unitSeconds maps the TimeSpec keywords of Figure 4.3.
var unitSeconds = map[string]float64{
	"hours":   3600,
	"minutes": 60,
	"seconds": 1,
}

// ParseFreq parses the items following a "frequency" keyword:
// either "infrequent", or [op] number unit.
func ParseFreq(items []parser.Item) (Freq, error) {
	if len(items) == 0 {
		return Freq{}, fmt.Errorf("frequency clause is empty")
	}
	if items[0].IsWord("infrequent") {
		if len(items) != 1 {
			return Freq{}, fmt.Errorf("unexpected %s after \"infrequent\"", items[1].String())
		}
		return Freq{Infrequent: true, Pos: items[0].Pos}, nil
	}
	f := Freq{Pos: items[0].Pos}
	i := 0
	if items[0].Kind == parser.Op {
		switch items[0].Text {
		case "<", "<=", ">", ">=":
			f.Op = items[0].Text
			i++
		default:
			return Freq{}, fmt.Errorf("bad frequency bound %q", items[0].Text)
		}
	}
	if i >= len(items) {
		return Freq{}, fmt.Errorf("frequency bound %q missing value", f.Op)
	}
	var val float64
	switch items[i].Kind {
	case parser.Int:
		val = float64(items[i].IntVal)
	case parser.Float:
		if items[i].FloatVal == 0 && items[i].Text != "0" {
			return Freq{}, fmt.Errorf("bad frequency value %q", items[i].Text)
		}
		val = items[i].FloatVal
	default:
		return Freq{}, fmt.Errorf("expected frequency value, found %s", items[i].String())
	}
	i++
	if i >= len(items) || items[i].Kind != parser.Word {
		return Freq{}, fmt.Errorf("frequency value missing time unit (hours, minutes or seconds)")
	}
	mul, ok := unitSeconds[items[i].Text]
	if !ok {
		return Freq{}, fmt.Errorf("unknown time unit %q", items[i].Text)
	}
	i++
	if i != len(items) {
		return Freq{}, fmt.Errorf("unexpected %s after frequency", items[i].String())
	}
	f.Seconds = val * mul
	return f, nil
}

// TypeSpec is an NMSL type specification (section 4.1.2, Figure 4.1).
type TypeSpec struct {
	Name string
	// Body is the parsed ASN.1 type.
	Body *asn1.Type
	// Access is the declared access mode; AccessUnspecified inherits from
	// any containing type that uses this type (Figure 4.2).
	Access mib.Access
	Decl   *parser.Decl
}

// Export is an exports subclause: permission for another domain to access
// MIB variables (Figure 4.3: ExSpec).
type Export struct {
	// Vars are the exported MIB variable subtrees (dotted names).
	Vars []string
	// To names the domain the export is granted to.
	To string
	// Access is the granted access mode.
	Access mib.Access
	// Freq bounds how often the importing domain may query.
	Freq Freq
	Pos  token.Pos
}

// Selection is one "var := value" binding in a query's using clause.
type Selection struct {
	// Var is the MIB variable being constrained.
	Var string
	// Value is the raw item: a parameter name, literal, or "*".
	Value parser.Item
	Pos   token.Pos
}

// Query is a queries subclause: an interaction this process initiates
// (Figure 4.3: QrySpec). Figure 4.3 shows retrieval queries; the full
// language also supports modification and remote execution, expressed
// here by Access.
type Query struct {
	// Target is the queried process: a process name, or the name of a
	// Process-typed parameter (Figure 4.4's SysAddr).
	Target string
	// Requests are the requested MIB variables.
	Requests []string
	// Using are the selection bindings.
	Using []Selection
	// Access is the access mode the query needs: ReadOnly for retrieval
	// (the default), WriteOnly for modification, Any for remote execution.
	Access mib.Access
	// Freq bounds how often the query is made.
	Freq Freq
	Pos  token.Pos
}

// ProcParam is a formal process parameter (Figure 4.3: Param).
type ProcParam struct {
	Name string
	// Type is the parameter's type: an NMSL type name or the built-in
	// "Process" (Figure 4.4).
	Type string
	Pos  token.Pos
}

// ProcessSpec is a process specification (section 4.1.3): an abstraction
// describing a management process's supported data, exports, and queries.
type ProcessSpec struct {
	Name   string
	Params []ProcParam
	// Supports lists the MIB subtrees this process stores and can answer
	// queries for (making it an agent for that data).
	Supports []string
	// Exports are the permissions this process grants.
	Exports []Export
	// Queries are the interactions this process initiates.
	Queries []Query
	Decl    *parser.Decl
}

// IsAgent reports whether the process stores management data (supports a
// MIB view); the paper calls such processes agents, and processes that
// only initiate requests applications.
func (p *ProcessSpec) IsAgent() bool { return len(p.Supports) > 0 }

// Param returns the formal parameter with the given name, or nil.
func (p *ProcessSpec) Param(name string) *ProcParam {
	for i := range p.Params {
		if p.Params[i].Name == name {
			return &p.Params[i]
		}
	}
	return nil
}

// ArgKind classifies instantiation arguments.
type ArgKind int

const (
	// ArgStar is the "*" late-binding placeholder (Figure 4.8): the value
	// is supplied when the process is run.
	ArgStar ArgKind = iota
	// ArgString is a quoted string value.
	ArgString
	// ArgWord is an identifier value (e.g. a process name).
	ArgWord
	// ArgNumber is a numeric value.
	ArgNumber
)

// Arg is one actual argument of a process instantiation.
type Arg struct {
	Kind ArgKind
	Text string
	Num  float64
	Pos  token.Pos
}

// String renders the argument in NMSL syntax.
func (a Arg) String() string {
	switch a.Kind {
	case ArgStar:
		return "*"
	case ArgString:
		return fmt.Sprintf("%q", a.Text)
	case ArgNumber:
		return a.Text
	default:
		return a.Text
	}
}

// ProcInstance is a process instantiation on a system or in a domain
// (Figure 4.5: ProcInvoke; Figure 4.8).
type ProcInstance struct {
	// Name is the instantiated process type's name.
	Name string
	Args []Arg
	Pos  token.Pos
}

// String renders the instantiation in NMSL syntax.
func (pi ProcInstance) String() string {
	if len(pi.Args) == 0 {
		return pi.Name
	}
	parts := make([]string, len(pi.Args))
	for i, a := range pi.Args {
		parts[i] = a.String()
	}
	return pi.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Interface is one network interface of a network element (Figure 4.5:
// IfSpec).
type Interface struct {
	// Name is the interface identifier, e.g. "ie0".
	Name string
	// Net names the physical network the interface connects to.
	Net string
	// Protocols lists the protocols spoken on the interface.
	Protocols []string
	// Type is the interface type, e.g. "ethernet-csmacd".
	Type string
	// SpeedBPS is the nominal speed in bits per second. The paper notes
	// the speed matters for deciding whether the element can answer
	// management queries in time.
	SpeedBPS int64
	Pos      token.Pos
}

// SystemSpec is a network element specification (section 4.1.4): the
// physical properties of one device and what is instantiated on it.
type SystemSpec struct {
	Name string
	// CPU is the processor type, e.g. "sparc".
	CPU string
	// Interfaces are the element's network attachments.
	Interfaces []Interface
	// OpSys and OpSysVersion describe the operating system.
	OpSys        string
	OpSysVersion string
	// Supports lists the MIB subtrees this element's hardware and OS
	// support (instantiate).
	Supports []string
	// Processes are the management processes expected to run here.
	Processes []ProcInstance
	Decl      *parser.Decl
}

// DomainSpec is a domain specification (section 4.1.5): an administrative
// grouping of systems, processes and subdomains, with exports describing
// what other domains may access.
type DomainSpec struct {
	Name string
	// Systems are member network elements (by name).
	Systems []string
	// Subdomains are member domains (by name); domains may nest and
	// overlap.
	Subdomains []string
	// Processes are instantiated in the domain without naming a system.
	Processes []ProcInstance
	// Exports are domain-level permissions. The paper notes the
	// redundancy with process exports is deliberate: it is part of the
	// consistency mechanism and may further restrict access.
	Exports []Export
	Decl    *parser.Decl
}

// ExtClause is clause data captured by an extension-defined generic
// action (section 6.3). Extensions extend the basic language without
// changing the typed model's shape, so their data lives in this generic
// side store, keyed by the owning declaration.
type ExtClause struct {
	// DeclType and DeclName identify the declaration the clause appeared
	// in.
	DeclType, DeclName string
	// Keyword is the extension clause's keyword.
	Keyword string
	// Names holds name-list semantics results.
	Names []string
	// Freq holds frequency-clause semantics results.
	Freq Freq
	// Raw preserves the unparsed items for raw semantics.
	Raw []parser.Item
	Pos token.Pos
}

// Spec is a complete NMSL specification: all declarations of all input
// files, indexed by kind and name.
type Spec struct {
	Types     map[string]*TypeSpec
	Processes map[string]*ProcessSpec
	Systems   map[string]*SystemSpec
	Domains   map[string]*DomainSpec
	// MIB is the name tree, pre-populated with the standard layout and
	// extended with objects introduced by type specifications.
	MIB *mib.Tree
	// Ext stores extension-captured clause data keyed by
	// "decltype declname" (e.g. "process snmpProxy").
	Ext map[string][]ExtClause
}

// NewSpec returns an empty Spec with a standard MIB.
func NewSpec() *Spec {
	return &Spec{
		Types:     map[string]*TypeSpec{},
		Processes: map[string]*ProcessSpec{},
		Systems:   map[string]*SystemSpec{},
		Domains:   map[string]*DomainSpec{},
		MIB:       mib.NewStandard(),
		Ext:       map[string][]ExtClause{},
	}
}

// ExtKey builds the Ext map key for a declaration.
func ExtKey(declType, declName string) string { return declType + " " + declName }

// TypeNames returns the declared type names, sorted.
func (s *Spec) TypeNames() []string { return sortedKeys(s.Types) }

// ProcessNames returns the declared process names, sorted.
func (s *Spec) ProcessNames() []string { return sortedKeys(s.Processes) }

// SystemNames returns the declared system names, sorted.
func (s *Spec) SystemNames() []string { return sortedKeys(s.Systems) }

// DomainNames returns the declared domain names, sorted.
func (s *Spec) DomainNames() []string { return sortedKeys(s.Domains) }

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// DomainsContaining returns the names of all domains that contain the
// named system, directly or through subdomain nesting.
func (s *Spec) DomainsContaining(system string) []string {
	direct := map[string][]string{} // domain -> subdomains
	var hits []string
	for name, d := range s.Domains {
		for _, sys := range d.Systems {
			if sys == system {
				hits = append(hits, name)
			}
		}
		direct[name] = d.Subdomains
	}
	// propagate through nesting: a domain containing a hit domain also
	// contains the system.
	changed := true
	hitSet := map[string]bool{}
	for _, h := range hits {
		hitSet[h] = true
	}
	for changed {
		changed = false
		for name, subs := range direct {
			if hitSet[name] {
				continue
			}
			for _, sub := range subs {
				if hitSet[sub] {
					hitSet[name] = true
					changed = true
				}
			}
		}
	}
	out := make([]string, 0, len(hitSet))
	for name := range hitSet {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

package ast

import (
	"strings"
	"testing"

	"nmsl/internal/mib"
	"nmsl/internal/parser"
	"nmsl/internal/token"
)

func item(kind parser.ItemKind, text string, intVal int64) parser.Item {
	return parser.Item{Kind: kind, Text: text, IntVal: intVal, Pos: token.Pos{Line: 1, Column: 1}}
}

func TestParseFreqForms(t *testing.T) {
	cases := []struct {
		items   []parser.Item
		op      string
		seconds float64
		infreq  bool
	}{
		{[]parser.Item{item(parser.Word, "infrequent", 0)}, "", 0, true},
		{[]parser.Item{item(parser.Op, ">=", 0), item(parser.Int, "5", 5), item(parser.Word, "minutes", 0)}, ">=", 300, false},
		{[]parser.Item{item(parser.Op, ">", 0), item(parser.Int, "2", 2), item(parser.Word, "hours", 0)}, ">", 7200, false},
		{[]parser.Item{item(parser.Op, "<=", 0), item(parser.Int, "30", 30), item(parser.Word, "seconds", 0)}, "<=", 30, false},
		{[]parser.Item{item(parser.Int, "10", 10), item(parser.Word, "seconds", 0)}, "", 10, false},
		{[]parser.Item{{Kind: parser.Float, Text: "2.5", FloatVal: 2.5}, item(parser.Word, "minutes", 0)}, "", 150, false},
	}
	for i, c := range cases {
		f, err := ParseFreq(c.items)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if f.Op != c.op || f.Seconds != c.seconds || f.Infrequent != c.infreq {
			t.Errorf("case %d: got %+v", i, f)
		}
	}
}

func TestParseFreqErrors(t *testing.T) {
	bad := [][]parser.Item{
		nil,
		{item(parser.Op, ">=", 0)},
		{item(parser.Op, "!=", 0), item(parser.Int, "5", 5), item(parser.Word, "seconds", 0)},
		{item(parser.Op, ">=", 0), item(parser.Int, "5", 5)},
		{item(parser.Op, ">=", 0), item(parser.Int, "5", 5), item(parser.Word, "weeks", 0)},
		{item(parser.Op, ">=", 0), item(parser.Word, "five", 0), item(parser.Word, "seconds", 0)},
		{item(parser.Word, "infrequent", 0), item(parser.Int, "5", 5)},
		{item(parser.Int, "5", 5), item(parser.Word, "seconds", 0), item(parser.Int, "9", 9)},
		{{Kind: parser.Float, Text: "x.y"}, item(parser.Word, "seconds", 0)},
	}
	for i, items := range bad {
		if _, err := ParseFreq(items); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestFreqUnspecified(t *testing.T) {
	var f Freq
	if !f.Unspecified() {
		t.Error("zero Freq should be unspecified")
	}
	if (Freq{Infrequent: true}).Unspecified() {
		t.Error("infrequent is specified")
	}
	if (Freq{Seconds: 5}).Unspecified() {
		t.Error("period is specified")
	}
}

func TestArgString(t *testing.T) {
	cases := []struct {
		a    Arg
		want string
	}{
		{Arg{Kind: ArgStar}, "*"},
		{Arg{Kind: ArgString, Text: "host-a"}, `"host-a"`},
		{Arg{Kind: ArgWord, Text: "agent"}, "agent"},
		{Arg{Kind: ArgNumber, Text: "42", Num: 42}, "42"},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Errorf("Arg %v: %q want %q", c.a.Kind, got, c.want)
		}
	}
}

func TestProcInstanceString(t *testing.T) {
	pi := ProcInstance{Name: "p"}
	if pi.String() != "p" {
		t.Errorf("bare: %q", pi.String())
	}
	pi.Args = []Arg{{Kind: ArgStar}, {Kind: ArgString, Text: "x"}}
	if pi.String() != `p(*, "x")` {
		t.Errorf("with args: %q", pi.String())
	}
}

func TestProcessSpecHelpers(t *testing.T) {
	ps := &ProcessSpec{
		Name:   "p",
		Params: []ProcParam{{Name: "A", Type: "Process"}, {Name: "B", Type: "IpAddress"}},
	}
	if ps.IsAgent() {
		t.Error("no supports -> not an agent")
	}
	ps.Supports = []string{"mgmt.mib"}
	if !ps.IsAgent() {
		t.Error("supports -> agent")
	}
	if p := ps.Param("B"); p == nil || p.Type != "IpAddress" {
		t.Errorf("Param(B) = %+v", p)
	}
	if ps.Param("C") != nil {
		t.Error("Param(C) should be nil")
	}
}

func TestNewSpecAndNames(t *testing.T) {
	s := NewSpec()
	if s.MIB == nil || s.MIB.Lookup("mgmt.mib") == nil {
		t.Fatal("spec MIB not standard")
	}
	s.Types["b"] = &TypeSpec{Name: "b"}
	s.Types["a"] = &TypeSpec{Name: "a"}
	s.Processes["p"] = &ProcessSpec{Name: "p"}
	s.Systems["s"] = &SystemSpec{Name: "s"}
	s.Domains["d"] = &DomainSpec{Name: "d"}
	if got := s.TypeNames(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("TypeNames %v", got)
	}
	if len(s.ProcessNames()) != 1 || len(s.SystemNames()) != 1 || len(s.DomainNames()) != 1 {
		t.Error("name listings wrong")
	}
}

func TestExtKey(t *testing.T) {
	if ExtKey("process", "p") != "process p" {
		t.Errorf("ExtKey = %q", ExtKey("process", "p"))
	}
}

func TestDomainsContainingNested(t *testing.T) {
	s := NewSpec()
	s.Domains["leaf"] = &DomainSpec{Name: "leaf", Systems: []string{"host"}}
	s.Domains["mid"] = &DomainSpec{Name: "mid", Subdomains: []string{"leaf"}}
	s.Domains["top"] = &DomainSpec{Name: "top", Subdomains: []string{"mid"}}
	s.Domains["other"] = &DomainSpec{Name: "other"}
	got := s.DomainsContaining("host")
	want := "leaf mid top"
	if strings.Join(got, " ") != want {
		t.Errorf("DomainsContaining = %v, want %s", got, want)
	}
	if len(s.DomainsContaining("ghost")) != 0 {
		t.Error("unknown system contained somewhere")
	}
}

func TestFreqStringUnits(t *testing.T) {
	cases := map[string]Freq{
		">= 5 minutes": {Op: ">=", Seconds: 300},
		"> 2 hours":    {Op: ">", Seconds: 7200},
		"90 seconds":   {Seconds: 90},
		"2 minutes":    {Seconds: 120},
		"unspecified":  {},
		"infrequent":   {Infrequent: true},
	}
	for want, f := range cases {
		if got := f.String(); got != want {
			t.Errorf("%+v -> %q want %q", f, got, want)
		}
	}
}

func TestAccessReExports(t *testing.T) {
	// the ast package re-uses mib.Access; check the spec-level default
	// export semantics stay observable
	ex := Export{Access: mib.AccessReadOnly}
	if !ex.Access.Allows(mib.AccessReadOnly) || ex.Access.Allows(mib.AccessWriteOnly) {
		t.Error("access semantics broken")
	}
}

package logic

import (
	"fmt"
	"math/big"
	"testing"
)

// family returns a small ancestry database for resolution tests.
func family() *DB {
	db := NewDB()
	parent := func(a, b string) { db.Assert(Comp("parent", Atom(a), Atom(b))) }
	parent("tom", "bob")
	parent("tom", "liz")
	parent("bob", "ann")
	parent("bob", "pat")
	parent("pat", "jim")
	X, Y, Z := NewVar("X"), NewVar("Y"), NewVar("Z")
	// ancestor(X,Y) :- parent(X,Y).
	db.Assert(Comp("ancestor", X, Y), Call(Comp("parent", X, Y)))
	// ancestor(X,Y) :- parent(X,Z), ancestor(Z,Y).
	X2, Y2, Z2 := NewVar("X"), NewVar("Y"), NewVar("Z")
	db.Assert(Comp("ancestor", X2, Y2), Call(Comp("parent", X2, Z2)), Call(Comp("ancestor", Z2, Y2)))
	_ = Z
	return db
}

func solutionsOf(db *DB, goal Term, v Term) []string {
	s := NewSolver(db)
	var out []string
	s.Solve([]Goal{Call(goal)}, func(sol *Solution) bool {
		out = append(out, sol.Resolve(v).String())
		return true
	})
	return out
}

func TestFactQuery(t *testing.T) {
	db := family()
	X := NewVar("X")
	got := solutionsOf(db, Comp("parent", Atom("tom"), X), X)
	if len(got) != 2 || got[0] != "bob" || got[1] != "liz" {
		t.Fatalf("got %v", got)
	}
}

func TestGroundQuery(t *testing.T) {
	s := NewSolver(family())
	if !s.Prove(Call(Comp("parent", Atom("bob"), Atom("ann")))) {
		t.Error("parent(bob,ann) should hold")
	}
	if s.Prove(Call(Comp("parent", Atom("ann"), Atom("bob")))) {
		t.Error("parent(ann,bob) should not hold")
	}
	if s.Prove(Call(Comp("parent", Atom("nobody"), Atom("ann")))) {
		t.Error("unknown atom should not prove")
	}
}

func TestRecursiveRule(t *testing.T) {
	db := family()
	X := NewVar("X")
	got := solutionsOf(db, Comp("ancestor", Atom("tom"), X), X)
	want := map[string]bool{"bob": true, "liz": true, "ann": true, "pat": true, "jim": true}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for _, g := range got {
		if !want[g] {
			t.Errorf("unexpected ancestor %s", g)
		}
	}
}

func TestUnificationBuiltin(t *testing.T) {
	db := NewDB()
	s := NewSolver(db)
	X := NewVar("X")
	if !s.Prove(Call(Comp("=", X, Atom("hello")))) {
		t.Error("X = hello should prove")
	}
	if s.Prove(Call(Comp("=", Atom("a"), Atom("b")))) {
		t.Error("a = b should fail")
	}
	// compound unification
	if !s.Prove(Call(Comp("=", Comp("f", X, Atom("b")), Comp("f", Atom("a"), Atom("b"))))) {
		t.Error("f(X,b) = f(a,b) should prove")
	}
}

func TestOccursCheck(t *testing.T) {
	s := NewSolver(NewDB())
	X := NewVar("X")
	if s.Prove(Call(Comp("=", X, Comp("f", X)))) {
		t.Error("X = f(X) must fail under the occurs check")
	}
}

func TestNegationAsFailure(t *testing.T) {
	db := family()
	s := NewSolver(db)
	// jim has no children: \+ parent(jim, _)
	Y := NewVar("Y")
	if !s.Prove(Not(Call(Comp("parent", Atom("jim"), Y)))) {
		t.Error("\\+ parent(jim,_) should prove (closed world)")
	}
	Y2 := NewVar("Y")
	if s.Prove(Not(Call(Comp("parent", Atom("tom"), Y2)))) {
		t.Error("\\+ parent(tom,_) should fail")
	}
}

func TestNegationDoesNotLeakBindings(t *testing.T) {
	db := family()
	s := NewSolver(db)
	X := NewVar("X")
	// after a failed negation attempt, X must still bind freely
	found := ""
	s.Solve([]Goal{
		Not(Call(Comp("parent", Atom("jim"), X))),
		Call(Comp("=", X, Atom("free"))),
	}, func(sol *Solution) bool {
		found = sol.Resolve(X).String()
		return false
	})
	if found != "free" {
		t.Fatalf("X = %q", found)
	}
}

func TestConstraintGoal(t *testing.T) {
	db := NewDB()
	// cheap(X) :- X < 10.
	X := NewVar("X")
	db.Assert(Comp("cheap", X), Con(X, "<", Int(10)))
	s := NewSolver(db)
	if !s.Prove(Call(Comp("cheap", Int(5)))) {
		t.Error("cheap(5) should prove")
	}
	if s.Prove(Call(Comp("cheap", Int(15)))) {
		t.Error("cheap(15) should fail")
	}
	// Unbound: constraint retained, satisfiable.
	Y := NewVar("Y")
	sol := s.Once(Call(Comp("cheap", Y)))
	if sol == nil {
		t.Fatal("cheap(Y) should prove with residual constraint")
	}
	iv := sol.Interval(Y)
	if iv.Hi == nil || iv.Hi.Cmp(big.NewRat(10, 1)) != 0 || !iv.HiStrict {
		t.Errorf("interval %v", iv)
	}
}

func TestConstraintThenBindingConflict(t *testing.T) {
	// X >= 5 recorded, then unification binds X to 3: must fail.
	db := NewDB()
	X := NewVar("X")
	db.Assert(Comp("big", X), Con(X, ">=", Int(5)))
	s := NewSolver(db)
	Y := NewVar("Y")
	if s.Prove(Call(Comp("big", Y)), Call(Comp("=", Y, Int(3)))) {
		t.Error("big(Y), Y=3 should fail")
	}
	if !s.Prove(Call(Comp("big", Y)), Call(Comp("=", Y, Int(7)))) {
		t.Error("big(Y), Y=7 should prove")
	}
}

func TestConstraintVarAliasing(t *testing.T) {
	// X >= 5, X = Y, Y <= 4 must fail; Y <= 5 must prove.
	s := NewSolver(NewDB())
	X, Y := NewVar("X"), NewVar("Y")
	if s.Prove(Con(X, ">=", Int(5)), Call(Comp("=", X, Y)), Con(Y, "<=", Int(4))) {
		t.Error("aliased conflicting constraints should fail")
	}
	X2, Y2 := NewVar("X"), NewVar("Y")
	if !s.Prove(Con(X2, ">=", Int(5)), Call(Comp("=", X2, Y2)), Con(Y2, "<=", Int(5))) {
		t.Error("aliased compatible constraints should prove")
	}
}

func TestConstraintBindingToAtomFails(t *testing.T) {
	s := NewSolver(NewDB())
	X := NewVar("X")
	if s.Prove(Con(X, ">=", Int(5)), Call(Comp("=", X, Atom("a")))) {
		t.Error("binding a numeric store variable to an atom must fail")
	}
}

func TestComparisonAsCall(t *testing.T) {
	s := NewSolver(NewDB())
	if !s.Prove(Call(Comp("<", Int(1), Int(2)))) {
		t.Error("1 < 2 as a call should prove")
	}
	if s.Prove(Call(Comp(">=", Int(1), Int(2)))) {
		t.Error("1 >= 2 should fail")
	}
}

func TestArithmeticExpressions(t *testing.T) {
	s := NewSolver(NewDB())
	X := NewVar("X")
	// X = 2*3 + 4  via constraint  X =:= 2*3+4
	expr := Comp("+", Comp("*", Int(2), Int(3)), Int(4))
	sol := s.Once(Con(X, "=:=", expr))
	if sol == nil {
		t.Fatal("no solution")
	}
	iv := sol.Interval(X)
	if iv.Lo == nil || iv.Lo.Cmp(big.NewRat(10, 1)) != 0 || iv.Hi.Cmp(big.NewRat(10, 1)) != 0 {
		t.Errorf("interval %v", iv)
	}
	// division
	Y := NewVar("Y")
	sol = s.Once(Con(Y, "=", Comp("/", Int(7), Int(2))))
	if sol == nil {
		t.Fatal("no solution for division")
	}
	if iv := sol.Interval(Y); iv.Lo.Cmp(big.NewRat(7, 2)) != 0 {
		t.Errorf("interval %v", iv)
	}
	// nonlinear multiplication fails
	A, B := NewVar("A"), NewVar("B")
	if s.Prove(Con(Comp("*", A, B), "=", Int(6))) {
		t.Error("nonlinear constraint should fail conversion")
	}
	// division by zero fails
	if s.Prove(Con(X, "=", Comp("/", Int(1), Int(0)))) {
		t.Error("division by zero should fail")
	}
}

func TestUnaryMinus(t *testing.T) {
	s := NewSolver(NewDB())
	X := NewVar("X")
	sol := s.Once(Con(X, "=", Comp("-", Int(4))))
	if sol == nil {
		t.Fatal("no solution")
	}
	if iv := sol.Interval(X); iv.Lo.Cmp(big.NewRat(-4, 1)) != 0 {
		t.Errorf("interval %v", iv)
	}
}

func TestSolveStopEarly(t *testing.T) {
	db := family()
	s := NewSolver(db)
	X := NewVar("X")
	count := 0
	s.Solve([]Goal{Call(Comp("parent", Atom("tom"), X))}, func(sol *Solution) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("yield called %d times", count)
	}
}

func TestDepthLimit(t *testing.T) {
	db := NewDB()
	// loop :- loop.
	db.Assert(Atom("loop"), Call(Atom("loop")))
	s := NewSolver(db)
	s.MaxDepth = 100
	if s.Prove(Call(Atom("loop"))) {
		t.Error("loop should not prove")
	}
	if !s.DepthExceeded() {
		t.Error("depth limit should have been hit")
	}
	// a normal query resets the flag
	if s.Prove(Call(Atom("nothing"))) {
		t.Error("unknown atom proves?")
	}
	if s.DepthExceeded() {
		t.Error("flag should reset per Solve")
	}
}

func TestFirstArgIndexingEquivalence(t *testing.T) {
	// With and without indexing, the same solutions in the same order.
	build := func(disable bool) []string {
		db := NewDB()
		db.DisableIndex = disable
		for i := 0; i < 50; i++ {
			db.Assert(Comp("edge", Atom(fmt.Sprintf("n%d", i)), Atom(fmt.Sprintf("n%d", i+1))))
		}
		X := NewVar("X")
		return solutionsOf(db, Comp("edge", Atom("n25"), X), X)
	}
	a, b := build(false), build(true)
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] || a[0] != "n26" {
		t.Fatalf("indexed %v, scanned %v", a, b)
	}
}

func TestIndexingWithVarFirstArgRule(t *testing.T) {
	db := NewDB()
	db.Assert(Comp("p", Atom("a"), Int(1)))
	X, Y := NewVar("X"), NewVar("Y")
	// p(X, Y) :- q(X, Y).  (mixed clause must be reachable for atom calls)
	db.Assert(Comp("p", X, Y), Call(Comp("q", X, Y)))
	db.Assert(Comp("q", Atom("a"), Int(2)))
	V := NewVar("V")
	got := solutionsOf(db, Comp("p", Atom("a"), V), V)
	if len(got) != 2 || got[0] != "1" || got[1] != "2" {
		t.Fatalf("got %v", got)
	}
}

func TestOnceSnapshot(t *testing.T) {
	db := family()
	s := NewSolver(db)
	X := NewVar("X")
	sol := s.Once(Call(Comp("parent", Atom("tom"), X)))
	if sol == nil {
		t.Fatal("no solution")
	}
	// run another query; the snapshot must remain valid
	s.Prove(Call(Comp("parent", Atom("bob"), NewVar("Y"))))
	if got := sol.Resolve(X).String(); got != "bob" {
		t.Fatalf("snapshot resolved to %q", got)
	}
}

func TestClauseAndGoalString(t *testing.T) {
	X := NewVar("X")
	c := &Clause{Head: Comp("p", X), Body: []Goal{Call(Comp("q", X)), Con(X, "<", Int(5))}}
	s := c.String()
	if s == "" || s[len(s)-1] != '.' {
		t.Errorf("clause string %q", s)
	}
	n := Not(Call(Atom("a")), Call(Atom("b")))
	if n.String() != "\\+ (a, b)" {
		t.Errorf("neg string %q", n.String())
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		t    Term
		want string
	}{
		{Atom("abc"), "abc"},
		{Atom("wisc-cs"), "'wisc-cs'"},
		{Atom(""), "''"},
		{Int(42), "42"},
		{Rat(big.NewRat(1, 3)), "1/3"},
		{Comp("f", Atom("a"), Int(1)), "f(a,1)"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.t.Kind, got, c.want)
		}
	}
}

func TestVars(t *testing.T) {
	X, Y := NewVar("X"), NewVar("Y")
	vs := Vars(Comp("f", X, Comp("g", Y, X)))
	if len(vs) != 2 {
		t.Fatalf("vars %v", vs)
	}
}

func TestFloatTermExact(t *testing.T) {
	// Float(300) must equal Int(300) under unification.
	s := NewSolver(NewDB())
	if !s.Prove(Call(Comp("=", Float(300), Int(300)))) {
		t.Error("Float(300) != Int(300)")
	}
}

func TestNestedNegation(t *testing.T) {
	db := NewDB()
	db.Assert(Comp("bird", Atom("tweety")))
	db.Assert(Comp("bird", Atom("pingu")))
	db.Assert(Comp("penguin", Atom("pingu")))
	// flies(X) :- bird(X), \+ penguin(X).
	X := NewVar("X")
	db.Assert(Comp("flies", X),
		Call(Comp("bird", X)), Not(Call(Comp("penguin", X))))
	// grounded(X) :- \+ flies(X).  (double negation through rules)
	Y := NewVar("Y")
	db.Assert(Comp("grounded", Y), Call(Comp("bird", Y)), Not(Call(Comp("flies", Y))))
	s := NewSolver(db)
	if !s.Prove(Call(Comp("flies", Atom("tweety")))) {
		t.Error("tweety should fly")
	}
	if s.Prove(Call(Comp("flies", Atom("pingu")))) {
		t.Error("pingu should not fly")
	}
	if !s.Prove(Call(Comp("grounded", Atom("pingu")))) {
		t.Error("pingu should be grounded")
	}
	if s.Prove(Call(Comp("grounded", Atom("tweety")))) {
		t.Error("tweety should not be grounded")
	}
}

func TestNegationWithConstraintsInside(t *testing.T) {
	// ok(T, PT) :- \+ (P >= T, P < PT): the frequency-implication idiom
	// the consistency rules use — satisfiable inner constraints mean the
	// implication FAILS.
	s := NewSolver(NewDB())
	P := NewVar("P")
	// T=300, PT=300: no P with P>=300 and P<300 -> implication holds
	if !s.Prove(Not(Con(P, ">=", Int(300)), Con(P, "<", Int(300)))) {
		t.Error("300 >= 300 implication should hold")
	}
	P2 := NewVar("P")
	// T=60, PT=300: P=100 violates -> implication fails
	if s.Prove(Not(Con(P2, ">=", Int(60)), Con(P2, "<", Int(300)))) {
		t.Error("60 vs 300 implication should fail")
	}
}

func TestNegationConstraintsDoNotLeak(t *testing.T) {
	s := NewSolver(NewDB())
	X := NewVar("X")
	// after a failed negation, the store must be clean so X can still be
	// bound below the inner bound
	sol := s.Once(
		Not(Con(X, ">=", Int(100))), // fails (X unconstrained: satisfiable inside)
	)
	if sol != nil {
		t.Fatal("negation over satisfiable constraint should fail")
	}
	// and a successful negation leaves no residue
	Y := NewVar("Y")
	sol = s.Once(
		Con(Y, "<", Int(10)),
		Not(Con(Y, ">=", Int(10))),
		Call(Comp("=", Y, Int(5))),
	)
	if sol == nil {
		t.Fatal("should prove with Y=5")
	}
}

func TestMultipleSolutionsWithDistinctConstraints(t *testing.T) {
	db := NewDB()
	T := NewVar("T")
	db.Assert(Comp("limit", T), Con(T, ">=", Int(100)))
	T2 := NewVar("T")
	db.Assert(Comp("limit", T2), Con(T2, ">=", Int(300)))
	s := NewSolver(db)
	Q := NewVar("Q")
	var lows []string
	s.Solve([]Goal{Call(Comp("limit", Q))}, func(sol *Solution) bool {
		iv := sol.Interval(Q)
		lows = append(lows, iv.Lo.RatString())
		return true
	})
	if len(lows) != 2 || lows[0] != "100" || lows[1] != "300" {
		t.Fatalf("lows: %v", lows)
	}
}

func TestDBLen(t *testing.T) {
	db := NewDB()
	if db.Len() != 0 {
		t.Fatal("fresh DB non-empty")
	}
	db.Assert(Atom("a"))
	db.Assert(Comp("b", Atom("x")))
	if db.Len() != 2 {
		t.Fatalf("len %d", db.Len())
	}
}

func TestSolutionIntervalOfAtomIsEmpty(t *testing.T) {
	s := NewSolver(NewDB())
	X := NewVar("X")
	sol := s.Once(Call(Comp("=", X, Atom("notanumber"))))
	if sol == nil {
		t.Fatal("no solution")
	}
	if iv := sol.Interval(X); !iv.Empty {
		t.Fatalf("interval %v", iv)
	}
}

func TestConstraintsSnapshot(t *testing.T) {
	s := NewSolver(NewDB())
	X := NewVar("X")
	sol := s.Once(Con(X, ">=", Int(5)))
	if sol == nil {
		t.Fatal("no solution")
	}
	cons := sol.Constraints()
	if len(cons) != 1 {
		t.Fatalf("constraints: %v", cons)
	}
}

package logic

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func rat(n, d int64) *big.Rat { return big.NewRat(n, d) }

func con(t *testing.T, lhs LinExpr, op string, rhs LinExpr) Constraint {
	t.Helper()
	c, err := NewConstraint(lhs, op, rhs)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSatisfiableSimple(t *testing.T) {
	x := NewVarExpr(1)
	cases := []struct {
		cons []Constraint
		want bool
	}{
		{nil, true},
		{[]Constraint{con(t, x, ">=", NewConst(rat(5, 1)))}, true},
		{[]Constraint{
			con(t, x, ">=", NewConst(rat(5, 1))),
			con(t, x, "<", NewConst(rat(5, 1))),
		}, false},
		{[]Constraint{
			con(t, x, ">=", NewConst(rat(5, 1))),
			con(t, x, "<=", NewConst(rat(5, 1))),
		}, true},
		{[]Constraint{
			con(t, x, ">", NewConst(rat(5, 1))),
			con(t, x, "<=", NewConst(rat(5, 1))),
		}, false},
		{[]Constraint{con(t, NewConst(rat(1, 1)), "<", NewConst(rat(2, 1)))}, true},
		{[]Constraint{con(t, NewConst(rat(3, 1)), "<", NewConst(rat(2, 1)))}, false},
		{[]Constraint{con(t, x, "=", NewConst(rat(7, 2)))}, true},
	}
	for i, c := range cases {
		if got := Satisfiable(c.cons); got != c.want {
			t.Errorf("case %d: Satisfiable = %v, want %v", i, got, c.want)
		}
	}
}

func TestSatisfiableChain(t *testing.T) {
	// x <= y, y <= z, z <= x forces x=y=z: satisfiable; adding x < z is not.
	x, y, z := NewVarExpr(1), NewVarExpr(2), NewVarExpr(3)
	chain := []Constraint{
		con(t, x, "<=", y),
		con(t, y, "<=", z),
		con(t, z, "<=", x),
	}
	if !Satisfiable(chain) {
		t.Error("equality cycle should be satisfiable")
	}
	if Satisfiable(append(chain, con(t, x, "<", z))) {
		t.Error("strict cycle should be unsatisfiable")
	}
}

func TestSatisfiableEquality(t *testing.T) {
	// x = y + 3, y = 2 -> x = 5; x <= 4 contradicts.
	x, y := NewVarExpr(1), NewVarExpr(2)
	yPlus3 := y.AddScaled(NewConst(rat(3, 1)), rat(1, 1))
	sys := []Constraint{
		con(t, x, "=", yPlus3),
		con(t, y, "=", NewConst(rat(2, 1))),
	}
	if !Satisfiable(sys) {
		t.Fatal("system should be satisfiable")
	}
	if Satisfiable(append(sys, con(t, x, "<=", NewConst(rat(4, 1))))) {
		t.Error("x=5, x<=4 should be unsatisfiable")
	}
	if !Satisfiable(append(sys, con(t, x, "<=", NewConst(rat(5, 1))))) {
		t.Error("x=5, x<=5 should be satisfiable")
	}
}

func TestExactRationalBoundary(t *testing.T) {
	// The float-vs-rational ablation: 0.1+0.2 != 0.3 in float64, but
	// 1/10 + 2/10 = 3/10 exactly.
	x := NewVarExpr(1)
	sum := NewConst(rat(1, 10)).AddScaled(NewConst(rat(2, 10)), rat(1, 1))
	sys := []Constraint{
		con(t, x, "=", sum),
		con(t, x, "=", NewConst(rat(3, 10))),
	}
	if !Satisfiable(sys) {
		t.Error("exact rationals must make 1/10+2/10 = 3/10")
	}
}

func TestProjectInterval(t *testing.T) {
	x, y := NewVarExpr(1), NewVarExpr(2)
	// 5 <= x, x < 10, y independent
	sys := []Constraint{
		con(t, x, ">=", NewConst(rat(5, 1))),
		con(t, x, "<", NewConst(rat(10, 1))),
		con(t, y, ">=", NewConst(rat(0, 1))),
	}
	iv := Project(sys, 1)
	if iv.Empty || iv.Lo.Cmp(rat(5, 1)) != 0 || iv.LoStrict || iv.Hi.Cmp(rat(10, 1)) != 0 || !iv.HiStrict {
		t.Fatalf("interval %v", iv)
	}
	if iv.String() != "[5, 10)" {
		t.Errorf("String() = %q", iv.String())
	}
	if !iv.Contains(rat(5, 1)) || !iv.Contains(rat(7, 1)) || iv.Contains(rat(10, 1)) || iv.Contains(rat(4, 1)) {
		t.Error("Contains wrong")
	}
}

func TestProjectThroughEquality(t *testing.T) {
	// x = y + 2, 0 <= y <= 3 -> x in [2,5]
	x, y := NewVarExpr(1), NewVarExpr(2)
	sys := []Constraint{
		con(t, x, "=", y.AddScaled(NewConst(rat(2, 1)), rat(1, 1))),
		con(t, y, ">=", NewConst(rat(0, 1))),
		con(t, y, "<=", NewConst(rat(3, 1))),
	}
	iv := Project(sys, 1)
	if iv.Empty || iv.Lo.Cmp(rat(2, 1)) != 0 || iv.Hi.Cmp(rat(5, 1)) != 0 {
		t.Fatalf("interval %v", iv)
	}
}

func TestProjectUnbounded(t *testing.T) {
	x := NewVarExpr(1)
	iv := Project([]Constraint{con(t, x, ">", NewConst(rat(3, 1)))}, 1)
	if iv.Lo.Cmp(rat(3, 1)) != 0 || !iv.LoStrict || iv.Hi != nil {
		t.Fatalf("interval %v", iv)
	}
	if iv.String() != "(3, +inf)" {
		t.Errorf("String() = %q", iv.String())
	}
}

func TestProjectEmpty(t *testing.T) {
	x := NewVarExpr(1)
	iv := Project([]Constraint{
		con(t, x, ">", NewConst(rat(3, 1))),
		con(t, x, "<", NewConst(rat(3, 1))),
	}, 1)
	if !iv.Empty {
		t.Fatalf("interval %v", iv)
	}
	if iv.String() != "∅" {
		t.Errorf("String() = %q", iv.String())
	}
}

func TestProjectPoint(t *testing.T) {
	x := NewVarExpr(1)
	iv := Project([]Constraint{con(t, x, "=", NewConst(rat(300, 1)))}, 1)
	if iv.Empty || iv.Lo.Cmp(rat(300, 1)) != 0 || iv.Hi.Cmp(rat(300, 1)) != 0 || iv.LoStrict || iv.HiStrict {
		t.Fatalf("interval %v", iv)
	}
}

func TestLinExprString(t *testing.T) {
	e := NewVarExpr(3).AddScaled(NewConst(rat(7, 2)), rat(1, 1))
	if got := e.String(); got != "1·v3 + 7/2" {
		t.Errorf("String() = %q", got)
	}
	if got := NewConst(new(big.Rat)).String(); got != "0" {
		t.Errorf("zero String() = %q", got)
	}
}

func TestNewConstraintBadOp(t *testing.T) {
	if _, err := NewConstraint(NewVarExpr(1), "!!", NewVarExpr(2)); err == nil {
		t.Fatal("want error")
	}
}

// Property: a random system of interval constraints over independent
// variables is satisfiable iff every variable's interval is non-empty.
func TestSatisfiableMatchesIntervalsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 1 + rng.Intn(4)
		var sys []Constraint
		ok := true
		for v := 1; v <= nVars; v++ {
			lo := int64(rng.Intn(21) - 10)
			hi := int64(rng.Intn(21) - 10)
			loStrict := rng.Intn(2) == 0
			hiStrict := rng.Intn(2) == 0
			x := NewVarExpr(v)
			opLo, opHi := ">=", "<="
			if loStrict {
				opLo = ">"
			}
			if hiStrict {
				opHi = "<"
			}
			cl, _ := NewConstraint(x, opLo, NewConst(rat(lo, 1)))
			ch, _ := NewConstraint(x, opHi, NewConst(rat(hi, 1)))
			sys = append(sys, cl, ch)
			if lo > hi || (lo == hi && (loStrict || hiStrict)) {
				ok = false
			}
		}
		return Satisfiable(sys) == ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the midpoint of a non-empty bounded projection satisfies the
// original system when substituted.
func TestProjectionWitnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x, y := NewVarExpr(1), NewVarExpr(2)
		a := int64(rng.Intn(11) - 5)
		b := a + int64(rng.Intn(10)) + 1
		k := int64(rng.Intn(5) + 1)
		// y in [a,b], x = k*y  ->  x in [k*a, k*b]
		ky := NewConst(new(big.Rat)).AddScaled(y, rat(k, 1))
		sys := []Constraint{
			mustCon(y, ">=", NewConst(rat(a, 1))),
			mustCon(y, "<=", NewConst(rat(b, 1))),
			mustCon(x, "=", ky),
		}
		iv := Project(sys, 1)
		if iv.Empty || iv.Lo == nil || iv.Hi == nil {
			return false
		}
		wantLo, wantHi := rat(k*a, 1), rat(k*b, 1)
		if iv.Lo.Cmp(wantLo) != 0 || iv.Hi.Cmp(wantHi) != 0 {
			return false
		}
		mid := new(big.Rat).Add(iv.Lo, iv.Hi)
		mid.Quo(mid, rat(2, 1))
		return iv.Contains(mid)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func mustCon(lhs LinExpr, op string, rhs LinExpr) Constraint {
	c, err := NewConstraint(lhs, op, rhs)
	if err != nil {
		panic(err)
	}
	return c
}

package logic

import "testing"

func TestAtomInterning(t *testing.T) {
	a1, a2 := Atom("intern-test-x"), Atom("intern-test-x")
	if a1.Ref == 0 || a1.Ref != a2.Ref {
		t.Fatalf("same name, ids %d and %d", a1.Ref, a2.Ref)
	}
	if b := Atom("intern-test-y"); b.Ref == a1.Ref {
		t.Fatalf("distinct names share id %d", b.Ref)
	}
	if InternedAtoms() == 0 {
		t.Fatal("intern table empty after Atom calls")
	}
}

func TestUnifyMixedInternedAndRawAtoms(t *testing.T) {
	b := NewBindings()
	raw := Term{Kind: KAtom, Str: "raw-atom"} // no intern id
	if !b.Unify(raw, Atom("raw-atom")) {
		t.Error("raw literal should unify with interned atom of same name")
	}
	if b.Unify(raw, Atom("other")) {
		t.Error("distinct atoms unified")
	}
	if !b.Unify(Atom("a"), Atom("a")) || b.Unify(Atom("a"), Atom("b")) {
		t.Error("interned atom unification broken")
	}
}

func TestTermHash(t *testing.T) {
	x := Comp("f", Atom("a"), Int(3), Comp("g", Atom("b")))
	y := Comp("f", Atom("a"), Int(3), Comp("g", Atom("b")))
	if x.Hash() != y.Hash() {
		t.Error("equal ground terms hash differently")
	}
	// A raw literal atom must hash like its interned twin (the fact index
	// relies on it).
	if Atom("hash-twin").Hash() != (Term{Kind: KAtom, Str: "hash-twin"}).Hash() {
		t.Error("raw and interned atoms hash differently")
	}
	for _, other := range []Term{
		Comp("f", Atom("a"), Int(4), Comp("g", Atom("b"))),
		Comp("f", Atom("c"), Int(3), Comp("g", Atom("b"))),
		Comp("h", Atom("a"), Int(3), Comp("g", Atom("b"))),
		Atom("f"),
	} {
		if x.Hash() == other.Hash() {
			t.Errorf("%s and %s hash equal", x, other)
		}
	}
	if _, ground := hashWalk(Comp("f", NewVar("V")), nil); ground {
		t.Error("term with unbound variable reported ground")
	}
	// A bound variable makes the term ground under its bindings.
	b := NewBindings()
	v := NewVar("V")
	if !b.Unify(v, Atom("a")) {
		t.Fatal("bind failed")
	}
	h1, ground := hashWalk(Comp("f", v), b)
	if !ground {
		t.Error("bound variable not ground under bindings")
	}
	if h2, _ := hashWalk(Comp("f", Atom("a")), nil); h1 != h2 {
		t.Error("walked hash differs from direct hash")
	}
}

func TestGroundFactFastPath(t *testing.T) {
	db := NewDB()
	db.Assert(Comp("edge", Atom("a"), Atom("b")))
	db.Assert(Comp("edge", Atom("a"), Atom("c")))
	db.Assert(Comp("edge", Atom("b"), Atom("c")))
	s := NewSolver(db)
	if !s.Prove(Call(Comp("edge", Atom("a"), Atom("b")))) {
		t.Error("ground fact not proved")
	}
	if s.Prove(Call(Comp("edge", Atom("a"), Atom("d")))) {
		t.Error("absent ground fact proved")
	}
	// Non-ground calls still enumerate through the regular index.
	n := 0
	s.Solve([]Goal{Call(Comp("edge", Atom("a"), NewVar("X")))}, func(*Solution) bool {
		n++
		return true
	})
	if n != 2 {
		t.Errorf("edge(a, X) yielded %d solutions, want 2", n)
	}
	// A rule on the predicate disables the fact-only path but not
	// correctness.
	x, y, z := NewVar("X"), NewVar("Y"), NewVar("Z")
	db.Assert(Comp("path", x, y), Call(Comp("edge", x, y)))
	db.Assert(Comp("path", x, z), Call(Comp("edge", x, y)), Call(Comp("path", y, z)))
	if !s.Prove(Call(Comp("path", Atom("a"), Atom("c")))) {
		t.Error("path(a, c) not proved")
	}
	// Duplicate facts keep their multiplicity.
	db.Assert(Comp("dup", Atom("k")))
	db.Assert(Comp("dup", Atom("k")))
	n = 0
	s.Solve([]Goal{Call(Comp("dup", Atom("k")))}, func(*Solution) bool {
		n++
		return true
	})
	if n != 2 {
		t.Errorf("dup(k) yielded %d solutions, want 2", n)
	}
}

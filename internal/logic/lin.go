// Package logic implements the CLP(R)-style deduction engine behind the
// NMSL Consistency Checker (paper section 4.2).
//
// The paper's checker is a front end to CLP(R), "chosen because of its
// speed in performing logical deduction, and its ability to check numeric
// constraints over the real numbers. Numeric constraints are important
// for specifying timing and other resource limitations of interactions."
// This package provides the same capability set from scratch:
//
//   - Horn-clause deduction: SLD resolution with unification and
//     backtracking over an asserted fact/rule base;
//   - closed-world negation as failure, which is what makes "prove
//     inconsistency" a terminating query over a finite specification;
//   - a store of linear arithmetic constraints over exact rationals,
//     checked for satisfiability with Fourier-Motzkin elimination, and
//     projectable onto a single variable to "run the consistency check in
//     reverse" and solve for admissible parameter ranges (section 4.2).
//
// Rationals (math/big.Rat) rather than floats keep boundary frequencies
// exact: a permission of "every 300 seconds" and a reference of "every
// 300 seconds" must compare equal, not within epsilon.
package logic

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
)

// LinExpr is a linear expression over solver variables:
// Const + Σ Coeffs[v]·v.
type LinExpr struct {
	// Coeffs maps variable ids to coefficients. Zero coefficients are
	// removed.
	Coeffs map[int]*big.Rat
	// Const is the constant term.
	Const *big.Rat
}

// NewConst returns a constant expression.
func NewConst(r *big.Rat) LinExpr {
	return LinExpr{Coeffs: map[int]*big.Rat{}, Const: new(big.Rat).Set(r)}
}

// NewVarExpr returns the expression consisting of a single variable.
func NewVarExpr(id int) LinExpr {
	return LinExpr{Coeffs: map[int]*big.Rat{id: big.NewRat(1, 1)}, Const: new(big.Rat)}
}

// Clone returns a deep copy.
func (e LinExpr) Clone() LinExpr {
	c := LinExpr{Coeffs: make(map[int]*big.Rat, len(e.Coeffs)), Const: new(big.Rat).Set(e.Const)}
	for id, co := range e.Coeffs {
		c.Coeffs[id] = new(big.Rat).Set(co)
	}
	return c
}

// AddScaled returns e + k·other as a new expression.
func (e LinExpr) AddScaled(other LinExpr, k *big.Rat) LinExpr {
	out := e.Clone()
	for id, co := range other.Coeffs {
		cur, ok := out.Coeffs[id]
		if !ok {
			cur = new(big.Rat)
			out.Coeffs[id] = cur
		}
		cur.Add(cur, new(big.Rat).Mul(co, k))
		if cur.Sign() == 0 {
			delete(out.Coeffs, id)
		}
	}
	out.Const.Add(out.Const, new(big.Rat).Mul(other.Const, k))
	return out
}

// Sub returns e - other.
func (e LinExpr) Sub(other LinExpr) LinExpr {
	return e.AddScaled(other, big.NewRat(-1, 1))
}

// IsConst reports whether the expression has no variables.
func (e LinExpr) IsConst() bool { return len(e.Coeffs) == 0 }

// Vars returns the variable ids in ascending order.
func (e LinExpr) Vars() []int {
	out := make([]int, 0, len(e.Coeffs))
	for id := range e.Coeffs {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// String renders the expression for diagnostics.
func (e LinExpr) String() string {
	var parts []string
	for _, id := range e.Vars() {
		parts = append(parts, fmt.Sprintf("%s·v%d", e.Coeffs[id].RatString(), id))
	}
	if e.Const.Sign() != 0 || len(parts) == 0 {
		parts = append(parts, e.Const.RatString())
	}
	return strings.Join(parts, " + ")
}

// ConOp is a constraint comparison against zero.
type ConOp uint8

const (
	// OpLE is expr ≤ 0.
	OpLE ConOp = iota
	// OpLT is expr < 0.
	OpLT
	// OpEQ is expr = 0.
	OpEQ
)

func (op ConOp) String() string {
	switch op {
	case OpLE:
		return "<= 0"
	case OpLT:
		return "< 0"
	case OpEQ:
		return "= 0"
	}
	return "?"
}

// Constraint is a normalized linear constraint: Expr Op 0.
type Constraint struct {
	Expr LinExpr
	Op   ConOp
}

// String renders the constraint for diagnostics.
func (c Constraint) String() string { return c.Expr.String() + " " + c.Op.String() }

// NewConstraint builds lhs op rhs with op one of "<", "<=", ">", ">=",
// "=": the result is normalized to Expr ⊴ 0 form.
func NewConstraint(lhs LinExpr, op string, rhs LinExpr) (Constraint, error) {
	switch op {
	case "<":
		return Constraint{Expr: lhs.Sub(rhs), Op: OpLT}, nil
	case "<=":
		return Constraint{Expr: lhs.Sub(rhs), Op: OpLE}, nil
	case ">":
		return Constraint{Expr: rhs.Sub(lhs), Op: OpLT}, nil
	case ">=":
		return Constraint{Expr: rhs.Sub(lhs), Op: OpLE}, nil
	case "=", "=:=":
		return Constraint{Expr: lhs.Sub(rhs), Op: OpEQ}, nil
	}
	return Constraint{}, fmt.Errorf("unknown constraint operator %q", op)
}

// evalConst checks a variable-free constraint.
func (c Constraint) evalConst() bool {
	s := c.Expr.Const.Sign()
	switch c.Op {
	case OpLE:
		return s <= 0
	case OpLT:
		return s < 0
	case OpEQ:
		return s == 0
	}
	return false
}

// splitEQ rewrites an equality as the two inequalities e ≤ 0 and -e ≤ 0.
func splitEQ(c Constraint) []Constraint {
	if c.Op != OpEQ {
		return []Constraint{c}
	}
	neg := NewConst(new(big.Rat)).Sub(c.Expr)
	return []Constraint{
		{Expr: c.Expr, Op: OpLE},
		{Expr: neg, Op: OpLE},
	}
}

// eliminate removes variable id from the constraint set using
// Fourier-Motzkin: every (lower, upper) bound pair combines into a new
// constraint, and constraints not mentioning id pass through. Input must
// contain no equalities.
func eliminate(cons []Constraint, id int) []Constraint {
	var lowers, uppers, rest []Constraint
	for _, c := range cons {
		co, ok := c.Expr.Coeffs[id]
		if !ok {
			rest = append(rest, c)
			continue
		}
		if co.Sign() > 0 {
			uppers = append(uppers, c) // a·x + r ⊴ 0, a>0 → x ⊴ -r/a
		} else {
			lowers = append(lowers, c) // a<0 → x ⊵ -r/a
		}
	}
	for _, lo := range lowers {
		for _, up := range uppers {
			// lo: a·x + r ⊴ 0 (a<0); up: b·x + s ⊴ 0 (b>0).
			// Combine: b·(lo) + (-a)·(up) eliminates x.
			a := lo.Expr.Coeffs[id]
			b := up.Expr.Coeffs[id]
			negA := new(big.Rat).Neg(a)
			comb := lo.Expr.Clone()
			// scale lo by b
			scaled := NewConst(new(big.Rat)).AddScaled(comb, b)
			scaled = scaled.AddScaled(up.Expr, negA)
			op := OpLE
			if lo.Op == OpLT || up.Op == OpLT {
				op = OpLT
			}
			delete(scaled.Coeffs, id) // exact arithmetic zeroes it; be safe
			rest = append(rest, Constraint{Expr: scaled, Op: op})
		}
	}
	return rest
}

// allVars returns every variable id mentioned by the constraints.
func allVars(cons []Constraint) []int {
	seen := map[int]bool{}
	for _, c := range cons {
		for id := range c.Expr.Coeffs {
			seen[id] = true
		}
	}
	out := make([]int, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Satisfiable reports whether the constraint set has a solution over the
// reals, by eliminating every variable and checking the resulting
// variable-free constraints.
func Satisfiable(cons []Constraint) bool {
	var work []Constraint
	for _, c := range cons {
		work = append(work, splitEQ(c)...)
	}
	for _, id := range allVars(work) {
		work = eliminate(work, id)
	}
	for _, c := range work {
		if !c.evalConst() {
			return false
		}
	}
	return true
}

// Interval is a (possibly unbounded, possibly empty) rational interval.
type Interval struct {
	// Lo/Hi are the bounds; nil means unbounded on that side.
	Lo, Hi *big.Rat
	// LoStrict/HiStrict mark open ends.
	LoStrict, HiStrict bool
	// Empty marks an unsatisfiable projection.
	Empty bool
}

// Contains reports whether the interval contains the rational.
func (iv Interval) Contains(r *big.Rat) bool {
	if iv.Empty {
		return false
	}
	if iv.Lo != nil {
		cmp := r.Cmp(iv.Lo)
		if cmp < 0 || (cmp == 0 && iv.LoStrict) {
			return false
		}
	}
	if iv.Hi != nil {
		cmp := r.Cmp(iv.Hi)
		if cmp > 0 || (cmp == 0 && iv.HiStrict) {
			return false
		}
	}
	return true
}

// String renders the interval in mathematical notation.
func (iv Interval) String() string {
	if iv.Empty {
		return "∅"
	}
	lo, hi := "-inf", "+inf"
	lb, rb := "(", ")"
	if iv.Lo != nil {
		lo = iv.Lo.RatString()
		if !iv.LoStrict {
			lb = "["
		}
	}
	if iv.Hi != nil {
		hi = iv.Hi.RatString()
		if !iv.HiStrict {
			rb = "]"
		}
	}
	return fmt.Sprintf("%s%s, %s%s", lb, lo, hi, rb)
}

// Project eliminates every variable except id and returns the admissible
// interval for id. This implements the paper's reverse use of the
// consistency check: "ask CLP(R) to solve for the parameters to the
// references and permissions of the new specification."
func Project(cons []Constraint, id int) Interval {
	var work []Constraint
	for _, c := range cons {
		work = append(work, splitEQ(c)...)
	}
	for _, v := range allVars(work) {
		if v == id {
			continue
		}
		work = eliminate(work, v)
	}
	iv := Interval{}
	for _, c := range work {
		co, ok := c.Expr.Coeffs[id]
		if !ok {
			if !c.evalConst() {
				return Interval{Empty: true}
			}
			continue
		}
		// co·x + r ⊴ 0 → x ⊴ -r/co (co>0) or x ⊵ -r/co (co<0)
		bound := new(big.Rat).Neg(new(big.Rat).Quo(c.Expr.Const, co))
		strict := c.Op == OpLT
		if co.Sign() > 0 {
			if iv.Hi == nil || bound.Cmp(iv.Hi) < 0 || (bound.Cmp(iv.Hi) == 0 && strict) {
				iv.Hi, iv.HiStrict = bound, strict
			}
		} else {
			if iv.Lo == nil || bound.Cmp(iv.Lo) > 0 || (bound.Cmp(iv.Lo) == 0 && strict) {
				iv.Lo, iv.LoStrict = bound, strict
			}
		}
	}
	if iv.Lo != nil && iv.Hi != nil {
		cmp := iv.Lo.Cmp(iv.Hi)
		if cmp > 0 || (cmp == 0 && (iv.LoStrict || iv.HiStrict)) {
			return Interval{Empty: true}
		}
	}
	return iv
}

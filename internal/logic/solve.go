package logic

import (
	"fmt"
	"math/big"
)

// GoalKind discriminates goal variants.
type GoalKind uint8

const (
	// GCall resolves a predicate against the database.
	GCall GoalKind = iota
	// GCon adds a linear arithmetic constraint to the store.
	GCon
	// GNeg is negation as failure over a conjunction (closed world).
	GNeg
)

// Goal is one element of a clause body or query.
type Goal struct {
	Kind GoalKind
	// Term is the called predicate (GCall).
	Term Term
	// Lhs Op Rhs is the constraint (GCon); Op is one of < <= > >= =.
	Lhs, Rhs Term
	Op       string
	// Neg is the negated conjunction (GNeg).
	Neg []Goal
}

// Call returns a predicate-call goal.
func Call(t Term) Goal { return Goal{Kind: GCall, Term: t} }

// Con returns an arithmetic constraint goal lhs op rhs.
func Con(lhs Term, op string, rhs Term) Goal {
	return Goal{Kind: GCon, Lhs: lhs, Op: op, Rhs: rhs}
}

// Not returns a negation-as-failure goal over the conjunction.
func Not(goals ...Goal) Goal { return Goal{Kind: GNeg, Neg: goals} }

// String renders the goal in Prolog-like syntax.
func (g Goal) String() string {
	switch g.Kind {
	case GCall:
		return g.Term.String()
	case GCon:
		return fmt.Sprintf("%s %s %s", g.Lhs, g.Op, g.Rhs)
	case GNeg:
		s := "\\+ ("
		for i, sub := range g.Neg {
			if i > 0 {
				s += ", "
			}
			s += sub.String()
		}
		return s + ")"
	}
	return "?"
}

func renameGoal(g Goal, ren map[int]Term) Goal {
	switch g.Kind {
	case GCall:
		return Goal{Kind: GCall, Term: rename(g.Term, ren)}
	case GCon:
		return Goal{Kind: GCon, Lhs: rename(g.Lhs, ren), Op: g.Op, Rhs: rename(g.Rhs, ren)}
	case GNeg:
		sub := make([]Goal, len(g.Neg))
		for i, n := range g.Neg {
			sub[i] = renameGoal(n, ren)
		}
		return Goal{Kind: GNeg, Neg: sub}
	}
	return g
}

// Clause is a Horn clause: Head :- Body. Facts have an empty body.
type Clause struct {
	Head Term
	Body []Goal
}

// String renders the clause.
func (c *Clause) String() string {
	if len(c.Body) == 0 {
		return c.Head.String() + "."
	}
	s := c.Head.String() + " :- "
	for i, g := range c.Body {
		if i > 0 {
			s += ", "
		}
		s += g.String()
	}
	return s + "."
}

// bucket holds the clauses of one predicate with first-argument indexing:
// facts and rules whose head's first argument is a ground atom are also
// reachable through byAtom, so calls with a known first argument skip the
// rest of the database. This is what keeps consistency checking of large
// specifications near-linear (DESIGN.md ablation: BenchmarkCheckIndexedVsScan).
type bucket struct {
	all []*Clause
	// byAtom is keyed by the intern id of the head's first argument, so
	// lookups hash one machine word instead of the atom's bytes.
	byAtom map[int][]*Clause
	// mixed are clauses whose first argument is not a ground atom (or
	// arity is 0); they apply to every call.
	mixed []*Clause
	// ground indexes fact clauses with fully ground heads by structural
	// hash. When the predicate consists only of such facts (factsOnly), a
	// ground call is answered straight from this index — the O(1) lookup
	// that makes the materialized closure tables (contains_tr/2, covers/2,
	// data_covers/2) cheap to consult.
	ground    map[uint64][]*Clause
	factsOnly bool
}

// DB is a clause database.
type DB struct {
	preds map[string]*bucket
	size  int
	// Indexing can be disabled to measure its effect.
	DisableIndex bool
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{preds: map[string]*bucket{}} }

// Len returns the number of asserted clauses.
func (db *DB) Len() int { return db.size }

// Assert adds a clause Head :- Body at the end of its predicate.
func (db *DB) Assert(head Term, body ...Goal) {
	ind := head.Indicator()
	if ind == "" {
		panic("logic: clause head must be an atom or compound")
	}
	bk, ok := db.preds[ind]
	if !ok {
		bk = &bucket{byAtom: map[int][]*Clause{}, ground: map[uint64][]*Clause{}, factsOnly: true}
		db.preds[ind] = bk
	}
	c := &Clause{Head: head, Body: body}
	bk.all = append(bk.all, c)
	if head.Kind == KComp && len(head.Args) > 0 && head.Args[0].Kind == KAtom {
		id := atomID(head.Args[0])
		bk.byAtom[id] = append(bk.byAtom[id], c)
	} else {
		bk.mixed = append(bk.mixed, c)
	}
	if len(body) == 0 {
		if h, grnd := hashWalk(head, nil); grnd {
			bk.ground[h] = append(bk.ground[h], c)
		} else {
			bk.factsOnly = false
		}
	} else {
		bk.factsOnly = false
	}
	db.size++
}

// candidates returns the clauses a call could match, using first-argument
// indexing when the call's first argument is a ground atom.
func (db *DB) candidates(goal Term, b *Bindings) []*Clause {
	bk, ok := db.preds[goal.Indicator()]
	if !ok {
		return nil
	}
	if db.DisableIndex {
		return bk.all
	}
	if goal.Kind == KComp && len(goal.Args) > 0 {
		first := b.Walk(goal.Args[0])
		if first.Kind == KAtom {
			indexed := bk.byAtom[atomID(first)]
			if len(bk.mixed) == 0 {
				return indexed
			}
			// merge preserving assert order is not required for
			// soundness; indexed-first keeps facts ahead of rules, which
			// is how the consistency rule base is organized.
			out := make([]*Clause, 0, len(indexed)+len(bk.mixed))
			out = append(out, indexed...)
			out = append(out, bk.mixed...)
			return out
		}
	}
	return bk.all
}

// store is the backtrackable linear-constraint store.
type store struct {
	cons []Constraint
	vars map[int]int // ref -> number of constraints mentioning it
}

func newStore() *store { return &store{vars: map[int]int{}} }

func (s *store) mark() int { return len(s.cons) }

func (s *store) push(c Constraint) {
	s.cons = append(s.cons, c)
	for ref := range c.Expr.Coeffs {
		s.vars[ref]++
	}
}

func (s *store) undo(m int) {
	for i := len(s.cons) - 1; i >= m; i-- {
		for ref := range s.cons[i].Expr.Coeffs {
			s.vars[ref]--
			if s.vars[ref] == 0 {
				delete(s.vars, ref)
			}
		}
	}
	s.cons = s.cons[:m]
}

func (s *store) has(ref int) bool { return s.vars[ref] > 0 }

// Solution is the view of one answer passed to the Solve callback. It is
// only valid during the callback.
type Solution struct {
	b  *Bindings
	st *store
}

// Resolve substitutes the solution's bindings into t.
func (s *Solution) Resolve(t Term) Term { return s.b.Resolve(t) }

// Interval projects the constraint store onto variable v (which may be
// bound to a number, yielding a point interval).
func (s *Solution) Interval(v Term) Interval {
	w := s.b.Walk(v)
	switch w.Kind {
	case KNum:
		r := new(big.Rat).Set(w.Rat)
		return Interval{Lo: r, Hi: new(big.Rat).Set(r)}
	case KVar:
		return Project(s.st.cons, w.Ref)
	}
	return Interval{Empty: true}
}

// Constraints returns a snapshot of the active constraint store.
func (s *Solution) Constraints() []Constraint {
	out := make([]Constraint, len(s.st.cons))
	for i, c := range s.st.cons {
		out[i] = Constraint{Expr: c.Expr.Clone(), Op: c.Op}
	}
	return out
}

// Solver executes queries against a DB.
type Solver struct {
	db *DB
	// MaxDepth bounds the conjunctive call depth; exceeding it fails the
	// branch and records DepthExceeded.
	MaxDepth int

	b             *Bindings
	st            *store
	depthExceeded bool
}

// NewSolver returns a Solver over db with a generous default depth limit.
func NewSolver(db *DB) *Solver {
	return &Solver{db: db, MaxDepth: 4096}
}

// DepthExceeded reports whether any branch of the last Solve hit the
// depth limit (a sign of unbounded recursion in the rule base).
func (s *Solver) DepthExceeded() bool { return s.depthExceeded }

// Solve enumerates solutions to the conjunction, invoking yield for each.
// The search stops when yield returns false or the space is exhausted.
func (s *Solver) Solve(goals []Goal, yield func(*Solution) bool) {
	s.b = NewBindings()
	s.st = newStore()
	s.depthExceeded = false
	s.solve(goals, 0, func() bool {
		return yield(&Solution{b: s.b, st: s.st})
	})
}

// Once returns the first solution, or nil.
func (s *Solver) Once(goals ...Goal) *Solution {
	var out *Solution
	s.Solve(goals, func(sol *Solution) bool {
		// snapshot enough state: Solution is live-only, so materialize a
		// private copy of bindings and store for the caller.
		b2 := NewBindings()
		for ref, t := range sol.b.m {
			b2.bind(ref, t)
		}
		st2 := newStore()
		for _, c := range sol.st.cons {
			st2.push(Constraint{Expr: c.Expr.Clone(), Op: c.Op})
		}
		out = &Solution{b: b2, st: st2}
		return false
	})
	return out
}

// Prove reports whether the conjunction has at least one solution.
func (s *Solver) Prove(goals ...Goal) bool {
	found := false
	s.Solve(goals, func(*Solution) bool {
		found = true
		return false
	})
	return found
}

// solve runs the conjunction depth-first; k is the success continuation.
// A false return aborts the entire search (user requested stop).
func (s *Solver) solve(goals []Goal, depth int, k func() bool) bool {
	if len(goals) == 0 {
		return k()
	}
	if depth > s.MaxDepth {
		s.depthExceeded = true
		return true
	}
	g := goals[0]
	rest := goals[1:]
	switch g.Kind {
	case GCall:
		return s.solveCall(g.Term, rest, depth, k)
	case GCon:
		mark := s.st.mark()
		if s.pushConstraint(g.Lhs, g.Op, g.Rhs) {
			if !s.solve(rest, depth, k) {
				return false
			}
		}
		s.st.undo(mark)
		return true
	case GNeg:
		if s.exists(g.Neg, depth+1) {
			return true // negated goal provable -> this branch fails
		}
		return s.solve(rest, depth, k)
	}
	return true
}

// exists checks provability of a conjunction without leaking bindings or
// constraints.
func (s *Solver) exists(goals []Goal, depth int) bool {
	mark := s.b.Mark()
	smark := s.st.mark()
	found := false
	s.solve(goals, depth, func() bool {
		found = true
		return false
	})
	s.b.Undo(mark)
	s.st.undo(smark)
	return found
}

func isComparison(op string) bool {
	switch op {
	case "<", "<=", ">", ">=", "=:=":
		return true
	}
	return false
}

func (s *Solver) solveCall(t Term, rest []Goal, depth int, k func() bool) bool {
	t = s.b.Walk(t)
	// Built-ins: unification and arithmetic comparisons written as
	// ordinary compounds.
	if t.Kind == KComp && len(t.Args) == 2 {
		switch {
		case t.Str == "=":
			mark := s.b.Mark()
			smark := s.st.mark()
			if s.unifyCLP(t.Args[0], t.Args[1]) {
				if !s.solve(rest, depth, k) {
					return false
				}
			}
			s.b.Undo(mark)
			s.st.undo(smark)
			return true
		case isComparison(t.Str):
			return s.solve(append([]Goal{Con(t.Args[0], t.Str, t.Args[1])}, rest...), depth, k)
		}
	}
	if t.Kind != KAtom && t.Kind != KComp {
		return true // unbound or numeric call: no clauses can match
	}
	// Fact-table fast path: a ground call against a predicate that is
	// nothing but ground facts is a hash lookup. The matching clauses are
	// exactly the facts equal to the call (verified by unification below,
	// so hash collisions stay sound), in assert order — identical
	// solutions, identical order, no scan.
	if !s.db.DisableIndex {
		if bk := s.db.preds[t.Indicator()]; bk != nil && bk.factsOnly {
			if h, grnd := hashWalk(t, s.b); grnd {
				for _, c := range bk.ground[h] {
					mark := s.b.Mark()
					smark := s.st.mark()
					if s.unifyCLP(t, c.Head) {
						if !s.solve(rest, depth+1, k) {
							return false
						}
					}
					s.b.Undo(mark)
					s.st.undo(smark)
				}
				return true
			}
		}
	}
	for _, c := range s.db.candidates(t, s.b) {
		mark := s.b.Mark()
		smark := s.st.mark()
		ren := map[int]Term{}
		head := rename(c.Head, ren)
		if s.unifyCLP(t, head) {
			var body []Goal
			if len(c.Body) > 0 {
				body = make([]Goal, 0, len(c.Body)+len(rest))
				for _, bg := range c.Body {
					body = append(body, renameGoal(bg, ren))
				}
				body = append(body, rest...)
			} else {
				body = rest
			}
			if !s.solve(body, depth+1, k) {
				return false
			}
		}
		s.b.Undo(mark)
		s.st.undo(smark)
	}
	return true
}

// unifyCLP unifies x and y and keeps the constraint store consistent with
// any numeric bindings the unification created: binding a store variable
// to a number (or aliasing it to another variable) adds the matching
// equality constraint; binding it to a symbolic term fails.
func (s *Solver) unifyCLP(x, y Term) bool {
	mark := s.b.Mark()
	if !s.b.Unify(x, y) {
		return false
	}
	added := s.st.mark()
	for _, ref := range s.b.trail[mark:] {
		if !s.st.has(ref) {
			continue
		}
		bound := s.b.Walk(Term{Kind: KVar, Ref: ref})
		var con Constraint
		switch bound.Kind {
		case KNum:
			con = Constraint{Expr: NewVarExpr(ref).Sub(NewConst(bound.Rat)), Op: OpEQ}
		case KVar:
			con = Constraint{Expr: NewVarExpr(ref).Sub(NewVarExpr(bound.Ref)), Op: OpEQ}
		default:
			s.st.undo(added)
			return false
		}
		s.st.push(con)
	}
	if s.st.mark() != added && !Satisfiable(s.st.cons) {
		s.st.undo(added)
		return false
	}
	return true
}

// pushConstraint converts both sides to linear expressions under the
// current bindings, pushes the constraint, and checks satisfiability.
// The store entry remains for the caller to undo on backtrack.
func (s *Solver) pushConstraint(lhs Term, op string, rhs Term) bool {
	if op == "=:=" {
		op = "="
	}
	le, ok := s.toLin(lhs)
	if !ok {
		return false
	}
	re, ok := s.toLin(rhs)
	if !ok {
		return false
	}
	c, err := NewConstraint(le, op, re)
	if err != nil {
		return false
	}
	s.st.push(c)
	return Satisfiable(s.st.cons)
}

// toLin converts a term to a linear expression: numbers, variables, and
// the arithmetic compounds +, - (unary and binary), * and / with a
// constant factor.
func (s *Solver) toLin(t Term) (LinExpr, bool) {
	t = s.b.Walk(t)
	switch t.Kind {
	case KNum:
		return NewConst(t.Rat), true
	case KVar:
		return NewVarExpr(t.Ref), true
	case KComp:
		switch {
		case t.Str == "+" && len(t.Args) == 2:
			a, ok := s.toLin(t.Args[0])
			if !ok {
				return LinExpr{}, false
			}
			b, ok := s.toLin(t.Args[1])
			if !ok {
				return LinExpr{}, false
			}
			return a.AddScaled(b, big.NewRat(1, 1)), true
		case t.Str == "-" && len(t.Args) == 2:
			a, ok := s.toLin(t.Args[0])
			if !ok {
				return LinExpr{}, false
			}
			b, ok := s.toLin(t.Args[1])
			if !ok {
				return LinExpr{}, false
			}
			return a.Sub(b), true
		case t.Str == "-" && len(t.Args) == 1:
			a, ok := s.toLin(t.Args[0])
			if !ok {
				return LinExpr{}, false
			}
			return NewConst(new(big.Rat)).Sub(a), true
		case t.Str == "*" && len(t.Args) == 2:
			a, ok := s.toLin(t.Args[0])
			if !ok {
				return LinExpr{}, false
			}
			b, ok := s.toLin(t.Args[1])
			if !ok {
				return LinExpr{}, false
			}
			switch {
			case a.IsConst():
				return b.AddScaled(b, new(big.Rat).Sub(a.Const, big.NewRat(1, 1))), true
			case b.IsConst():
				return a.AddScaled(a, new(big.Rat).Sub(b.Const, big.NewRat(1, 1))), true
			}
			return LinExpr{}, false // nonlinear
		case t.Str == "/" && len(t.Args) == 2:
			a, ok := s.toLin(t.Args[0])
			if !ok {
				return LinExpr{}, false
			}
			b, ok := s.toLin(t.Args[1])
			if !ok || !b.IsConst() || b.Const.Sign() == 0 {
				return LinExpr{}, false
			}
			inv := new(big.Rat).Inv(b.Const)
			return NewConst(new(big.Rat)).AddScaled(a, inv), true
		}
	}
	return LinExpr{}, false
}

package logic

import (
	"sync"
	"sync/atomic"
)

// Atom interning. Every atom name is assigned a small process-wide id;
// Atom() stamps it into the otherwise-unused Ref field of KAtom terms, so
// unification compares atoms by a single integer instead of their bytes
// and compound terms hash in O(arity). The table only ever grows: ids
// stay valid for the life of the process, so clause databases built from
// different models (and different checker runs) share one namespace and
// may be queried with each other's atoms.
type interner struct {
	// reads are the hot path (one Load per Atom call); sync.Map keeps
	// them lock-free. alloc serializes id assignment only.
	m     sync.Map // string -> int
	alloc sync.Mutex
	n     int
	// frozen is a read-only snapshot of the table published by freeze()
	// once a model's fact base is fully interned (the end of BuildDB).
	// Checking is read-mostly: nearly every id() call during solving
	// resolves through this plain map — no sync.Map interface boxing,
	// no alloc mutex — and names minted after the snapshot (rare) fall
	// through to the growing table.
	frozen atomic.Pointer[map[string]int]
}

// atoms is the process-wide intern table.
var atoms interner

// id returns the stable id for name, assigning the next one on first use.
// Ids start at 1; 0 marks an un-interned atom (built as a raw struct
// literal), for which all paths fall back to string comparison.
func (in *interner) id(name string) int {
	if fm := in.frozen.Load(); fm != nil {
		if id, ok := (*fm)[name]; ok {
			return id
		}
	}
	if v, ok := in.m.Load(name); ok {
		return v.(int)
	}
	in.alloc.Lock()
	defer in.alloc.Unlock()
	if v, ok := in.m.Load(name); ok {
		return v.(int)
	}
	in.n++
	in.m.Store(name, in.n)
	return in.n
}

// freeze publishes a read-only snapshot of the current table. Later
// interning still works (the snapshot is a fast path, not a fence), and
// a later freeze replaces the snapshot.
func (in *interner) freeze() {
	in.alloc.Lock()
	defer in.alloc.Unlock()
	fm := make(map[string]int, in.n)
	in.m.Range(func(k, v any) bool {
		fm[k.(string)] = v.(int)
		return true
	})
	in.frozen.Store(&fm)
}

// FreezeAtoms snapshots the process-wide atom table into an immutable
// read path. BuildDB calls it once a model's facts and rules are fully
// asserted, so the sharded checker's solvers intern lock-free.
func FreezeAtoms() { atoms.freeze() }

// internID returns the process-wide intern id of an atom name.
func internID(name string) int { return atoms.id(name) }

// atomID returns the intern id of an atom term, interning on demand for
// atoms that were built without Atom().
func atomID(t Term) int {
	if t.Ref != 0 {
		return t.Ref
	}
	return internID(t.Str)
}

// InternedAtoms returns how many distinct atom names the process-wide
// table holds (diagnostics and tests).
func InternedAtoms() int {
	atoms.alloc.Lock()
	defer atoms.alloc.Unlock()
	return atoms.n
}

// FNV-1a constants for term hashing.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func mix(h, v uint64) uint64 {
	h ^= v
	h *= fnvPrime
	return h
}

func mixString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = mix(h, uint64(s[i]))
	}
	return h
}

// hashWalk hashes t, walking variables through b (when non-nil), and
// reports whether the term is ground. Atoms hash by intern id, so equal
// atoms hash equal regardless of how they were constructed; numbers hash
// by their exact rational rendering. Non-ground terms still get a hash
// (variables by Ref) for the public Hash, but ground=false tells the
// solver's fact index not to trust it.
func hashWalk(t Term, b *Bindings) (uint64, bool) {
	if b != nil {
		t = b.Walk(t)
	}
	h := mix(fnvOffset, uint64(t.Kind))
	switch t.Kind {
	case KAtom:
		return mix(h, uint64(atomID(t))), true
	case KNum:
		return mixString(h, t.Rat.RatString()), true
	case KVar:
		return mix(h, uint64(t.Ref)), false
	case KComp:
		h = mix(h, uint64(internID(t.Str)))
		h = mix(h, uint64(len(t.Args)))
		ground := true
		for _, a := range t.Args {
			ah, ag := hashWalk(a, b)
			h = mix(h, ah)
			ground = ground && ag
		}
		return h, ground
	}
	return h, false
}

// Hash returns a cheap structural hash of the term: atoms by intern id,
// compounds in O(size). Equal ground terms hash equal; variables hash by
// identity (Ref), without walking any binding store.
func (t Term) Hash() uint64 {
	h, _ := hashWalk(t, nil)
	return h
}

package logic

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
	"sync/atomic"
)

// TermKind discriminates term variants.
type TermKind uint8

const (
	// KAtom is a symbolic constant.
	KAtom TermKind = iota
	// KNum is an exact rational number.
	KNum
	// KVar is a logic variable.
	KVar
	// KComp is a compound term: functor(args...).
	KComp
)

// Term is a logic term. Terms are immutable values; variables are
// identified by Ref and resolved through a Bindings store.
type Term struct {
	Kind TermKind
	// Str is the atom name, the compound functor, or the variable's
	// display name.
	Str string
	// Ref is the variable id (KVar; unique per NewVar call) or the
	// process-wide intern id of the atom name (KAtom; stamped by Atom,
	// 0 for atoms built as raw struct literals).
	Ref int
	// Rat is the numeric value (KNum only).
	Rat *big.Rat
	// Args are the compound arguments (KComp only).
	Args []Term
}

var varCtr atomic.Int64

// NewVar returns a fresh variable with the given display name.
func NewVar(name string) Term {
	return Term{Kind: KVar, Str: name, Ref: int(varCtr.Add(1))}
}

// Atom returns an atom term. The name is interned process-wide so that
// unification compares atoms by id rather than by bytes.
func Atom(name string) Term { return Term{Kind: KAtom, Str: name, Ref: internID(name)} }

// Int returns a numeric term with integer value.
func Int(v int64) Term { return Term{Kind: KNum, Rat: big.NewRat(v, 1)} }

// Rat returns a numeric term; the rational is copied.
func Rat(r *big.Rat) Term { return Term{Kind: KNum, Rat: new(big.Rat).Set(r)} }

// Float returns a numeric term approximating f exactly as a rational.
func Float(f float64) Term {
	r := new(big.Rat)
	r.SetFloat64(f)
	return Term{Kind: KNum, Rat: r}
}

// Comp returns a compound term functor(args...).
func Comp(functor string, args ...Term) Term {
	return Term{Kind: KComp, Str: functor, Args: args}
}

// Indicator returns the predicate indicator "functor/arity" used to index
// the clause database. Atoms are functor/0.
func (t Term) Indicator() string {
	switch t.Kind {
	case KAtom:
		return t.Str + "/0"
	case KComp:
		return fmt.Sprintf("%s/%d", t.Str, len(t.Args))
	}
	return ""
}

// String renders the term in Prolog-like syntax.
func (t Term) String() string {
	switch t.Kind {
	case KAtom:
		return quoteAtom(t.Str)
	case KNum:
		if t.Rat.IsInt() {
			return t.Rat.Num().String()
		}
		return t.Rat.RatString()
	case KVar:
		return fmt.Sprintf("_%s%d", t.Str, t.Ref)
	case KComp:
		parts := make([]string, len(t.Args))
		for i, a := range t.Args {
			parts[i] = a.String()
		}
		return quoteAtom(t.Str) + "(" + strings.Join(parts, ",") + ")"
	}
	return "?"
}

// quoteAtom quotes atoms that are not plain lower-case identifiers, the
// way Prolog output does.
func quoteAtom(s string) string {
	if s == "" {
		return "''"
	}
	plain := s[0] >= 'a' && s[0] <= 'z'
	if plain {
		for _, r := range s {
			if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_') {
				plain = false
				break
			}
		}
	}
	if plain {
		return s
	}
	return "'" + strings.ReplaceAll(s, "'", "\\'") + "'"
}

// Bindings is a backtrackable variable binding store.
type Bindings struct {
	m     map[int]Term
	trail []int
}

// NewBindings returns an empty store.
func NewBindings() *Bindings {
	return &Bindings{m: map[int]Term{}}
}

// Mark returns the current trail position for later Undo.
func (b *Bindings) Mark() int { return len(b.trail) }

// Undo unbinds everything bound since the mark.
func (b *Bindings) Undo(mark int) {
	for i := len(b.trail) - 1; i >= mark; i-- {
		delete(b.m, b.trail[i])
	}
	b.trail = b.trail[:mark]
}

func (b *Bindings) bind(ref int, t Term) {
	b.m[ref] = t
	b.trail = append(b.trail, ref)
}

// Walk dereferences t one level at a time until it reaches a non-variable
// or an unbound variable.
func (b *Bindings) Walk(t Term) Term {
	for t.Kind == KVar {
		next, ok := b.m[t.Ref]
		if !ok {
			return t
		}
		t = next
	}
	return t
}

// Resolve fully substitutes bindings into t, recursing into compounds.
func (b *Bindings) Resolve(t Term) Term {
	t = b.Walk(t)
	if t.Kind != KComp {
		return t
	}
	args := make([]Term, len(t.Args))
	for i, a := range t.Args {
		args[i] = b.Resolve(a)
	}
	return Term{Kind: KComp, Str: t.Str, Args: args}
}

// occurs reports whether variable ref occurs in t (after walking).
func (b *Bindings) occurs(ref int, t Term) bool {
	t = b.Walk(t)
	switch t.Kind {
	case KVar:
		return t.Ref == ref
	case KComp:
		for _, a := range t.Args {
			if b.occurs(ref, a) {
				return true
			}
		}
	}
	return false
}

// Unify attempts to unify a and b under the store, binding variables as
// needed. On failure the store is left as it was at entry.
func (b *Bindings) Unify(x, y Term) bool {
	mark := b.Mark()
	if b.unify(x, y) {
		return true
	}
	b.Undo(mark)
	return false
}

func (b *Bindings) unify(x, y Term) bool {
	x, y = b.Walk(x), b.Walk(y)
	if x.Kind == KVar && y.Kind == KVar && x.Ref == y.Ref {
		return true
	}
	if x.Kind == KVar {
		if b.occurs(x.Ref, y) {
			return false
		}
		b.bind(x.Ref, y)
		return true
	}
	if y.Kind == KVar {
		if b.occurs(y.Ref, x) {
			return false
		}
		b.bind(y.Ref, x)
		return true
	}
	switch x.Kind {
	case KAtom:
		if y.Kind != KAtom {
			return false
		}
		// Interned atoms (the common case: everything built via Atom)
		// compare by id; atoms assembled as raw struct literals fall back
		// to the string comparison.
		if x.Ref != 0 && y.Ref != 0 {
			return x.Ref == y.Ref
		}
		return x.Str == y.Str
	case KNum:
		return y.Kind == KNum && x.Rat.Cmp(y.Rat) == 0
	case KComp:
		if y.Kind != KComp || x.Str != y.Str || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !b.unify(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// rename returns a copy of t with every variable replaced by a fresh one,
// using ren to keep shared variables shared.
func rename(t Term, ren map[int]Term) Term {
	switch t.Kind {
	case KVar:
		nv, ok := ren[t.Ref]
		if !ok {
			nv = NewVar(t.Str)
			ren[t.Ref] = nv
		}
		return nv
	case KComp:
		args := make([]Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = rename(a, ren)
		}
		return Term{Kind: KComp, Str: t.Str, Args: args}
	default:
		return t
	}
}

// termVars appends the distinct variable refs in t (unresolved) to dst.
func termVars(t Term, seen map[int]bool, dst *[]int) {
	switch t.Kind {
	case KVar:
		if !seen[t.Ref] {
			seen[t.Ref] = true
			*dst = append(*dst, t.Ref)
		}
	case KComp:
		for _, a := range t.Args {
			termVars(a, seen, dst)
		}
	}
}

// Vars returns the distinct variables of t in first-occurrence order.
func Vars(t Term) []Term {
	var refs []int
	collect := map[int]bool{}
	termVars(t, collect, &refs)
	out := make([]Term, 0, len(refs))
	for _, r := range refs {
		out = append(out, Term{Kind: KVar, Ref: r})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ref < out[j].Ref })
	return out
}

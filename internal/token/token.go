// Package token defines the lexical tokens of the NMSL specification
// language and the source positions used in diagnostics.
//
// The token set follows section 4.1.1 of the paper: tokens are separated by
// white space or special character sequences like "::=" or ";". NMSL
// keywords are alphabetic. Because the NMSL compiler parses a *generalized*
// grammar (Figure 6.1) in its first pass, keywords are not reserved at the
// lexical level: any alphabetic token is an IDENT, and keyword recognition
// is table-driven in the second (semantic) pass. The lexer therefore only
// distinguishes structural token classes.
package token

import "fmt"

// Kind classifies a lexical token.
type Kind int

// Token kinds. SPECIAL covers single-character punctuation that the
// generalized grammar treats uniformly ("special" in Figure 6.1).
const (
	// ILLEGAL marks a byte sequence that cannot begin any token.
	ILLEGAL Kind = iota
	// EOF marks the end of the input.
	EOF
	// IDENT is an alphanumeric word: keyword candidates, type names,
	// dotted MIB names are built from IDENT and PERIOD tokens.
	IDENT
	// STRING is a double-quoted string literal, e.g. "romano.cs.wisc.edu".
	STRING
	// INT is an unsigned integer literal.
	INT
	// FLOAT is a floating point literal.
	FLOAT
	// DEFINE is the definition separator "::=".
	DEFINE
	// SEMI is ";", the clause terminator.
	SEMI
	// PERIOD is ".", the declaration terminator and dotted-name separator.
	PERIOD
	// COMMA is ",", the list separator.
	COMMA
	// COLON is ":", used in parameter type annotations.
	COLON
	// LPAREN and RPAREN delimit parameter lists.
	LPAREN
	RPAREN
	// LBRACE and RBRACE delimit ASN.1 SEQUENCE bodies.
	LBRACE
	RBRACE
	// ASSIGN is ":=", used in query "using" clauses (Figure 4.4).
	ASSIGN
	// LT, LE, GT, GE are the frequency bound operators (Figure 4.3).
	LT
	LE
	GT
	GE
	// STAR is "*", the late-binding parameter placeholder (Figure 4.8).
	STAR
)

var kindNames = [...]string{
	ILLEGAL: "ILLEGAL",
	EOF:     "EOF",
	IDENT:   "IDENT",
	STRING:  "STRING",
	INT:     "INT",
	FLOAT:   "FLOAT",
	DEFINE:  "::=",
	SEMI:    ";",
	PERIOD:  ".",
	COMMA:   ",",
	COLON:   ":",
	LPAREN:  "(",
	RPAREN:  ")",
	LBRACE:  "{",
	RBRACE:  "}",
	ASSIGN:  ":=",
	LT:      "<",
	LE:      "<=",
	GT:      ">",
	GE:      ">=",
	STAR:    "*",
}

// String returns a printable name for the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Pos is a source position: byte offset, 1-based line and column.
type Pos struct {
	Offset int
	Line   int
	Column int
}

// String formats the position as "line:column".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Column) }

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a single lexical token with its source text and position.
type Token struct {
	Kind Kind
	// Text is the literal source text. For STRING tokens the surrounding
	// quotes are stripped.
	Text string
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, STRING, INT, FLOAT, ILLEGAL:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}

// Is reports whether the token is an IDENT with the given (case-sensitive)
// text. NMSL keywords are lower-case alphabetic words; ASN.1 type keywords
// are upper-case. Keyword matching is exact per the paper's examples.
func (t Token) Is(word string) bool { return t.Kind == IDENT && t.Text == word }

// BasicKeywords lists the keywords of the basic NMSL language (sections
// 4.1.2-4.1.5). The set exists for documentation and for the semantic
// pass's table initialization; the lexer does not reserve these words,
// matching the paper's generalized first-pass grammar.
var BasicKeywords = []string{
	// declaration types
	"type", "process", "system", "domain", "end",
	// type specification clauses
	"access",
	// process specification clauses
	"supports", "exports", "to", "queries", "requests", "using",
	"frequency", "infrequent",
	// network element clauses
	"cpu", "interface", "net", "protocols", "speed", "bps",
	"opsys", "version",
	// time units
	"hours", "minutes", "seconds",
}

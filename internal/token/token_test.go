package token

import "testing"

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		IDENT:    "IDENT",
		EOF:      "EOF",
		DEFINE:   "::=",
		SEMI:     ";",
		GE:       ">=",
		ASSIGN:   ":=",
		STAR:     "*",
		Kind(99): "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestPos(t *testing.T) {
	p := Pos{Offset: 10, Line: 3, Column: 7}
	if p.String() != "3:7" {
		t.Errorf("String() = %q", p.String())
	}
	if !p.IsValid() {
		t.Error("valid position reported invalid")
	}
	if (Pos{}).IsValid() {
		t.Error("zero position reported valid")
	}
}

func TestTokenString(t *testing.T) {
	cases := []struct {
		tok  Token
		want string
	}{
		{Token{Kind: IDENT, Text: "process"}, `IDENT("process")`},
		{Token{Kind: STRING, Text: "a b"}, `STRING("a b")`},
		{Token{Kind: INT, Text: "42"}, `INT("42")`},
		{Token{Kind: SEMI}, ";"},
		{Token{Kind: DEFINE}, "::="},
	}
	for _, c := range cases {
		if got := c.tok.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestIs(t *testing.T) {
	tok := Token{Kind: IDENT, Text: "exports"}
	if !tok.Is("exports") || tok.Is("Exports") || tok.Is("queries") {
		t.Error("Is matching wrong")
	}
	if (Token{Kind: STRING, Text: "exports"}).Is("exports") {
		t.Error("Is must only match IDENT tokens")
	}
}

func TestBasicKeywordsComplete(t *testing.T) {
	// the documented keyword set must include every word the basic
	// grammar figures use
	want := []string{"type", "process", "system", "domain", "end",
		"access", "supports", "exports", "to", "queries", "requests",
		"using", "frequency", "infrequent", "cpu", "interface", "net",
		"protocols", "speed", "bps", "opsys", "version",
		"hours", "minutes", "seconds"}
	set := map[string]bool{}
	for _, k := range BasicKeywords {
		set[k] = true
	}
	for _, w := range want {
		if !set[w] {
			t.Errorf("BasicKeywords missing %q", w)
		}
	}
}

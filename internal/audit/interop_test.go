package audit

import (
	"strings"
	"testing"
	"time"

	"nmsl/internal/configgen"
	"nmsl/internal/consistency"
	"nmsl/internal/netsim"
	"nmsl/internal/snmp"
)

// startFleet builds a synthetic internet, starts one agent per agent
// instance, and distributes the generated configuration.
func startFleet(t *testing.T, p netsim.Params) (*consistency.Model, map[string]string, map[string]*snmp.Agent) {
	t.Helper()
	m, err := netsim.Model(p)
	if err != nil {
		t.Fatal(err)
	}
	configs := configgen.Generate(m)
	addrs := map[string]string{}
	agents := map[string]*snmp.Agent{}
	var targets []configgen.Target
	for id := range configs {
		store := snmp.NewStore()
		snmp.PopulateFromMIB(store, m.Spec.MIB, "mgmt.mib")
		agent := snmp.NewAgent(store, &snmp.Config{
			Communities:    map[string]*snmp.CommunityConfig{},
			AdminCommunity: "adm",
		})
		addr, err := agent.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { agent.Close() })
		addrs[id] = addr.String()
		agents[id] = agent
		targets = append(targets, configgen.Target{InstanceID: id, Addr: addr.String(), AdminCommunity: "adm"})
	}
	results := configgen.Distribute(m, targets, configgen.DistributeOptions{})
	if failed := configgen.Failed(results); len(failed) != 0 {
		t.Fatalf("distribution failures: %+v", failed)
	}
	return m, addrs, agents
}

func TestInteropConsistentFleet(t *testing.T) {
	m, addrs, _ := startFleet(t, netsim.Params{Domains: 4, SystemsPerDomain: 2, Seed: 3})
	rep, err := Interop(m, addrs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Interoperates() {
		t.Fatalf("consistent fleet fails to interoperate:\n%s", rep)
	}
	// 4 pollers x 2 target instances = 8 refs, all exercised
	if rep.Exercised != 8 || rep.Skipped != 0 {
		t.Fatalf("exercised %d skipped %d", rep.Exercised, rep.Skipped)
	}
	if !strings.Contains(rep.String(), "interoperate") {
		t.Errorf("report: %s", rep)
	}
}

func TestInteropDetectsBrokenAgent(t *testing.T) {
	m, addrs, agents := startFleet(t, netsim.Params{Domains: 3, SystemsPerDomain: 1, Seed: 3})
	// one agent loses its policy (e.g. it was rebooted into defaults)
	var victim string
	for id := range agents {
		victim = id
		break
	}
	agents[victim].ApplyConfig(&snmp.Config{Communities: map[string]*snmp.CommunityConfig{}})
	rep, err := Interop(m, addrs, Options{Timeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Interoperates() {
		t.Fatalf("broken agent not detected:\n%s", rep)
	}
	for _, f := range rep.Findings {
		if f.Ref.Target.ID != victim {
			t.Errorf("finding blames wrong agent: %s", f)
		}
	}
}

func TestInteropDetectsWrongView(t *testing.T) {
	m, addrs, agents := startFleet(t, netsim.Params{Domains: 3, SystemsPerDomain: 1, Seed: 3})
	// one agent's view was narrowed below the spec (exports system, agent
	// only serves icmp)
	var victim string
	for id := range agents {
		victim = id
		break
	}
	cfg := agents[victim].ConfigSnapshot()
	icmp := m.Spec.MIB.Lookup("mgmt.mib.icmp").OID()
	broken := &snmp.Config{Communities: map[string]*snmp.CommunityConfig{}, AdminCommunity: cfg.AdminCommunity}
	for name, cc := range cfg.Communities {
		broken.Communities[name] = &snmp.CommunityConfig{Access: cc.Access, View: []snmp.View{{Prefix: icmp}}}
	}
	agents[victim].ApplyConfig(broken)
	rep, err := Interop(m, addrs, Options{Timeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range rep.Findings {
		if f.Ref.Target.ID == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("narrowed view not detected:\n%s", rep)
	}
}

func TestInteropSkipsUnknownAddresses(t *testing.T) {
	m, addrs, _ := startFleet(t, netsim.Params{Domains: 3, SystemsPerDomain: 1, Seed: 3})
	// forget one agent's address
	for id := range addrs {
		delete(addrs, id)
		break
	}
	rep, err := Interop(m, addrs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != 1 {
		t.Fatalf("skipped %d", rep.Skipped)
	}
}

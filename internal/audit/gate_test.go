package audit

import (
	"context"
	"strings"
	"testing"
	"time"

	"nmsl/internal/configgen"
)

// TestGate: the audit-backed health gate passes a wave of adherent
// canaries, fails a wave containing a diverging one, and ignores
// targets the wave did not install.
func TestGate(t *testing.T) {
	m := model(t)
	opts := Options{Timeout: 300 * time.Millisecond, Backoff: time.Millisecond}
	gate := Gate(m, opts)

	goodAddr := startAgent(t, m, configgen.Generate(m)[instID])
	badAddr := startAgent(t, m, misconfigured(m))
	good := configgen.TargetResult{
		Target: configgen.Target{InstanceID: instID, Addr: goodAddr, AdminCommunity: "nmsl-admin"},
		Status: configgen.StatusInstalled,
	}
	bad := configgen.TargetResult{
		Target: configgen.Target{InstanceID: instID, Addr: badAddr, AdminCommunity: "nmsl-admin"},
		Status: configgen.StatusInstalled,
	}
	notInstalled := configgen.TargetResult{
		Target: configgen.Target{InstanceID: instID, Addr: "127.0.0.1:1", AdminCommunity: "nmsl-admin"},
		Status: configgen.StatusFailed,
	}

	if err := gate(context.Background(), []configgen.TargetResult{good, notInstalled}); err != nil {
		t.Fatalf("gate failed an adherent wave: %v", err)
	}
	err := gate(context.Background(), []configgen.TargetResult{good, bad})
	if err == nil {
		t.Fatal("gate passed a wave with a diverging canary")
	}
	if !strings.Contains(err.Error(), "diverge") {
		t.Errorf("gate error: %v", err)
	}
}

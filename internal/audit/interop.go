package audit

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"nmsl/internal/consistency"
	"nmsl/internal/snmp"
)

// Interoperation checking closes the loop the paper opens with:
// "Integrating increasing numbers of autonomous subnetworks … makes it
// more difficult to determine if the network managers of the subnetworks
// will interoperate correctly." Where Agent audits one manager against
// its own policy, Interop drives every *reference* of the consistency
// model — each specified interaction, from each source to each target —
// against the live fleet and verifies the query actually succeeds. A
// consistent specification installed by the configuration generators
// must yield a fully interoperating fleet; any failure pinpoints the
// manager that diverged.

// InteropFinding is one reference that could not be exercised as
// specified.
type InteropFinding struct {
	Ref    consistency.Ref
	Reason string
}

func (f InteropFinding) String() string {
	return fmt.Sprintf("%s: %s", f.Ref.String(), f.Reason)
}

// InteropReport summarizes an interoperation run.
type InteropReport struct {
	// Exercised counts references actually driven (targets with a known
	// address).
	Exercised int
	// Skipped counts references whose target had no address.
	Skipped  int
	Findings []InteropFinding
}

// Interoperates reports whether every exercised reference succeeded.
func (r *InteropReport) Interoperates() bool { return len(r.Findings) == 0 }

// String renders the report.
func (r *InteropReport) String() string {
	var b strings.Builder
	if r.Interoperates() {
		fmt.Fprintf(&b, "all %d specified references interoperate (%d skipped: no address)\n", r.Exercised, r.Skipped)
		return b.String()
	}
	fmt.Fprintf(&b, "%d of %d specified references FAIL to interoperate:\n", len(r.Findings), r.Exercised)
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	return b.String()
}

// communityFor picks the community a reference's source should present
// (delegated to the consistency model).
func communityFor(m *consistency.Model, ref *consistency.Ref) string {
	return m.GrantedCommunity(ref)
}

// Interop exercises every reference of the model whose target instance
// has an address in addrs (instance ID -> host:port). Each reference is
// driven once: one in-view query for its variable, presented with the
// source's granted community. Rate-limit refusals are not failures —
// they mean another exercised reference already consumed the window, so
// the probe retries are pointless; the frequency side is Agent's job.
func Interop(m *consistency.Model, addrs map[string]string, opts Options) (*InteropReport, error) {
	return InteropContext(context.Background(), m, addrs, opts)
}

// InteropContext is Interop under a context: the sweep stops (returning
// the partial report with the context's error) once ctx is done.
func InteropContext(ctx context.Context, m *consistency.Model, addrs map[string]string, opts Options) (*InteropReport, error) {
	opts.fill()
	ids := make([]string, 0, len(addrs))
	for id := range addrs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if m.InstanceByID(id) == nil {
			return nil, fmt.Errorf("interop: instance %q: %w", id, consistency.ErrUnknownInstance)
		}
	}
	rep := &InteropReport{}
	// Exercise in a stable order.
	refIdx := make([]int, len(m.Refs))
	for i := range refIdx {
		refIdx[i] = i
	}
	sort.Slice(refIdx, func(a, b int) bool {
		return m.Refs[refIdx[a]].String() < m.Refs[refIdx[b]].String()
	})
	for _, i := range refIdx {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		ref := &m.Refs[i]
		addr, ok := addrs[ref.Target.ID]
		if !ok {
			rep.Skipped++
			continue
		}
		rep.Exercised++
		community := communityFor(m, ref)
		if community == "" {
			rep.Findings = append(rep.Findings, InteropFinding{
				Ref: *ref, Reason: "no permission grants any community for this reference (specification inconsistent?)",
			})
			continue
		}
		reason := driveRef(ctx, ref, addr, community, opts)
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		if reason != "" {
			rep.Findings = append(rep.Findings, InteropFinding{Ref: *ref, Reason: reason})
		}
	}
	return rep, nil
}

// driveRef performs one specified query and classifies the outcome.
func driveRef(ctx context.Context, ref *consistency.Ref, addr, community string, opts Options) string {
	client, err := snmp.Dial(addr, community)
	if err != nil {
		return fmt.Sprintf("dial %s: %v", addr, err)
	}
	defer client.Close()
	opts.configure(client)

	// References usually name tables or groups while agents serve
	// leaves: for an interior node, the GetNext successor inside the
	// subtree proves the data is reachable; a leaf is fetched directly.
	oid := ref.Var.OID()
	var binds []snmp.Binding
	if len(ref.Var.Children()) == 0 {
		binds, err = client.GetContext(ctx, oid)
	} else {
		binds, err = client.GetNextContext(ctx, oid)
	}
	if err != nil {
		if re, ok := err.(*snmp.RequestError); ok {
			if re.Status == snmp.GenErr {
				return "" // rate-limited: the window was consumed by an earlier reference
			}
			return fmt.Sprintf("query refused with %s (community %q)", re.Status, community)
		}
		return fmt.Sprintf("no answer from %s (community %q): %v", addr, community, err)
	}
	if len(binds) != 1 {
		return fmt.Sprintf("malformed response (%d bindings)", len(binds))
	}
	if !binds[0].OID.HasPrefix(oid) {
		return fmt.Sprintf("agent answered outside %s: %s (data not served)", oid, binds[0].OID)
	}
	return ""
}

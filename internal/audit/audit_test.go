package audit

import (
	"strings"
	"testing"
	"time"

	"nmsl/internal/configgen"
	"nmsl/internal/consistency"
	"nmsl/internal/mib"
	"nmsl/internal/paperspec"
	"nmsl/internal/parser"
	"nmsl/internal/sema"
	"nmsl/internal/snmp"
)

const instID = "snmpdReadOnly@romano.cs.wisc.edu#0"

func model(t *testing.T) *consistency.Model {
	t.Helper()
	f, err := parser.Parse("paper", paperspec.Combined)
	if err != nil {
		t.Fatal(err)
	}
	a := sema.NewAnalyzer()
	a.AnalyzeFile(f)
	spec, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return consistency.BuildModel(spec)
}

// startAgent launches an agent with the given config and a store
// populated from the standard MIB.
func startAgent(t *testing.T, m *consistency.Model, cfg *snmp.Config) string {
	t.Helper()
	store := snmp.NewStore()
	snmp.PopulateFromMIB(store, m.Spec.MIB, "mgmt.mib")
	agent := snmp.NewAgent(store, cfg)
	addr, err := agent.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { agent.Close() })
	return addr.String()
}

func TestAdherentAgent(t *testing.T) {
	m := model(t)
	cfg := configgen.Generate(m)[instID]
	addr := startAgent(t, m, cfg)
	rep, err := Agent(m, instID, addr, Options{ProbeWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Adheres() {
		t.Fatalf("adherent agent flagged:\n%s", rep)
	}
	if rep.Probes == 0 {
		t.Fatal("no probes performed")
	}
	if !strings.Contains(rep.String(), "adheres") {
		t.Errorf("report: %s", rep)
	}
}

// misconfigured returns the expected config weakened: no rate limit and
// write access (an agent an administrator configured by hand, wrongly).
func misconfigured(m *consistency.Model) *snmp.Config {
	cfg := configgen.Generate(m)[instID]
	for _, cc := range cfg.Communities {
		cc.MinInterval = 0
		cc.Access = mib.AccessAny
		for i := range cc.View {
			cc.View[i].Access = mib.AccessAny
		}
	}
	return cfg
}

func TestRateAndWriteLeaks(t *testing.T) {
	m := model(t)
	addr := startAgent(t, m, misconfigured(m))
	rep, err := Agent(m, instID, addr, Options{ProbeWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Adheres() {
		t.Fatal("misconfigured agent passed")
	}
	kinds := map[Kind]int{}
	for _, f := range rep.Findings {
		kinds[f.Kind]++
	}
	if kinds[KindRateLeak] != 1 {
		t.Errorf("rate leak findings: %v\n%s", kinds, rep)
	}
	if kinds[KindWriteLeak] != 1 {
		t.Errorf("write leak findings: %v\n%s", kinds, rep)
	}
}

func TestViewLeak(t *testing.T) {
	m := model(t)
	cfg := configgen.Generate(m)[instID]
	// widen the agent's actual view beyond the spec and drop the rate
	// limit so the probe is observable
	outside := mib.OID{1, 3, 6, 1, 3, 9, 9}
	for _, cc := range cfg.Communities {
		cc.MinInterval = 0
		cc.View = append(cc.View, snmp.View{Prefix: mib.OID{1, 3, 6, 1, 3}})
	}
	store := snmp.NewStore()
	snmp.PopulateFromMIB(store, m.Spec.MIB, "mgmt.mib")
	store.Set(outside, snmp.Str("secret"))
	agent := snmp.NewAgent(store, cfg)
	addr, err := agent.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	rep, err := Agent(m, instID, addr.String(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range rep.Findings {
		if f.Kind == KindViewLeak {
			found = true
		}
	}
	if !found {
		t.Fatalf("view leak not detected:\n%s", rep)
	}
}

func TestUnknownCommunityLeak(t *testing.T) {
	m := model(t)
	cfg := configgen.Generate(m)[instID]
	// an agent that answers any community with the public policy
	cfg.Communities["nmsl-audit-unknown"] = &snmp.CommunityConfig{
		Access: mib.AccessReadOnly,
		View:   []snmp.View{{Prefix: m.Spec.MIB.Lookup("mgmt.mib").OID()}},
	}
	addr := startAgent(t, m, cfg)
	rep, err := Agent(m, instID, addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range rep.Findings {
		if f.Kind == KindUnknownCommunityLeak {
			found = true
		}
	}
	if !found {
		t.Fatalf("unknown community leak not detected:\n%s", rep)
	}
}

func TestUnreachableAgent(t *testing.T) {
	m := model(t)
	// agent with no communities at all: drops everything
	addr := startAgent(t, m, &snmp.Config{Communities: map[string]*snmp.CommunityConfig{}})
	rep, err := Agent(m, instID, addr, Options{Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range rep.Findings {
		if f.Kind == KindUnreachable {
			found = true
		}
	}
	if !found {
		t.Fatalf("unreachable not detected:\n%s", rep)
	}
}

func TestUnservedData(t *testing.T) {
	m := model(t)
	cfg := configgen.Generate(m)[instID]
	// agent with the right policy but an empty database
	agent := snmp.NewAgent(snmp.NewStore(), cfg)
	addr, err := agent.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	rep, err := Agent(m, instID, addr.String(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range rep.Findings {
		if f.Kind == KindUnserved {
			found = true
		}
	}
	if !found {
		t.Fatalf("unserved data not detected:\n%s", rep)
	}
}

func TestOverRestrictiveRate(t *testing.T) {
	m := model(t)
	// Build a spec-derived config with no frequency bound, but run the
	// agent with one: the agent is stricter than specified.
	src := strings.Replace(paperspec.Combined,
		"        frequency >= 5 minutes;\nend process snmpdReadOnly.",
		";\nend process snmpdReadOnly.", 1)
	src = strings.Replace(src,
		"        frequency >= 5 minutes;\nend domain wisc-cs.",
		";\nend domain wisc-cs.", 1)
	f, err := parser.Parse("mod", src)
	if err != nil {
		t.Fatal(err)
	}
	a := sema.NewAnalyzer()
	a.AnalyzeFile(f)
	astSpec, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m2 := consistency.BuildModel(astSpec)
	cfg := configgen.Generate(m2)[instID]
	for _, cc := range cfg.Communities {
		cc.MinInterval = time.Hour // stricter than the (unbounded) spec
	}
	addr := startAgent(t, m2, cfg)
	rep, err := Agent(m2, instID, addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, fd := range rep.Findings {
		if fd.Kind == KindOverRestrictive {
			found = true
		}
	}
	if !found {
		t.Fatalf("over-restrictive rate not detected:\n%s", rep)
	}
	_ = m
}

func TestAuditErrors(t *testing.T) {
	m := model(t)
	if _, err := Agent(m, "nope", "127.0.0.1:1", Options{}); err == nil {
		t.Error("unknown instance accepted")
	}
	if _, err := Agent(m, "snmpaddr@wisc-cs#0", "127.0.0.1:1", Options{}); err == nil {
		t.Error("non-agent instance accepted")
	}
}

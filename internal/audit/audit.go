// Package audit verifies that running network managers actually adhere
// to their NMSL specification.
//
// The paper promises two verification methods (abstract, section 1):
// consistency verification of the specifications against each other —
// internal/consistency — and "a method for verifying that these
// specifications are actually being adhered to in the network". This
// package implements the second: it derives the behaviour a consistent
// specification prescribes for an agent instance (its expected
// communities, views, access modes and rate limits) and probes the live
// agent over the management protocol, reporting every observable
// divergence.
//
// Divergences are asymmetric by nature: a remote agent that refuses more
// than the specification requires is over-restrictive (availability
// findings), one that answers what the specification forbids leaks
// (policy findings). Both directions are reported.
package audit

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"nmsl/internal/configgen"
	"nmsl/internal/consistency"
	"nmsl/internal/mib"
	"nmsl/internal/snmp"
)

// Kind classifies an adherence finding.
type Kind string

// Finding kinds.
const (
	// KindUnreachable: the agent did not answer a query the
	// specification permits.
	KindUnreachable Kind = "unreachable"
	// KindUnserved: an in-view variable the instance is specified to
	// support is not served.
	KindUnserved Kind = "unserved"
	// KindViewLeak: data outside every exported view was readable.
	KindViewLeak Kind = "view-leak"
	// KindWriteLeak: a write succeeded although the specification grants
	// no write access.
	KindWriteLeak Kind = "write-leak"
	// KindRateLeak: queries faster than the specified minimum interval
	// were accepted.
	KindRateLeak Kind = "rate-leak"
	// KindOverRestrictive: an in-spec query was refused for access
	// reasons.
	KindOverRestrictive Kind = "over-restrictive"
	// KindUnknownCommunityLeak: a community the specification never
	// grants got an answer.
	KindUnknownCommunityLeak Kind = "unknown-community-leak"
)

// Finding is one observed divergence between specification and agent.
type Finding struct {
	Kind      Kind
	Community string
	OID       mib.OID
	Message   string
}

func (f Finding) String() string {
	return fmt.Sprintf("[%s] community %q: %s", f.Kind, f.Community, f.Message)
}

// Report is the result of auditing one agent instance.
type Report struct {
	Instance string
	Addr     string
	Findings []Finding
	// Probes counts the protocol operations performed.
	Probes int
}

// Adheres reports whether no divergence was observed.
func (r *Report) Adheres() bool { return len(r.Findings) == 0 }

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	if r.Adheres() {
		fmt.Fprintf(&b, "agent %s at %s adheres to its specification (%d probes)\n", r.Instance, r.Addr, r.Probes)
		return b.String()
	}
	fmt.Fprintf(&b, "agent %s at %s DIVERGES from its specification (%d findings, %d probes):\n",
		r.Instance, r.Addr, len(r.Findings), r.Probes)
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	return b.String()
}

// Options tune the audit.
type Options struct {
	// Timeout is the per-probe response timeout. Zero selects 300ms.
	Timeout time.Duration
	// Retries is how many times an unanswered probe is retransmitted
	// (the rollout layer's retry policy applied to audit traffic). Zero
	// selects the client default (2); negative disables retransmits.
	Retries int
	// Backoff is the base delay between retransmits, growing
	// exponentially with jitter; zero keeps the client default.
	Backoff time.Duration
	// ProbeWrites enables write-leak probing. The probe writes back the
	// value it just read, so a leaking agent's database is left
	// unchanged; set false for strictly passive audits.
	ProbeWrites bool
	// OutsideOID is a variable assumed to exist on the agent but outside
	// every exported view, used to detect view leaks. Leave nil to probe
	// with an experimental-arc OID (leaks are then only detected if the
	// agent serves it).
	OutsideOID mib.OID
}

func (o *Options) fill() {
	if o.Timeout == 0 {
		o.Timeout = 300 * time.Millisecond
	}
}

// configure applies the probe policy to a client.
func (o *Options) configure(client *snmp.Client) {
	client.SetTimeout(o.Timeout)
	switch {
	case o.Retries < 0:
		client.SetRetries(0)
	case o.Retries > 0:
		client.SetRetries(o.Retries)
	}
	if o.Backoff > 0 {
		client.SetBackoff(o.Backoff, 0)
	}
}

// Agent audits the running agent at addr against what the specification
// prescribes for instance instID.
func Agent(m *consistency.Model, instID, addr string, opts Options) (*Report, error) {
	return AgentContext(context.Background(), m, instID, addr, opts)
}

// AgentContext is Agent under a context: probes stop (and the partial
// report is returned along with the context's error) as soon as ctx is
// done.
func AgentContext(ctx context.Context, m *consistency.Model, instID, addr string, opts Options) (*Report, error) {
	opts.fill()
	inst := m.InstanceByID(instID)
	if inst == nil {
		return nil, fmt.Errorf("audit: instance %q: %w", instID, consistency.ErrUnknownInstance)
	}
	expected := configgen.Generate(m)[instID]
	if expected == nil {
		return nil, fmt.Errorf("audit: instance %q: %w", instID, consistency.ErrNotAgent)
	}
	rep := &Report{Instance: instID, Addr: addr}

	communities := make([]string, 0, len(expected.Communities))
	for name := range expected.Communities {
		communities = append(communities, name)
	}
	sort.Strings(communities)
	for _, name := range communities {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		if err := auditCommunity(ctx, m, rep, addr, name, expected.Communities[name], opts); err != nil {
			if ctx.Err() != nil {
				return rep, ctx.Err()
			}
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	if err := auditUnknownCommunity(ctx, rep, addr, expected, opts); err != nil {
		if ctx.Err() != nil {
			return rep, ctx.Err()
		}
		return nil, err
	}
	return rep, nil
}

// inViewOID picks a leaf variable inside the community's view that the
// instance supports, preferring the system group (always present).
func inViewOID(m *consistency.Model, cc *snmp.CommunityConfig) mib.OID {
	for _, v := range cc.View {
		node := m.Spec.MIB.LookupOID(v.Prefix)
		if node == nil {
			continue
		}
		var leaf mib.OID
		m.Spec.MIB.Walk(node.Path(), func(n *mib.Node) {
			if leaf == nil && len(n.Children()) == 0 {
				leaf = n.OID()
			}
		})
		if leaf != nil {
			return leaf
		}
	}
	return nil
}

func auditCommunity(ctx context.Context, m *consistency.Model, rep *Report, addr, name string, cc *snmp.CommunityConfig, opts Options) error {
	client, err := snmp.Dial(addr, name)
	if err != nil {
		return err
	}
	defer client.Close()
	opts.configure(client)

	oid := inViewOID(m, cc)
	if oid == nil {
		return nil // nothing observable for this community
	}

	// Probe 1: an in-spec read must succeed (when some grant covering the
	// variable allows reads — access is per view subtree, not per
	// community).
	canRead := cc.Allows(oid, mib.AccessReadOnly)
	rep.Probes++
	binds, err := client.GetContext(ctx, oid)
	if ctx.Err() != nil {
		return ctx.Err()
	}
	switch {
	case err == nil && !canRead:
		rep.Findings = append(rep.Findings, Finding{
			Kind: KindViewLeak, Community: name, OID: oid,
			Message: fmt.Sprintf("read of %s succeeded but the specification grants %s", oid, cc.AccessFor(oid)),
		})
	case err != nil && canRead:
		if re, ok := err.(*snmp.RequestError); ok {
			rep.Findings = append(rep.Findings, Finding{
				Kind: KindOverRestrictive, Community: name, OID: oid,
				Message: fmt.Sprintf("in-spec read of %s refused with %s", oid, re.Status),
			})
		} else {
			rep.Findings = append(rep.Findings, Finding{
				Kind: KindUnreachable, Community: name, OID: oid,
				Message: fmt.Sprintf("in-spec read of %s got no answer: %v", oid, err),
			})
		}
	}

	// Probe 2: an immediate second query must be refused when the
	// specification bounds the frequency.
	if canRead && err == nil {
		rep.Probes++
		_, err2 := client.GetContext(ctx, oid)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if cc.MinInterval > 0 && err2 == nil {
			rep.Findings = append(rep.Findings, Finding{
				Kind: KindRateLeak, Community: name, OID: oid,
				Message: fmt.Sprintf("two immediate queries accepted; specification requires >= %s between queries", cc.MinInterval),
			})
		}
		if cc.MinInterval == 0 && err2 != nil {
			if re, ok := err2.(*snmp.RequestError); ok && re.Status == snmp.GenErr {
				rep.Findings = append(rep.Findings, Finding{
					Kind: KindOverRestrictive, Community: name, OID: oid,
					Message: "agent rate-limits although the specification sets no frequency bound",
				})
			}
		}
	}

	// Probe 3: data outside every exported view must not be readable.
	// Rate-limited refusals mask the probe (and also prove nothing
	// leaks), so only definite answers count.
	outside := opts.OutsideOID
	if outside == nil {
		outside = mib.OID{1, 3, 6, 1, 3, 9, 9} // experimental arc
	}
	if !cc.InView(outside) {
		rep.Probes++
		_, err := client.GetContext(ctx, outside)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err == nil {
			rep.Findings = append(rep.Findings, Finding{
				Kind: KindViewLeak, Community: name, OID: outside,
				Message: fmt.Sprintf("read of %s succeeded outside the exported view", outside),
			})
		}
	}

	// Probe 4: writes must be refused unless the specification grants
	// write access. The probe writes back the value read in probe 1.
	if opts.ProbeWrites && len(binds) == 1 && !cc.Allows(oid, mib.AccessWriteOnly) {
		rep.Probes++
		err := client.SetContext(ctx, snmp.Binding{OID: oid, Value: binds[0].Value})
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err == nil {
			rep.Findings = append(rep.Findings, Finding{
				Kind: KindWriteLeak, Community: name, OID: oid,
				Message: fmt.Sprintf("write to %s accepted but the specification grants %s", oid, cc.AccessFor(oid)),
			})
		}
	}

	// Probe 5: in-view variables of supported data should be served
	// (availability side). Detected through probe 1's NoSuchName.
	if canRead && err != nil {
		if re, ok := err.(*snmp.RequestError); ok && re.Status == snmp.NoSuchName {
			rep.Findings = append(rep.Findings, Finding{
				Kind: KindUnserved, Community: name, OID: oid,
				Message: fmt.Sprintf("%s is inside the exported view but not served", oid),
			})
		}
	}
	return nil
}

func auditUnknownCommunity(ctx context.Context, rep *Report, addr string, expected *snmp.Config, opts Options) error {
	name := "nmsl-audit-unknown"
	for expected.Communities[name] != nil || expected.AdminCommunity == name {
		name += "-x"
	}
	client, err := snmp.Dial(addr, name)
	if err != nil {
		return err
	}
	defer client.Close()
	opts.configure(client)
	rep.Probes++
	// Unknown communities must be silently dropped (SNMPv1 practice and
	// the only behaviour consistent with "no permission"): any response,
	// even an error status, reveals the agent processed the request.
	_, err = client.GetContext(ctx, mib.OID{1, 3, 6, 1, 2, 1, 1, 1})
	if ctx.Err() != nil {
		return ctx.Err()
	}
	if _, answered := err.(*snmp.RequestError); err == nil || answered {
		rep.Findings = append(rep.Findings, Finding{
			Kind: KindUnknownCommunityLeak, Community: name,
			Message: "a community the specification never grants received an answer",
		})
	}
	return nil
}

package audit

import (
	"context"
	"fmt"
	"strings"

	"nmsl/internal/configgen"
	"nmsl/internal/consistency"
)

// Gate adapts the adherence auditor into a rollout health gate
// (configgen.WithGate): after each canary wave it audits every target
// the wave installed and fails the gate if any of them diverges from
// the specification. A failed gate makes the rollout revert the wave
// to its pre-images and abort — the canary pattern of section 5's
// distributed configuration phase, with the paper's second verification
// method ("verifying that these specifications are actually being
// adhered to in the network") as the health check.
//
// Gate lives here rather than in configgen because audit already
// imports configgen for the expected per-instance configurations; the
// rollout only ever sees the closure.
func Gate(m *consistency.Model, opts Options) func(ctx context.Context, wave []configgen.TargetResult) error {
	return func(ctx context.Context, wave []configgen.TargetResult) error {
		var bad []string
		for _, r := range wave {
			if r.Status != configgen.StatusInstalled {
				continue
			}
			rep, err := AgentContext(ctx, m, r.Target.InstanceID, r.Target.Addr, opts)
			if err != nil {
				return fmt.Errorf("audit of %s at %s: %w", r.Target.InstanceID, r.Target.Addr, err)
			}
			if !rep.Adheres() {
				bad = append(bad, fmt.Sprintf("%s (%d findings)", r.Target.InstanceID, len(rep.Findings)))
			}
		}
		if len(bad) > 0 {
			return fmt.Errorf("%d of %d canary targets diverge from the specification: %s",
				len(bad), len(wave), strings.Join(bad, ", "))
		}
		return nil
	}
}

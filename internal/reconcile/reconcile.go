// Package reconcile closes the loop the paper leaves open between its
// two verification methods: consistency checking tells us what every
// agent's configuration must be, the adherence audit tells us what a
// live agent actually does — the reconciler runs the comparison
// continuously and repairs the difference. A jittered periodic sweep
// fetches each agent's live configuration, compares its digest against
// the model's desired configuration (optionally corroborated by audit
// probes), and re-installs on drift. Targets that keep failing or keep
// flapping are quarantined behind a per-target circuit breaker so a
// broken element cannot monopolize the sweep; after a cooldown a single
// half-open probe decides whether it rejoins the fleet.
package reconcile

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"nmsl/internal/audit"
	"nmsl/internal/configgen"
	"nmsl/internal/consistency"
	"nmsl/internal/obs"
	"nmsl/internal/snmp"
)

// Metric names recorded by the reconciler.
const (
	MetricSweeps        = "nmsl_reconcile_sweeps_total"
	MetricDrift         = "nmsl_reconcile_drift_total"
	MetricHeals         = "nmsl_reconcile_heals_total"
	MetricHealFailures  = "nmsl_reconcile_heal_failures_total"
	MetricCheckFailures = "nmsl_reconcile_check_failures_total"
	// MetricBreakerOpen is a gauge: how many targets are currently
	// quarantined (open or half-open breaker).
	MetricBreakerOpen = "nmsl_reconcile_breaker_open"
)

// EventKind classifies a reconciler event.
type EventKind string

// Event kinds, in rough lifecycle order.
const (
	// EventDrift: a target's live configuration diverged from the model.
	EventDrift EventKind = "drift"
	// EventHealed: a drifted target was re-installed successfully.
	EventHealed EventKind = "healed"
	// EventHealFailed: the re-install did not land.
	EventHealFailed EventKind = "heal-failed"
	// EventCheckFailed: the target could not be observed at all.
	EventCheckFailed EventKind = "check-failed"
	// EventQuarantined: the target's breaker opened.
	EventQuarantined EventKind = "quarantined"
	// EventRestored: a quarantined target passed its half-open probe and
	// rejoined the fleet.
	EventRestored EventKind = "restored"
)

// Event is one notable observation during a sweep.
type Event struct {
	Kind     EventKind
	Instance string
	Addr     string
	// Detail carries the error or digest information behind the event.
	Detail string
}

func (e Event) String() string {
	if e.Detail == "" {
		return fmt.Sprintf("[%s] %s at %s", e.Kind, e.Instance, e.Addr)
	}
	return fmt.Sprintf("[%s] %s at %s: %s", e.Kind, e.Instance, e.Addr, e.Detail)
}

// Sweep summarizes one reconciliation pass over the fleet.
type Sweep struct {
	// Index counts sweeps since the reconciler started, from 1.
	Index int
	// Checked is how many targets were actually probed (not skipped).
	Checked int
	// InSync, Drifted, Healed, HealFailures and CheckFailures partition
	// the checked targets' outcomes (a drifted target is also counted
	// healed or heal-failed).
	InSync, Drifted, Healed, HealFailures, CheckFailures int
	// Skipped is how many targets an open breaker quarantined.
	Skipped int
	// Open is how many breakers are not closed after the sweep.
	Open int
}

// String renders the sweep summary.
func (s *Sweep) String() string {
	return fmt.Sprintf("sweep %d: %d checked, %d in-sync, %d drifted (%d healed, %d heal-failed), %d check-failed, %d quarantined-skip, %d breakers open",
		s.Index, s.Checked, s.InSync, s.Drifted, s.Healed, s.HealFailures, s.CheckFailures, s.Skipped, s.Open)
}

type options struct {
	interval         time.Duration
	jitterFrac       float64
	seed             int64
	seeded           bool
	breakerThreshold int
	breakerCooldown  time.Duration
	probeJitterFrac  float64
	retries          int
	attemptTimeout   time.Duration
	sweepWorkers     int
	metrics          *obs.Registry
	onEvent          func(Event)
	auditOn          bool
	auditOpts        audit.Options
	now              func() time.Time
}

// Option tunes a Reconciler.
type Option func(*options)

// WithInterval sets the pause between sweeps (default 30s).
func WithInterval(d time.Duration) Option {
	return func(o *options) {
		if d > 0 {
			o.interval = d
		}
	}
}

// WithJitter sets the fractional jitter applied to each pause: the
// actual sleep is interval ± frac·interval, so a fleet of reconcilers
// does not sweep in lockstep. Default 0.1; zero disables jitter.
func WithJitter(frac float64) Option {
	return func(o *options) {
		if frac >= 0 && frac < 1 {
			o.jitterFrac = frac
		}
	}
}

// WithSeed makes the sleep jitter deterministic for tests.
func WithSeed(seed int64) Option {
	return func(o *options) { o.seed, o.seeded = seed, true }
}

// WithBreaker tunes the quarantine circuit breaker: threshold
// consecutive failures open it (default 3), and an open breaker admits
// a half-open probe after cooldown (default 2m).
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(o *options) {
		if threshold > 0 {
			o.breakerThreshold = threshold
		}
		if cooldown > 0 {
			o.breakerCooldown = cooldown
		}
	}
}

// WithProbeJitter sets the fractional jitter added to each breaker's
// cooldown before its half-open probe: a breaker opened at t probes at
// t + cooldown + uniform[0, frac·cooldown). Default 0.1. Without it a
// flap storm that quarantines a wave of targets simultaneously releases
// every half-open probe at the same sweep — a thundering herd against
// agents that just recovered. Zero disables (probes at the exact
// boundary, as deterministic tests may need).
func WithProbeJitter(frac float64) Option {
	return func(o *options) {
		if frac >= 0 && frac < 1 {
			o.probeJitterFrac = frac
		}
	}
}

// WithRetries sets how many times an unanswered probe or heal is
// retransmitted (default 2; negative means zero).
func WithRetries(n int) Option {
	return func(o *options) {
		if n < 0 {
			n = 0
		}
		o.retries = n
	}
}

// WithAttemptTimeout bounds each probe or heal attempt's wait for the
// agent's answer (default 500ms).
func WithAttemptTimeout(d time.Duration) Option {
	return func(o *options) {
		if d > 0 {
			o.attemptTimeout = d
		}
	}
}

// WithMetrics selects where the reconciler's counters land: nil (the
// default) records into obs.Default, obs.Disabled turns them off.
func WithMetrics(reg *obs.Registry) Option {
	return func(o *options) { o.metrics = reg }
}

// WithOnEvent streams drift, heal, quarantine and restore events as
// they happen (called from the sweep goroutine, serialized).
func WithOnEvent(fn func(Event)) Option {
	return func(o *options) { o.onEvent = fn }
}

// WithAuditProbes corroborates each digest comparison with the
// adherence auditor: a target whose digest matches but whose observable
// behaviour diverges from the specification still counts as drifted and
// is re-installed.
func WithAuditProbes(opts audit.Options) Option {
	return func(o *options) { o.auditOn, o.auditOpts = true, opts }
}

// WithSweepWorkers runs each sweep as n parallel workers over n
// contiguous target shards (default 1: the serial sweep). Each shard
// owns its targets' breakers, drift history and probe-jitter rng, so
// workers share nothing but the atomic metric counters and the
// serialized event sink — and a shard's outcomes stay deterministic
// under WithSeed regardless of how the workers interleave. At 100k
// targets the serial sweep is the convergence-phase bottleneck (every
// probe waits out its attempt timeout on a partitioned host before the
// next target is even looked at); sharding bounds a sweep by the
// slowest shard instead of the sum.
func WithSweepWorkers(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.sweepWorkers = n
		}
	}
}

// WithClock injects the time source the breaker cooldown reads,
// for tests (default time.Now).
func WithClock(now func() time.Time) Option {
	return func(o *options) {
		if now != nil {
			o.now = now
		}
	}
}

// target is one fleet member with its cached desired configuration.
type target struct {
	tgt     configgen.Target
	desired *snmp.Config
	digest  string
}

// shard is one worker's slice of the fleet with its private mutable
// state. Breakers, drift history and the probe-jitter rng are owned by
// exactly one shard (targets are split contiguously and never move), so
// a parallel sweep's workers share no mutable state and each shard's
// strike/probe sequence is as deterministic as the serial sweep's.
type shard struct {
	targets  []target
	breakers map[string]*breaker
	// lastDrift marks targets that drifted on the previous observation:
	// a target that drifts again immediately after a heal is flapping —
	// something else keeps rewriting it — and collects a strike.
	lastDrift map[string]bool
	rng       *rand.Rand
}

// Reconciler drives the drift-detection and self-healing loop. It is
// not safe for concurrent use; run one loop per Reconciler (RunOnce
// itself fans out over shards when WithSweepWorkers is set).
type Reconciler struct {
	m      *consistency.Model
	shards []*shard
	opt    options
	// rng drives the inter-sweep interval jitter, and doubles as shard
	// 0's probe-jitter source so the single-shard reconciler draws the
	// exact sequence the pre-sharding implementation did.
	rng    *rand.Rand
	emitMu sync.Mutex
	sweeps int
}

// New builds a reconciler for the fleet. Every target must name an
// agent instance the model generates a configuration for.
func New(m *consistency.Model, targets []configgen.Target, opts ...Option) (*Reconciler, error) {
	opt := options{
		interval:         30 * time.Second,
		jitterFrac:       0.1,
		breakerThreshold: 3,
		breakerCooldown:  2 * time.Minute,
		probeJitterFrac:  0.1,
		retries:          2,
		attemptTimeout:   500 * time.Millisecond,
		sweepWorkers:     1,
		now:              time.Now,
	}
	for _, fn := range opts {
		fn(&opt)
	}
	configs := configgen.Generate(m)
	r := &Reconciler{m: m, opt: opt}
	if opt.seeded {
		r.rng = rand.New(rand.NewSource(opt.seed))
	} else {
		opt.seed = rand.Int63()
		r.rng = rand.New(rand.NewSource(opt.seed))
	}

	// Identical desired configurations intern to one payload: at §1
	// scale most of a fleet's 100k targets share a handful of process
	// shapes, and holding one Config per shape instead of one per target
	// is much of what lets the reconciler's table fit in memory.
	pool := configgen.InternPool{}
	all := make([]target, 0, len(targets))
	for _, tgt := range targets {
		cfg := configs[tgt.InstanceID]
		if cfg == nil {
			return nil, fmt.Errorf("reconcile: no configuration generated for instance %q", tgt.InstanceID)
		}
		desired := pool.Intern(configgen.DesiredConfig(cfg, tgt))
		all = append(all, target{tgt: tgt, desired: desired, digest: desired.Digest()})
	}

	nshards := opt.sweepWorkers
	if nshards > len(all) {
		nshards = len(all)
	}
	if nshards < 1 {
		nshards = 1
	}
	for si := 0; si < nshards; si++ {
		lo := si * len(all) / nshards
		hi := (si + 1) * len(all) / nshards
		sd := &shard{
			targets:   all[lo:hi],
			breakers:  make(map[string]*breaker, hi-lo),
			lastDrift: make(map[string]bool, hi-lo),
			rng:       r.rng, // shard 0: the legacy serial stream
		}
		if si > 0 {
			sd.rng = rand.New(rand.NewSource(opt.seed + int64(si)))
		}
		for _, t := range sd.targets {
			sd.breakers[key(t.tgt)] = &breaker{}
		}
		r.shards = append(r.shards, sd)
	}
	return r, nil
}

func key(tgt configgen.Target) string { return tgt.InstanceID + "|" + tgt.Addr }

// emit streams an event to the configured sink, serialized across the
// sweep workers.
func (r *Reconciler) emit(kind EventKind, tgt configgen.Target, detail string) {
	if r.opt.onEvent != nil {
		r.emitMu.Lock()
		r.opt.onEvent(Event{Kind: kind, Instance: tgt.InstanceID, Addr: tgt.Addr, Detail: detail})
		r.emitMu.Unlock()
	}
}

// BreakerStates reports every target's current breaker position, keyed
// by "instanceID|addr". Not safe to call while a sweep is running.
func (r *Reconciler) BreakerStates() map[string]BreakerState {
	out := map[string]BreakerState{}
	for _, sd := range r.shards {
		for k, b := range sd.breakers {
			out[k] = b.state
		}
	}
	return out
}

// strike records a failure on b, drawing a fresh probe jitter for the
// open period when the strike opened (or re-opened) the breaker. The
// jitter comes from the shard's seeded rng, so tests with WithSeed get
// reproducible probe times.
func (r *Reconciler) strike(sd *shard, b *breaker, now time.Time) bool {
	opened := b.strike(now, r.opt.breakerThreshold)
	if opened {
		b.probeExtra = 0
		if span := int64(float64(r.opt.breakerCooldown) * r.opt.probeJitterFrac); span > 0 {
			b.probeExtra = time.Duration(sd.rng.Int63n(span))
		}
	}
	return opened
}

// observe fetches the target's live configuration and decides whether
// it matches the desired one. drifted is meaningful only when err is
// nil.
func (r *Reconciler) observe(ctx context.Context, t target) (drifted bool, detail string, err error) {
	live, err := configgen.FetchLiveContext(ctx, t.tgt.Addr, t.tgt.AdminCommunity, r.opt.attemptTimeout, r.opt.retries)
	if err != nil {
		return false, "", err
	}
	if d := live.Digest(); d != t.digest {
		return true, fmt.Sprintf("live digest %.12s.. != desired %.12s..", d, t.digest), nil
	}
	if r.opt.auditOn {
		rep, aerr := audit.AgentContext(ctx, r.m, t.tgt.InstanceID, t.tgt.Addr, r.opt.auditOpts)
		if aerr != nil {
			return false, "", fmt.Errorf("audit: %w", aerr)
		}
		if !rep.Adheres() {
			return true, fmt.Sprintf("digest matches but %d audit findings", len(rep.Findings)), nil
		}
	}
	return false, "", nil
}

// heal re-installs the desired configuration at the target.
func (r *Reconciler) heal(ctx context.Context, t target) error {
	client, err := snmp.Dial(t.tgt.Addr, t.tgt.AdminCommunity)
	if err != nil {
		return err
	}
	defer client.Close()
	client.SetRetries(r.opt.retries)
	client.SetTimeout(r.opt.attemptTimeout)
	return client.InstallConfigContext(ctx, t.desired)
}

// RunOnce performs a single reconciliation sweep over the fleet and
// returns its summary. With WithSweepWorkers(n>1) the shards sweep
// concurrently and their summaries merge. The context cancels the sweep
// mid-fleet; the partial summary is returned with the context's error.
func (r *Reconciler) RunOnce(ctx context.Context) (*Sweep, error) {
	reg := r.opt.metrics
	if reg == nil {
		reg = obs.Default
	}
	mon := reg.Enabled()
	r.sweeps++
	sw := &Sweep{Index: r.sweeps}
	sp := obs.StartSpan("reconcile.sweep")
	defer sp.End()

	var err error
	if len(r.shards) == 1 {
		err = r.sweepShard(ctx, r.shards[0], sw, reg, mon)
	} else {
		sws := make([]*Sweep, len(r.shards))
		errs := make([]error, len(r.shards))
		var wg sync.WaitGroup
		for si, sd := range r.shards {
			wg.Add(1)
			go func(si int, sd *shard) {
				defer wg.Done()
				sws[si] = &Sweep{}
				errs[si] = r.sweepShard(ctx, sd, sws[si], reg, mon)
			}(si, sd)
		}
		wg.Wait()
		for si, s := range sws {
			sw.Checked += s.Checked
			sw.InSync += s.InSync
			sw.Drifted += s.Drifted
			sw.Healed += s.Healed
			sw.HealFailures += s.HealFailures
			sw.CheckFailures += s.CheckFailures
			sw.Skipped += s.Skipped
			if errs[si] != nil && err == nil {
				err = errs[si]
			}
		}
	}
	if err != nil {
		return sw, err
	}

	for _, sd := range r.shards {
		for _, b := range sd.breakers {
			if b.state != BreakerClosed {
				sw.Open++
			}
		}
	}
	if mon {
		reg.Counter(MetricSweeps).Inc()
		reg.Gauge(MetricBreakerOpen).Set(int64(sw.Open))
	}
	if sp.Active() {
		sp.Label("checked", fmt.Sprint(sw.Checked))
		sp.Label("drifted", fmt.Sprint(sw.Drifted))
	}
	return sw, nil
}

// sweepShard reconciles one shard's targets into sw, touching only the
// shard's own breakers, drift history and rng.
func (r *Reconciler) sweepShard(ctx context.Context, sd *shard, sw *Sweep, reg *obs.Registry, mon bool) error {
	for _, t := range sd.targets {
		if err := ctx.Err(); err != nil {
			return err
		}
		k := key(t.tgt)
		b := sd.breakers[k]
		if !b.allow(r.opt.now(), r.opt.breakerCooldown) {
			sw.Skipped++
			continue
		}
		sw.Checked++

		drifted, detail, err := r.observe(ctx, t)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			sw.CheckFailures++
			if mon {
				reg.Counter(MetricCheckFailures).Inc()
			}
			r.emit(EventCheckFailed, t.tgt, err.Error())
			if r.strike(sd, b, r.opt.now()) {
				r.emit(EventQuarantined, t.tgt, fmt.Sprintf("check failures reached %d", r.opt.breakerThreshold))
			}
			continue
		}

		if !drifted {
			sw.InSync++
			sd.lastDrift[k] = false
			if b.success() {
				r.emit(EventRestored, t.tgt, "in sync after quarantine")
			}
			continue
		}

		// Drift: heal by re-installing the desired configuration.
		sw.Drifted++
		if mon {
			reg.Counter(MetricDrift).Inc()
		}
		r.emit(EventDrift, t.tgt, detail)
		// A target that drifts again right after being reconciled is
		// flapping — something else keeps rewriting it — and collects a
		// strike even though each individual heal succeeds. Only closed
		// breakers take flap strikes: in half-open the single probe's own
		// outcome decides.
		flapping := sd.lastDrift[k] && b.state == BreakerClosed
		sd.lastDrift[k] = true

		if err := r.heal(ctx, t); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			sw.HealFailures++
			if mon {
				reg.Counter(MetricHealFailures).Inc()
			}
			r.emit(EventHealFailed, t.tgt, err.Error())
			if r.strike(sd, b, r.opt.now()) {
				r.emit(EventQuarantined, t.tgt, "heal failed")
			}
			continue
		}
		sw.Healed++
		if mon {
			reg.Counter(MetricHeals).Inc()
		}
		r.emit(EventHealed, t.tgt, detail)
		if flapping {
			if r.strike(sd, b, r.opt.now()) {
				r.emit(EventQuarantined, t.tgt, "flapping: drifted again immediately after a heal")
			}
		} else if b.success() {
			r.emit(EventRestored, t.tgt, "healed after quarantine")
		}
	}
	return nil
}

// Run sweeps the fleet until ctx is done, pausing interval ± jitter
// between sweeps, and returns ctx.Err(). Sweep summaries stream through
// fn (nil is allowed).
func (r *Reconciler) Run(ctx context.Context, fn func(*Sweep)) error {
	for {
		sw, err := r.RunOnce(ctx)
		if fn != nil && sw != nil {
			fn(sw)
		}
		if err != nil {
			return err
		}
		d := r.opt.interval
		if r.opt.jitterFrac > 0 {
			span := int64(float64(d) * r.opt.jitterFrac)
			if span > 0 {
				d += time.Duration(r.rng.Int63n(2*span+1) - span)
			}
		}
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}

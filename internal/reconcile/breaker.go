package reconcile

import "time"

// BreakerState is a quarantine circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: the target is reconciled normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the target is quarantined — no probes, no heals —
	// until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; the next sweep sends one
	// probe. Success closes the breaker, any failure re-opens it.
	BreakerHalfOpen
)

// String returns the lowercase state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is one target's quarantine state. A target that keeps failing
// (unreachable, heals that do not stick, flapping between configs) is
// quarantined so the reconciler stops hammering it and the fleet sweep
// stays cheap; after the cooldown a single half-open probe decides
// whether it rejoins.
type breaker struct {
	state    BreakerState
	failures int
	openedAt time.Time
}

// allow reports whether the target may be probed this sweep, promoting
// Open to HalfOpen once the cooldown has elapsed.
func (b *breaker) allow(now time.Time, cooldown time.Duration) bool {
	switch b.state {
	case BreakerOpen:
		if now.Sub(b.openedAt) >= cooldown {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	default:
		return true
	}
}

// strike records a failure; it returns true when the strike opened the
// breaker. A half-open probe that fails re-opens immediately; a closed
// breaker opens at the threshold of consecutive failures.
func (b *breaker) strike(now time.Time, threshold int) bool {
	if b.state == BreakerHalfOpen {
		b.state = BreakerOpen
		b.openedAt = now
		b.failures = 0
		return true
	}
	b.failures++
	if b.failures >= threshold {
		b.state = BreakerOpen
		b.openedAt = now
		b.failures = 0
		return true
	}
	return false
}

// success records a healthy observation, closing the breaker; it
// returns true when the state actually changed (a quarantined target
// rejoined).
func (b *breaker) success() bool {
	changed := b.state != BreakerClosed
	b.state = BreakerClosed
	b.failures = 0
	return changed
}

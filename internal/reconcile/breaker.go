package reconcile

import "time"

// BreakerState is a quarantine circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: the target is reconciled normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the target is quarantined — no probes, no heals —
	// until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; the next sweep sends one
	// probe. Success closes the breaker, any failure re-opens it.
	BreakerHalfOpen
)

// String returns the lowercase state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is one target's quarantine state. A target that keeps failing
// (unreachable, heals that do not stick, flapping between configs) is
// quarantined so the reconciler stops hammering it and the fleet sweep
// stays cheap; after the cooldown a single half-open probe decides
// whether it rejoins.
type breaker struct {
	state    BreakerState
	failures int
	openedAt time.Time
	// probeExtra is this open period's jitter: the half-open probe waits
	// cooldown+probeExtra. Drawn fresh (from the reconciler's seeded rng)
	// each time the breaker opens, so a flap storm that quarantines a
	// whole wave of targets at once does not release a thundering herd of
	// probes at the exact cooldown boundary.
	probeExtra time.Duration
}

// allow reports whether the target may be probed this sweep, promoting
// Open to HalfOpen once the cooldown (plus this open period's probe
// jitter) has elapsed.
func (b *breaker) allow(now time.Time, cooldown time.Duration) bool {
	switch b.state {
	case BreakerOpen:
		if now.Sub(b.openedAt) >= cooldown+b.probeExtra {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	default:
		return true
	}
}

// strike records a failure; it returns true when the strike opened the
// breaker. A half-open probe that fails re-opens immediately; a closed
// breaker opens at the threshold of consecutive failures.
func (b *breaker) strike(now time.Time, threshold int) bool {
	if b.state == BreakerHalfOpen {
		b.state = BreakerOpen
		b.openedAt = now
		b.failures = 0
		return true
	}
	b.failures++
	if b.failures >= threshold {
		b.state = BreakerOpen
		b.openedAt = now
		b.failures = 0
		return true
	}
	return false
}

// success records a healthy observation, closing the breaker; it
// returns true when the state actually changed (a quarantined target
// rejoined).
func (b *breaker) success() bool {
	changed := b.state != BreakerClosed
	b.state = BreakerClosed
	b.failures = 0
	return changed
}

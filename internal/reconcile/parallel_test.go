package reconcile

import (
	"context"
	"testing"
	"time"

	"nmsl/internal/netsim"
	"nmsl/internal/obs"
)

// TestParallelSweepMatchesSerial: a sharded sweep over a drifted fleet
// reaches exactly the serial sweep's outcome — same partition of the
// targets into drifted/healed, same convergence, same in-sync steady
// state — with the work spread over four workers.
func TestParallelSweepMatchesSerial(t *testing.T) {
	m, err := netsim.Model(netsim.Params{Domains: 2, SystemsPerDomain: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}

	run := func(workers int) (*Sweep, *Sweep) {
		targets, _ := startFleet(t, m, emptyConfig)
		r, err := New(m, targets,
			WithSeed(4),
			WithSweepWorkers(workers),
			WithRetries(1),
			WithAttemptTimeout(300*time.Millisecond),
			WithMetrics(obs.Disabled),
		)
		if err != nil {
			t.Fatal(err)
		}
		first, err := r.RunOnce(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		second, err := r.RunOnce(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return first, second
	}

	sFirst, sSecond := run(1)
	pFirst, pSecond := run(4)

	if pFirst.Checked != sFirst.Checked || pFirst.Drifted != sFirst.Drifted || pFirst.Healed != sFirst.Healed {
		t.Errorf("parallel first sweep %+v != serial %+v", pFirst, sFirst)
	}
	if sFirst.Drifted == 0 || sFirst.Healed != sFirst.Drifted {
		t.Fatalf("fixture did not drift-and-heal: %+v", sFirst)
	}
	if pSecond.InSync != sSecond.InSync || pSecond.InSync != pSecond.Checked {
		t.Errorf("parallel fleet not in sync after heal: %+v (serial %+v)", pSecond, sSecond)
	}
}

// TestParallelSweepQuarantinesPerShard: breakers are shard-owned; a
// parallel sweep over a fleet of unreachable agents still opens every
// breaker and later skips every target, with the merged counters adding
// up across shards.
func TestParallelSweepQuarantinesPerShard(t *testing.T) {
	m, err := netsim.Model(netsim.Params{Domains: 2, SystemsPerDomain: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	targets, agents := startFleet(t, m, emptyConfig)
	for _, a := range agents {
		a.Close() // every probe now times out
	}
	r, err := New(m, targets,
		WithSeed(5),
		WithSweepWorkers(3),
		WithRetries(0),
		WithAttemptTimeout(30*time.Millisecond),
		WithBreaker(2, time.Hour),
		WithProbeJitter(0),
		WithMetrics(obs.Disabled),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		sw, err := r.RunOnce(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if sw.CheckFailures != len(targets) {
			t.Fatalf("sweep %d: %d check failures, want %d", i+1, sw.CheckFailures, len(targets))
		}
	}
	for k, st := range r.BreakerStates() {
		if st != BreakerOpen {
			t.Errorf("breaker %s = %v after threshold failures, want open", k, st)
		}
	}
	sw, err := r.RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Skipped != len(targets) || sw.Checked != 0 {
		t.Errorf("quarantined sweep: %+v, want all %d skipped", sw, len(targets))
	}
	if sw.Open != len(targets) {
		t.Errorf("Open = %d, want %d", sw.Open, len(targets))
	}
}

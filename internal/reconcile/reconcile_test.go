package reconcile

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"nmsl/internal/configgen"
	"nmsl/internal/consistency"
	"nmsl/internal/netsim"
	"nmsl/internal/obs"
	"nmsl/internal/snmp"
)

// startFleet starts one live agent per generated config, initially
// running cfg (built per instance by initial), and returns the targets
// plus the agents keyed by instance ID.
func startFleet(t *testing.T, m *consistency.Model, initial func(id string) *snmp.Config) ([]configgen.Target, map[string]*snmp.Agent) {
	t.Helper()
	configs := configgen.Generate(m)
	var targets []configgen.Target
	agents := make(map[string]*snmp.Agent, len(configs))
	for id := range configs {
		store := snmp.NewStore()
		snmp.PopulateFromMIB(store, m.Spec.MIB, "mgmt.mib")
		agent := snmp.NewAgent(store, initial(id))
		addr, err := agent.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { agent.Close() })
		agents[id] = agent
		targets = append(targets, configgen.Target{InstanceID: id, Addr: addr.String(), AdminCommunity: "adm"})
	}
	return targets, agents
}

func emptyConfig(string) *snmp.Config {
	return &snmp.Config{
		Communities:    map[string]*snmp.CommunityConfig{},
		AdminCommunity: "adm",
	}
}

// collectEvents returns an event sink safe for the sweep goroutine and
// a getter for the events so far.
func collectEvents() (func(Event), func(kind EventKind) int) {
	var mu sync.Mutex
	var events []Event
	sink := func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		events = append(events, e)
	}
	count := func(kind EventKind) int {
		mu.Lock()
		defer mu.Unlock()
		n := 0
		for _, e := range events {
			if e.Kind == kind {
				n++
			}
		}
		return n
	}
	return sink, count
}

// TestReconcilerHealsDrift: a fleet whose agents run an empty (drifted)
// configuration converges to the model in one sweep and stays in sync.
func TestReconcilerHealsDrift(t *testing.T) {
	m, err := netsim.Model(netsim.Params{Domains: 1, SystemsPerDomain: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	targets, agents := startFleet(t, m, emptyConfig)

	sink, count := collectEvents()
	reg := obs.NewRegistry()
	r, err := New(m, targets,
		WithRetries(1),
		WithAttemptTimeout(200*time.Millisecond),
		WithMetrics(reg),
		WithOnEvent(sink),
	)
	if err != nil {
		t.Fatal(err)
	}

	sw, err := r.RunOnce(context.Background())
	if err != nil {
		t.Fatalf("sweep 1: %v", err)
	}
	if sw.Checked != len(targets) || sw.Drifted != len(targets) || sw.Healed != len(targets) {
		t.Fatalf("sweep 1: %s", sw)
	}
	if count(EventDrift) != len(targets) || count(EventHealed) != len(targets) {
		t.Fatalf("events: %d drift, %d healed, want %d each", count(EventDrift), count(EventHealed), len(targets))
	}

	// Every agent now runs exactly the desired configuration, applied
	// exactly once.
	configs := configgen.Generate(m)
	for _, tgt := range targets {
		want := configgen.DesiredConfig(configs[tgt.InstanceID], tgt).Digest()
		if got := agents[tgt.InstanceID].ConfigSnapshot().Digest(); got != want {
			t.Errorf("%s: live digest %.12s != desired %.12s", tgt.InstanceID, got, want)
		}
		if loads := agents[tgt.InstanceID].Stats().ConfigLoads; loads != 1 {
			t.Errorf("%s: %d config loads, want 1", tgt.InstanceID, loads)
		}
	}

	sw2, err := r.RunOnce(context.Background())
	if err != nil {
		t.Fatalf("sweep 2: %v", err)
	}
	if sw2.InSync != len(targets) || sw2.Drifted != 0 {
		t.Fatalf("sweep 2 not converged: %s", sw2)
	}

	s := reg.Snapshot()
	if s.Value(MetricSweeps) != 2 || s.Value(MetricDrift) != int64(len(targets)) || s.Value(MetricHeals) != int64(len(targets)) {
		t.Errorf("metrics: sweeps=%d drift=%d heals=%d", s.Value(MetricSweeps), s.Value(MetricDrift), s.Value(MetricHeals))
	}
}

// TestReconcilerQuarantineAndRestore drives the full breaker lifecycle:
// an unreachable target collects strikes until quarantined, a half-open
// probe after the cooldown re-opens while it stays broken, and once the
// agent is fixed the next half-open probe heals it and closes the
// breaker.
func TestReconcilerQuarantineAndRestore(t *testing.T) {
	m, err := netsim.Model(netsim.Params{Domains: 1, SystemsPerDomain: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The agent honors a different admin community, so the reconciler's
	// probes are silently dropped: the target is "down" without any
	// port juggling, and fixable by applying a config that honors "adm".
	locked := func(string) *snmp.Config {
		return &snmp.Config{
			Communities:    map[string]*snmp.CommunityConfig{},
			AdminCommunity: "locked",
		}
	}
	targets, agents := startFleet(t, m, locked)
	tgt := targets[0]
	agent := agents[tgt.InstanceID]

	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	sink, count := collectEvents()
	r, err := New(m, targets,
		WithRetries(0),
		WithAttemptTimeout(50*time.Millisecond),
		WithBreaker(2, time.Minute),
		WithProbeJitter(0), // exact-boundary probes: this test advances exactly past the cooldown
		WithClock(clock),
		WithMetrics(obs.Disabled),
		WithOnEvent(sink),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	k := tgt.InstanceID + "|" + tgt.Addr

	// Strikes 1 and 2: the second opens the breaker.
	for i := 0; i < 2; i++ {
		sw, err := r.RunOnce(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if sw.CheckFailures != 1 {
			t.Fatalf("sweep %d: %s", i+1, sw)
		}
	}
	if got := r.BreakerStates()[k]; got != BreakerOpen {
		t.Fatalf("breaker %s after 2 strikes, want open", got)
	}
	if count(EventQuarantined) != 1 {
		t.Fatalf("quarantined events %d, want 1", count(EventQuarantined))
	}

	// Within the cooldown the target is skipped entirely.
	sw, err := r.RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Skipped != 1 || sw.Checked != 0 {
		t.Fatalf("quarantined sweep: %s", sw)
	}

	// Past the cooldown one half-open probe goes out; still broken, so
	// the breaker re-opens on the spot (no threshold in half-open).
	now = now.Add(61 * time.Second)
	sw, err = r.RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Checked != 1 || sw.CheckFailures != 1 {
		t.Fatalf("half-open probe sweep: %s", sw)
	}
	if got := r.BreakerStates()[k]; got != BreakerOpen {
		t.Fatalf("breaker %s after failed half-open probe, want open", got)
	}
	if count(EventQuarantined) != 2 {
		t.Fatalf("quarantined events %d, want 2", count(EventQuarantined))
	}

	// Fix the agent (it now honors the admin community, but with a
	// drifted config) and let the next half-open probe heal it.
	agent.ApplyConfig(emptyConfig(""))
	now = now.Add(61 * time.Second)
	sw, err = r.RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Drifted != 1 || sw.Healed != 1 {
		t.Fatalf("restore sweep: %s", sw)
	}
	if got := r.BreakerStates()[k]; got != BreakerClosed {
		t.Fatalf("breaker %s after successful heal, want closed", got)
	}
	if count(EventRestored) != 1 {
		t.Fatalf("restored events %d, want 1", count(EventRestored))
	}

	// And the fleet is genuinely converged now.
	sw, err = r.RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sw.InSync != 1 || sw.Open != 0 {
		t.Fatalf("final sweep: %s", sw)
	}
}

// TestReconcilerFlapQuarantine: a target that drifts again immediately
// after every successful heal is flapping and gets quarantined even
// though each individual operation succeeds.
func TestReconcilerFlapQuarantine(t *testing.T) {
	m, err := netsim.Model(netsim.Params{Domains: 1, SystemsPerDomain: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	targets, agents := startFleet(t, m, emptyConfig)
	agent := agents[targets[0].InstanceID]

	sink, count := collectEvents()
	r, err := New(m, targets,
		WithRetries(1),
		WithAttemptTimeout(200*time.Millisecond),
		WithBreaker(2, time.Minute),
		WithMetrics(obs.Disabled),
		WithOnEvent(sink),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Sweep 1 heals the initial drift; no flap strike (first drift).
	if sw, err := r.RunOnce(ctx); err != nil || sw.Healed != 1 {
		t.Fatalf("sweep 1: sw=%v err=%v", sw, err)
	}
	// An outside actor rewrites the config after every heal: two more
	// drift-heal-drift cycles are two flap strikes, opening the breaker.
	for i := 0; i < 2; i++ {
		agent.ApplyConfig(emptyConfig(""))
		sw, err := r.RunOnce(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if sw.Healed != 1 {
			t.Fatalf("flap sweep %d: %s", i+1, sw)
		}
	}
	states := r.BreakerStates()
	if got := states[targets[0].InstanceID+"|"+targets[0].Addr]; got != BreakerOpen {
		t.Fatalf("breaker %s after flapping, want open", got)
	}
	if count(EventQuarantined) != 1 {
		t.Fatalf("quarantined events %d, want 1", count(EventQuarantined))
	}
}

// TestReconcilerRunLoopCancel: Run returns promptly with the context's
// error and sweeps keep streaming until then.
func TestReconcilerRunLoopCancel(t *testing.T) {
	m, err := netsim.Model(netsim.Params{Domains: 1, SystemsPerDomain: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	targets, _ := startFleet(t, m, emptyConfig)
	r, err := New(m, targets,
		WithInterval(5*time.Millisecond),
		WithJitter(0.5),
		WithSeed(42),
		WithRetries(0),
		WithAttemptTimeout(100*time.Millisecond),
		WithMetrics(obs.Disabled),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	sweeps := 0
	done := make(chan error, 1)
	go func() {
		done <- r.Run(ctx, func(*Sweep) {
			mu.Lock()
			sweeps++
			if sweeps >= 3 {
				cancel()
			}
			mu.Unlock()
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
	mu.Lock()
	defer mu.Unlock()
	if sweeps < 3 {
		t.Fatalf("only %d sweeps before cancel", sweeps)
	}
}

// TestReconcilerRejectsUnknownInstance: every target must have a
// generated configuration.
func TestReconcilerRejectsUnknownInstance(t *testing.T) {
	m, err := netsim.Model(netsim.Params{Domains: 1, SystemsPerDomain: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(m, []configgen.Target{{InstanceID: "ghost@nowhere#0", Addr: "127.0.0.1:1", AdminCommunity: "adm"}})
	if err == nil {
		t.Fatal("New accepted a target with no generated configuration")
	}
}

// TestHalfOpenProbesJitteredAgainstThunderingHerd: a flap storm
// quarantines a whole wave of targets in the same sweep; without probe
// jitter every breaker would release its half-open probe at the exact
// cooldown boundary — a thundering herd against agents that just came
// back. With jitter the probes spread over [cooldown, 1.5·cooldown).
// Driven entirely by a deterministic clock and seed: no real sleeping,
// reproducible probe times.
func TestHalfOpenProbesJitteredAgainstThunderingHerd(t *testing.T) {
	m, err := netsim.Model(netsim.Params{Domains: 4, SystemsPerDomain: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	locked := func(string) *snmp.Config {
		return &snmp.Config{
			Communities:    map[string]*snmp.CommunityConfig{},
			AdminCommunity: "locked",
		}
	}
	targets, _ := startFleet(t, m, locked)
	if len(targets) != 8 {
		t.Fatalf("fleet size %d, want 8", len(targets))
	}

	now := time.Unix(5000, 0)
	r, err := New(m, targets,
		WithRetries(0),
		WithAttemptTimeout(50*time.Millisecond),
		WithBreaker(1, time.Minute), // one strike quarantines: the storm opens all 8 at once
		WithProbeJitter(0.5),
		WithSeed(7),
		WithClock(func() time.Time { return now }),
		WithMetrics(obs.Disabled),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// The storm: every target unreachable in the same sweep, every
	// breaker opened at the same instant.
	sw, err := r.RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sw.CheckFailures != 8 || sw.Open != 8 {
		t.Fatalf("storm sweep: %s, want 8 failures and 8 open breakers", sw)
	}

	// Walk the window [cooldown, 1.5·cooldown] in 5s sweeps, counting
	// how many half-open probes each sweep releases. (A probed target is
	// still broken, so it re-opens with a fresh jitter; its next probe
	// lands beyond the window and cannot double-count.)
	probesPerSweep := []int{}
	total, maxPerSweep, busySweeps := 0, 0, 0
	for offset := 60 * time.Second; offset <= 90*time.Second; offset += 5 * time.Second {
		now = time.Unix(5000, 0).Add(offset)
		sw, err := r.RunOnce(ctx)
		if err != nil {
			t.Fatal(err)
		}
		probesPerSweep = append(probesPerSweep, sw.Checked)
		total += sw.Checked
		if sw.Checked > maxPerSweep {
			maxPerSweep = sw.Checked
		}
		if sw.Checked > 0 {
			busySweeps++
		}
	}
	t.Logf("probes per 5s sweep across the jitter window: %v", probesPerSweep)
	if total != 8 {
		t.Fatalf("probed %d targets across the window, want all 8", total)
	}
	if maxPerSweep == 8 {
		t.Fatal("all 8 half-open probes fired in one sweep: thundering herd")
	}
	if busySweeps < 2 {
		t.Fatalf("probes concentrated in %d sweep(s), want spread across >= 2", busySweeps)
	}
}

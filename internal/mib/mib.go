// Package mib implements the Management Information Base name tree that
// NMSL specifications reference (paper sections 3.1, 4.1.2).
//
// The MIB is the collection of data objects that network-management
// queries read and write. NMSL names MIB objects with dotted paths rooted
// in the standards' registration tree, e.g. mgmt.mib.ip.ipAddrTable
// (Figure 4.4). Three properties of the tree matter to NMSL:
//
//   - name resolution: a dotted name denotes a node (and its OID);
//   - subtree containment: supporting or exporting "mgmt.mib" covers
//     every object below it ("by supporting mgmt.mib, the agent supports
//     the full IETF MIB");
//   - access modes: a node may carry an access mode that is inherited by
//     contained objects unless they override it (Figure 4.2).
//
// The package ships the IETF MIB-I layout of RFC 1066 (the MIB the paper's
// examples use) and supports registering additional subtrees, which the
// compiler does for objects introduced by type specifications.
package mib

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Access is a data access mode (paper Figure 4.1: AType).
type Access int

const (
	// AccessUnspecified means the node inherits its containing node's
	// access mode (Figure 4.2's IpAddrEntry).
	AccessUnspecified Access = iota
	// AccessNone forbids all access.
	AccessNone
	// AccessReadOnly allows read access only.
	AccessReadOnly
	// AccessWriteOnly allows write access only.
	AccessWriteOnly
	// AccessAny allows read and write access.
	AccessAny
)

// ParseAccess maps the NMSL access keywords to Access values.
func ParseAccess(word string) (Access, error) {
	switch word {
	case "Any":
		return AccessAny, nil
	case "ReadOnly":
		return AccessReadOnly, nil
	case "WriteOnly":
		return AccessWriteOnly, nil
	case "None":
		return AccessNone, nil
	}
	return AccessUnspecified, fmt.Errorf("unknown access mode %q (want Any, ReadOnly, WriteOnly or None)", word)
}

// String returns the NMSL keyword for the access mode.
func (a Access) String() string {
	switch a {
	case AccessUnspecified:
		return "Unspecified"
	case AccessNone:
		return "None"
	case AccessReadOnly:
		return "ReadOnly"
	case AccessWriteOnly:
		return "WriteOnly"
	case AccessAny:
		return "Any"
	}
	return fmt.Sprintf("Access(%d)", int(a))
}

// Allows reports whether a permission granted at mode a covers a reference
// made at mode need. Any covers everything except that nothing covers a
// need of Any but Any itself; None covers nothing and needs nothing.
func (a Access) Allows(need Access) bool {
	if need == AccessNone || need == AccessUnspecified {
		return true
	}
	if a == AccessAny {
		return true
	}
	return a == need
}

// Covers reports whether mode a grants at least everything mode b grants:
// the partial order of the access lattice None < {ReadOnly, WriteOnly} < Any,
// with Unspecified treated as None (an unspecified grant grants nothing by
// itself). ReadOnly and WriteOnly are incomparable.
func (a Access) Covers(b Access) bool {
	if b == AccessNone || b == AccessUnspecified {
		return true
	}
	if a == AccessAny {
		return true
	}
	return a == b
}

// Join returns the least upper bound of two access modes: the weakest mode
// granting everything either mode grants. ReadOnly ∨ WriteOnly = Any.
func (a Access) Join(b Access) Access {
	switch {
	case a.Covers(b):
		return a
	case b.Covers(a):
		return b
	default:
		return AccessAny
	}
}

// Meet returns the greatest lower bound of two access modes: the strongest
// mode granted by both. ReadOnly ∧ WriteOnly = None.
func (a Access) Meet(b Access) Access {
	switch {
	case a.Covers(b):
		return b
	case b.Covers(a):
		return a
	default:
		return AccessNone
	}
}

// OID is an object identifier: a sequence of non-negative sub-identifiers.
type OID []int

// String renders the OID in dotted numeric form, e.g. "1.3.6.1.2.1.4".
func (o OID) String() string {
	parts := make([]string, len(o))
	for i, n := range o {
		parts[i] = strconv.Itoa(n)
	}
	return strings.Join(parts, ".")
}

// HasPrefix reports whether p is a prefix of (or equal to) o.
func (o OID) HasPrefix(p OID) bool {
	if len(p) > len(o) {
		return false
	}
	for i := range p {
		if o[i] != p[i] {
			return false
		}
	}
	return true
}

// Compare orders OIDs lexicographically (the SNMP GetNext order).
func (o OID) Compare(other OID) int {
	for i := 0; i < len(o) && i < len(other); i++ {
		switch {
		case o[i] < other[i]:
			return -1
		case o[i] > other[i]:
			return 1
		}
	}
	switch {
	case len(o) < len(other):
		return -1
	case len(o) > len(other):
		return 1
	}
	return 0
}

// Clone returns a copy of the OID.
func (o OID) Clone() OID {
	c := make(OID, len(o))
	copy(c, o)
	return c
}

// Node is one node in the MIB tree.
type Node struct {
	// Name is the node's label, e.g. "ipAddrTable".
	Name string
	// Arc is the node's sub-identifier under its parent.
	Arc int
	// Access is the node's declared access mode; AccessUnspecified
	// inherits from the parent.
	Access Access
	// TypeName names the NMSL/ASN.1 type of the object, when known.
	TypeName string

	parent   *Node
	children map[string]*Node
	// path is the dotted name from the root, materialized at
	// registration (a node's parent never changes after creation). The
	// consistency checker's warm path hashes paths per reference, so
	// Path must not rebuild the string per call.
	path string
	// rootOID, when set on a root node, replaces the single-arc OID so a
	// subtree can live at its real registration-tree position (e.g. mgmt
	// at iso.org.dod.internet.mgmt = 1.3.6.1.2) without dragging the full
	// dotted name through every specification.
	rootOID OID
}

// Path returns the dotted name from the root, e.g. "mgmt.mib.ip". The
// recursive reconstruction only runs for Node literals built outside
// Register (tests); registered nodes return the memoized path.
func (n *Node) Path() string {
	if n.path != "" {
		return n.path
	}
	if n.parent == nil {
		return n.Name
	}
	return n.parent.Path() + "." + n.Name
}

// OID returns the node's object identifier.
func (n *Node) OID() OID {
	if n.parent == nil {
		if n.rootOID != nil {
			return n.rootOID.Clone()
		}
		return OID{n.Arc}
	}
	return append(n.parent.OID(), n.Arc)
}

// EffectiveAccess resolves inherited access: the nearest ancestor (or the
// node itself) with a specified mode; AccessAny if none is specified
// anywhere, since an unconstrained MIB object is unrestricted until a
// specification says otherwise.
func (n *Node) EffectiveAccess() Access {
	for cur := n; cur != nil; cur = cur.parent {
		if cur.Access != AccessUnspecified {
			return cur.Access
		}
	}
	return AccessAny
}

// Parent returns the containing node, or nil at a root.
func (n *Node) Parent() *Node { return n.parent }

// Children returns the node's children sorted by arc.
func (n *Node) Children() []*Node {
	out := make([]*Node, 0, len(n.children))
	for _, c := range n.children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Arc < out[j].Arc })
	return out
}

// Contains reports whether other lies in the subtree rooted at n
// (inclusive). This is the MIB-side containment relation used by the
// consistency model (Figure 4.9).
func (n *Node) Contains(other *Node) bool {
	for cur := other; cur != nil; cur = cur.parent {
		if cur == n {
			return true
		}
	}
	return false
}

// Tree is a MIB name tree with a set of roots.
type Tree struct {
	roots map[string]*Node
	byOID map[string]*Node
}

// NewEmpty returns a Tree with no nodes.
func NewEmpty() *Tree {
	return &Tree{roots: map[string]*Node{}, byOID: map[string]*Node{}}
}

// RegisterRoot creates (or finds) a root node with an explicit OID
// position in the global registration tree. It must be called before any
// Register that would create the root implicitly.
func (t *Tree) RegisterRoot(name string, oid OID) (*Node, error) {
	if name == "" || len(oid) == 0 {
		return nil, fmt.Errorf("mib: root needs a name and an OID")
	}
	if existing, ok := t.roots[name]; ok {
		if existing.OID().Compare(oid) != 0 {
			return nil, fmt.Errorf("mib: root %s already registered at %s", name, existing.OID())
		}
		return existing, nil
	}
	root := &Node{Name: name, path: name, Arc: oid[len(oid)-1], rootOID: oid.Clone(), children: map[string]*Node{}}
	t.roots[name] = root
	t.byOID[root.OID().String()] = root
	return root, nil
}

// Register adds (or finds) the node at the dotted path, creating
// intermediate nodes as needed. Arcs for created nodes are assigned
// sequentially after the current maximum, unless the node is predefined.
// It returns the node at the full path.
func (t *Tree) Register(path string) (*Node, error) {
	if path == "" {
		return nil, fmt.Errorf("empty MIB path")
	}
	parts := strings.Split(path, ".")
	root, ok := t.roots[parts[0]]
	if !ok {
		root = &Node{Name: parts[0], path: parts[0], Arc: 1 + len(t.roots), children: map[string]*Node{}}
		t.roots[parts[0]] = root
		t.byOID[root.OID().String()] = root
	}
	cur := root
	for _, part := range parts[1:] {
		next, ok := cur.children[part]
		if !ok {
			arc := 1
			for _, sib := range cur.children {
				if sib.Arc >= arc {
					arc = sib.Arc + 1
				}
			}
			next = &Node{Name: part, path: cur.Path() + "." + part, Arc: arc, parent: cur, children: map[string]*Node{}}
			cur.children[part] = next
			t.byOID[next.OID().String()] = next
		}
		cur = next
	}
	return cur, nil
}

// Lookup resolves a dotted name to a node, or nil if absent.
func (t *Tree) Lookup(path string) *Node {
	parts := strings.Split(path, ".")
	cur, ok := t.roots[parts[0]]
	if !ok {
		return nil
	}
	for _, part := range parts[1:] {
		cur = cur.children[part]
		if cur == nil {
			return nil
		}
	}
	return cur
}

// LookupOID resolves an OID to a node, or nil.
func (t *Tree) LookupOID(oid OID) *Node { return t.byOID[oid.String()] }

// LookupSuffix resolves a name that may omit leading components: it first
// tries the full path, then searches for a unique node whose path ends in
// the given dotted suffix. NMSL examples write both "mgmt.mib.ip" and bare
// type names like "IpAddrEntry"; suffix lookup supports the latter.
func (t *Tree) LookupSuffix(path string) *Node {
	if n := t.Lookup(path); n != nil {
		return n
	}
	suffix := "." + path
	var found *Node
	for oidKey := range t.byOID {
		n := t.byOID[oidKey]
		p := n.Path()
		if strings.HasSuffix(p, suffix) {
			if found != nil {
				return nil // ambiguous
			}
			found = n
		}
	}
	return found
}

// Walk visits every node under (and including) the node at path in
// depth-first arc order. Walking a missing path is a no-op.
func (t *Tree) Walk(path string, visit func(*Node)) {
	n := t.Lookup(path)
	if n == nil {
		return
	}
	var rec func(*Node)
	rec = func(cur *Node) {
		visit(cur)
		for _, c := range cur.Children() {
			rec(c)
		}
	}
	rec(n)
}

// Roots returns the root nodes sorted by name.
func (t *Tree) Roots() []*Node {
	out := make([]*Node, 0, len(t.roots))
	for _, r := range t.roots {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the total number of nodes.
func (t *Tree) Len() int { return len(t.byOID) }

// standardLayout describes the IETF MIB-I of RFC 1066 to the depth the
// paper's examples reference, rooted at mgmt.mib
// (iso.org.dod.internet.mgmt.mib = 1.3.6.1.2.1). Group order follows the
// RFC: system(1), interfaces(2), at(3), ip(4), icmp(5), tcp(6), udp(7),
// egp(8).
var standardLayout = []string{
	"mgmt.mib.system.sysDescr",
	"mgmt.mib.system.sysObjectID",
	"mgmt.mib.system.sysUpTime",
	"mgmt.mib.interfaces.ifNumber",
	"mgmt.mib.interfaces.ifTable.ifEntry.ifIndex",
	"mgmt.mib.interfaces.ifTable.ifEntry.ifDescr",
	"mgmt.mib.interfaces.ifTable.ifEntry.ifType",
	"mgmt.mib.interfaces.ifTable.ifEntry.ifSpeed",
	"mgmt.mib.interfaces.ifTable.ifEntry.ifOperStatus",
	"mgmt.mib.at.atTable.atEntry.atIfIndex",
	"mgmt.mib.at.atTable.atEntry.atPhysAddress",
	"mgmt.mib.at.atTable.atEntry.atNetAddress",
	"mgmt.mib.ip.ipForwarding",
	"mgmt.mib.ip.ipDefaultTTL",
	"mgmt.mib.ip.ipInReceives",
	"mgmt.mib.ip.ipAddrTable.IpAddrEntry.ipAdEntAddr",
	"mgmt.mib.ip.ipAddrTable.IpAddrEntry.ipAdEntIfIndex",
	"mgmt.mib.ip.ipAddrTable.IpAddrEntry.ipAdEntNetMask",
	"mgmt.mib.ip.ipAddrTable.IpAddrEntry.ipAdEntBcastAddr",
	"mgmt.mib.ip.ipRoutingTable.ipRouteEntry.ipRouteDest",
	"mgmt.mib.ip.ipRoutingTable.ipRouteEntry.ipRouteNextHop",
	"mgmt.mib.icmp.icmpInMsgs",
	"mgmt.mib.icmp.icmpInErrors",
	"mgmt.mib.icmp.icmpInEchos",
	"mgmt.mib.tcp.tcpRtoAlgorithm",
	"mgmt.mib.tcp.tcpMaxConn",
	"mgmt.mib.tcp.tcpConnTable.tcpConnEntry.tcpConnState",
	"mgmt.mib.tcp.tcpConnTable.tcpConnEntry.tcpConnLocalAddress",
	"mgmt.mib.udp.udpInDatagrams",
	"mgmt.mib.udp.udpNoPorts",
	"mgmt.mib.egp.egpInMsgs",
	"mgmt.mib.egp.egpInErrors",
	"mgmt.mib.egp.egpNeighTable.egpNeighEntry.egpNeighState",
	"mgmt.mib.egp.egpNeighTable.egpNeighEntry.egpNeighAddr",
	// Additional MIB-I variables (arcs append after the entries above, so
	// earlier assignments stay stable).
	"mgmt.mib.system.sysContact",
	"mgmt.mib.system.sysName",
	"mgmt.mib.system.sysLocation",
	"mgmt.mib.interfaces.ifTable.ifEntry.ifMtu",
	"mgmt.mib.interfaces.ifTable.ifEntry.ifPhysAddress",
	"mgmt.mib.interfaces.ifTable.ifEntry.ifAdminStatus",
	"mgmt.mib.interfaces.ifTable.ifEntry.ifInOctets",
	"mgmt.mib.interfaces.ifTable.ifEntry.ifInUcastPkts",
	"mgmt.mib.interfaces.ifTable.ifEntry.ifInErrors",
	"mgmt.mib.interfaces.ifTable.ifEntry.ifOutOctets",
	"mgmt.mib.interfaces.ifTable.ifEntry.ifOutUcastPkts",
	"mgmt.mib.interfaces.ifTable.ifEntry.ifOutErrors",
	"mgmt.mib.ip.ipInHdrErrors",
	"mgmt.mib.ip.ipInAddrErrors",
	"mgmt.mib.ip.ipForwDatagrams",
	"mgmt.mib.ip.ipInDiscards",
	"mgmt.mib.ip.ipInDelivers",
	"mgmt.mib.ip.ipOutRequests",
	"mgmt.mib.ip.ipOutDiscards",
	"mgmt.mib.ip.ipReasmTimeout",
	"mgmt.mib.ip.ipRoutingTable.ipRouteEntry.ipRouteIfIndex",
	"mgmt.mib.ip.ipRoutingTable.ipRouteEntry.ipRouteMetric1",
	"mgmt.mib.ip.ipRoutingTable.ipRouteEntry.ipRouteType",
	"mgmt.mib.ip.ipRoutingTable.ipRouteEntry.ipRouteProto",
	"mgmt.mib.icmp.icmpOutMsgs",
	"mgmt.mib.icmp.icmpOutErrors",
	"mgmt.mib.icmp.icmpInDestUnreachs",
	"mgmt.mib.icmp.icmpOutEchoReps",
	"mgmt.mib.tcp.tcpActiveOpens",
	"mgmt.mib.tcp.tcpPassiveOpens",
	"mgmt.mib.tcp.tcpAttemptFails",
	"mgmt.mib.tcp.tcpEstabResets",
	"mgmt.mib.tcp.tcpCurrEstab",
	"mgmt.mib.tcp.tcpInSegs",
	"mgmt.mib.tcp.tcpOutSegs",
	"mgmt.mib.tcp.tcpRetransSegs",
	"mgmt.mib.tcp.tcpConnTable.tcpConnEntry.tcpConnLocalPort",
	"mgmt.mib.tcp.tcpConnTable.tcpConnEntry.tcpConnRemAddress",
	"mgmt.mib.tcp.tcpConnTable.tcpConnEntry.tcpConnRemPort",
	"mgmt.mib.udp.udpInErrors",
	"mgmt.mib.udp.udpOutDatagrams",
	"mgmt.mib.egp.egpOutMsgs",
	"mgmt.mib.egp.egpOutErrors",
	"mgmt.mib.egp.egpNeighTable.egpNeighEntry.egpNeighAs",
}

// Groups lists the eight MIB-I object groups in RFC order.
var Groups = []string{"system", "interfaces", "at", "ip", "icmp", "tcp", "udp", "egp"}

// MgmtOID is the registration-tree position of the mgmt subtree:
// iso.org.dod.internet.mgmt = 1.3.6.1.2 (RFC 1065). Object identifiers of
// standard-tree nodes are therefore genuine MIB-I OIDs: mgmt.mib.system
// is 1.3.6.1.2.1.1, and group arcs follow the RFC order.
var MgmtOID = OID{1, 3, 6, 1, 2}

// NewStandard returns a Tree pre-populated with the IETF MIB-I subset the
// paper's examples use, rooted at the real mgmt OID.
func NewStandard() *Tree {
	t := NewEmpty()
	if _, err := t.RegisterRoot("mgmt", MgmtOID); err != nil {
		panic("mib: standard root: " + err.Error())
	}
	for _, p := range standardLayout {
		if _, err := t.Register(p); err != nil {
			panic("mib: standard layout: " + err.Error())
		}
	}
	return t
}

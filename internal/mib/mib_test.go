package mib

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseAccess(t *testing.T) {
	cases := map[string]Access{
		"Any":       AccessAny,
		"ReadOnly":  AccessReadOnly,
		"WriteOnly": AccessWriteOnly,
		"None":      AccessNone,
	}
	for word, want := range cases {
		got, err := ParseAccess(word)
		if err != nil || got != want {
			t.Errorf("ParseAccess(%q) = %v, %v", word, got, err)
		}
	}
	if _, err := ParseAccess("readonly"); err == nil {
		t.Error("lower-case access keyword accepted")
	}
}

func TestAccessAllows(t *testing.T) {
	cases := []struct {
		perm, need Access
		want       bool
	}{
		{AccessAny, AccessReadOnly, true},
		{AccessAny, AccessWriteOnly, true},
		{AccessAny, AccessAny, true},
		{AccessReadOnly, AccessReadOnly, true},
		{AccessReadOnly, AccessWriteOnly, false},
		{AccessReadOnly, AccessAny, false},
		{AccessWriteOnly, AccessWriteOnly, true},
		{AccessWriteOnly, AccessReadOnly, false},
		{AccessNone, AccessReadOnly, false},
		{AccessNone, AccessNone, true},
		{AccessReadOnly, AccessNone, true},
	}
	for _, c := range cases {
		if got := c.perm.Allows(c.need); got != c.want {
			t.Errorf("%v.Allows(%v) = %v, want %v", c.perm, c.need, got, c.want)
		}
	}
}

func TestStandardLookup(t *testing.T) {
	tr := NewStandard()
	n := tr.Lookup("mgmt.mib.ip.ipAddrTable.IpAddrEntry.ipAdEntAddr")
	if n == nil {
		t.Fatal("ipAdEntAddr not found")
	}
	if n.Name != "ipAdEntAddr" {
		t.Errorf("name %q", n.Name)
	}
	if p := n.Path(); p != "mgmt.mib.ip.ipAddrTable.IpAddrEntry.ipAdEntAddr" {
		t.Errorf("path %q", p)
	}
	if tr.Lookup("mgmt.mib.nosuch") != nil {
		t.Error("bogus lookup succeeded")
	}
	if tr.Lookup("bogusroot") != nil {
		t.Error("bogus root lookup succeeded")
	}
}

func TestStandardGroups(t *testing.T) {
	tr := NewStandard()
	mibNode := tr.Lookup("mgmt.mib")
	if mibNode == nil {
		t.Fatal("mgmt.mib missing")
	}
	kids := mibNode.Children()
	if len(kids) != len(Groups) {
		t.Fatalf("want %d groups, got %d", len(Groups), len(kids))
	}
	// RFC arc order: system=1 ... egp=8
	for i, g := range Groups {
		if kids[i].Name != g {
			t.Errorf("group %d = %q, want %q", i, kids[i].Name, g)
		}
		if kids[i].Arc != i+1 {
			t.Errorf("group %q arc %d, want %d", g, kids[i].Arc, i+1)
		}
	}
}

func TestContainment(t *testing.T) {
	tr := NewStandard()
	mib := tr.Lookup("mgmt.mib")
	ip := tr.Lookup("mgmt.mib.ip")
	addr := tr.Lookup("mgmt.mib.ip.ipAddrTable.IpAddrEntry.ipAdEntAddr")
	tcp := tr.Lookup("mgmt.mib.tcp")
	if !mib.Contains(addr) || !ip.Contains(addr) || !mib.Contains(mib) {
		t.Error("containment should hold")
	}
	if tcp.Contains(addr) || addr.Contains(ip) {
		t.Error("containment should not hold")
	}
}

func TestOIDPrefixAndCompare(t *testing.T) {
	a := OID{1, 3, 6, 1}
	b := OID{1, 3, 6, 1, 2}
	if !b.HasPrefix(a) || a.HasPrefix(b) {
		t.Error("HasPrefix wrong")
	}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a.Clone()) != 0 {
		t.Error("Compare wrong")
	}
	if (OID{1, 4}).Compare(OID{1, 3, 9}) != 1 {
		t.Error("Compare elementwise wrong")
	}
}

func TestOIDString(t *testing.T) {
	if s := (OID{1, 3, 6, 1, 2, 1}).String(); s != "1.3.6.1.2.1" {
		t.Errorf("got %q", s)
	}
}

func TestAccessInheritance(t *testing.T) {
	tr := NewStandard()
	table := tr.Lookup("mgmt.mib.ip.ipAddrTable")
	table.Access = AccessReadOnly
	entry := tr.Lookup("mgmt.mib.ip.ipAddrTable.IpAddrEntry")
	if got := entry.EffectiveAccess(); got != AccessReadOnly {
		t.Errorf("inherited access %v", got)
	}
	// Override on the child wins.
	entry.Access = AccessAny
	addr := tr.Lookup("mgmt.mib.ip.ipAddrTable.IpAddrEntry.ipAdEntAddr")
	if got := addr.EffectiveAccess(); got != AccessAny {
		t.Errorf("overridden access %v", got)
	}
	// Unconstrained tree defaults to Any.
	if got := tr.Lookup("mgmt.mib.tcp").EffectiveAccess(); got != AccessAny {
		t.Errorf("default access %v", got)
	}
}

func TestRegisterCreatesDistinctArcs(t *testing.T) {
	tr := NewEmpty()
	if _, err := tr.Register("a.x"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Register("a.y"); err != nil {
		t.Fatal(err)
	}
	x := tr.Lookup("a.x")
	y := tr.Lookup("a.y")
	if x.Arc == y.Arc {
		t.Errorf("siblings share arc %d", x.Arc)
	}
}

func TestRegisterIdempotent(t *testing.T) {
	tr := NewEmpty()
	n1, _ := tr.Register("a.b.c")
	n2, _ := tr.Register("a.b.c")
	if n1 != n2 {
		t.Error("re-registration created a new node")
	}
	if tr.Len() != 3 {
		t.Errorf("len %d", tr.Len())
	}
}

func TestRegisterEmpty(t *testing.T) {
	tr := NewEmpty()
	if _, err := tr.Register(""); err == nil {
		t.Error("empty path accepted")
	}
}

func TestLookupOID(t *testing.T) {
	tr := NewStandard()
	n := tr.Lookup("mgmt.mib.ip")
	if got := tr.LookupOID(n.OID()); got != n {
		t.Errorf("LookupOID returned %v", got)
	}
	if tr.LookupOID(OID{9, 9, 9}) != nil {
		t.Error("bogus OID resolved")
	}
}

func TestLookupSuffix(t *testing.T) {
	tr := NewStandard()
	n := tr.LookupSuffix("IpAddrEntry")
	if n == nil || n.Path() != "mgmt.mib.ip.ipAddrTable.IpAddrEntry" {
		t.Fatalf("suffix lookup: %v", n)
	}
	// Ambiguous suffixes resolve to nil.
	tr2 := NewEmpty()
	tr2.Register("a.leaf")
	tr2.Register("b.leaf")
	if tr2.LookupSuffix("leaf") != nil {
		t.Error("ambiguous suffix resolved")
	}
	// Full paths still win.
	if tr.LookupSuffix("mgmt.mib.ip") == nil {
		t.Error("full path failed")
	}
}

func TestWalkOrder(t *testing.T) {
	tr := NewStandard()
	var names []string
	tr.Walk("mgmt.mib.udp", func(n *Node) { names = append(names, n.Name) })
	want := []string{"udp", "udpInDatagrams", "udpNoPorts", "udpInErrors", "udpOutDatagrams"}
	if len(names) != len(want) {
		t.Fatalf("walk: %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("walk[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	// Walking a missing path is a no-op.
	tr.Walk("mgmt.nothing", func(n *Node) { t.Error("visited", n.Name) })
}

func TestRoots(t *testing.T) {
	tr := NewEmpty()
	tr.Register("zeta.x")
	tr.Register("alpha.y")
	roots := tr.Roots()
	if len(roots) != 2 || roots[0].Name != "alpha" || roots[1].Name != "zeta" {
		t.Errorf("roots: %v", roots)
	}
}

// Property: for any registered set of paths, every path resolves and its
// Path() round-trips; OIDs are unique.
func TestRegisterLookupProperty(t *testing.T) {
	f := func(raw []string) bool {
		tr := NewEmpty()
		var paths []string
		for _, r := range raw {
			// build a clean dotted path from the raw string
			var segs []string
			for _, c := range strings.Split(r, "") {
				if c >= "a" && c <= "e" {
					segs = append(segs, c)
				}
				if len(segs) == 4 {
					break
				}
			}
			if len(segs) == 0 {
				continue
			}
			p := strings.Join(segs, ".")
			paths = append(paths, p)
			if _, err := tr.Register(p); err != nil {
				return false
			}
		}
		seen := map[string]bool{}
		var oids []string
		for _, p := range paths {
			n := tr.Lookup(p)
			if n == nil || n.Path() != p {
				return false
			}
			key := n.OID().String()
			if !seen[key] {
				seen[key] = true
				oids = append(oids, key)
			}
		}
		sort.Strings(oids)
		for i := 1; i < len(oids); i++ {
			if oids[i] == oids[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: containment agrees with OID prefixing for standard nodes.
func TestContainsMatchesOIDPrefix(t *testing.T) {
	tr := NewStandard()
	var nodes []*Node
	tr.Walk("mgmt", func(n *Node) { nodes = append(nodes, n) })
	for _, a := range nodes {
		for _, b := range nodes {
			if got, want := a.Contains(b), b.OID().HasPrefix(a.OID()); got != want {
				t.Fatalf("Contains(%s,%s)=%v, prefix=%v", a.Path(), b.Path(), got, want)
			}
		}
	}
}

func TestStandardRealOIDs(t *testing.T) {
	tr := NewStandard()
	cases := map[string]string{
		"mgmt":                        "1.3.6.1.2",
		"mgmt.mib":                    "1.3.6.1.2.1",
		"mgmt.mib.system":             "1.3.6.1.2.1.1",
		"mgmt.mib.system.sysDescr":    "1.3.6.1.2.1.1.1",
		"mgmt.mib.ip":                 "1.3.6.1.2.1.4",
		"mgmt.mib.udp.udpInDatagrams": "1.3.6.1.2.1.7.1",
	}
	for path, want := range cases {
		n := tr.Lookup(path)
		if n == nil {
			t.Fatalf("missing %s", path)
		}
		if got := n.OID().String(); got != want {
			t.Errorf("%s OID = %s, want %s", path, got, want)
		}
		if back := tr.LookupOID(n.OID()); back != n {
			t.Errorf("%s not resolvable by OID", path)
		}
	}
}

func TestRegisterRootConflicts(t *testing.T) {
	tr := NewEmpty()
	if _, err := tr.RegisterRoot("", nil); err == nil {
		t.Error("empty root accepted")
	}
	if _, err := tr.RegisterRoot("a", OID{1, 2}); err != nil {
		t.Fatal(err)
	}
	// idempotent with the same OID
	if _, err := tr.RegisterRoot("a", OID{1, 2}); err != nil {
		t.Fatal(err)
	}
	// conflicting re-registration rejected
	if _, err := tr.RegisterRoot("a", OID{9, 9}); err == nil {
		t.Error("conflicting root accepted")
	}
}

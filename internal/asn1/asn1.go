// Package asn1 models the subset of ISO Abstract Syntax Notation One used
// by NMSL type specifications (paper section 4.1.2).
//
// NMSL bases its type specifications on ASN.1 because it is "general,
// machine architecture independent, and well known" and is used by both
// the IETF MIB and the OSI MIB. The subset implemented here covers the
// constructs those MIBs need: the universal primitives, the RFC 1065
// application-wide types (IpAddress, Counter, Gauge, TimeTicks, Opaque),
// SEQUENCE and SEQUENCE OF composition, and references to named types.
// ASN.1 macro descriptions are deliberately not supported: the NMSL
// extension mechanism fulfills that role (section 4.1.2).
package asn1

import (
	"fmt"
	"strings"

	"nmsl/internal/parser"
	"nmsl/internal/token"
)

// Kind discriminates the Type variants.
type Kind int

const (
	// KindPrimitive is a built-in ASN.1 or RFC 1065 application type.
	KindPrimitive Kind = iota
	// KindRef is a reference to a named type defined elsewhere.
	KindRef
	// KindSequence is SEQUENCE { field Type, ... }.
	KindSequence
	// KindSequenceOf is SEQUENCE OF Type.
	KindSequenceOf
)

// Type is a parsed ASN.1 type body.
type Type struct {
	Kind Kind
	// Name is the primitive name (KindPrimitive) or referenced type name
	// (KindRef).
	Name string
	// Elem is the element type for KindSequenceOf.
	Elem *Type
	// Fields are the members for KindSequence.
	Fields []Field
	Pos    token.Pos
}

// Field is one member of a SEQUENCE.
type Field struct {
	Name string
	Type *Type
	Pos  token.Pos
}

// String renders the type in ASN.1-like notation.
func (t *Type) String() string {
	switch t.Kind {
	case KindPrimitive, KindRef:
		return t.Name
	case KindSequenceOf:
		return "SEQUENCE OF " + t.Elem.String()
	case KindSequence:
		parts := make([]string, len(t.Fields))
		for i, f := range t.Fields {
			parts[i] = f.Name + " " + f.Type.String()
		}
		return "SEQUENCE { " + strings.Join(parts, ", ") + " }"
	}
	return fmt.Sprintf("Type(kind=%d)", int(t.Kind))
}

// Refs appends the names of all type references reachable from t to dst
// and returns it. It is used by semantic checking to verify that every
// referenced type is declared.
func (t *Type) Refs(dst []string) []string {
	switch t.Kind {
	case KindRef:
		dst = append(dst, t.Name)
	case KindSequenceOf:
		dst = t.Elem.Refs(dst)
	case KindSequence:
		for _, f := range t.Fields {
			dst = f.Type.Refs(dst)
		}
	}
	return dst
}

// FieldNamed returns the sequence field with the given name, or nil.
func (t *Type) FieldNamed(name string) *Field {
	if t.Kind != KindSequence {
		return nil
	}
	for i := range t.Fields {
		if t.Fields[i].Name == name {
			return &t.Fields[i]
		}
	}
	return nil
}

// primitives is the supported built-in type set: ASN.1 universal types
// plus the application-wide types of RFC 1065 used throughout the IETF
// MIB.
var primitives = map[string]bool{
	"INTEGER":          true,
	"NULL":             true,
	"BOOLEAN":          true,
	"OCTET":            false, // part of "OCTET STRING"
	"OCTETSTRING":      true,  // canonical spelling after joining
	"OBJECTIDENTIFIER": true,
	"IpAddress":        true,
	"NetworkAddress":   true,
	"Counter":          true,
	"Gauge":            true,
	"TimeTicks":        true,
	"Opaque":           true,
	"DisplayString":    true,
	"PhysAddress":      true,
}

// IsPrimitive reports whether name is a supported built-in type
// (canonical spellings: OCTETSTRING, OBJECTIDENTIFIER for the two-word
// universal types).
func IsPrimitive(name string) bool { return primitives[name] }

// Error is an ASN.1 parse error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ParseItems parses a type body from the generic clause items produced by
// the pass-1 parser. The items are the full first clause of a type
// specification, e.g.
//
//	[Word(SEQUENCE) Word(of) Word(IpAddrEntry)]
//	[Word(SEQUENCE) Group{Word(ipAdEntAddr) Word(IpAddress) Op(,) ...}]
//	[Word(INTEGER)]
func ParseItems(items []parser.Item) (*Type, error) {
	p := &itemParser{items: items}
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.items) {
		return nil, &Error{Pos: p.items[p.pos].Pos, Msg: fmt.Sprintf("unexpected %s after type body", p.items[p.pos].String())}
	}
	return t, nil
}

type itemParser struct {
	items []parser.Item
	pos   int
}

func (p *itemParser) cur() (parser.Item, bool) {
	if p.pos >= len(p.items) {
		return parser.Item{}, false
	}
	return p.items[p.pos], true
}

func (p *itemParser) parseType() (*Type, error) {
	it, ok := p.cur()
	if !ok {
		return nil, &Error{Msg: "empty type body"}
	}
	if it.Kind != parser.Word {
		return nil, &Error{Pos: it.Pos, Msg: fmt.Sprintf("expected type name, found %s", it.String())}
	}
	p.pos++
	switch it.Text {
	case "SEQUENCE":
		return p.parseSequence(it.Pos)
	case "OCTET":
		return p.parseTwoWord(it.Pos, "STRING", "OCTETSTRING")
	case "OBJECT":
		return p.parseTwoWord(it.Pos, "IDENTIFIER", "OBJECTIDENTIFIER")
	}
	if IsPrimitive(it.Text) {
		return &Type{Kind: KindPrimitive, Name: it.Text, Pos: it.Pos}, nil
	}
	return &Type{Kind: KindRef, Name: it.Text, Pos: it.Pos}, nil
}

func (p *itemParser) parseTwoWord(pos token.Pos, second, canonical string) (*Type, error) {
	it, ok := p.cur()
	if !ok || !it.IsWord(second) {
		return nil, &Error{Pos: pos, Msg: fmt.Sprintf("expected %q after first word of two-word type", second)}
	}
	p.pos++
	return &Type{Kind: KindPrimitive, Name: canonical, Pos: pos}, nil
}

func (p *itemParser) parseSequence(pos token.Pos) (*Type, error) {
	it, ok := p.cur()
	if !ok {
		return nil, &Error{Pos: pos, Msg: "SEQUENCE must be followed by \"of\" or a member list"}
	}
	// SEQUENCE of X  (the paper writes lower-case "of" in Figure 4.2;
	// standard ASN.1 upper-case OF is accepted too)
	if it.IsWord("of") || it.IsWord("OF") {
		p.pos++
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		return &Type{Kind: KindSequenceOf, Elem: elem, Pos: pos}, nil
	}
	if it.Kind != parser.Group {
		return nil, &Error{Pos: it.Pos, Msg: fmt.Sprintf("expected \"of\" or member group after SEQUENCE, found %s", it.String())}
	}
	p.pos++
	seq := &Type{Kind: KindSequence, Pos: pos}
	sub := &itemParser{items: it.Items}
	for {
		nameIt, ok := sub.cur()
		if !ok {
			break
		}
		if nameIt.Kind == parser.Op && nameIt.Text == "," {
			sub.pos++
			continue
		}
		if nameIt.Kind != parser.Word {
			return nil, &Error{Pos: nameIt.Pos, Msg: fmt.Sprintf("expected member name, found %s", nameIt.String())}
		}
		sub.pos++
		ft, err := sub.parseType()
		if err != nil {
			return nil, err
		}
		seq.Fields = append(seq.Fields, Field{Name: nameIt.Text, Type: ft, Pos: nameIt.Pos})
	}
	if len(seq.Fields) == 0 {
		return nil, &Error{Pos: pos, Msg: "SEQUENCE has no members"}
	}
	return seq, nil
}

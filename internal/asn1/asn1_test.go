package asn1

import (
	"strings"
	"testing"

	"nmsl/internal/paperspec"
	"nmsl/internal/parser"
)

// typeBody parses src as a full NMSL file and returns the first clause of
// decl i as ASN.1 items.
func typeBody(t *testing.T, src string, i int) []parser.Item {
	t.Helper()
	f, err := parser.Parse("test", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[i].Clauses[0].Items
}

func TestSequenceOf(t *testing.T) {
	items := typeBody(t, paperspec.Figure42, 0)
	typ, err := ParseItems(items)
	if err != nil {
		t.Fatal(err)
	}
	if typ.Kind != KindSequenceOf {
		t.Fatalf("kind %v", typ.Kind)
	}
	if typ.Elem.Kind != KindRef || typ.Elem.Name != "IpAddrEntry" {
		t.Fatalf("elem %+v", typ.Elem)
	}
	if got := typ.String(); got != "SEQUENCE OF IpAddrEntry" {
		t.Errorf("String() = %q", got)
	}
}

func TestFigure42Sequence(t *testing.T) {
	items := typeBody(t, paperspec.Figure42, 1)
	typ, err := ParseItems(items)
	if err != nil {
		t.Fatal(err)
	}
	if typ.Kind != KindSequence || len(typ.Fields) != 4 {
		t.Fatalf("type %v", typ)
	}
	wantFields := []struct{ name, typ string }{
		{"ipAdEntAddr", "IpAddress"},
		{"ipAdEntIfIndex", "INTEGER"},
		{"ipAdEntNetMask", "IpAddress"},
		{"ipAdEntBcastAddr", "INTEGER"},
	}
	for i, w := range wantFields {
		f := typ.Fields[i]
		if f.Name != w.name || f.Type.Name != w.typ || f.Type.Kind != KindPrimitive {
			t.Errorf("field %d: %s %s", i, f.Name, f.Type)
		}
	}
	if f := typ.FieldNamed("ipAdEntNetMask"); f == nil || f.Type.Name != "IpAddress" {
		t.Errorf("FieldNamed: %+v", f)
	}
	if f := typ.FieldNamed("nope"); f != nil {
		t.Errorf("FieldNamed(nope): %+v", f)
	}
}

func parseSrc(t *testing.T, body string) (*Type, error) {
	t.Helper()
	src := "type t ::= " + body + "; end type t."
	f, err := parser.Parse("test", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return ParseItems(f.Decls[0].Clauses[0].Items)
}

func TestPrimitives(t *testing.T) {
	for _, name := range []string{"INTEGER", "IpAddress", "Counter", "Gauge", "TimeTicks", "Opaque", "NULL", "DisplayString"} {
		typ, err := parseSrc(t, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if typ.Kind != KindPrimitive || typ.Name != name {
			t.Errorf("%s parsed as %+v", name, typ)
		}
	}
}

func TestTwoWordTypes(t *testing.T) {
	typ, err := parseSrc(t, "OCTET STRING")
	if err != nil {
		t.Fatal(err)
	}
	if typ.Kind != KindPrimitive || typ.Name != "OCTETSTRING" {
		t.Fatalf("%+v", typ)
	}
	typ, err = parseSrc(t, "OBJECT IDENTIFIER")
	if err != nil {
		t.Fatal(err)
	}
	if typ.Name != "OBJECTIDENTIFIER" {
		t.Fatalf("%+v", typ)
	}
}

func TestTwoWordTypeMissingSecond(t *testing.T) {
	_, err := parseSrc(t, "OCTET")
	if err == nil || !strings.Contains(err.Error(), "STRING") {
		t.Fatalf("err = %v", err)
	}
}

func TestNestedSequence(t *testing.T) {
	typ, err := parseSrc(t, "SEQUENCE { a SEQUENCE { b INTEGER, c Counter }, d IpAddress }")
	if err != nil {
		t.Fatal(err)
	}
	if len(typ.Fields) != 2 {
		t.Fatalf("%v", typ)
	}
	inner := typ.Fields[0].Type
	if inner.Kind != KindSequence || len(inner.Fields) != 2 {
		t.Fatalf("inner %v", inner)
	}
}

func TestSequenceOfSequenceOf(t *testing.T) {
	typ, err := parseSrc(t, "SEQUENCE of SEQUENCE of INTEGER")
	if err != nil {
		t.Fatal(err)
	}
	if typ.Kind != KindSequenceOf || typ.Elem.Kind != KindSequenceOf || typ.Elem.Elem.Name != "INTEGER" {
		t.Fatalf("%v", typ)
	}
}

func TestRefs(t *testing.T) {
	typ, err := parseSrc(t, "SEQUENCE { a Foo, b SEQUENCE of Bar, c INTEGER }")
	if err != nil {
		t.Fatal(err)
	}
	refs := typ.Refs(nil)
	if len(refs) != 2 || refs[0] != "Foo" || refs[1] != "Bar" {
		t.Fatalf("refs %v", refs)
	}
}

func TestEmptySequenceRejected(t *testing.T) {
	_, err := parseSrc(t, "SEQUENCE { }")
	if err == nil {
		t.Fatal("want error for empty sequence")
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	_, err := parseSrc(t, "INTEGER INTEGER")
	if err == nil || !strings.Contains(err.Error(), "unexpected") {
		t.Fatalf("err = %v", err)
	}
}

func TestEmptyBodyRejected(t *testing.T) {
	_, err := ParseItems(nil)
	if err == nil {
		t.Fatal("want error")
	}
}

func TestUnknownNameIsRef(t *testing.T) {
	typ, err := parseSrc(t, "SomeLocalType")
	if err != nil {
		t.Fatal(err)
	}
	if typ.Kind != KindRef || typ.Name != "SomeLocalType" {
		t.Fatalf("%+v", typ)
	}
}

func TestStringRoundTripSequence(t *testing.T) {
	typ, err := parseSrc(t, "SEQUENCE { a INTEGER, b IpAddress }")
	if err != nil {
		t.Fatal(err)
	}
	want := "SEQUENCE { a INTEGER, b IpAddress }"
	if got := typ.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// Package parser implements the first pass of the NMSL compiler: the
// generalized grammar of Figure 6.1.
//
// Per section 6.1 of the paper, the first pass parses every specification
// against one generic shape — a header ("decltype declname [params] ::="),
// a body of keyword-led clauses terminated by ";", and a trailer
// ("end decltype declname.") — and performs no semantic analysis. "Any
// group of tokens will be accepted by the parsing pass, provided that the
// group of tokens matches the basic format of the NMSL grammar. The task
// of differentiating between the specifications and clauses is left for
// the second pass." This is what makes the extension mechanism (section
// 6.3) a pure table-prepend: new clauses parse without grammar changes.
//
// The parse tree is deliberately generic: a Decl holds flat Clauses, each
// clause a flat list of Items. The semantic pass (internal/sema) splits
// clause items into subclauses using the (extensible) keyword tables.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"nmsl/internal/lexer"
	"nmsl/internal/token"
)

// ItemKind classifies a clause item (the "token" and "list" productions of
// Figure 6.1).
type ItemKind int

const (
	// Word is an identifier or dotted name (mgmt.mib.ip.ipAddrTable).
	Word ItemKind = iota
	// Str is a quoted string literal.
	Str
	// Int is an unsigned integer literal.
	Int
	// Float is a floating point or dotted version literal (4.0.1).
	Float
	// Op is a special token: one of < <= > >= := : ,
	Op
	// Star is the late-binding placeholder "*" (Figure 4.8).
	Star
	// Group is a parenthesized or braced item sequence, used by ASN.1
	// SEQUENCE bodies and by process instantiation parameter lists.
	Group
)

func (k ItemKind) String() string {
	switch k {
	case Word:
		return "Word"
	case Str:
		return "Str"
	case Int:
		return "Int"
	case Float:
		return "Float"
	case Op:
		return "Op"
	case Star:
		return "Star"
	case Group:
		return "Group"
	}
	return fmt.Sprintf("ItemKind(%d)", int(k))
}

// Item is one element of a clause: a word, literal, operator or group.
type Item struct {
	Kind ItemKind
	// Text holds the word, string, operator or literal source text.
	Text string
	// IntVal is set for Int items.
	IntVal int64
	// FloatVal is set for Float items when the text is a plain float
	// (it is 0 for dotted version literals such as "4.0.1").
	FloatVal float64
	// Items holds the contents of a Group. Delim is '(' or '{'.
	Items []Item
	Delim byte
	Pos   token.Pos
}

// String renders the item approximately as it appeared in source.
func (it Item) String() string {
	switch it.Kind {
	case Str:
		return strconv.Quote(it.Text)
	case Group:
		parts := make([]string, len(it.Items))
		for i, sub := range it.Items {
			parts[i] = sub.String()
		}
		open, close := "(", ")"
		if it.Delim == '{' {
			open, close = "{", "}"
		}
		return open + strings.Join(parts, " ") + close
	default:
		return it.Text
	}
}

// IsWord reports whether the item is a Word with the given text.
func (it Item) IsWord(text string) bool { return it.Kind == Word && it.Text == text }

// Clause is one ";"-terminated clause: a flat item sequence whose
// decomposition into keyword-led subclauses happens in pass 2.
type Clause struct {
	Items []Item
	Pos   token.Pos
}

// Keyword returns the leading word of the clause, or "" if the clause does
// not start with a word.
func (c *Clause) Keyword() string {
	if len(c.Items) > 0 && c.Items[0].Kind == Word {
		return c.Items[0].Text
	}
	return ""
}

// String renders the clause approximately as it appeared in source.
func (c *Clause) String() string {
	parts := make([]string, len(c.Items))
	for i, it := range c.Items {
		parts[i] = it.String()
	}
	return strings.Join(parts, " ") + ";"
}

// Param is one formal parameter of a declaration header, e.g.
// "SysAddr: Process". Untyped parameters (instantiation arguments) leave
// Type empty and put the value in Name/Value.
type Param struct {
	// Name is the parameter name for formal parameters.
	Name string
	// Type is the declared type name for formal parameters.
	Type string
	// Value holds the raw item for non-formal (value) parameters.
	Value *Item
	Pos   token.Pos
}

// Decl is one generic declaration:
//
//	decltype declname [ "(" params ")" ] "::=" clauses "end" decltype declname "."
type Decl struct {
	// Type is the declaration type keyword: type, process, system, domain,
	// or any extension-defined declaration type.
	Type string
	// Name is the declaration name; quoted names keep their unquoted text
	// and set Quoted.
	Name   string
	Quoted bool
	Params []Param
	// Clauses is the declaration body in source order.
	Clauses []*Clause
	Pos     token.Pos
	End     token.Pos
}

// File is a parsed specification source file.
type File struct {
	Name  string
	Decls []*Decl
}

// Error is a syntax error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList is a collection of syntax errors; it implements error.
type ErrorList []*Error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
}

// Err returns the list as an error, or nil when empty.
func (l ErrorList) Err() error {
	if len(l) == 0 {
		return nil
	}
	return l
}

type parser struct {
	toks []token.Token
	pos  int
	errs ErrorList
}

// Parse parses src as an NMSL specification. name is used in diagnostics
// only. It returns the File together with any syntax errors; the File
// contains every declaration that could be recovered.
func Parse(name, src string) (*File, error) {
	lx := lexer.New(src)
	toks := lx.All()
	p := &parser{toks: toks}
	for _, le := range lx.Errors() {
		p.errs = append(p.errs, &Error{Pos: le.Pos, Msg: le.Msg})
	}
	file := &File{Name: name}
	for p.cur().Kind != token.EOF {
		d := p.parseDecl()
		if d != nil {
			file.Decls = append(file.Decls, d)
		} else {
			p.recoverToNextDecl()
		}
	}
	return file, p.errs.Err()
}

func (p *parser) cur() token.Token { return p.toks[p.pos] }
func (p *parser) peek() token.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) advance() token.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errorf(pos token.Pos, format string, args ...any) {
	p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// recoverToNextDecl skips tokens until just after a PERIOD that plausibly
// terminates a declaration, so that one malformed declaration does not
// cascade.
func (p *parser) recoverToNextDecl() {
	for {
		t := p.advance()
		if t.Kind == token.EOF {
			return
		}
		if t.Kind == token.PERIOD {
			return
		}
	}
}

// parseName parses a declaration or member name: a STRING, or an IDENT
// optionally extended by dotted segments (cs.wisc.edu appears unquoted as
// a domain member in Figure 4.8).
func (p *parser) parseName() (name string, quoted bool, ok bool) {
	t := p.cur()
	switch t.Kind {
	case token.STRING:
		p.advance()
		return t.Text, true, true
	case token.IDENT:
		p.advance()
		parts := []string{t.Text}
		for p.cur().Kind == token.PERIOD && p.peek().Kind == token.IDENT {
			p.advance()
			parts = append(parts, p.advance().Text)
		}
		return strings.Join(parts, "."), false, true
	default:
		p.errorf(t.Pos, "expected declaration name, found %s", t)
		return "", false, false
	}
}

// parseTrailerName parses the declaration name in a trailer. Unlike
// parseName it must not treat the declaration-terminating "." as a
// dotted-name connector, so for unquoted names it consumes at most as many
// dotted segments as the header name has.
func (p *parser) parseTrailerName(header string) (string, bool) {
	t := p.cur()
	switch t.Kind {
	case token.STRING:
		p.advance()
		return t.Text, true
	case token.IDENT:
		p.advance()
		parts := []string{t.Text}
		want := strings.Count(header, ".") + 1
		for len(parts) < want && p.cur().Kind == token.PERIOD && p.peek().Kind == token.IDENT {
			p.advance()
			parts = append(parts, p.advance().Text)
		}
		return strings.Join(parts, "."), true
	default:
		p.errorf(t.Pos, "expected declaration name after \"end %s\", found %s", p.toks[p.pos-1].Text, t)
		return "", false
	}
}

func (p *parser) parseDecl() *Decl {
	start := p.cur()
	if start.Kind != token.IDENT {
		p.errorf(start.Pos, "expected declaration type keyword, found %s", start)
		return nil
	}
	d := &Decl{Type: start.Text, Pos: start.Pos}
	p.advance()

	name, quoted, ok := p.parseName()
	if !ok {
		return nil
	}
	d.Name, d.Quoted = name, quoted

	if p.cur().Kind == token.LPAREN {
		d.Params = p.parseParams()
	}

	if p.cur().Kind != token.DEFINE {
		p.errorf(p.cur().Pos, "expected \"::=\" after declaration header, found %s", p.cur())
		return nil
	}
	p.advance()

	// Clause body: clauses until the word "end" appears at clause-start
	// position.
	for {
		t := p.cur()
		if t.Kind == token.EOF {
			p.errorf(t.Pos, "unexpected end of input in %s %s (missing \"end %s %s.\")", d.Type, d.Name, d.Type, d.Name)
			return d
		}
		if t.Is("end") {
			break
		}
		c := p.parseClause()
		if c != nil {
			d.Clauses = append(d.Clauses, c)
		}
	}

	// Trailer: end decltype declname "."
	endTok := p.advance() // "end"
	d.End = endTok.Pos
	tt := p.cur()
	if tt.Kind != token.IDENT {
		p.errorf(tt.Pos, "expected declaration type after \"end\", found %s", tt)
		return d
	}
	if tt.Text != d.Type {
		p.errorf(tt.Pos, "declaration trailer type %q does not match header type %q", tt.Text, d.Type)
	}
	p.advance()
	endName, ok := p.parseTrailerName(d.Name)
	if !ok {
		return d
	}
	if endName != d.Name {
		p.errorf(tt.Pos, "declaration trailer name %q does not match header name %q", endName, d.Name)
	}
	if p.cur().Kind != token.PERIOD {
		p.errorf(p.cur().Pos, "expected \".\" to terminate %s %s, found %s", d.Type, d.Name, p.cur())
		return d
	}
	p.advance()
	return d
}

// parseParams parses "(" param ("," | ";") param ... ")". The paper's
// grammar (Figure 4.3) separates parameters with "," but its example
// (Figure 4.4) uses ";"; both are accepted. A formal parameter is
// "Name : Type"; a value parameter is any single item (Figure 4.8 uses
// "*" placeholders at instantiation).
func (p *parser) parseParams() []Param {
	p.advance() // '('
	var params []Param
	for {
		t := p.cur()
		if t.Kind == token.RPAREN {
			p.advance()
			return params
		}
		if t.Kind == token.EOF {
			p.errorf(t.Pos, "unterminated parameter list")
			return params
		}
		if t.Kind == token.COMMA || t.Kind == token.SEMI {
			p.advance()
			continue
		}
		if t.Kind == token.IDENT && p.peek().Kind == token.COLON {
			name := p.advance().Text
			p.advance() // ':'
			tt := p.cur()
			if tt.Kind != token.IDENT {
				p.errorf(tt.Pos, "expected type name after %q:, found %s", name, tt)
				p.advance()
				continue
			}
			p.advance()
			params = append(params, Param{Name: name, Type: tt.Text, Pos: t.Pos})
			continue
		}
		it := p.parseItem()
		if it == nil {
			p.advance()
			continue
		}
		params = append(params, Param{Value: it, Pos: t.Pos})
	}
}

// parseClause parses items until the terminating ";". Inside a clause,
// PERIOD always joins dotted names (declaration-terminating periods only
// occur after the trailer's "end").
func (p *parser) parseClause() *Clause {
	c := &Clause{Pos: p.cur().Pos}
	for {
		t := p.cur()
		switch t.Kind {
		case token.SEMI:
			p.advance()
			return c
		case token.EOF:
			p.errorf(t.Pos, "unterminated clause (missing \";\")")
			return c
		case token.PERIOD:
			// A stray period inside a clause is an error; most likely a
			// missing semicolon before a declaration trailer.
			p.errorf(t.Pos, "unexpected \".\" inside clause (missing \";\"?)")
			p.advance()
			return c
		}
		if t.Is("end") && len(c.Items) > 0 {
			// Defensive: missing ";" before trailer. Report and stop the
			// clause so the declaration trailer can still be parsed.
			p.errorf(t.Pos, "missing \";\" before \"end\"")
			return c
		}
		it := p.parseItem()
		if it == nil {
			p.advance()
			continue
		}
		c.Items = append(c.Items, *it)
	}
}

func (p *parser) parseItem() *Item {
	t := p.cur()
	switch t.Kind {
	case token.IDENT:
		p.advance()
		text := t.Text
		for p.cur().Kind == token.PERIOD && p.peek().Kind == token.IDENT {
			p.advance()
			text += "." + p.advance().Text
		}
		return &Item{Kind: Word, Text: text, Pos: t.Pos}
	case token.STRING:
		p.advance()
		return &Item{Kind: Str, Text: t.Text, Pos: t.Pos}
	case token.INT:
		p.advance()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			p.errorf(t.Pos, "integer literal %q out of range", t.Text)
		}
		return &Item{Kind: Int, Text: t.Text, IntVal: v, Pos: t.Pos}
	case token.FLOAT:
		p.advance()
		it := &Item{Kind: Float, Text: t.Text, Pos: t.Pos}
		if v, err := strconv.ParseFloat(t.Text, 64); err == nil {
			it.FloatVal = v
		}
		return it
	case token.STAR:
		p.advance()
		return &Item{Kind: Star, Text: "*", Pos: t.Pos}
	case token.LT, token.LE, token.GT, token.GE, token.ASSIGN, token.COLON, token.COMMA:
		p.advance()
		return &Item{Kind: Op, Text: t.Text, Pos: t.Pos}
	case token.LPAREN, token.LBRACE:
		return p.parseGroup()
	default:
		p.errorf(t.Pos, "unexpected %s in clause", t)
		return nil
	}
}

func (p *parser) parseGroup() *Item {
	open := p.advance()
	delim := byte('(')
	closeKind := token.RPAREN
	if open.Kind == token.LBRACE {
		delim = '{'
		closeKind = token.RBRACE
	}
	g := &Item{Kind: Group, Delim: delim, Pos: open.Pos}
	for {
		t := p.cur()
		if t.Kind == closeKind {
			p.advance()
			return g
		}
		if t.Kind == token.EOF {
			p.errorf(open.Pos, "unterminated %q group", string(delim))
			return g
		}
		// Inside ASN.1 groups a ';' can appear (defensively skip it).
		if t.Kind == token.SEMI {
			p.advance()
			continue
		}
		it := p.parseItem()
		if it == nil {
			p.advance()
			continue
		}
		g.Items = append(g.Items, *it)
	}
}

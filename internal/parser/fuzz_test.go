package parser

import (
	"testing"

	"nmsl/internal/paperspec"
)

// FuzzParse exercises the full front end on arbitrary input: the parser
// must never panic, and any File it returns must be re-renderable
// through Clause.String without panicking. Run with
//
//	go test -fuzz=FuzzParse ./internal/parser
//
// The seed corpus covers every declaration kind and the known tricky
// token sequences (trailer periods, dotted names, version literals).
func FuzzParse(f *testing.F) {
	seeds := []string{
		paperspec.Figure42,
		paperspec.Figure44,
		paperspec.Figure46,
		paperspec.Figure48,
		"type t ::= SEQUENCE { a INTEGER }; access Any; end type t.",
		"domain d ::= end domain d.",
		"process p(A: Process) ::= queries A requests m frequency >= 5 minutes; end process p.",
		"system s ::= cpu x; interface i net n speed 10 bps; opsys o version 4.0.1; end system s.",
		"end end end .",
		"a b ::= ; . ::=",
		`x "unterminated`,
		"process p ::= exports a to \"d\" access ReadOnly frequency >= 5 minutes; end process p.",
		"-- just a comment",
		"type t ::= OCTET STRING; end type t.",
		"domain d ::= process p(*, *, 5, \"s\"); end domain d.",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, _ := Parse("fuzz", src)
		if file == nil {
			return
		}
		for _, d := range file.Decls {
			for _, c := range d.Clauses {
				_ = c.String()
				_ = c.Keyword()
			}
		}
	})
}

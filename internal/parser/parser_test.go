package parser

import (
	"strings"
	"testing"
	"testing/quick"

	"nmsl/internal/paperspec"
)

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse("test", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func TestFigure42Parses(t *testing.T) {
	f := mustParse(t, paperspec.Figure42)
	if len(f.Decls) != 2 {
		t.Fatalf("want 2 decls, got %d", len(f.Decls))
	}
	d := f.Decls[0]
	if d.Type != "type" || d.Name != "ipAddrTable" {
		t.Fatalf("decl 0: %s %s", d.Type, d.Name)
	}
	if len(d.Clauses) != 2 {
		t.Fatalf("want 2 clauses, got %d: %v", len(d.Clauses), d.Clauses)
	}
	if kw := d.Clauses[0].Keyword(); kw != "SEQUENCE" {
		t.Errorf("clause 0 keyword %q", kw)
	}
	if kw := d.Clauses[1].Keyword(); kw != "access" {
		t.Errorf("clause 1 keyword %q", kw)
	}

	entry := f.Decls[1]
	if entry.Name != "IpAddrEntry" || len(entry.Clauses) != 1 {
		t.Fatalf("decl 1: %+v", entry)
	}
	seq := entry.Clauses[0]
	// SEQUENCE { ... } → Word("SEQUENCE"), Group{...}
	if len(seq.Items) != 2 || seq.Items[1].Kind != Group || seq.Items[1].Delim != '{' {
		t.Fatalf("SEQUENCE clause items: %v", seq.Items)
	}
	// group contents: 4 member name/type pairs separated by commas →
	// 4*(2 words) + 3 commas = 11 items
	if n := len(seq.Items[1].Items); n != 11 {
		t.Errorf("group has %d items: %v", n, seq.Items[1].Items)
	}
}

func TestFigure44Parses(t *testing.T) {
	f := mustParse(t, paperspec.Figure44)
	if len(f.Decls) != 2 {
		t.Fatalf("want 2 decls, got %d", len(f.Decls))
	}
	agent := f.Decls[0]
	if agent.Type != "process" || agent.Name != "snmpdReadOnly" {
		t.Fatalf("agent: %s %s", agent.Type, agent.Name)
	}
	if len(agent.Clauses) != 2 {
		t.Fatalf("agent clauses: %v", agent.Clauses)
	}
	exp := agent.Clauses[1]
	if exp.Keyword() != "exports" {
		t.Fatalf("clause 1 keyword %q", exp.Keyword())
	}
	// exports mgmt.mib to "public" access ReadOnly frequency >= 5 minutes
	var texts []string
	for _, it := range exp.Items {
		texts = append(texts, it.String())
	}
	want := `exports mgmt.mib to "public" access ReadOnly frequency >= 5 minutes`
	if got := strings.Join(texts, " "); got != want {
		t.Errorf("exports clause:\n got %s\nwant %s", got, want)
	}

	app := f.Decls[1]
	if app.Name != "snmpaddr" {
		t.Fatalf("app name %q", app.Name)
	}
	if len(app.Params) != 2 {
		t.Fatalf("params: %+v", app.Params)
	}
	if app.Params[0].Name != "SysAddr" || app.Params[0].Type != "Process" {
		t.Errorf("param 0: %+v", app.Params[0])
	}
	if app.Params[1].Name != "Dest" || app.Params[1].Type != "IpAddress" {
		t.Errorf("param 1: %+v", app.Params[1])
	}
	q := app.Clauses[0]
	if q.Keyword() != "queries" {
		t.Fatalf("queries clause keyword %q", q.Keyword())
	}
	// the using clause contains "name := Dest"
	var hasAssign bool
	for _, it := range q.Items {
		if it.Kind == Op && it.Text == ":=" {
			hasAssign = true
		}
	}
	if !hasAssign {
		t.Error("queries clause missing := in using subclause")
	}
}

func TestFigure46Parses(t *testing.T) {
	f := mustParse(t, paperspec.Figure46)
	d := f.Decls[0]
	if d.Type != "system" || d.Name != "romano.cs.wisc.edu" || !d.Quoted {
		t.Fatalf("decl: %+v", d)
	}
	wantKw := []string{"cpu", "interface", "opsys", "supports", "process"}
	if len(d.Clauses) != len(wantKw) {
		t.Fatalf("clauses: %v", d.Clauses)
	}
	for i, kw := range wantKw {
		if got := d.Clauses[i].Keyword(); got != kw {
			t.Errorf("clause %d keyword %q, want %q", i, got, kw)
		}
	}
	// interface clause: speed 10000000 bps
	iface := d.Clauses[1]
	var sawSpeed bool
	for i, it := range iface.Items {
		if it.IsWord("speed") {
			if i+2 >= len(iface.Items) || iface.Items[i+1].Kind != Int ||
				iface.Items[i+1].IntVal != 10000000 || !iface.Items[i+2].IsWord("bps") {
				t.Errorf("speed subclause malformed: %v", iface.Items[i:])
			}
			sawSpeed = true
		}
	}
	if !sawSpeed {
		t.Error("no speed subclause")
	}
	// opsys SunOS version 4.0.1 → version literal lexes as Float text
	op := d.Clauses[2]
	if len(op.Items) != 4 || op.Items[3].Kind != Float || op.Items[3].Text != "4.0.1" {
		t.Errorf("opsys clause: %v", op.Items)
	}
}

func TestFigure48Parses(t *testing.T) {
	f := mustParse(t, paperspec.Figure48)
	d := f.Decls[0]
	if d.Type != "domain" || d.Name != "wisc-cs" {
		t.Fatalf("decl: %+v", d)
	}
	// member: system romano.cs.wisc.edu (unquoted dotted name)
	m := d.Clauses[0]
	if m.Keyword() != "system" || len(m.Items) != 2 || m.Items[1].Text != "romano.cs.wisc.edu" {
		t.Fatalf("member clause: %v", m.Items)
	}
	// process snmpaddr(*, *)
	pc := d.Clauses[2]
	if pc.Keyword() != "process" {
		t.Fatalf("clause 2: %v", pc.Items)
	}
	if len(pc.Items) != 3 || pc.Items[2].Kind != Group {
		t.Fatalf("instantiation: %v", pc.Items)
	}
	grp := pc.Items[2]
	stars := 0
	for _, it := range grp.Items {
		if it.Kind == Star {
			stars++
		}
	}
	if stars != 2 {
		t.Errorf("want 2 star params, got %d: %v", stars, grp.Items)
	}
}

func TestCombinedParses(t *testing.T) {
	f := mustParse(t, paperspec.Combined)
	if len(f.Decls) != 8 {
		t.Fatalf("want 8 decls, got %d", len(f.Decls))
	}
}

func TestEmptyBodyDomain(t *testing.T) {
	f := mustParse(t, "domain public ::= end domain public.")
	if len(f.Decls) != 1 || len(f.Decls[0].Clauses) != 0 {
		t.Fatalf("got %+v", f.Decls)
	}
}

// The generalized grammar (Figure 6.1) accepts declarations and clauses
// with unknown keywords; semantic validation is pass 2's job.
func TestGeneralizedGrammarAcceptsUnknownKeywords(t *testing.T) {
	src := `gadget frobnicator ::=
	    whirl clockwise 3 times;
	    color "blue";
	end gadget frobnicator.`
	f := mustParse(t, src)
	d := f.Decls[0]
	if d.Type != "gadget" || d.Name != "frobnicator" {
		t.Fatalf("decl: %+v", d)
	}
	if len(d.Clauses) != 2 || d.Clauses[0].Keyword() != "whirl" {
		t.Fatalf("clauses: %v", d.Clauses)
	}
}

func TestTrailerTypeMismatch(t *testing.T) {
	_, err := Parse("t", "type foo ::= access Any; end process foo.")
	if err == nil || !strings.Contains(err.Error(), "trailer type") {
		t.Fatalf("err = %v", err)
	}
}

func TestTrailerNameMismatch(t *testing.T) {
	_, err := Parse("t", "type foo ::= access Any; end type bar.")
	if err == nil || !strings.Contains(err.Error(), "trailer name") {
		t.Fatalf("err = %v", err)
	}
}

func TestMissingDefine(t *testing.T) {
	_, err := Parse("t", "type foo access Any; end type foo.")
	if err == nil || !strings.Contains(err.Error(), "::=") {
		t.Fatalf("err = %v", err)
	}
}

func TestMissingSemicolonBeforeEnd(t *testing.T) {
	f, err := Parse("t", "domain d ::= system x end domain d.")
	if err == nil {
		t.Fatal("want error for missing semicolon")
	}
	// recovery still yields the declaration
	if len(f.Decls) != 1 {
		t.Fatalf("decls: %+v", f.Decls)
	}
}

func TestUnterminatedClause(t *testing.T) {
	_, err := Parse("t", "domain d ::= system x")
	if err == nil {
		t.Fatal("want error")
	}
}

func TestRecoveryAcrossBadDecl(t *testing.T) {
	src := `junk ( ::= ;.
	domain ok ::= end domain ok.`
	f, err := Parse("t", src)
	if err == nil {
		t.Fatal("want error from first decl")
	}
	found := false
	for _, d := range f.Decls {
		if d.Name == "ok" {
			found = true
		}
	}
	if !found {
		t.Fatalf("recovery failed, decls: %+v", f.Decls)
	}
}

func TestFrequencyOperators(t *testing.T) {
	for _, op := range []string{"<", "<=", ">", ">="} {
		src := "process p ::= exports m to \"d\" access Any frequency " + op + " 2 hours; end process p."
		f := mustParse(t, src)
		cl := f.Decls[0].Clauses[0]
		var found bool
		for _, it := range cl.Items {
			if it.Kind == Op && it.Text == op {
				found = true
			}
		}
		if !found {
			t.Errorf("operator %q not preserved: %v", op, cl.Items)
		}
	}
}

func TestClauseString(t *testing.T) {
	f := mustParse(t, `domain d ::= exports mgmt.mib to "public" access ReadOnly frequency >= 5 minutes; end domain d.`)
	got := f.Decls[0].Clauses[0].String()
	want := `exports mgmt.mib to "public" access ReadOnly frequency >= 5 minutes;`
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestNestedGroups(t *testing.T) {
	src := `type t ::= SEQUENCE { a SEQUENCE { b INTEGER }, c INTEGER }; end type t.`
	f := mustParse(t, src)
	outer := f.Decls[0].Clauses[0].Items[1]
	if outer.Kind != Group {
		t.Fatalf("outer: %v", outer)
	}
	var inner *Item
	for i := range outer.Items {
		if outer.Items[i].Kind == Group {
			inner = &outer.Items[i]
		}
	}
	if inner == nil || len(inner.Items) != 2 {
		t.Fatalf("inner group: %+v", inner)
	}
}

// Property: for arbitrary input, Parse never panics; either it returns
// declarations or an error (or both, with recovery).
func TestParseTotal(t *testing.T) {
	f := func(src string) bool {
		_, _ = Parse("q", src)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: well-formed single-clause declarations with arbitrary
// identifier names round-trip the name.
func TestParseDeclNameRoundTrip(t *testing.T) {
	names := []string{"a", "zz", "wisc-cs", "a1", "deep.dotted.name"}
	for _, n := range names {
		src := "domain " + n + " ::= end domain " + n + "."
		f := mustParse(t, src)
		if f.Decls[0].Name != n {
			t.Errorf("name %q parsed as %q", n, f.Decls[0].Name)
		}
	}
}

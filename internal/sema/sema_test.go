package sema

import (
	"strings"
	"testing"

	"nmsl/internal/ast"
	"nmsl/internal/mib"
	"nmsl/internal/paperspec"
	"nmsl/internal/parser"
)

// analyze parses and analyzes src, failing the test on any error.
func analyze(t *testing.T, src string) *ast.Spec {
	t.Helper()
	spec, err := analyzeErr(t, src)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return spec
}

// analyzeErr parses src (which must be syntactically valid) and returns
// the semantic result.
func analyzeErr(t *testing.T, src string) (*ast.Spec, error) {
	t.Helper()
	f, err := parser.Parse("test", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	a := NewAnalyzer()
	a.AnalyzeFile(f)
	return a.Finish()
}

func TestFigure42TypeSpecs(t *testing.T) {
	spec := analyze(t, paperspec.Figure42)
	table := spec.Types["ipAddrTable"]
	if table == nil {
		t.Fatal("ipAddrTable missing")
	}
	if table.Access != mib.AccessReadOnly {
		t.Errorf("access %v", table.Access)
	}
	if table.Body.String() != "SEQUENCE OF IpAddrEntry" {
		t.Errorf("body %s", table.Body)
	}
	entry := spec.Types["IpAddrEntry"]
	if entry == nil {
		t.Fatal("IpAddrEntry missing")
	}
	// IpAddrEntry's access is unspecified: inherited from its container
	// (the paper's inheritance example).
	if entry.Access != mib.AccessUnspecified {
		t.Errorf("entry access %v", entry.Access)
	}
	if len(entry.Body.Fields) != 4 {
		t.Errorf("fields %v", entry.Body)
	}
}

func TestFigure44ProcessSpecs(t *testing.T) {
	spec := analyze(t, paperspec.Figure42+paperspec.Figure44+emptyPublic)
	agent := spec.Processes["snmpdReadOnly"]
	if agent == nil {
		t.Fatal("snmpdReadOnly missing")
	}
	if !agent.IsAgent() {
		t.Error("snmpdReadOnly should be an agent (supports data)")
	}
	if len(agent.Supports) != 1 || agent.Supports[0] != "mgmt.mib" {
		t.Errorf("supports %v", agent.Supports)
	}
	if len(agent.Exports) != 1 {
		t.Fatalf("exports %v", agent.Exports)
	}
	ex := agent.Exports[0]
	if ex.To != "public" || ex.Access != mib.AccessReadOnly {
		t.Errorf("export %+v", ex)
	}
	if ex.Freq.Op != ">=" || ex.Freq.Seconds != 300 {
		t.Errorf("freq %+v", ex.Freq)
	}

	app := spec.Processes["snmpaddr"]
	if app == nil {
		t.Fatal("snmpaddr missing")
	}
	if app.IsAgent() {
		t.Error("snmpaddr should not be an agent")
	}
	if len(app.Params) != 2 || app.Params[0].Type != "Process" || app.Params[1].Type != "IpAddress" {
		t.Errorf("params %+v", app.Params)
	}
	if len(app.Queries) != 1 {
		t.Fatalf("queries %v", app.Queries)
	}
	q := app.Queries[0]
	if q.Target != "SysAddr" {
		t.Errorf("target %q", q.Target)
	}
	if len(q.Requests) != 1 || q.Requests[0] != "mgmt.mib.ip.ipAddrTable.IpAddrEntry" {
		t.Errorf("requests %v", q.Requests)
	}
	if len(q.Using) != 1 || q.Using[0].Var != "mgmt.mib.ip.ipAddrTable.IpAddrEntry.ipAdEntAddr" {
		t.Errorf("using %+v", q.Using)
	}
	if q.Using[0].Value.Text != "Dest" {
		t.Errorf("selection value %v", q.Using[0].Value)
	}
	if !q.Freq.Infrequent {
		t.Errorf("freq %+v", q.Freq)
	}
	if q.Access != mib.AccessReadOnly {
		t.Errorf("query access %v (retrieval default)", q.Access)
	}
}

func TestFigure46SystemSpec(t *testing.T) {
	spec := analyze(t, paperspec.Figure42+paperspec.Figure44+paperspec.Figure46+emptyPublic)
	ss := spec.Systems["romano.cs.wisc.edu"]
	if ss == nil {
		t.Fatal("romano missing")
	}
	if ss.CPU != "sparc" {
		t.Errorf("cpu %q", ss.CPU)
	}
	if len(ss.Interfaces) != 1 {
		t.Fatalf("interfaces %v", ss.Interfaces)
	}
	ifc := ss.Interfaces[0]
	if ifc.Name != "ie0" || ifc.Net != "wisc-research" || ifc.Type != "ethernet-csmacd" || ifc.SpeedBPS != 10000000 {
		t.Errorf("interface %+v", ifc)
	}
	if ss.OpSys != "SunOS" || ss.OpSysVersion != "4.0.1" {
		t.Errorf("opsys %q %q", ss.OpSys, ss.OpSysVersion)
	}
	// seven MIB groups supported; no egp
	if len(ss.Supports) != 7 {
		t.Errorf("supports %v", ss.Supports)
	}
	for _, v := range ss.Supports {
		if v == "mgmt.mib.egp" {
			t.Error("romano must not support egp")
		}
	}
	if len(ss.Processes) != 1 || ss.Processes[0].Name != "snmpdReadOnly" {
		t.Errorf("processes %v", ss.Processes)
	}
}

func TestFigure48DomainSpec(t *testing.T) {
	spec := analyze(t, paperspec.Combined)
	ds := spec.Domains["wisc-cs"]
	if ds == nil {
		t.Fatal("wisc-cs missing")
	}
	if len(ds.Systems) != 2 || ds.Systems[0] != "romano.cs.wisc.edu" || ds.Systems[1] != "cs.wisc.edu" {
		t.Errorf("systems %v", ds.Systems)
	}
	if len(ds.Processes) != 1 {
		t.Fatalf("processes %v", ds.Processes)
	}
	pi := ds.Processes[0]
	if pi.Name != "snmpaddr" || len(pi.Args) != 2 {
		t.Fatalf("instance %+v", pi)
	}
	for _, a := range pi.Args {
		if a.Kind != ast.ArgStar {
			t.Errorf("arg %+v should be *", a)
		}
	}
	if pi.String() != "snmpaddr(*, *)" {
		t.Errorf("String() = %q", pi.String())
	}
	if len(ds.Exports) != 1 || ds.Exports[0].To != "public" {
		t.Errorf("exports %+v", ds.Exports)
	}
}

func TestCombinedIsClean(t *testing.T) {
	spec := analyze(t, paperspec.Combined)
	if len(spec.Types) != 2 || len(spec.Processes) != 2 || len(spec.Systems) != 2 || len(spec.Domains) != 2 {
		t.Errorf("counts: %d types %d processes %d systems %d domains",
			len(spec.Types), len(spec.Processes), len(spec.Systems), len(spec.Domains))
	}
}

func wantErr(t *testing.T, src, substr string) {
	t.Helper()
	_, err := analyzeErr(t, src)
	if err == nil {
		t.Fatalf("want error containing %q, got none", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("want error containing %q, got %v", substr, err)
	}
}

func TestUnknownDeclType(t *testing.T) {
	wantErr(t, "gadget g ::= end gadget g.", "unknown declaration type")
}

func TestUnknownClauseKeyword(t *testing.T) {
	wantErr(t, "domain d ::= frobnicate x; end domain d.", "unknown clause keyword")
}

func TestDuplicateType(t *testing.T) {
	wantErr(t, "type t ::= INTEGER; end type t. type t ::= INTEGER; end type t.", "declared more than once")
}

func TestTypeWithoutBody(t *testing.T) {
	wantErr(t, "type t ::= access Any; end type t.", "access clause must follow")
}

func TestTypeDoubleAccess(t *testing.T) {
	wantErr(t, "type t ::= INTEGER; access Any; access None; end type t.", "more than one access")
}

func TestBadAccessMode(t *testing.T) {
	wantErr(t, "type t ::= INTEGER; access Sometimes; end type t.", "unknown access mode")
}

func TestUndeclaredTypeRef(t *testing.T) {
	wantErr(t, "type t ::= SEQUENCE of Missing; end type t.", "undeclared type")
}

func TestSystemRequiresCPU(t *testing.T) {
	wantErr(t, `system s ::= interface ie0 net x type e speed 10 bps; end system s.`, "missing cpu")
}

func TestSystemRequiresInterface(t *testing.T) {
	wantErr(t, `system s ::= cpu sparc; end system s.`, "no interface clauses")
}

func TestInterfaceRequiresNet(t *testing.T) {
	wantErr(t, `system s ::= cpu sparc; interface ie0 type e speed 10 bps; end system s.`, "missing net")
}

func TestBadSpeed(t *testing.T) {
	wantErr(t, `system s ::= cpu sparc; interface ie0 net n speed fast; end system s.`, "speed")
}

func TestDuplicateInterface(t *testing.T) {
	wantErr(t, `system s ::= cpu sparc;
		interface ie0 net n speed 10 bps;
		interface ie0 net m speed 10 bps;
		end system s.`, "duplicate interface")
}

func TestSystemInstantiatesUndeclaredProcess(t *testing.T) {
	wantErr(t, `system s ::= cpu sparc; interface ie0 net n speed 10 bps; process ghost; end system s.`,
		"undeclared process")
}

func TestInstanceArgCount(t *testing.T) {
	src := `
process p(A: Process) ::=
    queries A requests mgmt.mib.system frequency infrequent;
end process p.
domain d ::= process p(*, *); end domain d.`
	wantErr(t, src, "want 1")
}

func TestExportRequiresTo(t *testing.T) {
	wantErr(t, `process p ::= supports mgmt.mib; exports mgmt.mib access ReadOnly; end process p.`,
		`"to" subclause`)
}

func TestExportToUndeclaredDomain(t *testing.T) {
	wantErr(t, `process p ::= supports mgmt.mib; exports mgmt.mib to "nowhere" access ReadOnly; end process p.`,
		"undeclared domain")
}

func TestQueryTargetMustBeProcessParam(t *testing.T) {
	src := `
process p(Where: IpAddress) ::=
    queries Where requests mgmt.mib.system frequency infrequent;
end process p.`
	wantErr(t, src, "must be Process")
}

func TestQueryUndeclaredTarget(t *testing.T) {
	wantErr(t, `process p ::= queries ghost requests mgmt.mib.system frequency infrequent; end process p.`,
		"undeclared process")
}

func TestQueryRequiresRequests(t *testing.T) {
	wantErr(t, `process p ::= queries q frequency infrequent; end process p.
	process q ::= supports mgmt.mib; end process q.`, `"requests" subclause`)
}

func TestBadMIBPath(t *testing.T) {
	wantErr(t, `process p ::= supports mgmt.mib.bogusGroup; end process p.`, "does not resolve")
}

func TestDomainSelfContainment(t *testing.T) {
	wantErr(t, `domain d ::= domain d; end domain d.`, "cannot contain itself")
}

func TestDomainCycle(t *testing.T) {
	src := `
domain a ::= domain b; end domain a.
domain b ::= domain c; end domain b.
domain c ::= domain a; end domain c.`
	wantErr(t, src, "cycle")
}

func TestDomainNestingOK(t *testing.T) {
	src := `
domain leaf ::= end domain leaf.
domain mid ::= domain leaf; end domain mid.
domain top ::= domain mid; domain leaf; end domain top.`
	spec := analyze(t, src)
	if len(spec.Domains) != 3 {
		t.Fatalf("domains %v", spec.DomainNames())
	}
}

func TestDuplicateProcessParam(t *testing.T) {
	wantErr(t, `process p(A: Process; A: Process) ::= end process p.`, "duplicate parameter")
}

func TestValueParamRejectedInDeclaration(t *testing.T) {
	wantErr(t, `process p(5) ::= end process p.`, "Name: Type")
}

func TestFreqParsing(t *testing.T) {
	cases := []struct {
		src     string
		op      string
		seconds float64
		infreq  bool
	}{
		{"frequency >= 5 minutes", ">=", 300, false},
		{"frequency > 2 hours", ">", 7200, false},
		{"frequency <= 30 seconds", "<=", 30, false},
		{"frequency < 1 hours", "<", 3600, false},
		{"frequency 10 seconds", "", 10, false},
		{"frequency infrequent", "", 0, true},
	}
	for _, c := range cases {
		src := `process srv ::= supports mgmt.mib; end process srv.
			process p ::= queries srv requests mgmt.mib.system ` + c.src + `; end process p.`
		spec := analyze(t, src)
		fr := spec.Processes["p"].Queries[0].Freq
		if fr.Op != c.op || fr.Seconds != c.seconds || fr.Infrequent != c.infreq {
			t.Errorf("%q: got %+v", c.src, fr)
		}
	}
}

func TestFreqErrors(t *testing.T) {
	bad := []string{
		"frequency",
		"frequency >=",
		"frequency >= 5",
		"frequency >= 5 fortnights",
		"frequency infrequent 5 minutes",
		"frequency >= x minutes",
	}
	for _, b := range bad {
		src := `process srv ::= supports mgmt.mib; end process srv.
			process p ::= queries srv requests mgmt.mib.system ` + b + `; end process p.`
		if _, err := analyzeErr(t, src); err == nil {
			t.Errorf("%q: no error", b)
		}
	}
}

func TestFreqString(t *testing.T) {
	cases := []struct {
		f    ast.Freq
		want string
	}{
		{ast.Freq{Op: ">=", Seconds: 300}, ">= 5 minutes"},
		{ast.Freq{Op: ">", Seconds: 7200}, "> 2 hours"},
		{ast.Freq{Seconds: 45}, "45 seconds"},
		{ast.Freq{Infrequent: true}, "infrequent"},
		{ast.Freq{}, "unspecified"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.f, got, c.want)
		}
	}
}

func TestMinPeriodSeconds(t *testing.T) {
	cases := []struct {
		f    ast.Freq
		want float64
	}{
		{ast.Freq{Op: ">=", Seconds: 300}, 300},
		{ast.Freq{Op: ">", Seconds: 60}, 60},
		{ast.Freq{Op: "<", Seconds: 60}, 0},
		{ast.Freq{Op: "<=", Seconds: 60}, 0},
		{ast.Freq{Seconds: 60}, 60},
		{ast.Freq{Infrequent: true}, 0},
	}
	for _, c := range cases {
		if got := c.f.MinPeriodSeconds(); got != c.want {
			t.Errorf("MinPeriod(%+v) = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestSplitClauseAnonymousLead(t *testing.T) {
	// A clause beginning with a non-word still splits sanely.
	f, err := parser.Parse("t", `domain d ::= end domain d.`)
	if err != nil {
		t.Fatal(err)
	}
	_ = f
	c := &parser.Clause{Items: []parser.Item{
		{Kind: parser.Int, Text: "5", IntVal: 5},
		{Kind: parser.Word, Text: "seconds"},
	}}
	subs := SplitClause(c, map[string]bool{})
	if len(subs) != 1 || subs[0].Keyword != "" || len(subs[0].Items) != 2 {
		t.Fatalf("subs %+v", subs)
	}
}

func TestDomainsContaining(t *testing.T) {
	spec := analyze(t, paperspec.Combined)
	got := spec.DomainsContaining("romano.cs.wisc.edu")
	if len(got) != 2 || got[0] != "public" || got[1] != "wisc-cs" {
		t.Fatalf("got %v", got)
	}
	// nested containment
	src := paperspec.Combined + `
domain campus ::= domain wisc-cs; end domain campus.`
	spec2 := analyze(t, src)
	got2 := spec2.DomainsContaining("romano.cs.wisc.edu")
	if len(got2) != 3 || got2[0] != "campus" || got2[1] != "public" || got2[2] != "wisc-cs" {
		t.Fatalf("got %v", got2)
	}
}

func TestGenerateUnknownTagIsEmpty(t *testing.T) {
	f, err := parser.Parse("t", paperspec.Combined)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer()
	a.AnalyzeFile(f)
	if _, err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := a.Generate("no-such-output", &b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("output %q", b.String())
	}
}

// emptyPublic declares a bare public domain for tests that use the
// paper's process figures without the full combined specification.
const emptyPublic = `
domain public ::=
end domain public.
`

// Package sema implements the second pass of the NMSL compiler (paper
// sections 6.1-6.3): keyword-driven semantic analysis and output
// generation over the generic parse tree.
//
// Associated with each production of the generalized grammar is a list of
// actions. Actions come in two flavors:
//
//   - generic actions validate the specification and perform bookkeeping
//     (symbol table, typed model construction); they run on every compile
//     and are tagged "generic" in the compiler's tables;
//   - output-specific actions generate output and are tagged with the
//     output type they produce (e.g. "consistency" for logic facts, or a
//     configuration format name like "BartsSnmpd"); each compiler run
//     executes the generic actions plus one output tag's actions.
//
// The tables are extensible: the extension language (section 6.3)
// prepends keyword and action entries. A prepended entry with a new
// keyword extends the language; one with an existing keyword overrides —
// but only the actions it specifies. An extension that provides only an
// action tagged "DavesSnmpd" for the existing "queries" clause overrides
// only that output action, never the basic generic action.
package sema

import (
	"fmt"

	"nmsl/internal/ast"
	"nmsl/internal/parser"
	"nmsl/internal/token"
)

// Subclause is one keyword-led fragment of a clause, e.g. the
// `access ReadOnly` inside an exports clause.
type Subclause struct {
	Keyword string
	// Items are the arguments following the keyword (the keyword item
	// itself is excluded).
	Items []parser.Item
	Pos   token.Pos
}

// SplitClause splits a clause's flat item list into subclauses at each
// Word item that is in subKeywords. The clause's own leading keyword
// starts the first subclause. This is the pass-2 differentiation the
// paper defers out of the generalized grammar.
func SplitClause(c *parser.Clause, subKeywords map[string]bool) []Subclause {
	var subs []Subclause
	cur := -1
	for i, it := range c.Items {
		isKw := it.Kind == parser.Word && (i == 0 || subKeywords[it.Text])
		if isKw {
			subs = append(subs, Subclause{Keyword: it.Text, Pos: it.Pos})
			cur = len(subs) - 1
			continue
		}
		if cur < 0 {
			// clause does not begin with a word; collect under an
			// anonymous subclause
			subs = append(subs, Subclause{Pos: it.Pos})
			cur = 0
		}
		subs[cur].Items = append(subs[cur].Items, it)
	}
	return subs
}

// DeclContext carries the state of analyzing one declaration.
type DeclContext struct {
	// Spec is the specification being built.
	Spec *ast.Spec
	// Decl is the declaration under analysis.
	Decl *parser.Decl
	// Value is the typed model object the generic decl action created
	// (e.g. *ast.ProcessSpec); clause actions populate it.
	Value any
	// analyzer backlink for error reporting.
	a *Analyzer
}

// Errorf records a semantic error at pos.
func (ctx *DeclContext) Errorf(pos token.Pos, format string, args ...any) {
	ctx.a.errorf(pos, format, args...)
}

// ClauseContext carries the state of analyzing one clause.
type ClauseContext struct {
	*DeclContext
	Clause *parser.Clause
	// Subs is the clause split into subclauses using the resolved
	// subclause keywords.
	Subs []Subclause
}

// Sub returns the first subclause with the given keyword, or nil.
func (ctx *ClauseContext) Sub(keyword string) *Subclause {
	for i := range ctx.Subs {
		if ctx.Subs[i].Keyword == keyword {
			return &ctx.Subs[i]
		}
	}
	return nil
}

// DeclAction is a generic action pair for a declaration type.
type DeclAction struct {
	// Begin runs before the declaration's clauses; it typically creates
	// the typed model object and stores it in ctx.Value.
	Begin func(ctx *DeclContext) error
	// End runs after all clauses; it typically validates required clauses
	// and registers the object in the Spec.
	End func(ctx *DeclContext) error
}

// OutputAction generates output for one declaration or clause. The sink
// is output-type specific; for text outputs it is an *Emitter.
type OutputAction func(ctx *DeclContext, e *Emitter) error

// ClauseEntry describes one clause keyword within a declaration type:
// its subclause keywords, generic action and output actions.
type ClauseEntry struct {
	// DeclType restricts the entry to one declaration type; "" matches
	// any.
	DeclType string
	// Keyword is the clause's leading keyword.
	Keyword string
	// SubKeywords are the words that begin nested subclauses.
	SubKeywords []string
	// Generic is the validation/bookkeeping action (tag "generic").
	Generic func(ctx *ClauseContext) error
	// Outputs maps output tags to code-generation actions for this clause.
	Outputs map[string]func(ctx *ClauseContext, e *Emitter) error
}

// DeclEntry describes one declaration type.
type DeclEntry struct {
	// Type is the declaration type keyword ("type", "process", ...).
	Type string
	// Generic is the declaration's generic action pair.
	Generic DeclAction
	// Fallback handles clauses whose keyword matches no ClauseEntry; the
	// basic "type" declaration uses it to accept ASN.1 bodies, whose
	// leading word is a type name, not a fixed keyword. If nil, unknown
	// clauses are semantic errors.
	Fallback func(ctx *ClauseContext) error
	// Outputs maps output tags to per-declaration output actions.
	Outputs map[string]OutputAction
}

// Tables is the compiler's keyword/action store. Extension entries are
// prepended; lookups scan front to back, so extensions win, and action
// resolution merges across entries so an extension overrides only the
// actions it specifies (section 6.3).
type Tables struct {
	decls   []*DeclEntry
	clauses []*ClauseEntry
}

// NewTables returns tables containing only the basic NMSL language.
func NewTables() *Tables {
	t := &Tables{}
	registerBasic(t)
	return t
}

// PrependDecl adds a declaration entry ahead of existing entries.
func (t *Tables) PrependDecl(e *DeclEntry) {
	t.decls = append([]*DeclEntry{e}, t.decls...)
}

// PrependClause adds a clause entry ahead of existing entries.
func (t *Tables) PrependClause(e *ClauseEntry) {
	t.clauses = append([]*ClauseEntry{e}, t.clauses...)
}

// AppendDecl and AppendClause register basic-language entries.
func (t *Tables) AppendDecl(e *DeclEntry)     { t.decls = append(t.decls, e) }
func (t *Tables) AppendClause(e *ClauseEntry) { t.clauses = append(t.clauses, e) }

// DeclResolution is the merged view of a declaration type across all
// matching table entries.
type DeclResolution struct {
	Type     string
	Generic  DeclAction
	Fallback func(ctx *ClauseContext) error
	outputs  []map[string]OutputAction
	known    bool
}

// Known reports whether any table entry matched.
func (r *DeclResolution) Known() bool { return r.known }

// Output returns the output action for tag, scanning extension-first.
func (r *DeclResolution) Output(tag string) OutputAction {
	for _, m := range r.outputs {
		if a, ok := m[tag]; ok {
			return a
		}
	}
	return nil
}

// ResolveDecl merges all entries for a declaration type, front to back:
// the first entry providing a Begin/End/Fallback wins for that slot, and
// output tags resolve to the first entry that defines them.
func (t *Tables) ResolveDecl(declType string) DeclResolution {
	r := DeclResolution{Type: declType}
	for _, e := range t.decls {
		if e.Type != declType {
			continue
		}
		r.known = true
		if r.Generic.Begin == nil {
			r.Generic.Begin = e.Generic.Begin
		}
		if r.Generic.End == nil {
			r.Generic.End = e.Generic.End
		}
		if r.Fallback == nil {
			r.Fallback = e.Fallback
		}
		if e.Outputs != nil {
			r.outputs = append(r.outputs, e.Outputs)
		}
	}
	return r
}

// ClauseResolution is the merged view of one clause keyword within a
// declaration type.
type ClauseResolution struct {
	Keyword     string
	SubKeywords map[string]bool
	Generic     func(ctx *ClauseContext) error
	outputs     []map[string]func(ctx *ClauseContext, e *Emitter) error
	known       bool
}

// Known reports whether any table entry matched.
func (r *ClauseResolution) Known() bool { return r.known }

// Output returns the clause output action for tag, extension-first.
func (r *ClauseResolution) Output(tag string) func(ctx *ClauseContext, e *Emitter) error {
	for _, m := range r.outputs {
		if a, ok := m[tag]; ok {
			return a
		}
	}
	return nil
}

// ResolveClause merges all entries matching (declType, keyword). Entries
// with DeclType "" apply to every declaration type. Subclause keyword
// sets are unioned so an extension can add subclauses to a basic clause.
func (t *Tables) ResolveClause(declType, keyword string) ClauseResolution {
	r := ClauseResolution{Keyword: keyword, SubKeywords: map[string]bool{}}
	for _, e := range t.clauses {
		if e.Keyword != keyword {
			continue
		}
		if e.DeclType != "" && e.DeclType != declType {
			continue
		}
		r.known = true
		for _, kw := range e.SubKeywords {
			r.SubKeywords[kw] = true
		}
		if r.Generic == nil {
			r.Generic = e.Generic
		}
		if e.Outputs != nil {
			r.outputs = append(r.outputs, e.Outputs)
		}
	}
	return r
}

// Error is a semantic error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string {
	if e.Pos.IsValid() {
		return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
	}
	return e.Msg
}

// ErrorList collects semantic errors; it implements error.
type ErrorList []*Error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
}

// Err returns the list as an error, or nil when empty.
func (l ErrorList) Err() error {
	if len(l) == 0 {
		return nil
	}
	return l
}

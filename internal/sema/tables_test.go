package sema

import (
	"strings"
	"testing"

	"nmsl/internal/parser"
)

// These tests pin down the table-merge semantics of section 6.3 at the
// unit level: prepended entries win per action slot, and an entry that
// provides only some slots leaves the rest to later (basic) entries.

func TestResolveDeclMergesSlots(t *testing.T) {
	tbl := NewTables()
	ranBegin := ""
	// extension overrides only Begin for "type"; the basic End (which
	// registers into the Spec) must survive.
	tbl.PrependDecl(&DeclEntry{
		Type: "type",
		Generic: DeclAction{
			Begin: func(ctx *DeclContext) error {
				ranBegin = "extension"
				// still create the object the basic clause actions expect
				return basicTypeBegin(ctx)
			},
		},
	})
	res := tbl.ResolveDecl("type")
	if !res.Known() {
		t.Fatal("type unknown")
	}
	if res.Generic.Begin == nil || res.Generic.End == nil || res.Fallback == nil {
		t.Fatal("merge dropped slots")
	}
	ctx := &DeclContext{Spec: nil, Decl: &parser.Decl{Type: "type", Name: "x"}, a: &Analyzer{}}
	_ = res.Generic.Begin(ctx)
	if ranBegin != "extension" {
		t.Fatal("prepended Begin did not win")
	}
}

// basicTypeBegin mimics the basic action enough for the merge test.
func basicTypeBegin(ctx *DeclContext) error { return nil }

func TestResolveDeclUnknown(t *testing.T) {
	tbl := NewTables()
	r := tbl.ResolveDecl("gadget")
	if r.Known() {
		t.Fatal("unknown decl type resolved")
	}
}

func TestResolveClauseUnionsSubKeywords(t *testing.T) {
	tbl := NewTables()
	tbl.PrependClause(&ClauseEntry{
		DeclType:    "process",
		Keyword:     "exports",
		SubKeywords: []string{"via"},
	})
	res := tbl.ResolveClause("process", "exports")
	for _, kw := range []string{"to", "access", "frequency", "via"} {
		if !res.SubKeywords[kw] {
			t.Errorf("subkeyword %q lost in merge", kw)
		}
	}
	// basic generic action survives (extension declared none)
	if res.Generic == nil {
		t.Fatal("basic generic action lost")
	}
}

func TestResolveClauseOutputPrecedence(t *testing.T) {
	tbl := NewTables()
	mk := func(tag, text string) map[string]func(*ClauseContext, *Emitter) error {
		return map[string]func(*ClauseContext, *Emitter) error{
			tag: func(ctx *ClauseContext, e *Emitter) error {
				e.Println(text)
				return nil
			},
		}
	}
	tbl.AppendClause(&ClauseEntry{Keyword: "k", Outputs: mk("t", "basic")})
	tbl.PrependClause(&ClauseEntry{Keyword: "k", Outputs: mk("t", "ext")})
	res := tbl.ResolveClause("anything", "k")
	var b strings.Builder
	e := NewEmitter(&b)
	if err := res.Output("t")(nil, e); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != "ext" {
		t.Fatalf("output %q", b.String())
	}
	if res.Output("missing") != nil {
		t.Fatal("missing tag resolved")
	}
}

func TestClauseEntryDeclTypeScoping(t *testing.T) {
	tbl := NewTables()
	// "supports" is defined for process and system separately; resolving
	// for "domain" must not match either.
	r1 := tbl.ResolveClause("domain", "supports")
	if r1.Known() {
		t.Fatal("supports leaked into domain")
	}
	r2 := tbl.ResolveClause("process", "supports")
	if !r2.Known() {
		t.Fatal("process supports missing")
	}
	// an entry with empty DeclType applies everywhere
	tbl.PrependClause(&ClauseEntry{Keyword: "anywhere"})
	r3 := tbl.ResolveClause("domain", "anywhere")
	r4 := tbl.ResolveClause("type", "anywhere")
	if !r3.Known() || !r4.Known() {
		t.Fatal("wildcard decl type not honored")
	}
}

func TestSplitClauseKeywordPositions(t *testing.T) {
	c := &parser.Clause{Items: []parser.Item{
		{Kind: parser.Word, Text: "exports"},
		{Kind: parser.Word, Text: "mgmt.mib"},
		{Kind: parser.Word, Text: "to"},
		{Kind: parser.Str, Text: "public"},
		{Kind: parser.Word, Text: "access"},
		{Kind: parser.Word, Text: "ReadOnly"},
	}}
	subs := SplitClause(c, map[string]bool{"to": true, "access": true})
	if len(subs) != 3 {
		t.Fatalf("subs: %+v", subs)
	}
	if subs[0].Keyword != "exports" || len(subs[0].Items) != 1 {
		t.Errorf("lead: %+v", subs[0])
	}
	if subs[1].Keyword != "to" || subs[1].Items[0].Text != "public" {
		t.Errorf("to: %+v", subs[1])
	}
	if subs[2].Keyword != "access" || subs[2].Items[0].Text != "ReadOnly" {
		t.Errorf("access: %+v", subs[2])
	}
	// a word equal to a subkeyword in lead position (index 0) starts the
	// clause, not a nested subclause
	c2 := &parser.Clause{Items: []parser.Item{{Kind: parser.Word, Text: "to"}}}
	subs2 := SplitClause(c2, map[string]bool{"to": true})
	if len(subs2) != 1 || subs2[0].Keyword != "to" {
		t.Fatalf("subs2: %+v", subs2)
	}
}

func TestErrorListRendering(t *testing.T) {
	var l ErrorList
	if l.Err() != nil {
		t.Error("empty list is an error")
	}
	if l.Error() != "no errors" {
		t.Errorf("empty: %q", l.Error())
	}
	l = append(l, &Error{Msg: "first"})
	if l.Error() != "first" {
		t.Errorf("one: %q", l.Error())
	}
	l = append(l, &Error{Msg: "second"})
	if !strings.Contains(l.Error(), "1 more") {
		t.Errorf("two: %q", l.Error())
	}
}

func TestEmitterErrorSticky(t *testing.T) {
	e := NewEmitter(failingWriter{})
	e.Println("x")
	if e.Err() == nil {
		t.Fatal("write error lost")
	}
	e.Printf("more %d", 1) // must not panic
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) {
	return 0, errWrite
}

var errWrite = &Error{Msg: "write failed"}

package sema

import (
	"fmt"
	"io"
)

// Emitter is the sink output actions write to. It tracks the first write
// error so actions can ignore write failures and the generator reports
// one error at the end.
type Emitter struct {
	w   io.Writer
	err error
}

// NewEmitter returns an Emitter writing to w.
func NewEmitter(w io.Writer) *Emitter { return &Emitter{w: w} }

// Printf writes formatted output.
func (e *Emitter) Printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// Println writes a line.
func (e *Emitter) Println(args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintln(e.w, args...)
}

// Err returns the first write error, if any.
func (e *Emitter) Err() error { return e.err }

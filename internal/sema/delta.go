package sema

import (
	"reflect"
	"sort"

	"nmsl/internal/ast"
	"nmsl/internal/parser"
	"nmsl/internal/token"
)

// Spec diffing for incremental re-checking. DiffSpecs compares two linked
// specifications declaration by declaration and names the ones that
// differ semantically; the consistency checker turns the result into a
// ModelDelta and re-verifies only the references those declarations can
// influence. Equality deliberately ignores source positions and the
// parse-tree back-pointers, so reformatting or reordering a file without
// changing meaning yields an empty delta.

// SpecDelta names the declarations that differ between two specifications
// (added, removed, or changed, in sorted order per kind).
type SpecDelta struct {
	Types     []string
	Processes []string
	Systems   []string
	Domains   []string
	// ExtChanged reports a difference in the extension clause store.
	ExtChanged bool
}

// Empty reports whether the two specifications were semantically
// identical.
func (d *SpecDelta) Empty() bool {
	return len(d.Types) == 0 && len(d.Processes) == 0 &&
		len(d.Systems) == 0 && len(d.Domains) == 0 && !d.ExtChanged
}

// DeclDelta splits one declaration kind's differences by direction:
// names present only in the new spec, only in the old, or in both but
// semantically different. Each list is sorted.
type DeclDelta struct {
	Added   []string
	Removed []string
	Changed []string
}

// All merges the three directions into one sorted name list (the
// SpecDelta shape).
func (d *DeclDelta) All() []string {
	if len(d.Added)+len(d.Removed)+len(d.Changed) == 0 {
		return nil
	}
	out := make([]string, 0, len(d.Added)+len(d.Removed)+len(d.Changed))
	out = append(out, d.Added...)
	out = append(out, d.Removed...)
	out = append(out, d.Changed...)
	sort.Strings(out)
	return out
}

// Empty reports whether the kind had no differences.
func (d *DeclDelta) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 && len(d.Changed) == 0
}

// DetailedDelta is SpecDelta with direction: per declaration kind,
// which names were added, removed, or changed. Change-contract
// reporting and the CLIs use it to describe an edit; the consistency
// layer's ModelDelta only needs the merged lists.
type DetailedDelta struct {
	Types     DeclDelta
	Processes DeclDelta
	Systems   DeclDelta
	Domains   DeclDelta
	// ExtChanged reports a difference in the extension clause store.
	ExtChanged bool
}

// Empty reports whether the two specifications were semantically
// identical.
func (d *DetailedDelta) Empty() bool {
	return d.Types.Empty() && d.Processes.Empty() &&
		d.Systems.Empty() && d.Domains.Empty() && !d.ExtChanged
}

// DiffSpecs compares two specifications and returns the changed
// declaration names per kind. Either argument may be nil, in which case
// every declaration of the other is reported.
func DiffSpecs(old, new *ast.Spec) *SpecDelta {
	dd := DiffSpecsDetailed(old, new)
	return &SpecDelta{
		Types:      dd.Types.All(),
		Processes:  dd.Processes.All(),
		Systems:    dd.Systems.All(),
		Domains:    dd.Domains.All(),
		ExtChanged: dd.ExtChanged,
	}
}

// DiffSpecsDetailed compares two specifications and returns the
// differing declaration names per kind, split by direction. Either
// argument may be nil, in which case every declaration of the other is
// reported (as added or removed).
func DiffSpecsDetailed(old, new *ast.Spec) *DetailedDelta {
	d := &DetailedDelta{}
	if old == new {
		return d // same spec object: nothing can differ
	}
	if old == nil {
		old = ast.NewSpec()
	}
	if new == nil {
		new = ast.NewSpec()
	}
	d.Types = diffMap(old.Types, new.Types)
	d.Processes = diffMap(old.Processes, new.Processes)
	d.Systems = diffMap(old.Systems, new.Systems)
	d.Domains = diffMap(old.Domains, new.Domains)
	d.ExtChanged = !declEqual(reflect.ValueOf(old.Ext), reflect.ValueOf(new.Ext))
	return d
}

// diffMap classifies the names present in exactly one map or bound to
// semantically different declarations.
func diffMap[T any](old, new map[string]*T) DeclDelta {
	var d DeclDelta
	for name, ov := range old {
		nv, ok := new[name]
		switch {
		case !ok:
			d.Removed = append(d.Removed, name)
		// Shared declaration pointers (a spec diffed against an edited
		// copy of itself) are equal without walking.
		case ov != nv && !declEqual(reflect.ValueOf(ov), reflect.ValueOf(nv)):
			d.Changed = append(d.Changed, name)
		}
	}
	for name := range new {
		if _, ok := old[name]; !ok {
			d.Added = append(d.Added, name)
		}
	}
	sort.Strings(d.Added)
	sort.Strings(d.Removed)
	sort.Strings(d.Changed)
	return d
}

var (
	posType  = reflect.TypeOf(token.Pos{})
	declType = reflect.TypeOf((*parser.Decl)(nil))
)

// declEqual is reflect.DeepEqual restricted to declaration content:
// token.Pos values and *parser.Decl back-pointers compare equal
// regardless of value, so position-only differences (reformatting,
// reordering files) do not register as changes. visited guards against
// cycles through pointer pairs, mirroring DeepEqual. The cycle map is
// allocated lazily, on the first distinct pointer pair — a 10k-domain
// diff walks hundreds of thousands of declaration pairs, and most
// comparisons (equal scalars, shared pointers) never need it.
func declEqual(a, b reflect.Value) bool {
	var seen map[[2]uintptr]bool
	return declEqualSeen(a, b, &seen)
}

func declEqualSeen(a, b reflect.Value, seen *map[[2]uintptr]bool) bool {
	if !a.IsValid() || !b.IsValid() {
		return a.IsValid() == b.IsValid()
	}
	if a.Type() != b.Type() {
		return false
	}
	if a.Type() == posType || a.Type() == declType {
		return true
	}
	switch a.Kind() {
	case reflect.Pointer:
		if a.IsNil() || b.IsNil() {
			return a.IsNil() == b.IsNil()
		}
		if a.Pointer() == b.Pointer() {
			return true
		}
		key := [2]uintptr{a.Pointer(), b.Pointer()}
		if *seen == nil {
			*seen = make(map[[2]uintptr]bool, 8)
		}
		if (*seen)[key] {
			return true
		}
		(*seen)[key] = true
		return declEqualSeen(a.Elem(), b.Elem(), seen)
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			if !declEqualSeen(a.Field(i), b.Field(i), seen) {
				return false
			}
		}
		return true
	case reflect.Slice, reflect.Array:
		// nil and empty slices compare equal: the distinction carries no
		// declaration semantics.
		if a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if !declEqualSeen(a.Index(i), b.Index(i), seen) {
				return false
			}
		}
		return true
	case reflect.Map:
		if a.Len() != b.Len() {
			return false
		}
		iter := a.MapRange()
		for iter.Next() {
			bv := b.MapIndex(iter.Key())
			if !bv.IsValid() || !declEqualSeen(iter.Value(), bv, seen) {
				return false
			}
		}
		return true
	case reflect.Interface:
		if a.IsNil() || b.IsNil() {
			return a.IsNil() == b.IsNil()
		}
		return declEqualSeen(a.Elem(), b.Elem(), seen)
	default:
		return a.Interface() == b.Interface()
	}
}

package sema

import (
	"reflect"
	"sort"

	"nmsl/internal/ast"
	"nmsl/internal/parser"
	"nmsl/internal/token"
)

// Spec diffing for incremental re-checking. DiffSpecs compares two linked
// specifications declaration by declaration and names the ones that
// differ semantically; the consistency checker turns the result into a
// ModelDelta and re-verifies only the references those declarations can
// influence. Equality deliberately ignores source positions and the
// parse-tree back-pointers, so reformatting or reordering a file without
// changing meaning yields an empty delta.

// SpecDelta names the declarations that differ between two specifications
// (added, removed, or changed, in sorted order per kind).
type SpecDelta struct {
	Types     []string
	Processes []string
	Systems   []string
	Domains   []string
	// ExtChanged reports a difference in the extension clause store.
	ExtChanged bool
}

// Empty reports whether the two specifications were semantically
// identical.
func (d *SpecDelta) Empty() bool {
	return len(d.Types) == 0 && len(d.Processes) == 0 &&
		len(d.Systems) == 0 && len(d.Domains) == 0 && !d.ExtChanged
}

// DiffSpecs compares two specifications and returns the changed
// declaration names per kind. Either argument may be nil, in which case
// every declaration of the other is reported.
func DiffSpecs(old, new *ast.Spec) *SpecDelta {
	d := &SpecDelta{}
	if old == new {
		return d // same spec object: nothing can differ
	}
	if old == nil {
		old = ast.NewSpec()
	}
	if new == nil {
		new = ast.NewSpec()
	}
	d.Types = diffMap(old.Types, new.Types)
	d.Processes = diffMap(old.Processes, new.Processes)
	d.Systems = diffMap(old.Systems, new.Systems)
	d.Domains = diffMap(old.Domains, new.Domains)
	d.ExtChanged = !declEqual(reflect.ValueOf(old.Ext), reflect.ValueOf(new.Ext))
	return d
}

// diffMap returns the sorted names present in exactly one map or bound to
// semantically different declarations.
func diffMap[T any](old, new map[string]*T) []string {
	var out []string
	for name, ov := range old {
		nv, ok := new[name]
		// Shared declaration pointers (a spec diffed against an edited
		// copy of itself) are equal without walking.
		if !ok || (ov != nv && !declEqual(reflect.ValueOf(ov), reflect.ValueOf(nv))) {
			out = append(out, name)
		}
	}
	for name := range new {
		if _, ok := old[name]; !ok {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

var (
	posType  = reflect.TypeOf(token.Pos{})
	declType = reflect.TypeOf((*parser.Decl)(nil))
)

// declEqual is reflect.DeepEqual restricted to declaration content:
// token.Pos values and *parser.Decl back-pointers compare equal
// regardless of value, so position-only differences (reformatting,
// reordering files) do not register as changes. visited guards against
// cycles through pointer pairs, mirroring DeepEqual. The cycle map is
// allocated lazily, on the first distinct pointer pair — a 10k-domain
// diff walks hundreds of thousands of declaration pairs, and most
// comparisons (equal scalars, shared pointers) never need it.
func declEqual(a, b reflect.Value) bool {
	var seen map[[2]uintptr]bool
	return declEqualSeen(a, b, &seen)
}

func declEqualSeen(a, b reflect.Value, seen *map[[2]uintptr]bool) bool {
	if !a.IsValid() || !b.IsValid() {
		return a.IsValid() == b.IsValid()
	}
	if a.Type() != b.Type() {
		return false
	}
	if a.Type() == posType || a.Type() == declType {
		return true
	}
	switch a.Kind() {
	case reflect.Pointer:
		if a.IsNil() || b.IsNil() {
			return a.IsNil() == b.IsNil()
		}
		if a.Pointer() == b.Pointer() {
			return true
		}
		key := [2]uintptr{a.Pointer(), b.Pointer()}
		if *seen == nil {
			*seen = make(map[[2]uintptr]bool, 8)
		}
		if (*seen)[key] {
			return true
		}
		(*seen)[key] = true
		return declEqualSeen(a.Elem(), b.Elem(), seen)
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			if !declEqualSeen(a.Field(i), b.Field(i), seen) {
				return false
			}
		}
		return true
	case reflect.Slice, reflect.Array:
		// nil and empty slices compare equal: the distinction carries no
		// declaration semantics.
		if a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if !declEqualSeen(a.Index(i), b.Index(i), seen) {
				return false
			}
		}
		return true
	case reflect.Map:
		if a.Len() != b.Len() {
			return false
		}
		iter := a.MapRange()
		for iter.Next() {
			bv := b.MapIndex(iter.Key())
			if !bv.IsValid() || !declEqualSeen(iter.Value(), bv, seen) {
				return false
			}
		}
		return true
	case reflect.Interface:
		if a.IsNil() || b.IsNil() {
			return a.IsNil() == b.IsNil()
		}
		return declEqualSeen(a.Elem(), b.Elem(), seen)
	default:
		return a.Interface() == b.Interface()
	}
}

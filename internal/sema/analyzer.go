package sema

import (
	"fmt"
	"io"
	"sort"

	"nmsl/internal/ast"
	"nmsl/internal/parser"
	"nmsl/internal/token"
)

// Analyzer drives the second compiler pass: it walks parsed declarations,
// dispatches generic actions through the keyword tables, builds the typed
// ast.Spec, and finally resolves cross-declaration references.
type Analyzer struct {
	tables *Tables
	spec   *ast.Spec
	files  []*parser.File
	errs   ErrorList
	// pendingDomainRefs defers export-target domain checks until all
	// domains are declared.
	pendingDomainRefs []domainRef
}

// NewAnalyzer returns an Analyzer with the basic-language tables
// installed.
func NewAnalyzer() *Analyzer {
	return &Analyzer{tables: NewTables(), spec: ast.NewSpec()}
}

// Tables exposes the keyword/action tables so extensions can prepend
// entries before analysis.
func (a *Analyzer) Tables() *Tables { return a.tables }

// Spec returns the specification model built so far.
func (a *Analyzer) Spec() *ast.Spec { return a.spec }

func (a *Analyzer) errorf(pos token.Pos, format string, args ...any) {
	a.errs = append(a.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// AnalyzeFile runs the generic actions over every declaration in the
// file, accumulating the typed model and semantic errors.
func (a *Analyzer) AnalyzeFile(f *parser.File) {
	a.files = append(a.files, f)
	for _, d := range f.Decls {
		a.analyzeDecl(d)
	}
}

func (a *Analyzer) analyzeDecl(d *parser.Decl) {
	res := a.tables.ResolveDecl(d.Type)
	if !res.Known() {
		a.errorf(d.Pos, "unknown declaration type %q (expected type, process, system, domain or an extension-defined declaration)", d.Type)
		return
	}
	ctx := &DeclContext{Spec: a.spec, Decl: d, a: a}
	if res.Generic.Begin != nil {
		if err := res.Generic.Begin(ctx); err != nil {
			a.errorf(d.Pos, "%s", err)
			return
		}
	}
	for _, c := range d.Clauses {
		a.analyzeClause(ctx, res, c)
	}
	if res.Generic.End != nil {
		if err := res.Generic.End(ctx); err != nil {
			a.errorf(d.Pos, "%s", err)
		}
	}
}

func (a *Analyzer) analyzeClause(ctx *DeclContext, declRes DeclResolution, c *parser.Clause) {
	kw := c.Keyword()
	cres := a.tables.ResolveClause(ctx.Decl.Type, kw)
	if !cres.Known() || cres.Generic == nil {
		if declRes.Fallback != nil {
			cctx := &ClauseContext{DeclContext: ctx, Clause: c, Subs: SplitClause(c, nil)}
			if err := declRes.Fallback(cctx); err != nil {
				a.errorf(c.Pos, "%s", err)
			}
			return
		}
		if !cres.Known() {
			a.errorf(c.Pos, "unknown clause keyword %q in %s specification", kw, ctx.Decl.Type)
			return
		}
	}
	cctx := &ClauseContext{DeclContext: ctx, Clause: c, Subs: SplitClause(c, cres.SubKeywords)}
	if cres.Generic != nil {
		if err := cres.Generic(cctx); err != nil {
			a.errorf(c.Pos, "%s", err)
		}
	}
}

// Finish runs cross-declaration resolution (the link step) and returns
// the completed specification together with all accumulated semantic
// errors.
func (a *Analyzer) Finish() (*ast.Spec, error) {
	a.link()
	return a.spec, a.errs.Err()
}

// link resolves names across declarations: type references, MIB paths,
// process instantiations, query targets, export target domains and
// domain membership. The paper's compiler performs these checks in its
// second pass via the symbol table.
func (a *Analyzer) link() {
	s := a.spec
	a.linkTypes()
	a.linkProcesses()
	a.linkSystems()
	a.linkDomains()
	_ = s
}

func (a *Analyzer) linkTypes() {
	for _, name := range a.spec.TypeNames() {
		ts := a.spec.Types[name]
		if ts.Body == nil {
			continue
		}
		for _, ref := range ts.Body.Refs(nil) {
			if _, ok := a.spec.Types[ref]; !ok {
				a.errorf(ts.Decl.Pos, "type %s references undeclared type %s", name, ref)
			}
		}
	}
}

// resolveMIBPath checks that a dotted MIB name resolves in the tree.
func (a *Analyzer) resolveMIBPath(pos token.Pos, path, context string) {
	if a.spec.MIB.LookupSuffix(path) == nil {
		a.errorf(pos, "%s: MIB name %q does not resolve", context, path)
	}
}

func (a *Analyzer) linkProcesses() {
	for _, name := range a.spec.ProcessNames() {
		ps := a.spec.Processes[name]
		for _, v := range ps.Supports {
			a.resolveMIBPath(ps.Decl.Pos, v, fmt.Sprintf("process %s supports", name))
		}
		for _, ex := range ps.Exports {
			for _, v := range ex.Vars {
				a.resolveMIBPath(ex.Pos, v, fmt.Sprintf("process %s exports", name))
			}
			// export target domains are resolved in linkDomains (all
			// domains must be declared by then), recorded here:
			a.requireDomain(ex.Pos, ex.To, fmt.Sprintf("process %s exports to", name))
		}
		for _, q := range ps.Queries {
			a.linkQuery(ps, q)
		}
	}
}

func (a *Analyzer) linkQuery(ps *ast.ProcessSpec, q ast.Query) {
	// Target: a declared process, or a Process-typed formal parameter.
	if p := ps.Param(q.Target); p != nil {
		if p.Type != "Process" {
			a.errorf(q.Pos, "process %s queries parameter %s of type %s (must be Process)", ps.Name, q.Target, p.Type)
		}
	} else if _, ok := a.spec.Processes[q.Target]; !ok {
		a.errorf(q.Pos, "process %s queries undeclared process %q", ps.Name, q.Target)
	}
	for _, r := range q.Requests {
		a.resolveMIBPath(q.Pos, r, fmt.Sprintf("process %s requests", ps.Name))
	}
	for _, sel := range q.Using {
		a.resolveMIBPath(sel.Pos, sel.Var, fmt.Sprintf("process %s using", ps.Name))
		// the selection value may be a formal parameter; words that are
		// not parameters must be literals or MIB names.
		if sel.Value.Kind == parser.Word {
			if ps.Param(sel.Value.Text) == nil && a.spec.MIB.LookupSuffix(sel.Value.Text) == nil {
				a.errorf(sel.Pos, "process %s: selection value %q is neither a parameter nor a MIB name", ps.Name, sel.Value.Text)
			}
		}
	}
}

func (a *Analyzer) requireDomain(pos token.Pos, name, context string) {
	a.pendingDomainRefs = append(a.pendingDomainRefs, domainRef{pos, name, context})
}

type domainRef struct {
	pos     token.Pos
	name    string
	context string
}

func (a *Analyzer) linkSystems() {
	for _, name := range a.spec.SystemNames() {
		ss := a.spec.Systems[name]
		for _, v := range ss.Supports {
			a.resolveMIBPath(ss.Decl.Pos, v, fmt.Sprintf("system %s supports", name))
		}
		for _, pi := range ss.Processes {
			a.linkInstance(pi, "system "+name)
		}
	}
}

func (a *Analyzer) linkInstance(pi ast.ProcInstance, where string) {
	ps, ok := a.spec.Processes[pi.Name]
	if !ok {
		a.errorf(pi.Pos, "%s instantiates undeclared process %q", where, pi.Name)
		return
	}
	if len(pi.Args) != len(ps.Params) {
		a.errorf(pi.Pos, "%s instantiates %s with %d arguments, want %d", where, pi.Name, len(pi.Args), len(ps.Params))
	}
}

func (a *Analyzer) linkDomains() {
	for _, name := range a.spec.DomainNames() {
		ds := a.spec.Domains[name]
		for _, sys := range ds.Systems {
			if _, ok := a.spec.Systems[sys]; !ok {
				a.errorf(ds.Decl.Pos, "domain %s lists undeclared system %q", name, sys)
			}
		}
		for _, sub := range ds.Subdomains {
			if _, ok := a.spec.Domains[sub]; !ok {
				a.errorf(ds.Decl.Pos, "domain %s lists undeclared subdomain %q", name, sub)
			}
		}
		for _, pi := range ds.Processes {
			a.linkInstance(pi, "domain "+name)
		}
		for _, ex := range ds.Exports {
			for _, v := range ex.Vars {
				a.resolveMIBPath(ex.Pos, v, fmt.Sprintf("domain %s exports", name))
			}
			a.requireDomain(ex.Pos, ex.To, fmt.Sprintf("domain %s exports to", name))
		}
	}
	for _, ref := range a.pendingDomainRefs {
		if _, ok := a.spec.Domains[ref.name]; !ok {
			a.errorf(ref.pos, "%s undeclared domain %q", ref.context, ref.name)
		}
	}
	a.checkDomainCycles()
}

// checkDomainCycles rejects cyclic subdomain nesting: domains may nest
// and overlap (section 4.1.5), but a containment cycle would make the
// consistency model's transitive containment diverge.
func (a *Analyzer) checkDomainCycles() {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var stack []string
	var visit func(name string) bool
	visit = func(name string) bool {
		switch color[name] {
		case gray:
			return false
		case black:
			return true
		}
		color[name] = gray
		stack = append(stack, name)
		d := a.spec.Domains[name]
		if d != nil {
			for _, sub := range d.Subdomains {
				if _, ok := a.spec.Domains[sub]; !ok {
					continue
				}
				if !visit(sub) {
					return false
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[name] = black
		return true
	}
	names := a.spec.DomainNames()
	sort.Strings(names)
	for _, name := range names {
		if color[name] == white && !visit(name) {
			a.errorf(a.spec.Domains[name].Decl.Pos, "domain nesting cycle involving %q", stack[len(stack)-1])
			return
		}
	}
}

// Generate runs the output-specific actions tagged tag over every
// analyzed declaration, in input order, writing to w. It implements the
// code-generation side of section 6.2: each run of the compiler executes
// the generic actions (done in AnalyzeFile) and one type of output
// specific action.
func (a *Analyzer) Generate(tag string, w io.Writer) error {
	e := NewEmitter(w)
	for _, f := range a.files {
		for _, d := range f.Decls {
			res := a.tables.ResolveDecl(d.Type)
			if !res.Known() {
				continue
			}
			ctx := &DeclContext{Spec: a.spec, Decl: d, a: a}
			if act := res.Output(tag); act != nil {
				if err := act(ctx, e); err != nil {
					return fmt.Errorf("%s output for %s %s: %w", tag, d.Type, d.Name, err)
				}
			}
			for _, c := range d.Clauses {
				cres := a.tables.ResolveClause(d.Type, c.Keyword())
				if !cres.Known() {
					continue
				}
				if act := cres.Output(tag); act != nil {
					cctx := &ClauseContext{DeclContext: ctx, Clause: c, Subs: SplitClause(c, cres.SubKeywords)}
					if err := act(cctx, e); err != nil {
						return fmt.Errorf("%s output for %s %s clause %s: %w", tag, d.Type, d.Name, c.Keyword(), err)
					}
				}
			}
		}
	}
	return e.Err()
}

package sema

import (
	"fmt"

	"nmsl/internal/asn1"
	"nmsl/internal/ast"
	"nmsl/internal/mib"
	"nmsl/internal/parser"
)

// registerBasic installs the basic NMSL language (sections 4.1.2-4.1.5)
// into the tables: the four declaration types and their clauses, each
// with its generic action. Output-specific actions are registered by the
// packages that own the output formats (internal/consistency,
// internal/configgen) and by extensions.
func registerBasic(t *Tables) {
	registerTypeDecl(t)
	registerProcessDecl(t)
	registerSystemDecl(t)
	registerDomainDecl(t)
}

// parseVList parses a comma-separated list of names (VList in Figure
// 4.3): words (possibly dotted) or quoted strings.
func parseVList(items []parser.Item) ([]string, error) {
	var out []string
	expectName := true
	for _, it := range items {
		if it.Kind == parser.Op && it.Text == "," {
			if expectName {
				return nil, fmt.Errorf("misplaced \",\" in name list")
			}
			expectName = true
			continue
		}
		if !expectName {
			return nil, fmt.Errorf("missing \",\" before %s in name list", it.String())
		}
		switch it.Kind {
		case parser.Word, parser.Str:
			out = append(out, it.Text)
		default:
			return nil, fmt.Errorf("expected a name in list, found %s", it.String())
		}
		expectName = false
	}
	if expectName && len(out) > 0 {
		return nil, fmt.Errorf("trailing \",\" in name list")
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty name list")
	}
	return out, nil
}

// parseSingleWord expects exactly one word (or string) argument.
func parseSingleWord(sub *Subclause) (string, error) {
	if len(sub.Items) != 1 {
		return "", fmt.Errorf("%q takes exactly one argument", sub.Keyword)
	}
	it := sub.Items[0]
	if it.Kind != parser.Word && it.Kind != parser.Str {
		return "", fmt.Errorf("%q argument must be a name, found %s", sub.Keyword, it.String())
	}
	return it.Text, nil
}

// parseAccessSub parses an "access" subclause into a mib.Access.
func parseAccessSub(sub *Subclause) (mib.Access, error) {
	word, err := parseSingleWord(sub)
	if err != nil {
		return mib.AccessUnspecified, err
	}
	return mib.ParseAccess(word)
}

// parseExport assembles an ast.Export from an exports clause's
// subclauses.
func parseExport(ctx *ClauseContext) (ast.Export, bool) {
	return ParseExport(ctx)
}

// ParseExport assembles an ast.Export from an exports clause split into
// subclauses. It is exported for output actions (e.g. configuration
// generators) that render exports clauses during Generate, when the
// typed model object is not attached to the context.
func ParseExport(ctx *ClauseContext) (ast.Export, bool) {
	ex := ast.Export{Pos: ctx.Clause.Pos, Access: mib.AccessUnspecified}
	lead := ctx.Subs[0]
	vars, err := parseVList(lead.Items)
	if err != nil {
		ctx.Errorf(lead.Pos, "exports: %s", err)
		return ex, false
	}
	ex.Vars = vars
	ok := true
	sawTo := false
	for _, sub := range ctx.Subs[1:] {
		switch sub.Keyword {
		case "to":
			name, err := parseSingleWord(&sub)
			if err != nil {
				ctx.Errorf(sub.Pos, "exports: %s", err)
				ok = false
				continue
			}
			ex.To = name
			sawTo = true
		case "access":
			acc, err := parseAccessSub(&sub)
			if err != nil {
				ctx.Errorf(sub.Pos, "exports: %s", err)
				ok = false
				continue
			}
			ex.Access = acc
		case "frequency":
			fr, err := ast.ParseFreq(sub.Items)
			if err != nil {
				ctx.Errorf(sub.Pos, "exports: %s", err)
				ok = false
				continue
			}
			ex.Freq = fr
		default:
			ctx.Errorf(sub.Pos, "exports: unknown subclause %q", sub.Keyword)
			ok = false
		}
	}
	if !sawTo {
		ctx.Errorf(lead.Pos, "exports requires a \"to\" subclause naming the importing domain")
		ok = false
	}
	if ex.Access == mib.AccessUnspecified {
		// An export without an explicit mode grants read-only access, the
		// safe default for management data.
		ex.Access = mib.AccessReadOnly
	}
	return ex, ok
}

// parseInstance parses a process instantiation: a name optionally
// followed by an argument group (Figure 4.5: ProcInvoke).
func parseInstance(sub *Subclause) (ast.ProcInstance, error) {
	if len(sub.Items) == 0 {
		return ast.ProcInstance{}, fmt.Errorf("process instantiation missing process name")
	}
	name := sub.Items[0]
	if name.Kind != parser.Word && name.Kind != parser.Str {
		return ast.ProcInstance{}, fmt.Errorf("expected process name, found %s", name.String())
	}
	pi := ast.ProcInstance{Name: name.Text, Pos: name.Pos}
	rest := sub.Items[1:]
	if len(rest) == 0 {
		return pi, nil
	}
	if len(rest) != 1 || rest[0].Kind != parser.Group || rest[0].Delim != '(' {
		return ast.ProcInstance{}, fmt.Errorf("unexpected %s after process name %s", rest[0].String(), pi.Name)
	}
	for _, it := range rest[0].Items {
		switch it.Kind {
		case parser.Op:
			if it.Text != "," {
				return ast.ProcInstance{}, fmt.Errorf("unexpected %q in argument list of %s", it.Text, pi.Name)
			}
		case parser.Star:
			pi.Args = append(pi.Args, ast.Arg{Kind: ast.ArgStar, Text: "*", Pos: it.Pos})
		case parser.Str:
			pi.Args = append(pi.Args, ast.Arg{Kind: ast.ArgString, Text: it.Text, Pos: it.Pos})
		case parser.Word:
			pi.Args = append(pi.Args, ast.Arg{Kind: ast.ArgWord, Text: it.Text, Pos: it.Pos})
		case parser.Int:
			pi.Args = append(pi.Args, ast.Arg{Kind: ast.ArgNumber, Text: it.Text, Num: float64(it.IntVal), Pos: it.Pos})
		case parser.Float:
			pi.Args = append(pi.Args, ast.Arg{Kind: ast.ArgNumber, Text: it.Text, Num: it.FloatVal, Pos: it.Pos})
		default:
			return ast.ProcInstance{}, fmt.Errorf("bad argument %s for %s", it.String(), pi.Name)
		}
	}
	return pi, nil
}

// ---- type declarations (section 4.1.2, Figure 4.1) ----

func registerTypeDecl(t *Tables) {
	t.AppendDecl(&DeclEntry{
		Type: "type",
		Generic: DeclAction{
			Begin: func(ctx *DeclContext) error {
				if len(ctx.Decl.Params) > 0 {
					return fmt.Errorf("type %s: type specifications take no parameters", ctx.Decl.Name)
				}
				ctx.Value = &ast.TypeSpec{Name: ctx.Decl.Name, Decl: ctx.Decl, Access: mib.AccessUnspecified}
				return nil
			},
			End: func(ctx *DeclContext) error {
				ts := ctx.Value.(*ast.TypeSpec)
				if ts.Body == nil {
					return fmt.Errorf("type %s has no ASN.1 body", ts.Name)
				}
				if _, dup := ctx.Spec.Types[ts.Name]; dup {
					return fmt.Errorf("type %s declared more than once", ts.Name)
				}
				ctx.Spec.Types[ts.Name] = ts
				return nil
			},
		},
		// The ASN.1 body clause begins with a type name (SEQUENCE,
		// INTEGER, ...), not a fixed keyword, so it arrives here.
		Fallback: func(ctx *ClauseContext) error {
			ts := ctx.Value.(*ast.TypeSpec)
			if ts.Body != nil {
				return fmt.Errorf("type %s has more than one ASN.1 body", ts.Name)
			}
			body, err := asn1.ParseItems(ctx.Clause.Items)
			if err != nil {
				return err
			}
			ts.Body = body
			return nil
		},
	})
	t.AppendClause(&ClauseEntry{
		DeclType: "type",
		Keyword:  "access",
		Generic: func(ctx *ClauseContext) error {
			ts := ctx.Value.(*ast.TypeSpec)
			if ts.Body == nil {
				return fmt.Errorf("type %s: access clause must follow the ASN.1 body", ts.Name)
			}
			if ts.Access != mib.AccessUnspecified {
				return fmt.Errorf("type %s has more than one access clause", ts.Name)
			}
			acc, err := parseAccessSub(&ctx.Subs[0])
			if err != nil {
				return err
			}
			ts.Access = acc
			return nil
		},
	})
}

// ---- process declarations (section 4.1.3, Figure 4.3) ----

func registerProcessDecl(t *Tables) {
	t.AppendDecl(&DeclEntry{
		Type: "process",
		Generic: DeclAction{
			Begin: func(ctx *DeclContext) error {
				ps := &ast.ProcessSpec{Name: ctx.Decl.Name, Decl: ctx.Decl}
				for _, p := range ctx.Decl.Params {
					if p.Name == "" || p.Type == "" {
						return fmt.Errorf("process %s: parameters must be declared as Name: Type", ps.Name)
					}
					if ps.Param(p.Name) != nil {
						return fmt.Errorf("process %s: duplicate parameter %s", ps.Name, p.Name)
					}
					ps.Params = append(ps.Params, ast.ProcParam{Name: p.Name, Type: p.Type, Pos: p.Pos})
				}
				ctx.Value = ps
				return nil
			},
			End: func(ctx *DeclContext) error {
				ps := ctx.Value.(*ast.ProcessSpec)
				if _, dup := ctx.Spec.Processes[ps.Name]; dup {
					return fmt.Errorf("process %s declared more than once", ps.Name)
				}
				ctx.Spec.Processes[ps.Name] = ps
				return nil
			},
		},
	})
	t.AppendClause(&ClauseEntry{
		DeclType: "process",
		Keyword:  "supports",
		Generic: func(ctx *ClauseContext) error {
			ps := ctx.Value.(*ast.ProcessSpec)
			vars, err := parseVList(ctx.Subs[0].Items)
			if err != nil {
				return fmt.Errorf("supports: %s", err)
			}
			ps.Supports = append(ps.Supports, vars...)
			return nil
		},
	})
	t.AppendClause(&ClauseEntry{
		DeclType:    "process",
		Keyword:     "exports",
		SubKeywords: []string{"to", "access", "frequency"},
		Generic: func(ctx *ClauseContext) error {
			ps := ctx.Value.(*ast.ProcessSpec)
			ex, ok := parseExport(ctx)
			if ok {
				ps.Exports = append(ps.Exports, ex)
			}
			return nil
		},
	})
	t.AppendClause(&ClauseEntry{
		DeclType:    "process",
		Keyword:     "queries",
		SubKeywords: []string{"requests", "using", "access", "frequency"},
		Generic: func(ctx *ClauseContext) error {
			ps := ctx.Value.(*ast.ProcessSpec)
			q, ok := parseQuery(ctx)
			if ok {
				ps.Queries = append(ps.Queries, q)
			}
			return nil
		},
	})
}

// parseQuery assembles an ast.Query from a queries clause. Figure 4.3
// shows retrieval queries; an optional "access" subclause expresses the
// modification and remote-execution forms the full language supports.
func parseQuery(ctx *ClauseContext) (ast.Query, bool) {
	q := ast.Query{Pos: ctx.Clause.Pos, Access: mib.AccessReadOnly}
	target, err := parseSingleWord(&ctx.Subs[0])
	if err != nil {
		ctx.Errorf(ctx.Subs[0].Pos, "queries: %s", err)
		return q, false
	}
	q.Target = target
	ok := true
	for _, sub := range ctx.Subs[1:] {
		switch sub.Keyword {
		case "requests":
			vars, err := parseVList(sub.Items)
			if err != nil {
				ctx.Errorf(sub.Pos, "requests: %s", err)
				ok = false
				continue
			}
			q.Requests = append(q.Requests, vars...)
		case "using":
			sels, err := parseUsing(sub.Items)
			if err != nil {
				ctx.Errorf(sub.Pos, "using: %s", err)
				ok = false
				continue
			}
			q.Using = append(q.Using, sels...)
		case "access":
			acc, err := parseAccessSub(&sub)
			if err != nil {
				ctx.Errorf(sub.Pos, "queries: %s", err)
				ok = false
				continue
			}
			q.Access = acc
		case "frequency":
			fr, err := ast.ParseFreq(sub.Items)
			if err != nil {
				ctx.Errorf(sub.Pos, "queries: %s", err)
				ok = false
				continue
			}
			q.Freq = fr
		default:
			ctx.Errorf(sub.Pos, "queries: unknown subclause %q", sub.Keyword)
			ok = false
		}
	}
	if len(q.Requests) == 0 {
		ctx.Errorf(q.Pos, "queries requires a \"requests\" subclause")
		ok = false
	}
	return q, ok
}

// parseUsing parses the AsgnVList of Figure 4.3: "var := value" bindings
// separated by commas.
func parseUsing(items []parser.Item) ([]ast.Selection, error) {
	var out []ast.Selection
	i := 0
	for i < len(items) {
		if items[i].Kind == parser.Op && items[i].Text == "," {
			i++
			continue
		}
		if items[i].Kind != parser.Word {
			return nil, fmt.Errorf("expected variable name, found %s", items[i].String())
		}
		if i+1 >= len(items) || items[i+1].Kind != parser.Op || items[i+1].Text != ":=" {
			return nil, fmt.Errorf("expected \":=\" after %s", items[i].Text)
		}
		if i+2 >= len(items) {
			return nil, fmt.Errorf("missing value after %s :=", items[i].Text)
		}
		out = append(out, ast.Selection{Var: items[i].Text, Value: items[i+2], Pos: items[i].Pos})
		i += 3
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty using clause")
	}
	return out, nil
}

// ---- system declarations (section 4.1.4, Figure 4.5) ----

func registerSystemDecl(t *Tables) {
	t.AppendDecl(&DeclEntry{
		Type: "system",
		Generic: DeclAction{
			Begin: func(ctx *DeclContext) error {
				if len(ctx.Decl.Params) > 0 {
					return fmt.Errorf("system %s: system specifications take no parameters", ctx.Decl.Name)
				}
				ctx.Value = &ast.SystemSpec{Name: ctx.Decl.Name, Decl: ctx.Decl}
				return nil
			},
			End: func(ctx *DeclContext) error {
				ss := ctx.Value.(*ast.SystemSpec)
				if ss.CPU == "" {
					return fmt.Errorf("system %s missing cpu clause", ss.Name)
				}
				if len(ss.Interfaces) == 0 {
					return fmt.Errorf("system %s has no interface clauses", ss.Name)
				}
				if _, dup := ctx.Spec.Systems[ss.Name]; dup {
					return fmt.Errorf("system %s declared more than once", ss.Name)
				}
				ctx.Spec.Systems[ss.Name] = ss
				return nil
			},
		},
	})
	t.AppendClause(&ClauseEntry{
		DeclType: "system",
		Keyword:  "cpu",
		Generic: func(ctx *ClauseContext) error {
			ss := ctx.Value.(*ast.SystemSpec)
			if ss.CPU != "" {
				return fmt.Errorf("system %s has more than one cpu clause", ss.Name)
			}
			word, err := parseSingleWord(&ctx.Subs[0])
			if err != nil {
				return fmt.Errorf("cpu: %s", err)
			}
			ss.CPU = word
			return nil
		},
	})
	t.AppendClause(&ClauseEntry{
		DeclType:    "system",
		Keyword:     "interface",
		SubKeywords: []string{"net", "protocols", "type", "speed"},
		Generic: func(ctx *ClauseContext) error {
			ss := ctx.Value.(*ast.SystemSpec)
			ifc, ok := parseInterface(ctx)
			if ok {
				for _, prev := range ss.Interfaces {
					if prev.Name == ifc.Name {
						return fmt.Errorf("system %s: duplicate interface %s", ss.Name, ifc.Name)
					}
				}
				ss.Interfaces = append(ss.Interfaces, ifc)
			}
			return nil
		},
	})
	t.AppendClause(&ClauseEntry{
		DeclType:    "system",
		Keyword:     "opsys",
		SubKeywords: []string{"version"},
		Generic: func(ctx *ClauseContext) error {
			ss := ctx.Value.(*ast.SystemSpec)
			if ss.OpSys != "" {
				return fmt.Errorf("system %s has more than one opsys clause", ss.Name)
			}
			name, err := parseSingleWord(&ctx.Subs[0])
			if err != nil {
				return fmt.Errorf("opsys: %s", err)
			}
			ss.OpSys = name
			for _, sub := range ctx.Subs[1:] {
				if sub.Keyword != "version" {
					return fmt.Errorf("opsys: unknown subclause %q", sub.Keyword)
				}
				if len(sub.Items) != 1 {
					return fmt.Errorf("opsys version takes exactly one argument")
				}
				ss.OpSysVersion = sub.Items[0].Text
			}
			return nil
		},
	})
	t.AppendClause(&ClauseEntry{
		DeclType: "system",
		Keyword:  "supports",
		Generic: func(ctx *ClauseContext) error {
			ss := ctx.Value.(*ast.SystemSpec)
			vars, err := parseVList(ctx.Subs[0].Items)
			if err != nil {
				return fmt.Errorf("supports: %s", err)
			}
			ss.Supports = append(ss.Supports, vars...)
			return nil
		},
	})
	t.AppendClause(&ClauseEntry{
		DeclType: "system",
		Keyword:  "process",
		Generic: func(ctx *ClauseContext) error {
			ss := ctx.Value.(*ast.SystemSpec)
			pi, err := parseInstance(&ctx.Subs[0])
			if err != nil {
				return err
			}
			ss.Processes = append(ss.Processes, pi)
			return nil
		},
	})
}

// parseInterface assembles an ast.Interface from an interface clause
// (Figure 4.5/4.6: "interface ie0 net wisc-research type ethernet-csmacd
// speed 10000000 bps").
func parseInterface(ctx *ClauseContext) (ast.Interface, bool) {
	var ifc ast.Interface
	name, err := parseSingleWord(&ctx.Subs[0])
	if err != nil {
		ctx.Errorf(ctx.Subs[0].Pos, "interface: %s", err)
		return ifc, false
	}
	ifc.Name = name
	ifc.Pos = ctx.Clause.Pos
	ok := true
	for _, sub := range ctx.Subs[1:] {
		switch sub.Keyword {
		case "net":
			n, err := parseSingleWord(&sub)
			if err != nil {
				ctx.Errorf(sub.Pos, "interface net: %s", err)
				ok = false
				continue
			}
			ifc.Net = n
		case "protocols":
			list, err := parseVList(sub.Items)
			if err != nil {
				ctx.Errorf(sub.Pos, "interface protocols: %s", err)
				ok = false
				continue
			}
			ifc.Protocols = list
		case "type":
			ty, err := parseSingleWord(&sub)
			if err != nil {
				ctx.Errorf(sub.Pos, "interface type: %s", err)
				ok = false
				continue
			}
			ifc.Type = ty
		case "speed":
			// speed Integer "bps"
			if len(sub.Items) != 2 || sub.Items[0].Kind != parser.Int || !sub.Items[1].IsWord("bps") {
				ctx.Errorf(sub.Pos, "interface speed must be \"speed <integer> bps\"")
				ok = false
				continue
			}
			ifc.SpeedBPS = sub.Items[0].IntVal
		default:
			ctx.Errorf(sub.Pos, "interface: unknown subclause %q", sub.Keyword)
			ok = false
		}
	}
	if ifc.Net == "" {
		ctx.Errorf(ctx.Subs[0].Pos, "interface %s missing net subclause", ifc.Name)
		ok = false
	}
	return ifc, ok
}

// ---- domain declarations (section 4.1.5, Figure 4.7) ----

func registerDomainDecl(t *Tables) {
	t.AppendDecl(&DeclEntry{
		Type: "domain",
		Generic: DeclAction{
			Begin: func(ctx *DeclContext) error {
				if len(ctx.Decl.Params) > 0 {
					return fmt.Errorf("domain %s: domain specifications take no parameters", ctx.Decl.Name)
				}
				ctx.Value = &ast.DomainSpec{Name: ctx.Decl.Name, Decl: ctx.Decl}
				return nil
			},
			End: func(ctx *DeclContext) error {
				ds := ctx.Value.(*ast.DomainSpec)
				if _, dup := ctx.Spec.Domains[ds.Name]; dup {
					return fmt.Errorf("domain %s declared more than once", ds.Name)
				}
				ctx.Spec.Domains[ds.Name] = ds
				return nil
			},
		},
	})
	t.AppendClause(&ClauseEntry{
		DeclType: "domain",
		Keyword:  "system",
		Generic: func(ctx *ClauseContext) error {
			ds := ctx.Value.(*ast.DomainSpec)
			name, err := parseSingleWord(&ctx.Subs[0])
			if err != nil {
				return fmt.Errorf("system member: %s", err)
			}
			ds.Systems = append(ds.Systems, name)
			return nil
		},
	})
	t.AppendClause(&ClauseEntry{
		DeclType: "domain",
		Keyword:  "domain",
		Generic: func(ctx *ClauseContext) error {
			ds := ctx.Value.(*ast.DomainSpec)
			name, err := parseSingleWord(&ctx.Subs[0])
			if err != nil {
				return fmt.Errorf("subdomain member: %s", err)
			}
			if name == ds.Name {
				return fmt.Errorf("domain %s cannot contain itself", ds.Name)
			}
			ds.Subdomains = append(ds.Subdomains, name)
			return nil
		},
	})
	t.AppendClause(&ClauseEntry{
		DeclType: "domain",
		Keyword:  "process",
		Generic: func(ctx *ClauseContext) error {
			ds := ctx.Value.(*ast.DomainSpec)
			pi, err := parseInstance(&ctx.Subs[0])
			if err != nil {
				return err
			}
			ds.Processes = append(ds.Processes, pi)
			return nil
		},
	})
	t.AppendClause(&ClauseEntry{
		DeclType:    "domain",
		Keyword:     "exports",
		SubKeywords: []string{"to", "access", "frequency"},
		Generic: func(ctx *ClauseContext) error {
			ds := ctx.Value.(*ast.DomainSpec)
			ex, ok := parseExport(ctx)
			if ok {
				ds.Exports = append(ds.Exports, ex)
			}
			return nil
		},
	})
}

package extension

import (
	"strings"
	"testing"

	"nmsl/internal/ast"
	"nmsl/internal/parser"
	"nmsl/internal/sema"
)

// ProxyExt is the proxy-management extension used across tests and the
// extension example: it adds a "proxies" clause to process specifications
// (paper section 3.1 motivates proxy network management; the basic
// language has no clause for it, which is exactly what the extension
// mechanism is for).
const ProxyExt = `
extension proxyClause ::=
    clause proxies;
    decltype process;
    subkeywords via, frequency;
    semantics namelist;
    output consistency "proxy_for(@declname@,@name0@).";
end extension proxyClause.
`

// proxySpec uses the extended clause.
const proxySpec = `
process lanBridgeProxy ::=
    supports mgmt.mib.interfaces;
    proxies bridge7 via lanpoll
        frequency >= 30 seconds;
end process lanBridgeProxy.
`

func analyzeWith(t *testing.T, exts []*Extension, src string) (*ast.Spec, *sema.Analyzer, error) {
	t.Helper()
	a := sema.NewAnalyzer()
	InstallAll(a.Tables(), exts)
	f, err := parser.Parse("test", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	a.AnalyzeFile(f)
	spec, err := a.Finish()
	return spec, a, err
}

func TestParseExtensionFile(t *testing.T) {
	exts, err := ParseFile("ext", ProxyExt)
	if err != nil {
		t.Fatal(err)
	}
	if len(exts) != 1 {
		t.Fatalf("exts: %+v", exts)
	}
	e := exts[0]
	if e.Name != "proxyClause" || e.Keyword != "proxies" || e.DeclType != "process" {
		t.Fatalf("ext: %+v", e)
	}
	if len(e.SubKeywords) != 2 || e.Sem != SemNameList {
		t.Fatalf("ext: %+v", e)
	}
	if e.Outputs["consistency"] == "" {
		t.Fatal("missing output template")
	}
}

func TestExtensionExtendsLanguage(t *testing.T) {
	exts, err := ParseFile("ext", ProxyExt)
	if err != nil {
		t.Fatal(err)
	}
	spec, _, err := analyzeWith(t, exts, proxySpec)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	key := ast.ExtKey("process", "lanBridgeProxy")
	clauses := spec.Ext[key]
	if len(clauses) != 1 {
		t.Fatalf("ext clauses: %+v", spec.Ext)
	}
	ec := clauses[0]
	if ec.Keyword != "proxies" || len(ec.Names) != 1 || ec.Names[0] != "bridge7" {
		t.Fatalf("clause: %+v", ec)
	}
	if ec.Freq.Op != ">=" || ec.Freq.Seconds != 30 {
		t.Fatalf("freq: %+v", ec.Freq)
	}
	// the via subclause is preserved raw
	if len(ec.Raw) != 1 || ec.Raw[0].Text != "lanpoll" {
		t.Fatalf("raw: %+v", ec.Raw)
	}
}

func TestWithoutExtensionClauseIsError(t *testing.T) {
	_, _, err := analyzeWith(t, nil, proxySpec)
	if err == nil || !strings.Contains(err.Error(), "unknown clause keyword") {
		t.Fatalf("err = %v", err)
	}
}

func TestExtensionOutputTemplate(t *testing.T) {
	exts, err := ParseFile("ext", ProxyExt)
	if err != nil {
		t.Fatal(err)
	}
	_, a, err := analyzeWith(t, exts, proxySpec)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := a.Generate("consistency", &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "proxy_for(lanBridgeProxy,bridge7).") {
		t.Fatalf("output: %q", b.String())
	}
}

// The paper's override example: an extension that specifies the keyword
// "queries" (a basic keyword) with only an action tagged DavesSnmpd must
// not override the basic generic action for queries — but must provide
// the new output.
func TestOverrideOnlyOutputAction(t *testing.T) {
	const overrideExt = `
extension davesOutput ::=
    clause queries;
    decltype process;
    semantics none;
    output DavesSnmpd "query @declname@ -> @name0@";
end extension davesOutput.
`
	exts, err := ParseFile("ext", overrideExt)
	if err != nil {
		t.Fatal(err)
	}
	src := `
process agent ::=
    supports mgmt.mib;
end process agent.
process poller ::=
    queries agent requests mgmt.mib.system frequency infrequent;
end process poller.
`
	spec, a, err := analyzeWith(t, exts, src)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	// Basic generic action still ran: the query is in the typed model.
	if len(spec.Processes["poller"].Queries) != 1 {
		t.Fatal("basic generic action was overridden — paper forbids this")
	}
	// New output action works.
	var b strings.Builder
	if err := a.Generate("DavesSnmpd", &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "query poller -> agent") {
		t.Fatalf("output: %q", b.String())
	}
}

// An extension can override an existing output tag for a basic clause;
// the first (prepended) entry wins.
func TestOverrideExistingOutputTag(t *testing.T) {
	const ext1 = `
extension first ::=
    clause supports;
    decltype process;
    semantics none;
    output mytag "first @declname@";
end extension first.
`
	const ext2 = `
extension second ::=
    clause supports;
    decltype process;
    semantics none;
    output mytag "second @declname@";
end extension second.
`
	e1, err := ParseFile("e1", ext1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := ParseFile("e2", ext2)
	if err != nil {
		t.Fatal(err)
	}
	// InstallAll keeps earlier extensions ahead: e1 overrides e2.
	_, a, err := analyzeWith(t, append(e1, e2...), "process p ::= supports mgmt.mib; end process p.")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := a.Generate("mytag", &b); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(b.String()); got != "first p" {
		t.Fatalf("output %q", got)
	}
}

func TestExtensionFrequencySemantics(t *testing.T) {
	const ext = `
extension heartbeat ::=
    clause heartbeat;
    decltype system;
    semantics frequency;
end extension heartbeat.
`
	exts, err := ParseFile("e", ext)
	if err != nil {
		t.Fatal(err)
	}
	src := `
system "h" ::=
    cpu sparc;
    interface ie0 net lab type ethernet-csmacd speed 10 bps;
    heartbeat >= 2 minutes;
end system "h".
`
	spec, _, err := analyzeWith(t, exts, src)
	if err != nil {
		t.Fatal(err)
	}
	ec := spec.Ext[ast.ExtKey("system", "h")]
	if len(ec) != 1 || ec[0].Freq.Seconds != 120 {
		t.Fatalf("ext: %+v", ec)
	}
}

func TestExtensionRawSemantics(t *testing.T) {
	const ext = `
extension anything ::=
    clause anything;
    semantics raw;
end extension anything.
`
	exts, err := ParseFile("e", ext)
	if err != nil {
		t.Fatal(err)
	}
	spec, _, err := analyzeWith(t, exts, `domain d ::= anything 1 2 wild "things"; end domain d.`)
	if err != nil {
		t.Fatal(err)
	}
	ec := spec.Ext[ast.ExtKey("domain", "d")]
	if len(ec) != 1 || len(ec[0].Raw) != 4 {
		t.Fatalf("ext: %+v", ec)
	}
}

func TestExtensionErrors(t *testing.T) {
	bad := []string{
		`extension e ::= semantics namelist; end extension e.`,        // missing clause
		`extension e ::= clause c; semantics bogus; end extension e.`, // bad semantics
		`extension e ::= clause c; output onlytag; end extension e.`,  // malformed output
		`extension e ::= clause c; mystery x; end extension e.`,       // unknown ext clause
		`notanextension e ::= clause c; end notanextension e.`,        // wrong decl type
		`extension e ::= clause c d; end extension e.`,                // too many args
		`extension e ::= clause c; decltype; end extension e.`,        // missing decltype arg
		`extension e ::= clause c; subkeywords 5; end extension e.`,   // bad subkeyword
	}
	for _, src := range bad {
		if _, err := ParseFile("bad", src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestExtensionNameListErrors(t *testing.T) {
	exts, err := ParseFile("e", ProxyExt)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = analyzeWith(t, exts, `process p ::= proxies 5; end process p.`)
	if err == nil || !strings.Contains(err.Error(), "expected a name") {
		t.Fatalf("err = %v", err)
	}
	_, _, err = analyzeWith(t, exts, `process p ::= proxies b frequency nonsense; end process p.`)
	if err == nil {
		t.Fatal("bad frequency accepted")
	}
}

// Package extension implements the NMSL extension language (paper
// section 6.3, NMSL/EXT in Figure 3.1).
//
// "The extension input to the NMSL Compiler is a simple list of typed
// keywords and actions. ... The compiler creates an internal, extended
// keyword table and an extended action table from the extension language
// input when it begins execution." Extension entries are prepended to the
// basic tables, so:
//
//   - a new keyword extends the language;
//   - an existing keyword overrides it — but "only the actions specified
//     in the extension override the basic actions": an extension that
//     provides just an output action tagged DavesSnmpd for the basic
//     "queries" clause replaces only that output action, never the basic
//     generic processing.
//
// Extension files are themselves parsed with the generalized grammar
// (they have the same header/clauses/trailer shape as any NMSL
// specification), which is what preserves "the look and feel of the basic
// language". An extension declaration looks like:
//
//	extension proxies ::=
//	    clause proxies;                 -- the keyword being defined
//	    decltype process;               -- where it may appear
//	    subkeywords via;                -- nested subclause keywords
//	    semantics namelist;             -- generic action vocabulary
//	    output consistency "proxy_for(@decl@, @name0@).";
//	end extension proxies.
//
// The semantics vocabulary covers the clause shapes the basic language
// uses: "namelist" (a comma-separated name list), "frequency" (a Freq),
// and "raw" (items preserved verbatim). Captured data lands in the
// specification's extension side store (ast.Spec.Ext). Output actions are
// line templates with @decl@, @declname@, @keyword@, @nameN@ and @names@
// placeholders.
package extension

import (
	"fmt"
	"strconv"
	"strings"

	"nmsl/internal/ast"
	"nmsl/internal/parser"
	"nmsl/internal/sema"
)

// Semantics names the generic-action vocabulary for extension clauses.
type Semantics string

// Supported semantics kinds.
const (
	// SemNameList validates a comma-separated list of names.
	SemNameList Semantics = "namelist"
	// SemFrequency validates a frequency clause body.
	SemFrequency Semantics = "frequency"
	// SemRaw accepts anything and preserves the items.
	SemRaw Semantics = "raw"
	// SemNone installs no generic action: the basic language's generic
	// action (if any) keeps running. Used to override only outputs.
	SemNone Semantics = "none"
)

// Extension is one parsed extension declaration: a keyword with its
// placement, semantics and output templates.
type Extension struct {
	// Name is the extension declaration's name.
	Name string
	// Keyword is the clause keyword being defined or overridden.
	Keyword string
	// DeclType restricts the clause to one declaration type ("" = any).
	DeclType string
	// SubKeywords begin nested subclauses.
	SubKeywords []string
	// Sem selects the generic action.
	Sem Semantics
	// Outputs maps output tags to line templates.
	Outputs map[string]string
}

// ParseFile parses NMSL/EXT source into extensions. Every declaration
// must have type "extension".
func ParseFile(name, src string) ([]*Extension, error) {
	f, err := parser.Parse(name, src)
	if err != nil {
		return nil, err
	}
	var out []*Extension
	for _, d := range f.Decls {
		e, err := fromDecl(d)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

func fromDecl(d *parser.Decl) (*Extension, error) {
	if d.Type != "extension" {
		return nil, fmt.Errorf("%s: expected an extension declaration, found %q", d.Pos, d.Type)
	}
	e := &Extension{Name: d.Name, Sem: SemNone, Outputs: map[string]string{}}
	for _, c := range d.Clauses {
		items := c.Items
		if len(items) == 0 || items[0].Kind != parser.Word {
			return nil, fmt.Errorf("%s: malformed extension clause", c.Pos)
		}
		kw, args := items[0].Text, items[1:]
		switch kw {
		case "clause":
			if len(args) != 1 || args[0].Kind != parser.Word {
				return nil, fmt.Errorf("%s: \"clause\" takes one keyword", c.Pos)
			}
			e.Keyword = args[0].Text
		case "decltype":
			if len(args) != 1 || args[0].Kind != parser.Word {
				return nil, fmt.Errorf("%s: \"decltype\" takes one declaration type", c.Pos)
			}
			e.DeclType = args[0].Text
		case "subkeywords":
			for _, a := range args {
				if a.Kind == parser.Op && a.Text == "," {
					continue
				}
				if a.Kind != parser.Word {
					return nil, fmt.Errorf("%s: bad subkeyword %s", c.Pos, a.String())
				}
				e.SubKeywords = append(e.SubKeywords, a.Text)
			}
		case "semantics":
			if len(args) != 1 || args[0].Kind != parser.Word {
				return nil, fmt.Errorf("%s: \"semantics\" takes one kind", c.Pos)
			}
			switch Semantics(args[0].Text) {
			case SemNameList, SemFrequency, SemRaw, SemNone:
				e.Sem = Semantics(args[0].Text)
			default:
				return nil, fmt.Errorf("%s: unknown semantics %q (want namelist, frequency, raw or none)", c.Pos, args[0].Text)
			}
		case "output":
			if len(args) != 2 || args[0].Kind != parser.Word || args[1].Kind != parser.Str {
				return nil, fmt.Errorf("%s: \"output\" takes a tag and a template string", c.Pos)
			}
			e.Outputs[args[0].Text] = args[1].Text
		default:
			return nil, fmt.Errorf("%s: unknown extension clause %q", c.Pos, kw)
		}
	}
	if e.Keyword == "" {
		return nil, fmt.Errorf("%s: extension %s missing \"clause\" keyword", d.Pos, e.Name)
	}
	return e, nil
}

// Install prepends the extension's keyword and action entries to the
// compiler tables, exactly the prepend-and-override mechanism of section
// 6.3.
func (e *Extension) Install(t *sema.Tables) {
	entry := &sema.ClauseEntry{
		DeclType:    e.DeclType,
		Keyword:     e.Keyword,
		SubKeywords: e.SubKeywords,
	}
	if e.Sem != SemNone {
		entry.Generic = e.genericAction()
	}
	if len(e.Outputs) > 0 {
		entry.Outputs = map[string]func(*sema.ClauseContext, *sema.Emitter) error{}
		for tag, tmpl := range e.Outputs {
			entry.Outputs[tag] = e.outputAction(tmpl)
		}
	}
	t.PrependClause(entry)
}

// InstallAll installs every extension in order; later files still end up
// ahead of the basic tables, and earlier extensions ahead of later ones
// per the paper ("prepending allows extensions to override").
func InstallAll(t *sema.Tables, exts []*Extension) {
	for i := len(exts) - 1; i >= 0; i-- {
		exts[i].Install(t)
	}
}

// capture parses clause items per the extension's semantics.
func (e *Extension) capture(ctx *sema.ClauseContext) (ast.ExtClause, error) {
	ec := ast.ExtClause{
		DeclType: ctx.Decl.Type,
		DeclName: ctx.Decl.Name,
		Keyword:  e.Keyword,
		Pos:      ctx.Clause.Pos,
	}
	lead := ctx.Subs[0].Items
	switch e.Sem {
	case SemNameList:
		var names []string
		for _, it := range lead {
			if it.Kind == parser.Op && it.Text == "," {
				continue
			}
			if it.Kind != parser.Word && it.Kind != parser.Str {
				return ec, fmt.Errorf("%s clause: expected a name, found %s", e.Keyword, it.String())
			}
			names = append(names, it.Text)
		}
		if len(names) == 0 {
			return ec, fmt.Errorf("%s clause: empty name list", e.Keyword)
		}
		ec.Names = names
	case SemFrequency:
		fr, err := ast.ParseFreq(lead)
		if err != nil {
			return ec, fmt.Errorf("%s clause: %s", e.Keyword, err)
		}
		ec.Freq = fr
	case SemRaw:
		ec.Raw = append(ec.Raw, ctx.Clause.Items[1:]...)
	}
	// nested subclauses are preserved raw for all semantics; frequency
	// subclauses additionally parse into the Freq slot so extensions can
	// carry timing characteristics like the basic language does.
	for _, sub := range ctx.Subs[1:] {
		if sub.Keyword == "frequency" {
			fr, err := ast.ParseFreq(sub.Items)
			if err != nil {
				return ec, fmt.Errorf("%s clause frequency: %s", e.Keyword, err)
			}
			ec.Freq = fr
			continue
		}
		ec.Raw = append(ec.Raw, sub.Items...)
	}
	return ec, nil
}

func (e *Extension) genericAction() func(*sema.ClauseContext) error {
	return func(ctx *sema.ClauseContext) error {
		ec, err := e.capture(ctx)
		if err != nil {
			return err
		}
		key := ast.ExtKey(ctx.Decl.Type, ctx.Decl.Name)
		ctx.Spec.Ext[key] = append(ctx.Spec.Ext[key], ec)
		return nil
	}
}

// outputAction renders the template once per clause. Placeholders:
// @decl@ (decl type), @declname@, @keyword@, @names@ (comma-joined
// word/string arguments of the clause's lead subclause), @nameN@ (the
// N-th of those).
func (e *Extension) outputAction(tmpl string) func(*sema.ClauseContext, *sema.Emitter) error {
	return func(ctx *sema.ClauseContext, em *sema.Emitter) error {
		var names []string
		for _, it := range ctx.Subs[0].Items {
			if it.Kind == parser.Word || it.Kind == parser.Str {
				names = append(names, it.Text)
			}
		}
		line := tmpl
		line = strings.ReplaceAll(line, "@decl@", ctx.Decl.Type)
		line = strings.ReplaceAll(line, "@declname@", ctx.Decl.Name)
		line = strings.ReplaceAll(line, "@keyword@", e.Keyword)
		line = strings.ReplaceAll(line, "@names@", strings.Join(names, ","))
		for i, n := range names {
			line = strings.ReplaceAll(line, "@name"+strconv.Itoa(i)+"@", n)
		}
		em.Println(line)
		return nil
	}
}

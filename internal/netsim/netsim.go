// Package netsim generates synthetic internets as NMSL specifications.
//
// The paper sets explicit scale goals (section 1): "on the order of
// 100,000 networks (and gateways), 100,000 to a million hosts, and 10,000
// administrative domains", and requires that NMSL "be easy to evaluate,
// to allow quick answers to questions of consistency and to scale"
// (section 3.1). There is no quantitative evaluation in the paper, so
// this generator provides the workloads that turn those goals into
// measurable experiments (EXPERIMENTS.md T-SCALE-1/2/3).
//
// The generated topology is a ring of administrative domains under one
// "public" super-domain (optionally nested deeper). Each domain owns a
// per-domain agent process type instantiated on every member system, and
// one poller application that queries the next domain's agents. This
// keeps references and permissions linear in the topology size, which is
// the realistic regime — every poller names its target process type, as
// a real configuration would; late-bound "*" targets are available
// separately because they are the quadratic worst case.
package netsim

import (
	"fmt"
	"math/rand"
	"strings"

	"nmsl/internal/ast"
	"nmsl/internal/consistency"
	"nmsl/internal/parser"
	"nmsl/internal/sema"
)

// Params sizes a synthetic internet.
type Params struct {
	// Domains is the number of leaf administrative domains (>= 1).
	Domains int
	// SystemsPerDomain is the number of network elements per domain.
	SystemsPerDomain int
	// NestingDepth adds layers of super-domains in a fan-out-of-10 tree
	// between "public" and the leaf domains (0 = leaves directly under
	// public).
	NestingDepth int
	// InconsistencyRate is the fraction of pollers that query faster
	// than permitted (frequency violations to be found by the checker).
	InconsistencyRate float64
	// StarTargets makes pollers use late-bound "*" targets instead of
	// naming the peer agent type (the quadratic worst case).
	StarTargets bool
	// RecursiveChains makes each domain's agent itself query the next
	// domain's agent (the paper's recursive queries, section 3.1: "one
	// server queries another server to process the query"), forming a
	// ring of server-to-server references.
	RecursiveChains bool
	// Seed drives deterministic generation.
	Seed int64
}

func (p *Params) fill() {
	if p.Domains <= 0 {
		p.Domains = 1
	}
	if p.SystemsPerDomain <= 0 {
		p.SystemsPerDomain = 1
	}
}

// ExpectedViolations returns how many frequency violations the generator
// injected for the given parameters (each bad poller produces one
// violation per target system).
func ExpectedViolations(p Params) int {
	p.fill()
	rng := rand.New(rand.NewSource(p.Seed))
	bad := 0
	for d := 0; d < p.Domains; d++ {
		if rng.Float64() < p.InconsistencyRate {
			bad++
		}
	}
	return bad * p.SystemsPerDomain
}

// Source renders the synthetic internet as NMSL specification text.
func Source(p Params) string {
	p.fill()
	rng := rand.New(rand.NewSource(p.Seed))
	var b strings.Builder
	b.Grow(p.Domains * p.SystemsPerDomain * 256)

	for d := 0; d < p.Domains; d++ {
		peer := (d + 1) % p.Domains
		badPoller := rng.Float64() < p.InconsistencyRate
		pollFreq := ">= 5 minutes"
		if badPoller {
			pollFreq = ">= 1 minutes"
		}
		target := fmt.Sprintf("agentT%d", peer)
		targetDecl := ""
		if p.StarTargets {
			target = "Tgt"
			targetDecl = "(Tgt: Process)"
		}
		recursive := ""
		if p.RecursiveChains {
			// the agent resolves some queries by querying its peer: a
			// server-to-server reference with its own frequency
			recursive = fmt.Sprintf("\n    queries agentT%d\n        requests mgmt.mib.system.sysDescr\n        frequency >= 5 minutes;", peer)
		}
		fmt.Fprintf(&b, `
process agentT%d ::=
    supports mgmt.mib.system, mgmt.mib.ip;
    exports mgmt.mib.system to "public"
        access ReadOnly
        frequency >= 5 minutes;%s
end process agentT%d.

process pollerT%d%s ::=
    queries %s
        requests mgmt.mib.system.sysDescr
        frequency %s;
end process pollerT%d.
`, d, recursive, d, d, targetDecl, target, pollFreq, d)

		for s := 0; s < p.SystemsPerDomain; s++ {
			fmt.Fprintf(&b, `
system "sys-%d-%d" ::=
    cpu sparc;
    interface ie0 net lan-%d type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib.system, mgmt.mib.ip;
    process agentT%d;
end system "sys-%d-%d".
`, d, s, d, d, d, s)
		}

		fmt.Fprintf(&b, "\ndomain dom%d ::=\n", d)
		for s := 0; s < p.SystemsPerDomain; s++ {
			fmt.Fprintf(&b, "    system \"sys-%d-%d\";\n", d, s)
		}
		if p.StarTargets {
			fmt.Fprintf(&b, "    process pollerT%d(*);\n", d)
		} else {
			fmt.Fprintf(&b, "    process pollerT%d;\n", d)
		}
		fmt.Fprintf(&b, "end domain dom%d.\n", d)
	}

	writeDomainTree(&b, p)
	return b.String()
}

// writeDomainTree emits the super-domain layers and the public root.
func writeDomainTree(b *strings.Builder, p Params) {
	children := make([]string, p.Domains)
	for d := 0; d < p.Domains; d++ {
		children[d] = fmt.Sprintf("dom%d", d)
	}
	level := 0
	for p.NestingDepth > level && len(children) > 1 {
		var parents []string
		for i := 0; i < len(children); i += 10 {
			end := i + 10
			if end > len(children) {
				end = len(children)
			}
			name := fmt.Sprintf("super%d-%d", level, i/10)
			fmt.Fprintf(b, "\ndomain %s ::=\n", name)
			for _, c := range children[i:end] {
				fmt.Fprintf(b, "    domain %s;\n", c)
			}
			fmt.Fprintf(b, "end domain %s.\n", name)
			parents = append(parents, name)
		}
		children = parents
		level++
	}
	fmt.Fprintf(b, "\ndomain public ::=\n")
	for _, c := range children {
		fmt.Fprintf(b, "    domain %s;\n", c)
	}
	fmt.Fprintf(b, "end domain public.\n")
}

// Build parses and analyzes the synthetic internet into a typed
// specification.
func Build(p Params) (*ast.Spec, error) {
	src := Source(p)
	f, err := parser.Parse("netsim", src)
	if err != nil {
		return nil, fmt.Errorf("netsim: generated source failed to parse: %w", err)
	}
	a := sema.NewAnalyzer()
	a.AnalyzeFile(f)
	spec, err := a.Finish()
	if err != nil {
		return nil, fmt.Errorf("netsim: generated source failed analysis: %w", err)
	}
	return spec, nil
}

// Model builds the consistency model of the synthetic internet.
func Model(p Params) (*consistency.Model, error) {
	spec, err := Build(p)
	if err != nil {
		return nil, err
	}
	return consistency.BuildModel(spec), nil
}

package netsim

import (
	"testing"
	"testing/quick"

	"nmsl/internal/consistency"
)

func TestGenerateSmallConsistent(t *testing.T) {
	m, err := Model(Params{Domains: 4, SystemsPerDomain: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 4 domains x 3 agent instances + 4 pollers
	if len(m.Instances) != 16 {
		t.Fatalf("instances %d", len(m.Instances))
	}
	// refs: each poller targets the peer type's 3 instances
	if len(m.Refs) != 12 {
		t.Fatalf("refs %d", len(m.Refs))
	}
	rep := consistency.Check(m)
	if !rep.Consistent() {
		t.Fatalf("generated internet inconsistent:\n%s", rep)
	}
}

func TestInjectedInconsistencies(t *testing.T) {
	p := Params{Domains: 10, SystemsPerDomain: 2, InconsistencyRate: 0.5, Seed: 7}
	want := ExpectedViolations(p)
	if want == 0 {
		t.Fatal("seed produced no violations; pick another")
	}
	m, err := Model(p)
	if err != nil {
		t.Fatal(err)
	}
	rep := consistency.Check(m)
	got := len(rep.ByKind(consistency.KindFrequencyViolation))
	if got != want {
		t.Fatalf("got %d frequency violations, want %d:\n%s", got, want, rep)
	}
	// no other violation kinds
	if len(rep.Violations) != got {
		t.Fatalf("unexpected violation kinds:\n%s", rep)
	}
}

func TestNestingDepth(t *testing.T) {
	m, err := Model(Params{Domains: 25, SystemsPerDomain: 1, NestingDepth: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// super domains exist: 25 leaves -> 3 supers at level 0 -> 1 at
	// level 1 -> public
	found := 0
	for _, name := range m.Spec.DomainNames() {
		if len(name) > 5 && name[:5] == "super" {
			found++
		}
	}
	if found != 4 {
		t.Fatalf("super domains: %d (%v)", found, m.Spec.DomainNames())
	}
	rep := consistency.Check(m)
	if !rep.Consistent() {
		t.Fatalf("nested internet inconsistent:\n%s", rep)
	}
}

func TestStarTargets(t *testing.T) {
	m, err := Model(Params{Domains: 3, SystemsPerDomain: 2, StarTargets: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// star pollers see every agent instance: 3 pollers x 6 agents
	if len(m.Refs) != 18 {
		t.Fatalf("refs %d", len(m.Refs))
	}
	rep := consistency.Check(m)
	if !rep.Consistent() {
		t.Fatalf("star internet inconsistent:\n%s", rep)
	}
}

func TestDeterministic(t *testing.T) {
	p := Params{Domains: 5, SystemsPerDomain: 2, InconsistencyRate: 0.3, Seed: 42}
	if Source(p) != Source(p) {
		t.Fatal("generation is not deterministic")
	}
}

// Property: every generated internet parses, analyzes, and cross-checks
// identically under the indexed and logic checkers.
func TestGeneratedSpecsCrossValidate(t *testing.T) {
	f := func(seed int64) bool {
		p := Params{
			Domains:           1 + int(seed%5+5)%5 + 1,
			SystemsPerDomain:  1 + int(seed%3+3)%3,
			InconsistencyRate: 0.4,
			Seed:              seed,
		}
		m, err := Model(p)
		if err != nil {
			return false
		}
		a := consistency.Check(m)
		b := consistency.CheckLogic(m)
		if a.Consistent() != b.Consistent() {
			return false
		}
		return len(a.Violations) == len(b.Violations)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestParamsFillDefaults(t *testing.T) {
	m, err := Model(Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Instances) != 2 { // 1 agent + 1 poller
		t.Fatalf("instances %d", len(m.Instances))
	}
}

// Recursive chains (section 3.1): agents themselves query their peer
// agents — server-to-server references — and the internet stays
// consistent because the agents' own exports cover those references.
func TestRecursiveChains(t *testing.T) {
	m, err := Model(Params{Domains: 4, SystemsPerDomain: 2, RecursiveChains: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// pollers: 4 x 2 targets = 8 refs; agents: 8 instances x 2 peer
	// instances = 16 more
	if len(m.Refs) != 24 {
		t.Fatalf("refs %d", len(m.Refs))
	}
	serverToServer := 0
	for _, r := range m.Refs {
		if r.Source.Proc.IsAgent() && r.Target.Proc.IsAgent() {
			serverToServer++
		}
	}
	if serverToServer != 16 {
		t.Fatalf("server-to-server refs %d", serverToServer)
	}
	rep := consistency.Check(m)
	if !rep.Consistent() {
		t.Fatalf("recursive internet inconsistent:\n%s", rep)
	}
	// cross-validate with the logic engine
	rep2 := consistency.CheckLogic(m)
	if !rep2.Consistent() {
		t.Fatalf("logic checker disagrees:\n%s", rep2)
	}
}

package netsim

import (
	"reflect"
	"testing"
)

// Every scenario must cover the requested agent budget (product rounds
// up, never down) at a spread of sizes including the paper's 10k.
func TestScenarioParamsCoverBudget(t *testing.T) {
	for _, name := range Scenarios() {
		for _, agents := range []int{1, 7, 100, 1000, 10000} {
			p, err := ScenarioParams(Scenario(name), agents, 42)
			if err != nil {
				t.Fatalf("ScenarioParams(%s, %d): %v", name, agents, err)
			}
			if got := p.Domains * p.SystemsPerDomain; got < agents {
				t.Errorf("%s/%d: %d domains × %d systems = %d < budget", name, agents, p.Domains, p.SystemsPerDomain, got)
			}
			if p.Seed != 42 {
				t.Errorf("%s/%d: seed not threaded through (got %d)", name, agents, p.Seed)
			}
		}
	}
}

// The same (scenario, agents, seed) triple always yields the same
// Params — and the model built from them generates the same instances.
func TestScenarioParamsDeterministic(t *testing.T) {
	for _, name := range Scenarios() {
		a, err := ScenarioParams(Scenario(name), 64, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := ScenarioParams(Scenario(name), 64, 7)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: params differ across calls: %+v vs %+v", name, a, b)
		}
	}
}

// The presets must stay sane at the full §1 budget: 100k agents, the
// scale the mega-fleet actually hosts. Covering the budget is not
// enough — a preset that rounds 100k up to 180k would silently double
// the fleet's memory bill, so oversizing is bounded too.
func TestScenarioParamsHundredKBudget(t *testing.T) {
	const agents = 100000
	for _, name := range Scenarios() {
		a, err := ScenarioParams(Scenario(name), agents, 9)
		if err != nil {
			t.Fatalf("ScenarioParams(%s, %d): %v", name, agents, err)
		}
		b, _ := ScenarioParams(Scenario(name), agents, 9)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: params differ across calls at 100k: %+v vs %+v", name, a, b)
		}
		got := a.Domains * a.SystemsPerDomain
		if got < agents {
			t.Errorf("%s: %d×%d = %d < 100k budget", name, a.Domains, a.SystemsPerDomain, got)
		}
		// Rounding slack: at most one extra row or column of systems.
		if slack := got - agents; slack > a.Domains+a.SystemsPerDomain {
			t.Errorf("%s: oversized by %d agents (%d×%d for a 100k budget)", name, slack, a.Domains, a.SystemsPerDomain)
		}
	}
}

// The internet preset is §1 verbatim: 50-element networks, so a 100k
// budget spans 2,000 administrative domains — and the generated source
// for the same triple is byte-identical across calls (spot-checked at a
// size small enough for a unit test; the shape is scale-free).
func TestScenarioInternetShape(t *testing.T) {
	p, err := ScenarioParams(ScenarioInternet, 100000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Domains != 2000 || p.SystemsPerDomain != 50 || p.NestingDepth != 2 {
		t.Fatalf("internet at 100k = %d×%d depth %d, want 2000×50 depth 2", p.Domains, p.SystemsPerDomain, p.NestingDepth)
	}
	small, err := ScenarioParams(ScenarioInternet, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if Source(small) != Source(small) {
		t.Error("internet source generation not deterministic")
	}
	m, err := Model(small)
	if err != nil {
		t.Fatalf("internet model: %v", err)
	}
	if len(m.Instances) < 500 {
		t.Errorf("internet/500 built %d instances, want >= 500", len(m.Instances))
	}
}

func TestScenarioParamsUnknownName(t *testing.T) {
	if _, err := ScenarioParams("starlink", 10, 1); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// Scenario shapes are actually distinct: iot is all domains, datacenter
// is few dense pods, isp has more domains than campus at equal budget.
func TestScenarioShapesDiffer(t *testing.T) {
	const agents = 1000
	iot, _ := ScenarioParams(ScenarioIoT, agents, 1)
	dc, _ := ScenarioParams(ScenarioDatacenter, agents, 1)
	campus, _ := ScenarioParams(ScenarioCampus, agents, 1)
	isp, _ := ScenarioParams(ScenarioISP, agents, 1)
	if iot.Domains != agents || iot.SystemsPerDomain != 1 {
		t.Errorf("iot should be one domain per agent, got %d×%d", iot.Domains, iot.SystemsPerDomain)
	}
	if dc.Domains != 8 {
		t.Errorf("datacenter should be 8 pods, got %d", dc.Domains)
	}
	if isp.Domains <= campus.Domains {
		t.Errorf("isp (%d domains) should be broader than campus (%d)", isp.Domains, campus.Domains)
	}
	if !isp.RecursiveChains {
		t.Error("isp should enable recursive chains")
	}
}

package netsim

import (
	"fmt"
	"math"
	"sort"
)

// Scenario is a named topology shape for mega-fleet runs: it maps a
// requested agent count onto Params with a distribution of domains and
// systems characteristic of a real deployment class. The paper's scale
// goals (10,000 administrative domains, ~100,000 elements) are reached
// by picking a scenario and an agent budget, not by hand-tuning five
// flags.
type Scenario string

const (
	// ScenarioCampus is a university-style network: a modest number of
	// departmental domains, each dense with systems, one level of
	// nesting.
	ScenarioCampus Scenario = "campus"
	// ScenarioISP is a provider backbone: many customer domains with a
	// handful of systems each, recursive server-to-server query chains,
	// two levels of nesting.
	ScenarioISP Scenario = "isp"
	// ScenarioDatacenter is a few very dense pods: the smallest domain
	// count with the highest systems-per-domain density.
	ScenarioDatacenter Scenario = "datacenter"
	// ScenarioIoT is a device swarm: one tiny domain per device, the
	// paper's 10,000-administrative-domains regime taken literally.
	ScenarioIoT Scenario = "iot"
	// ScenarioInternet is the paper's §1 internet taken at full size:
	// "100,000 networks (and gateways), 100,000 to a million hosts" —
	// one administrative domain per network of ~50 managed elements,
	// nested two deep. A 100,000-agent budget yields 2,000 domains × 50
	// systems; the million-host regime is the same shape at
	// `-domains 20000 -systems 50` (see cmd/nmslsim).
	ScenarioInternet Scenario = "internet"
)

// Scenarios lists the known scenario names, sorted.
func Scenarios() []string {
	names := []string{
		string(ScenarioCampus),
		string(ScenarioISP),
		string(ScenarioDatacenter),
		string(ScenarioIoT),
		string(ScenarioInternet),
	}
	sort.Strings(names)
	return names
}

// ScenarioParams sizes the named scenario to approximately `agents`
// total agent instances (Domains × SystemsPerDomain; the product is
// rounded up, never down, so a rollout sized for N targets has at least
// N). The same (scenario, agents, seed) triple always yields the same
// Params — determinism is the whole point of a scenario library.
func ScenarioParams(name Scenario, agents int, seed int64) (Params, error) {
	if agents <= 0 {
		agents = 1
	}
	switch name {
	case ScenarioCampus:
		// ~sqrt sizing skewed dense: systems per domain ≈ 4×domains.
		d := int(math.Ceil(math.Sqrt(float64(agents) / 4)))
		if d < 1 {
			d = 1
		}
		return Params{
			Domains:          d,
			SystemsPerDomain: ceilDiv(agents, d),
			NestingDepth:     1,
			Seed:             seed,
		}, nil
	case ScenarioISP:
		// Many thin customer domains: domains ≈ 4×systems, recursive
		// chains between providers.
		d := int(math.Ceil(math.Sqrt(float64(agents) * 4)))
		if d < 1 {
			d = 1
		}
		return Params{
			Domains:          d,
			SystemsPerDomain: ceilDiv(agents, d),
			NestingDepth:     2,
			RecursiveChains:  true,
			Seed:             seed,
		}, nil
	case ScenarioDatacenter:
		// A handful of pods, each very dense; 8 pods covers everything up
		// to warehouse scale.
		d := 8
		if agents < d {
			d = agents
		}
		return Params{
			Domains:          d,
			SystemsPerDomain: ceilDiv(agents, d),
			Seed:             seed,
		}, nil
	case ScenarioInternet:
		// Fixed 50-element networks: the domain count scales with the
		// budget, which is what makes this the §1 preset — at 100k agents
		// the fleet spans 2,000 administrative domains, and the checking
		// side of the same shape is reached directly with
		// `nmslsim -domains 100000 -systems 50` (5M elements, checked
		// without hosting agents).
		const perNetwork = 50
		d := ceilDiv(agents, perNetwork)
		s := perNetwork
		if agents < perNetwork {
			d, s = 1, agents
		}
		return Params{
			Domains:          d,
			SystemsPerDomain: s,
			NestingDepth:     2,
			Seed:             seed,
		}, nil
	case ScenarioIoT:
		// One domain per device: the administrative-domain count IS the
		// agent count.
		return Params{
			Domains:          agents,
			SystemsPerDomain: 1,
			NestingDepth:     1,
			Seed:             seed,
		}, nil
	default:
		return Params{}, fmt.Errorf("netsim: unknown scenario %q (have %v)", name, Scenarios())
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

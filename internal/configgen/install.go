package configgen

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"nmsl/internal/snmp"
)

// InstallFiles writes one configuration file per agent instance into dir,
// in the chosen format ("BartsSnmpd" or "nvp"). This is section 5's file
// transport. It returns the written paths, sorted.
func InstallFiles(dir, format string, configs map[string]*snmp.Config) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for id, cfg := range configs {
		name := sanitizeFilename(id)
		switch format {
		case TagBartsSnmpd:
			name += ".conf"
		case TagNVP:
			name += ".json"
		default:
			return nil, fmt.Errorf("configgen: unknown format %q", format)
		}
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		var werr error
		switch format {
		case TagBartsSnmpd:
			werr = WriteSnmpdConf(f, cfg)
		case TagNVP:
			werr = WriteNVP(f, cfg)
		}
		cerr := f.Close()
		if werr != nil {
			return nil, werr
		}
		if cerr != nil {
			return nil, cerr
		}
		paths = append(paths, path)
	}
	sortStrings(paths)
	return paths, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func sanitizeFilename(id string) string {
	repl := strings.NewReplacer("@", "_at_", "#", "_", "/", "_", ":", "_")
	return repl.Replace(id)
}

// InstallLive ships the configuration to a running agent over the
// management protocol (section 5's preferred transport: "initiating a
// connection to a network management process ... authenticating the
// Configuration Generator as a trusted process, and sending, via the
// normal network management protocol, the configuration information").
func InstallLive(addr, adminCommunity string, cfg *snmp.Config) error {
	client, err := snmp.Dial(addr, adminCommunity)
	if err != nil {
		return err
	}
	defer client.Close()
	return client.InstallConfig(cfg)
}

// InstallLiveContext is InstallLive as a single attempt under a context:
// the client does not retransmit on its own (retries belong to the
// rollout layer, which spaces attempts with backoff and counts them),
// and timeout bounds the wait for the agent's acknowledgment (zero keeps
// the client default).
func InstallLiveContext(ctx context.Context, addr, adminCommunity string, cfg *snmp.Config, timeout time.Duration) error {
	client, err := snmp.Dial(addr, adminCommunity)
	if err != nil {
		return err
	}
	defer client.Close()
	client.SetRetries(0)
	if timeout > 0 {
		client.SetTimeout(timeout)
	}
	return client.InstallConfigContext(ctx, cfg)
}

// FetchLiveContext retrieves an agent's current configuration over the
// management protocol — the read half of the live install path. The
// transactional rollout uses it to capture a pre-image before replacing
// a configuration; the drift reconciler uses it to compare a live
// agent's digest against the model's. timeout bounds each attempt's wait
// (zero keeps the client default); retries is how many times a timed-out
// fetch is retransmitted.
func FetchLiveContext(ctx context.Context, addr, adminCommunity string, timeout time.Duration, retries int) (*snmp.Config, error) {
	client, err := snmp.Dial(addr, adminCommunity)
	if err != nil {
		return nil, err
	}
	defer client.Close()
	client.SetRetries(retries)
	if timeout > 0 {
		client.SetTimeout(timeout)
	}
	return client.FetchConfigContext(ctx)
}

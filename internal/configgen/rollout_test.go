package configgen

import (
	"context"
	"errors"
	"testing"
	"time"

	"nmsl/internal/consistency"
	"nmsl/internal/netsim"
	"nmsl/internal/obs"
	"nmsl/internal/snmp"
)

// startRolloutFleet starts one live agent per generated config and
// returns targets for all of them. faults, when non-nil, supplies a
// per-agent injector.
func startRolloutFleet(t *testing.T, m *consistency.Model, admin string, faults func(i int) *snmp.FaultInjector) []Target {
	t.Helper()
	configs := Generate(m)
	var targets []Target
	i := 0
	for id := range configs {
		store := snmp.NewStore()
		snmp.PopulateFromMIB(store, m.Spec.MIB, "mgmt.mib")
		agent := snmp.NewAgent(store, &snmp.Config{
			Communities:    map[string]*snmp.CommunityConfig{},
			AdminCommunity: admin,
		})
		if faults != nil {
			agent.SetFaultInjector(faults(i))
		}
		addr, err := agent.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { agent.Close() })
		targets = append(targets, Target{InstanceID: id, Addr: addr.String(), AdminCommunity: "adm"})
		i++
	}
	return targets
}

// TestDistributeContextPartialFailure mixes healthy, unreachable and
// unknown targets in one rollout and checks the report separates them.
func TestDistributeContextPartialFailure(t *testing.T) {
	m, err := netsim.Model(netsim.Params{Domains: 2, SystemsPerDomain: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	targets := startRolloutFleet(t, m, "adm", nil)
	healthy := len(targets)
	// port 1: nothing listens, so installs error out after retries
	targets = append(targets, Target{InstanceID: targets[0].InstanceID, Addr: "127.0.0.1:1", AdminCommunity: "adm"})
	// no generated config at all
	targets = append(targets, Target{InstanceID: "ghost@nowhere#0", Addr: "127.0.0.1:1", AdminCommunity: "adm"})

	var streamed []TargetResult
	report, err := DistributeContext(context.Background(), m, targets,
		WithWorkers(4),
		WithRetries(1),
		WithBackoff(time.Millisecond, 2*time.Millisecond),
		WithAttemptTimeout(100*time.Millisecond),
		WithOnResult(func(r TargetResult) { streamed = append(streamed, r) }),
	)
	if err != nil {
		t.Fatalf("uncanceled rollout returned %v", err)
	}
	if report.Installed != healthy || report.Failed != 1 || report.Skipped != 1 || report.Canceled != 0 {
		t.Fatalf("counts: %s", report.Summary())
	}
	if report.OK() {
		t.Fatal("partial failure reported OK")
	}
	if len(streamed) != len(targets) {
		t.Fatalf("streamed %d of %d results", len(streamed), len(targets))
	}
	if len(report.Results) != len(targets) {
		t.Fatalf("results %d", len(report.Results))
	}
	for _, r := range report.Results {
		switch r.Status {
		case StatusInstalled:
			if r.Err != nil || r.Attempts < 1 {
				t.Errorf("installed %s: err=%v attempts=%d", r.Target.InstanceID, r.Err, r.Attempts)
			}
		case StatusFailed:
			if r.Err == nil || r.Attempts != 2 {
				t.Errorf("failed %s: err=%v attempts=%d (want 2: 1 retry)", r.Target.InstanceID, r.Err, r.Attempts)
			}
		case StatusSkipped:
			if r.Err == nil || r.Attempts != 0 {
				t.Errorf("skipped %s: err=%v attempts=%d", r.Target.InstanceID, r.Err, r.Attempts)
			}
		}
	}
}

// TestDistributeContextCancellation cancels a rollout against agents
// that never acknowledge; every target must come back canceled and the
// call must return the context's error, parallel_test-style.
func TestDistributeContextCancellation(t *testing.T) {
	m, err := netsim.Model(netsim.Params{Domains: 5, SystemsPerDomain: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// the agents only honor a different admin community, so install
	// requests are silently dropped and every attempt runs to its timeout
	targets := startRolloutFleet(t, m, "other-admin", nil)

	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(150*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()
	report, err := DistributeContext(ctx, m, targets,
		WithWorkers(2),
		WithRetries(5),
		WithBackoff(10*time.Millisecond, 50*time.Millisecond),
		WithAttemptTimeout(200*time.Millisecond),
	)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(report.Results) != len(targets) {
		t.Fatalf("report incomplete: %d of %d", len(report.Results), len(targets))
	}
	if report.Canceled != len(targets) || report.Installed != 0 {
		t.Fatalf("counts: %s", report.Summary())
	}
	for _, r := range report.Results {
		if r.Err == nil {
			t.Errorf("canceled %s with nil error", r.Target.InstanceID)
		}
	}
}

// TestDistributeContextFailFast: the first definitive failure cancels
// the remaining targets.
func TestDistributeContextFailFast(t *testing.T) {
	m, err := netsim.Model(netsim.Params{Domains: 1, SystemsPerDomain: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// one instantly-failing target (no config) ahead of six that would
	// each grind through a long retry loop if allowed to
	slow := startRolloutFleet(t, m, "other-admin", nil)[0]
	targets := []Target{{InstanceID: "ghost@nowhere#0", Addr: "127.0.0.1:1", AdminCommunity: "adm"}}
	for i := 0; i < 6; i++ {
		targets = append(targets, slow)
	}

	report, err := DistributeContext(context.Background(), m, targets,
		WithWorkers(2),
		WithRetries(10),
		WithBackoff(10*time.Millisecond, 50*time.Millisecond),
		WithAttemptTimeout(200*time.Millisecond),
		WithFailFast(),
	)
	if err != nil {
		t.Fatalf("fail-fast must not surface as a context error: %v", err)
	}
	if report.Skipped != 1 {
		t.Fatalf("counts: %s", report.Summary())
	}
	if report.Canceled == 0 {
		t.Fatalf("fail-fast canceled nothing: %s", report.Summary())
	}
	if report.OK() {
		t.Fatal("report OK despite fail-fast abort")
	}
}

// TestDistributeConcurrentSameInstance installs the same instance's
// configuration from many workers at once. Run under -race this pins
// the deep-copy fix: the shallow per-target copy used to share one
// Communities map across all workers.
func TestDistributeConcurrentSameInstance(t *testing.T) {
	m, err := netsim.Model(netsim.Params{Domains: 1, SystemsPerDomain: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tgt := startRolloutFleet(t, m, "adm", nil)[0]
	targets := make([]Target, 8)
	for i := range targets {
		targets[i] = tgt
	}
	report, err := DistributeContext(context.Background(), m, targets,
		WithWorkers(8),
		WithRetries(2),
		WithBackoff(time.Millisecond, 5*time.Millisecond),
		WithAttemptTimeout(200*time.Millisecond),
	)
	if err != nil || !report.OK() {
		t.Fatalf("concurrent same-instance installs: err=%v %s", err, report.Summary())
	}
	if report.Installed != len(targets) {
		t.Fatalf("counts: %s", report.Summary())
	}
}

// TestRolloutAbsorbsInjectedLoss is the acceptance bar: a 50-target
// rollout across links losing 20% of datagrams each way completes with
// zero failures given a retry budget — and demonstrably loses targets
// without one.
func TestRolloutAbsorbsInjectedLoss(t *testing.T) {
	m, err := netsim.Model(netsim.Params{Domains: 25, SystemsPerDomain: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	targets := startRolloutFleet(t, m, "adm", func(i int) *snmp.FaultInjector {
		inj := snmp.NewFaultInjector(int64(100 + i))
		inj.In = snmp.Faults{Drop: 0.2}
		inj.Out = snmp.Faults{Drop: 0.2}
		return inj
	})
	if len(targets) != 50 {
		t.Fatalf("fleet size %d, want 50", len(targets))
	}

	report, err := DistributeContext(context.Background(), m, targets,
		WithWorkers(16),
		WithRetries(12),
		WithBackoff(2*time.Millisecond, 20*time.Millisecond),
		WithAttemptTimeout(150*time.Millisecond),
	)
	if err != nil {
		t.Fatalf("rollout: %v", err)
	}
	if report.Failed != 0 || report.Installed != len(targets) {
		t.Fatalf("retries did not absorb 20%% loss: %s", report.Summary())
	}
	if report.Attempts <= len(targets) {
		t.Errorf("attempts %d suggests no loss was injected", report.Attempts)
	}

	// Control: without retries the same fleet loses targets, which is
	// exactly why the rollout layer exists.
	noRetry, err := DistributeContext(context.Background(), m, targets,
		WithWorkers(16),
		WithRetries(0),
		WithAttemptTimeout(100*time.Millisecond),
	)
	if err != nil {
		t.Fatalf("control rollout: %v", err)
	}
	if noRetry.Installed == len(targets) {
		t.Fatalf("no-retry control lost nothing; the acceptance test is vacuous: %s", noRetry.Summary())
	}
	t.Logf("with retries: %s", report.Summary())
	t.Logf("without:      %s", noRetry.Summary())
}

// TestRolloutMetricsSnapshot is the observability acceptance test: the
// metrics snapshot embedded in the RolloutReport must agree with the
// report itself (attempts, retries, per-status target counts), and the
// agent-side retransmit counters must agree with the agents' own Stats
// when a lossy client drives the idempotency cache.
func TestRolloutMetricsSnapshot(t *testing.T) {
	m, err := netsim.Model(netsim.Params{Domains: 3, SystemsPerDomain: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}

	// A fleet whose agents drop their first response datagram: the
	// rollout's first attempt at each target times out and the retry
	// lands, so attempts > targets and the retry counters are non-zero.
	agentReg := obs.NewRegistry()
	configs := Generate(m)
	var targets []Target
	var agents []*snmp.Agent
	for id := range configs {
		agent := snmp.NewAgent(snmp.NewStore(), &snmp.Config{
			Communities:    map[string]*snmp.CommunityConfig{},
			AdminCommunity: "adm",
		})
		agent.SetMetrics(agentReg)
		inj := snmp.NewFaultInjector(int64(len(targets)) + 1)
		inj.SetMetrics(obs.Disabled)
		inj.Out = snmp.Faults{DropFirst: 1}
		agent.SetFaultInjector(inj)
		addr, err := agent.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { agent.Close() })
		agents = append(agents, agent)
		targets = append(targets, Target{InstanceID: id, Addr: addr.String(), AdminCommunity: "adm"})
	}

	rolloutReg := obs.NewRegistry()
	report, err := DistributeContext(context.Background(), m, targets,
		WithWorkers(4),
		WithRetries(3),
		WithBackoff(time.Millisecond, 4*time.Millisecond),
		WithAttemptTimeout(100*time.Millisecond),
		WithMetrics(rolloutReg),
	)
	if err != nil {
		t.Fatalf("rollout: %v", err)
	}
	if report.Installed != len(targets) {
		t.Fatalf("fleet did not converge: %s", report.Summary())
	}
	s := report.Metrics
	if s == nil {
		t.Fatal("RolloutReport.Metrics is nil with metrics enabled")
	}

	// The embedded snapshot must match the report exactly.
	if got := s.Value(MetricRolloutAttempts); got != int64(report.Attempts) {
		t.Errorf("snapshot attempts %d != report attempts %d", got, report.Attempts)
	}
	wantRetries := 0
	for _, r := range report.Results {
		if r.Attempts > 1 {
			wantRetries += r.Attempts - 1
		}
	}
	if wantRetries == 0 {
		t.Fatal("no retries happened; the drop-first injector is not biting")
	}
	if got := s.Value(MetricRolloutRetries); got != int64(wantRetries) {
		t.Errorf("snapshot retries %d != computed retries %d", got, wantRetries)
	}
	for status, want := range map[string]int{
		"installed": report.Installed,
		"failed":    report.Failed,
		"skipped":   report.Skipped,
		"canceled":  report.Canceled,
	} {
		name := obs.L(MetricRolloutTargets, "status", status)
		if got := s.Value(name); got != int64(want) {
			t.Errorf("snapshot %s = %d, report says %d", name, got, want)
		}
	}
	if s.Value(MetricRolloutRuns) != 1 {
		t.Errorf("runs = %d, want 1", s.Value(MetricRolloutRuns))
	}
	if got := s.Count(obs.L(MetricRolloutTargetDuration, "status", "installed")); got != int64(report.Installed) {
		t.Errorf("installed duration observations %d != installed %d", got, report.Installed)
	}
	if s.Value(MetricRolloutBackoffSleep) <= 0 {
		t.Error("backoff sleep counter is zero despite retries with non-zero backoff")
	}
	// The shared registry received the merged run.
	if got := rolloutReg.Snapshot().Value(MetricRolloutAttempts); got != int64(report.Attempts) {
		t.Errorf("shared registry attempts %d != report attempts %d", got, report.Attempts)
	}

	// Retransmit phase: one client whose inbound datagrams lose the
	// first response, so it retransmits the identical request and the
	// agent answers from the idempotency cache.
	clientReg := obs.NewRegistry()
	clientInj := snmp.NewFaultInjector(99)
	clientInj.SetMetrics(obs.Disabled)
	clientInj.In = snmp.Faults{DropFirst: 1}
	client, err := snmp.DialFaulty(targets[0].Addr, "adm", clientInj)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.SetMetrics(clientReg)
	client.SetRetries(2)
	client.SetTimeout(100 * time.Millisecond)
	client.SetBackoff(time.Millisecond, 2*time.Millisecond)
	_, _ = client.Get(snmp.ConfigOID) // outcome irrelevant; the counters matter

	cs := clientReg.Snapshot()
	if cs.Value(snmp.MetricClientRequests) != 1 {
		t.Errorf("client requests = %d, want 1", cs.Value(snmp.MetricClientRequests))
	}
	if cs.Value(snmp.MetricClientRetransmits) < 1 {
		t.Error("client never retransmitted despite the dropped response")
	}

	// Agent counters mirror Stats one for one, across the whole fleet.
	var want snmp.Stats
	for _, a := range agents {
		st := a.Stats()
		want.Requests += st.Requests
		want.Retransmits += st.Retransmits
		want.Denied += st.Denied
		want.ConfigLoads += st.ConfigLoads
	}
	as := agentReg.Snapshot()
	if got := as.Value(snmp.MetricAgentRequests); got != want.Requests {
		t.Errorf("agent requests metric %d != stats %d", got, want.Requests)
	}
	if got := as.Value(snmp.MetricAgentRetransmits); got != want.Retransmits {
		t.Errorf("agent retransmits metric %d != stats %d", got, want.Retransmits)
	}
	if want.Retransmits < 1 {
		t.Error("idempotency cache never served a retransmit")
	}
	if got := as.Value(snmp.MetricAgentConfigLoads); got != want.ConfigLoads {
		t.Errorf("agent config loads metric %d != stats %d", got, want.ConfigLoads)
	}
}

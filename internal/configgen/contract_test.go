package configgen

import (
	"context"
	"errors"
	"strings"
	"testing"

	"nmsl/internal/changespec"
	"nmsl/internal/consistency"
	"nmsl/internal/netsim"
	"nmsl/internal/obs"
	"nmsl/internal/parser"
	"nmsl/internal/sema"
)

// The E2E acceptance scenario for the change-contract pre-gate: a
// contract-violating edit on a 50-target netsim fleet must roll back
// before wave 1 ships — zero ConfigLoads on every agent, *ContractError
// surfaced — while the same edit under a permissive contract installs
// everywhere.

// fleetParams sizes the integration fleet: 25 ring domains with 2
// systems each = 50 agent instances.
var fleetParams = netsim.Params{Domains: 25, SystemsPerDomain: 2, Seed: 7}

func TestRolloutContractPreGate(t *testing.T) {
	oldSrc := netsim.Source(fleetParams)
	oldSpec, err := netsim.Build(fleetParams)
	if err != nil {
		t.Fatal(err)
	}
	oldModel := consistency.BuildModel(oldSpec)

	// The edit retunes the last domain's poller — far outside the
	// contract's scope.
	anchor := "queries agentT0\n        requests mgmt.mib.system.sysDescr\n        frequency >= 5 minutes;"
	if strings.Count(oldSrc, anchor) != 1 {
		t.Fatalf("edit anchor not unique in netsim source")
	}
	newSrc := strings.Replace(oldSrc, anchor,
		strings.Replace(anchor, ">= 5 minutes", ">= 10 minutes", 1), 1)
	f, err := parser.Parse("edited.nmsl", newSrc)
	if err != nil {
		t.Fatal(err)
	}
	a := sema.NewAnalyzer()
	a.AnalyzeFile(f)
	newSpec, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	newModel := consistency.BuildModel(newSpec)
	delta := consistency.DeltaFromSpecs(oldSpec, newSpec)

	contracts, err := changespec.Parse("gate.ncs", `
contract only-dom0 ::=
    scope dom0;
    forbid widen-access;
    forbid relax-frequency;
end contract only-dom0.
`)
	if err != nil {
		t.Fatal(err)
	}

	targets, agents := startRolloutFleetAgents(t, newModel, "admin")
	if len(targets) != 50 {
		t.Fatalf("fleet has %d targets, want 50", len(targets))
	}

	report, rerr := DistributeContext(context.Background(), newModel, targets,
		WithChangeContract(contracts[0], oldModel, delta),
		WithMetrics(obs.Disabled))

	var cerr *ContractError
	if !errors.As(rerr, &cerr) {
		t.Fatalf("error %v, want *ContractError", rerr)
	}
	if cerr.Contract != "only-dom0" || len(cerr.Violations) == 0 {
		t.Fatalf("contract error: %+v", cerr)
	}
	if cerr.Violations[0].Clause != changespec.ClauseScope {
		t.Errorf("violated clause %q, want scope", cerr.Violations[0].Clause)
	}
	if report.OK() {
		t.Error("refused rollout reported OK")
	}
	if report.Canceled != len(targets) || report.Installed != 0 || report.Attempts != 0 {
		t.Errorf("report: %s", report.Summary())
	}
	for i := 1; i < len(report.Results); i++ {
		if report.Results[i-1].Target.InstanceID > report.Results[i].Target.InstanceID {
			t.Fatal("results not sorted by instance ID")
		}
	}
	for _, res := range report.Results {
		if res.Status != StatusCanceled || !errors.Is(res.Err, cerr) {
			t.Fatalf("target %s: status %s err %v", res.Target.InstanceID, res.Status, res.Err)
		}
	}
	// The acceptance bar: the plan never touched the network.
	for id, agent := range agents {
		if n := agent.Stats().ConfigLoads; n != 0 {
			t.Errorf("agent %s loaded %d configs, want 0", id, n)
		}
	}

	// The same edit under a contract that covers the touched domain
	// installs the whole fleet.
	okContracts, err := changespec.Parse("ok.ncs", `
contract ring-wide ::=
    scope public;
    forbid widen-access;
    forbid relax-frequency;
end contract ring-wide.
`)
	if err != nil {
		t.Fatal(err)
	}
	report, rerr = DistributeContext(context.Background(), newModel, targets,
		WithChangeContract(okContracts[0], oldModel, delta),
		WithMetrics(obs.Disabled))
	if rerr != nil {
		t.Fatalf("permitted rollout failed: %v", rerr)
	}
	if !report.OK() || report.Installed != len(targets) {
		t.Fatalf("report: %s", report.Summary())
	}
	for id, agent := range agents {
		if n := agent.Stats().ConfigLoads; n != 1 {
			t.Errorf("agent %s loaded %d configs, want 1", id, n)
		}
	}
}

// The pre-gate's refusal report carries the contract-failure counter.
func TestRolloutContractMetrics(t *testing.T) {
	m, err := netsim.Model(netsim.Params{Domains: 3, SystemsPerDomain: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := &changespec.Contract{
		Name: "nothing", Scope: []string{"dom0"},
		MaxAddedInstances: -1, MaxRemovedInstances: -1,
		MaxAddedPermissions: -1, MaxRemovedPermissions: -1,
	}
	reg := obs.NewRegistry()
	targets := []Target{{InstanceID: "agentT0@sys-0-0#0", Addr: "127.0.0.1:1"}}
	// A nil delta is a whole-model edit: the scoped contract fails closed.
	report, rerr := DistributeContext(context.Background(), m, targets,
		WithChangeContract(c, m, nil), WithMetrics(reg))
	var cerr *ContractError
	if !errors.As(rerr, &cerr) {
		t.Fatalf("error %v, want *ContractError", rerr)
	}
	if got := report.Metrics.Value(MetricRolloutContractFails); got != 1 {
		t.Errorf("contract-failure counter %d, want 1", got)
	}
	if got := reg.Snapshot().Value(MetricRolloutContractFails); got != 1 {
		t.Errorf("merged contract-failure counter %d, want 1", got)
	}
}

// Package configgen implements NMSL Configuration Generators (paper
// section 5, the prescriptive aspect).
//
// "Once a specification is determined to be consistent, the specification
// can be executed to configure the network management processes." The
// compiler emits configuration output; a Configuration Generator
// "interprets the configuration output of the compiler and performs the
// implementation-specific actions necessary to install the configuration
// in a network management process."
//
// Two output formats demonstrate the multiple-output-action machinery of
// section 6.2 (the paper names a hypothetical "Bart's SNMP daemon"):
//
//   - BartsSnmpd: an snmpd.conf-style text format;
//   - nvp: a JSON name/value format that the snmp.Agent loads directly.
//
// Two transports implement section 5's installation paths: writing files
// ("the data might be copied, in the form of a file, to the affected
// network element") and the live path over the management protocol
// itself (snmp.Client.InstallConfig).
package configgen

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"nmsl/internal/ast"
	"nmsl/internal/consistency"
	"nmsl/internal/mib"
	"nmsl/internal/sema"
	"nmsl/internal/snmp"
)

// Tags for the compiler's output-specific actions.
const (
	// TagBartsSnmpd selects snmpd.conf-style output.
	TagBartsSnmpd = "BartsSnmpd"
	// TagNVP selects JSON name/value output.
	TagNVP = "nvp"
)

// Generate derives per-agent-instance configurations from the model. The
// mapping realizes NMSL exports as agent policy:
//
//   - the community string is the grantee domain's name (the importing
//     domain identifies itself by it);
//   - the view is the exported MIB subtree, clipped to what the instance
//     actually supports;
//   - the minimum interval is the export's frequency bound.
//
// Domain-level exports of domains containing the instance further
// restrict matching communities (larger minimum interval, narrower
// access), mirroring the checker's restriction rule.
func Generate(m *consistency.Model) map[string]*snmp.Config {
	out := map[string]*snmp.Config{}
	for _, in := range m.Instances {
		if !in.Proc.IsAgent() {
			continue
		}
		cfg := &snmp.Config{Communities: map[string]*snmp.CommunityConfig{}}
		for i := range m.Perms {
			p := &m.Perms[i]
			if p.GrantorInst != in.ID {
				continue
			}
			cc := cfg.Communities[p.Grantee]
			if cc == nil {
				cc = &snmp.CommunityConfig{Access: mib.AccessNone}
				cfg.Communities[p.Grantee] = cc
			}
			// Each permission becomes its own view entry carrying its own
			// mode. Collapsing the modes into one per-community value (as
			// this used to do) either leaks — a grantee holding ReadWrite
			// on one subtree and ReadOnly on another got the write mode on
			// both — or over-restricts, depending on permission order.
			cc.View = append(cc.View, snmp.View{Prefix: p.Var.OID(), Access: exportAccess(p.Access)})
			iv := time.Duration(p.MinPeriod * float64(time.Second))
			if iv > cc.MinInterval {
				cc.MinInterval = iv
			}
		}
		applyDomainRestrictions(m, in, cfg)
		for _, cc := range cfg.Communities {
			sortViews(cc)
			summarizeAccess(cc)
		}
		out[in.ID] = cfg
	}
	return out
}

// exportAccess normalizes a permission's mode for storage in a view
// grant: an export that never stated a mode grants nothing by itself
// (AccessUnspecified in a view would instead inherit the community
// default, silently widening the grant).
func exportAccess(a mib.Access) mib.Access {
	if a == mib.AccessUnspecified {
		return mib.AccessNone
	}
	return a
}

// applyDomainRestrictions tightens an agent's communities to honor the
// domain-level exports of every restricting domain containing it: a
// community survives only if each such domain exports to a domain
// covering it, and inherits the strictest interval and the intersected
// view — per view, each surviving subtree's mode is the meet of what the
// instance granted and what the domain grants.
func applyDomainRestrictions(m *consistency.Model, in *consistency.Instance, cfg *snmp.Config) {
	for _, dom := range m.PartyDomains(in.ID) {
		if !m.Restricts(dom) {
			continue
		}
		ds := m.Spec.Domains[dom]
		for name, cc := range cfg.Communities {
			if m.DomainContains(dom, name) {
				continue // requests from inside the domain are not restricted
			}
			var granted bool
			for _, ex := range ds.Exports {
				if !m.DomainContains(ex.To, name) {
					continue
				}
				granted = true
				// raise the minimum interval to the stricter bound
				iv := time.Duration(ex.Freq.MinPeriodSeconds() * float64(time.Second))
				if iv > cc.MinInterval {
					cc.MinInterval = iv
				}
				// clip views to the exported subtrees, narrowing each
				// surviving view to the mode both grants allow
				exAcc := exportAccess(ex.Access)
				var clipped []snmp.View
				for _, v := range cc.View {
					for _, ev := range ex.Vars {
						if n := m.Spec.MIB.LookupSuffix(ev); n != nil {
							eo := n.OID()
							narrowed := v.Access.Meet(exAcc)
							switch {
							case v.Prefix.HasPrefix(eo):
								clipped = append(clipped, snmp.View{Prefix: v.Prefix, Access: narrowed})
							case eo.HasPrefix(v.Prefix):
								clipped = append(clipped, snmp.View{Prefix: eo, Access: narrowed})
							}
						}
					}
				}
				cc.View = clipped
			}
			if !granted {
				delete(cfg.Communities, name)
			}
		}
	}
}

// sortViews orders a community's views, joins duplicate prefixes, and
// drops views already covered by an earlier broader grant.
func sortViews(cc *snmp.CommunityConfig) {
	sort.Slice(cc.View, func(i, j int) bool {
		if c := cc.View[i].Prefix.Compare(cc.View[j].Prefix); c != 0 {
			return c < 0
		}
		return cc.View[i].Access < cc.View[j].Access
	})
	var dedup []snmp.View
	for _, v := range cc.View {
		if n := len(dedup); n > 0 && dedup[n-1].Prefix.Compare(v.Prefix) == 0 {
			dedup[n-1].Access = dedup[n-1].Access.Join(v.Access)
			continue
		}
		covered := false
		for _, d := range dedup {
			// only a grant at least as permissive subsumes a nested one
			if v.Prefix.HasPrefix(d.Prefix) && d.Access.Covers(v.Access) {
				covered = true
				break
			}
		}
		if !covered {
			dedup = append(dedup, v)
		}
	}
	cc.View = dedup
}

// summarizeAccess keeps the community-wide Access field at the join of
// the per-view modes: a sound summary for pre-per-view consumers, and the
// inherited mode for any view left AccessUnspecified.
func summarizeAccess(cc *snmp.CommunityConfig) {
	acc := mib.AccessNone
	for _, v := range cc.View {
		acc = acc.Join(v.Access)
	}
	cc.Access = acc
}

// WriteSnmpdConf renders a configuration in the BartsSnmpd text format:
//
//	# comment
//	community <name> <access> <min-interval-seconds> <view-oid>[:<mode>][,<view-oid>[:<mode>]...]
//	admin <community>
//
// A view without an explicit :<mode> suffix inherits the community
// access; the writer always emits the suffix so per-view modes survive a
// round trip.
func WriteSnmpdConf(w io.Writer, cfg *snmp.Config) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# generated by nmslgen (BartsSnmpd format)")
	if cfg.AdminCommunity != "" {
		fmt.Fprintf(bw, "admin %s\n", cfg.AdminCommunity)
	}
	names := make([]string, 0, len(cfg.Communities))
	for name := range cfg.Communities {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cc := cfg.Communities[name]
		views := make([]string, len(cc.View))
		for i, v := range cc.View {
			if v.Access == mib.AccessUnspecified {
				views[i] = v.Prefix.String()
			} else {
				views[i] = v.Prefix.String() + ":" + v.Access.String()
			}
		}
		fmt.Fprintf(bw, "community %s %s %g %s\n",
			name, cc.Access, cc.MinInterval.Seconds(), strings.Join(views, ","))
	}
	return bw.Flush()
}

// ParseSnmpdConf parses the BartsSnmpd text format back into a Config,
// so agents whose native format it is can load it.
func ParseSnmpdConf(r io.Reader) (*snmp.Config, error) {
	cfg := &snmp.Config{Communities: map[string]*snmp.CommunityConfig{}}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "admin":
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: admin takes one community", lineNo)
			}
			cfg.AdminCommunity = fields[1]
		case "community":
			if len(fields) != 5 {
				return nil, fmt.Errorf("line %d: community takes name, access, interval and views", lineNo)
			}
			acc, err := mib.ParseAccess(fields[2])
			if err != nil {
				return nil, fmt.Errorf("line %d: %s", lineNo, err)
			}
			secs, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad interval %q", lineNo, fields[3])
			}
			cc := &snmp.CommunityConfig{
				Access:      acc,
				MinInterval: time.Duration(secs * float64(time.Second)),
			}
			for _, vs := range strings.Split(fields[4], ",") {
				spec := vs
				mode := mib.AccessUnspecified
				if oidPart, modePart, found := strings.Cut(vs, ":"); found {
					a, err := mib.ParseAccess(modePart)
					if err != nil {
						return nil, fmt.Errorf("line %d: %s", lineNo, err)
					}
					spec, mode = oidPart, a
				}
				oid, err := parseOID(spec)
				if err != nil {
					return nil, fmt.Errorf("line %d: %s", lineNo, err)
				}
				cc.View = append(cc.View, snmp.View{Prefix: oid, Access: mode})
			}
			cfg.Communities[fields[1]] = cc
		default:
			return nil, fmt.Errorf("line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return cfg, nil
}

func parseOID(s string) (mib.OID, error) {
	parts := strings.Split(s, ".")
	oid := make(mib.OID, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad OID %q", s)
		}
		oid = append(oid, n)
	}
	return oid, nil
}

// WriteNVP renders the JSON name/value format (the snmp.Config wire
// form).
func WriteNVP(w io.Writer, cfg *snmp.Config) error {
	blob, err := snmp.MarshalConfig(cfg)
	if err != nil {
		return err
	}
	_, err = w.Write(append(blob, '\n'))
	return err
}

// RegisterOutput registers the compiler-level configuration output
// actions (section 6.2: "an action tagged BartsSnmpd would be executed
// only if configuration output for Bart's SNMP daemon were being
// generated"). The actions attach to the basic "exports" clause of
// process specifications, so an extension that prepends the same clause
// keyword with the same tag overrides exactly this output (section 6.3).
// The compiler-level output lists each process type's exports; the
// Generator expands them per instance via Generate.
func RegisterOutput(t *sema.Tables) {
	emit := func(render func(e *sema.Emitter, proc string, ex ast.Export, v string)) func(*sema.ClauseContext, *sema.Emitter) error {
		return func(ctx *sema.ClauseContext, e *sema.Emitter) error {
			ex, ok := sema.ParseExport(ctx)
			if !ok {
				return nil
			}
			for _, v := range ex.Vars {
				render(e, ctx.Decl.Name, ex, v)
			}
			return nil
		}
	}
	t.AppendClause(&sema.ClauseEntry{
		DeclType:    "process",
		Keyword:     "exports",
		SubKeywords: []string{"to", "access", "frequency"},
		Outputs: map[string]func(*sema.ClauseContext, *sema.Emitter) error{
			TagBartsSnmpd: emit(func(e *sema.Emitter, proc string, ex ast.Export, v string) {
				e.Printf("# process %s\ncommunity %s %s %g %s\n",
					proc, ex.To, ex.Access, ex.Freq.MinPeriodSeconds(), v)
			}),
			TagNVP: emit(func(e *sema.Emitter, proc string, ex ast.Export, v string) {
				e.Printf("{\"process\":%q,\"community\":%q,\"access\":%q,\"min_interval_s\":%g,\"view\":%q}\n",
					proc, ex.To, ex.Access.String(), ex.Freq.MinPeriodSeconds(), v)
			}),
		},
	})
}

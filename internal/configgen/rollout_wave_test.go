package configgen

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"nmsl/internal/consistency"
	"nmsl/internal/netsim"
	"nmsl/internal/snmp"
)

// startMemFleet hosts one agent per model instance on an in-memory
// network instead of UDP sockets, returning rollout targets with mem://
// addresses. The per-host injectors are reachable through the returned
// MemNet for chaos shaping.
func startMemFleet(t *testing.T, m *consistency.Model, admin, netName string) ([]Target, map[string]*snmp.Agent, *snmp.MemNet) {
	t.Helper()
	n, err := snmp.NewMemNet(netName, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	configs := Generate(m)
	var targets []Target
	agents := make(map[string]*snmp.Agent, len(configs))
	for id := range configs {
		store := snmp.NewStore()
		snmp.PopulateFromMIB(store, m.Spec.MIB, "mgmt.mib")
		agent := snmp.NewAgent(store, &snmp.Config{
			Communities:    map[string]*snmp.CommunityConfig{},
			AdminCommunity: admin,
		})
		if _, err := n.AddHost(id, agent); err != nil {
			t.Fatal(err)
		}
		agents[id] = agent
		targets = append(targets, Target{InstanceID: id, Addr: n.Addr(id), AdminCommunity: admin})
	}
	return targets, agents, n
}

// TestWaveProgressStream: a staged rollout reports one WaveResult per
// wave, in order, spans covering every target exactly once, with counts
// agreeing with the final report.
func TestWaveProgressStream(t *testing.T) {
	m, err := netsim.Model(netsim.Params{Domains: 10, SystemsPerDomain: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	targets, _, _ := startMemFleet(t, m, "adm", "waves")

	var seen []WaveResult
	report, err := DistributeContext(context.Background(), m, targets, chaosOpts(
		WithStages(0.1, 0.5),
		WithMaxFailureRate(0),
		WithOnWave(func(w WaveResult) { seen = append(seen, w) }),
	)...)
	if err != nil || !report.OK() {
		t.Fatalf("rollout: %v (%s)", err, report.Summary())
	}
	if len(seen) != 3 {
		t.Fatalf("streamed %d waves, want 3 (10%%, 50%%, rest)", len(seen))
	}
	if len(report.Waves) != 3 {
		t.Fatalf("report has %d waves, want 3", len(report.Waves))
	}
	covered := 0
	for i, w := range seen {
		if w.Wave != i {
			t.Errorf("wave %d streamed out of order (index %d)", w.Wave, i)
		}
		if w.Start != covered {
			t.Errorf("wave %d starts at %d, want %d (gap or overlap)", i, w.Start, covered)
		}
		covered = w.End
		if span := w.End - w.Start; w.Installed != span {
			t.Errorf("wave %d: %d installed of %d", i, w.Installed, span)
		}
		if w.GateErr != nil {
			t.Errorf("wave %d: unexpected gate error %v", i, w.GateErr)
		}
	}
	if covered != len(targets) {
		t.Fatalf("waves covered %d targets, want %d", covered, len(targets))
	}
	total := 0
	for _, w := range report.Waves {
		total += w.Installed
	}
	if total != report.Installed {
		t.Fatalf("wave installed sum %d != report installed %d", total, report.Installed)
	}
}

// TestWaveStreamOnGateFailure: a wave that fails its gate streams with
// GateErr set and its rollback already reflected in the counts, and the
// never-started waves stream as canceled.
func TestWaveStreamOnGateFailure(t *testing.T) {
	m, err := netsim.Model(netsim.Params{Domains: 10, SystemsPerDomain: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	targets, _, _ := startMemFleet(t, m, "adm", "gatewaves")

	var seen []WaveResult
	boom := errors.New("canary unhealthy")
	report, err := DistributeContext(context.Background(), m, targets, chaosOpts(
		WithStages(0.25),
		WithGate(func(context.Context, []TargetResult) error { return boom }),
		WithOnWave(func(w WaveResult) { seen = append(seen, w) }),
	)...)
	var ge *GateError
	if !errors.As(err, &ge) {
		t.Fatalf("err = %v, want *GateError", err)
	}
	if len(seen) != 2 {
		t.Fatalf("streamed %d waves, want 2", len(seen))
	}
	first, rest := seen[0], seen[1]
	if first.GateErr == nil || !errors.Is(first.GateErr, boom) {
		t.Fatalf("first wave GateErr = %v, want the gate's error", first.GateErr)
	}
	if first.RolledBack != first.End-first.Start || first.Installed != 0 {
		t.Fatalf("first wave after gate failure: %+v, want all rolled back", first)
	}
	if rest.Canceled != rest.End-rest.Start {
		t.Fatalf("remaining wave: %+v, want all canceled", rest)
	}
	if report.RolledBack != first.RolledBack || report.Canceled != rest.Canceled {
		t.Fatalf("report (%s) disagrees with wave stream", report.Summary())
	}
}

// TestRolloutAckLossExactlyOnce: every agent's first acknowledgment is
// eaten by the network; the retry layer re-sends, the agent's
// retransmit cache answers, and no agent applies its configuration
// twice. This is the wire-level exactly-once property the prepared
// (stable request ID) install provides — with a fresh request ID per
// attempt, every one of these agents would load twice.
func TestRolloutAckLossExactlyOnce(t *testing.T) {
	m, err := netsim.Model(netsim.Params{Domains: 10, SystemsPerDomain: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	targets, agents, n := startMemFleet(t, m, "adm", "ackloss")
	for _, host := range n.Hosts() {
		n.Injector(host).SetFaults(snmp.Faults{}, snmp.Faults{DropFirst: 1})
	}

	report, err := DistributeContext(context.Background(), m, targets, chaosOpts()...)
	if err != nil || !report.OK() {
		t.Fatalf("rollout under ack loss: %v (%s)", err, report.Summary())
	}
	assertExactlyOnce(t, m, targets, agents)
	if report.Attempts <= len(targets) {
		t.Fatalf("attempts %d: ack loss should have forced retries beyond %d", report.Attempts, len(targets))
	}
}

// TestRolloutCancelPromptDuringAttempt: canceling a rollout mid-attempt
// against silent targets returns promptly — the attempt's blocked read
// and the backoff sleeps both honor the context, so cancellation never
// waits out a timeout or a backoff. Regression test for the prompt-
// cancellation guarantee.
func TestRolloutCancelPromptDuringAttempt(t *testing.T) {
	m, err := netsim.Model(netsim.Params{Domains: 4, SystemsPerDomain: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	targets, _, n := startMemFleet(t, m, "adm", "cancelprompt")
	for _, host := range n.Hosts() {
		n.SetDown(host, true) // nobody will ever answer
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	report, err := DistributeContext(ctx, m, targets, chaosOpts(
		// Long attempt timeout and long backoff: only prompt context
		// handling can finish this test quickly.
		WithAttemptTimeout(30*time.Second),
		WithBackoff(10*time.Second, 30*time.Second),
	)...)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("cancel took %v to stop the rollout", elapsed)
	}
	if report.Canceled != len(targets) {
		t.Fatalf("report: %s, want all canceled", report.Summary())
	}
}

// TestJournalNoSyncCrashResume: a journal written without per-record
// fsync still resumes a canceled run to convergence with exactly-once
// installs — the records reach the page cache in order, so everything
// short of a power loss replays identically.
func TestJournalNoSyncCrashResume(t *testing.T) {
	m, err := netsim.Model(netsim.Params{Domains: 10, SystemsPerDomain: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	targets, agents, _ := startMemFleet(t, m, "adm", "nosync")
	path := filepath.Join(t.TempDir(), "rollout.journal")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	landed := 0
	report, err := DistributeContext(ctx, m, targets, chaosOpts(
		WithJournal(path),
		WithJournalNoSync(),
		WithWorkers(1),
		WithOnResult(func(TargetResult) {
			landed++
			if landed == 10 {
				cancel()
			}
		}),
	)...)
	if err == nil {
		t.Fatalf("canceled rollout reported no error: %s", report.Summary())
	}
	if report.Installed == 0 || report.Installed == len(targets) {
		t.Fatalf("cancel timing produced no partial state: %s", report.Summary())
	}

	resumed, err := ResumeRollout(context.Background(), m, path, chaosOpts(WithJournalNoSync())...)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !resumed.OK() || resumed.Installed != len(targets) {
		t.Fatalf("resume did not converge: %s", resumed.Summary())
	}
	assertExactlyOnce(t, m, targets, agents)
}
